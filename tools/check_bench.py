#!/usr/bin/env python3
"""Bench regression gate: compare fresh BENCH_*.json against committed baselines.

Usage (what CI runs; works identically from a local checkout):

    python3 tools/check_bench.py \
        --pair BENCH_statevector.json build/BENCH_statevector.json \
        --pair BENCH_pipeline.json    build/BENCH_pipeline.json \
        --report build/bench_diff.md

Each --pair is (committed baseline, freshly produced file). The gate fails
(exit 1) on a >25% regression (--threshold) of any gated metric, and the
full comparison table is written to --report for upload as a CI artifact.

Gating rules, tuned so the gate is trustworthy across machines:

* Quality metrics (CNOT counts, solver values, ...) are deterministic
  functions of the committed seeds -- femto's pipeline guarantees
  thread-count-invariant results -- so they are gated at the threshold,
  scaled by |baseline| (handles negative energies).
* Direction: metrics whose name contains speedup/scaling/throughput/value/
  saving are higher-is-better; everything else is lower-is-better.
* Raw wall-clock fields (median_s/min_s/max_s) and wall-clock-derived
  ratios (scaling_*/throughput_*) are machine- and load-dependent and
  skipped unless --include-timings is given (useful locally on the same
  box).
* Metrics listed in ABS_FLOORS are gated by an absolute floor instead of a
  ratio: e.g. statevector kernel speedups must stay >= 1.3x on ANY machine,
  but are not required to match the reference machine's 5-7x.
* Metrics listed in ABS_EXACT must equal a pinned value exactly
  (determinism anchors, e.g. the all-to-all hardware target's water CNOT
  count == the committed Table-1 Adv baseline).
* metrics prefixed info_ (cache hit counters etc.) are informational only.
* A section or metric present in the baseline but missing from the fresh
  file fails the gate (coverage must not silently disappear); pass
  --allow-missing to downgrade that to a warning.
"""

import argparse
import fnmatch
import json
import sys

TIMING_KEYS = ("median_s", "min_s", "max_s", "mean_s", "stddev_s")
# Wall-clock-derived ratio metrics (t_ref / t_new): machine- and load-
# dependent like the raw timings, so gated only with --include-timings.
TIMING_METRIC_HINTS = ("scaling", "throughput")
HIGHER_BETTER_HINTS = ("speedup", "scaling", "throughput", "value", "saving",
                       "improve")
SKIP_PREFIXES = ("info_", "best_restart")

# suite -> {metric glob: absolute floor}. Overrides ratio gating.
ABS_FLOORS = {
    "statevector": {"*_speedup": 1.3},
    # Circuit verification must stay comfortably real-time on any machine
    # (the reference machine does 200-8000 verified circuits/s; the floor
    # leaves ~8x headroom on the slowest section).
    "verify": {"verified_per_s": 25.0},
    # Compile hot-path rewrites (bench_compile_hot): old-vs-new ratios
    # measured in the same process, so they hold on any machine. The
    # reference machine does ~5.5x / ~10x; the floors keep headroom while
    # guaranteeing the incremental Gamma evaluation stays >= 3x over full
    # recompute and the dense GTSP GA >= 2x over the lazy solver.
    # simd_wordops_speedup is forced-portable vs best dispatch level in the
    # same process (reference machine ~9x with AVX-512; AVX2-only hosts
    # still clear ~5x because the vectorized popcount replaces a per-word
    # libcall); the floor only requires that SIMD dispatch keeps paying.
    "compile_hot": {"gamma_eval_speedup": 3.0, "gtsp_ga_speedup": 2.0,
                    "simd_wordops_speedup": 1.5},
    # Serving compiled segments from the mmap'd compilation database must
    # stay at memory speed (binary search + circuit decode). The reference
    # machine does >1M lookups/s; the floor leaves ~20x headroom.
    "db": {"warm_lookups_per_s": 50000.0},
    # End-to-end daemon serving (bench_service drives a real femtod over
    # its socket): the reference machine serves ~30-75 plans/s through the
    # wire protocol; the floor only guards against pathological collapse
    # (a stuck scheduler or a protocol round trip gone quadratic).
    "service": {"plans_per_s": 2.0},
    # Tracing overhead contract (bench_pipeline trace_overhead section):
    # t_untraced / t_traced for the same seeded compile, measured in the
    # same process, so it holds on any machine. The disabled path is one
    # relaxed atomic load, and the enabled path only buffers coarse spans;
    # the floor allows ~10% slowdown before failing (ratio 0.9 == traced
    # run taking 1/0.9 ~ 1.11x the untraced time).
    "pipeline": {"trace_overhead_ratio": 0.9},
}

# suite -> {"section/metric" glob: pinned value}. The metric must equal the
# pinned value EXACTLY (floor and ceiling at once). Used for determinism
# anchors: the all-to-all hardware target's water CNOT count must reproduce
# the committed Table-1 Adv baseline (BENCH_table1.json H2O(14) adv = 108)
# bit-for-bit -- femto compiles are pure functions of the committed seeds,
# so any drift here is a real behavior change, not noise.
ABS_EXACT = {
    "targets": {"targets/H2O(14)/all_to_all_cnot/model_cnots": 108.0},
    # The SIMD layer's bit-identity contract: switching the dispatch level
    # (portable/AVX2/AVX-512) or batching states through sim::BatchedState
    # must never change a single amplitude bit (statevector) or any integer
    # reduction (compile_hot wordops). The bench binaries recompute these
    # cross-level comparisons on every run; any value but 1.0 means a vector
    # path's per-element op tree diverged from the portable reference.
    "statevector": {"*/simd_bit_identical": 1.0},
    "compile_hot": {"*/simd_bit_identical": 1.0},
    # The compilation database's bit-identity contract, end to end: a warm
    # recompile against the prebuilt DB must reproduce the cold results
    # field-for-field (warm_equals_cold) and verify-on-compile must certify
    # every DB-served circuit (warm_verified). Any value but 1.0 means the
    # database served a circuit that differs from fresh synthesis.
    "db": {"*/warm_equals_cold": 1.0, "*/warm_verified": 1.0},
    # The daemon determinism + lifecycle contract, end to end over the wire
    # (bench_service boots femtod and byte-compares every served response
    # against the same request compiled in-process): serving, coalescing,
    # and database-warm serving must all be bit-identical, deadlines must
    # actually fire, and graceful shutdown must drain cleanly.
    "service": {
        "*/served_equals_inprocess": 1.0,
        "*/coalesced_identical": 1.0,
        "*/db_warm_equals_inprocess": 1.0,
        "*/deadline_enforced": 1.0,
        "*/clean_shutdown": 1.0,
        # The resilience contract (bench_service chaos section): the
        # fault-injection framework's disabled path must stay allocation-
        # free, injected short-write/fsync faults must never corrupt the
        # published database, and a retrying client fleet driven through
        # injected connection drops must land byte-identical responses.
        "*/failpoint_disabled_zero_alloc": 1.0,
        "*/chaos_db_survived": 1.0,
        "*/chaos_responses_identical": 1.0,
    },
    # The tracing contract (bench_pipeline trace_overhead section): the
    # Chrome trace-event JSON exported by the traced compile must parse
    # (trace_valid_json) and the traced compile must produce a circuit
    # bit-identical to the untraced one (trace_bit_identical) -- tracing
    # observes the pipeline, it never steers it.
    "pipeline": {"*/trace_valid_json": 1.0, "*/trace_bit_identical": 1.0},
}


def is_higher_better(name):
    return any(h in name for h in HIGHER_BETTER_HINTS)


def abs_floor_for(suite, metric):
    for pattern, floor in ABS_FLOORS.get(suite, {}).items():
        if fnmatch.fnmatch(metric, pattern):
            return floor
    return None


def abs_exact_for(suite, section, metric):
    for pattern, value in ABS_EXACT.get(suite, {}).items():
        if fnmatch.fnmatch(f"{section}/{metric}", pattern):
            return value
    return None


def load(path):
    with open(path) as f:
        data = json.load(f)
    sections = {}
    for s in data.get("sections", []):
        entry = dict(s.get("metrics", {}))
        for key in TIMING_KEYS:
            if key in s:
                entry[key] = s[key]
        sections[s["name"]] = entry
    return data.get("suite", "?"), sections


def compare(suite, base_sections, fresh_sections, args, rows):
    failures = []
    for section, base_metrics in sorted(base_sections.items()):
        fresh_metrics = fresh_sections.get(section)
        if fresh_metrics is None:
            rows.append((suite, section, "-", "-", "-", "-",
                         "MISSING-SECTION"))
            if not args.allow_missing:
                failures.append(f"{suite}/{section}: section missing")
            continue
        for metric, base_value in sorted(base_metrics.items()):
            timing = (metric in TIMING_KEYS
                      or any(h in metric for h in TIMING_METRIC_HINTS))
            if timing and not args.include_timings:
                continue
            if any(metric.startswith(p) for p in SKIP_PREFIXES):
                continue
            if metric not in fresh_metrics:
                rows.append((suite, section, metric, f"{base_value:g}", "-",
                             "-", "MISSING"))
                if not args.allow_missing:
                    failures.append(f"{suite}/{section}/{metric}: missing")
                continue
            fresh_value = fresh_metrics[metric]
            floor = abs_floor_for(suite, metric)
            exact = abs_exact_for(suite, section, metric)
            scale = abs(base_value)
            if exact is not None:
                ok = fresh_value == exact
                detail = f"== {exact:g} (exact pin)"
            elif floor is not None:
                ok = fresh_value >= floor
                detail = f">= {floor:g} (abs floor)"
            elif timing or not is_higher_better(metric):
                # lower is better (counts, energies, wall time)
                ok = fresh_value <= base_value + args.threshold * scale
                detail = f"<= base + {args.threshold:.0%}"
            else:
                ok = fresh_value >= base_value - args.threshold * scale
                detail = f">= base - {args.threshold:.0%}"
            delta = (f"{(fresh_value - base_value) / scale:+.1%}"
                     if scale > 0 else "n/a")
            status = "ok" if ok else "FAIL"
            rows.append((suite, section, metric, f"{base_value:g}",
                         f"{fresh_value:g}", delta, status))
            if not ok:
                failures.append(
                    f"{suite}/{section}/{metric}: {base_value:g} -> "
                    f"{fresh_value:g} violates {detail}")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pair", nargs=2, action="append", required=True,
                        metavar=("BASELINE", "FRESH"),
                        help="baseline JSON and fresh JSON to compare")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="relative regression allowed (default 0.25)")
    parser.add_argument("--include-timings", action="store_true",
                        help="also gate median_s/min_s/max_s (same-machine "
                        "comparisons only)")
    parser.add_argument("--allow-missing", action="store_true",
                        help="warn instead of fail on missing sections")
    parser.add_argument("--report", default="bench_diff.md",
                        help="markdown report path (CI artifact)")
    args = parser.parse_args()

    rows = []
    failures = []
    for base_path, fresh_path in args.pair:
        base_suite, base_sections = load(base_path)
        fresh_suite, fresh_sections = load(fresh_path)
        if base_suite != fresh_suite:
            failures.append(
                f"suite mismatch: {base_path} is '{base_suite}' but "
                f"{fresh_path} is '{fresh_suite}'")
            continue
        failures += compare(base_suite, base_sections, fresh_sections, args,
                            rows)

    lines = ["# Bench regression report", "",
             f"threshold: {args.threshold:.0%}  "
             f"(timings gated: {args.include_timings})", "",
             "| suite | section | metric | baseline | fresh | delta | status |",
             "|---|---|---|---|---|---|---|"]
    for row in rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    lines.append("")
    if failures:
        lines.append("## FAILURES")
        lines += [f"- {f}" for f in failures]
    else:
        lines.append("All gated metrics within threshold.")
    report = "\n".join(lines) + "\n"
    with open(args.report, "w") as f:
        f.write(report)
    print(report)
    if failures:
        print(f"check_bench: {len(failures)} gated metric(s) regressed",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
