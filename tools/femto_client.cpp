// femto-client: command-line client for a running femtod, plus the
// self-contained daemon smoke test CI runs as a ctest.
//
//   femto-client --socket <path> ping
//   femto-client --socket <path> stats
//   femto-client --socket <path> metrics
//       Fetches the daemon's unified metrics registry (obs/metrics.hpp)
//       and pretty-prints counters, gauges, and latency-histogram
//       percentiles.
//   femto-client --socket <path> trace
//       Fetches the most recent completed request's Chrome trace-event
//       JSON (daemon must run with --trace-dir) and prints it to stdout --
//       pipe to a file and load in Perfetto / chrome://tracing.
//   femto-client --socket <path> shutdown [--cancel]
//   femto-client --socket <path> compile <scenarios.jsonl>
//       Submits every canonical protocol scenario in the file (one per
//       line, as written by `femto-db export-scenarios`) as ONE request
//       and prints the per-scenario plan summary.
//
//   femto-client --smoke <path-to-femtod>
//       Boots a fresh femtod (with tracing on) on a private socket, pings
//       it, compiles a small seeded UCCSD scenario through the daemon AND
//       in-process on an identical pipeline, and FAILS unless the two
//       canonical response encodings are byte-identical (the serving
//       determinism contract). Then round-trips the `metrics` op (the
//       registry must report the work and a request-latency histogram) and
//       the `trace` op (the served request's span tree must contain the
//       queue-wait, run, restart, and per-stage spans). Finishes with a
//       graceful shutdown handshake and checks the daemon exits 0. This is
//       the `femtod_smoke` ctest.
//
// Exit codes: 0 ok, 1 contract/request failure, 2 usage/transport error.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <signal.h>
#include <unistd.h>

#include "service/client.hpp"
#include "service/server.hpp"

namespace {

using namespace femto;

int usage() {
  std::fprintf(
      stderr,
      "usage: femto-client --socket <path> "
      "ping|stats|metrics|trace|shutdown [--cancel]\n"
      "       femto-client --socket <path> compile <scenarios.jsonl>\n"
      "       femto-client --smoke <path-to-femtod>\n");
  return 2;
}

/// A small deterministic UCCSD-shaped scenario (no chemistry stack): 4
/// spin-orbitals, one double + two singles, advanced pipeline, tiny solver
/// budgets. Fast enough for a smoke test, rich enough to exercise
/// synthesis, compression, and verification.
core::CompileScenario smoke_scenario() {
  core::CompileScenario s;
  s.name = "smoke/uccsd4";
  s.num_qubits = 4;
  s.terms = {fermion::ExcitationTerm::make_double(2, 3, 0, 1),
             fermion::ExcitationTerm::single(2, 0),
             fermion::ExcitationTerm::single(3, 1)};
  s.options.transform = core::TransformKind::kAdvanced;
  s.options.sorting = core::SortingMode::kAdvanced;
  s.options.compression = core::CompressionMode::kHybrid;
  s.options.coloring_orders = 8;
  s.options.sa_options.steps = 200;
  s.options.pso_options.particles = 6;
  s.options.pso_options.iterations = 8;
  s.options.gtsp_options.population = 8;
  s.options.gtsp_options.generations = 20;
  s.options.emit_circuit = true;
  return s;
}

int cmd_smoke(const std::string& femtod_path) {
  const std::string socket_path =
      "/tmp/femtod-smoke-" + std::to_string(::getpid()) + ".sock";
  const std::string trace_dir =
      "/tmp/femtod-smoke-" + std::to_string(::getpid()) + "-traces";
  const pid_t pid = service::spawn_process({femtod_path, "--socket",
                                            socket_path, "--workers", "2",
                                            "--trace-dir", trace_dir});
  if (pid < 0) {
    std::fprintf(stderr, "smoke: cannot spawn %s\n", femtod_path.c_str());
    return 2;
  }

  auto conn = service::wait_for_server(socket_path);
  if (!conn.has_value()) {
    std::fprintf(stderr, "smoke: daemon socket never came up\n");
    ::kill(pid, SIGKILL);
    (void)service::wait_process(pid);
    return 1;
  }
  service::CompileClient client(std::move(*conn));
  if (!client.ping()) {
    std::fprintf(stderr, "smoke: ping failed\n");
    ::kill(pid, SIGKILL);
    (void)service::wait_process(pid);
    return 1;
  }

  core::CompileRequest request;
  request.scenarios = {smoke_scenario()};
  request.restarts = 2;
  request.seed = 20230306;
  request.verify = true;

  std::string err;
  const auto served = client.compile(request, "smoke-1", err,
                                     /*include_circuit=*/true);
  if (!served.has_value()) {
    std::fprintf(stderr, "smoke: compile failed: %s\n", err.c_str());
    ::kill(pid, SIGKILL);
    (void)service::wait_process(pid);
    return 1;
  }

  // The same request, in-process, on an identically configured pipeline.
  core::CompilePipeline pipeline({.workers = 2});
  const core::CompileResponse local = pipeline.compile(request);
  const std::string local_canonical =
      service::protocol::encode_response(
          service::protocol::summarize(local, /*include_circuits=*/true))
          .encode();

  int rc = 0;
  if (served->state != service::RequestState::kDone) {
    std::fprintf(stderr, "smoke: daemon state %s, want DONE\n",
                 to_string(served->state));
    rc = 1;
  } else if (served->canonical_response != local_canonical) {
    std::fprintf(stderr,
                 "smoke: daemon response differs from in-process compile\n"
                 "  daemon: %s\n  local:  %s\n",
                 served->canonical_response.c_str(), local_canonical.c_str());
    rc = 1;
  } else if (served->response.outcomes.size() != 1 ||
             !served->response.outcomes[0].verified.value_or(false)) {
    std::fprintf(stderr, "smoke: served plan did not verify\n");
    rc = 1;
  }

  // Metrics round-trip: after one served compile the registry must report
  // the work and at least one request-latency sample.
  const auto metrics = client.metrics();
  if (!metrics.has_value()) {
    std::fprintf(stderr, "smoke: metrics op failed\n");
    rc = 1;
  } else {
    const auto counter_at_least_one = [&](const char* name) {
      const service::json::Value* counters = metrics->find("counters");
      const service::json::Value* v =
          counters != nullptr ? counters->find(name) : nullptr;
      if (v == nullptr || std::atof(v->as_string().c_str()) < 1.0) {
        std::fprintf(stderr, "smoke: metrics counter %s missing or zero\n",
                     name);
        rc = 1;
      }
    };
    counter_at_least_one("service.works_run");
    counter_at_least_one("pipeline.compiles");
    const service::json::Value* hists = metrics->find("histograms");
    const service::json::Value* latency =
        hists != nullptr ? hists->find("service.request_latency_s") : nullptr;
    const service::json::Value* count =
        latency != nullptr ? latency->find("count") : nullptr;
    if (count == nullptr || std::atof(count->as_string().c_str()) < 1.0) {
      std::fprintf(stderr,
                   "smoke: request-latency histogram missing or empty\n");
      rc = 1;
    }
  }

  // Trace fetch: the served request's span tree must contain the
  // queue-wait, run, per-restart, and per-stage spans (the ISSUE's
  // acceptance shape for a single compile request).
  const auto trace = client.trace(err);
  if (!trace.has_value()) {
    std::fprintf(stderr, "smoke: trace op failed: %s\n", err.c_str());
    rc = 1;
  } else {
    const service::json::Value* events = trace->find("traceEvents");
    const auto has_span = [&](const char* name) {
      if (events == nullptr || !events->is_array()) return false;
      for (const auto& e : events->items()) {
        const service::json::Value* n = e.find("name");
        if (n != nullptr && n->is_string() && n->as_string() == name)
          return true;
      }
      return false;
    };
    for (const char* span : {"queue_wait", "run", "restart", "stage_plan",
                             "stage_transform", "stage_emit"}) {
      if (!has_span(span)) {
        std::fprintf(stderr, "smoke: trace missing span \"%s\"\n", span);
        rc = 1;
      }
    }
  }

  if (!client.shutdown()) {
    std::fprintf(stderr, "smoke: shutdown handshake failed\n");
    rc = rc == 0 ? 1 : rc;
  }
  const int exit_code = service::wait_process(pid);
  if (exit_code != 0) {
    std::fprintf(stderr, "smoke: daemon exited %d, want 0\n", exit_code);
    rc = rc == 0 ? 1 : rc;
  }
  if (rc == 0)
    std::printf(
        "smoke: ok (served == in-process, %d model CNOTs, verified, "
        "metrics+trace round-trip, clean shutdown)\n",
        served->response.outcomes[0].model_cnots);
  return rc;
}

int cmd_metrics(service::CompileClient& client) {
  const auto msg = client.metrics();
  if (!msg.has_value()) {
    std::fprintf(stderr, "femto-client: metrics failed\n");
    return 1;
  }
  const auto print_scalars = [](const char* title,
                                const service::json::Value* section) {
    if (section == nullptr || !section->is_object() ||
        section->members().empty())
      return;
    std::printf("# %s\n", title);
    for (const auto& [name, value] : section->members())
      std::printf("  %-32s %s\n", name.c_str(),
                  value.as_string().c_str());
  };
  print_scalars("counters", msg->find("counters"));
  print_scalars("gauges", msg->find("gauges"));
  const service::json::Value* hists = msg->find("histograms");
  if (hists != nullptr && hists->is_object() && !hists->members().empty()) {
    std::printf("# histograms\n");
    std::printf("  %-32s %10s %12s %10s %10s %10s\n", "name", "count",
                "sum_s", "p50_s", "p95_s", "p99_s");
    for (const auto& [name, h] : hists->members()) {
      const auto field = [&](const char* key) -> std::string {
        const service::json::Value* v = h.find(key);
        return v != nullptr ? v->as_string() : "?";
      };
      std::printf("  %-32s %10s %12s %10s %10s %10s\n", name.c_str(),
                  field("count").c_str(), field("sum_s").c_str(),
                  field("p50_s").c_str(), field("p95_s").c_str(),
                  field("p99_s").c_str());
    }
  }
  return 0;
}

int cmd_trace(service::CompileClient& client) {
  std::string err;
  const auto trace = client.trace(err);
  if (!trace.has_value()) {
    std::fprintf(stderr, "femto-client: trace failed: %s\n", err.c_str());
    return 1;
  }
  std::printf("%s\n", trace->encode().c_str());
  return 0;
}

int cmd_compile(service::CompileClient& client, const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "femto-client: cannot open %s\n", path.c_str());
    return 2;
  }
  core::CompileRequest request;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::string err;
    const auto v = service::json::parse(line, &err);
    core::CompileScenario s;
    if (!v.has_value() || !service::protocol::decode_scenario(*v, s, err)) {
      std::fprintf(stderr, "femto-client: %s:%zu: %s\n", path.c_str(),
                   line_no, err.c_str());
      return 2;
    }
    request.scenarios.push_back(std::move(s));
  }
  if (request.scenarios.empty()) {
    std::fprintf(stderr, "femto-client: %s has no scenarios\n", path.c_str());
    return 2;
  }
  std::string err;
  const auto served = client.compile(request, "cli-1", err);
  if (!served.has_value()) {
    std::fprintf(stderr, "femto-client: %s\n", err.c_str());
    return 1;
  }
  std::printf("state %s%s\n", to_string(served->state),
              served->coalesced ? " (coalesced)" : "");
  for (const auto& o : served->response.outcomes)
    std::printf("  %-16s model CNOTs %-5d device cost %d\n",
                o.scenario.c_str(), o.model_cnots, o.device_cost);
  return served->state == service::RequestState::kDone ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path, smoke_path, command, operand;
  bool cancel = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--socket") {
      const char* v = value();
      if (v == nullptr) return usage();
      socket_path = v;
    } else if (arg == "--smoke") {
      const char* v = value();
      if (v == nullptr) return usage();
      smoke_path = v;
    } else if (arg == "--cancel") {
      cancel = true;
    } else if (command.empty()) {
      command = arg;
    } else if (operand.empty()) {
      operand = arg;
    } else {
      return usage();
    }
  }
  if (!smoke_path.empty()) return cmd_smoke(smoke_path);
  if (socket_path.empty() || command.empty()) return usage();

  auto conn = service::wait_for_server(socket_path, /*timeout_ms=*/2000);
  if (!conn.has_value()) {
    std::fprintf(stderr, "femto-client: cannot connect to %s\n",
                 socket_path.c_str());
    return 2;
  }
  service::CompileClient client(std::move(*conn));
  if (command == "ping") {
    if (!client.ping()) {
      std::fprintf(stderr, "femto-client: ping failed\n");
      return 1;
    }
    std::printf("pong\n");
    return 0;
  }
  if (command == "stats") {
    const auto stats = client.stats();
    if (!stats.has_value()) {
      std::fprintf(stderr, "femto-client: stats failed\n");
      return 1;
    }
    std::printf("%s\n", stats->encode().c_str());
    return 0;
  }
  if (command == "metrics") return cmd_metrics(client);
  if (command == "trace") return cmd_trace(client);
  if (command == "shutdown") {
    if (!client.shutdown(cancel)) {
      std::fprintf(stderr, "femto-client: shutdown failed\n");
      return 1;
    }
    std::printf("shutting down (%s)\n", cancel ? "cancel" : "graceful");
    return 0;
  }
  if (command == "compile" && !operand.empty())
    return cmd_compile(client, operand);
  return usage();
}
