// femto_chaos: the end-to-end chaos drill for the femtod serving stack,
// run as the `femtod_chaos` ctest.
//
//   femto_chaos <path-to-femtod>
//
// One run walks the whole resilience story of README "Resilience":
//
//   1. Builds a small compilation database (.fdb) and compiles the same
//      seeded requests in-process for the byte-identity reference.
//   2. Torn write: a forked child arms db.write.kill and dies (exit 137)
//      mid-rewrite of that database; the parent requires the on-disk bytes
//      unchanged and the database still loadable (crash-safe persistence).
//   3. Boots a real femtod on the database, arms service.recv /
//      service.accept over the wire (`failpoints` op), and drives a fleet
//      of retrying clients (CompileClient::compile_retry) through the
//      injected connection drops.
//   4. SIGKILLs the daemon mid-serve, requires the .fdb bytes survived,
//      respawns on the same socket path, and requires the still-retrying
//      fleet to finish with every response byte-identical to the
//      in-process reference.
//   5. Degradation: a corrupt database must fail boot (exit 2) without
//      --degrade-on-db-error, and with the flag must serve bit-identical
//      to the no-database pipeline while `stats` reports degraded:true.
//
// The ctest runs with no environment; CI's chaos leg additionally exports
// FEMTO_FAILPOINTS so the daemon boots with faults already armed (the
// tool's own in-process failpoints are client-side only and harmless).
//
// Exit codes: 0 ok, 1 contract failure, 2 usage/setup error.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/failpoint.hpp"
#include "core/pipeline.hpp"
#include "db/database.hpp"
#include "obs/metrics.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"

namespace {

using namespace femto;

constexpr std::uint64_t kSeed = 20230306;

int g_failures = 0;

void check(bool ok, const char* what) {
  if (ok) {
    std::printf("chaos: ok   %s\n", what);
  } else {
    std::printf("chaos: FAIL %s\n", what);
    ++g_failures;
  }
  std::fflush(stdout);
}

/// Two small deterministic UCCSD-shaped scenarios (same shape as the smoke
/// test): rich enough to exercise synthesis + verification, fast enough to
/// run a fleet of them many times.
std::vector<core::CompileScenario> chaos_scenarios() {
  std::vector<core::CompileScenario> out;
  for (int variant = 0; variant < 2; ++variant) {
    core::CompileScenario s;
    s.name = "chaos/uccsd4-" + std::to_string(variant);
    s.num_qubits = 4;
    s.terms = {fermion::ExcitationTerm::make_double(2, 3, 0, 1),
               fermion::ExcitationTerm::single(2, 0)};
    if (variant == 1) s.terms.push_back(fermion::ExcitationTerm::single(3, 1));
    s.options.transform = core::TransformKind::kAdvanced;
    s.options.sorting = core::SortingMode::kAdvanced;
    s.options.compression = core::CompressionMode::kHybrid;
    s.options.coloring_orders = 8;
    s.options.sa_options.steps = 200;
    s.options.pso_options.particles = 6;
    s.options.pso_options.iterations = 8;
    s.options.gtsp_options.population = 8;
    s.options.gtsp_options.generations = 20;
    s.options.emit_circuit = true;
    out.push_back(std::move(s));
  }
  return out;
}

std::string canonical(const core::CompileResponse& response) {
  return service::protocol::encode_response(
             service::protocol::summarize(response, /*include_circuit=*/true))
      .encode();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return in ? out.str() : "";
}

pid_t spawn_femtod(const std::string& femtod, const std::string& socket_path,
                   const std::string& db_path, bool degrade) {
  std::vector<std::string> argv = {femtod, "--socket", socket_path,
                                   "--workers", "2"};
  if (!db_path.empty()) {
    argv.push_back("--db");
    argv.push_back(db_path);
  }
  if (degrade) argv.push_back("--degrade-on-db-error");
  return service::spawn_process(argv);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <path-to-femtod>\n", argv[0]);
    return 2;
  }
  const std::string femtod = argv[1];
  const std::string base = "/tmp/femto-chaos-" + std::to_string(::getpid());
  const std::string db_path = base + ".fdb";

  // FEMTO_FAILPOINTS in the environment is for the daemons this tool
  // spawns (they inherit and re-parse it); the harness itself must build
  // its database and reference responses fault-free, so its own in-process
  // registry is cleared up front. CI's chaos leg arms bit-identity-
  // preserving faults (cache.insert, pipeline.restart) in the env; the
  // connection-tearing faults are armed over the wire below, where the
  // fleet is built to retry through them.
  fail::registry().disarm_all();

  // ---- phase 1: database + in-process reference ---------------------------
  const std::vector<core::CompileScenario> scenarios = chaos_scenarios();
  std::vector<core::CompileRequest> requests;
  for (const core::CompileScenario& s : scenarios)
    requests.push_back(
        {.scenarios = {s}, .restarts = 2, .seed = kSeed, .verify = true});

  std::vector<std::string> reference;
  {
    db::DatabaseBuilder builder;
    // Scoped so the worker threads are joined before the fork below.
    core::CompilePipeline recorder({.workers = 2});
    recorder.set_store(&builder);
    for (const core::CompileRequest& r : requests) {
      const core::CompileResponse response = recorder.compile(r);
      if (!response.done()) {
        std::fprintf(stderr, "chaos: reference compile failed: %s\n",
                     response.detail.c_str());
        return 2;
      }
      reference.push_back(canonical(response));
    }
    if (const std::string err = builder.write(db_path); !err.empty()) {
      std::fprintf(stderr, "chaos: db build failed: %s\n", err.c_str());
      return 2;
    }
  }
  const std::string db_bytes = read_file(db_path);
  check(!db_bytes.empty(), "database built");

  // ---- phase 2: torn write (kill mid-rewrite) -----------------------------
  {
    const pid_t child = ::fork();
    if (child == 0) {
      // Rewrite the database with db.write.kill armed: the first chunk
      // write _Exit(137)s, leaving a torn tmp file but never touching the
      // published path.
      fail::registry().arm_one({"db.write.kill", 1.0, 1});
      std::string err;
      const auto db = db::Database::open(db_path, &err);
      if (db.has_value()) {
        db::DatabaseBuilder again;
        again.merge_from(*db);
        (void)again.write(db_path);
      }
      ::_exit(0);  // only reached if the failpoint never fired
    }
    int status = 0;
    ::waitpid(child, &status, 0);
    check(WIFEXITED(status) && WEXITSTATUS(status) == 137,
          "torn-write child died mid-write (exit 137)");
    check(read_file(db_path) == db_bytes,
          "database bytes untouched by the torn write");
    std::string err;
    const auto reopened = db::Database::open(db_path, &err);
    check(reopened.has_value() &&
              reopened->entry_count() == requests.size(),
          "database still loadable after the torn write");
    ::unlink((db_path + ".tmp." + std::to_string(child)).c_str());
  }

  // ---- phase 3+4: daemon under chaos, SIGKILL, restart, fleet -------------
  const std::string socket_path = base + "-serve.sock";
  pid_t daemon = spawn_femtod(femtod, socket_path, db_path, false);
  if (daemon < 0) {
    std::fprintf(stderr, "chaos: cannot spawn %s\n", femtod.c_str());
    return 2;
  }
  {
    auto admin_conn = service::wait_for_server(socket_path);
    if (!admin_conn.has_value()) {
      std::fprintf(stderr, "chaos: daemon socket never came up\n");
      ::kill(daemon, SIGKILL);
      return 2;
    }
    service::CompileClient admin(std::move(*admin_conn));
    std::string err;
    const auto armed = admin.failpoints(
        "service.recv:0.25:11,service.accept:0.15:13", "", err);
    check(armed.has_value(), "service.recv/service.accept armed over the wire");
  }

  const double retries_before =
      obs::registry().counter("service.retries").value();
  const std::size_t kClients = 3;
  const std::size_t kRoundsPerClient = 2;
  std::atomic<std::size_t> completed{0};
  std::atomic<int> fleet_failures{0};
  std::atomic<int> fleet_mismatches{0};
  std::vector<std::thread> fleet;
  for (std::size_t c = 0; c < kClients; ++c) {
    fleet.emplace_back([&, c] {
      service::RetryPolicy policy;
      policy.max_attempts = 60;
      policy.base_delay_s = 0.02;
      policy.max_delay_s = 0.25;
      policy.seed = 100 + c;  // decorrelate the fleet's back-off
      service::CompileClient client(socket_path, policy);
      for (std::size_t r = 0; r < kRoundsPerClient; ++r) {
        const std::size_t idx = (c + r) % requests.size();
        std::string err;
        const auto served = client.compile_retry(
            requests[idx],
            "fleet-" + std::to_string(c) + "-" + std::to_string(r), err,
            /*include_circuit=*/true);
        if (!served.has_value() ||
            served->state != service::RequestState::kDone) {
          std::fprintf(stderr, "chaos: fleet compile failed: %s\n",
                       err.c_str());
          fleet_failures.fetch_add(1);
        } else if (served->canonical_response != reference[idx]) {
          fleet_mismatches.fetch_add(1);
        }
        completed.fetch_add(1);
      }
    });
  }

  // SIGKILL the daemon once the fleet is mid-serve (at least one response
  // landed, more in flight), then verify the database and respawn on the
  // same socket path. The fleet's retry policies ride out the gap.
  const auto kill_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  while (completed.load() < 1 &&
         std::chrono::steady_clock::now() < kill_deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ::kill(daemon, SIGKILL);
  {
    int status = 0;
    ::waitpid(daemon, &status, 0);
    check(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL,
          "daemon SIGKILLed mid-serve");
  }
  check(read_file(db_path) == db_bytes, "database bytes survived the SIGKILL");

  daemon = spawn_femtod(femtod, socket_path, db_path, false);
  check(daemon > 0, "daemon respawned on the same socket path");
  for (std::thread& t : fleet) t.join();
  check(fleet_failures.load() == 0,
        "every fleet request completed (through drops, kill, and restart)");
  check(fleet_mismatches.load() == 0,
        "every fleet response byte-identical to the in-process reference");
  const double retries_after =
      obs::registry().counter("service.retries").value();
  check(retries_after > retries_before,
        "the fleet actually retried (service.retries grew)");
  {
    auto conn = service::wait_for_server(socket_path, 2000);
    bool clean = false;
    if (conn.has_value()) {
      service::CompileClient client(std::move(*conn));
      clean = client.shutdown();
    }
    clean = service::wait_process(daemon) == 0 && clean;
    check(clean, "respawned daemon drained cleanly");
  }

  // ---- phase 5: corrupt database -> loud failure or loud degradation ------
  const std::string corrupt_path = base + "-corrupt.fdb";
  {
    std::ofstream out(corrupt_path, std::ios::binary);
    out << "this is not a compilation database\n";
  }
  {
    // Without the flag a corrupt --db must be a boot failure, exit 2.
    const pid_t strict =
        spawn_femtod(femtod, base + "-strict.sock", corrupt_path, false);
    check(strict > 0 && service::wait_process(strict) == 2,
          "corrupt database without --degrade-on-db-error exits 2");
  }
  {
    const std::string degraded_socket = base + "-degraded.sock";
    const pid_t degraded =
        spawn_femtod(femtod, degraded_socket, corrupt_path, true);
    bool served_identical = false;
    bool stats_degraded = false;
    bool clean = false;
    if (degraded > 0) {
      if (auto conn = service::wait_for_server(degraded_socket)) {
        service::CompileClient client(std::move(*conn));
        std::string err;
        const auto served = client.compile(requests[0], "degraded-1", err,
                                           /*include_circuit=*/true);
        served_identical = served.has_value() &&
                           served->state == service::RequestState::kDone &&
                           served->canonical_response == reference[0];
        const auto stats = client.stats();
        const service::json::Value* flag =
            stats.has_value() ? stats->find("degraded") : nullptr;
        stats_degraded =
            flag != nullptr && flag->is_bool() && flag->as_bool();
        clean = client.shutdown();
      }
      clean = service::wait_process(degraded) == 0 && clean;
    }
    check(served_identical,
          "degraded daemon serves bit-identical to the no-database pipeline");
    check(stats_degraded, "degraded daemon reports degraded:true in stats");
    check(clean, "degraded daemon drained cleanly");
  }

  ::unlink(db_path.c_str());
  ::unlink(corrupt_path.c_str());
  if (g_failures == 0) {
    std::printf("chaos: ok (all phases)\n");
    return 0;
  }
  std::printf("chaos: %d failure(s)\n", g_failures);
  return 1;
}
