// femto-db: build, append, inspect, and verify persistent compilation
// databases (src/db/database.hpp).
//
//   femto-db build <out.fdb> [--suite small|table1] [--append <old.fdb>]
//                  [--workers N] [--restarts N]
//       Compiles the suite with a recording DatabaseBuilder attached to the
//       pipeline's synthesis cache and writes every synthesized segment,
//       keyed canonically. --append first merges an existing database, so
//       the rebuild workflow is: build --append old.fdb new.fdb && mv.
//
//   femto-db info <db.fdb>
//       Header fields, entry count, byte sizes, and Gamma-orbit statistics
//       (how many entries are relabelings of one another).
//
//   femto-db verify <db.fdb>
//       Re-synthesizes EVERY entry from its decoded canonical key and
//       compares gate-for-gate with the stored circuit -- the database's
//       bit-identity contract, checked exhaustively. Exit 1 on any mismatch.
//
//   femto-db export-scenarios <suite> <out.jsonl>
//       Writes a suite as canonical protocol scenario JSON, one per line --
//       the SAME encoding femtod speaks on the wire (service/protocol.hpp),
//       so exported files are build inputs here and compile requests there.
//
// Exit codes: 0 ok, 1 verification failure, 2 usage / IO / format error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_fixtures.hpp"
#include "core/pipeline.hpp"
#include "db/database.hpp"
#include "service/protocol.hpp"

namespace {

using namespace femto;

int usage() {
  std::fprintf(stderr,
               "usage: femto-db build <out.fdb> [--suite small|table1] "
               "[--scenarios <file.jsonl>] "
               "[--append <old.fdb>] [--workers N] [--restarts N]\n"
               "       femto-db info <db.fdb>\n"
               "       femto-db verify <db.fdb>\n"
               "       femto-db export-scenarios <suite> <out.jsonl>\n");
  return 2;
}

/// Reads one canonical protocol scenario per line (the femtod wire
/// encoding, produced by export-scenarios or any protocol client).
std::vector<core::CompileScenario> load_scenarios(const std::string& path,
                                                  std::string& err) {
  std::ifstream in(path);
  if (!in) {
    err = "cannot open scenario file: " + path;
    return {};
  }
  std::vector<core::CompileScenario> scenarios;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::string parse_err;
    const auto v = service::json::parse(line, &parse_err);
    core::CompileScenario s;
    if (!v.has_value() ||
        !service::protocol::decode_scenario(*v, s, parse_err)) {
      err = path + ":" + std::to_string(line_no) + ": " + parse_err;
      return {};
    }
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

int cmd_build(int argc, char** argv) {
  std::string out_path, suite = "small", append_path, scenario_path;
  std::size_t workers = 0, restarts = 1;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--suite") {
      const char* v = value();
      if (v == nullptr) return usage();
      suite = v;
    } else if (arg == "--scenarios") {
      const char* v = value();
      if (v == nullptr) return usage();
      scenario_path = v;
    } else if (arg == "--append") {
      const char* v = value();
      if (v == nullptr) return usage();
      append_path = v;
    } else if (arg == "--workers") {
      const char* v = value();
      if (v == nullptr) return usage();
      workers = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--restarts") {
      const char* v = value();
      if (v == nullptr) return usage();
      restarts = static_cast<std::size_t>(std::atol(v));
    } else if (out_path.empty() && arg[0] != '-') {
      out_path = arg;
    } else {
      return usage();
    }
  }
  if (out_path.empty() || restarts < 1) return usage();

  db::DatabaseBuilder builder;
  if (!append_path.empty()) {
    std::string err;
    const auto old = db::Database::open(append_path, &err);
    if (!old.has_value()) {
      std::fprintf(stderr, "femto-db: %s\n", err.c_str());
      return 2;
    }
    builder.merge_from(*old);
    std::printf("merged %zu entries from %s\n", old->entry_count(),
                append_path.c_str());
  }

  std::vector<core::CompileScenario> scenarios;
  if (!scenario_path.empty()) {
    std::string err;
    scenarios = load_scenarios(scenario_path, err);
    if (scenarios.empty()) {
      std::fprintf(stderr, "femto-db: %s\n",
                   err.empty() ? "scenario file is empty" : err.c_str());
      return 2;
    }
  } else {
    scenarios = bench::suite_scenarios(suite);
    if (scenarios.empty()) {
      std::fprintf(stderr, "femto-db: unknown suite '%s'\n", suite.c_str());
      return usage();
    }
  }
  core::PipelineOptions popt;
  popt.workers = workers;
  popt.restarts = restarts;
  core::CompilePipeline pipeline(popt);
  pipeline.set_store(&builder);
  const auto results = restarts > 1
                           ? [&] {
                               std::vector<core::CompileResult> out;
                               for (auto& m : pipeline.compile_batch_best(scenarios))
                                 out.push_back(std::move(m.best));
                               return out;
                             }()
                           : pipeline.compile_batch(scenarios);
  for (std::size_t i = 0; i < scenarios.size(); ++i)
    std::printf("  %-12s model CNOTs %d\n", scenarios[i].name.c_str(),
                results[i].model_cnots);

  if (const std::string err = builder.write(out_path); !err.empty()) {
    std::fprintf(stderr, "femto-db: %s\n", err.c_str());
    return 2;
  }
  const auto stats = pipeline.cache().stats();
  std::printf(
      "wrote %zu entries to %s (cache: %zu hits, %zu misses, ~%zu KiB)\n",
      builder.size(), out_path.c_str(), stats.hits, stats.misses,
      stats.approx_bytes / 1024);
  return 0;
}

int cmd_info(const char* path) {
  std::string err;
  const auto database = db::Database::open(path, &err);
  if (!database.has_value()) {
    std::fprintf(stderr, "femto-db: %s\n", err.c_str());
    return 2;
  }
  std::size_t gates = 0, key_bytes = 0;
  std::map<std::uint64_t, std::size_t> orbits;
  for (std::size_t i = 0; i < database->entry_count(); ++i) {
    const auto c = database->circuit_at(i);
    if (c.has_value()) gates += c->gates().size();
    key_bytes += database->key(i).size();
    ++orbits[database->orbit_hash(i)];
  }
  std::size_t largest_orbit = 0;
  for (const auto& [hash, count] : orbits)
    largest_orbit = std::max(largest_orbit, count);
  std::printf("%s\n", path);
  std::printf("  format version      %u\n", database->format_version());
  std::printf("  synthesis contract  %u\n", database->synthesis_contract());
  std::printf("  file bytes          %zu\n", database->file_bytes());
  std::printf("  entries             %zu\n", database->entry_count());
  std::printf("  key bytes           %zu\n", key_bytes);
  std::printf("  stored gates        %zu\n", gates);
  std::printf("  distinct orbits     %zu (largest %zu entries)\n",
              orbits.size(), largest_orbit);
  return 0;
}

int cmd_verify(const char* path) {
  std::string err;
  const auto database = db::Database::open(path, &err);
  if (!database.has_value()) {
    std::fprintf(stderr, "femto-db: %s\n", err.c_str());
    return 2;
  }
  std::size_t failures = 0;
  for (std::size_t i = 0; i < database->entry_count(); ++i) {
    const auto decoded = db::decode_key(database->key(i));
    if (!decoded.has_value()) {
      std::fprintf(stderr, "entry %zu: canonical key does not decode\n", i);
      ++failures;
      continue;
    }
    const auto stored = database->circuit_at(i);
    if (!stored.has_value()) {
      std::fprintf(stderr, "entry %zu: stored circuit does not decode\n", i);
      ++failures;
      continue;
    }
    const circuit::QuantumCircuit fresh = synth::synthesize_sequence(
        decoded->n, decoded->seq, decoded->policy, decoded->native);
    if (fresh.gates() != stored->gates() ||
        fresh.num_qubits() != stored->num_qubits()) {
      std::fprintf(stderr,
                   "entry %zu: stored circuit differs from fresh synthesis "
                   "(%zu vs %zu gates)\n",
                   i, stored->gates().size(), fresh.gates().size());
      ++failures;
    }
  }
  if (failures != 0) {
    std::fprintf(stderr, "femto-db: %zu of %zu entries FAILED verification\n",
                 failures, database->entry_count());
    return 1;
  }
  std::printf("all %zu entries verified bit-identical to fresh synthesis\n",
              database->entry_count());
  return 0;
}

int cmd_export_scenarios(const char* suite, const char* out_path) {
  const std::vector<core::CompileScenario> scenarios =
      bench::suite_scenarios(suite);
  if (scenarios.empty()) {
    std::fprintf(stderr, "femto-db: unknown suite '%s'\n", suite);
    return usage();
  }
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "femto-db: cannot write %s\n", out_path);
    return 2;
  }
  for (const core::CompileScenario& s : scenarios)
    out << service::protocol::encode_scenario(s).encode() << '\n';
  out.close();
  std::printf("wrote %zu canonical scenarios to %s\n", scenarios.size(),
              out_path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  if (cmd == "build") return cmd_build(argc - 2, argv + 2);
  if (cmd == "info") return cmd_info(argv[2]);
  if (cmd == "verify") return cmd_verify(argv[2]);
  if (cmd == "export-scenarios" && argc >= 4)
    return cmd_export_scenarios(argv[2], argv[3]);
  return usage();
}
