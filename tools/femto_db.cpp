// femto-db: build, append, inspect, and verify persistent compilation
// databases (src/db/database.hpp).
//
//   femto-db build <out.fdb> [--suite small|table1] [--append <old.fdb>]
//                  [--workers N] [--restarts N]
//       Compiles the suite with a recording DatabaseBuilder attached to the
//       pipeline's synthesis cache and writes every synthesized segment,
//       keyed canonically. --append first merges an existing database, so
//       the rebuild workflow is: build --append old.fdb new.fdb && mv.
//
//   femto-db info <db.fdb>
//       Header fields, entry count, byte sizes, and Gamma-orbit statistics
//       (how many entries are relabelings of one another).
//
//   femto-db verify <db.fdb>
//       Re-synthesizes EVERY entry from its decoded canonical key and
//       compares gate-for-gate with the stored circuit -- the database's
//       bit-identity contract, checked exhaustively. Exit 1 on any mismatch.
//
// Exit codes: 0 ok, 1 verification failure, 2 usage / IO / format error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench_fixtures.hpp"
#include "core/pipeline.hpp"
#include "db/database.hpp"

namespace {

using namespace femto;

int usage() {
  std::fprintf(stderr,
               "usage: femto-db build <out.fdb> [--suite small|table1] "
               "[--append <old.fdb>] [--workers N] [--restarts N]\n"
               "       femto-db info <db.fdb>\n"
               "       femto-db verify <db.fdb>\n");
  return 2;
}

/// The compile scenarios whose segments the database records: Table-1
/// columns at the bench fixtures' solver budgets, with circuits emitted
/// (counting-only compiles synthesize nothing worth persisting).
std::vector<core::CompileScenario> make_suite(const std::string& suite) {
  struct Entry {
    std::string label;
    chem::Molecule mol;
    std::size_t ne;
  };
  std::vector<Entry> entries;
  std::vector<std::string> columns;
  if (suite == "small") {
    entries = {{"HF", chem::make_hf(), 3},
               {"LiH", chem::make_lih(), 3},
               {"H2O(4)", chem::make_h2o(), 4},
               {"H2O(5)", chem::make_h2o(), 5},
               {"H2O(6)", chem::make_h2o(), 6}};
    columns = {"Adv"};
  } else if (suite == "table1") {
    entries = {{"HF", chem::make_hf(), 3},
               {"LiH", chem::make_lih(), 3},
               {"BeH2", chem::make_beh2(), 9}};
    for (std::size_t ne : {4, 5, 6, 8, 9, 11, 12, 14, 16, 17})
      entries.push_back({"H2O(" + std::to_string(ne) + ")",
                         chem::make_h2o(), ne});
    columns = {"JW", "BK", "GT", "Adv"};
  } else {
    return {};
  }
  std::vector<core::CompileScenario> scenarios;
  for (const Entry& e : entries) {
    const bench::TermFixture f = bench::molecule_fixture(e.mol, e.ne);
    for (const std::string& column : columns) {
      core::CompileScenario s;
      s.name = e.label + "/" + column;
      s.num_qubits = f.n;
      s.terms = f.terms;
      s.options = bench::table1_column_options(column, f.terms.size());
      s.options.emit_circuit = true;  // persist real artifacts, not counts
      scenarios.push_back(std::move(s));
    }
  }
  return scenarios;
}

int cmd_build(int argc, char** argv) {
  std::string out_path, suite = "small", append_path;
  std::size_t workers = 0, restarts = 1;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--suite") {
      const char* v = value();
      if (v == nullptr) return usage();
      suite = v;
    } else if (arg == "--append") {
      const char* v = value();
      if (v == nullptr) return usage();
      append_path = v;
    } else if (arg == "--workers") {
      const char* v = value();
      if (v == nullptr) return usage();
      workers = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--restarts") {
      const char* v = value();
      if (v == nullptr) return usage();
      restarts = static_cast<std::size_t>(std::atol(v));
    } else if (out_path.empty() && arg[0] != '-') {
      out_path = arg;
    } else {
      return usage();
    }
  }
  if (out_path.empty() || restarts < 1) return usage();

  db::DatabaseBuilder builder;
  if (!append_path.empty()) {
    std::string err;
    const auto old = db::Database::open(append_path, &err);
    if (!old.has_value()) {
      std::fprintf(stderr, "femto-db: %s\n", err.c_str());
      return 2;
    }
    builder.merge_from(*old);
    std::printf("merged %zu entries from %s\n", old->entry_count(),
                append_path.c_str());
  }

  const std::vector<core::CompileScenario> scenarios = make_suite(suite);
  if (scenarios.empty()) {
    std::fprintf(stderr, "femto-db: unknown suite '%s'\n", suite.c_str());
    return usage();
  }
  core::PipelineOptions popt;
  popt.workers = workers;
  popt.restarts = restarts;
  core::CompilePipeline pipeline(popt);
  pipeline.set_store(&builder);
  const auto results = restarts > 1
                           ? [&] {
                               std::vector<core::CompileResult> out;
                               for (auto& m : pipeline.compile_batch_best(scenarios))
                                 out.push_back(std::move(m.best));
                               return out;
                             }()
                           : pipeline.compile_batch(scenarios);
  for (std::size_t i = 0; i < scenarios.size(); ++i)
    std::printf("  %-12s model CNOTs %d\n", scenarios[i].name.c_str(),
                results[i].model_cnots);

  if (const std::string err = builder.write(out_path); !err.empty()) {
    std::fprintf(stderr, "femto-db: %s\n", err.c_str());
    return 2;
  }
  const auto stats = pipeline.cache().stats();
  std::printf(
      "wrote %zu entries to %s (cache: %zu hits, %zu misses, ~%zu KiB)\n",
      builder.size(), out_path.c_str(), stats.hits, stats.misses,
      stats.approx_bytes / 1024);
  return 0;
}

int cmd_info(const char* path) {
  std::string err;
  const auto database = db::Database::open(path, &err);
  if (!database.has_value()) {
    std::fprintf(stderr, "femto-db: %s\n", err.c_str());
    return 2;
  }
  std::size_t gates = 0, key_bytes = 0;
  std::map<std::uint64_t, std::size_t> orbits;
  for (std::size_t i = 0; i < database->entry_count(); ++i) {
    const auto c = database->circuit_at(i);
    if (c.has_value()) gates += c->gates().size();
    key_bytes += database->key(i).size();
    ++orbits[database->orbit_hash(i)];
  }
  std::size_t largest_orbit = 0;
  for (const auto& [hash, count] : orbits)
    largest_orbit = std::max(largest_orbit, count);
  std::printf("%s\n", path);
  std::printf("  format version      %u\n", database->format_version());
  std::printf("  synthesis contract  %u\n", database->synthesis_contract());
  std::printf("  file bytes          %zu\n", database->file_bytes());
  std::printf("  entries             %zu\n", database->entry_count());
  std::printf("  key bytes           %zu\n", key_bytes);
  std::printf("  stored gates        %zu\n", gates);
  std::printf("  distinct orbits     %zu (largest %zu entries)\n",
              orbits.size(), largest_orbit);
  return 0;
}

int cmd_verify(const char* path) {
  std::string err;
  const auto database = db::Database::open(path, &err);
  if (!database.has_value()) {
    std::fprintf(stderr, "femto-db: %s\n", err.c_str());
    return 2;
  }
  std::size_t failures = 0;
  for (std::size_t i = 0; i < database->entry_count(); ++i) {
    const auto decoded = db::decode_key(database->key(i));
    if (!decoded.has_value()) {
      std::fprintf(stderr, "entry %zu: canonical key does not decode\n", i);
      ++failures;
      continue;
    }
    const auto stored = database->circuit_at(i);
    if (!stored.has_value()) {
      std::fprintf(stderr, "entry %zu: stored circuit does not decode\n", i);
      ++failures;
      continue;
    }
    const circuit::QuantumCircuit fresh = synth::synthesize_sequence(
        decoded->n, decoded->seq, decoded->policy, decoded->native);
    if (fresh.gates() != stored->gates() ||
        fresh.num_qubits() != stored->num_qubits()) {
      std::fprintf(stderr,
                   "entry %zu: stored circuit differs from fresh synthesis "
                   "(%zu vs %zu gates)\n",
                   i, stored->gates().size(), fresh.gates().size());
      ++failures;
    }
  }
  if (failures != 0) {
    std::fprintf(stderr, "femto-db: %zu of %zu entries FAILED verification\n",
                 failures, database->entry_count());
    return 1;
  }
  std::printf("all %zu entries verified bit-identical to fresh synthesis\n",
              database->entry_count());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  if (cmd == "build") return cmd_build(argc - 2, argv + 2);
  if (cmd == "info") return cmd_info(argv[2]);
  if (cmd == "verify") return cmd_verify(argv[2]);
  return usage();
}
