// femtod: the long-running compilation service daemon.
//
// Boots one shared CompilePipeline (one SynthesisCache, optionally backed
// by a persistent database as read-through L2), binds an AF_UNIX socket,
// and serves the JSON-line protocol of src/service/server.hpp: compile
// requests stream in, lifecycle-tracked tickets stream results back, and
// identical in-flight requests coalesce onto one execution.
//
//   femtod --socket <path> [--workers N] [--max-queue N] [--db <path.fdb>]
//          [--default-deadline S] [--trace-dir <dir>] [--log]
//          [--degrade-on-db-error]
//
// --degrade-on-db-error turns a missing/corrupt --db file from a boot
// failure (exit 2) into DEGRADED serving: a loud stderr line, the
// service.degraded gauge raised, and every compile served from pure
// in-process synthesis -- bit-identical to a daemon that never had a
// database (the DB only memoizes a pure function). The `stats` op reports
// "degraded": true so fleets can alert on it.
//
// --trace-dir enables per-request tracing: every completed work writes a
// Chrome trace-event JSON (loadable in Perfetto / chrome://tracing) to
// <dir>/request-<id>.json, and the `trace` wire op serves the most recent
// one. The `metrics` op (always available) exports the unified metrics
// registry: cache hit/miss counters, request-latency percentiles, live
// queue gauges.
//
// Prints "femtod: serving on <path>" once the socket accepts connections
// (drivers wait for the line OR poll-connect the socket). Shuts down on
// the protocol's shutdown op or on SIGTERM/SIGINT, draining gracefully:
// in-flight and queued work finishes, then the socket is torn down and a
// final stats line is printed. Exit 0 on a clean drain, 2 on usage/setup
// errors.
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <sys/stat.h>

#include "common/failpoint.hpp"
#include "db/database.hpp"
#include "service/server.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

int usage() {
  std::fprintf(stderr,
               "usage: femtod --socket <path> [--workers N] [--max-queue N] "
               "[--db <path.fdb>] [--default-deadline S] "
               "[--trace-dir <dir>] [--log] [--degrade-on-db-error]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace femto;

  std::string socket_path, db_path;
  service::ServiceOptions service_options;
  bool log = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--socket") {
      const char* v = value();
      if (v == nullptr) return usage();
      socket_path = v;
    } else if (arg == "--workers") {
      const char* v = value();
      if (v == nullptr) return usage();
      service_options.pipeline.workers =
          static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--max-queue") {
      const char* v = value();
      if (v == nullptr) return usage();
      service_options.max_queue = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--db") {
      const char* v = value();
      if (v == nullptr) return usage();
      db_path = v;
    } else if (arg == "--default-deadline") {
      const char* v = value();
      if (v == nullptr) return usage();
      service_options.default_deadline_s = std::atof(v);
    } else if (arg == "--trace-dir") {
      const char* v = value();
      if (v == nullptr) return usage();
      service_options.trace_dir = v;
    } else if (arg == "--log") {
      log = true;
    } else if (arg == "--degrade-on-db-error") {
      service_options.pipeline.degrade_on_db_error = true;
    } else {
      return usage();
    }
  }
  if (socket_path.empty() || service_options.max_queue == 0) return usage();
  service_options.log = log;
  // Per-request knobs (restarts, verify, seed) arrive on the wire; the
  // pipeline-level defaults only matter for the adapter API, not femtod.
  service_options.pipeline.restarts = 1;

  if (!service_options.trace_dir.empty()) {
    // Create the directory up front so the first trace write cannot fail
    // silently mid-serve; an existing directory is fine.
    if (::mkdir(service_options.trace_dir.c_str(), 0755) != 0 &&
        errno != EEXIST) {
      std::fprintf(stderr, "femtod: cannot create trace dir %s: %s\n",
                   service_options.trace_dir.c_str(), std::strerror(errno));
      return 2;
    }
  }

  if (!db_path.empty()) {
    // Validate up front for a clean exit code; the pipeline re-opens it
    // (and would abort on failure, which a daemon should never do on argv).
    // With --degrade-on-db-error the pipeline ctor handles the failure
    // itself (loud log + degraded serving), so boot proceeds.
    std::string err;
    if (!db::Database::open(db_path, &err).has_value() &&
        !service_options.pipeline.degrade_on_db_error) {
      std::fprintf(stderr, "femtod: %s\n", err.c_str());
      return 2;
    }
    service_options.pipeline.database_path = db_path;
  }

  // Force FEMTO_FAILPOINTS parsing now: a malformed spec must kill the
  // boot, not the first armed evaluation mid-serve.
  static_cast<void>(fail::registry());

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  service::SocketServer server({.socket_path = socket_path,
                                .service = service_options,
                                .log = log});
  if (const std::string err = server.start(); !err.empty()) {
    std::fprintf(stderr, "femtod: %s\n", err.c_str());
    return 2;
  }
  std::printf("femtod: serving on %s (workers %zu, queue %zu%s)\n",
              socket_path.c_str(),
              server.service().pipeline().worker_count(),
              service_options.max_queue,
              db_path.empty() ? ""
              : server.service().pipeline().db_degraded()
                  ? ", db DEGRADED"
                  : ", db attached");
  std::fflush(stdout);

  server.run([] { return g_stop != 0; });

  const service::ServiceStats stats = server.service().stats();
  std::printf(
      "femtod: drained; submitted %llu (coalesced %llu) -> done %llu, "
      "cancelled %llu, deadline %llu, rejected %llu; %llu works run, "
      "%llu plans served\n",
      static_cast<unsigned long long>(stats.submitted),
      static_cast<unsigned long long>(stats.coalesced),
      static_cast<unsigned long long>(stats.done),
      static_cast<unsigned long long>(stats.cancelled),
      static_cast<unsigned long long>(stats.deadline_exceeded),
      static_cast<unsigned long long>(stats.rejected),
      static_cast<unsigned long long>(stats.works_run),
      static_cast<unsigned long long>(stats.plans_served));
  return 0;
}
