// Experiment E3: ablation of the advanced sorting (paper Sec. III-B).
//
// For the water fermionic segments, compares the CNOT model count under:
//   none      : natural string order, first-support targets
//   baseline  : per-term shared target + exact intra order + doubly greedy
//   gtsp-ga   : the paper's joint GTSP (order + per-string targets)
// plus wall-time per mode (google-benchmark).
#include <cstdio>
#include <string>

#include "bench_harness.hpp"

#include "chem/integrals.hpp"
#include "chem/mo_integrals.hpp"
#include "chem/molecules.hpp"
#include "chem/scf.hpp"
#include "core/compiler.hpp"
#include "vqe/uccsd.hpp"

namespace {

using namespace femto;

struct Fixture {
  std::size_t n = 0;
  std::vector<fermion::ExcitationTerm> terms;
};

const Fixture& water_terms(std::size_t ne) {
  static Fixture fixtures[32];
  Fixture& f = fixtures[ne];
  if (f.n == 0) {
    const auto mol = chem::make_h2o();
    auto basis = chem::build_sto3g(mol);
    chem::normalize_basis(basis);
    const auto ints = chem::compute_integrals(mol, basis);
    const auto scf = chem::run_rhf(mol, ints);
    const auto mo = chem::transform_to_mo(mol, ints, scf);
    const auto so = chem::to_spin_orbitals(mo);
    const auto all = vqe::uccsd_hmp2_terms(so);
    f.n = so.n;
    f.terms.assign(all.begin(),
                   all.begin() + static_cast<std::ptrdiff_t>(ne));
  }
  return f;
}

int count_with_sorting(const Fixture& f, core::SortingMode mode) {
  core::CompileOptions opt;
  opt.emit_circuit = false;
  opt.transform = core::TransformKind::kJordanWigner;  // isolate sorting
  opt.compression = core::CompressionMode::kNone;      // all-fermionic
  opt.sorting = mode;
  return core::compile_vqe(f.n, f.terms, opt).model_cnots;
}

void bench_sorting(bench::Harness& h, const char* name,
                   core::SortingMode mode, std::size_t ne) {
  const Fixture& f = water_terms(ne);
  int count = 0;
  h.run(std::string("sort/") + name + "_water" + std::to_string(ne), 3,
        [&] { count = count_with_sorting(f, mode); });
  h.metric("cnots", count);
}

}  // namespace

int main() {
  bench::Harness h("ablation_sorting");
  for (std::size_t ne : {4, 8, 12}) {
    bench_sorting(h, "none", core::SortingMode::kNone, ne);
    bench_sorting(h, "baseline", core::SortingMode::kBaseline, ne);
    bench_sorting(h, "gtsp_ga", core::SortingMode::kAdvanced, ne);
  }
  // Summary table (the ablation result itself).
  std::printf("\n# E3 sorting ablation (water, JW, no compression)\n");
  std::printf("%4s %8s %10s %9s\n", "Ne", "none", "baseline", "gtsp-ga");
  for (std::size_t ne : {4, 8, 12, 17}) {
    const Fixture& f = water_terms(ne);
    const int c_none = count_with_sorting(f, core::SortingMode::kNone);
    const int c_base = count_with_sorting(f, core::SortingMode::kBaseline);
    const int c_adv = count_with_sorting(f, core::SortingMode::kAdvanced);
    std::printf("%4zu %8d %10d %9d\n", ne, c_none, c_base, c_adv);
    h.section("summary/water" + std::to_string(ne));
    h.metric("none", c_none);
    h.metric("baseline", c_base);
    h.metric("gtsp_ga", c_adv);
  }
  return h.write_json() ? 0 : 1;
}
