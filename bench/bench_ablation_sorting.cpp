// Experiment E3: ablation of the advanced sorting (paper Sec. III-B).
//
// For the water fermionic segments, compares the CNOT model count under:
//   none      : natural string order, first-support targets
//   baseline  : per-term shared target + exact intra order + doubly greedy
//   gtsp-ga   : the paper's joint GTSP (order + per-string targets)
// The three modes of each ansatz size are batch-compiled in one
// CompilePipeline call (core/pipeline.hpp), so the sweep saturates every
// available worker; the per-size timed section measures the whole batch.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_fixtures.hpp"
#include "bench_harness.hpp"

#include "core/pipeline.hpp"

namespace {

using namespace femto;

constexpr const char* kModeNames[] = {"none", "baseline", "gtsp_ga"};
constexpr core::SortingMode kModes[] = {core::SortingMode::kNone,
                                        core::SortingMode::kBaseline,
                                        core::SortingMode::kAdvanced};

/// The three sorting-mode scenarios of one ansatz size (JW, no compression:
/// isolates sorting).
std::vector<core::CompileScenario> mode_scenarios(std::size_t ne) {
  const bench::TermFixture& f = bench::water_terms(ne);
  std::vector<core::CompileScenario> scenarios;
  for (std::size_t m = 0; m < 3; ++m) {
    core::CompileScenario s;
    s.name = std::string(kModeNames[m]) + "_water" + std::to_string(ne);
    s.num_qubits = f.n;
    s.terms = f.terms;
    s.options.emit_circuit = false;
    s.options.transform = core::TransformKind::kJordanWigner;
    s.options.compression = core::CompressionMode::kNone;
    s.options.sorting = kModes[m];
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

}  // namespace

int main() {
  bench::Harness h("ablation_sorting");
  core::CompilePipeline pipeline;
  for (std::size_t ne : {4, 8, 12}) {
    const auto scenarios = mode_scenarios(ne);
    std::vector<core::CompileResult> results;
    h.run("sort/batch_water" + std::to_string(ne), 3,
          [&] { results = pipeline.compile_batch(scenarios); });
    for (std::size_t m = 0; m < results.size(); ++m)
      h.metric(kModeNames[m], results[m].model_cnots);
  }
  // Summary table (the ablation result itself), one batch per size.
  std::printf("\n# E3 sorting ablation (water, JW, no compression)\n");
  std::printf("%4s %8s %10s %9s\n", "Ne", "none", "baseline", "gtsp-ga");
  for (std::size_t ne : {4, 8, 12, 17}) {
    const auto results = pipeline.compile_batch(mode_scenarios(ne));
    std::printf("%4zu %8d %10d %9d\n", ne, results[0].model_cnots,
                results[1].model_cnots, results[2].model_cnots);
    h.section("summary/water" + std::to_string(ne));
    for (std::size_t m = 0; m < results.size(); ++m)
      h.metric(kModeNames[m], results[m].model_cnots);
  }
  return h.write_json() ? 0 : 1;
}
