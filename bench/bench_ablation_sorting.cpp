// Experiment E3: ablation of the advanced sorting (paper Sec. III-B).
//
// For the water fermionic segments, compares the CNOT model count under:
//   none      : natural string order, first-support targets
//   baseline  : per-term shared target + exact intra order + doubly greedy
//   gtsp-ga   : the paper's joint GTSP (order + per-string targets)
// plus wall-time per mode (google-benchmark).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "chem/integrals.hpp"
#include "chem/mo_integrals.hpp"
#include "chem/molecules.hpp"
#include "chem/scf.hpp"
#include "core/compiler.hpp"
#include "vqe/uccsd.hpp"

namespace {

using namespace femto;

struct Fixture {
  std::size_t n = 0;
  std::vector<fermion::ExcitationTerm> terms;
};

const Fixture& water_terms(std::size_t ne) {
  static Fixture fixtures[32];
  Fixture& f = fixtures[ne];
  if (f.n == 0) {
    const auto mol = chem::make_h2o();
    auto basis = chem::build_sto3g(mol);
    chem::normalize_basis(basis);
    const auto ints = chem::compute_integrals(mol, basis);
    const auto scf = chem::run_rhf(mol, ints);
    const auto mo = chem::transform_to_mo(mol, ints, scf);
    const auto so = chem::to_spin_orbitals(mo);
    const auto all = vqe::uccsd_hmp2_terms(so);
    f.n = so.n;
    f.terms.assign(all.begin(),
                   all.begin() + static_cast<std::ptrdiff_t>(ne));
  }
  return f;
}

int count_with_sorting(const Fixture& f, core::SortingMode mode) {
  core::CompileOptions opt;
  opt.emit_circuit = false;
  opt.transform = core::TransformKind::kJordanWigner;  // isolate sorting
  opt.compression = core::CompressionMode::kNone;      // all-fermionic
  opt.sorting = mode;
  return core::compile_vqe(f.n, f.terms, opt).model_cnots;
}

void BM_SortNone(benchmark::State& state) {
  const Fixture& f = water_terms(static_cast<std::size_t>(state.range(0)));
  int count = 0;
  for (auto _ : state) count = count_with_sorting(f, core::SortingMode::kNone);
  state.counters["cnots"] = count;
}
void BM_SortBaseline(benchmark::State& state) {
  const Fixture& f = water_terms(static_cast<std::size_t>(state.range(0)));
  int count = 0;
  for (auto _ : state)
    count = count_with_sorting(f, core::SortingMode::kBaseline);
  state.counters["cnots"] = count;
}
void BM_SortGtspGa(benchmark::State& state) {
  const Fixture& f = water_terms(static_cast<std::size_t>(state.range(0)));
  int count = 0;
  for (auto _ : state)
    count = count_with_sorting(f, core::SortingMode::kAdvanced);
  state.counters["cnots"] = count;
}

BENCHMARK(BM_SortNone)->Arg(4)->Arg(8)->Arg(12)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SortBaseline)->Arg(4)->Arg(8)->Arg(12)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SortGtspGa)->Arg(4)->Arg(8)->Arg(12)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  // Summary table (the ablation result itself).
  std::printf("\n# E3 sorting ablation (water, JW, no compression)\n");
  std::printf("%4s %8s %10s %9s\n", "Ne", "none", "baseline", "gtsp-ga");
  for (std::size_t ne : {4, 8, 12, 17}) {
    const Fixture& f = water_terms(ne);
    std::printf("%4zu %8d %10d %9d\n", ne,
                count_with_sorting(f, core::SortingMode::kNone),
                count_with_sorting(f, core::SortingMode::kBaseline),
                count_with_sorting(f, core::SortingMode::kAdvanced));
  }
  return 0;
}
