// Compile hot-path overhaul bench: old-vs-new paths timed in-process.
//
// Three speedup ratios, each measured as (median old path) / (median new
// path) on the SAME machine in the SAME run, so they are machine-independent
// and CI-gateable with absolute floors (tools/check_bench.py):
//
//   gamma_eval_speedup      Gamma-candidate evaluation on the water(14)
//                           fermionic JW block table: full recompute
//                           (gamma.inverse() + re-map of every string, the
//                           historical SA objective) vs the incremental
//                           GammaObjective apply-per-move path. Gated >= 3x.
//   gtsp_ga_speedup         The GTSP GA at 48 clusters: the historical lazy
//                           std::function solver (memoizing weight closure,
//                           per-generation allocations) vs the dense
//                           flat-matrix core. Gated >= 2x.
//   info_fast_term_cost_speedup
//                           Table-driven fast_term_cost vs the scalar
//                           reference loop (informational).
//
// Every comparison also asserts the two paths produce IDENTICAL results --
// the speedups are only meaningful because the fast paths are bit-identical.
#include <cstdio>
#include <memory>
#include <unordered_map>
#include <vector>

#include "bench_fixtures.hpp"
#include "bench_harness.hpp"
#include "common/simd.hpp"
#include "core/compiler.hpp"
#include "gf2/wordops.hpp"
#include "transform/linear_encoding.hpp"

namespace {

using namespace femto;

/// Jordan-Wigner rotation-block table of the water(14) ansatz, one entry per
/// term (the shape stage_plan hands the Gamma searches).
std::vector<std::vector<synth::RotationBlock>> water_term_blocks(
    const bench::TermFixture& fixture) {
  std::vector<std::vector<synth::RotationBlock>> term_blocks;
  int param = 0;
  for (const auto& term : fixture.terms)
    term_blocks.push_back(core::blocks_from_generator(
        transform::jw_map(fixture.n, term.generator()), param++));
  return term_blocks;
}

struct Move {
  std::size_t src = 0, dst = 0;
};

/// Random in-block elementary moves (the SA proposal distribution).
std::vector<Move> random_moves(
    const std::vector<std::vector<std::size_t>>& blocks, std::size_t count,
    Rng& rng) {
  std::vector<const std::vector<std::size_t>*> movable;
  for (const auto& b : blocks)
    if (b.size() >= 2) movable.push_back(&b);
  FEMTO_ASSERT(!movable.empty());
  std::vector<Move> moves;
  moves.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    const auto& block = *movable[rng.index(movable.size())];
    const std::size_t src = block[rng.index(block.size())];
    std::size_t dst = block[rng.index(block.size())];
    while (dst == src) dst = block[rng.index(block.size())];
    moves.push_back({src, dst});
  }
  return moves;
}

}  // namespace

int main() {
  bench::Harness h("compile_hot");

  // ---- Gamma-candidate evaluation: full recompute vs incremental ---------
  const bench::TermFixture fixture =
      bench::molecule_fixture(chem::make_h2o(), 14);
  const std::size_t n = fixture.n;
  const auto term_blocks = water_term_blocks(fixture);
  const auto blocks = core::discover_blocks(n, fixture.terms, {});
  Rng move_rng(7);
  const std::vector<Move> moves = random_moves(blocks, 1500, move_rng);

  // Reference trajectory: apply every move to gamma and recompute from
  // scratch, exactly what the pre-incremental SA objective did per
  // candidate.
  std::vector<double> full_energies(moves.size());
  const double t_full = h.run("compile_hot/gamma_eval_full", 3, [&] {
    gf2::Matrix gamma = gf2::Matrix::identity(n);
    for (std::size_t k = 0; k < moves.size(); ++k) {
      gamma.add_row(moves[k].src, moves[k].dst);
      full_energies[k] = core::fermionic_fast_cost(gamma, term_blocks);
    }
  });

  std::vector<double> inc_energies(moves.size());
  core::GammaObjective objective(n, term_blocks);
  const double t_inc = h.run("compile_hot/gamma_eval_incremental", 3, [&] {
    objective.reset(gf2::Matrix::identity(n));
    for (std::size_t k = 0; k < moves.size(); ++k) {
      objective.apply_move(moves[k].src, moves[k].dst);
      inc_energies[k] = objective.energy();
    }
  });
  for (std::size_t k = 0; k < moves.size(); ++k)
    FEMTO_ASSERT(full_energies[k] == inc_energies[k]);

  // ---- GTSP GA at 48 clusters: lazy reference vs dense core --------------
  const std::size_t clusters = 48, per_cluster = 3;
  opt::GtspInstance inst;
  std::vector<double> weight_table(clusters * per_cluster * clusters *
                                   per_cluster);
  {
    Rng build(11);
    int next = 0;
    for (std::size_t c = 0; c < clusters; ++c) {
      std::vector<int> cluster;
      for (std::size_t v = 0; v < per_cluster; ++v) cluster.push_back(next++);
      inst.clusters.push_back(std::move(cluster));
    }
    for (double& v : weight_table) v = build.uniform(0.0, 8.0);
    const std::size_t stride = clusters * per_cluster;
    inst.weight = [&weight_table, stride](int a, int b) {
      return weight_table[static_cast<std::size_t>(a) * stride +
                          static_cast<std::size_t>(b)];
    };
  }
  opt::GtspSolution ref_sol, dense_sol;
  const double t_ref = h.run("compile_hot/gtsp_ga_48_reference", 3, [&] {
    // The historical production path: lazy solver behind the memoizing
    // closure sort_advanced used to build.
    auto memo = std::make_shared<std::unordered_map<std::uint64_t, double>>();
    opt::GtspInstance lazy = inst;
    const auto base = inst.weight;
    lazy.weight = [memo, base](int a, int b) {
      const std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) |
                                static_cast<std::uint32_t>(b);
      const auto it = memo->find(key);
      if (it != memo->end()) return it->second;
      const double w = base(a, b);
      memo->emplace(key, w);
      return w;
    };
    Rng rng(23);
    ref_sol = opt::detail::solve_gtsp_ga_reference(lazy, rng);
  });
  opt::GtspWorkspace ws;
  const double t_dense = h.run("compile_hot/gtsp_ga_48_dense", 3, [&] {
    const opt::GtspDense dense(inst);  // materialization is part of the path
    Rng rng(23);
    dense_sol = opt::solve_gtsp_ga(dense, rng, {}, &ws);
  });
  FEMTO_ASSERT(ref_sol.cluster_order == dense_sol.cluster_order);
  FEMTO_ASSERT(ref_sol.vertex_choice == dense_sol.vertex_choice);
  FEMTO_ASSERT(ref_sol.value == dense_sol.value);

  // ---- fast_term_cost: table-driven vs scalar reference ------------------
  std::vector<std::vector<synth::RotationBlock>> cost_sets = term_blocks;
  long long sum_new = 0, sum_ref = 0;
  const double t_cost_ref = h.run("compile_hot/fast_term_cost_reference", 3, [&] {
    sum_ref = 0;
    for (int rep = 0; rep < 200; ++rep)
      for (const auto& set : cost_sets)
        sum_ref += core::detail::fast_term_cost_reference(set);
  });
  const double t_cost_new = h.run("compile_hot/fast_term_cost_table", 3, [&] {
    sum_new = 0;
    for (int rep = 0; rep < 200; ++rep)
      for (const auto& set : cost_sets)
        sum_new += core::fast_term_cost(set);
  });
  FEMTO_ASSERT(sum_new == sum_ref);

  // ---- gf2 word-op reductions: forced-portable vs best SIMD level --------
  // The popcount/parity reductions behind the cost model (support_counts is
  // THE inner loop of interface_saving). 1024-bit vectors (16 words) -- wide
  // enough that the word loop dominates, the shape large encodings actually
  // hit. Same kernels both times; only simd::set_level differs, so the
  // ratio is machine-portable like the others.
  const simd::Level simd_best = simd::max_supported();
  // The word count is deliberately loaded through a volatile: as a
  // compile-time constant GCC fully peels the kernels' tail loops and trips
  // -Werror=aggressive-loop-optimizations.
  volatile std::size_t words_opaque = 16;
  const std::size_t kWords = words_opaque;
  constexpr std::size_t kVecs = 256;
  std::vector<std::uint64_t> pool(kWords * kVecs);
  {
    Rng wrng(97);
    for (auto& w : pool)
      w = (static_cast<std::uint64_t>(wrng.index(1u << 31)) << 33) ^
          (static_cast<std::uint64_t>(wrng.index(1u << 31)) << 2) ^
          wrng.index(4);
  }
  const auto vec = [&](std::size_t i) { return pool.data() + kWords * i; };
  std::uint64_t wordops_sum = 0;
  const auto wordops_workload = [&] {
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < kVecs; ++i) {
      for (std::size_t j = 0; j < i; ++j) {
        const gf2::wordops::SupportCounts sc = gf2::wordops::support_counts(
            vec(i), vec(j), vec((i + 7) % kVecs), vec((j + 11) % kVecs),
            kWords);
        acc += static_cast<std::uint64_t>(sc.common) * 3 +
               static_cast<std::uint64_t>(sc.equal) + (sc.has_xy ? 1 : 0);
        acc += gf2::wordops::and_popcount(vec(i), vec(j), kWords);
        acc += gf2::wordops::and_parity(vec(j), vec((i + 7) % kVecs), kWords)
                   ? 2
                   : 0;
      }
    }
    wordops_sum = acc;
  };
  FEMTO_ASSERT(simd::set_level(simd::Level::kPortable) ==
               simd::Level::kPortable);
  const double t_words_portable =
      h.run("compile_hot/wordops_1024b_portable", 5, wordops_workload);
  const std::uint64_t sum_portable = wordops_sum;
  FEMTO_ASSERT(simd::set_level(simd_best) == simd_best);
  const double t_words_best =
      h.run("compile_hot/wordops_1024b_best", 5, wordops_workload);
  // Integer reductions: every level must agree EXACTLY, not just closely.
  const double wordops_identical = wordops_sum == sum_portable ? 1.0 : 0.0;

  h.section("compile_hot/speedups");
  h.metric("gamma_eval_speedup", t_full / t_inc);
  h.metric("gtsp_ga_speedup", t_ref / t_dense);
  h.metric("info_fast_term_cost_speedup", t_cost_ref / t_cost_new);
  h.metric("simd_wordops_speedup", t_words_portable / t_words_best);
  h.metric("simd_bit_identical", wordops_identical);
  h.metric("info_simd_level", static_cast<double>(simd_best));
  std::printf(
      "[bench] gamma_eval %.1fx, gtsp_ga %.1fx, fast_term_cost %.1fx, "
      "wordops simd %.1fx (identical: %.0f)\n",
      t_full / t_inc, t_ref / t_dense, t_cost_ref / t_cost_new,
      t_words_portable / t_words_best, wordops_identical);
  return h.write_json() ? 0 : 1;
}
