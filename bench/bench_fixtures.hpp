// Shared chemistry fixtures for the bench binaries.
//
// One entry point builds (and caches) the molecule -> STO-3G -> RHF -> MO ->
// UCCSD/HMP2 pipeline per molecule, so bench_table1, bench_targets,
// bench_solvers, bench_pipeline and bench_ablation_sorting all construct
// their Hamiltonians the same way instead of each re-deriving the chain.
// Build the fixture *before* handing work to a thread pool: the lazy static
// init here is not guarded for concurrent first-touch of the same molecule.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "chem/integrals.hpp"
#include "chem/mo_integrals.hpp"
#include "chem/molecules.hpp"
#include "chem/scf.hpp"
#include "core/compiler.hpp"
#include "core/pipeline.hpp"
#include "fermion/excitation.hpp"
#include "vqe/uccsd.hpp"

namespace femto::bench {

struct TermFixture {
  std::size_t n = 0;
  std::vector<fermion::ExcitationTerm> terms;
};

/// Full HMP2-ranked UCCSD term sequence of a molecule (STO-3G), cached by
/// molecule name. The static-MP2 ranking reproduces the paper's Table I
/// term choices (see bench_table1.cpp).
inline const TermFixture& molecule_terms(const chem::Molecule& mol) {
  static std::map<std::string, TermFixture> cache;
  auto it = cache.find(mol.name);
  if (it == cache.end()) {
    auto basis = chem::build_sto3g(mol);
    chem::normalize_basis(basis);
    const auto ints = chem::compute_integrals(mol, basis);
    const auto scf = chem::run_rhf(mol, ints);
    FEMTO_ASSERT(scf.converged);
    const auto mo = chem::transform_to_mo(mol, ints, scf);
    const auto so = chem::to_spin_orbitals(mo);
    TermFixture f;
    f.n = so.n;
    f.terms = vqe::uccsd_hmp2_terms(so);
    it = cache.emplace(mol.name, std::move(f)).first;
  }
  return it->second;
}

/// Copy of a molecule's fixture truncated to the top `ne` terms (clamped).
inline TermFixture molecule_fixture(const chem::Molecule& mol, std::size_t ne) {
  const TermFixture& all = molecule_terms(mol);
  TermFixture f;
  f.n = all.n;
  if (ne > all.terms.size()) ne = all.terms.size();
  f.terms.assign(all.terms.begin(),
                 all.terms.begin() + static_cast<std::ptrdiff_t>(ne));
  return f;
}

/// Water / STO-3G UCCSD terms ranked by HMP2 importance, truncated to the
/// top `ne` (ne <= 31). Cached per size so repeated bench sections can hold
/// a stable reference. Unlike molecule_fixture (whose Table-1 callers clamp
/// by design), an out-of-range request here aborts: a silently shortened
/// fixture would mislabel a committed bench baseline.
inline const TermFixture& water_terms(std::size_t ne) {
  static TermFixture fixtures[32];
  FEMTO_EXPECTS(ne < 32);
  FEMTO_EXPECTS(ne <= molecule_terms(chem::make_h2o()).terms.size());
  TermFixture& f = fixtures[ne];
  if (f.n == 0) f = molecule_fixture(chem::make_h2o(), ne);
  return f;
}

/// Compile options of one Table-I column ("JW" / "BK" / "GT" / "Adv"), with
/// the solver budgets the Table-I reproduction uses (scaled down for the
/// large NH3 instance). Shared by bench_table1 and bench_targets so the
/// all-to-all target's counts stay bit-identical to the Table-I baseline.
inline core::CompileOptions table1_column_options(const std::string& column,
                                                  std::size_t num_terms) {
  core::CompileOptions opt;
  opt.emit_circuit = false;  // counting only; callers opt back in for routing
  const bool large = num_terms > 20;
  opt.sa_options.steps = large ? 500 : 1500;
  opt.pso_options.iterations = large ? 12 : 60;
  opt.pso_options.particles = large ? 10 : 20;
  opt.gtsp_options.generations = large ? 80 : 250;
  opt.gtsp_options.population = large ? 24 : 32;
  opt.coloring_orders = 64;
  if (column == "JW") {
    opt.transform = core::TransformKind::kJordanWigner;
    opt.sorting = core::SortingMode::kBaseline;
    opt.compression = core::CompressionMode::kBosonicOnly;
  } else if (column == "BK") {
    opt.transform = core::TransformKind::kBravyiKitaev;
    opt.sorting = core::SortingMode::kBaseline;
    opt.compression = core::CompressionMode::kBosonicOnly;
  } else if (column == "GT") {
    opt.transform = core::TransformKind::kBaselineGT;
    opt.sorting = core::SortingMode::kBaseline;
    opt.compression = core::CompressionMode::kBosonicOnly;
  } else {  // Adv
    opt.transform = core::TransformKind::kAdvanced;
    opt.sorting = core::SortingMode::kAdvanced;
    opt.compression = core::CompressionMode::kHybrid;
  }
  return opt;
}

/// Named compile-scenario suites shared by femto-db, femtod's service
/// bench, and the bench binaries: Table-1 columns at the bench fixtures'
/// solver budgets, with circuits emitted (counting-only compiles
/// synthesize nothing worth persisting or serving). Unknown suite -> empty.
inline std::vector<core::CompileScenario> suite_scenarios(
    const std::string& suite) {
  struct Entry {
    std::string label;
    chem::Molecule mol;
    std::size_t ne;
  };
  std::vector<Entry> entries;
  std::vector<std::string> columns;
  if (suite == "small") {
    entries = {{"HF", chem::make_hf(), 3},
               {"LiH", chem::make_lih(), 3},
               {"H2O(4)", chem::make_h2o(), 4},
               {"H2O(5)", chem::make_h2o(), 5},
               {"H2O(6)", chem::make_h2o(), 6}};
    columns = {"Adv"};
  } else if (suite == "table1") {
    entries = {{"HF", chem::make_hf(), 3},
               {"LiH", chem::make_lih(), 3},
               {"BeH2", chem::make_beh2(), 9}};
    for (std::size_t ne : {4, 5, 6, 8, 9, 11, 12, 14, 16, 17})
      entries.push_back(
          {"H2O(" + std::to_string(ne) + ")", chem::make_h2o(), ne});
    columns = {"JW", "BK", "GT", "Adv"};
  } else {
    return {};
  }
  std::vector<core::CompileScenario> scenarios;
  for (const Entry& e : entries) {
    const TermFixture f = molecule_fixture(e.mol, e.ne);
    for (const std::string& column : columns) {
      core::CompileScenario s;
      s.name = e.label + "/" + column;
      s.num_qubits = f.n;
      s.terms = f.terms;
      s.options = table1_column_options(column, f.terms.size());
      s.options.emit_circuit = true;  // persist real artifacts, not counts
      scenarios.push_back(std::move(s));
    }
  }
  return scenarios;
}

}  // namespace femto::bench
