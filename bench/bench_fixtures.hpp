// Shared chemistry fixtures for the bench binaries.
//
// The water UCCSD term sets are built once per ansatz size and cached
// (static storage), so every bench section after the first reuses them.
// Build the fixture *before* handing work to a thread pool: the lazy static
// init here is not guarded for concurrent first-touch of the same size.
#pragma once

#include <vector>

#include "chem/integrals.hpp"
#include "chem/mo_integrals.hpp"
#include "chem/molecules.hpp"
#include "chem/scf.hpp"
#include "fermion/excitation.hpp"
#include "vqe/uccsd.hpp"

namespace femto::bench {

struct TermFixture {
  std::size_t n = 0;
  std::vector<fermion::ExcitationTerm> terms;
};

/// Water / STO-3G UCCSD terms ranked by HMP2 importance, truncated to the
/// top `ne` (ne <= 31).
inline const TermFixture& water_terms(std::size_t ne) {
  static TermFixture fixtures[32];
  TermFixture& f = fixtures[ne];
  if (f.n == 0) {
    const auto mol = chem::make_h2o();
    auto basis = chem::build_sto3g(mol);
    chem::normalize_basis(basis);
    const auto ints = chem::compute_integrals(mol, basis);
    const auto scf = chem::run_rhf(mol, ints);
    const auto mo = chem::transform_to_mo(mol, ints, scf);
    const auto so = chem::to_spin_orbitals(mo);
    const auto all = vqe::uccsd_hmp2_terms(so);
    FEMTO_EXPECTS(ne <= all.size());
    f.n = so.n;
    f.terms.assign(all.begin(),
                   all.begin() + static_cast<std::ptrdiff_t>(ne));
  }
  return f;
}

}  // namespace femto::bench
