// Experiment E2: Fig. 5 of the paper.
//
// Ground-state energy estimate of the water molecule (STO-3G) versus the
// number of HMP2-ordered UCCSD ansatz terms, for two term orderings:
//   prior art  : baseline pipeline ([9]) term order,
//   this work  : advanced pipeline (hybrid-encoding plan) term order.
// The paper's claim: both series coincide (no accuracy loss from the
// reordering), and chemical accuracy (1.6 mHa vs FCI) is reached at 17
// terms for both.
//
// Energies are evaluated exactly (statevector + L-BFGS on analytic adjoint
// gradients), which corresponds to the infinite-shot limit of the paper's
// measurement scheme.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_harness.hpp"

#include "chem/fci.hpp"
#include "chem/integrals.hpp"
#include "chem/mo_integrals.hpp"
#include "chem/molecules.hpp"
#include "chem/scf.hpp"
#include "core/compiler.hpp"
#include "transform/linear_encoding.hpp"
#include "vqe/driver.hpp"
#include "vqe/hmp2.hpp"
#include "vqe/uccsd.hpp"

int main() {
  using namespace femto;
  bench::Harness h("fig5");
  // (fci reference attached below, once computed)
  const auto mol = chem::make_h2o();
  auto basis = chem::build_sto3g(mol);
  chem::normalize_basis(basis);
  const auto ints = chem::compute_integrals(mol, basis);
  const auto scf = chem::run_rhf(mol, ints);
  const auto mo = chem::transform_to_mo(mol, ints, scf);
  const auto so = chem::to_spin_orbitals(mo);
  const auto fci = chem::run_fci(so);

  const auto enc = transform::LinearEncoding::jordan_wigner(so.n);
  const pauli::PauliSum hq = enc.map(chem::build_hamiltonian(so));
  const std::size_t hf_index = (std::size_t{1} << so.nelec) - 1;

  std::printf("# Fig. 5 reproduction: H2O ground-state energy vs ansatz size\n");
  std::printf("# RHF   = %.6f Ha\n", scf.total_energy);
  std::printf("# FCI   = %.6f Ha  (chemical accuracy band: +-%.4f)\n",
              fci.energy, 0.0016);
  std::printf("%4s %18s %18s %12s %12s\n", "M", "prior-art(E/Ha)",
              "this-work(E/Ha)", "dPrior(mHa)", "dThis(mHa)");

  const std::size_t max_terms = 17;
  // Adaptive HMP2 selection ([9]'s Box 2 loop) defines the term sequence.
  vqe::OptimizerOptions sel_opt;
  sel_opt.max_iterations = 120;
  sel_opt.gradient_tolerance = 1e-5;
  const std::vector<fermion::ExcitationTerm> terms =
      vqe::hmp2_adaptive_terms(so, max_terms, 64, sel_opt);
  core::CompileOptions base_opt;
  base_opt.emit_circuit = false;
  base_opt.transform = core::TransformKind::kJordanWigner;
  base_opt.sorting = core::SortingMode::kBaseline;
  base_opt.compression = core::CompressionMode::kBosonicOnly;
  core::CompileOptions adv_opt;
  adv_opt.emit_circuit = false;
  adv_opt.sa_options.steps = 300;  // order only; counts not needed here

  vqe::OptimizerOptions vopt;
  vopt.max_iterations = 200;
  vopt.gradient_tolerance = 3e-6;

  std::vector<double> theta_prior, theta_this;
  for (std::size_t m = 4; m <= terms.size(); ++m) {
    const std::vector<fermion::ExcitationTerm> subset(
        terms.begin(), terms.begin() + static_cast<std::ptrdiff_t>(m));
    const auto res_base = core::compile_vqe(so.n, subset, base_opt);
    const auto res_adv = core::compile_vqe(so.n, subset, adv_opt);

    const auto optimize = [&](const std::vector<pauli::PauliSum>& gens,
                              std::vector<double>& warm) {
      vqe::VqeProblem prob;
      prob.num_qubits = so.n;
      prob.hamiltonian = hq;
      prob.generators = gens;
      prob.reference_index = hf_index;
      warm.resize(gens.size(), 0.0);
      const auto res = vqe::minimize_energy(prob, warm, vopt);
      warm = res.theta;
      return res.energy;
    };
    double e_prior = 0.0, e_this = 0.0;
    h.run("fig5/m" + std::to_string(m), 1, [&] {
      e_prior = optimize(res_base.ordered_generators, theta_prior);
      e_this = optimize(res_adv.ordered_generators, theta_this);
    });
    std::printf("%4zu %18.6f %18.6f %12.3f %12.3f\n", m, e_prior, e_this,
                1000.0 * (e_prior - fci.energy), 1000.0 * (e_this - fci.energy));
    std::fflush(stdout);
    h.metric("e_prior", e_prior);
    h.metric("e_this", e_this);
    h.metric("dprior_mha", 1000.0 * (e_prior - fci.energy));
    h.metric("dthis_mha", 1000.0 * (e_this - fci.energy));
  }
  std::printf(
      "# chemical accuracy reached when |E - FCI| < 1.6 mHa in both series\n");
  h.section("reference");
  h.metric("fci_energy", fci.energy);
  h.metric("scf_energy", scf.total_energy);
  return h.write_json() ? 0 : 1;
}
