// Experiment E8: real-time dynamics extension (paper Sec. V).
//
// The paper notes the advanced sorting applies directly to Trotterized
// time evolution of fermionic systems. We simulate a 4-site spinful
// Fermi-Hubbard chain: H = -t sum c+_i c_j + U sum n_up n_dn, compile one
// first-order Trotter step with and without advanced sorting, and measure
//   (a) CNOT counts per Trotter step,
//   (b) state fidelity of the compiled step against the exact propagator
//       (statevector), confirming the reordering preserves accuracy at the
//       Trotter-error level.
#include <cstdio>

#include "bench_harness.hpp"
#include <vector>

#include "core/rotation_blocks.hpp"
#include "core/sorting.hpp"
#include "fermion/operators.hpp"
#include "sim/statevector.hpp"
#include "synth/pauli_exponential.hpp"
#include "transform/linear_encoding.hpp"

namespace {

using namespace femto;

/// Spinful Fermi-Hubbard chain on `sites` sites (interleaved spins).
fermion::FermionOperator hubbard_hamiltonian(std::size_t sites, double t,
                                             double u) {
  fermion::FermionOperator h;
  for (std::size_t i = 0; i + 1 < sites; ++i) {
    for (int spin = 0; spin < 2; ++spin) {
      const std::size_t a = 2 * i + static_cast<std::size_t>(spin);
      const std::size_t b = 2 * (i + 1) + static_cast<std::size_t>(spin);
      h.add_term({-t, 0.0}, {{a, true}, {b, false}});
      h.add_term({-t, 0.0}, {{b, true}, {a, false}});
    }
  }
  for (std::size_t i = 0; i < sites; ++i) {
    h.add_term({u, 0.0},
               {{2 * i, true}, {2 * i, false}, {2 * i + 1, true},
                {2 * i + 1, false}});
  }
  return h;
}

struct TrotterStep {
  std::vector<synth::RotationBlock> blocks;  // exp(-i dt H) ~ prod blocks
  std::size_t n = 0;
};

/// One first-order Trotter step as rotation blocks (angle = coeff * dt
/// folded into literal angles).
TrotterStep trotter_blocks(std::size_t sites, double t, double u, double dt) {
  TrotterStep step;
  step.n = 2 * sites;
  const auto enc = transform::LinearEncoding::jordan_wigner(step.n);
  const pauli::PauliSum hq = enc.map(hubbard_hamiltonian(sites, t, u));
  for (const auto& term : hq.terms()) {
    if (term.string.is_identity_letters()) continue;
    synth::RotationBlock b;
    b.string = term.string;
    FEMTO_ASSERT(std::abs(term.coefficient.imag()) < 1e-12);
    b.angle_coeff = 2.0 * term.coefficient.real() * dt;  // exp(-i c dt P)
    b.param = -1;
    b.target = b.string.support().lowest_set();
    step.blocks.push_back(b);
  }
  return step;
}

double fidelity_against_exact(const TrotterStep& step,
                              const circuit::QuantumCircuit& circ,
                              const pauli::PauliSum& hq, double dt) {
  // Reference: near-exact evolution via many fine Trotter sub-steps of the
  // block list (error O(substeps^-1) below anything we resolve here).
  const int substeps = 400;
  sim::StateVector ref(step.n);
  // Start from a quarter-filled product state with one up and one down.
  ref = sim::StateVector::basis_state(step.n, 0b0011);
  for (int s = 0; s < substeps; ++s)
    for (const auto& b : step.blocks)
      ref.apply_pauli_exp(b.string, b.angle_coeff / substeps);
  (void)hq;
  (void)dt;
  sim::StateVector actual = sim::StateVector::basis_state(step.n, 0b0011);
  actual.apply_circuit(circ);
  return std::abs(ref.inner(actual));
}

}  // namespace

int main() {
  bench::Harness h("dynamics");
  {
    const TrotterStep step = trotter_blocks(4, 1.0, 4.0, 0.05);
    int cnots = 0;
    h.run("trotter_compile/advanced_sort", 3, [&] {
      Rng rng(3);
      const auto ordered = core::sort_advanced(step.blocks, rng);
      cnots = synth::sequence_model_cost(ordered);
    });
    h.metric("cnots", cnots);
  }

  std::printf("\n# E8 Fermi-Hubbard Trotter step (4 sites, t=1, U=4, dt=0.05)\n");
  const TrotterStep step = trotter_blocks(4, 1.0, 4.0, 0.05);
  const auto enc = transform::LinearEncoding::jordan_wigner(step.n);
  const pauli::PauliSum hq = enc.map(hubbard_hamiltonian(4, 1.0, 4.0));

  // Unsorted emission.
  const auto circ_naive =
      synth::synthesize_sequence(step.n, step.blocks, synth::MergePolicy::kNone);
  // Sorted emission.
  Rng rng(3);
  const auto ordered = core::sort_advanced(step.blocks, rng);
  const auto circ_sorted = synth::synthesize_sequence(step.n, ordered);

  const double fid_naive = fidelity_against_exact(step, circ_naive, hq, 0.05);
  const double fid_sorted = fidelity_against_exact(step, circ_sorted, hq, 0.05);
  std::printf("%-22s %8s %10s\n", "variant", "cnots", "fidelity");
  std::printf("%-22s %8d %10.6f\n", "naive order", circ_naive.cnot_count(),
              fid_naive);
  std::printf("%-22s %8d %10.6f\n", "advanced sorting",
              circ_sorted.cnot_count(), fid_sorted);
  std::printf("# model cost sorted: %d (naive %d)\n",
              synth::sequence_model_cost(ordered),
              synth::sequence_model_cost(step.blocks));
  h.section("trotter_step/summary");
  h.metric("cnots_naive", circ_naive.cnot_count());
  h.metric("cnots_sorted", circ_sorted.cnot_count());
  h.metric("fidelity_naive", fid_naive);
  h.metric("fidelity_sorted", fid_sorted);
  return h.write_json() ? 0 : 1;
}
