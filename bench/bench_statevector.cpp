// Statevector kernel bench: stride-based kernels (sim/kernels.hpp) vs the
// seed per-amplitude branch-in-loop implementation, at 20 qubits.
//
// The seed loops are reproduced verbatim below (namespace seed) so the
// speedup is measured against the real baseline, not a strawman. Emits
// BENCH_statevector.json with per-kind medians and the headline
// singleq_speedup / twoq_speedup ratios.
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_harness.hpp"
#include "circuit/gate.hpp"
#include "circuit/quantum_circuit.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "sim/batched.hpp"
#include "sim/statevector.hpp"

namespace {

using namespace femto;
using sim::Complex;

// --- seed implementation (pre-kernel apply loops, kept for comparison) ----

namespace seed {

void apply_matrix1(std::vector<Complex>& amps, std::size_t q, Complex m00,
                   Complex m01, Complex m10, Complex m11) {
  const std::size_t bit = std::size_t{1} << q;
  for (std::size_t i = 0; i < amps.size(); ++i) {
    if (i & bit) continue;
    const Complex a0 = amps[i];
    const Complex a1 = amps[i | bit];
    amps[i] = m00 * a0 + m01 * a1;
    amps[i | bit] = m10 * a0 + m11 * a1;
  }
}

void apply_cnot(std::vector<Complex>& amps, std::size_t c, std::size_t t) {
  const std::size_t cb = std::size_t{1} << c;
  const std::size_t tb = std::size_t{1} << t;
  for (std::size_t i = 0; i < amps.size(); ++i)
    if ((i & cb) && !(i & tb)) std::swap(amps[i], amps[i | tb]);
}

void apply_xxrot(std::vector<Complex>& amps, std::size_t a, std::size_t b,
                 double angle) {
  const std::size_t mask = (std::size_t{1} << a) | (std::size_t{1} << b);
  const double c = std::cos(angle / 2), s = std::sin(angle / 2);
  for (std::size_t i = 0; i < amps.size(); ++i) {
    const std::size_t j = i ^ mask;
    if (j < i) continue;
    const Complex ai = amps[i], aj = amps[j];
    amps[i] = c * ai - Complex(0, s) * aj;
    amps[j] = c * aj - Complex(0, s) * ai;
  }
}

}  // namespace seed

void randomize(sim::StateVector& sv, unsigned s) {
  Rng rng(s);
  for (auto& a : sv.amplitudes()) a = Complex(rng.normal(), rng.normal());
  sv.normalize();
}

}  // namespace

int main() {
  constexpr std::size_t kQubits = 20;
  constexpr int kRepeats = 7;
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);

  bench::Harness h("statevector");
  sim::StateVector sv(kQubits);
  randomize(sv, 7);
  std::vector<Complex> seed_amps = sv.amplitudes();

  // --- single-qubit gate application: one H sweep over every qubit -------
  const double seed_h = h.run("seed/h_sweep_20q", kRepeats, [&] {
    for (std::size_t q = 0; q < kQubits; ++q)
      seed::apply_matrix1(seed_amps, q, inv_sqrt2, inv_sqrt2, inv_sqrt2,
                          -inv_sqrt2);
  });
  const double kern_h = h.run("kernels/h_sweep_20q", kRepeats, [&] {
    for (std::size_t q = 0; q < kQubits; ++q)
      sv.apply_matrix1(q, inv_sqrt2, inv_sqrt2, inv_sqrt2, -inv_sqrt2);
  });

  // Diagonal gates: the seed path pays the full pair loop, the kernel path
  // is one fused streaming pass.
  const Complex i_unit{0.0, 1.0};
  const double seed_rz = h.run("seed/rz_sweep_20q", kRepeats, [&] {
    for (std::size_t q = 0; q < kQubits; ++q)
      seed::apply_matrix1(seed_amps, q, std::exp(-i_unit * 0.1),
                          Complex{0, 0}, Complex{0, 0},
                          std::exp(i_unit * 0.1));
  });
  const double kern_rz = h.run("kernels/rz_sweep_20q", kRepeats, [&] {
    for (std::size_t q = 0; q < kQubits; ++q)
      sv.apply_gate(circuit::Gate::rz(q, 0.2));
  });

  // --- two-qubit gate application: CNOT chain + XX rotations -------------
  const double seed_cnot = h.run("seed/cnot_chain_20q", kRepeats, [&] {
    for (std::size_t q = 0; q + 1 < kQubits; ++q)
      seed::apply_cnot(seed_amps, q, q + 1);
  });
  const double kern_cnot = h.run("kernels/cnot_chain_20q", kRepeats, [&] {
    for (std::size_t q = 0; q + 1 < kQubits; ++q) sv.apply_cnot(q, q + 1);
  });

  const double seed_xx = h.run("seed/xxrot_chain_20q", kRepeats, [&] {
    for (std::size_t q = 0; q + 1 < kQubits; ++q)
      seed::apply_xxrot(seed_amps, q, q + 1, 0.37);
  });
  const double kern_xx = h.run("kernels/xxrot_chain_20q", kRepeats, [&] {
    for (std::size_t q = 0; q + 1 < kQubits; ++q)
      sv.apply_xxrot(q, q + 1, 0.37);
  });

  // --- Pauli exponential (packed-mask path) ------------------------------
  pauli::PauliString p(kQubits);
  for (std::size_t q = 0; q < kQubits; q += 2) p.set_letter(q, pauli::Letter::X);
  for (std::size_t q = 1; q < kQubits; q += 2) p.set_letter(q, pauli::Letter::Z);
  h.run("kernels/pauli_exp_20q", kRepeats, [&] { sv.apply_pauli_exp(p, 0.123); });

  const double singleq = (seed_h + seed_rz) / (kern_h + kern_rz);
  const double twoq = (seed_cnot + seed_xx) / (kern_cnot + kern_xx);
  h.metric("singleq_speedup", singleq);
  h.metric("twoq_speedup", twoq);
  h.metric("h_speedup", seed_h / kern_h);
  h.metric("rz_speedup", seed_rz / kern_rz);
  h.metric("cnot_speedup", seed_cnot / kern_cnot);
  h.metric("xxrot_speedup", seed_xx / kern_xx);
  std::printf("single-qubit speedup: %.2fx, two-qubit speedup: %.2fx\n",
              singleq, twoq);

  // --- SIMD dispatch: forced-portable vs best level ----------------------
  // L1-resident state (11 qubits = 32 KiB of amplitudes) so the comparison
  // measures the arithmetic kernels rather than DRAM bandwidth, and gates on
  // qubits >= 3 only: a gate on qubit q works on contiguous runs of 2^q
  // elements, and sub-vector runs fall back to the shared scalar tail BY
  // DESIGN (bit-identity), so low-qubit gates measure dispatch overhead, not
  // vector throughput. Both timings run the IDENTICAL femto kernels; only
  // simd::set_level changes between them, so the ratio is machine-portable
  // the same way the old-vs-new ratios above are.
  const simd::Level best = simd::max_supported();
  const std::size_t ns = 11;
  sim::StateVector svs(ns);
  randomize(svs, 21);
  pauli::PauliString ps(ns);
  for (std::size_t q = 0; q < ns; ++q)
    ps.set_letter(q, (q % 2 == 0) ? pauli::Letter::X : pauli::Letter::Z);
  const auto simd_workload = [&] {
    for (int rep = 0; rep < 64; ++rep) {
      for (std::size_t q = 3; q < ns; ++q)
        svs.apply_matrix1(q, inv_sqrt2, inv_sqrt2, inv_sqrt2, -inv_sqrt2);
      for (std::size_t q = 3; q < ns; ++q)
        svs.apply_gate(circuit::Gate::rz(q, 0.2));
      for (std::size_t q = 3; q + 1 < ns; ++q) svs.apply_xxrot(q, q + 1, 0.37);
    }
  };
  FEMTO_ASSERT(simd::set_level(simd::Level::kPortable) ==
               simd::Level::kPortable);
  const double t_portable =
      h.run("kernels/simd_sweep_11q_portable", kRepeats, simd_workload);
  FEMTO_ASSERT(simd::set_level(best) == best);
  // Fixed section name (the host's best level lands in info_simd_level):
  // check_bench matches sections by name across machines.
  const double t_best =
      h.run("kernels/simd_sweep_11q_best", kRepeats, simd_workload);

  // --- batched per-lane Pauli sweep vs per-state loop --------------------
  // The one-circuit -> B-states VQE shape: 16 parameter vectors advanced
  // through the same rotation sweep. Per-state pays B full passes; batched
  // pays one pass over a B-lane-wide array.
  const std::size_t nb = 10, batch = 16;
  std::vector<sim::StateVector> lanes;
  for (std::size_t b = 0; b < batch; ++b) {
    lanes.emplace_back(nb);
    randomize(lanes.back(), 100 + static_cast<unsigned>(b));
  }
  std::vector<pauli::PauliString> sweep_strings;
  {
    Rng srng(31);
    for (int k = 0; k < 12; ++k) {
      pauli::PauliString s(nb);
      for (std::size_t q = 0; q < nb; ++q)
        s.set_letter(q, static_cast<pauli::Letter>(srng.index(4)));
      sweep_strings.push_back(std::move(s));
    }
  }
  std::vector<double> lane_angles(batch);
  for (std::size_t b = 0; b < batch; ++b)
    lane_angles[b] = 0.05 + 0.03 * static_cast<double>(b);
  const double t_perstate = h.run("kernels/pauli_sweep_16x10q_perstate",
                                  kRepeats, [&] {
    for (int rep = 0; rep < 8; ++rep)
      for (const auto& s : sweep_strings)
        for (std::size_t b = 0; b < batch; ++b)
          lanes[b].apply_pauli_exp(s, lane_angles[b]);
  });
  sim::BatchedState bs = sim::BatchedState::from_states(lanes);
  const double t_batched = h.run("kernels/pauli_sweep_16x10q_batched",
                                 kRepeats, [&] {
    for (int rep = 0; rep < 8; ++rep)
      for (const auto& s : sweep_strings) bs.apply_pauli_exp(s, lane_angles);
  });

  // --- bit-identity pin: every dispatch level, scalar and batched --------
  // The contract the SIMD layer is built on: changing the dispatch level or
  // moving through BatchedState NEVER changes a single amplitude bit.
  double bit_identical = 1.0;
  {
    circuit::QuantumCircuit probe(ns);
    Rng prng(55);
    for (int k = 0; k < 48; ++k) {
      const auto q0 = prng.index(ns);
      auto q1 = prng.index(ns);
      while (q1 == q0) q1 = prng.index(ns);
      switch (prng.index(6)) {
        case 0: probe.append(circuit::Gate::h(q0)); break;
        case 1: probe.append(circuit::Gate::rz(q0, prng.uniform(-2.0, 2.0))); break;
        case 2: probe.append(circuit::Gate::ry(q0, prng.uniform(-2.0, 2.0))); break;
        case 3: probe.append(circuit::Gate::cnot(q0, q1)); break;
        case 4: probe.append(circuit::Gate::xxrot(q0, q1, prng.uniform(-2.0, 2.0))); break;
        case 5: probe.append(circuit::Gate::xyrot(q0, q1, prng.uniform(-2.0, 2.0))); break;
      }
    }
    sim::StateVector probe_base(ns);
    randomize(probe_base, 77);
    std::vector<std::vector<Complex>> level_amps;
    for (const simd::Level lvl :
         {simd::Level::kPortable, simd::Level::kAvx2, simd::Level::kAvx512}) {
      if (simd::set_level(lvl) != lvl) continue;  // level not on this host
      sim::StateVector sv_l = probe_base;
      sv_l.apply_circuit(probe);
      sv_l.apply_pauli_exp(ps, 0.321);
      level_amps.push_back(sv_l.amplitudes());
    }
    FEMTO_ASSERT(simd::set_level(best) == best);
    for (std::size_t l = 1; l < level_amps.size(); ++l)
      if (std::memcmp(level_amps[l].data(), level_amps[0].data(),
                      level_amps[0].size() * sizeof(Complex)) != 0)
        bit_identical = 0.0;
    std::vector<sim::StateVector> probe_lanes(5, probe_base);
    sim::BatchedState pbs = sim::BatchedState::from_states(probe_lanes);
    pbs.apply_circuit(probe);
    pbs.apply_pauli_exp(ps, 0.321);
    for (std::size_t b = 0; b < probe_lanes.size(); ++b) {
      const sim::StateVector got = pbs.lane(b);
      if (std::memcmp(got.amplitudes().data(), level_amps[0].data(),
                      level_amps[0].size() * sizeof(Complex)) != 0)
        bit_identical = 0.0;
    }
  }

  h.section("kernels/simd");
  h.metric("simd_kernel_speedup", t_portable / t_best);
  h.metric("batched_sweep_speedup", t_perstate / t_batched);
  h.metric("simd_bit_identical", bit_identical);
  h.metric("info_simd_level", static_cast<double>(best));
  std::printf(
      "simd kernel speedup (%s vs portable): %.2fx, batched sweep: %.2fx, "
      "bit-identical: %.0f\n",
      simd::to_string(best), t_portable / t_best, t_perstate / t_batched,
      bit_identical);
  return h.write_json() ? 0 : 1;
}
