// Statevector kernel bench: stride-based kernels (sim/kernels.hpp) vs the
// seed per-amplitude branch-in-loop implementation, at 20 qubits.
//
// The seed loops are reproduced verbatim below (namespace seed) so the
// speedup is measured against the real baseline, not a strawman. Emits
// BENCH_statevector.json with per-kind medians and the headline
// singleq_speedup / twoq_speedup ratios.
#include <cstdio>
#include <vector>

#include "bench_harness.hpp"
#include "circuit/gate.hpp"
#include "common/rng.hpp"
#include "sim/statevector.hpp"

namespace {

using namespace femto;
using sim::Complex;

// --- seed implementation (pre-kernel apply loops, kept for comparison) ----

namespace seed {

void apply_matrix1(std::vector<Complex>& amps, std::size_t q, Complex m00,
                   Complex m01, Complex m10, Complex m11) {
  const std::size_t bit = std::size_t{1} << q;
  for (std::size_t i = 0; i < amps.size(); ++i) {
    if (i & bit) continue;
    const Complex a0 = amps[i];
    const Complex a1 = amps[i | bit];
    amps[i] = m00 * a0 + m01 * a1;
    amps[i | bit] = m10 * a0 + m11 * a1;
  }
}

void apply_cnot(std::vector<Complex>& amps, std::size_t c, std::size_t t) {
  const std::size_t cb = std::size_t{1} << c;
  const std::size_t tb = std::size_t{1} << t;
  for (std::size_t i = 0; i < amps.size(); ++i)
    if ((i & cb) && !(i & tb)) std::swap(amps[i], amps[i | tb]);
}

void apply_xxrot(std::vector<Complex>& amps, std::size_t a, std::size_t b,
                 double angle) {
  const std::size_t mask = (std::size_t{1} << a) | (std::size_t{1} << b);
  const double c = std::cos(angle / 2), s = std::sin(angle / 2);
  for (std::size_t i = 0; i < amps.size(); ++i) {
    const std::size_t j = i ^ mask;
    if (j < i) continue;
    const Complex ai = amps[i], aj = amps[j];
    amps[i] = c * ai - Complex(0, s) * aj;
    amps[j] = c * aj - Complex(0, s) * ai;
  }
}

}  // namespace seed

void randomize(sim::StateVector& sv, unsigned s) {
  Rng rng(s);
  for (auto& a : sv.amplitudes()) a = Complex(rng.normal(), rng.normal());
  sv.normalize();
}

}  // namespace

int main() {
  constexpr std::size_t kQubits = 20;
  constexpr int kRepeats = 7;
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);

  bench::Harness h("statevector");
  sim::StateVector sv(kQubits);
  randomize(sv, 7);
  std::vector<Complex> seed_amps = sv.amplitudes();

  // --- single-qubit gate application: one H sweep over every qubit -------
  const double seed_h = h.run("seed/h_sweep_20q", kRepeats, [&] {
    for (std::size_t q = 0; q < kQubits; ++q)
      seed::apply_matrix1(seed_amps, q, inv_sqrt2, inv_sqrt2, inv_sqrt2,
                          -inv_sqrt2);
  });
  const double kern_h = h.run("kernels/h_sweep_20q", kRepeats, [&] {
    for (std::size_t q = 0; q < kQubits; ++q)
      sv.apply_matrix1(q, inv_sqrt2, inv_sqrt2, inv_sqrt2, -inv_sqrt2);
  });

  // Diagonal gates: the seed path pays the full pair loop, the kernel path
  // is one fused streaming pass.
  const Complex i_unit{0.0, 1.0};
  const double seed_rz = h.run("seed/rz_sweep_20q", kRepeats, [&] {
    for (std::size_t q = 0; q < kQubits; ++q)
      seed::apply_matrix1(seed_amps, q, std::exp(-i_unit * 0.1),
                          Complex{0, 0}, Complex{0, 0},
                          std::exp(i_unit * 0.1));
  });
  const double kern_rz = h.run("kernels/rz_sweep_20q", kRepeats, [&] {
    for (std::size_t q = 0; q < kQubits; ++q)
      sv.apply_gate(circuit::Gate::rz(q, 0.2));
  });

  // --- two-qubit gate application: CNOT chain + XX rotations -------------
  const double seed_cnot = h.run("seed/cnot_chain_20q", kRepeats, [&] {
    for (std::size_t q = 0; q + 1 < kQubits; ++q)
      seed::apply_cnot(seed_amps, q, q + 1);
  });
  const double kern_cnot = h.run("kernels/cnot_chain_20q", kRepeats, [&] {
    for (std::size_t q = 0; q + 1 < kQubits; ++q) sv.apply_cnot(q, q + 1);
  });

  const double seed_xx = h.run("seed/xxrot_chain_20q", kRepeats, [&] {
    for (std::size_t q = 0; q + 1 < kQubits; ++q)
      seed::apply_xxrot(seed_amps, q, q + 1, 0.37);
  });
  const double kern_xx = h.run("kernels/xxrot_chain_20q", kRepeats, [&] {
    for (std::size_t q = 0; q + 1 < kQubits; ++q)
      sv.apply_xxrot(q, q + 1, 0.37);
  });

  // --- Pauli exponential (packed-mask path) ------------------------------
  pauli::PauliString p(kQubits);
  for (std::size_t q = 0; q < kQubits; q += 2) p.set_letter(q, pauli::Letter::X);
  for (std::size_t q = 1; q < kQubits; q += 2) p.set_letter(q, pauli::Letter::Z);
  h.run("kernels/pauli_exp_20q", kRepeats, [&] { sv.apply_pauli_exp(p, 0.123); });

  const double singleq = (seed_h + seed_rz) / (kern_h + kern_rz);
  const double twoq = (seed_cnot + seed_xx) / (kern_cnot + kern_xx);
  h.metric("singleq_speedup", singleq);
  h.metric("twoq_speedup", twoq);
  h.metric("h_speedup", seed_h / kern_h);
  h.metric("rz_speedup", seed_rz / kern_rz);
  h.metric("cnot_speedup", seed_cnot / kern_cnot);
  h.metric("xxrot_speedup", seed_xx / kern_xx);
  std::printf("single-qubit speedup: %.2fx, two-qubit speedup: %.2fx\n",
              singleq, twoq);
  return h.write_json() ? 0 : 1;
}
