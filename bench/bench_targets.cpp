// Experiment E8: Table I per hardware target.
//
// Recompiles the Table-I molecules (advanced pipeline) against the three
// built-in hardware targets (synth/target.hpp):
//   all_to_all_cnot  the paper's metric -- model_cnots must be bit-identical
//                    to bench_table1's Adv column (same fixture, same
//                    options; asserted here and pinned exactly in the CI
//                    bench gate for the water anchor),
//   trapped_ion_xx   Moelmer-Sorensen-native lowering, costed in XX pulses,
//   linear_nn        nearest-neighbor chain with SWAP routing.
// Every compiled circuit (lowered/routed form included) is certified against
// its compilation spec by the equivalence checker; the verified_value
// metrics drop to 0 on any failed certificate, which fails the bench gate.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_harness.hpp"
#include "bench_fixtures.hpp"
#include "core/compiler.hpp"
#include "verify/equivalence.hpp"

namespace {

using namespace femto;

struct Row {
  std::string label;
  chem::Molecule mol;
  std::size_t ne;
};

}  // namespace

int main() {
  bench::Harness h("targets");
  std::vector<Row> rows = {
      {"HF", chem::make_hf(), 3},
      {"LiH", chem::make_lih(), 3},
      {"BeH2", chem::make_beh2(), 9},
      {"NH3", chem::make_nh3(), 52},
  };
  for (std::size_t ne : {4, 5, 6, 8, 9, 11, 12, 14, 16, 17})
    rows.push_back({"H2O(" + std::to_string(ne) + ")", chem::make_h2o(), ne});

  const verify::EquivalenceChecker checker;
  std::printf(
      "# Table I per hardware target (advanced pipeline; model = closed-form "
      "target cost, device = native entanglers of the lowered/routed "
      "circuit)\n");
  std::printf("%-9s %4s | %9s | %15s | %21s\n", "Molecule", "Ne", "all2all",
              "trapped_ion_xx", "linear_nn");
  std::printf("%-9s %4s | %9s | %7s %7s | %7s %7s %5s\n", "", "", "cnots",
              "model", "device", "model", "device", "swaps");

  bool all_certified = true;
  for (const Row& row : rows) {
    const bench::TermFixture p = bench::molecule_fixture(row.mol, row.ne);
    core::CompileOptions base =
        bench::table1_column_options("Adv", p.terms.size());
    base.emit_circuit = true;  // routing/lowering need the circuit
    const std::vector<synth::HardwareTarget> targets = {
        synth::HardwareTarget::all_to_all_cnot(),
        synth::HardwareTarget::trapped_ion_xx(),
        synth::HardwareTarget::linear_nn(p.n),
    };
    std::vector<core::CompileResult> results(targets.size());
    std::vector<int> certified(targets.size(), 0);
    for (std::size_t t = 0; t < targets.size(); ++t) {
      core::CompileOptions opt = base;
      opt.target = targets[t];
      h.run("targets/" + row.label + "/" + targets[t].name, 1, [&] {
        results[t] = core::compile_vqe(p.n, p.terms, opt);
        certified[t] = checker
                           .check_spec(results[t].final_circuit(),
                                       results[t].spec)
                           .equivalent()
                           ? 1
                           : 0;
      });
      h.metric("model_cnots", results[t].model_cnots);
      h.metric("model_cost", results[t].model_cost);
      h.metric("device_cost", results[t].device_cost);
      if (targets[t].coupling.constrained())
        h.metric("routed_swaps", results[t].routed_swaps);
      h.metric("verified_value", certified[t]);
      all_certified = all_certified && certified[t] == 1;
    }
    // The regression anchor: the default target's native cost IS the paper's
    // CNOT count, bit-identical to bench_table1's Adv column.
    FEMTO_ASSERT(results[0].model_cost == results[0].model_cnots);
    FEMTO_ASSERT(results[0].device_cost == results[0].emitted_cnots);
    std::printf("%-9s %4zu | %9d | %7d %7d | %7d %7d %5d\n", row.label.c_str(),
                p.terms.size(), results[0].model_cnots,
                results[1].model_cost, results[1].device_cost,
                results[2].model_cost, results[2].device_cost,
                results[2].routed_swaps);
    std::fflush(stdout);
  }
  std::printf("\nequivalence certificates: %s\n",
              all_certified ? "all targets certified" : "FAILURE");
  if (!all_certified) return 1;
  return h.write_json() ? 0 : 1;
}
