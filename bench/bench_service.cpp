// Service bench: boots a femtod daemon and drives concurrent compile load
// through the wire protocol, measuring end-to-end serving throughput and
// pinning the daemon determinism contract.
//
// By default the daemon is an in-process service::SocketServer (same code
// femtod runs); `--daemon <path-to-femtod>` forks/execs the real binary
// instead, which is what CI does so the shipped daemon is what gets gated.
//
// Gated metrics (tools/check_bench.py):
//   serve_cold/plans_per_s              ABS_FLOOR -- scenario plans served
//       per wall-clock second across 4 concurrent client connections
//       against a cold daemon pipeline (protocol + scheduling overhead
//       included).
//   serve_cold/served_equals_inprocess  ABS_EXACT 1.0 -- every served
//       response (circuits included) is byte-identical to the canonical
//       encoding of the same seeded request compiled in-process.
//   coalesce/coalesced_identical        ABS_EXACT 1.0 -- identical seeded
//       requests submitted while the scheduler is busy collapse onto one
//       execution and every waiter gets the same bytes as in-process.
//   db_warm/db_warm_equals_inprocess    ABS_EXACT 1.0 -- a daemon serving
//       from a prebuilt compilation database (.fdb) returns the same bytes
//       as the cold in-process compile.
//   deadline/deadline_enforced          ABS_EXACT 1.0 -- an impossible
//       deadline terminates DEADLINE_EXCEEDED at a restart boundary
//       instead of running to completion.
//   shutdown/clean_shutdown             ABS_EXACT 1.0 -- the graceful
//       shutdown handshake drains both daemons; an external femtod must
//       exit 0.
//   chaos/failpoint_disabled_zero_alloc ABS_EXACT 1.0 -- with no failpoint
//       armed, a million FEMTO_FAILPOINT evaluations perform zero heap
//       allocations (the disabled path is one relaxed atomic load).
//   chaos/chaos_db_survived             ABS_EXACT 1.0 -- short-write and
//       fsync faults injected into a database rewrite leave the previous
//       .fdb byte-identical and loadable (crash-safe persistence).
//   chaos/chaos_responses_identical     ABS_EXACT 1.0 -- a retrying client
//       fleet driven through wire-armed service.recv connection drops
//       completes every request byte-identical to in-process.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <optional>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench_fixtures.hpp"
#include "bench_harness.hpp"
#include "common/failpoint.hpp"
#include "core/pipeline.hpp"
#include "db/database.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"

// The chaos section's failpoint_disabled_zero_alloc metric pins the
// fault-injection framework's disabled-path cost contract (one relaxed
// atomic load, no allocation) in a Release binary: every allocation in the
// process bumps a counter, and a million disabled evaluations must not
// move it. Same replacement-allocator pattern as test_obs / test_failpoint.
//
// GCC's -Wmismatched-new-delete pairs our malloc-backed replacement
// operator new with the free() inside our replacement operator delete at
// inlined STL call sites and mis-reports a mismatch; the replacement pair
// is consistent (new -> malloc, delete -> free) by construction.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace femto;

constexpr std::uint64_t kSeed = 20230306;

/// One daemon under test: either an external femtod child process or an
/// in-process SocketServer running the identical serving stack.
struct Daemon {
  std::string socket_path;
  pid_t pid = -1;
  std::unique_ptr<service::SocketServer> server;
  std::thread runner;
};

Daemon boot_daemon(const std::string& femtod, const std::string& socket_path,
                   const std::string& db_path) {
  Daemon d;
  d.socket_path = socket_path;
  if (!femtod.empty()) {
    std::vector<std::string> argv = {femtod, "--socket", socket_path,
                                     "--workers", "2"};
    if (!db_path.empty()) {
      argv.push_back("--db");
      argv.push_back(db_path);
    }
    d.pid = service::spawn_process(argv);
    if (d.pid < 0) {
      std::fprintf(stderr, "bench_service: failed to spawn %s\n",
                   femtod.c_str());
      std::exit(1);
    }
  } else {
    service::SocketServerOptions options;
    options.socket_path = socket_path;
    options.service.pipeline.workers = 2;
    options.service.pipeline.restarts = 1;
    if (!db_path.empty()) options.service.pipeline.database_path = db_path;
    d.server = std::make_unique<service::SocketServer>(std::move(options));
    if (const std::string err = d.server->start(); !err.empty()) {
      std::fprintf(stderr, "bench_service: %s\n", err.c_str());
      std::exit(1);
    }
    d.runner = std::thread([srv = d.server.get()] { srv->run(); });
  }
  return d;
}

/// Graceful shutdown handshake + reap. True iff the drain acked and (for an
/// external daemon) the process exited 0.
bool shutdown_daemon(Daemon& d) {
  bool clean = false;
  if (auto conn = service::wait_for_server(d.socket_path, 2000)) {
    service::CompileClient client(std::move(*conn));
    clean = client.shutdown(/*cancel_queued=*/false);
  }
  if (d.pid > 0) {
    clean = service::wait_process(d.pid) == 0 && clean;
    d.pid = -1;
  } else if (d.runner.joinable()) {
    d.runner.join();
    d.server.reset();
  }
  ::unlink(d.socket_path.c_str());
  return clean;
}

std::optional<service::CompileClient> make_client(
    const std::string& socket_path) {
  auto conn = service::wait_for_server(socket_path, 10000);
  if (!conn.has_value()) return std::nullopt;
  return service::CompileClient(std::move(*conn));
}

std::string canonical(const core::CompileResponse& response) {
  return service::protocol::encode_response(
             service::protocol::summarize(response, /*include_circuit=*/true))
      .encode();
}

double stats_field(service::CompileClient& client, const char* key) {
  const auto stats = client.stats();
  if (!stats.has_value()) return -1.0;
  const service::json::Value* v = stats->find(key);
  return v != nullptr && v->is_number() ? v->as_double() : -1.0;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return in ? out.str() : "";
}

/// The `failpoints` op on a fresh connection, retried: while service.recv
/// is armed the daemon may tear the admin connection down before reading
/// the line, so the op itself must be driven with retries. Arming and
/// disarming are idempotent, so a dropped reply is safe to re-send.
bool failpoints_op_retry(const std::string& socket_path,
                         const std::string& arm, const std::string& disarm) {
  for (int attempt = 0; attempt < 20; ++attempt) {
    auto client = make_client(socket_path);
    if (!client.has_value()) continue;
    std::string err;
    if (client->failpoints(arm, disarm, err).has_value()) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::string femtod;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--daemon" && i + 1 < argc) {
      femtod = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--daemon <path-to-femtod>]\n", argv[0]);
      return 2;
    }
  }

  bench::Harness h("service");

  // ---- reference: the same seeded requests compiled in-process ----------
  h.section("reference");
  const std::vector<core::CompileScenario> scenarios =
      bench::suite_scenarios("small");
  std::vector<core::CompileRequest> requests;
  for (const core::CompileScenario& s : scenarios)
    requests.push_back({.scenarios = {s},
                        .restarts = 2,
                        .seed = kSeed,
                        .verify = true});
  core::CompilePipeline reference_pipeline({.workers = 2});
  std::vector<std::string> reference;
  for (const core::CompileRequest& r : requests) {
    const core::CompileResponse response = reference_pipeline.compile(r);
    if (!response.done()) {
      std::fprintf(stderr, "bench_service: reference compile failed: %s\n",
                   response.detail.c_str());
      return 1;
    }
    reference.push_back(canonical(response));
  }
  h.metric("info_requests", static_cast<double>(requests.size()));

  const std::string socket_base =
      "/tmp/femtod-bench-" + std::to_string(::getpid());
  Daemon daemon = boot_daemon(femtod, socket_base + "-1.sock", "");

  // ---- cold concurrent serving ------------------------------------------
  h.section("serve_cold");
  const std::size_t kClients = 4;
  std::vector<double> latencies_ms(kClients * requests.size(), 0.0);
  std::atomic<int> mismatches{0};
  std::atomic<int> transport_errors{0};
  const double elapsed_s = bench::time_once([&] {
    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        auto client = make_client(daemon.socket_path);
        if (!client.has_value()) {
          transport_errors.fetch_add(1);
          return;
        }
        for (std::size_t i = 0; i < requests.size(); ++i) {
          // Stagger per client so identical requests overlap in flight --
          // the daemon may coalesce them; the bytes must not change.
          const std::size_t idx = (c + i) % requests.size();
          std::string err;
          const auto started = std::chrono::steady_clock::now();
          const auto served = client->compile(
              requests[idx], "c" + std::to_string(c) + "-" + std::to_string(i),
              err, /*include_circuit=*/true);
          latencies_ms[c * requests.size() + i] =
              std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - started)
                  .count();
          if (!served.has_value()) {
            std::fprintf(stderr, "bench_service: compile failed: %s\n",
                         err.c_str());
            transport_errors.fetch_add(1);
          } else if (served->state != service::RequestState::kDone ||
                     served->canonical_response != reference[idx]) {
            mismatches.fetch_add(1);
          }
        }
      });
    }
    for (std::thread& t : clients) t.join();
  });
  const double plans = static_cast<double>(kClients * requests.size());
  h.metric("plans_per_s", elapsed_s > 0.0 ? plans / elapsed_s : 0.0);
  h.metric("served_equals_inprocess",
           mismatches.load() == 0 && transport_errors.load() == 0 ? 1.0 : 0.0);
  std::sort(latencies_ms.begin(), latencies_ms.end());
  h.metric("info_p50_ms", latencies_ms[latencies_ms.size() / 2]);
  h.metric("info_p99_ms", latencies_ms[latencies_ms.size() * 99 / 100]);
  h.metric("info_clients", static_cast<double>(kClients));

  // ---- coalescing under a busy scheduler --------------------------------
  h.section("coalesce");
  bool coalesce_ok = false;
  double coalesced_delta = -1.0;
  {
    auto stats_client = make_client(daemon.socket_path);
    auto blocker_conn = service::wait_for_server(daemon.socket_path, 10000);
    if (stats_client.has_value() && blocker_conn.has_value()) {
      const double submitted_before = stats_field(*stats_client, "submitted");
      const double coalesced_before = stats_field(*stats_client, "coalesced");
      // Occupy the scheduler with a long, differently-seeded request...
      core::CompileRequest blocker_request = requests[0];
      blocker_request.restarts = 100000;
      blocker_request.seed = 777;
      blocker_request.verify = false;
      service::json::Value msg = service::json::Value::object();
      msg.set("op", service::json::Value::string("compile"));
      msg.set("id", service::json::Value::string("blocker"));
      msg.set("include_circuit", service::json::Value::boolean(false));
      msg.set("request", service::protocol::encode_request(blocker_request));
      bool ok = blocker_conn->send_line(msg.encode());
      // ...then hammer it with identical seeded requests from 4 clients.
      const std::size_t kHammers = 4;
      std::vector<std::string> hammered(kHammers);
      std::atomic<int> hammer_errors{0};
      std::vector<std::thread> hammers;
      for (std::size_t t = 0; t < kHammers; ++t) {
        hammers.emplace_back([&, t] {
          auto client = make_client(daemon.socket_path);
          std::string err;
          const auto served =
              client.has_value()
                  ? client->compile(requests[0], "h" + std::to_string(t), err,
                                    /*include_circuit=*/true)
                  : std::nullopt;
          if (served.has_value())
            hammered[t] = served->canonical_response;
          else
            hammer_errors.fetch_add(1);
        });
      }
      // Release the blocker only once every hammer is in flight (they all
      // sit behind it in the queue, so they must have coalesced by then).
      const auto poll_deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(30);
      while (stats_field(*stats_client, "submitted") <
                 submitted_before + 1.0 + static_cast<double>(kHammers) &&
             std::chrono::steady_clock::now() < poll_deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      ok = blocker_conn->send_line(R"({"op":"cancel","id":"blocker"})") && ok;
      const auto blocker_deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(60);
      bool blocker_done = false;
      while (!blocker_done &&
             std::chrono::steady_clock::now() < blocker_deadline) {
        const auto line = blocker_conn->recv_line(1000);
        if (!line.has_value()) continue;
        const auto reply = service::json::parse(*line);
        if (!reply.has_value() || !reply->is_object()) break;
        const service::json::Value* op = reply->find("op");
        blocker_done = op != nullptr && op->is_string() &&
                       op->as_string() == "result";
      }
      for (std::thread& t : hammers) t.join();
      coalesced_delta =
          stats_field(*stats_client, "coalesced") - coalesced_before;
      bool all_equal = hammer_errors.load() == 0;
      for (const std::string& c : hammered) all_equal = all_equal && c == reference[0];
      coalesce_ok = ok && blocker_done && all_equal &&
                    coalesced_delta == static_cast<double>(kHammers - 1);
    }
  }
  h.metric("coalesced_identical", coalesce_ok ? 1.0 : 0.0);
  h.metric("info_coalesced_delta", coalesced_delta);

  bool clean = shutdown_daemon(daemon);

  // ---- serving from a prebuilt compilation database ---------------------
  h.section("db_warm");
  const std::string db_path = socket_base + ".fdb";
  bool db_ok = false;
  {
    db::DatabaseBuilder builder;
    core::CompilePipeline recorder({.workers = 2});
    recorder.set_store(&builder);
    bool recorded = true;
    for (const core::CompileRequest& r : requests)
      recorded = recorder.compile(r).done() && recorded;
    const std::string err = builder.write(db_path);
    if (!recorded || !err.empty()) {
      std::fprintf(stderr, "bench_service: db build failed: %s\n",
                   err.c_str());
    } else {
      Daemon warm = boot_daemon(femtod, socket_base + "-2.sock", db_path);
      if (auto client = make_client(warm.socket_path)) {
        db_ok = true;
        for (std::size_t i = 0; i < requests.size(); ++i) {
          std::string cerr;
          const auto served =
              client->compile(requests[i], "w" + std::to_string(i), cerr,
                              /*include_circuit=*/true);
          db_ok = db_ok && served.has_value() &&
                  served->canonical_response == reference[i];
        }
      }

      // ---- deadline enforcement (same warm daemon) ----------------------
      core::CompileRequest doomed = requests[0];
      doomed.restarts = 100000;
      doomed.seed = 5;
      doomed.verify = false;
      doomed.deadline_s = 0.2;
      bool deadline_ok = false;
      double restarts_completed = -1.0;
      if (auto client = make_client(warm.socket_path)) {
        std::string derr;
        const auto served = client->compile(doomed, "doomed", derr,
                                            /*include_circuit=*/false);
        if (served.has_value()) {
          deadline_ok =
              served->state == service::RequestState::kDeadlineExceeded;
          if (!served->response.outcomes.empty())
            restarts_completed = static_cast<double>(
                served->response.outcomes[0].restarts_completed);
        }
      }
      clean = shutdown_daemon(warm) && clean;
      h.metric("db_warm_equals_inprocess", db_ok ? 1.0 : 0.0);
      h.section("deadline");
      h.metric("deadline_enforced", deadline_ok ? 1.0 : 0.0);
      h.metric("info_restarts_completed", restarts_completed);
    }
    ::unlink(db_path.c_str());
  }

  // ---- graceful shutdown ------------------------------------------------
  h.section("shutdown");
  h.metric("clean_shutdown", clean ? 1.0 : 0.0);

  // ---- chaos: failpoint cost, crash-safe rewrites, fleet under drops ----
  h.section("chaos");
  {
    // Disabled-cost contract: with nothing armed anywhere in the process,
    // FEMTO_FAILPOINT is one relaxed atomic load -- zero heap allocations
    // over a million evaluations. Must run before anything below arms.
    fail::registry().disarm_all();
    std::uint64_t fired = 0;
    const std::uint64_t before = g_allocations.load();
    for (int i = 0; i < 1000000; ++i)
      if (FEMTO_FAILPOINT("bench.disabled.probe")) ++fired;
    const std::uint64_t delta = g_allocations.load() - before;
    h.metric("failpoint_disabled_zero_alloc",
             delta == 0 && fired == 0 ? 1.0 : 0.0);
    h.metric("info_disabled_evaluations", 1e6);
  }
  {
    // Crash-safe persistence: a rewrite that fails short or cannot fsync
    // must leave the previously published .fdb byte-identical and
    // loadable (the torn-write *kill* variant runs in test_db and
    // femtod_chaos, where a forked child can die safely).
    const std::string chaos_db_path = socket_base + "-chaos.fdb";
    bool chaos_db_ok = false;
    db::DatabaseBuilder builder;
    bool recorded = true;
    {
      core::CompilePipeline recorder({.workers = 2});
      recorder.set_store(&builder);
      for (const core::CompileRequest& r : requests)
        recorded = recorder.compile(r).done() && recorded;
    }
    if (recorded && builder.write(chaos_db_path).empty()) {
      const std::string bytes = read_file(chaos_db_path);
      fail::registry().arm_one({"db.write.short", 1.0, 1});
      const std::string short_err = builder.write(chaos_db_path);
      fail::registry().disarm_all();
      fail::registry().arm_one({"db.fsync", 1.0, 1});
      const std::string fsync_err = builder.write(chaos_db_path);
      fail::registry().disarm_all();
      std::string open_err;
      chaos_db_ok = !bytes.empty() && !short_err.empty() &&
                    !fsync_err.empty() &&
                    read_file(chaos_db_path) == bytes &&
                    db::Database::open(chaos_db_path, &open_err).has_value();
    }
    ::unlink(chaos_db_path.c_str());
    h.metric("chaos_db_survived", chaos_db_ok ? 1.0 : 0.0);
  }
  {
    // Fleet resilience: arm service.recv over the wire (works against the
    // in-process server and a forked femtod alike) and require a retrying
    // client fleet to land every response byte-identical to in-process.
    Daemon chaos_daemon = boot_daemon(femtod, socket_base + "-3.sock", "");
    const bool armed =
        failpoints_op_retry(chaos_daemon.socket_path, "service.recv:0.25:11",
                            "");
    std::atomic<int> fleet_failures{0};
    std::atomic<int> fleet_mismatches{0};
    const std::size_t kFleet = 2;
    std::vector<std::thread> fleet;
    for (std::size_t c = 0; c < kFleet; ++c) {
      fleet.emplace_back([&, c] {
        service::RetryPolicy policy;
        policy.max_attempts = 60;
        policy.base_delay_s = 0.005;
        policy.max_delay_s = 0.1;
        policy.seed = 40 + c;  // decorrelate the fleet's back-off
        service::CompileClient client(chaos_daemon.socket_path, policy);
        for (std::size_t i = 0; i < requests.size(); ++i) {
          std::string cerr;
          const auto served = client.compile_retry(
              requests[i], "x" + std::to_string(c) + "-" + std::to_string(i),
              cerr, /*include_circuit=*/true);
          if (!served.has_value() ||
              served->state != service::RequestState::kDone) {
            std::fprintf(stderr, "bench_service: chaos compile failed: %s\n",
                         cerr.c_str());
            fleet_failures.fetch_add(1);
          } else if (served->canonical_response != reference[i]) {
            fleet_mismatches.fetch_add(1);
          }
        }
      });
    }
    for (std::thread& t : fleet) t.join();
    const bool disarmed =
        failpoints_op_retry(chaos_daemon.socket_path, "", "all");
    const bool chaos_clean = shutdown_daemon(chaos_daemon);
    h.metric("chaos_responses_identical",
             armed && disarmed && chaos_clean && fleet_failures.load() == 0 &&
                     fleet_mismatches.load() == 0
                 ? 1.0
                 : 0.0);
    h.metric("info_fleet_clients", static_cast<double>(kFleet));
  }

  return h.write_json() ? 0 : 1;
}
