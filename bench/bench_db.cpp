// Persistent compilation database: cold-build vs warm-serve (db/database.hpp).
//
// Workflow under test (the production cold/warm cycle):
//   1. cold   compile a small Table-1 slice with a recording DatabaseBuilder
//             attached to the pipeline cache; write femto_bench.fdb
//   2. warm   reopen the file via PipelineOptions.database_path (mmap,
//             read-only) and recompile the identical slice with
//             verify-on-compile certifying the DB-served segments
//   3. lookup micro-benchmark of raw Database::lookup over every stored key
//
// Gated metrics (tools/check_bench.py):
//   warm_equals_cold    1.0 exact pin -- every warm result matches its cold
//                       result field-for-field and gate-for-gate (the
//                       database's bit-identity contract, end to end)
//   warm_verified       1.0 exact pin -- verify-on-compile certified every
//                       warm circuit, i.e. DB-served artifacts pass the same
//                       equivalence check as freshly synthesized ones
//   warm_lookups_per_s  absolute floor -- serving from the mmap'd index must
//                       stay at memory speed on any machine
// info_* metrics (hit counters, sizes, speedups) are informational.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_fixtures.hpp"
#include "bench_harness.hpp"
#include "core/pipeline.hpp"
#include "db/database.hpp"

namespace {

using namespace femto;

std::vector<core::CompileScenario> make_scenarios() {
  struct Entry {
    std::string label;
    chem::Molecule mol;
    std::size_t ne;
  };
  const std::vector<Entry> entries = {
      {"HF", chem::make_hf(), 3},
      {"LiH", chem::make_lih(), 3},
      {"H2O(4)", chem::make_h2o(), 4},
      {"H2O(5)", chem::make_h2o(), 5},
  };
  std::vector<core::CompileScenario> scenarios;
  for (const Entry& e : entries) {
    const bench::TermFixture f = bench::molecule_fixture(e.mol, e.ne);
    core::CompileScenario s;
    s.name = e.label;
    s.num_qubits = f.n;
    s.terms = f.terms;
    s.options = bench::table1_column_options("Adv", f.terms.size());
    s.options.emit_circuit = true;  // the database stores real artifacts
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

bool results_identical(const core::CompileResult& a,
                       const core::CompileResult& b) {
  return a.num_qubits == b.num_qubits && a.model_cnots == b.model_cnots &&
         a.emitted_cnots == b.emitted_cnots &&
         a.term_order == b.term_order &&
         a.circuit.to_string() == b.circuit.to_string();
}

}  // namespace

int main() {
  bench::Harness h("db");
  const std::string db_path = "femto_bench.fdb";
  const std::vector<core::CompileScenario> scenarios = make_scenarios();

  // ---- 1. cold: record and write ----------------------------------------
  db::DatabaseBuilder builder;
  std::vector<core::CompileResult> cold_results;
  h.run("db/cold_build", 1, [&] {
    core::CompilePipeline pipeline(core::PipelineOptions{});
    pipeline.set_store(&builder);
    cold_results = pipeline.compile_batch(scenarios);
  });
  if (const std::string err = builder.write(db_path); !err.empty()) {
    std::fprintf(stderr, "bench_db: %s\n", err.c_str());
    return 1;
  }
  h.metric("info_db_entries", static_cast<double>(builder.size()));

  std::string err;
  const auto database = db::Database::open(db_path, &err);
  if (!database.has_value()) {
    std::fprintf(stderr, "bench_db: %s\n", err.c_str());
    return 1;
  }
  h.metric("info_db_bytes", static_cast<double>(database->file_bytes()));

  // ---- 2. warm: serve from the database, verify-on-compile --------------
  core::PipelineOptions warm_opt;
  warm_opt.verify = true;
  warm_opt.database_path = db_path;
  std::vector<core::CompileResult> warm_results;
  bool warm_verified = false;
  synth::SynthesisCache::Stats warm_stats;
  const double warm_s = h.run("db/warm_compile", 3, [&] {
    core::CompilePipeline pipeline(warm_opt);
    warm_results = pipeline.compile_batch(scenarios);
    warm_verified = true;
    for (const verify::EquivalenceReport& r : pipeline.last_verification())
      warm_verified = warm_verified && r.equivalent();
    warm_stats = pipeline.cache().stats();
  });
  h.metric("info_l2_hits", static_cast<double>(warm_stats.l2_hits));
  h.metric("info_l1_misses", static_cast<double>(warm_stats.misses));
  bool identical = warm_results.size() == cold_results.size();
  for (std::size_t i = 0; identical && i < warm_results.size(); ++i)
    identical = results_identical(cold_results[i], warm_results[i]);
  h.metric("warm_equals_cold", identical ? 1.0 : 0.0);
  h.metric("warm_verified", warm_verified ? 1.0 : 0.0);

  // ---- 3. raw lookup throughput over every stored key --------------------
  std::vector<std::string> keys;
  keys.reserve(database->entry_count());
  for (std::size_t i = 0; i < database->entry_count(); ++i)
    keys.emplace_back(database->key(i));
  constexpr int kRounds = 200;
  std::size_t served = 0;
  const double lookup_s = h.run("db/warm_lookup", 3, [&] {
    served = 0;
    for (int round = 0; round < kRounds; ++round)
      for (const std::string& key : keys)
        if (database->lookup(key).has_value()) ++served;
  });
  if (served != keys.size() * kRounds) {
    std::fprintf(stderr, "bench_db: lookup served %zu of %zu keys\n", served,
                 keys.size() * kRounds);
    return 1;
  }
  h.metric("warm_lookups_per_s",
           lookup_s > 0.0 ? static_cast<double>(served) / lookup_s : 0.0);
  h.metric("info_warm_compile_speedup",
           warm_s > 0.0 ? h.sections()[0].median_s / warm_s : 0.0);

  std::printf("# cold build -> %s (%zu entries, %zu bytes); warm recompile "
              "identical: %s, verified: %s\n",
              db_path.c_str(), database->entry_count(),
              database->file_bytes(), identical ? "yes" : "NO",
              warm_verified ? "yes" : "NO");
  return h.write_json() ? 0 : 1;
}
