// Experiment E4: ablation of the fermion-to-qubit transformation search
// (paper Sec. III-C).
//
// For water fermionic segments (baseline sorting, no compression, to isolate
// the transform), compares:
//   identity      : plain Jordan-Wigner
//   bk            : Bravyi-Kitaev (Fenwick)
//   ut-pso        : upper-triangular Gamma via binary PSO + labeling ([9])
//   block-sa      : block-diagonal Gamma via simulated annealing (this work)
// The paper's argument: SA over the topology-restricted block space escapes
// the local minima PSO gets stuck in.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "chem/integrals.hpp"
#include "chem/mo_integrals.hpp"
#include "chem/molecules.hpp"
#include "chem/scf.hpp"
#include "core/compiler.hpp"
#include "vqe/uccsd.hpp"

namespace {

using namespace femto;

struct Fixture {
  std::size_t n = 0;
  std::vector<fermion::ExcitationTerm> terms;
};

const Fixture& molecule_terms(int which, std::size_t ne) {
  static Fixture fixtures[4][40];
  Fixture& f = fixtures[which][ne];
  if (f.n == 0) {
    chem::Molecule mol;
    switch (which) {
      case 0: mol = chem::make_h2o(); break;
      case 1: mol = chem::make_lih(); break;
      default: mol = chem::make_beh2(); break;
    }
    auto basis = chem::build_sto3g(mol);
    chem::normalize_basis(basis);
    const auto ints = chem::compute_integrals(mol, basis);
    const auto scf = chem::run_rhf(mol, ints);
    const auto mo = chem::transform_to_mo(mol, ints, scf);
    const auto so = chem::to_spin_orbitals(mo);
    const auto all = vqe::uccsd_hmp2_terms(so);
    f.n = so.n;
    f.terms.assign(all.begin(),
                   all.begin() + static_cast<std::ptrdiff_t>(
                                     std::min(ne, all.size())));
  }
  return f;
}

int count_with_transform(const Fixture& f, core::TransformKind kind,
                         core::SortingMode sorting) {
  core::CompileOptions opt;
  opt.emit_circuit = false;
  opt.transform = kind;
  opt.compression = core::CompressionMode::kNone;
  opt.sorting = sorting;
  return core::compile_vqe(f.n, f.terms, opt).model_cnots;
}

void BM_GammaSearchSa(benchmark::State& state) {
  const Fixture& f = molecule_terms(0, static_cast<std::size_t>(state.range(0)));
  int count = 0;
  for (auto _ : state)
    count = count_with_transform(f, core::TransformKind::kAdvanced,
                                 core::SortingMode::kBaseline);
  state.counters["cnots"] = count;
}
void BM_GammaSearchPso(benchmark::State& state) {
  const Fixture& f = molecule_terms(0, static_cast<std::size_t>(state.range(0)));
  int count = 0;
  for (auto _ : state)
    count = count_with_transform(f, core::TransformKind::kBaselineGT,
                                 core::SortingMode::kBaseline);
  state.counters["cnots"] = count;
}

BENCHMARK(BM_GammaSearchSa)->Arg(6)->Arg(10)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GammaSearchPso)->Arg(6)->Arg(10)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::printf("\n# E4 Gamma ablation (baseline sorting, no compression)\n");
  std::printf("%-10s %4s | %9s %6s %8s %9s\n", "molecule", "Ne", "identity",
              "bk", "ut-pso", "block-sa");
  struct Case {
    int which;
    const char* name;
    std::size_t ne;
  };
  for (const Case c : {Case{1, "LiH", 3}, Case{2, "BeH2", 9},
                       Case{0, "H2O", 8}, Case{0, "H2O", 17}}) {
    const Fixture& f = molecule_terms(c.which, c.ne);
    std::printf("%-10s %4zu | %9d %6d %8d %9d\n", c.name, f.terms.size(),
                count_with_transform(f, core::TransformKind::kJordanWigner,
                                     core::SortingMode::kBaseline),
                count_with_transform(f, core::TransformKind::kBravyiKitaev,
                                     core::SortingMode::kBaseline),
                count_with_transform(f, core::TransformKind::kBaselineGT,
                                     core::SortingMode::kBaseline),
                count_with_transform(f, core::TransformKind::kAdvanced,
                                     core::SortingMode::kBaseline));
    std::fflush(stdout);
  }
  return 0;
}
