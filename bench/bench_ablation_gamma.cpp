// Experiment E4: ablation of the fermion-to-qubit transformation search
// (paper Sec. III-C).
//
// For water fermionic segments (baseline sorting, no compression, to isolate
// the transform), compares:
//   identity      : plain Jordan-Wigner
//   bk            : Bravyi-Kitaev (Fenwick)
//   ut-pso        : upper-triangular Gamma via binary PSO + labeling ([9])
//   block-sa      : block-diagonal Gamma via simulated annealing (this work)
// The paper's argument: SA over the topology-restricted block space escapes
// the local minima PSO gets stuck in.
#include <cstdio>
#include <string>

#include "bench_harness.hpp"

#include "chem/integrals.hpp"
#include "chem/mo_integrals.hpp"
#include "chem/molecules.hpp"
#include "chem/scf.hpp"
#include "core/compiler.hpp"
#include "vqe/uccsd.hpp"

namespace {

using namespace femto;

struct Fixture {
  std::size_t n = 0;
  std::vector<fermion::ExcitationTerm> terms;
};

const Fixture& molecule_terms(int which, std::size_t ne) {
  static Fixture fixtures[4][40];
  Fixture& f = fixtures[which][ne];
  if (f.n == 0) {
    chem::Molecule mol;
    switch (which) {
      case 0: mol = chem::make_h2o(); break;
      case 1: mol = chem::make_lih(); break;
      default: mol = chem::make_beh2(); break;
    }
    auto basis = chem::build_sto3g(mol);
    chem::normalize_basis(basis);
    const auto ints = chem::compute_integrals(mol, basis);
    const auto scf = chem::run_rhf(mol, ints);
    const auto mo = chem::transform_to_mo(mol, ints, scf);
    const auto so = chem::to_spin_orbitals(mo);
    const auto all = vqe::uccsd_hmp2_terms(so);
    f.n = so.n;
    f.terms.assign(all.begin(),
                   all.begin() + static_cast<std::ptrdiff_t>(
                                     std::min(ne, all.size())));
  }
  return f;
}

int count_with_transform(const Fixture& f, core::TransformKind kind,
                         core::SortingMode sorting) {
  core::CompileOptions opt;
  opt.emit_circuit = false;
  opt.transform = kind;
  opt.compression = core::CompressionMode::kNone;
  opt.sorting = sorting;
  return core::compile_vqe(f.n, f.terms, opt).model_cnots;
}

void bench_gamma_search(bench::Harness& h, const char* name,
                        core::TransformKind kind, std::size_t ne) {
  const Fixture& f = molecule_terms(0, ne);
  int count = 0;
  h.run(std::string("gamma_search/") + name + "_h2o_" + std::to_string(ne), 3,
        [&] {
          count = count_with_transform(f, kind, core::SortingMode::kBaseline);
        });
  h.metric("cnots", count);
}

}  // namespace

int main() {
  bench::Harness h("ablation_gamma");
  for (std::size_t ne : {6, 10}) {
    bench_gamma_search(h, "block_sa", core::TransformKind::kAdvanced, ne);
    bench_gamma_search(h, "ut_pso", core::TransformKind::kBaselineGT, ne);
  }
  std::printf("\n# E4 Gamma ablation (baseline sorting, no compression)\n");
  std::printf("%-10s %4s | %9s %6s %8s %9s\n", "molecule", "Ne", "identity",
              "bk", "ut-pso", "block-sa");
  struct Case {
    int which;
    const char* name;
    std::size_t ne;
  };
  for (const Case c : {Case{1, "LiH", 3}, Case{2, "BeH2", 9},
                       Case{0, "H2O", 8}, Case{0, "H2O", 17}}) {
    const Fixture& f = molecule_terms(c.which, c.ne);
    int counts[4] = {0, 0, 0, 0};
    const core::TransformKind kinds[4] = {
        core::TransformKind::kJordanWigner, core::TransformKind::kBravyiKitaev,
        core::TransformKind::kBaselineGT, core::TransformKind::kAdvanced};
    h.run(std::string("ablation/") + c.name + "_" +
              std::to_string(f.terms.size()),
          1, [&] {
            for (int k = 0; k < 4; ++k)
              counts[k] =
                  count_with_transform(f, kinds[k], core::SortingMode::kBaseline);
          });
    std::printf("%-10s %4zu | %9d %6d %8d %9d\n", c.name, f.terms.size(),
                counts[0], counts[1], counts[2], counts[3]);
    std::fflush(stdout);
    h.metric("identity", counts[0]);
    h.metric("bk", counts[1]);
    h.metric("ut_pso", counts[2]);
    h.metric("block_sa", counts[3]);
  }
  return h.write_json() ? 0 : 1;
}
