// Experiment E5: ablation of the hybrid encoding (paper Sec. III-A).
//
// Compares compression modes on water term sets:
//   none         : every term implemented fermionically
//   bosonic-only : [8]'s compression (both sides spin pairs)
//   hybrid       : this work's GVCP-planned compression
// and sweeps the randomized-coloring order count to show the GVCP heuristic
// quality saturating (paper Sec. IV).
#include <cstdio>
#include <string>

#include "bench_harness.hpp"

#include "chem/integrals.hpp"
#include "chem/mo_integrals.hpp"
#include "chem/molecules.hpp"
#include "chem/scf.hpp"
#include "core/compiler.hpp"
#include "encoding/hybrid_plan.hpp"
#include "vqe/uccsd.hpp"

namespace {

using namespace femto;

struct Fixture {
  std::size_t n = 0;
  std::vector<fermion::ExcitationTerm> terms;
};

const Fixture& water_terms(std::size_t ne) {
  static Fixture fixtures[40];
  Fixture& f = fixtures[ne];
  if (f.n == 0) {
    const auto mol = chem::make_h2o();
    auto basis = chem::build_sto3g(mol);
    chem::normalize_basis(basis);
    const auto ints = chem::compute_integrals(mol, basis);
    const auto scf = chem::run_rhf(mol, ints);
    const auto mo = chem::transform_to_mo(mol, ints, scf);
    const auto so = chem::to_spin_orbitals(mo);
    const auto all = vqe::uccsd_hmp2_terms(so);
    f.n = so.n;
    f.terms.assign(all.begin(),
                   all.begin() + static_cast<std::ptrdiff_t>(
                                     std::min(ne, all.size())));
  }
  return f;
}

int count_with_compression(const Fixture& f, core::CompressionMode mode) {
  core::CompileOptions opt;
  opt.emit_circuit = false;
  opt.compression = mode;
  return core::compile_vqe(f.n, f.terms, opt).model_cnots;
}

}  // namespace

int main() {
  bench::Harness h("ablation_hybrid");
  {
    const Fixture& f = water_terms(17);
    for (int orders : {1, 16, 64, 256}) {
      std::size_t folded = 0;
      h.run("plan_hybrid/water17_orders" + std::to_string(orders), 5, [&] {
        Rng rng(1);
        folded = encoding::plan_hybrid_encoding(f.terms, rng, orders)
                     .hybrid_folded;
      });
      h.metric("orders", orders);
      h.metric("folded", static_cast<double>(folded));
    }
  }

  std::printf("\n# E5 compression ablation (advanced transform + sorting)\n");
  std::printf("%4s %8s %14s %8s\n", "Ne", "none", "bosonic-only", "hybrid");
  for (std::size_t ne : {4, 8, 12, 17, 24}) {
    const Fixture& f = water_terms(ne);
    int counts[3] = {0, 0, 0};
    const core::CompressionMode modes[3] = {core::CompressionMode::kNone,
                                            core::CompressionMode::kBosonicOnly,
                                            core::CompressionMode::kHybrid};
    h.run("compression/water_" + std::to_string(f.terms.size()), 1, [&] {
      for (int k = 0; k < 3; ++k)
        counts[k] = count_with_compression(f, modes[k]);
    });
    std::printf("%4zu %8d %14d %8d\n", f.terms.size(), counts[0], counts[1],
                counts[2]);
    std::fflush(stdout);
    h.metric("none", counts[0]);
    h.metric("bosonic_only", counts[1]);
    h.metric("hybrid", counts[2]);
  }

  // Water's hybrid conflicts peel away entirely (no colored core), so the
  // coloring sweep uses the paper's Appendix A conflict structure tiled
  // `copies` times with orbital offsets -- every copy contributes the
  // 5-vertex irreducible core of Fig. 6(b).
  std::printf("\n# GVCP coloring-order sweep (Appendix-A cores, tiled x6)\n");
  std::printf("%8s %8s %12s %8s\n", "orders", "colors", "class-size",
              "folded");
  std::vector<fermion::ExcitationTerm> tiled;
  for (std::size_t copy = 0; copy < 6; ++copy) {
    const std::size_t off = 22 * copy;
    const auto add = [&](std::size_t p, std::size_t q, std::size_t r,
                         std::size_t s) {
      tiled.push_back(
          fermion::ExcitationTerm::make_double(p + off, q + off, r + off,
                                               s + off));
    };
    add(8, 11, 2, 3);
    add(10, 11, 2, 5);
    add(19, 20, 4, 5);
    add(18, 21, 4, 5);
    add(12, 15, 0, 1);
    add(10, 13, 4, 5);
    add(12, 13, 4, 7);
    add(12, 15, 6, 7);
    add(16, 17, 2, 7);
  }
  for (int orders : {1, 4, 16, 64, 256}) {
    Rng rng(7);
    const auto plan = encoding::plan_hybrid_encoding(tiled, rng, orders);
    std::printf("%8d %8d %12zu %8zu\n", orders, plan.chromatic_number,
                plan.colored.size(), plan.hybrid_folded);
    h.section("gvcp_sweep/orders" + std::to_string(orders));
    h.metric("chromatic_number", plan.chromatic_number);
    h.metric("class_size", static_cast<double>(plan.colored.size()));
    h.metric("folded", static_cast<double>(plan.hybrid_folded));
  }
  return h.write_json() ? 0 : 1;
}
