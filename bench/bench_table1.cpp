// Experiment E1: Table I of the paper.
//
// CNOT counts for VQE circuits of HF, LiH, BeH2, NH3 (at the HMP2
// chemical-accuracy term counts Ne = 3, 3, 9, 52) and the water HMP2
// progression (Ne = 4..17), under four compilation modes:
//   JW  : Jordan-Wigner + baseline pipeline of [9]
//   BK  : Bravyi-Kitaev + baseline pipeline
//   GT  : upper-triangular Gamma via binary PSO + level labeling + baseline
//   Adv : this paper -- hybrid encoding (GVCP), block-diagonal Gamma via SA,
//         joint GTSP sorting (genetic algorithm)
// Improve(%) = (GT - Adv) / GT * 100, as in the paper.
//
// Paper reference values are printed alongside for shape comparison; exact
// absolute counts depend on heuristic seeds and the re-implemented baseline
// (see EXPERIMENTS.md).
#include <cstdio>

#include "bench_harness.hpp"
#include <string>
#include <vector>

#include "bench_fixtures.hpp"
#include "core/compiler.hpp"
#include "vqe/hmp2.hpp"

namespace {

using namespace femto;

struct Row {
  std::string label;
  chem::Molecule mol;
  std::size_t ne;                    // number of ansatz terms
  int paper_jw, paper_bk, paper_gt, paper_adv;
};

/// Static-MP2 HMP2 term sequences via the shared fixture cache
/// (bench_fixtures.hpp). The static ranking reproduces the paper's Table I
/// term choices closely (its water JW counts 42/44/46 match exactly: the
/// 5th and 6th selected terms are 2-CNOT bosonic pairs, as in [9]); the
/// *adaptive* HMP2 loop (used by bench_fig5) reproduces the convergence
/// behaviour instead. See EXPERIMENTS.md.
bench::TermFixture prepare(const chem::Molecule& mol, std::size_t ne) {
  return bench::molecule_fixture(mol, ne);
}

}  // namespace

int main() {
  bench::Harness h("table1");
  std::vector<Row> rows = {
      {"HF", chem::make_hf(), 3, 30, 29, 25, 19},
      {"LiH", chem::make_lih(), 3, 30, 29, 25, 19},
      {"BeH2", chem::make_beh2(), 9, 70, 71, 60, 53},
      {"NH3", chem::make_nh3(), 52, 485, 607, 478, 461},
  };
  for (std::size_t ne : {4, 5, 6, 8, 9, 11, 12, 14, 16, 17})
    rows.push_back({"H2O(" + std::to_string(ne) + ")", chem::make_h2o(), ne,
                    0, 0, 0, 0});
  // Paper's water progression reference values.
  const int water_ref[10][4] = {
      {42, 50, 33, 27},  {44, 52, 35, 29},   {46, 47, 37, 31},
      {68, 88, 63, 50},  {71, 89, 66, 53},   {93, 110, 87, 67},
      {95, 112, 89, 70}, {114, 140, 111, 88}, {135, 166, 131, 105},
      {137, 168, 133, 107}};
  for (std::size_t k = 0; k < 10; ++k) {
    rows[4 + k].paper_jw = water_ref[k][0];
    rows[4 + k].paper_bk = water_ref[k][1];
    rows[4 + k].paper_gt = water_ref[k][2];
    rows[4 + k].paper_adv = water_ref[k][3];
  }

  std::printf(
      "# Table I reproduction: CNOT counts per transform (model counts, "
      "paper accounting)\n");
  std::printf(
      "# paper values in parentheses; Improve(%%) = (GT-Adv)/GT*100\n");
  std::printf(
      "%-9s %4s | %12s %12s %12s %12s | %9s %9s\n", "Molecule", "Ne", "JW",
      "BK", "GT", "Adv", "Impr(%)", "paper(%)");
  for (const Row& row : rows) {
    const bench::TermFixture p = prepare(row.mol, row.ne);
    int counts[4] = {0, 0, 0, 0};
    const char* columns[4] = {"JW", "BK", "GT", "Adv"};
    // Median of 3: the compile hot-path overhaul made the full suite cheap
    // enough to repeat, so the committed medians are no longer single-shot
    // samples (median == min == max was the tell of repeats: 1).
    h.run("table1/" + row.label, 3, [&] {
      for (int c = 0; c < 4; ++c) {
        const auto res = core::compile_vqe(
            p.n, p.terms,
            bench::table1_column_options(columns[c], p.terms.size()));
        counts[c] = res.model_cnots;
      }
    });
    const double improve =
        counts[2] > 0 ? 100.0 * (counts[2] - counts[3]) / counts[2] : 0.0;
    const double paper_improve =
        row.paper_gt > 0
            ? 100.0 * (row.paper_gt - row.paper_adv) / row.paper_gt
            : 0.0;
    std::printf(
        "%-9s %4zu | %5d (%4d) %5d (%4d) %5d (%4d) %5d (%4d) | %9.2f %9.2f\n",
        row.label.c_str(), p.terms.size(), counts[0], row.paper_jw, counts[1],
        row.paper_bk, counts[2], row.paper_gt, counts[3], row.paper_adv,
        improve, paper_improve);
    std::fflush(stdout);
    h.metric("jw", counts[0]);
    h.metric("bk", counts[1]);
    h.metric("gt", counts[2]);
    h.metric("adv", counts[3]);
    h.metric("improve_pct", improve);
    h.metric("paper_improve_pct", paper_improve);
  }
  return h.write_json() ? 0 : 1;
}
