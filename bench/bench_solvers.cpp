// Experiment E6: solver micro-benchmarks.
//
//  - GTSP: GA vs greedy vs random on synthetic clustered instances
//    (solution quality and wall time), plus the multi-restart GA on the
//    shared thread pool (opt/restart.hpp): restart 0 reproduces the
//    single-shot run, so quality can only improve with restarts.
//  - Simulated annealing schedule sweep on a rugged test function, plus the
//    multi-restart SA driver.
//  - Linear-reversible synthesis: PMH vs plain Gaussian elimination CNOT
//    counts (the PMH dedup should win as n grows; paper reference [26]).
#include <cmath>
#include <cstdio>
#include <string>

#include "bench_harness.hpp"

#include "bench_fixtures.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/rotation_blocks.hpp"
#include "core/sorting.hpp"
#include "gf2/linear_synthesis.hpp"
#include "opt/gtsp.hpp"
#include "opt/restart.hpp"
#include "opt/simulated_annealing.hpp"
#include "synth/target.hpp"
#include "transform/linear_encoding.hpp"

namespace {

using namespace femto;

opt::GtspInstance random_instance(std::size_t clusters, std::size_t k) {
  opt::GtspInstance inst;
  int next = 0;
  for (std::size_t c = 0; c < clusters; ++c) {
    std::vector<int> cluster;
    for (std::size_t v = 0; v < k; ++v) cluster.push_back(next++);
    inst.clusters.push_back(cluster);
  }
  inst.weight = [](int a, int b) {
    const unsigned h = static_cast<unsigned>(a * 2654435761u) ^
                       static_cast<unsigned>(b * 40503u);
    return static_cast<double>(h % 997) / 100.0;
  };
  return inst;
}

}  // namespace

int main() {
  bench::Harness h("solvers");
  ThreadPool pool;
  for (std::size_t clusters : {16, 48}) {
    const auto inst = random_instance(clusters, 4);
    const auto bench_one = [&](const char* name, auto&& solve) {
      double value = 0;
      h.run(std::string("gtsp/") + name + "_" + std::to_string(clusters), 3,
            [&] {
              Rng rng(7);
              value = solve(rng);
            });
      h.metric("value", value);
    };
    bench_one("ga", [&](Rng& r) { return opt::solve_gtsp_ga(inst, r).value; });
    bench_one("greedy",
              [&](Rng& r) { return opt::solve_gtsp_greedy(inst, r).value; });
    bench_one("random",
              [&](Rng& r) { return opt::solve_gtsp_random(inst, r, 50).value; });
    // Multi-restart GA on the pool: seed 7 stream 0 == the single-shot run.
    double value8 = 0;
    h.run("gtsp/ga_restart8_" + std::to_string(clusters), 3, [&] {
      value8 = opt::solve_gtsp_ga_restarts(8, 7, inst, {}, &pool).value;
    });
    h.metric("value", value8);
  }
  for (std::size_t n : {8, 16, 32, 64}) {
    Rng rng(11);
    const auto m = gf2::Matrix::random_invertible(n, rng);
    std::size_t gates = 0;
    h.run("pmh_synthesis/n" + std::to_string(n), 5,
          [&] { gates = gf2::synthesize_pmh(m).size(); });
    h.metric("cnots", static_cast<double>(gates));
  }

  std::printf("\n# E6a GTSP solution quality (higher is better)\n");
  std::printf("%9s %8s %8s %8s\n", "clusters", "ga", "greedy", "random");
  for (std::size_t m : {12, 24, 48, 96}) {
    const auto inst = random_instance(m, 4);
    Rng r1(3), r2(3), r3(3);
    std::printf("%9zu %8.1f %8.1f %8.1f\n", m,
                opt::solve_gtsp_ga(inst, r1).value,
                opt::solve_gtsp_greedy(inst, r2).value,
                opt::solve_gtsp_random(inst, r3, 50).value);
  }

  std::printf("\n# E6b SA cooling-schedule sweep: f(x)=(x-17)^2/10+3 sin x\n");
  std::printf("%8s %8s %8s %12s %12s\n", "steps", "t0", "restarts", "best-f",
              "best-f-r8");
  for (const auto& [steps, t0] : {std::pair{200, 1.0}, {200, 5.0},
                                 {2000, 1.0}, {2000, 5.0}, {8000, 5.0}}) {
    Rng rng(5);
    const auto energy = [](const int& x) {
      return (x - 17) * (x - 17) / 10.0 + 3.0 * std::sin(double(x));
    };
    const auto propose = [](const int& x, Rng& r) { return x + r.range(-3, 3); };
    opt::SaOptions sa;
    sa.steps = steps;
    sa.t_initial = t0;
    sa.t_final = 0.01;
    const auto res = opt::simulated_annealing<int>(100, energy, propose, rng, sa);
    // 8 restarts on the pool; stream 0 reproduces the Rng(5) run above.
    const auto res8 = opt::simulated_annealing_restarts<int>(
        8, 5, 100, energy, propose, sa, &pool);
    std::printf("%8d %8.1f %8d %12.4f %12.4f\n", steps, t0, 8,
                res.best_energy, res8.best_energy);
    h.section("sa/steps" + std::to_string(steps) + "_t" +
              std::to_string(static_cast<int>(t0)));
    h.metric("best_energy_r8", res8.best_energy);
  }

  // E6d: the GTSP sorter on a REAL instance -- the water(8) Jordan-Wigner
  // rotation blocks from the shared molecule fixture (bench_fixtures.hpp) --
  // under the all-to-all CNOT model and the trapped-ion XX device model
  // (target-parameterized edge weights, synth/target.hpp).
  {
    const auto& f = bench::water_terms(8);
    std::vector<synth::RotationBlock> blocks;
    int param = 0;
    for (const auto& term : f.terms) {
      const pauli::PauliSum g = transform::jw_map(f.n, term.generator());
      for (auto& b : core::blocks_from_generator(g, param))
        blocks.push_back(std::move(b));
      ++param;
    }
    const synth::HardwareTarget xx = synth::HardwareTarget::trapped_ion_xx();
    const synth::HardwareTarget nn = synth::HardwareTarget::linear_nn(f.n);
    std::vector<synth::RotationBlock> sorted, sorted_nn;
    h.run("gtsp/water8_jw", 3, [&] {
      Rng rng(17);
      sorted = core::sort_advanced(blocks, rng);
    });
    h.metric("unsorted_cnots", synth::sequence_model_cost(blocks));
    h.metric("sorted_saving", synth::sequence_model_cost(blocks) -
                                  synth::sequence_model_cost(sorted));
    // The same order re-costed in trapped-ion pulses (min of the two exact
    // lowering forms -- what the compiler emits for the XX target).
    h.metric("sorted_pulses_saving",
             synth::sequence_model_cost(blocks, xx) -
                 synth::sequence_model_cost(sorted, xx));
    // Connectivity-constrained sort: distance-aware device weights
    // (target-choice bonus + device savings) on the nearest-neighbor chain.
    h.run("gtsp/water8_jw_nn", 3, [&] {
      Rng rng(17);
      sorted_nn = core::sort_advanced(blocks, rng, {}, &nn);
    });
    h.metric("sorted_surrogate_saving",
             synth::sequence_model_cost(blocks, nn) -
                 synth::sequence_model_cost(sorted_nn, nn));
    std::printf(
        "\n# E6d GTSP on water(8) JW blocks: CNOT model %d -> %d "
        "(XX pulses %d -> %d); NN routing surrogate %d -> %d\n",
        synth::sequence_model_cost(blocks), synth::sequence_model_cost(sorted),
        synth::sequence_model_cost(blocks, xx),
        synth::sequence_model_cost(sorted, xx),
        synth::sequence_model_cost(blocks, nn),
        synth::sequence_model_cost(sorted_nn, nn));
  }

  std::printf("\n# E6c linear-reversible synthesis CNOT counts (PMH [26] vs Gauss)\n");
  std::printf("%4s %8s %8s\n", "n", "pmh", "gauss");
  for (std::size_t n : {8, 16, 32, 64, 128}) {
    Rng rng(13);
    const auto m = gf2::Matrix::random_invertible(n, rng);
    const std::size_t c_pmh = gf2::synthesize_pmh(m).size();
    const std::size_t c_gauss = gf2::synthesize_gauss(m).size();
    std::printf("%4zu %8zu %8zu\n", n, c_pmh, c_gauss);
    h.section("pmh_vs_gauss/n" + std::to_string(n));
    h.metric("pmh", static_cast<double>(c_pmh));
    h.metric("gauss", static_cast<double>(c_gauss));
  }
  return h.write_json() ? 0 : 1;
}
