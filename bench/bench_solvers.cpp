// Experiment E6: solver micro-benchmarks.
//
//  - GTSP: GA vs greedy vs random on synthetic clustered instances
//    (solution quality and wall time).
//  - Simulated annealing schedule sweep on a rugged test function.
//  - Linear-reversible synthesis: PMH vs plain Gaussian elimination CNOT
//    counts (the PMH dedup should win as n grows; paper reference [26]).
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "common/rng.hpp"
#include "gf2/linear_synthesis.hpp"
#include "opt/gtsp.hpp"
#include "opt/simulated_annealing.hpp"

namespace {

using namespace femto;

opt::GtspInstance random_instance(std::size_t clusters, std::size_t k) {
  opt::GtspInstance inst;
  int next = 0;
  for (std::size_t c = 0; c < clusters; ++c) {
    std::vector<int> cluster;
    for (std::size_t v = 0; v < k; ++v) cluster.push_back(next++);
    inst.clusters.push_back(cluster);
  }
  inst.weight = [](int a, int b) {
    const unsigned h = static_cast<unsigned>(a * 2654435761u) ^
                       static_cast<unsigned>(b * 40503u);
    return static_cast<double>(h % 997) / 100.0;
  };
  return inst;
}

void BM_GtspGa(benchmark::State& state) {
  const auto inst = random_instance(static_cast<std::size_t>(state.range(0)), 4);
  double value = 0;
  for (auto _ : state) {
    Rng rng(7);
    value = opt::solve_gtsp_ga(inst, rng).value;
  }
  state.counters["value"] = value;
}
void BM_GtspGreedy(benchmark::State& state) {
  const auto inst = random_instance(static_cast<std::size_t>(state.range(0)), 4);
  double value = 0;
  for (auto _ : state) {
    Rng rng(7);
    value = opt::solve_gtsp_greedy(inst, rng).value;
  }
  state.counters["value"] = value;
}
void BM_GtspRandom(benchmark::State& state) {
  const auto inst = random_instance(static_cast<std::size_t>(state.range(0)), 4);
  double value = 0;
  for (auto _ : state) {
    Rng rng(7);
    value = opt::solve_gtsp_random(inst, rng, 50).value;
  }
  state.counters["value"] = value;
}

BENCHMARK(BM_GtspGa)->Arg(16)->Arg(48)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GtspGreedy)->Arg(16)->Arg(48)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GtspRandom)->Arg(16)->Arg(48)->Unit(benchmark::kMillisecond);

void BM_PmhSynthesis(benchmark::State& state) {
  Rng rng(11);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto m = gf2::Matrix::random_invertible(n, rng);
  std::size_t gates = 0;
  for (auto _ : state) gates = gf2::synthesize_pmh(m).size();
  state.counters["cnots"] = static_cast<double>(gates);
}
BENCHMARK(BM_PmhSynthesis)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  std::printf("\n# E6a GTSP solution quality (higher is better)\n");
  std::printf("%9s %8s %8s %8s\n", "clusters", "ga", "greedy", "random");
  for (std::size_t m : {12, 24, 48, 96}) {
    const auto inst = random_instance(m, 4);
    Rng r1(3), r2(3), r3(3);
    std::printf("%9zu %8.1f %8.1f %8.1f\n", m,
                opt::solve_gtsp_ga(inst, r1).value,
                opt::solve_gtsp_greedy(inst, r2).value,
                opt::solve_gtsp_random(inst, r3, 50).value);
  }

  std::printf("\n# E6b SA cooling-schedule sweep: f(x)=(x-17)^2/10+3 sin x\n");
  std::printf("%8s %8s %12s\n", "steps", "t0", "best-f");
  for (const auto [steps, t0] : {std::pair{200, 1.0}, {200, 5.0},
                                 {2000, 1.0}, {2000, 5.0}, {8000, 5.0}}) {
    Rng rng(5);
    const auto energy = [](const int& x) {
      return (x - 17) * (x - 17) / 10.0 + 3.0 * std::sin(double(x));
    };
    const auto propose = [](const int& x, Rng& r) { return x + r.range(-3, 3); };
    opt::SaOptions sa;
    sa.steps = steps;
    sa.t_initial = t0;
    sa.t_final = 0.01;
    const auto res = opt::simulated_annealing<int>(100, energy, propose, rng, sa);
    std::printf("%8d %8.1f %12.4f\n", steps, t0, res.best_energy);
  }

  std::printf("\n# E6c linear-reversible synthesis CNOT counts (PMH [26] vs Gauss)\n");
  std::printf("%4s %8s %8s\n", "n", "pmh", "gauss");
  for (std::size_t n : {8, 16, 32, 64, 128}) {
    Rng rng(13);
    const auto m = gf2::Matrix::random_invertible(n, rng);
    std::printf("%4zu %8zu %8zu\n", n, gf2::synthesize_pmh(m).size(),
                gf2::synthesize_gauss(m).size());
  }
  return 0;
}
