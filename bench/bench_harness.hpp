// Minimal benchmark harness: steady-clock timing, median-of-k repeats, and
// machine-readable JSON emission.
//
// Every bench binary builds one Harness, runs named sections with run(), can
// attach scalar metrics to the last section (counts, energies, speedups),
// and finishes with write_json(), which drops BENCH_<suite>.json into the
// current working directory so CI and later PRs can track the perf
// trajectory as data rather than log text.
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/assert.hpp"

namespace femto::bench {

/// Wall-clock seconds of one call.
template <typename Fn>
[[nodiscard]] double time_once(Fn&& fn) {
  using clock = std::chrono::steady_clock;
  const clock::time_point t0 = clock::now();
  fn();
  const clock::time_point t1 = clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

struct Section {
  std::string name;
  double median_s = 0.0;
  double min_s = 0.0;
  double max_s = 0.0;
  double mean_s = 0.0;
  double stddev_s = 0.0;  // population stddev over the repeats; 0 for k=1
  int repeats = 0;
  std::vector<std::pair<std::string, double>> metrics;
};

class Harness {
 public:
  explicit Harness(std::string suite) : suite_(std::move(suite)) {}

  /// Runs fn `repeats` times and records the median wall time. Returns the
  /// median in seconds. Also echoes a human-readable line to stdout.
  template <typename Fn>
  double run(const std::string& name, int repeats, Fn&& fn) {
    FEMTO_EXPECTS(repeats >= 1);
    std::vector<double> times;
    times.reserve(static_cast<std::size_t>(repeats));
    for (int r = 0; r < repeats; ++r) times.push_back(time_once(fn));
    std::sort(times.begin(), times.end());
    Section s;
    s.name = name;
    s.repeats = repeats;
    s.min_s = times.front();
    s.max_s = times.back();
    s.median_s = times[times.size() / 2];
    double sum = 0.0;
    for (const double t : times) sum += t;
    s.mean_s = sum / static_cast<double>(times.size());
    double var = 0.0;
    for (const double t : times) var += (t - s.mean_s) * (t - s.mean_s);
    s.stddev_s = std::sqrt(var / static_cast<double>(times.size()));
    std::printf("[bench] %-40s median %10.3f ms  (min %.3f, max %.3f, k=%d)\n",
                name.c_str(), s.median_s * 1e3, s.min_s * 1e3, s.max_s * 1e3,
                repeats);
    std::fflush(stdout);
    sections_.push_back(std::move(s));
    return sections_.back().median_s;
  }

  /// Starts an untimed section that only carries metrics (repeats stays 0,
  /// and write_json omits the timing fields).
  void section(const std::string& name) {
    Section s;
    s.name = name;
    sections_.push_back(std::move(s));
  }

  /// Attaches a scalar metric to the most recent section (or a standalone
  /// "metrics" section when none has run yet).
  void metric(const std::string& key, double value) {
    if (sections_.empty()) section("metrics");
    sections_.back().metrics.emplace_back(key, value);
  }

  [[nodiscard]] const std::vector<Section>& sections() const {
    return sections_;
  }

  /// Writes BENCH_<suite>.json (or an explicit path). Returns true on
  /// success.
  bool write_json(const std::string& path = "") const {
    const std::string out_path =
        path.empty() ? "BENCH_" + suite_ + ".json" : path;
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "[bench] cannot write %s\n", out_path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"suite\": \"%s\",\n  \"sections\": [\n",
                 suite_.c_str());
    for (std::size_t i = 0; i < sections_.size(); ++i) {
      const Section& s = sections_[i];
      if (s.repeats > 0)
        std::fprintf(f,
                     "    {\"name\": \"%s\", \"median_s\": %.9g, \"min_s\": "
                     "%.9g, \"max_s\": %.9g, \"mean_s\": %.9g, \"stddev_s\": "
                     "%.9g, \"repeats\": %d",
                     s.name.c_str(), s.median_s, s.min_s, s.max_s, s.mean_s,
                     s.stddev_s, s.repeats);
      else
        std::fprintf(f, "    {\"name\": \"%s\", \"repeats\": 0", s.name.c_str());
      if (!s.metrics.empty()) {
        std::fprintf(f, ", \"metrics\": {");
        for (std::size_t k = 0; k < s.metrics.size(); ++k)
          std::fprintf(f, "%s\"%s\": %.9g", k == 0 ? "" : ", ",
                       s.metrics[k].first.c_str(), s.metrics[k].second);
        std::fprintf(f, "}");
      }
      std::fprintf(f, "}%s\n", i + 1 == sections_.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("[bench] wrote %s\n", out_path.c_str());
    return true;
  }

 private:
  std::string suite_;
  std::vector<Section> sections_;
};

}  // namespace femto::bench
