// Experiment E7: the parallel multi-restart compilation pipeline.
//
//  - Worker scaling: one 8-restart simulated-annealing sorting sweep (water
//    fermionic segment, advanced transform + GTSP sorting) timed at 1, 2, 4,
//    and 8 workers. scaling_Nw_vs_1w = t(1 worker) / t(N workers); on a
//    multi-core host the 8-worker figure is the pipeline's headline
//    throughput gain (the restarts are embarrassingly parallel), on a
//    single-core host it honestly records ~1.0.
//  - Restart scaling: best model-CNOT count vs restart count at a fixed
//    worker count -- multi-restart can only improve the plan (restart 0 IS
//    the single-shot compile).
//  - Batch throughput: a transform x sorting scenario sweep batch-compiled
//    in one call vs sequential single compiles.
//  - Synthesis-cache effect: hits/misses across an 8-restart run (info_
//    metrics: interleaving-dependent counters, excluded from the CI gate).
//
// Every quality metric (best_cnots) is deterministic for the committed
// master seed and thread-count invariant, which is what the CI bench gate
// (tools/check_bench.py) relies on.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_fixtures.hpp"
#include "bench_harness.hpp"

#include "core/pipeline.hpp"
#include "obs/trace.hpp"
#include "service/json.hpp"
#include "service/protocol.hpp"

namespace {

using namespace femto;

/// The SA sorting sweep workload: advanced transform (SA Gamma) + GTSP
/// sorting, trimmed to bench scale.
core::CompileOptions sweep_options() {
  core::CompileOptions o;
  o.sa_options = {2.0, 0.05, 400, 0};
  o.gtsp_options.population = 16;
  o.gtsp_options.generations = 60;
  o.gtsp_options.stagnation_limit = 25;
  o.coloring_orders = 16;
  return o;
}

}  // namespace

int main() {
  bench::Harness h("pipeline");
  const bench::TermFixture& f = bench::water_terms(8);
  constexpr std::size_t kRestarts = 8;

  // E7a: worker scaling of one 8-restart SA sorting sweep.
  double t_1w = 0;
  int best_cnots_1w = 0;
  for (std::size_t workers : {1u, 2u, 4u, 8u}) {
    core::MultiStartResult result;
    const double t = h.run(
        "pipeline/sa_sweep_r8_w" + std::to_string(workers), 3, [&] {
          core::CompilePipeline pipeline(
              {.workers = workers, .restarts = kRestarts});
          result = pipeline.compile_best(f.n, f.terms, sweep_options());
        });
    h.metric("best_cnots", result.best.model_cnots);
    h.metric("best_restart", static_cast<double>(result.best_restart));
    if (workers == 1) {
      t_1w = t;
      best_cnots_1w = result.best.model_cnots;
    } else {
      // Determinism across worker counts is a hard pipeline guarantee.
      if (result.best.model_cnots != best_cnots_1w) {
        std::fprintf(stderr, "FATAL: thread-count dependent result\n");
        return 1;
      }
      h.metric("scaling_vs_1w", t_1w / t);
    }
  }

  // E7b: restart-count scaling (fixed workers): quality vs restarts.
  std::printf("\n# E7b restart scaling (water Ne=8, advanced pipeline)\n");
  std::printf("%9s %10s %12s\n", "restarts", "cnots", "best-idx");
  for (std::size_t restarts : {1u, 2u, 4u, 8u}) {
    core::MultiStartResult result;
    h.run("pipeline/restarts" + std::to_string(restarts), 3, [&] {
      core::CompilePipeline pipeline({.workers = 0, .restarts = restarts});
      result = pipeline.compile_best(f.n, f.terms, sweep_options());
    });
    h.metric("best_cnots", result.best.model_cnots);
    std::printf("%9zu %10d %12zu\n", restarts, result.best.model_cnots,
                result.best_restart);
  }

  // E7c: batch throughput over a transform x sorting sweep.
  std::vector<core::CompileScenario> scenarios;
  for (const auto& [tname, transform] :
       {std::pair{"jw", core::TransformKind::kJordanWigner},
        {"bk", core::TransformKind::kBravyiKitaev},
        {"adv", core::TransformKind::kAdvanced}}) {
    for (const auto& [sname, sorting] :
         {std::pair{"base", core::SortingMode::kBaseline},
          {"gtsp", core::SortingMode::kAdvanced}}) {
      core::CompileScenario s;
      s.name = std::string(tname) + "-" + sname;
      s.num_qubits = f.n;
      s.terms = f.terms;
      s.options = sweep_options();
      s.options.transform = transform;
      s.options.sorting = sorting;
      scenarios.push_back(std::move(s));
    }
  }
  std::vector<core::CompileResult> batch_results;
  const double t_seq = h.run("pipeline/batch6_seq", 3, [&] {
    batch_results.clear();
    for (const auto& s : scenarios)
      batch_results.push_back(core::compile_vqe(s.num_qubits, s.terms, s.options));
  });
  const double t_pool = h.run("pipeline/batch6_pool", 3, [&] {
    core::CompilePipeline pipeline({.workers = 0, .restarts = 1});
    batch_results = pipeline.compile_batch(scenarios);
  });
  h.metric("scaling_vs_seq", t_seq / t_pool);
  std::printf("\n# E7c batch sweep (water Ne=8): transform x sorting cnots\n");
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    std::printf("  %-10s %6d\n", scenarios[i].name.c_str(),
                batch_results[i].model_cnots);
    h.section("batch/" + scenarios[i].name);
    h.metric("cnots", batch_results[i].model_cnots);
  }

  // E7d: synthesis-cache effect across an 8-restart run.
  {
    core::CompilePipeline pipeline({.workers = 0, .restarts = kRestarts});
    const auto result = pipeline.compile_best(f.n, f.terms, sweep_options());
    const auto stats = pipeline.cache().stats();
    h.section("cache/restart8");
    h.metric("info_hits", static_cast<double>(stats.hits));
    h.metric("info_misses", static_cast<double>(stats.misses));
    h.metric("best_cnots", result.best.model_cnots);
    std::printf("\n# E7d synthesis cache over %zu restarts: %zu hits, %zu "
                "misses\n",
                kRestarts, stats.hits, stats.misses);
  }

  // E7e: tracing overhead + contracts (the obs/ subsystem's CI gate).
  // The same seeded 2-restart compile runs untraced and traced; tracing
  // must (a) cost <= ~10% wall time (trace_overhead_ratio floor 0.9,
  // min-of-k so scheduler noise on loaded CI boxes does not flake the
  // gate), (b) export parseable Chrome trace-event JSON with events in it
  // (trace_valid_json), and (c) leave the canonical compile response
  // byte-identical (trace_bit_identical) -- tracing observes, never steers.
  {
    core::CompileRequest request;
    core::CompileScenario s;
    s.name = "trace-bench";
    s.num_qubits = f.n;
    s.terms = f.terms;
    s.options = sweep_options();
    s.options.emit_circuit = true;
    request.scenarios = {std::move(s)};
    request.restarts = 2;
    request.seed = 20230306;
    const auto canonical_compile = [&] {
      core::CompilePipeline pipeline({.workers = 0, .restarts = 1});
      const core::CompileResponse resp = pipeline.compile(request);
      return service::protocol::encode_response(
                 service::protocol::summarize(resp, /*include_circuits=*/true))
          .encode();
    };

    std::string off_canonical;
    h.run("pipeline/trace_off", 5, [&] { off_canonical = canonical_compile(); });
    const double t_off_min = h.sections().back().min_s;

    obs::Tracer tracer;
    obs::Tracer::set_active(&tracer);
    std::string on_canonical;
    h.run("pipeline/trace_on", 5, [&] { on_canonical = canonical_compile(); });
    obs::Tracer::set_active(nullptr);
    const double t_on_min = h.sections().back().min_s;

    const std::string trace_json = tracer.to_json();
    std::string parse_err;
    const auto parsed = service::json::parse(trace_json, &parse_err);
    const service::json::Value* events =
        parsed.has_value() ? parsed->find("traceEvents") : nullptr;
    const bool valid_json = events != nullptr && events->is_array() &&
                            !events->items().empty();
    if (!valid_json)
      std::fprintf(stderr, "trace JSON invalid: %s\n", parse_err.c_str());

    h.section("pipeline/trace_overhead");
    h.metric("trace_overhead_ratio", t_off_min / t_on_min);
    h.metric("trace_valid_json", valid_json ? 1.0 : 0.0);
    h.metric("trace_bit_identical",
             off_canonical == on_canonical && !off_canonical.empty() ? 1.0
                                                                     : 0.0);
    h.metric("info_trace_events", static_cast<double>(tracer.event_count()));
    std::printf("\n# E7e tracing: overhead ratio %.3f (untraced %.3f ms / "
                "traced %.3f ms), %zu events, json %s, bit-identical %s\n",
                t_off_min / t_on_min, t_off_min * 1e3, t_on_min * 1e3,
                tracer.event_count(), valid_json ? "valid" : "INVALID",
                off_canonical == on_canonical ? "yes" : "NO");
  }

  return h.write_json() ? 0 : 1;
}
