// Experiment E7: substrate performance.
//
//  - Statevector throughput: gate application, Pauli-exponential
//    application, Hamiltonian expectation, as functions of qubit count.
//  - Chemistry pipeline wall time per molecule (integrals + SCF + MO
//    transform + FCI).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <chrono>

#include "chem/fci.hpp"
#include "chem/integrals.hpp"
#include "chem/mo_integrals.hpp"
#include "chem/molecules.hpp"
#include "chem/scf.hpp"
#include "common/rng.hpp"
#include "sim/statevector.hpp"
#include "transform/linear_encoding.hpp"

namespace {

using namespace femto;

void BM_GateApply(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  sim::StateVector sv(n);
  sv.apply_gate(circuit::Gate::h(0));
  std::size_t ops = 0;
  for (auto _ : state) {
    for (std::size_t q = 0; q + 1 < n; ++q) {
      sv.apply_cnot(q, q + 1);
      ++ops;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
}
BENCHMARK(BM_GateApply)->Arg(10)->Arg(14)->Arg(18)->Unit(benchmark::kMillisecond);

void BM_PauliExpApply(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  sim::StateVector sv(n);
  pauli::PauliString p(n);
  for (std::size_t q = 0; q < n; q += 2) p.set_letter(q, pauli::Letter::X);
  for (std::size_t q = 1; q < n; q += 2) p.set_letter(q, pauli::Letter::Z);
  for (auto _ : state) sv.apply_pauli_exp(p, 0.123);
}
BENCHMARK(BM_PauliExpApply)->Arg(10)->Arg(14)->Arg(18)->Unit(benchmark::kMillisecond);

void BM_WaterHamiltonianExpectation(benchmark::State& state) {
  static pauli::PauliSum hq;
  static std::size_t nq = 0;
  if (nq == 0) {
    const auto mol = chem::make_h2o();
    auto basis = chem::build_sto3g(mol);
    chem::normalize_basis(basis);
    const auto ints = chem::compute_integrals(mol, basis);
    const auto scf = chem::run_rhf(mol, ints);
    const auto mo = chem::transform_to_mo(mol, ints, scf);
    const auto so = chem::to_spin_orbitals(mo);
    nq = so.n;
    hq = transform::LinearEncoding::jordan_wigner(so.n).map(
        chem::build_hamiltonian(so));
  }
  sim::StateVector sv(nq);
  Rng rng(3);
  for (auto& a : sv.amplitudes()) a = sim::Complex(rng.normal(), rng.normal());
  sv.normalize();
  double e = 0;
  for (auto _ : state) e = sv.expectation(hq).real();
  state.counters["terms"] = static_cast<double>(hq.size());
  state.counters["energy"] = e;
}
BENCHMARK(BM_WaterHamiltonianExpectation)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  std::printf("\n# E7 chemistry pipeline wall times\n");
  std::printf("%-8s %6s %6s | %10s %8s %8s %10s | %14s %14s\n", "molecule",
              "AOs", "dets", "ints(ms)", "scf(ms)", "mo(ms)", "fci(ms)",
              "E_scf", "E_fci");
  const auto run = [](const chem::Molecule& mol) {
    using clock = std::chrono::steady_clock;
    const auto ms = [](clock::time_point a, clock::time_point b) {
      return std::chrono::duration<double, std::milli>(b - a).count();
    };
    auto basis = chem::build_sto3g(mol);
    chem::normalize_basis(basis);
    const auto t0 = clock::now();
    const auto ints = chem::compute_integrals(mol, basis);
    const auto t1 = clock::now();
    const auto scf = chem::run_rhf(mol, ints);
    const auto t2 = clock::now();
    const auto mo = chem::transform_to_mo(mol, ints, scf);
    const auto so = chem::to_spin_orbitals(mo);
    const auto t3 = clock::now();
    const auto fci = chem::run_fci(so);
    const auto t4 = clock::now();
    std::printf("%-8s %6zu %6zu | %10.1f %8.1f %8.1f %10.1f | %14.6f %14.6f\n",
                mol.name.c_str(), ints.n, fci.dimension, ms(t0, t1), ms(t1, t2),
                ms(t2, t3), ms(t3, t4), scf.total_energy, fci.energy);
    std::fflush(stdout);
  };
  run(chem::make_h2(1.4));
  run(chem::make_lih());
  run(chem::make_hf());
  run(chem::make_beh2());
  run(chem::make_h2o());
  run(chem::make_nh3());
  return 0;
}
