// Experiment E7: substrate performance.
//
//  - Statevector throughput: gate application, Pauli-exponential
//    application, Hamiltonian expectation, as functions of qubit count.
//  - Chemistry pipeline wall time per molecule (integrals + SCF + MO
//    transform + FCI).
#include <cstdio>
#include <string>

#include "bench_harness.hpp"
#include "chem/fci.hpp"
#include "chem/integrals.hpp"
#include "chem/mo_integrals.hpp"
#include "chem/molecules.hpp"
#include "chem/scf.hpp"
#include "common/rng.hpp"
#include "sim/statevector.hpp"
#include "transform/linear_encoding.hpp"

namespace {

using namespace femto;

void bench_gate_apply(bench::Harness& h, std::size_t n) {
  sim::StateVector sv(n);
  sv.apply_gate(circuit::Gate::h(0));
  h.run("gate_apply/cnot_chain_" + std::to_string(n) + "q", 5, [&] {
    for (std::size_t q = 0; q + 1 < n; ++q) sv.apply_cnot(q, q + 1);
  });
  h.metric("gates", static_cast<double>(n - 1));
}

void bench_pauli_exp(bench::Harness& h, std::size_t n) {
  sim::StateVector sv(n);
  pauli::PauliString p(n);
  for (std::size_t q = 0; q < n; q += 2) p.set_letter(q, pauli::Letter::X);
  for (std::size_t q = 1; q < n; q += 2) p.set_letter(q, pauli::Letter::Z);
  h.run("pauli_exp/" + std::to_string(n) + "q", 5,
        [&] { sv.apply_pauli_exp(p, 0.123); });
}

void bench_water_expectation(bench::Harness& h) {
  const auto mol = chem::make_h2o();
  auto basis = chem::build_sto3g(mol);
  chem::normalize_basis(basis);
  const auto ints = chem::compute_integrals(mol, basis);
  const auto scf = chem::run_rhf(mol, ints);
  const auto mo = chem::transform_to_mo(mol, ints, scf);
  const auto so = chem::to_spin_orbitals(mo);
  const pauli::PauliSum hq =
      transform::LinearEncoding::jordan_wigner(so.n).map(
          chem::build_hamiltonian(so));
  sim::StateVector sv(so.n);
  Rng rng(3);
  for (auto& a : sv.amplitudes()) a = sim::Complex(rng.normal(), rng.normal());
  sv.normalize();
  double e = 0;
  h.run("expectation/water_jw", 5, [&] { e = sv.expectation(hq).real(); });
  h.metric("terms", static_cast<double>(hq.size()));
  h.metric("energy", e);
}

void chemistry_pipeline(bench::Harness& h, const chem::Molecule& mol) {
  auto basis = chem::build_sto3g(mol);
  chem::normalize_basis(basis);
  chem::IntegralTables ints;
  const double t_ints =
      bench::time_once([&] { ints = chem::compute_integrals(mol, basis); });
  chem::ScfResult scf;
  const double t_scf = bench::time_once([&] { scf = chem::run_rhf(mol, ints); });
  chem::MoIntegrals mo;
  chem::SpinOrbitalIntegrals so;
  const double t_mo = bench::time_once([&] {
    mo = chem::transform_to_mo(mol, ints, scf);
    so = chem::to_spin_orbitals(mo);
  });
  chem::FciResult fci;
  const double t_fci = bench::time_once([&] { fci = chem::run_fci(so); });
  std::printf("%-8s %6zu %6zu | %10.1f %8.1f %8.1f %10.1f | %14.6f %14.6f\n",
              mol.name.c_str(), ints.n, fci.dimension, t_ints * 1e3,
              t_scf * 1e3, t_mo * 1e3, t_fci * 1e3, scf.total_energy,
              fci.energy);
  std::fflush(stdout);
  h.section("pipeline/" + mol.name);
  h.metric("ints_ms", t_ints * 1e3);
  h.metric("scf_ms", t_scf * 1e3);
  h.metric("mo_ms", t_mo * 1e3);
  h.metric("fci_ms", t_fci * 1e3);
  h.metric("e_scf", scf.total_energy);
  h.metric("e_fci", fci.energy);
}

}  // namespace

int main() {
  bench::Harness h("substrate");
  for (std::size_t n : {10, 14, 18}) bench_gate_apply(h, n);
  for (std::size_t n : {10, 14, 18}) bench_pauli_exp(h, n);
  bench_water_expectation(h);

  std::printf("\n# E7 chemistry pipeline wall times\n");
  std::printf("%-8s %6s %6s | %10s %8s %8s %10s | %14s %14s\n", "molecule",
              "AOs", "dets", "ints(ms)", "scf(ms)", "mo(ms)", "fci(ms)",
              "E_scf", "E_fci");
  chemistry_pipeline(h, chem::make_h2(1.4));
  chemistry_pipeline(h, chem::make_lih());
  chemistry_pipeline(h, chem::make_hf());
  chemistry_pipeline(h, chem::make_beh2());
  chemistry_pipeline(h, chem::make_h2o());
  chemistry_pipeline(h, chem::make_nh3());
  return h.write_json() ? 0 : 1;
}
