// Verification scaling bench: certifies circuit equivalence at qubit counts
// where dense statevector comparison (capped at 28 qubits, practical well
// below that) cannot go, and measures verified-circuits-per-second for the
// CI floor in tools/check_bench.py.
//
// Sections:
//   clifford_32q         tier-1 tableau certificate, 32 qubits / 4k gates
//   symbolic_32q / 40q   tier-2 Pauli propagation vs the block spec at
//                        32 and 40 qubits (variational angles symbolic)
//   corrupted_32q        one flipped CNOT must be rejected, localized
//   water_verify         compile water / STO-3G and certify the emitted
//                        circuit against its recorded compilation spec
//   water_cross_encoding JW vs Bravyi-Kitaev compilations of one water plan
//                        certified via the frame identity C_bk U = U C_jw
//
// The boolean *_value metrics are 1.0 on success and 0.0 on any failure, so
// the bench gate (higher-is-better via the "value" hint) fails loudly if
// verification ever stops certifying; verified_per_s carries an absolute
// floor, machine-independent by a wide margin.
#include <cstdio>
#include <vector>

#include "bench_fixtures.hpp"
#include "bench_harness.hpp"
#include "circuit/peephole.hpp"
#include "common/rng.hpp"
#include "core/compiler.hpp"
#include "gf2/linear_synthesis.hpp"
#include "synth/pauli_exponential.hpp"
#include "verify/equivalence.hpp"
#include "verify/test_support.hpp"

namespace femto::bench {
namespace {

using circuit::Gate;
using circuit::GateKind;
using circuit::QuantumCircuit;

QuantumCircuit random_clifford(std::size_t n, int gates, Rng& rng) {
  QuantumCircuit c(n);
  for (int g = 0; g < gates; ++g) {
    const std::size_t a = rng.index(n);
    std::size_t b = rng.index(n);
    if (a == b) b = (b + 1) % n;
    switch (rng.index(5)) {
      case 0: c.append(Gate::h(a)); break;
      case 1: c.append(Gate::s(a)); break;
      case 2: c.append(Gate::sdg(a)); break;
      case 3: c.append(Gate::cz(a, b)); break;
      default: c.append(Gate::cnot(a, b));
    }
  }
  return c;
}

/// Compile knobs matching the committed pipeline baselines: every stochastic
/// stage runs, trimmed for bench wall-clock.
core::CompileOptions compile_options() {
  core::CompileOptions o;
  o.coloring_orders = 16;
  o.sa_options = {2.0, 0.05, 300, 0};
  o.pso_options.particles = 8;
  o.pso_options.iterations = 15;
  o.gtsp_options.population = 16;
  o.gtsp_options.generations = 40;
  o.gtsp_options.stagnation_limit = 20;
  return o;
}

}  // namespace
}  // namespace femto::bench

int main() {
  using namespace femto;
  using namespace femto::bench;

  Harness harness("verify");
  verify::EquivalenceOptions symbolic_only;
  symbolic_only.allow_dense_fallback = false;
  const verify::EquivalenceChecker checker(symbolic_only);

  // --- tier 1: Clifford tableau at 32 qubits ---------------------------
  {
    Rng rng(101);
    const std::size_t n = 32;
    const QuantumCircuit c = random_clifford(n, 4000, rng);
    const QuantumCircuit opt = circuit::peephole_optimize(c);
    bool ok = true;
    const double t = harness.run("clifford_32q", 5, [&] {
      const auto report = checker.check(c, opt);
      ok = ok && report.equivalent() &&
           report.method == verify::EquivalenceMethod::kCliffordTableau;
    });
    harness.metric("qubits", static_cast<double>(n));
    harness.metric("info_gates", static_cast<double>(c.size()));
    harness.metric("equivalent_value", ok ? 1.0 : 0.0);
    harness.metric("verified_per_s", ok && t > 0 ? 1.0 / t : 0.0);
  }

  // --- tier 2: symbolic propagation at 32 / 40 qubits ------------------
  for (const std::size_t n : {std::size_t{32}, std::size_t{40}}) {
    Rng rng(200 + n);
    const auto blocks = verify::testing::random_rotation_blocks(n, 60, rng,
                                            /*param_probability=*/0.75,
                                            /*extra_weight=*/5);
    const QuantumCircuit circuit = synth::synthesize_sequence(n, blocks);
    const auto spec = verify::make_spec(blocks);
    bool ok = true;
    const std::string name = "symbolic_" + std::to_string(n) + "q";
    const double t = harness.run(name, 5, [&] {
      const auto report = checker.check_spec(circuit, spec);
      ok = ok && report.equivalent() &&
           report.method == verify::EquivalenceMethod::kPauliPropagation;
    });
    harness.metric("qubits", static_cast<double>(n));
    harness.metric("rotations", static_cast<double>(blocks.size()));
    harness.metric("info_gates", static_cast<double>(circuit.size()));
    harness.metric("equivalent_value", ok ? 1.0 : 0.0);
    harness.metric("verified_per_s", ok && t > 0 ? 1.0 / t : 0.0);
  }

  // --- rejection: one flipped CNOT at 32 qubits ------------------------
  {
    Rng rng(303);
    const std::size_t n = 32;
    const auto blocks = verify::testing::random_rotation_blocks(n, 40, rng,
                                            /*param_probability=*/0.75,
                                            /*extra_weight=*/5);
    QuantumCircuit circuit = synth::synthesize_sequence(n, blocks);
    verify::testing::flip_first_cnot(circuit, circuit.size() / 2);
    const auto spec = verify::make_spec(blocks);
    bool rejected = true;
    bool localized = true;
    harness.run("corrupted_32q", 5, [&] {
      const auto report = checker.check_spec(circuit, spec);
      rejected = rejected &&
                 report.status == verify::EquivalenceStatus::kNotEquivalent;
      localized = localized && !report.detail.empty();
    });
    harness.metric("rejected_value", rejected ? 1.0 : 0.0);
    harness.metric("localized_value", localized ? 1.0 : 0.0);
  }

  // --- the paper's workload: water / STO-3G ----------------------------
  {
    const TermFixture& f = water_terms(8);
    const core::CompileResult result =
        core::compile_vqe(f.n, f.terms, compile_options());
    bool ok = true;
    const double t = harness.run("water_verify", 5, [&] {
      ok = ok && checker.check_spec(result.circuit, result.spec).equivalent();
    });
    harness.metric("qubits", static_cast<double>(f.n));
    harness.metric("info_model_cnots", static_cast<double>(result.model_cnots));
    harness.metric("info_spec_ops", static_cast<double>(result.spec.size()));
    harness.metric("equivalent_value", ok ? 1.0 : 0.0);
    harness.metric("verified_per_s", ok && t > 0 ? 1.0 / t : 0.0);
  }

  // --- cross-encoding: JW vs BK compilations of one water plan ---------
  {
    const TermFixture& f = water_terms(8);
    core::CompileOptions options = compile_options();
    options.compression = core::CompressionMode::kNone;
    options.sorting = core::SortingMode::kNone;
    options.transform = core::TransformKind::kJordanWigner;
    const core::CompileResult jw = core::compile_vqe(f.n, f.terms, options);
    options.transform = core::TransformKind::kBravyiKitaev;
    const core::CompileResult bk = core::compile_vqe(f.n, f.terms, options);
    const QuantumCircuit network =
        verify::testing::cnot_network_circuit(f.n, bk.gamma);
    QuantumCircuit lhs(f.n);
    lhs.append(network);
    lhs.append(bk.circuit);
    QuantumCircuit rhs(f.n);
    rhs.append(jw.circuit);
    rhs.append(network);
    bool ok = true;
    harness.run("water_cross_encoding", 3, [&] {
      const auto report = checker.check(lhs, rhs);
      ok = ok && report.equivalent() &&
           report.method == verify::EquivalenceMethod::kPauliPropagation;
    });
    harness.metric("qubits", static_cast<double>(f.n));
    harness.metric("equivalent_value", ok ? 1.0 : 0.0);
  }

  harness.write_json();
  return 0;
}
