// The full Fig. 1 VQE cycle for the water molecule.
//
// Grows the HMP2-selected UCCSD ansatz one excitation term at a time,
// optimizing all parameters at each size (exact statevector energies,
// analytic adjoint gradients, L-BFGS), until the estimate is within
// chemical accuracy (1.6 mHa) of FCI -- reproducing the workflow behind
// Fig. 5 of the paper.
#include <cstdio>

#include "chem/fci.hpp"
#include "chem/integrals.hpp"
#include "chem/mo_integrals.hpp"
#include "chem/molecules.hpp"
#include "chem/scf.hpp"
#include "core/compiler.hpp"
#include "transform/linear_encoding.hpp"
#include "vqe/driver.hpp"
#include "vqe/hmp2.hpp"

int main() {
  using namespace femto;
  const chem::Molecule mol = chem::make_h2o();
  auto basis = chem::build_sto3g(mol);
  chem::normalize_basis(basis);
  const auto ints = chem::compute_integrals(mol, basis);
  const auto scf = chem::run_rhf(mol, ints);
  const auto mo = chem::transform_to_mo(mol, ints, scf);
  const auto so = chem::to_spin_orbitals(mo);
  const auto fci = chem::run_fci(so);
  std::printf("H2O / STO-3G: E_RHF = %.6f Ha, E_FCI = %.6f Ha (%zu dets)\n",
              scf.total_energy, fci.energy, fci.dimension);
  std::printf("MP2 correlation: %.6f Ha\n", chem::mp2_energy(mo));

  const auto enc = transform::LinearEncoding::jordan_wigner(so.n);
  const pauli::PauliSum hq = enc.map(chem::build_hamiltonian(so));
  const std::size_t hf_index = (std::size_t{1} << so.nelec) - 1;

  // Adaptive HMP2 selection (Box 2 of Fig. 1), then the growth loop.
  vqe::OptimizerOptions sel;
  sel.max_iterations = 120;
  sel.gradient_tolerance = 1e-5;
  const auto terms = vqe::hmp2_adaptive_terms(so, 20, 64, sel);

  std::printf("\n%4s  %-28s %14s %10s\n", "M", "added term", "E (Ha)",
              "dE (mHa)");
  vqe::VqeProblem prob;
  prob.num_qubits = so.n;
  prob.hamiltonian = hq;
  prob.reference_index = hf_index;
  std::vector<double> theta;
  const double chemical_accuracy = 1.6e-3;
  for (std::size_t m = 0; m < terms.size(); ++m) {
    prob.generators.push_back(enc.map(terms[m].generator()));
    theta.push_back(0.0);
    const auto res = vqe::minimize_energy(prob, theta, sel);
    theta = res.theta;
    const double gap = res.energy - fci.energy;
    std::printf("%4zu  %-28s %14.6f %10.3f%s\n", m + 1,
                terms[m].to_string().c_str(), res.energy, 1000.0 * gap,
                gap < chemical_accuracy ? "  <- chemical accuracy" : "");
    if (gap < chemical_accuracy) {
      std::printf("\nConverged with %zu ansatz terms "
                  "(paper: 17 for both pipelines).\n", m + 1);
      break;
    }
  }
  return 0;
}
