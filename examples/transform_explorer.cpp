// Transform explorer: how the choice of fermion-to-qubit transformation
// shapes the Pauli strings of a molecular ansatz.
//
// Compares Jordan-Wigner, parity, Bravyi-Kitaev and a random GL(N,2)
// conjugation on BeH2's UCCSD generators: string weight distributions,
// naive CNOT cost, and the effect of the paper's block-diagonal Gamma
// (Appendix C example included).
#include <cstdio>
#include <vector>

#include "chem/integrals.hpp"
#include "chem/mo_integrals.hpp"
#include "chem/molecules.hpp"
#include "chem/scf.hpp"
#include "synth/cost_model.hpp"
#include "transform/linear_encoding.hpp"
#include "vqe/uccsd.hpp"

int main() {
  using namespace femto;
  const chem::Molecule mol = chem::make_beh2();
  auto basis = chem::build_sto3g(mol);
  chem::normalize_basis(basis);
  const auto ints = chem::compute_integrals(mol, basis);
  const auto scf = chem::run_rhf(mol, ints);
  const auto mo = chem::transform_to_mo(mol, ints, scf);
  const auto so = chem::to_spin_orbitals(mo);
  auto terms = vqe::uccsd_hmp2_terms(so);
  terms.resize(9);

  struct Entry {
    const char* name;
    transform::LinearEncoding enc;
  };
  Rng rng(99);
  std::vector<Entry> encodings;
  encodings.push_back({"jordan-wigner",
                       transform::LinearEncoding::jordan_wigner(so.n)});
  encodings.push_back({"parity", transform::LinearEncoding::parity(so.n)});
  encodings.push_back({"bravyi-kitaev",
                       transform::LinearEncoding::bravyi_kitaev(so.n)});
  encodings.push_back({"random-GL",
                       transform::LinearEncoding(
                           gf2::Matrix::random_invertible(so.n, rng))});

  std::printf("BeH2 / STO-3G, %zu spin orbitals, 9 HMP2 terms\n\n", so.n);
  std::printf("%-15s %8s %8s %8s %10s\n", "encoding", "strings", "avg-w",
              "max-w", "naive-CNOT");
  for (const auto& e : encodings) {
    std::size_t count = 0, wsum = 0, wmax = 0;
    int naive = 0;
    for (const auto& t : terms) {
      const pauli::PauliSum g = e.enc.map(t.generator());
      for (const auto& term : g.terms()) {
        ++count;
        const std::size_t w = term.string.weight();
        wsum += w;
        wmax = std::max(wmax, w);
        naive += synth::string_cost(term.string);
      }
    }
    std::printf("%-15s %8zu %8.2f %8zu %10d\n", e.name, count,
                double(wsum) / double(count), wmax, naive);
  }

  // The paper's Appendix C worked example: a block-diagonal Gamma with
  // CNOT blocks on (0,1) and (4,5) shortens XXIIXY.
  std::printf("\nAppendix C example: Gamma = CNOT blocks on (0,1), (4,5)\n");
  gf2::Matrix gamma = gf2::Matrix::identity(6);
  gamma.set(1, 0, true);
  gamma.set(5, 4, true);
  const transform::LinearEncoding gt(gamma);
  const pauli::PauliString p = pauli::PauliString::from_string("XXIIXY");
  const pauli::PauliString img = gt.map_string(p);
  std::printf("  %s  ->  %s   (weight %zu -> %zu)\n",
              p.to_string().c_str(), img.to_string().c_str(), p.weight(),
              img.weight());
  return 0;
}
