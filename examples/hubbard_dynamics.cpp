// Real-time dynamics of a Fermi-Hubbard chain (the Sec. V extension).
//
// Compiles Trotterized time evolution with the advanced sorting, runs it on
// the statevector simulator, and tracks a local observable (double
// occupancy) against a near-exact reference -- showing both the CNOT saving
// and the physical accuracy of the compiled circuits.
#include <cstdio>
#include <vector>

#include "core/rotation_blocks.hpp"
#include "core/sorting.hpp"
#include "fermion/operators.hpp"
#include "sim/statevector.hpp"
#include "synth/pauli_exponential.hpp"
#include "transform/linear_encoding.hpp"

int main() {
  using namespace femto;
  const std::size_t sites = 3;
  const std::size_t n = 2 * sites;
  const double t_hop = 1.0, u_int = 4.0, dt = 0.05;
  const int steps = 40;

  // H = -t sum_<ij>,s (c+_is c_js + h.c.) + U sum_i n_iu n_id.
  fermion::FermionOperator h;
  for (std::size_t i = 0; i + 1 < sites; ++i)
    for (int s = 0; s < 2; ++s) {
      const std::size_t a = 2 * i + static_cast<std::size_t>(s);
      const std::size_t b = 2 * (i + 1) + static_cast<std::size_t>(s);
      h.add_term({-t_hop, 0.0}, {{a, true}, {b, false}});
      h.add_term({-t_hop, 0.0}, {{b, true}, {a, false}});
    }
  for (std::size_t i = 0; i < sites; ++i)
    h.add_term({u_int, 0.0}, {{2 * i, true}, {2 * i, false},
                              {2 * i + 1, true}, {2 * i + 1, false}});

  const auto enc = transform::LinearEncoding::jordan_wigner(n);
  const pauli::PauliSum hq = enc.map(h);

  // One Trotter step as rotation blocks, sorted by the GTSP engine.
  std::vector<synth::RotationBlock> blocks;
  for (const auto& term : hq.terms()) {
    if (term.string.is_identity_letters()) continue;
    synth::RotationBlock b;
    b.string = term.string;
    b.angle_coeff = 2.0 * term.coefficient.real() * dt;
    b.target = b.string.support().lowest_set();
    blocks.push_back(b);
  }
  Rng rng(5);
  const auto ordered = core::sort_advanced(blocks, rng);
  const auto step_naive =
      synth::synthesize_sequence(n, blocks, synth::MergePolicy::kNone);
  const auto step_sorted = synth::synthesize_sequence(n, ordered);
  std::printf("Fermi-Hubbard %zu sites, t=%.1f U=%.1f dt=%.2f\n", sites,
              t_hop, u_int, dt);
  std::printf("CNOTs per Trotter step: naive %d, advanced sorting %d\n\n",
              step_naive.cnot_count(), step_sorted.cnot_count());

  // Observable: double occupancy on site 0.
  pauli::PauliSum docc = enc.map(fermion::FermionOperator::term(
      {1.0, 0.0}, {{0, true}, {0, false}, {1, true}, {1, false}}));

  // Initial state: both electrons on site 0 (a doublon).
  sim::StateVector psi = sim::StateVector::basis_state(n, 0b000011);
  sim::StateVector ref = sim::StateVector::basis_state(n, 0b000011);
  std::printf("%6s %16s %16s %12s\n", "time", "<n0u n0d> circ",
              "<n0u n0d> exact", "|overlap|");
  for (int k = 0; k <= steps; ++k) {
    if (k % 5 == 0) {
      std::printf("%6.2f %16.6f %16.6f %12.8f\n", k * dt,
                  psi.expectation(docc).real(), ref.expectation(docc).real(),
                  std::abs(psi.inner(ref)));
    }
    psi.apply_circuit(step_sorted);
    // Reference: 100 fine substeps of the same generator set.
    for (int s = 0; s < 100; ++s)
      for (const auto& b : blocks)
        ref.apply_pauli_exp(b.string, b.angle_coeff / 100);
  }
  return 0;
}
