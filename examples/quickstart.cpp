// Quickstart: compile an optimized VQE ansatz circuit for LiH.
//
// Demonstrates the femto public API end to end:
//   molecule -> STO-3G integrals -> RHF -> UCCSD/HMP2 terms ->
//   advanced compilation (hybrid encoding + Gamma SA + GTSP sorting),
//   multi-restarted on the parallel pipeline -> CNOT counts and the
//   gate-level circuit.
#include <cstdio>

#include "chem/integrals.hpp"
#include "chem/mo_integrals.hpp"
#include "chem/molecules.hpp"
#include "chem/scf.hpp"
#include "core/pipeline.hpp"
#include "vqe/uccsd.hpp"

int main() {
  using namespace femto;

  // 1. Chemistry: LiH at its equilibrium bond length, STO-3G.
  const chem::Molecule mol = chem::make_lih();
  auto basis = chem::build_sto3g(mol);
  chem::normalize_basis(basis);
  const auto ints = chem::compute_integrals(mol, basis);
  const auto scf = chem::run_rhf(mol, ints);
  std::printf("LiH / STO-3G:  E_RHF = %.6f Ha  (%d AOs, %zu SCF iterations)\n",
              scf.total_energy, static_cast<int>(ints.n),
              static_cast<std::size_t>(scf.iterations));

  // 2. Ansatz terms: UCCSD ranked by HMP2 importance; keep the top 3
  //    (the paper's chemical-accuracy count for LiH).
  const auto mo = chem::transform_to_mo(mol, ints, scf);
  const auto so = chem::to_spin_orbitals(mo);
  auto terms = vqe::uccsd_hmp2_terms(so);
  terms.resize(3);
  for (const auto& t : terms)
    std::printf("  term %-24s  class=%-9s  |MP2| = %.5f\n",
                t.to_string().c_str(), to_string(t.classification()),
                t.mp2_estimate);

  // 3. Compile with the paper's advanced pipeline through the unified
  //    CompileRequest entry point: one scenario, 4 independent restarts on
  //    the worker pool (restart 0 == the single-shot compile, so the best
  //    plan can only improve), with in-flight verification: every
  //    restart's emitted circuit is certified against its compilation spec
  //    by symbolic Pauli propagation (no statevector, any qubit count)...
  core::CompilePipeline pipeline({.workers = 0});
  core::CompileScenario scenario;
  scenario.name = "LiH/advanced";
  scenario.num_qubits = so.n;
  scenario.terms = terms;  // options default: hybrid + SA Gamma + GTSP GA
  const core::CompileResponse response = pipeline.compile({
      .scenarios = {scenario},
      .restarts = 4,
      .verify = true,
  });
  if (!response.done()) {
    std::printf("compile did not finish: %s\n", response.detail.c_str());
    return 1;
  }
  const core::MultiStartResult& multi = response.outcomes[0].result;
  const auto& res_adv = multi.best;
  std::printf("\nrestart costs:");
  for (const auto& r : multi.restarts) std::printf(" %d", r.model_cnots);
  std::printf("  (best: restart %zu)\n", multi.best_restart);
  std::printf("verification: %s  (best restart: %s)\n",
              multi.all_verified() ? "all restarts certified" : "FAILED",
              multi.verification[multi.best_restart].to_string().c_str());
  if (!multi.all_verified()) return 1;

  // ...and with the baseline of [9] for comparison.
  core::CompileOptions base;
  base.transform = core::TransformKind::kJordanWigner;
  base.sorting = core::SortingMode::kBaseline;
  base.compression = core::CompressionMode::kBosonicOnly;
  const auto res_base = core::compile_vqe(so.n, terms, base);

  std::printf("\nCNOT counts (model / emitted circuit):\n");
  std::printf("  baseline [9] : %3d / %3d\n", res_base.model_cnots,
              res_base.emitted_cnots);
  std::printf("  advanced     : %3d / %3d   (%.1f%% saving)\n",
              res_adv.model_cnots, res_adv.emitted_cnots,
              100.0 * (res_base.model_cnots - res_adv.model_cnots) /
                  std::max(1, res_base.model_cnots));
  std::printf("\nSegments of the advanced circuit:\n");
  for (const auto& seg : res_adv.segments)
    std::printf("  %-14s terms=%zu  cnots=%d\n", seg.name.c_str(),
                seg.num_terms, seg.model_cnots);
  std::printf("  decompression CNOTs: %d\n", res_adv.decompression_cnots);

  std::printf("\nFirst gates of the compiled circuit:\n");
  std::size_t shown = 0;
  for (const auto& g : res_adv.circuit.gates()) {
    std::printf("  %s\n", g.to_string().c_str());
    if (++shown == 12) break;
  }
  std::printf("  ... (%zu gates total, depth %zu)\n", res_adv.circuit.size(),
              res_adv.circuit.depth());

  // 4. Retarget the same ansatz to different hardware -- the same request
  //    shape, now with an explicit target axis: the all-to-all CNOT anchor
  //    (= the numbers above), a trapped-ion XX/MS-native device, and a
  //    nearest-neighbor chain with SWAP routing. Each (scenario, target)
  //    cell optimizes the *device* cost and every lowered/routed circuit
  //    is certified against its compilation spec.
  const core::CompileResponse targeted = pipeline.compile({
      .scenarios = {scenario},
      .targets = {synth::HardwareTarget::all_to_all_cnot(),
                  synth::HardwareTarget::trapped_ion_xx(),
                  synth::HardwareTarget::linear_nn(so.n)},
      .restarts = 4,
      .verify = true,
  });
  if (!targeted.done()) {
    std::printf("compile did not finish: %s\n", targeted.detail.c_str());
    return 1;
  }
  std::printf("\nPer-target costs (model / device native entanglers):\n");
  for (const core::ScenarioOutcome& outcome : targeted.outcomes) {
    const core::MultiStartResult& result = outcome.result;
    std::printf("  %-16s %3d / %3d   swaps=%d  %s\n",
                outcome.target.name.c_str(), result.best.model_cost,
                result.best.device_cost, result.best.routed_swaps,
                result.all_verified() ? "certified" : "NOT CERTIFIED");
    if (!result.all_verified()) return 1;
  }
  return 0;
}
