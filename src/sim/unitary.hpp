// Unitary extraction and equivalence checking for small circuits.
//
// Used by tests to prove that synthesized/optimized circuits implement the
// same unitary as reference constructions, up to global phase.
#pragma once

#include <vector>

#include "sim/statevector.hpp"

namespace femto::sim {

/// Column-major unitary of a circuit: column k = circuit applied to |k>.
[[nodiscard]] inline std::vector<std::vector<Complex>> circuit_unitary(
    const circuit::QuantumCircuit& c, std::span<const double> params = {}) {
  FEMTO_EXPECTS(c.num_qubits() <= 12);
  const std::size_t dim = std::size_t{1} << c.num_qubits();
  std::vector<std::vector<Complex>> u(dim);
  for (std::size_t k = 0; k < dim; ++k) {
    StateVector sv = StateVector::basis_state(c.num_qubits(), k);
    sv.apply_circuit(c, params);
    u[k] = sv.amplitudes();
  }
  return u;
}

/// Max |U1 - e^{i phi} U2| entrywise, with phi chosen from the largest
/// entry of U1. Returns a large value when shapes differ.
[[nodiscard]] inline double unitary_distance_up_to_phase(
    const std::vector<std::vector<Complex>>& u1,
    const std::vector<std::vector<Complex>>& u2) {
  if (u1.size() != u2.size()) return 1e9;
  // Find the largest-magnitude entry of u1 to fix the relative phase.
  std::size_t bc = 0, br = 0;
  double best = -1.0;
  for (std::size_t c = 0; c < u1.size(); ++c)
    for (std::size_t r = 0; r < u1[c].size(); ++r)
      if (std::abs(u1[c][r]) > best) {
        best = std::abs(u1[c][r]);
        bc = c;
        br = r;
      }
  if (best < 1e-12 || std::abs(u2[bc][br]) < 1e-12) return 1e9;
  const Complex phase = u1[bc][br] / u2[bc][br] /
                        std::abs(u1[bc][br] / u2[bc][br]);
  double dist = 0.0;
  for (std::size_t c = 0; c < u1.size(); ++c) {
    if (u1[c].size() != u2[c].size()) return 1e9;
    for (std::size_t r = 0; r < u1[c].size(); ++r)
      dist = std::max(dist, std::abs(u1[c][r] - phase * u2[c][r]));
  }
  return dist;
}

/// Convenience: do two circuits implement the same unitary up to phase?
[[nodiscard]] inline bool circuits_equivalent(
    const circuit::QuantumCircuit& a, const circuit::QuantumCircuit& b,
    std::span<const double> params = {}, double tol = 1e-9) {
  return unitary_distance_up_to_phase(circuit_unitary(a, params),
                                      circuit_unitary(b, params)) < tol;
}

}  // namespace femto::sim
