// Lanczos ground-state solver on the full qubit space.
//
// Provides exact reference energies for PauliSum Hamiltonians; cross-checked
// against the determinant-basis FCI solver in chem/ (two independent code
// paths arriving at the same ground-state energy is one of the strongest
// integration tests in the suite).
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "sim/statevector.hpp"

namespace femto::sim {

struct LanczosResult {
  double ground_energy = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// Smallest eigenvalue of a (real-spectrum) symmetric tridiagonal matrix via
/// bisection with Sturm sequences.
[[nodiscard]] inline double tridiag_min_eig(const std::vector<double>& alpha,
                                            const std::vector<double>& beta) {
  const std::size_t m = alpha.size();
  FEMTO_EXPECTS(m > 0);
  // Gershgorin bounds.
  double lo = alpha[0], hi = alpha[0];
  for (std::size_t i = 0; i < m; ++i) {
    const double b1 = i > 0 ? std::abs(beta[i - 1]) : 0.0;
    const double b2 = i + 1 < m ? std::abs(beta[i]) : 0.0;
    lo = std::min(lo, alpha[i] - b1 - b2);
    hi = std::max(hi, alpha[i] + b1 + b2);
  }
  // Count of eigenvalues < x via the Sturm sequence.
  const auto count_below = [&](double x) {
    int count = 0;
    double d = 1.0;
    for (std::size_t i = 0; i < m; ++i) {
      const double b2 = i > 0 ? beta[i - 1] * beta[i - 1] : 0.0;
      d = alpha[i] - x - (d != 0.0 ? b2 / d : b2 / 1e-300);
      if (d < 0) ++count;
    }
    return count;
  };
  for (int it = 0; it < 200 && hi - lo > 1e-13 * std::max(1.0, std::abs(lo));
       ++it) {
    const double mid = 0.5 * (lo + hi);
    if (count_below(mid) >= 1)
      hi = mid;
    else
      lo = mid;
  }
  return 0.5 * (lo + hi);
}

/// Lanczos iteration for the minimum eigenvalue of H (PauliSum) with full
/// reorthogonalization (robust for the modest dimensions used here).
[[nodiscard]] inline LanczosResult lanczos_ground_energy(
    const pauli::PauliSum& h, std::size_t num_qubits, int max_iter = 200,
    double tol = 1e-10, Rng* rng = nullptr) {
  const std::size_t dim = std::size_t{1} << num_qubits;
  Rng local_rng(12345);
  Rng& r = rng != nullptr ? *rng : local_rng;

  StateVector v(num_qubits);
  for (std::size_t i = 0; i < dim; ++i)
    v.amplitudes()[i] = Complex(r.normal(), r.normal());
  v.normalize();

  std::vector<std::vector<Complex>> basis;
  std::vector<double> alpha, beta;
  LanczosResult result;
  double prev = 1e300;

  for (int it = 0; it < max_iter; ++it) {
    basis.push_back(v.amplitudes());
    std::vector<Complex> w = v.apply_sum(h);
    // alpha_k = <v, w>
    Complex a{0, 0};
    for (std::size_t i = 0; i < dim; ++i)
      a += std::conj(v.amplitudes()[i]) * w[i];
    alpha.push_back(a.real());
    // Full reorthogonalization against all previous basis vectors, twice:
    // a single classical Gram-Schmidt pass leaves residual overlaps that
    // break the Rayleigh-Ritz bound near convergence ("twice is enough").
    for (int pass = 0; pass < 2; ++pass) {
      for (const auto& u : basis) {
        Complex proj{0, 0};
        for (std::size_t i = 0; i < dim; ++i) proj += std::conj(u[i]) * w[i];
        for (std::size_t i = 0; i < dim; ++i) w[i] -= proj * u[i];
      }
    }
    double nb = 0.0;
    for (const Complex& c : w) nb += std::norm(c);
    nb = std::sqrt(nb);
    const double energy = tridiag_min_eig(alpha, beta);
    result.ground_energy = energy;
    result.iterations = it + 1;
    if (std::abs(energy - prev) < tol || nb < 1e-12) {
      result.converged = true;
      break;
    }
    prev = energy;
    beta.push_back(nb);
    for (std::size_t i = 0; i < dim; ++i) v.amplitudes()[i] = w[i] / nb;
  }
  return result;
}

}  // namespace femto::sim
