// Statevector simulator.
//
// Little-endian convention: qubit q is bit q of the basis index. Supports
// every femto gate, direct Pauli-string exponentials (for fast exact ansatz
// application), PauliSum expectation values and H|psi> products (for VQE
// energies, adjoint gradients and Lanczos).
//
// Gate application is delegated to the stride-based kernels in
// sim/kernels.hpp: pairs are enumerated directly (no branch-in-loop over all
// 2^n indices), diagonal gates fuse into streaming passes, and consecutive
// diagonal gates on one qubit collapse into a single pass in apply_circuit.
//
// The gate/circuit dispatchers live in sim::detail as free functions over a
// raw amplitude array with a QUBIT SHIFT: gate qubit q acts on bit q + shift
// of the index. StateVector calls them with shift = 0; BatchedState
// (sim/batched.hpp) calls the very same code with shift = log2(batch lanes)
// to apply one circuit across a whole lane-interleaved batch -- which is
// what makes batched results bit-identical to the per-state path by
// construction.
#pragma once

#include <complex>
#include <span>
#include <utility>
#include <vector>

#include "circuit/quantum_circuit.hpp"
#include "pauli/pauli_sum.hpp"
#include "sim/kernels.hpp"

namespace femto::sim {

using Complex = std::complex<double>;

namespace detail {

[[nodiscard]] inline double resolved_angle(const circuit::Gate& g,
                                           std::span<const double> params) {
  return g.param >= 0 ? g.angle * params[static_cast<std::size_t>(g.param)]
                      : g.angle;
}

[[nodiscard]] inline bool is_diag1(circuit::GateKind k) {
  using circuit::GateKind;
  return k == GateKind::kZ || k == GateKind::kS || k == GateKind::kSdg ||
         k == GateKind::kRz;
}

/// Diagonal (d0, d1) of a single-qubit diagonal gate.
[[nodiscard]] inline std::pair<Complex, Complex> diag_of(
    const circuit::Gate& g, std::span<const double> params) {
  using circuit::GateKind;
  const Complex i_unit{0.0, 1.0};
  switch (g.kind) {
    case GateKind::kZ: return {{1.0, 0.0}, {-1.0, 0.0}};
    case GateKind::kS: return {{1.0, 0.0}, i_unit};
    case GateKind::kSdg: return {{1.0, 0.0}, -i_unit};
    case GateKind::kRz: {
      const double half = resolved_angle(g, params) / 2;
      return {std::exp(-i_unit * half), std::exp(i_unit * half)};
    }
    default: FEMTO_EXPECTS(false && "not a single-qubit diagonal gate");
  }
  return {{1.0, 0.0}, {1.0, 0.0}};
}

/// Packed masks of a string, with its bits shifted up by `shift` index bits
/// (n + shift <= 64). Shifting x and z together preserves every per-index
/// popcount parity on the shifted index, so the same masks drive per-state
/// (shift 0) and lane-interleaved batched application.
[[nodiscard]] inline kernels::PauliMasks make_masks(const pauli::PauliString& p,
                                                    std::size_t shift = 0) {
  FEMTO_EXPECTS(p.num_qubits() + shift <= 64);
  kernels::PauliMasks m;
  m.x = p.x().mask64() << shift;
  m.z = p.z().mask64() << shift;
  switch (std::popcount(m.x & m.z) & 3) {
    case 1: m.y_factor = Complex(0, 1); break;
    case 2: m.y_factor = Complex(-1, 0); break;
    case 3: m.y_factor = Complex(0, -1); break;
    default: break;
  }
  return m;
}

/// Applies one gate to a raw amplitude array of size `dim`, acting on index
/// bit g.q + shift.
inline void apply_gate_raw(Complex* a, std::size_t dim, std::size_t shift,
                           const circuit::Gate& g,
                           std::span<const double> params) {
  using circuit::GateKind;
  const std::size_t q0 = g.q0 + shift;
  const std::size_t q1 = g.q1 + shift;
  FEMTO_EXPECTS((std::size_t{1} << q0) < dim);
  const double angle = detail::resolved_angle(g, params);
  const double half = angle / 2;
  const Complex i_unit{0.0, 1.0};
  if (is_diag1(g.kind)) {
    const auto [d0, d1] = diag_of(g, params);
    kernels::apply_diag1(a, dim, q0, d0, d1);
    return;
  }
  switch (g.kind) {
    case GateKind::kX: kernels::apply_matrix1(a, dim, q0, 0, 1, 1, 0); break;
    case GateKind::kY:
      kernels::apply_matrix1(a, dim, q0, 0, -i_unit, i_unit, 0);
      break;
    case GateKind::kH: {
      const double s = 1.0 / std::sqrt(2.0);
      kernels::apply_matrix1(a, dim, q0, s, s, s, -s);
      break;
    }
    case GateKind::kRx:
      kernels::apply_matrix1(a, dim, q0, std::cos(half),
                             -i_unit * std::sin(half),
                             -i_unit * std::sin(half), std::cos(half));
      break;
    case GateKind::kRy:
      kernels::apply_matrix1(a, dim, q0, std::cos(half), -std::sin(half),
                             std::sin(half), std::cos(half));
      break;
    case GateKind::kCnot: kernels::apply_cnot(a, dim, q0, q1); break;
    case GateKind::kCz: kernels::apply_cz(a, dim, q0, q1); break;
    case GateKind::kSwap: kernels::apply_swap(a, dim, q0, q1); break;
    case GateKind::kXXrot: kernels::apply_xxrot(a, dim, q0, q1, angle); break;
    case GateKind::kXYrot: kernels::apply_xyrot(a, dim, q0, q1, angle); break;
    case GateKind::kZ:
    case GateKind::kS:
    case GateKind::kSdg:
    case GateKind::kRz: break;  // handled by the diagonal path above
  }
}

/// Applies a whole circuit, fusing runs of consecutive single-qubit diagonal
/// gates on one qubit into a single streaming pass.
inline void apply_circuit_raw(Complex* a, std::size_t dim, std::size_t shift,
                              const circuit::QuantumCircuit& c,
                              std::span<const double> params) {
  const auto& gates = c.gates();
  for (std::size_t k = 0; k < gates.size(); ++k) {
    const circuit::Gate& g = gates[k];
    if (is_diag1(g.kind)) {
      auto [d0, d1] = diag_of(g, params);
      while (k + 1 < gates.size() && is_diag1(gates[k + 1].kind) &&
             gates[k + 1].q0 == g.q0) {
        ++k;
        const auto [e0, e1] = diag_of(gates[k], params);
        d0 *= e0;
        d1 *= e1;
      }
      kernels::apply_diag1(a, dim, g.q0 + shift, d0, d1);
      continue;
    }
    apply_gate_raw(a, dim, shift, g, params);
  }
}

}  // namespace detail

class StateVector {
 public:
  explicit StateVector(std::size_t n)
      : n_(n), amps_(std::size_t{1} << n, Complex{0.0, 0.0}) {
    FEMTO_EXPECTS(n <= 28);
    amps_[0] = 1.0;
  }

  /// Computational basis state |index>.
  [[nodiscard]] static StateVector basis_state(std::size_t n,
                                               std::size_t index) {
    StateVector sv(n);
    FEMTO_EXPECTS(index < sv.amps_.size());
    sv.amps_[0] = 0.0;
    sv.amps_[index] = 1.0;
    return sv;
  }

  [[nodiscard]] std::size_t num_qubits() const { return n_; }
  [[nodiscard]] std::size_t dim() const { return amps_.size(); }
  [[nodiscard]] const std::vector<Complex>& amplitudes() const { return amps_; }
  [[nodiscard]] std::vector<Complex>& amplitudes() { return amps_; }
  [[nodiscard]] Complex amplitude(std::size_t i) const { return amps_[i]; }

  // --- single-qubit and two-qubit gates -------------------------------

  void apply_matrix1(std::size_t q, Complex m00, Complex m01, Complex m10,
                     Complex m11) {
    FEMTO_EXPECTS(q < n_);
    kernels::apply_matrix1(amps_.data(), amps_.size(), q, m00, m01, m10, m11);
  }

  /// Diagonal gate diag(d0, d1) on qubit q (single streaming pass).
  void apply_diag1(std::size_t q, Complex d0, Complex d1) {
    FEMTO_EXPECTS(q < n_);
    kernels::apply_diag1(amps_.data(), amps_.size(), q, d0, d1);
  }

  void apply_cnot(std::size_t c, std::size_t t) {
    FEMTO_EXPECTS(c < n_ && t < n_ && c != t);
    kernels::apply_cnot(amps_.data(), amps_.size(), c, t);
  }

  void apply_cz(std::size_t a, std::size_t b) {
    FEMTO_EXPECTS(a < n_ && b < n_ && a != b);
    kernels::apply_cz(amps_.data(), amps_.size(), a, b);
  }

  void apply_swap(std::size_t a, std::size_t b) {
    FEMTO_EXPECTS(a < n_ && b < n_ && a != b);
    kernels::apply_swap(amps_.data(), amps_.size(), a, b);
  }

  /// exp(-i angle/2 X@X).
  void apply_xxrot(std::size_t a, std::size_t b, double angle) {
    FEMTO_EXPECTS(a < n_ && b < n_ && a != b);
    kernels::apply_xxrot(amps_.data(), amps_.size(), a, b, angle);
  }

  /// exp(-i angle/2 (X@X + Y@Y)): rotation inside the {01,10} subspace.
  void apply_xyrot(std::size_t a, std::size_t b, double angle) {
    FEMTO_EXPECTS(a < n_ && b < n_ && a != b);
    kernels::apply_xyrot(amps_.data(), amps_.size(), a, b, angle);
  }

  // --- circuits --------------------------------------------------------

  void apply_gate(const circuit::Gate& g,
                  std::span<const double> params = {}) {
    FEMTO_EXPECTS(g.q0 < n_ && (!g.two_qubit() || g.q1 < n_));
    detail::apply_gate_raw(amps_.data(), amps_.size(), 0, g, params);
  }

  void apply_circuit(const circuit::QuantumCircuit& c,
                     std::span<const double> params = {}) {
    FEMTO_EXPECTS(c.num_qubits() <= n_);
    detail::apply_circuit_raw(amps_.data(), amps_.size(), 0, c, params);
  }

  // --- Pauli strings ---------------------------------------------------

  /// exp(-i angle/2 P) for a Hermitian string P (letter sign +-1 folded in).
  void apply_pauli_exp(const pauli::PauliString& p, double angle) {
    FEMTO_EXPECTS(p.num_qubits() == n_);
    FEMTO_EXPECTS(p.is_hermitian());
    const double sgn = p.sign().real();
    const double half = sgn * angle / 2;
    kernels::apply_pauli_exp(amps_.data(), amps_.size(), detail::make_masks(p),
                             std::cos(half), std::sin(half));
  }

  /// out += coeff * P |this>.
  void accumulate_pauli(const pauli::PauliString& p, Complex coeff,
                        std::vector<Complex>& out) const {
    FEMTO_EXPECTS(out.size() == amps_.size());
    kernels::accumulate_pauli(amps_.data(), amps_.size(), detail::make_masks(p),
                              coeff * p.sign(), out.data());
  }

  /// H |this> for a PauliSum H.
  [[nodiscard]] std::vector<Complex> apply_sum(const pauli::PauliSum& h) const {
    std::vector<Complex> out(amps_.size(), Complex{0.0, 0.0});
    for (const pauli::PauliTerm& t : h.terms())
      accumulate_pauli(t.string, t.coefficient, out);
    return out;
  }

  /// <this| H |this>.
  [[nodiscard]] Complex expectation(const pauli::PauliSum& h) const {
    const std::vector<Complex> hpsi = apply_sum(h);
    Complex acc{0.0, 0.0};
    for (std::size_t i = 0; i < amps_.size(); ++i)
      acc += std::conj(amps_[i]) * hpsi[i];
    return acc;
  }

  [[nodiscard]] Complex inner(const StateVector& other) const {
    FEMTO_EXPECTS(other.dim() == dim());
    Complex acc{0.0, 0.0};
    for (std::size_t i = 0; i < amps_.size(); ++i)
      acc += std::conj(amps_[i]) * other.amps_[i];
    return acc;
  }

  [[nodiscard]] double norm() const {
    double acc = 0.0;
    for (const Complex& a : amps_) acc += std::norm(a);
    return std::sqrt(acc);
  }

  void normalize() {
    const double n = norm();
    FEMTO_EXPECTS(n > 0);
    for (Complex& a : amps_) a /= n;
  }

 private:
  std::size_t n_;
  std::vector<Complex> amps_;
};

}  // namespace femto::sim
