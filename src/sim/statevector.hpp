// Statevector simulator.
//
// Little-endian convention: qubit q is bit q of the basis index. Supports
// every femto gate, direct Pauli-string exponentials (for fast exact ansatz
// application), PauliSum expectation values and H|psi> products (for VQE
// energies, adjoint gradients and Lanczos).
#pragma once

#include <complex>
#include <span>
#include <vector>

#include "circuit/quantum_circuit.hpp"
#include "pauli/pauli_sum.hpp"

namespace femto::sim {

using Complex = std::complex<double>;

class StateVector {
 public:
  explicit StateVector(std::size_t n)
      : n_(n), amps_(std::size_t{1} << n, Complex{0.0, 0.0}) {
    FEMTO_EXPECTS(n <= 28);
    amps_[0] = 1.0;
  }

  /// Computational basis state |index>.
  [[nodiscard]] static StateVector basis_state(std::size_t n,
                                               std::size_t index) {
    StateVector sv(n);
    FEMTO_EXPECTS(index < sv.amps_.size());
    sv.amps_[0] = 0.0;
    sv.amps_[index] = 1.0;
    return sv;
  }

  [[nodiscard]] std::size_t num_qubits() const { return n_; }
  [[nodiscard]] std::size_t dim() const { return amps_.size(); }
  [[nodiscard]] const std::vector<Complex>& amplitudes() const { return amps_; }
  [[nodiscard]] std::vector<Complex>& amplitudes() { return amps_; }
  [[nodiscard]] Complex amplitude(std::size_t i) const { return amps_[i]; }

  // --- single-qubit and two-qubit gates -------------------------------

  void apply_matrix1(std::size_t q, Complex m00, Complex m01, Complex m10,
                     Complex m11) {
    const std::size_t bit = std::size_t{1} << q;
    for (std::size_t i = 0; i < amps_.size(); ++i) {
      if (i & bit) continue;
      const Complex a0 = amps_[i];
      const Complex a1 = amps_[i | bit];
      amps_[i] = m00 * a0 + m01 * a1;
      amps_[i | bit] = m10 * a0 + m11 * a1;
    }
  }

  void apply_cnot(std::size_t c, std::size_t t) {
    const std::size_t cb = std::size_t{1} << c;
    const std::size_t tb = std::size_t{1} << t;
    for (std::size_t i = 0; i < amps_.size(); ++i)
      if ((i & cb) && !(i & tb)) std::swap(amps_[i], amps_[i | tb]);
  }

  void apply_cz(std::size_t a, std::size_t b) {
    const std::size_t mask = (std::size_t{1} << a) | (std::size_t{1} << b);
    for (std::size_t i = 0; i < amps_.size(); ++i)
      if ((i & mask) == mask) amps_[i] = -amps_[i];
  }

  void apply_swap(std::size_t a, std::size_t b) {
    const std::size_t ab = std::size_t{1} << a;
    const std::size_t bb = std::size_t{1} << b;
    for (std::size_t i = 0; i < amps_.size(); ++i)
      if ((i & ab) && !(i & bb)) std::swap(amps_[i], amps_[(i ^ ab) | bb]);
  }

  /// exp(-i angle/2 X@X).
  void apply_xxrot(std::size_t a, std::size_t b, double angle) {
    const std::size_t mask = (std::size_t{1} << a) | (std::size_t{1} << b);
    const double c = std::cos(angle / 2), s = std::sin(angle / 2);
    for (std::size_t i = 0; i < amps_.size(); ++i) {
      const std::size_t j = i ^ mask;
      if (j < i) continue;
      const Complex ai = amps_[i], aj = amps_[j];
      amps_[i] = c * ai - Complex(0, s) * aj;
      amps_[j] = c * aj - Complex(0, s) * ai;
    }
  }

  /// exp(-i angle/2 (X@X + Y@Y)): rotation inside the {01,10} subspace.
  void apply_xyrot(std::size_t a, std::size_t b, double angle) {
    const std::size_t ab = std::size_t{1} << a;
    const std::size_t bb = std::size_t{1} << b;
    const double c = std::cos(angle), s = std::sin(angle);
    for (std::size_t i = 0; i < amps_.size(); ++i) {
      if (!(i & ab) || (i & bb)) continue;  // i has a=1, b=0
      const std::size_t j = (i ^ ab) | bb;  // a=0, b=1
      const Complex ai = amps_[i], aj = amps_[j];
      amps_[i] = c * ai - Complex(0, s) * aj;
      amps_[j] = c * aj - Complex(0, s) * ai;
    }
  }

  // --- circuits --------------------------------------------------------

  void apply_gate(const circuit::Gate& g,
                  std::span<const double> params = {}) {
    using circuit::GateKind;
    const double angle =
        g.param >= 0
            ? g.angle * params[static_cast<std::size_t>(g.param)]
            : g.angle;
    const double half = angle / 2;
    const Complex i_unit{0.0, 1.0};
    switch (g.kind) {
      case GateKind::kX: apply_matrix1(g.q0, 0, 1, 1, 0); break;
      case GateKind::kY: apply_matrix1(g.q0, 0, -i_unit, i_unit, 0); break;
      case GateKind::kZ: apply_matrix1(g.q0, 1, 0, 0, -1); break;
      case GateKind::kH: {
        const double s = 1.0 / std::sqrt(2.0);
        apply_matrix1(g.q0, s, s, s, -s);
        break;
      }
      case GateKind::kS: apply_matrix1(g.q0, 1, 0, 0, i_unit); break;
      case GateKind::kSdg: apply_matrix1(g.q0, 1, 0, 0, -i_unit); break;
      case GateKind::kRz:
        apply_matrix1(g.q0, std::exp(-i_unit * half), 0, 0,
                      std::exp(i_unit * half));
        break;
      case GateKind::kRx:
        apply_matrix1(g.q0, std::cos(half), -i_unit * std::sin(half),
                      -i_unit * std::sin(half), std::cos(half));
        break;
      case GateKind::kRy:
        apply_matrix1(g.q0, std::cos(half), -std::sin(half), std::sin(half),
                      std::cos(half));
        break;
      case GateKind::kCnot: apply_cnot(g.q0, g.q1); break;
      case GateKind::kCz: apply_cz(g.q0, g.q1); break;
      case GateKind::kSwap: apply_swap(g.q0, g.q1); break;
      case GateKind::kXXrot: apply_xxrot(g.q0, g.q1, angle); break;
      case GateKind::kXYrot: apply_xyrot(g.q0, g.q1, angle); break;
    }
  }

  void apply_circuit(const circuit::QuantumCircuit& c,
                     std::span<const double> params = {}) {
    FEMTO_EXPECTS(c.num_qubits() <= n_);
    for (const circuit::Gate& g : c.gates()) apply_gate(g, params);
  }

  // --- Pauli strings ---------------------------------------------------

  /// exp(-i angle/2 P) for a Hermitian string P (letter sign +-1 folded in).
  void apply_pauli_exp(const pauli::PauliString& p, double angle) {
    FEMTO_EXPECTS(p.num_qubits() == n_);
    FEMTO_EXPECTS(p.is_hermitian());
    const double sgn = p.sign().real();
    const double half = sgn * angle / 2;
    const StringMasks m = masks(p);
    const double c = std::cos(half), s = std::sin(half);
    const Complex mis{0.0, -s};
    if (m.x == 0) {
      for (std::size_t i = 0; i < amps_.size(); ++i)
        amps_[i] *= Complex(c, 0) + mis * m.phase(i);
      return;
    }
    for (std::size_t i = 0; i < amps_.size(); ++i) {
      const std::size_t j = i ^ m.x;
      if (j < i) continue;
      // L|i> = p_i |j>, L|j> = p_j |i>, with p_i p_j = 1.
      const Complex pi = m.phase(i);
      const Complex pj = m.phase(j);
      const Complex ai = amps_[i], aj = amps_[j];
      amps_[i] = c * ai + mis * pj * aj;
      amps_[j] = c * aj + mis * pi * ai;
    }
  }

  /// out += coeff * P |this>.
  void accumulate_pauli(const pauli::PauliString& p, Complex coeff,
                        std::vector<Complex>& out) const {
    FEMTO_EXPECTS(out.size() == amps_.size());
    const StringMasks m = masks(p);
    const Complex c = coeff * p.sign();
    for (std::size_t i = 0; i < amps_.size(); ++i) {
      const std::size_t j = i ^ m.x;
      // P|i> = phase(i) |j>  =>  (P psi)[j] += phase(i) psi[i]
      out[j] += c * m.phase(i) * amps_[i];
    }
  }

  /// H |this> for a PauliSum H.
  [[nodiscard]] std::vector<Complex> apply_sum(const pauli::PauliSum& h) const {
    std::vector<Complex> out(amps_.size(), Complex{0.0, 0.0});
    for (const pauli::PauliTerm& t : h.terms())
      accumulate_pauli(t.string, t.coefficient, out);
    return out;
  }

  /// <this| H |this>.
  [[nodiscard]] Complex expectation(const pauli::PauliSum& h) const {
    const std::vector<Complex> hpsi = apply_sum(h);
    Complex acc{0.0, 0.0};
    for (std::size_t i = 0; i < amps_.size(); ++i)
      acc += std::conj(amps_[i]) * hpsi[i];
    return acc;
  }

  [[nodiscard]] Complex inner(const StateVector& other) const {
    FEMTO_EXPECTS(other.dim() == dim());
    Complex acc{0.0, 0.0};
    for (std::size_t i = 0; i < amps_.size(); ++i)
      acc += std::conj(amps_[i]) * other.amps_[i];
    return acc;
  }

  [[nodiscard]] double norm() const {
    double acc = 0.0;
    for (const Complex& a : amps_) acc += std::norm(a);
    return std::sqrt(acc);
  }

  void normalize() {
    const double n = norm();
    FEMTO_EXPECTS(n > 0);
    for (Complex& a : amps_) a /= n;
  }

 private:
  [[nodiscard]] static std::size_t mask_of(const gf2::BitVec& v) {
    std::size_t mask = 0;
    for (std::size_t q = 0; q < v.size(); ++q)
      if (v.get(q)) mask |= std::size_t{1} << q;
    return mask;
  }

  /// Precomputed bit masks of a string for O(1) per-index phases.
  /// Letter action on |i>: X -> 1, Y -> i(-1)^bit, Z -> (-1)^bit, so
  /// phase(i) = i^{#Y} * (-1)^{popcount(i & zmask)} (letter sign excluded;
  /// callers fold it in).
  struct StringMasks {
    std::size_t x = 0;  // bit-flip mask (X and Y sites)
    std::size_t z = 0;  // phase mask (Z and Y sites)
    Complex y_factor{1.0, 0.0};  // i^{#Y}

    [[nodiscard]] Complex phase(std::size_t i) const {
      const bool minus = __builtin_popcountll(i & z) & 1;
      return minus ? -y_factor : y_factor;
    }
  };

  [[nodiscard]] static StringMasks masks(const pauli::PauliString& p) {
    StringMasks m;
    m.x = mask_of(p.x());
    m.z = mask_of(p.z());
    switch ((p.x() & p.z()).popcount() & 3) {
      case 1: m.y_factor = Complex(0, 1); break;
      case 2: m.y_factor = Complex(-1, 0); break;
      case 3: m.y_factor = Complex(0, -1); break;
      default: break;
    }
    return m;
  }

  std::size_t n_;
  std::vector<Complex> amps_;
};

}  // namespace femto::sim
