// Batched statevector simulation: B states advancing together in one
// structure-of-arrays buffer.
//
// Layout: lane-interleaved ("SoA over states"). With L = bit_ceil(B) lanes,
// amplitude i of state b lives at amps[(i << lane_pow) + b]. Because L is a
// power of two, applying a gate on qubit q across ALL lanes is exactly the
// same index arithmetic as applying it on qubit q + lane_pow of a single
// (n + lane_pow)-qubit state -- so BatchedState reuses the per-state
// dispatchers of sim/statevector.hpp verbatim, with the qubit shift set to
// lane_pow. The payoff is twofold:
//   - one circuit -> B states costs one pass over a single contiguous
//     buffer (B-fold fewer kernel launches, B-wide contiguous inner runs
//     that feed the SIMD primitives even for high qubits), and
//   - results are bit-identical to the per-state path BY CONSTRUCTION:
//     identical kernels, identical per-element arithmetic, only the memory
//     layout differs. tests/test_simd.cpp pins this for every gate kind.
//
// Per-lane variation (each state gets its own rotation angle -- the VQE
// parameter-sweep case) is supported for Pauli exponentials through the
// *_lanes kernels, which carry lane-duplicated coefficient arrays so the
// per-element op tree still matches what kernels::apply_pauli_exp would do
// for that lane's angle.
//
// Padding lanes (b >= batch_size, present when B is not a power of two)
// hold all-zero amplitudes; every kernel is linear, so they stay zero and
// are never read back.
#pragma once

#include <bit>
#include <complex>
#include <span>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/statevector.hpp"

namespace femto::sim {

class BatchedState {
 public:
  /// Ceiling on n + lane_pow: the padded buffer never exceeds 2^28
  /// amplitudes (4 GiB).
  static constexpr std::size_t kMaxPaddedQubits = 28;

  /// True when (n, batch) fits the padded SoA representation -- the same
  /// contract the constructor enforces with FEMTO_EXPECTS. Callers that
  /// want a graceful fallback (e.g. the dense verification arbiter) check
  /// this instead of letting the constructor abort.
  [[nodiscard]] static bool fits(std::size_t n, std::size_t batch) {
    if (batch < 1 || batch > (std::size_t{1} << kMaxPaddedQubits))
      return false;
    return n + lane_pow_for(batch) <= kMaxPaddedQubits;
  }

  /// B copies of |0...0> on n qubits.
  BatchedState(std::size_t n, std::size_t batch)
      : n_(n),
        batch_(batch),
        lane_pow_(checked_lane_pow(n, batch)),
        amps_((std::size_t{1} << (n + lane_pow_)), Complex{0.0, 0.0}) {
    for (std::size_t b = 0; b < batch_; ++b) amps_[b] = 1.0;
  }

  /// B copies of the computational basis state |index>.
  [[nodiscard]] static BatchedState basis_state(std::size_t n,
                                                std::size_t batch,
                                                std::size_t index) {
    BatchedState bs(n, batch);
    FEMTO_EXPECTS(index < (std::size_t{1} << n));
    for (std::size_t b = 0; b < batch; ++b) {
      bs.amps_[b] = 0.0;
      bs.amps_[(index << bs.lane_pow_) + b] = 1.0;
    }
    return bs;
  }

  /// Interleaves existing states (all must share the qubit count).
  [[nodiscard]] static BatchedState from_states(
      std::span<const StateVector> states) {
    FEMTO_EXPECTS(!states.empty());
    BatchedState bs(states[0].num_qubits(), states.size());
    const std::size_t dim = std::size_t{1} << bs.n_;
    for (std::size_t b = 0; b < states.size(); ++b) {
      FEMTO_EXPECTS(states[b].num_qubits() == bs.n_);
      for (std::size_t i = 0; i < dim; ++i)
        bs.amps_[(i << bs.lane_pow_) + b] = states[b].amplitude(i);
    }
    return bs;
  }

  [[nodiscard]] std::size_t num_qubits() const { return n_; }
  [[nodiscard]] std::size_t batch_size() const { return batch_; }
  [[nodiscard]] std::size_t lane_count() const {
    return std::size_t{1} << lane_pow_;
  }
  [[nodiscard]] std::size_t lane_pow() const { return lane_pow_; }
  /// Per-state dimension 2^n (the padded buffer is dim() * lane_count()).
  [[nodiscard]] std::size_t dim() const { return std::size_t{1} << n_; }
  [[nodiscard]] const std::vector<Complex>& amplitudes() const { return amps_; }

  [[nodiscard]] Complex amplitude(std::size_t b, std::size_t i) const {
    FEMTO_EXPECTS(b < batch_ && i < dim());
    return amps_[(i << lane_pow_) + b];
  }

  /// Extracts lane b as a standalone StateVector.
  [[nodiscard]] StateVector lane(std::size_t b) const {
    FEMTO_EXPECTS(b < batch_);
    StateVector sv(n_);
    for (std::size_t i = 0; i < dim(); ++i)
      sv.amplitudes()[i] = amps_[(i << lane_pow_) + b];
    return sv;
  }

  // --- shared application (one circuit -> B states) ---------------------

  void apply_gate(const circuit::Gate& g, std::span<const double> params = {}) {
    FEMTO_EXPECTS(g.q0 < n_ && (!g.two_qubit() || g.q1 < n_));
    detail::apply_gate_raw(amps_.data(), amps_.size(), lane_pow_, g, params);
    count_applied(batch_);
  }

  void apply_circuit(const circuit::QuantumCircuit& c,
                     std::span<const double> params = {}) {
    FEMTO_EXPECTS(c.num_qubits() <= n_);
    detail::apply_circuit_raw(amps_.data(), amps_.size(), lane_pow_, c, params);
    count_applied(batch_);
  }

  /// exp(-i angle/2 P) on every lane (shared angle).
  void apply_pauli_exp(const pauli::PauliString& p, double angle) {
    FEMTO_EXPECTS(p.num_qubits() == n_);
    FEMTO_EXPECTS(p.is_hermitian());
    const double sgn = p.sign().real();
    const double half = sgn * angle / 2;
    kernels::apply_pauli_exp(amps_.data(), amps_.size(),
                             detail::make_masks(p, lane_pow_), std::cos(half),
                             std::sin(half));
    count_applied(batch_);
  }

  // --- per-lane application (the parameter-sweep case) ------------------

  /// exp(-i angles[b]/2 P) on lane b. Per-element arithmetic matches what
  /// the per-state kernel does for that lane's angle (pinned in
  /// tests/test_simd.cpp), so a parameter sweep through here is bit-exact
  /// with B independent StateVector runs.
  void apply_pauli_exp(const pauli::PauliString& p,
                       std::span<const double> angles) {
    FEMTO_EXPECTS(p.num_qubits() == n_);
    FEMTO_EXPECTS(p.is_hermitian());
    FEMTO_EXPECTS(angles.size() == batch_);
    const double sgn = p.sign().real();
    const std::size_t lanes = lane_count();
    // Lane-duplicated cos/sin tiles (period = one lane block). Padding lanes
    // get theta = 0; their amplitudes are zero anyway.
    std::vector<double> cd(2 * lanes, 1.0), sd(2 * lanes, 0.0);
    for (std::size_t b = 0; b < batch_; ++b) {
      const double half = sgn * angles[b] / 2;
      cd[2 * b] = cd[2 * b + 1] = std::cos(half);
      sd[2 * b] = sd[2 * b + 1] = std::sin(half);
    }
    apply_pauli_exp_lanes(detail::make_masks(p, lane_pow_), cd, sd);
    count_applied(batch_);
  }

  // --- observables ------------------------------------------------------

  /// out += coeff * P applied per lane (padded layout, shifted masks; the
  /// per-element ops match StateVector::accumulate_pauli on each lane).
  void accumulate_pauli(const pauli::PauliString& p, Complex coeff,
                        std::vector<Complex>& out) const {
    FEMTO_EXPECTS(out.size() == amps_.size());
    kernels::accumulate_pauli(amps_.data(), amps_.size(),
                              detail::make_masks(p, lane_pow_),
                              coeff * p.sign(), out.data());
  }

  /// H |psi_b> for every lane, in the padded layout.
  [[nodiscard]] std::vector<Complex> apply_sum(const pauli::PauliSum& h) const {
    std::vector<Complex> out(amps_.size(), Complex{0.0, 0.0});
    for (const pauli::PauliTerm& t : h.terms())
      accumulate_pauli(t.string, t.coefficient, out);
    return out;
  }

  /// <psi_b| H |psi_b> for every lane. Each lane accumulates over ascending
  /// amplitude index -- the same summation order as StateVector::expectation,
  /// so the results are bit-identical to B independent runs.
  [[nodiscard]] std::vector<Complex> expectations(
      const pauli::PauliSum& h) const {
    const std::vector<Complex> hpsi = apply_sum(h);
    std::vector<Complex> acc(batch_, Complex{0.0, 0.0});
    for (std::size_t b = 0; b < batch_; ++b)
      for (std::size_t i = 0; i < dim(); ++i) {
        const std::size_t k = (i << lane_pow_) + b;
        acc[b] += std::conj(amps_[k]) * hpsi[k];
      }
    return acc;
  }

 private:
  [[nodiscard]] static std::size_t lane_pow_for(std::size_t batch) {
    return static_cast<std::size_t>(std::bit_width(std::bit_ceil(batch) >> 1));
  }

  /// Validates (n, batch) BEFORE amps_ is allocated: lane_pow_ precedes
  /// amps_ in declaration order, so an invalid request aborts here rather
  /// than after an oversized-shift (UB for n + lane_pow >= 64) or a
  /// multi-GiB allocation attempt.
  [[nodiscard]] static std::size_t checked_lane_pow(std::size_t n,
                                                    std::size_t batch) {
    FEMTO_EXPECTS(batch >= 1);
    FEMTO_EXPECTS(fits(n, batch));
    return lane_pow_for(batch);
  }

  /// Per-lane Pauli exponential over the padded array. Same sub-run
  /// decomposition as kernels::apply_pauli_exp (phases are constant over
  /// aligned runs below ctz of the shifted masks, and every padded sub-run
  /// is a whole number of lane blocks), with the *_lanes primitives carrying
  /// the per-lane cos/sin.
  void apply_pauli_exp_lanes(const kernels::PauliMasks& m,
                             std::span<const double> cd,
                             std::span<const double> sd) {
    const std::size_t lanes = lane_count();
    const std::size_t pdim = amps_.size();
    double* d = reinterpret_cast<double*>(amps_.data());
    if (m.x == 0) {
      // Diagonal: lane b scales by {cos_b, -+sin_b} depending on the run's
      // phase parity -- exactly the even/odd factors of the shared kernel.
      std::vector<double> fr(2 * lanes), fi_even(2 * lanes), fi_odd(2 * lanes);
      for (std::size_t j = 0; j < 2 * lanes; ++j) {
        fr[j] = cd[j];
        fi_even[j] = -sd[j];
        fi_odd[j] = sd[j];
      }
      const std::uint64_t z = m.z;
      const std::size_t run = kernels::detail::phase_run(z, pdim);
      for (std::size_t g = 0; g < pdim; g += run) {
        const double* fi =
            (std::popcount(g & z) & 1) ? fi_odd.data() : fi_even.data();
        for (std::size_t off = 0; off < run; off += lanes)
          kernels::runs::scale_lanes(d + 2 * (g + off), lanes, fr.data(), fi);
      }
      return;
    }
    const std::size_t pb = std::size_t{1} << (std::bit_width(m.x) - 1);
    const std::size_t flip = static_cast<std::size_t>(m.x);
    // Per-lane u = mis_b * phase(j), v = mis_b * phase(i) for both phase
    // signs, with mis_b = {0, -sin_b} -- the same products the shared kernel
    // forms per sub-run (phase() negates y_factor componentwise first).
    const Complex yf = m.y_factor;
    const Complex nyf = -yf;
    std::vector<double> ur_p(2 * lanes), ui_p(2 * lanes);
    std::vector<double> ur_m(2 * lanes), ui_m(2 * lanes);
    for (std::size_t b = 0; b < lanes; ++b) {
      const Complex mis{0.0, -sd[2 * b]};
      const Complex up = mis * yf;
      const Complex um = mis * nyf;
      ur_p[2 * b] = ur_p[2 * b + 1] = up.real();
      ui_p[2 * b] = ui_p[2 * b + 1] = up.imag();
      ur_m[2 * b] = ur_m[2 * b + 1] = um.real();
      ui_m[2 * b] = ui_m[2 * b + 1] = um.imag();
    }
    std::size_t sub = std::size_t{1} << std::countr_zero(flip);
    sub = std::min(sub, kernels::detail::phase_run(m.z, pb));
    sub = std::min(sub, pb);
    for (std::size_t g = 0; g < pdim; g += 2 * pb) {
      for (std::size_t i = g; i < g + pb; i += sub) {
        const std::size_t j = i ^ flip;
        const bool minus_i = std::popcount(i & m.z) & 1;
        const bool minus_j = std::popcount(j & m.z) & 1;
        const double* ur = minus_j ? ur_m.data() : ur_p.data();
        const double* ui = minus_j ? ui_m.data() : ui_p.data();
        const double* vr = minus_i ? ur_m.data() : ur_p.data();
        const double* vi = minus_i ? ui_m.data() : ui_p.data();
        for (std::size_t off = 0; off < sub; off += lanes)
          kernels::runs::rot2_lanes(amps_.data() + i + off,
                                    amps_.data() + j + off, lanes, cd.data(),
                                    ur, ui, vr, vi);
      }
    }
  }

  static void count_applied(std::size_t batch) {
    static obs::Counter& counter =
        obs::registry().counter("sim.batched_states_applied");
    counter.inc(batch);
  }

  std::size_t n_;
  std::size_t batch_;
  std::size_t lane_pow_;
  std::vector<Complex> amps_;
};

}  // namespace femto::sim
