// CHP-style Clifford tableau over the bit-packed gf2:: types.
//
// A Clifford unitary U is represented by its conjugation action on the 2n
// Pauli generators: row j holds U X_j U^dag, row n+j holds U Z_j U^dag, each
// stored in the symplectic i^k convention of pauli::PauliString
// (row = i^phase * prod_q X^x_q Z^z_q). The images determine U up to global
// phase, so tableau equality IS circuit equivalence for Clifford circuits --
// at any qubit count, in O(gates * n) bit operations, where dense
// statevector comparison dies beyond ~14 qubits.
//
// Two composition modes are provided:
//
//  * then_gate(g):  tableau <- conj_g o tableau. Folding a circuit's gates
//    in time order yields the tableau of the whole circuit. Updates are the
//    CHP column rules rewritten for the i^k convention (which makes the
//    CNOT update phase-free -- see pauli/pauli_string.hpp for why), O(1)
//    word ops per row.
//  * input_gate(g): tableau <- tableau o conj_{g^dag}. Feeding a circuit's
//    gates in time order yields the tableau of the circuit's *inverse*,
//    which is exactly the map P -> C^dag P C that Pauli propagation
//    (verify/pauli_propagation.hpp) needs to push rotations through a
//    Clifford prefix. Updates recombine O(1) affected rows via exact-phase
//    row products, O(n/64) words each.
//
// Non-Clifford gates (rotations at generic angles, variational rotations)
// are rejected: then_gate/input_gate return false and leave the tableau
// untouched, so callers can fall back to symbolic propagation.
#pragma once

#include <cmath>
#include <optional>
#include <string>
#include <vector>

#include "circuit/quantum_circuit.hpp"
#include "gf2/bitvec.hpp"
#include "pauli/pauli_string.hpp"

namespace femto::sim {

namespace detail {

/// Primitive Clifford ops every Clifford GateKind lowers to.
enum class CliffordPrim : std::uint8_t {
  kH,
  kS,
  kSdg,
  kX,
  kY,
  kZ,
  kCnot,
  kCz,
  kSwap,
};

struct LoweredClifford {
  CliffordPrim prim;
  std::size_t q0 = 0;
  std::size_t q1 = 0;
};

/// Quarter turns of an angle: angle = k * pi/2 within tol -> k in {0,1,2,3};
/// nullopt for non-Clifford angles.
[[nodiscard]] inline std::optional<int> quarter_turns(double angle,
                                                      double tol = 1e-9) {
  const double turns = angle / (M_PI / 2);
  const double nearest = std::round(turns);
  if (std::abs(turns - nearest) > tol) return std::nullopt;
  // & 3 already maps negative counts into [0, 3] (two's complement).
  return static_cast<int>(std::llround(nearest)) & 3;
}

/// Emits the Rz(k * pi/2) primitive (up to global phase): I, S, Z, Sdg.
template <typename Out>
inline void lower_rz_quarter(int k, std::size_t q, Out& out) {
  switch (k) {
    case 1: out.push_back({CliffordPrim::kS, q, 0}); break;
    case 2: out.push_back({CliffordPrim::kZ, q, 0}); break;
    case 3: out.push_back({CliffordPrim::kSdg, q, 0}); break;
    default: break;  // k == 0: identity
  }
}

/// exp(-i angle/2 Z@Z) at a Clifford angle: CNOT . Rz(target) . CNOT.
template <typename Out>
inline void lower_zz_quarter(int k, std::size_t a, std::size_t b, Out& out) {
  if (k == 0) return;
  out.push_back({CliffordPrim::kCnot, a, b});
  lower_rz_quarter(k, b, out);
  out.push_back({CliffordPrim::kCnot, a, b});
}

/// Lowers a gate to primitive Clifford ops (time order). Returns false --
/// leaving `out` untouched -- when the gate is not Clifford: variational
/// rotations (param >= 0) and literal rotations off the pi/2 grid.
[[nodiscard]] inline bool lower_clifford(const circuit::Gate& g,
                                         std::vector<LoweredClifford>& out) {
  using circuit::GateKind;
  const auto rotation_turns = [&]() -> std::optional<int> {
    if (g.param >= 0) return std::nullopt;  // symbolic angle: never Clifford
    return quarter_turns(g.angle);
  };
  switch (g.kind) {
    case GateKind::kX: out.push_back({CliffordPrim::kX, g.q0, 0}); return true;
    case GateKind::kY: out.push_back({CliffordPrim::kY, g.q0, 0}); return true;
    case GateKind::kZ: out.push_back({CliffordPrim::kZ, g.q0, 0}); return true;
    case GateKind::kH: out.push_back({CliffordPrim::kH, g.q0, 0}); return true;
    case GateKind::kS: out.push_back({CliffordPrim::kS, g.q0, 0}); return true;
    case GateKind::kSdg:
      out.push_back({CliffordPrim::kSdg, g.q0, 0});
      return true;
    case GateKind::kCnot:
      out.push_back({CliffordPrim::kCnot, g.q0, g.q1});
      return true;
    case GateKind::kCz:
      out.push_back({CliffordPrim::kCz, g.q0, g.q1});
      return true;
    case GateKind::kSwap:
      out.push_back({CliffordPrim::kSwap, g.q0, g.q1});
      return true;
    case GateKind::kRz: {
      const auto k = rotation_turns();
      if (!k.has_value()) return false;
      lower_rz_quarter(*k, g.q0, out);
      return true;
    }
    case GateKind::kRx: {
      // Rx(a) = H Rz(a) H.
      const auto k = rotation_turns();
      if (!k.has_value()) return false;
      if (*k == 0) return true;
      out.push_back({CliffordPrim::kH, g.q0, 0});
      lower_rz_quarter(*k, g.q0, out);
      out.push_back({CliffordPrim::kH, g.q0, 0});
      return true;
    }
    case GateKind::kRy: {
      // Ry(a) = S H Rz(a) H Sdg (time order: Sdg, H, Rz, H, S).
      const auto k = rotation_turns();
      if (!k.has_value()) return false;
      if (*k == 0) return true;
      out.push_back({CliffordPrim::kSdg, g.q0, 0});
      out.push_back({CliffordPrim::kH, g.q0, 0});
      lower_rz_quarter(*k, g.q0, out);
      out.push_back({CliffordPrim::kH, g.q0, 0});
      out.push_back({CliffordPrim::kS, g.q0, 0});
      return true;
    }
    case GateKind::kXXrot: {
      // exp(-i a/2 X@X) = (H@H) exp(-i a/2 Z@Z) (H@H).
      const auto k = rotation_turns();
      if (!k.has_value()) return false;
      if (*k == 0) return true;
      out.push_back({CliffordPrim::kH, g.q0, 0});
      out.push_back({CliffordPrim::kH, g.q1, 0});
      lower_zz_quarter(*k, g.q0, g.q1, out);
      out.push_back({CliffordPrim::kH, g.q0, 0});
      out.push_back({CliffordPrim::kH, g.q1, 0});
      return true;
    }
    case GateKind::kXYrot: {
      // exp(-i a/2 (XX + YY)): XX and YY commute, so the XX factor above
      // followed by the YY factor (basis change Y -> Z is Sdg then H).
      const auto k = rotation_turns();
      if (!k.has_value()) return false;
      if (*k == 0) return true;
      out.push_back({CliffordPrim::kH, g.q0, 0});
      out.push_back({CliffordPrim::kH, g.q1, 0});
      lower_zz_quarter(*k, g.q0, g.q1, out);
      out.push_back({CliffordPrim::kH, g.q0, 0});
      out.push_back({CliffordPrim::kH, g.q1, 0});
      for (std::size_t q : {g.q0, g.q1}) {
        out.push_back({CliffordPrim::kSdg, q, 0});
        out.push_back({CliffordPrim::kH, q, 0});
      }
      lower_zz_quarter(*k, g.q0, g.q1, out);
      for (std::size_t q : {g.q0, g.q1}) {
        out.push_back({CliffordPrim::kH, q, 0});
        out.push_back({CliffordPrim::kS, q, 0});
      }
      return true;
    }
  }
  return false;
}

}  // namespace detail

/// One tableau row: i^phase * prod_q X^x_q Z^z_q (the PauliString symplectic
/// convention, stored flat for cheap in-place bit updates).
struct TableauRow {
  gf2::BitVec x;
  gf2::BitVec z;
  int phase = 0;  // exponent of the i^k prefactor, mod 4

  [[nodiscard]] bool operator==(const TableauRow&) const = default;

  /// Exact-phase product (same reordering rule as PauliString::operator*).
  [[nodiscard]] friend TableauRow operator*(const TableauRow& a,
                                            const TableauRow& b) {
    TableauRow out;
    out.x = a.x ^ b.x;
    out.z = a.z ^ b.z;
    int k = a.phase + b.phase;
    if (a.z.dot(b.x)) k += 2;
    out.phase = k & 3;
    return out;
  }

  [[nodiscard]] pauli::PauliString to_pauli() const {
    pauli::PauliString p(x.size());
    p.set_symplectic(x, z);
    p.set_phase_exponent(phase);
    return p;
  }
};

class StabilizerTableau {
 public:
  /// Identity tableau: X_j -> X_j, Z_j -> Z_j.
  explicit StabilizerTableau(std::size_t n) {
    img_x_.reserve(n);
    img_z_.reserve(n);
    for (std::size_t q = 0; q < n; ++q) {
      TableauRow rx{gf2::BitVec(n), gf2::BitVec(n), 0};
      rx.x.set(q, true);
      TableauRow rz{gf2::BitVec(n), gf2::BitVec(n), 0};
      rz.z.set(q, true);
      img_x_.push_back(std::move(rx));
      img_z_.push_back(std::move(rz));
    }
  }

  [[nodiscard]] std::size_t num_qubits() const { return img_x_.size(); }
  [[nodiscard]] const TableauRow& image_x(std::size_t q) const {
    return img_x_[q];
  }
  [[nodiscard]] const TableauRow& image_z(std::size_t q) const {
    return img_z_[q];
  }

  [[nodiscard]] bool operator==(const StabilizerTableau&) const = default;

  [[nodiscard]] bool is_identity() const {
    const StabilizerTableau id(num_qubits());
    return *this == id;
  }

  /// U P U^dag for the represented U, with exact phase (generator products,
  /// like pauli::CliffordMap::apply but over the packed rows).
  [[nodiscard]] pauli::PauliString apply(const pauli::PauliString& p) const {
    FEMTO_EXPECTS(p.num_qubits() == num_qubits());
    TableauRow out{gf2::BitVec(num_qubits()), gf2::BitVec(num_qubits()), 0};
    for (std::size_t q = 0; q < num_qubits(); ++q) {
      if (p.x().get(q)) out = out * img_x_[q];
      if (p.z().get(q)) out = out * img_z_[q];
    }
    out.phase = (out.phase + p.phase_exponent()) & 3;
    return out.to_pauli();
  }

  // --- forward composition: tableau <- conj_g o tableau -----------------
  //
  // Folding a circuit gate-by-gate in time order yields the conjugation map
  // of the whole circuit. Returns false (tableau unchanged) on non-Clifford
  // gates.

  [[nodiscard]] bool then_gate(const circuit::Gate& g) {
    std::vector<detail::LoweredClifford> prims;
    if (!detail::lower_clifford(g, prims)) return false;
    for (const auto& p : prims) then_prim(p);
    return true;
  }

  /// Tableau of a whole circuit; nullopt when any gate is non-Clifford.
  [[nodiscard]] static std::optional<StabilizerTableau> from_circuit(
      const circuit::QuantumCircuit& c) {
    StabilizerTableau t(c.num_qubits());
    for (const circuit::Gate& g : c.gates())
      if (!t.then_gate(g)) return std::nullopt;
    return t;
  }

  // --- input-side composition: tableau <- tableau o conj_{g^dag} --------
  //
  // Feeding circuit gates in time order builds the map P -> C^dag P C of
  // the accumulated Clifford prefix C -- what Pauli propagation conjugates
  // rotations with. Returns false (tableau unchanged) on non-Clifford
  // gates.

  [[nodiscard]] bool input_gate(const circuit::Gate& g) {
    std::vector<detail::LoweredClifford> prims;
    if (!detail::lower_clifford(g, prims)) return false;
    for (const auto& p : prims) input_prim(p);
    return true;
  }

 private:
  using Prim = detail::CliffordPrim;

  /// Conjugates every row by one primitive: CHP column updates in the i^k
  /// convention (phase deltas derived from X^x Z^z reordering; the CNOT and
  /// SWAP updates are phase-free in this convention).
  void then_prim(const detail::LoweredClifford& p) {
    const std::size_t a = p.q0;
    const std::size_t b = p.q1;
    for (auto* table : {&img_x_, &img_z_}) {
      for (TableauRow& r : *table) {
        const bool xa = r.x.get(a);
        const bool za = r.z.get(a);
        switch (p.prim) {
          case Prim::kH:
            if (xa && za) r.phase = (r.phase + 2) & 3;
            r.x.set(a, za);
            r.z.set(a, xa);
            break;
          case Prim::kS:
            if (xa) {
              r.phase = (r.phase + 1) & 3;
              r.z.flip(a);
            }
            break;
          case Prim::kSdg:
            if (xa) {
              r.phase = (r.phase + 3) & 3;
              r.z.flip(a);
            }
            break;
          case Prim::kX:
            if (za) r.phase = (r.phase + 2) & 3;
            break;
          case Prim::kY:
            if (xa != za) r.phase = (r.phase + 2) & 3;
            break;
          case Prim::kZ:
            if (xa) r.phase = (r.phase + 2) & 3;
            break;
          case Prim::kCnot:
            if (xa) r.x.flip(b);
            if (r.z.get(b)) r.z.flip(a);
            break;
          case Prim::kCz:
            if (xa && r.x.get(b)) r.phase = (r.phase + 2) & 3;
            if (r.x.get(b)) r.z.flip(a);
            if (xa) r.z.flip(b);
            break;
          case Prim::kSwap: {
            const bool xb = r.x.get(b);
            const bool zb = r.z.get(b);
            r.x.set(a, xb);
            r.x.set(b, xa);
            r.z.set(a, zb);
            r.z.set(b, za);
            break;
          }
        }
      }
    }
  }

  /// Pre-composes with conj_{p^dag}: the images of the generators the
  /// primitive touches are recombined from current rows via exact-phase row
  /// products (e.g. CNOT: X_c -> X_c X_t, so img_x[c] *= img_x[t]).
  void input_prim(const detail::LoweredClifford& p) {
    const std::size_t a = p.q0;
    const std::size_t b = p.q1;
    switch (p.prim) {
      case Prim::kH:
        // H X H = Z, H Z H = X.
        std::swap(img_x_[a], img_z_[a]);
        break;
      case Prim::kS:
        // conj by S^dag: X -> -Y = i^3 X Z.
        img_x_[a] = img_x_[a] * img_z_[a];
        img_x_[a].phase = (img_x_[a].phase + 3) & 3;
        break;
      case Prim::kSdg:
        // conj by S: X -> Y = i X Z.
        img_x_[a] = img_x_[a] * img_z_[a];
        img_x_[a].phase = (img_x_[a].phase + 1) & 3;
        break;
      case Prim::kX:
        img_z_[a].phase = (img_z_[a].phase + 2) & 3;
        break;
      case Prim::kY:
        img_x_[a].phase = (img_x_[a].phase + 2) & 3;
        img_z_[a].phase = (img_z_[a].phase + 2) & 3;
        break;
      case Prim::kZ:
        img_x_[a].phase = (img_x_[a].phase + 2) & 3;
        break;
      case Prim::kCnot:
        // X_c -> X_c X_t, Z_t -> Z_c Z_t; X_t and Z_c fixed.
        img_x_[a] = img_x_[a] * img_x_[b];
        img_z_[b] = img_z_[a] * img_z_[b];
        break;
      case Prim::kCz:
        // X_a -> X_a Z_b, X_b -> X_b Z_a; Z images fixed.
        img_x_[a] = img_x_[a] * img_z_[b];
        img_x_[b] = img_x_[b] * img_z_[a];
        break;
      case Prim::kSwap:
        std::swap(img_x_[a], img_x_[b]);
        std::swap(img_z_[a], img_z_[b]);
        break;
    }
  }

  std::vector<TableauRow> img_x_;
  std::vector<TableauRow> img_z_;
};

/// First generator whose images differ between two tableaus, as a
/// human-readable string; empty when the tableaus agree. Row q reports the
/// X_q image, row n+q the Z_q image.
[[nodiscard]] inline std::string tableau_mismatch(const StabilizerTableau& a,
                                                  const StabilizerTableau& b) {
  FEMTO_EXPECTS(a.num_qubits() == b.num_qubits());
  for (std::size_t q = 0; q < a.num_qubits(); ++q) {
    if (!(a.image_x(q) == b.image_x(q)))
      return "image of X_" + std::to_string(q) + " differs: " +
             a.image_x(q).to_pauli().to_string() + " vs " +
             b.image_x(q).to_pauli().to_string();
    if (!(a.image_z(q) == b.image_z(q)))
      return "image of Z_" + std::to_string(q) + " differs: " +
             a.image_z(q).to_pauli().to_string() + " vs " +
             b.image_z(q).to_pauli().to_string();
  }
  return {};
}

}  // namespace femto::sim
