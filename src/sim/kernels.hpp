// Stride-based two-level statevector kernels.
//
// Every kernel enumerates exactly the index groups it touches -- 2^(n-1)
// amplitude pairs for a single-qubit gate, 2^(n-2) quadruples for a
// two-qubit gate -- instead of scanning all 2^n basis indices and branching
// per index. The innermost loop is always a contiguous run, and the run
// bodies live in the `runs` namespace as SIMD-dispatched primitives with
// three levels (common/simd.hpp): a portable scalar loop (the reference
// semantics), AVX2, and AVX-512. Gates with structure get cheaper paths:
//   - diagonal gates fuse into one streaming multiply pass,
//   - anti-diagonal gates (X, Y) become scaled block swaps,
//   - real matrices (H, Ry) run on the interleaved double lanes,
//   - Pauli exponentials decompose into constant-phase sub-runs (the phase
//     parity of (i & z) is constant over aligned runs of 1 << ctz(z)
//     indices), so even the packed-mask kernels are straight-line vector
//     code with no per-index popcount.
//
// BIT-IDENTITY CONTRACT (the PR-5 rule, extended to SIMD): every dispatch
// level performs the identical floating-point operations in the identical
// order *per element* -- vector paths reorder work across independent
// elements only, never within one element's arithmetic. Concretely: complex
// multiplies expand to the same mul/sub/add trees as std::complex
// operator*, negation is a sign-bit flip at every level, and the build sets
// -ffp-contract=off so no FMA contraction can change rounding between
// levels. tests/test_simd.cpp pins byte-equality of the amplitudes across
// all levels for every gate kind, and bench_statevector re-checks it in CI
// (simd_bit_identical == 1).
//
// With FEMTO_OPENMP defined (CMake option FEMTO_OPENMP) the outer stride
// loops run under an OpenMP parallel-for once the state is large enough to
// amortize the fork. Known limitation: the pragma sits on the outer stride
// loop, so a gate whose (highest) qubit is near the top of the register has
// few outer iterations and degrades toward serial; low- and mid-qubit gates
// parallelize fully.
#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <complex>
#include <cstddef>
#include <cstdint>

#include "common/assert.hpp"
#include "common/simd.hpp"

#if FEMTO_SIMD_X86
#include <immintrin.h>
#endif

#if defined(FEMTO_OPENMP)
#define FEMTO_OMP_FOR _Pragma("omp parallel for schedule(static) if (omp_on)")
#else
#define FEMTO_OMP_FOR
#endif

namespace femto::sim::kernels {

using Complex = std::complex<double>;

/// States below this size are applied serially even when OpenMP is enabled.
inline constexpr std::size_t kOmpMinDim = std::size_t{1} << 17;

// --- contiguous-run primitives --------------------------------------------
//
// All primitives take interleaved re/im doubles (or Complex*, same layout)
// and a run length in COMPLEX elements. The portable loops are the
// semantics; the AVX2/AVX-512 bodies compute the same per-element op trees
// across 2/4 complex lanes and finish odd tails with the portable code.

namespace runs {

namespace detail {

// Portable bodies. These define the op order every level must match:
//   complex * complex  ->  (ar*br - ai*bi, ar*bi + ai*br)   [std::complex]
//   double  * complex  ->  (c*br, c*bi)                      [real scale]
//   -x                 ->  sign-bit flip on both components.
//
// They are deliberately noinline: inlined into a target("avx512...") sibling
// as the odd-tail fallback, GCC auto-vectorizes the complex-multiply shape
// into vfmaddsub -- and that ADDSUB fusion ignores -ffp-contract=off (the
// RTL combine pattern is not gated on the contraction mode), silently
// changing tail rounding and breaking the bit-identity contract. A single
// default-target compilation serves both the portable dispatch branch and
// every SIMD kernel's remainder loop.
#if defined(__GNUC__) || defined(__clang__)
#define FEMTO_SIMD_REF __attribute__((noinline))
#else
#define FEMTO_SIMD_REF
#endif

FEMTO_SIMD_REF inline void scale_portable(double* d, std::size_t count,
                                          double sr, double si) {
  if (si == 0.0) {
    for (std::size_t j = 0; j < 2 * count; ++j) d[j] *= sr;
    return;
  }
  for (std::size_t i = 0; i < count; ++i) {
    const double x = d[2 * i], y = d[2 * i + 1];
    d[2 * i] = x * sr - y * si;
    d[2 * i + 1] = x * si + y * sr;
  }
}

FEMTO_SIMD_REF inline void real2x2_portable(double* p0, double* p1, std::size_t len,
                             double r00, double r01, double r10, double r11) {
  for (std::size_t j = 0; j < len; ++j) {
    const double x0 = p0[j], x1 = p1[j];
    p0[j] = r00 * x0 + r01 * x1;
    p1[j] = r10 * x0 + r11 * x1;
  }
}

FEMTO_SIMD_REF inline void cmul2x2_portable(Complex* lo, Complex* hi, std::size_t count,
                             Complex m00, Complex m01, Complex m10,
                             Complex m11) {
  for (std::size_t i = 0; i < count; ++i) {
    const Complex a0 = lo[i], a1 = hi[i];
    lo[i] = m00 * a0 + m01 * a1;
    hi[i] = m10 * a0 + m11 * a1;
  }
}

FEMTO_SIMD_REF inline void cross_mul_portable(Complex* lo, Complex* hi, std::size_t count,
                               Complex m01, Complex m10) {
  for (std::size_t i = 0; i < count; ++i) {
    const Complex x0 = lo[i];
    lo[i] = m01 * hi[i];
    hi[i] = m10 * x0;
  }
}

FEMTO_SIMD_REF inline void negate_portable(double* d, std::size_t len) {
  for (std::size_t j = 0; j < len; ++j) d[j] = -d[j];
}

FEMTO_SIMD_REF inline void swap_portable(Complex* x, Complex* y, std::size_t count) {
  std::swap_ranges(x, x + count, y);
}

FEMTO_SIMD_REF inline void rot2_portable(Complex* p, Complex* q, std::size_t count, double c,
                          Complex u, Complex v) {
  for (std::size_t i = 0; i < count; ++i) {
    const Complex pi = p[i], qi = q[i];
    p[i] = c * pi + u * qi;
    q[i] = c * qi + v * pi;
  }
}

FEMTO_SIMD_REF inline void axpy_portable(Complex* out, const Complex* src, std::size_t count,
                          Complex w) {
  for (std::size_t i = 0; i < count; ++i) out[i] += w * src[i];
}

// Per-lane variants for the batched API: the coefficient differs per
// complex element and arrives as lane-DUPLICATED double arrays of length
// 2*count ([c0, c0, c1, c1, ...]) so vector loads line up with the
// interleaved amplitudes. The si==0 branch of scale becomes a per-element
// select so a lane with a purely real factor multiplies exactly like the
// shared-kernel fast path would.

FEMTO_SIMD_REF inline void scale_lanes_portable(double* d, std::size_t count,
                                 const double* frd, const double* fid) {
  for (std::size_t i = 0; i < count; ++i) {
    const double sr = frd[2 * i], si = fid[2 * i];
    const double x = d[2 * i], y = d[2 * i + 1];
    if (si == 0.0) {
      d[2 * i] = x * sr;
      d[2 * i + 1] = y * sr;
    } else {
      d[2 * i] = x * sr - y * si;
      d[2 * i + 1] = x * si + y * sr;
    }
  }
}

FEMTO_SIMD_REF inline void rot2_lanes_portable(Complex* p, Complex* q, std::size_t count,
                                const double* cd, const double* ur,
                                const double* ui, const double* vr,
                                const double* vi) {
  for (std::size_t i = 0; i < count; ++i) {
    const double c = cd[2 * i];
    const Complex u{ur[2 * i], ui[2 * i]};
    const Complex v{vr[2 * i], vi[2 * i]};
    const Complex pi = p[i], qi = q[i];
    p[i] = c * pi + u * qi;
    q[i] = c * qi + v * pi;
  }
}

#if FEMTO_SIMD_X86

// ---- AVX2 (2 complex per 256-bit vector) ---------------------------------

// Complex multiply of interleaved pairs v by the constant whose real parts
// are broadcast in cr and imaginary parts in ci:
//   even lane: v.re*cr - v.im*ci     odd lane: v.im*cr + v.re*ci
// Same multiplies and same add/sub per element as std::complex operator*
// (products commute operand-wise; IEEE a+b == b+a bitwise).
__attribute__((target("avx2"))) inline __m256d cmul_avx2(__m256d v, __m256d cr,
                                                         __m256d ci) {
  const __m256d t = _mm256_mul_pd(v, cr);
  const __m256d vs = _mm256_shuffle_pd(v, v, 0x5);  // swap re/im per pair
  return _mm256_addsub_pd(t, _mm256_mul_pd(vs, ci));
}

__attribute__((target("avx2"))) inline void scale_avx2(double* d,
                                                       std::size_t count,
                                                       double sr, double si) {
  const __m256d vr = _mm256_set1_pd(sr);
  std::size_t i = 0;
  if (si == 0.0) {
    for (; i + 2 <= count; i += 2) {
      const __m256d v = _mm256_loadu_pd(d + 2 * i);
      _mm256_storeu_pd(d + 2 * i, _mm256_mul_pd(v, vr));
    }
  } else {
    const __m256d vi = _mm256_set1_pd(si);
    for (; i + 2 <= count; i += 2) {
      const __m256d v = _mm256_loadu_pd(d + 2 * i);
      _mm256_storeu_pd(d + 2 * i, cmul_avx2(v, vr, vi));
    }
  }
  scale_portable(d + 2 * i, count - i, sr, si);
}

__attribute__((target("avx2"))) inline void real2x2_avx2(
    double* p0, double* p1, std::size_t len, double r00, double r01,
    double r10, double r11) {
  const __m256d v00 = _mm256_set1_pd(r00), v01 = _mm256_set1_pd(r01);
  const __m256d v10 = _mm256_set1_pd(r10), v11 = _mm256_set1_pd(r11);
  std::size_t j = 0;
  for (; j + 4 <= len; j += 4) {
    const __m256d x0 = _mm256_loadu_pd(p0 + j);
    const __m256d x1 = _mm256_loadu_pd(p1 + j);
    _mm256_storeu_pd(
        p0 + j, _mm256_add_pd(_mm256_mul_pd(v00, x0), _mm256_mul_pd(v01, x1)));
    _mm256_storeu_pd(
        p1 + j, _mm256_add_pd(_mm256_mul_pd(v10, x0), _mm256_mul_pd(v11, x1)));
  }
  for (; j < len; ++j) {
    const double x0 = p0[j], x1 = p1[j];
    p0[j] = r00 * x0 + r01 * x1;
    p1[j] = r10 * x0 + r11 * x1;
  }
}

__attribute__((target("avx2"))) inline void cmul2x2_avx2(
    Complex* lo, Complex* hi, std::size_t count, Complex m00, Complex m01,
    Complex m10, Complex m11) {
  double* plo = reinterpret_cast<double*>(lo);
  double* phi = reinterpret_cast<double*>(hi);
  const __m256d r00 = _mm256_set1_pd(m00.real()),
                i00 = _mm256_set1_pd(m00.imag());
  const __m256d r01 = _mm256_set1_pd(m01.real()),
                i01 = _mm256_set1_pd(m01.imag());
  const __m256d r10 = _mm256_set1_pd(m10.real()),
                i10 = _mm256_set1_pd(m10.imag());
  const __m256d r11 = _mm256_set1_pd(m11.real()),
                i11 = _mm256_set1_pd(m11.imag());
  std::size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const __m256d a0 = _mm256_loadu_pd(plo + 2 * i);
    const __m256d a1 = _mm256_loadu_pd(phi + 2 * i);
    _mm256_storeu_pd(plo + 2 * i,
                     _mm256_add_pd(cmul_avx2(a0, r00, i00),
                                   cmul_avx2(a1, r01, i01)));
    _mm256_storeu_pd(phi + 2 * i,
                     _mm256_add_pd(cmul_avx2(a0, r10, i10),
                                   cmul_avx2(a1, r11, i11)));
  }
  cmul2x2_portable(lo + i, hi + i, count - i, m00, m01, m10, m11);
}

__attribute__((target("avx2"))) inline void cross_mul_avx2(
    Complex* lo, Complex* hi, std::size_t count, Complex m01, Complex m10) {
  double* plo = reinterpret_cast<double*>(lo);
  double* phi = reinterpret_cast<double*>(hi);
  const __m256d r01 = _mm256_set1_pd(m01.real()),
                i01 = _mm256_set1_pd(m01.imag());
  const __m256d r10 = _mm256_set1_pd(m10.real()),
                i10 = _mm256_set1_pd(m10.imag());
  std::size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const __m256d a0 = _mm256_loadu_pd(plo + 2 * i);
    const __m256d a1 = _mm256_loadu_pd(phi + 2 * i);
    _mm256_storeu_pd(plo + 2 * i, cmul_avx2(a1, r01, i01));
    _mm256_storeu_pd(phi + 2 * i, cmul_avx2(a0, r10, i10));
  }
  cross_mul_portable(lo + i, hi + i, count - i, m01, m10);
}

__attribute__((target("avx2"))) inline void negate_avx2(double* d,
                                                        std::size_t len) {
  const __m256d sign = _mm256_set1_pd(-0.0);
  std::size_t j = 0;
  for (; j + 4 <= len; j += 4) {
    _mm256_storeu_pd(d + j, _mm256_xor_pd(_mm256_loadu_pd(d + j), sign));
  }
  for (; j < len; ++j) d[j] = -d[j];
}

__attribute__((target("avx2"))) inline void swap_avx2(Complex* x, Complex* y,
                                                      std::size_t count) {
  double* px = reinterpret_cast<double*>(x);
  double* py = reinterpret_cast<double*>(y);
  std::size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const __m256d vx = _mm256_loadu_pd(px + 2 * i);
    const __m256d vy = _mm256_loadu_pd(py + 2 * i);
    _mm256_storeu_pd(px + 2 * i, vy);
    _mm256_storeu_pd(py + 2 * i, vx);
  }
  if (i < count) swap_portable(x + i, y + i, count - i);
}

__attribute__((target("avx2"))) inline void rot2_avx2(Complex* p, Complex* q,
                                                      std::size_t count,
                                                      double c, Complex u,
                                                      Complex v) {
  double* pp = reinterpret_cast<double*>(p);
  double* pq = reinterpret_cast<double*>(q);
  const __m256d vc = _mm256_set1_pd(c);
  const __m256d ur = _mm256_set1_pd(u.real()), ui = _mm256_set1_pd(u.imag());
  const __m256d vr = _mm256_set1_pd(v.real()), vi = _mm256_set1_pd(v.imag());
  std::size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const __m256d vp = _mm256_loadu_pd(pp + 2 * i);
    const __m256d vq = _mm256_loadu_pd(pq + 2 * i);
    _mm256_storeu_pd(pp + 2 * i, _mm256_add_pd(_mm256_mul_pd(vc, vp),
                                               cmul_avx2(vq, ur, ui)));
    _mm256_storeu_pd(pq + 2 * i, _mm256_add_pd(_mm256_mul_pd(vc, vq),
                                               cmul_avx2(vp, vr, vi)));
  }
  rot2_portable(p + i, q + i, count - i, c, u, v);
}

__attribute__((target("avx2"))) inline void axpy_avx2(Complex* out,
                                                      const Complex* src,
                                                      std::size_t count,
                                                      Complex w) {
  double* po = reinterpret_cast<double*>(out);
  const double* ps = reinterpret_cast<const double*>(src);
  const __m256d wr = _mm256_set1_pd(w.real()), wi = _mm256_set1_pd(w.imag());
  std::size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const __m256d vo = _mm256_loadu_pd(po + 2 * i);
    const __m256d vs = _mm256_loadu_pd(ps + 2 * i);
    _mm256_storeu_pd(po + 2 * i, _mm256_add_pd(vo, cmul_avx2(vs, wr, wi)));
  }
  axpy_portable(out + i, src + i, count - i, w);
}

__attribute__((target("avx2"))) inline void scale_lanes_avx2(
    double* d, std::size_t count, const double* frd, const double* fid) {
  const __m256d zero = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const __m256d v = _mm256_loadu_pd(d + 2 * i);
    const __m256d vr = _mm256_loadu_pd(frd + 2 * i);
    const __m256d vi = _mm256_loadu_pd(fid + 2 * i);
    const __m256d full = cmul_avx2(v, vr, vi);
    const __m256d real_only = _mm256_mul_pd(v, vr);
    // Per-element select reproduces the si==0 fast path of scale().
    const __m256d is_real = _mm256_cmp_pd(vi, zero, _CMP_EQ_OQ);
    _mm256_storeu_pd(d + 2 * i, _mm256_blendv_pd(full, real_only, is_real));
  }
  scale_lanes_portable(d + 2 * i, count - i, frd + 2 * i, fid + 2 * i);
}

__attribute__((target("avx2"))) inline void rot2_lanes_avx2(
    Complex* p, Complex* q, std::size_t count, const double* cd,
    const double* ur, const double* ui, const double* vr, const double* vi) {
  double* pp = reinterpret_cast<double*>(p);
  double* pq = reinterpret_cast<double*>(q);
  std::size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const __m256d vp = _mm256_loadu_pd(pp + 2 * i);
    const __m256d vq = _mm256_loadu_pd(pq + 2 * i);
    const __m256d vc = _mm256_loadu_pd(cd + 2 * i);
    const __m256d vur = _mm256_loadu_pd(ur + 2 * i);
    const __m256d vui = _mm256_loadu_pd(ui + 2 * i);
    const __m256d vvr = _mm256_loadu_pd(vr + 2 * i);
    const __m256d vvi = _mm256_loadu_pd(vi + 2 * i);
    _mm256_storeu_pd(pp + 2 * i, _mm256_add_pd(_mm256_mul_pd(vc, vp),
                                               cmul_avx2(vq, vur, vui)));
    _mm256_storeu_pd(pq + 2 * i, _mm256_add_pd(_mm256_mul_pd(vc, vq),
                                               cmul_avx2(vp, vvr, vvi)));
  }
  rot2_lanes_portable(p + i, q + i, count - i, cd + 2 * i, ur + 2 * i,
                      ui + 2 * i, vr + 2 * i, vi + 2 * i);
}

// ---- AVX-512 (4 complex per 512-bit vector) ------------------------------

// GCC 12's avx512fintrin.h trips -Wmaybe-uninitialized on internal
// temporaries of some intrinsics (GCC PR 105593); suppress for this block.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#define FEMTO_TARGET_AVX512 \
  __attribute__((target("avx512f,avx512bw,avx512dq,avx512vl")))

// Sign-bit flip on the REAL (even) lanes: t + (u ^ this) == t - u on even
// lanes and t + u on odd lanes -- the AVX-512 spelling of addsub. IEEE
// x + (-y) is bitwise x - y, so this matches the scalar op tree exactly.
FEMTO_TARGET_AVX512 inline __m512d addsub_avx512(__m512d t, __m512d u) {
  const __m512d flip_even = _mm512_castsi512_pd(_mm512_set_epi64(
      0, static_cast<long long>(0x8000000000000000ULL), 0,
      static_cast<long long>(0x8000000000000000ULL), 0,
      static_cast<long long>(0x8000000000000000ULL), 0,
      static_cast<long long>(0x8000000000000000ULL)));
  return _mm512_add_pd(t, _mm512_xor_pd(u, flip_even));
}

FEMTO_TARGET_AVX512 inline __m512d cmul_avx512(__m512d v, __m512d cr,
                                               __m512d ci) {
  const __m512d t = _mm512_mul_pd(v, cr);
  const __m512d vs = _mm512_permute_pd(v, 0x55);  // swap re/im per pair
  return addsub_avx512(t, _mm512_mul_pd(vs, ci));
}

FEMTO_TARGET_AVX512 inline void scale_avx512(double* d, std::size_t count,
                                             double sr, double si) {
  const __m512d vr = _mm512_set1_pd(sr);
  std::size_t i = 0;
  if (si == 0.0) {
    for (; i + 4 <= count; i += 4) {
      const __m512d v = _mm512_loadu_pd(d + 2 * i);
      _mm512_storeu_pd(d + 2 * i, _mm512_mul_pd(v, vr));
    }
  } else {
    const __m512d vi = _mm512_set1_pd(si);
    for (; i + 4 <= count; i += 4) {
      const __m512d v = _mm512_loadu_pd(d + 2 * i);
      _mm512_storeu_pd(d + 2 * i, cmul_avx512(v, vr, vi));
    }
  }
  scale_portable(d + 2 * i, count - i, sr, si);
}

FEMTO_TARGET_AVX512 inline void real2x2_avx512(double* p0, double* p1,
                                               std::size_t len, double r00,
                                               double r01, double r10,
                                               double r11) {
  const __m512d v00 = _mm512_set1_pd(r00), v01 = _mm512_set1_pd(r01);
  const __m512d v10 = _mm512_set1_pd(r10), v11 = _mm512_set1_pd(r11);
  std::size_t j = 0;
  for (; j + 8 <= len; j += 8) {
    const __m512d x0 = _mm512_loadu_pd(p0 + j);
    const __m512d x1 = _mm512_loadu_pd(p1 + j);
    _mm512_storeu_pd(
        p0 + j, _mm512_add_pd(_mm512_mul_pd(v00, x0), _mm512_mul_pd(v01, x1)));
    _mm512_storeu_pd(
        p1 + j, _mm512_add_pd(_mm512_mul_pd(v10, x0), _mm512_mul_pd(v11, x1)));
  }
  for (; j < len; ++j) {
    const double x0 = p0[j], x1 = p1[j];
    p0[j] = r00 * x0 + r01 * x1;
    p1[j] = r10 * x0 + r11 * x1;
  }
}

FEMTO_TARGET_AVX512 inline void cmul2x2_avx512(Complex* lo, Complex* hi,
                                               std::size_t count, Complex m00,
                                               Complex m01, Complex m10,
                                               Complex m11) {
  double* plo = reinterpret_cast<double*>(lo);
  double* phi = reinterpret_cast<double*>(hi);
  const __m512d r00 = _mm512_set1_pd(m00.real()),
                i00 = _mm512_set1_pd(m00.imag());
  const __m512d r01 = _mm512_set1_pd(m01.real()),
                i01 = _mm512_set1_pd(m01.imag());
  const __m512d r10 = _mm512_set1_pd(m10.real()),
                i10 = _mm512_set1_pd(m10.imag());
  const __m512d r11 = _mm512_set1_pd(m11.real()),
                i11 = _mm512_set1_pd(m11.imag());
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m512d a0 = _mm512_loadu_pd(plo + 2 * i);
    const __m512d a1 = _mm512_loadu_pd(phi + 2 * i);
    _mm512_storeu_pd(plo + 2 * i, _mm512_add_pd(cmul_avx512(a0, r00, i00),
                                                cmul_avx512(a1, r01, i01)));
    _mm512_storeu_pd(phi + 2 * i, _mm512_add_pd(cmul_avx512(a0, r10, i10),
                                                cmul_avx512(a1, r11, i11)));
  }
  cmul2x2_portable(lo + i, hi + i, count - i, m00, m01, m10, m11);
}

FEMTO_TARGET_AVX512 inline void cross_mul_avx512(Complex* lo, Complex* hi,
                                                 std::size_t count,
                                                 Complex m01, Complex m10) {
  double* plo = reinterpret_cast<double*>(lo);
  double* phi = reinterpret_cast<double*>(hi);
  const __m512d r01 = _mm512_set1_pd(m01.real()),
                i01 = _mm512_set1_pd(m01.imag());
  const __m512d r10 = _mm512_set1_pd(m10.real()),
                i10 = _mm512_set1_pd(m10.imag());
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m512d a0 = _mm512_loadu_pd(plo + 2 * i);
    const __m512d a1 = _mm512_loadu_pd(phi + 2 * i);
    _mm512_storeu_pd(plo + 2 * i, cmul_avx512(a1, r01, i01));
    _mm512_storeu_pd(phi + 2 * i, cmul_avx512(a0, r10, i10));
  }
  cross_mul_portable(lo + i, hi + i, count - i, m01, m10);
}

FEMTO_TARGET_AVX512 inline void negate_avx512(double* d, std::size_t len) {
  const __m512d sign = _mm512_set1_pd(-0.0);
  std::size_t j = 0;
  for (; j + 8 <= len; j += 8)
    _mm512_storeu_pd(d + j, _mm512_xor_pd(_mm512_loadu_pd(d + j), sign));
  for (; j < len; ++j) d[j] = -d[j];
}

FEMTO_TARGET_AVX512 inline void swap_avx512(Complex* x, Complex* y,
                                            std::size_t count) {
  double* px = reinterpret_cast<double*>(x);
  double* py = reinterpret_cast<double*>(y);
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m512d vx = _mm512_loadu_pd(px + 2 * i);
    const __m512d vy = _mm512_loadu_pd(py + 2 * i);
    _mm512_storeu_pd(px + 2 * i, vy);
    _mm512_storeu_pd(py + 2 * i, vx);
  }
  if (i < count) swap_portable(x + i, y + i, count - i);
}

FEMTO_TARGET_AVX512 inline void rot2_avx512(Complex* p, Complex* q,
                                            std::size_t count, double c,
                                            Complex u, Complex v) {
  double* pp = reinterpret_cast<double*>(p);
  double* pq = reinterpret_cast<double*>(q);
  const __m512d vc = _mm512_set1_pd(c);
  const __m512d ur = _mm512_set1_pd(u.real()), ui = _mm512_set1_pd(u.imag());
  const __m512d vr = _mm512_set1_pd(v.real()), vi = _mm512_set1_pd(v.imag());
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m512d vp = _mm512_loadu_pd(pp + 2 * i);
    const __m512d vq = _mm512_loadu_pd(pq + 2 * i);
    _mm512_storeu_pd(pp + 2 * i, _mm512_add_pd(_mm512_mul_pd(vc, vp),
                                               cmul_avx512(vq, ur, ui)));
    _mm512_storeu_pd(pq + 2 * i, _mm512_add_pd(_mm512_mul_pd(vc, vq),
                                               cmul_avx512(vp, vr, vi)));
  }
  rot2_portable(p + i, q + i, count - i, c, u, v);
}

FEMTO_TARGET_AVX512 inline void axpy_avx512(Complex* out, const Complex* src,
                                            std::size_t count, Complex w) {
  double* po = reinterpret_cast<double*>(out);
  const double* ps = reinterpret_cast<const double*>(src);
  const __m512d wr = _mm512_set1_pd(w.real()), wi = _mm512_set1_pd(w.imag());
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m512d vo = _mm512_loadu_pd(po + 2 * i);
    const __m512d vs = _mm512_loadu_pd(ps + 2 * i);
    _mm512_storeu_pd(po + 2 * i, _mm512_add_pd(vo, cmul_avx512(vs, wr, wi)));
  }
  axpy_portable(out + i, src + i, count - i, w);
}

FEMTO_TARGET_AVX512 inline void scale_lanes_avx512(double* d,
                                                   std::size_t count,
                                                   const double* frd,
                                                   const double* fid) {
  const __m512d zero = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m512d v = _mm512_loadu_pd(d + 2 * i);
    const __m512d vr = _mm512_loadu_pd(frd + 2 * i);
    const __m512d vi = _mm512_loadu_pd(fid + 2 * i);
    const __m512d full = cmul_avx512(v, vr, vi);
    const __m512d real_only = _mm512_mul_pd(v, vr);
    const __mmask8 is_real = _mm512_cmp_pd_mask(vi, zero, _CMP_EQ_OQ);
    _mm512_storeu_pd(d + 2 * i, _mm512_mask_mov_pd(full, is_real, real_only));
  }
  scale_lanes_portable(d + 2 * i, count - i, frd + 2 * i, fid + 2 * i);
}

FEMTO_TARGET_AVX512 inline void rot2_lanes_avx512(
    Complex* p, Complex* q, std::size_t count, const double* cd,
    const double* ur, const double* ui, const double* vr, const double* vi) {
  double* pp = reinterpret_cast<double*>(p);
  double* pq = reinterpret_cast<double*>(q);
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m512d vp = _mm512_loadu_pd(pp + 2 * i);
    const __m512d vq = _mm512_loadu_pd(pq + 2 * i);
    const __m512d vc = _mm512_loadu_pd(cd + 2 * i);
    const __m512d vur = _mm512_loadu_pd(ur + 2 * i);
    const __m512d vui = _mm512_loadu_pd(ui + 2 * i);
    const __m512d vvr = _mm512_loadu_pd(vr + 2 * i);
    const __m512d vvi = _mm512_loadu_pd(vi + 2 * i);
    _mm512_storeu_pd(pp + 2 * i, _mm512_add_pd(_mm512_mul_pd(vc, vp),
                                               cmul_avx512(vq, vur, vui)));
    _mm512_storeu_pd(pq + 2 * i, _mm512_add_pd(_mm512_mul_pd(vc, vq),
                                               cmul_avx512(vp, vvr, vvi)));
  }
  rot2_lanes_portable(p + i, q + i, count - i, cd + 2 * i, ur + 2 * i,
                      ui + 2 * i, vr + 2 * i, vi + 2 * i);
}

#undef FEMTO_TARGET_AVX512

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

#endif  // FEMTO_SIMD_X86

}  // namespace detail

/// run *= (sr + i*si) over `count` complex values. si == 0 takes a
/// real-multiply fast path (same branch at every level).
inline void scale(double* d, std::size_t count, double sr, double si) {
#if FEMTO_SIMD_X86
  switch (simd::level()) {
    case simd::Level::kAvx512:
      detail::scale_avx512(d, count, sr, si);
      return;
    case simd::Level::kAvx2:
      detail::scale_avx2(d, count, sr, si);
      return;
    default:
      break;
  }
#endif
  detail::scale_portable(d, count, sr, si);
}

/// Real 2x2 on interleaved double lanes: p0/p1 are runs of `len` doubles.
inline void real2x2(double* p0, double* p1, std::size_t len, double r00,
                    double r01, double r10, double r11) {
#if FEMTO_SIMD_X86
  switch (simd::level()) {
    case simd::Level::kAvx512:
      detail::real2x2_avx512(p0, p1, len, r00, r01, r10, r11);
      return;
    case simd::Level::kAvx2:
      detail::real2x2_avx2(p0, p1, len, r00, r01, r10, r11);
      return;
    default:
      break;
  }
#endif
  detail::real2x2_portable(p0, p1, len, r00, r01, r10, r11);
}

/// General complex 2x2: lo[i], hi[i] <- m00*lo[i]+m01*hi[i], m10*lo[i]+m11*hi[i].
inline void cmul2x2(Complex* lo, Complex* hi, std::size_t count, Complex m00,
                    Complex m01, Complex m10, Complex m11) {
#if FEMTO_SIMD_X86
  switch (simd::level()) {
    case simd::Level::kAvx512:
      detail::cmul2x2_avx512(lo, hi, count, m00, m01, m10, m11);
      return;
    case simd::Level::kAvx2:
      detail::cmul2x2_avx2(lo, hi, count, m00, m01, m10, m11);
      return;
    default:
      break;
  }
#endif
  detail::cmul2x2_portable(lo, hi, count, m00, m01, m10, m11);
}

/// Anti-diagonal 2x2: lo[i] <- m01*hi[i], hi[i] <- m10*lo_old[i].
inline void cross_mul(Complex* lo, Complex* hi, std::size_t count, Complex m01,
                      Complex m10) {
#if FEMTO_SIMD_X86
  switch (simd::level()) {
    case simd::Level::kAvx512:
      detail::cross_mul_avx512(lo, hi, count, m01, m10);
      return;
    case simd::Level::kAvx2:
      detail::cross_mul_avx2(lo, hi, count, m01, m10);
      return;
    default:
      break;
  }
#endif
  detail::cross_mul_portable(lo, hi, count, m01, m10);
}

/// d[j] = -d[j] over `len` doubles (sign-bit flip at every level).
inline void negate(double* d, std::size_t len) {
#if FEMTO_SIMD_X86
  switch (simd::level()) {
    case simd::Level::kAvx512:
      detail::negate_avx512(d, len);
      return;
    case simd::Level::kAvx2:
      detail::negate_avx2(d, len);
      return;
    default:
      break;
  }
#endif
  detail::negate_portable(d, len);
}

/// Swap two contiguous runs of `count` complex values.
inline void swap(Complex* x, Complex* y, std::size_t count) {
#if FEMTO_SIMD_X86
  switch (simd::level()) {
    case simd::Level::kAvx512:
      detail::swap_avx512(x, y, count);
      return;
    case simd::Level::kAvx2:
      detail::swap_avx2(x, y, count);
      return;
    default:
      break;
  }
#endif
  detail::swap_portable(x, y, count);
}

/// Two-plane rotation p <- c*p + u*q, q <- c*q + v*p_old (c real; the shape
/// of XX/XY rotations and general Pauli-exponential sub-runs).
inline void rot2(Complex* p, Complex* q, std::size_t count, double c,
                 Complex u, Complex v) {
#if FEMTO_SIMD_X86
  switch (simd::level()) {
    case simd::Level::kAvx512:
      detail::rot2_avx512(p, q, count, c, u, v);
      return;
    case simd::Level::kAvx2:
      detail::rot2_avx2(p, q, count, c, u, v);
      return;
    default:
      break;
  }
#endif
  detail::rot2_portable(p, q, count, c, u, v);
}

/// out[i] += w * src[i] over `count` complex values.
inline void axpy(Complex* out, const Complex* src, std::size_t count,
                 Complex w) {
#if FEMTO_SIMD_X86
  switch (simd::level()) {
    case simd::Level::kAvx512:
      detail::axpy_avx512(out, src, count, w);
      return;
    case simd::Level::kAvx2:
      detail::axpy_avx2(out, src, count, w);
      return;
    default:
      break;
  }
#endif
  detail::axpy_portable(out, src, count, w);
}

/// Per-lane complex scale: element i is multiplied by (frd[2i] + i*fid[2i]).
/// Coefficient arrays are lane-duplicated ([c0, c0, c1, c1, ...]).
inline void scale_lanes(double* d, std::size_t count, const double* frd,
                        const double* fid) {
#if FEMTO_SIMD_X86
  switch (simd::level()) {
    case simd::Level::kAvx512:
      detail::scale_lanes_avx512(d, count, frd, fid);
      return;
    case simd::Level::kAvx2:
      detail::scale_lanes_avx2(d, count, frd, fid);
      return;
    default:
      break;
  }
#endif
  detail::scale_lanes_portable(d, count, frd, fid);
}

/// Per-lane two-plane rotation (lane-duplicated coefficient arrays, as in
/// scale_lanes): p[i] <- cd[i]*p[i] + u[i]*q[i], q[i] <- cd[i]*q[i] +
/// v[i]*p_old[i].
inline void rot2_lanes(Complex* p, Complex* q, std::size_t count,
                       const double* cd, const double* ur, const double* ui,
                       const double* vr, const double* vi) {
#if FEMTO_SIMD_X86
  switch (simd::level()) {
    case simd::Level::kAvx512:
      detail::rot2_lanes_avx512(p, q, count, cd, ur, ui, vr, vi);
      return;
    case simd::Level::kAvx2:
      detail::rot2_lanes_avx2(p, q, count, cd, ur, ui, vr, vi);
      return;
    default:
      break;
  }
#endif
  detail::rot2_lanes_portable(p, q, count, cd, ur, ui, vr, vi);
}

}  // namespace runs

// --- single-qubit kernels -------------------------------------------------

/// Diagonal gate diag(d0, d1) on qubit q: one streaming multiply pass, no
/// pair loads (this is the "fused diagonal" path; Z/S/Sdg/Rz/CZ land here).
inline void apply_diag1(Complex* a, std::size_t dim, std::size_t q, Complex d0,
                        Complex d1) {
  const std::size_t bit = std::size_t{1} << q;
  const double r0 = d0.real(), i0 = d0.imag();
  const double r1 = d1.real(), i1 = d1.imag();
  const bool unit0 = r0 == 1.0 && i0 == 0.0;
  double* d = reinterpret_cast<double*>(a);
  [[maybe_unused]] const bool omp_on = dim >= kOmpMinDim;
  FEMTO_OMP_FOR
  for (std::size_t g = 0; g < dim; g += 2 * bit) {
    if (!unit0) runs::scale(d + 2 * g, bit, r0, i0);
    runs::scale(d + 2 * (g + bit), bit, r1, i1);
  }
}

/// Real 2x2 matrix on qubit q, applied on the interleaved double lanes
/// (re/im update identically under a real matrix).
inline void apply_real1(Complex* a, std::size_t dim, std::size_t q, double r00,
                        double r01, double r10, double r11) {
  const std::size_t bit = std::size_t{1} << q;
  double* d = reinterpret_cast<double*>(a);
  [[maybe_unused]] const bool omp_on = dim >= kOmpMinDim;
  FEMTO_OMP_FOR
  for (std::size_t g = 0; g < dim; g += 2 * bit)
    runs::real2x2(d + 2 * g, d + 2 * (g + bit), 2 * bit, r00, r01, r10, r11);
}

/// General 2x2 complex matrix on qubit q. Dispatches to the structured
/// paths when the matrix is diagonal, anti-diagonal or real.
inline void apply_matrix1(Complex* a, std::size_t dim, std::size_t q,
                          Complex m00, Complex m01, Complex m10, Complex m11) {
  const Complex zero{0.0, 0.0};
  if (m01 == zero && m10 == zero) {
    apply_diag1(a, dim, q, m00, m11);
    return;
  }
  const std::size_t bit = std::size_t{1} << q;
  [[maybe_unused]] const bool omp_on = dim >= kOmpMinDim;
  if (m00 == zero && m11 == zero) {
    // Anti-diagonal (X, Y): a scaled swap of the two half-blocks.
    if (m01 == Complex{1.0, 0.0} && m10 == Complex{1.0, 0.0}) {
      FEMTO_OMP_FOR
      for (std::size_t g = 0; g < dim; g += 2 * bit)
        runs::swap(a + g, a + g + bit, bit);
      return;
    }
    FEMTO_OMP_FOR
    for (std::size_t g = 0; g < dim; g += 2 * bit)
      runs::cross_mul(a + g, a + g + bit, bit, m01, m10);
    return;
  }
  if (m00.imag() == 0.0 && m01.imag() == 0.0 && m10.imag() == 0.0 &&
      m11.imag() == 0.0) {
    apply_real1(a, dim, q, m00.real(), m01.real(), m10.real(), m11.real());
    return;
  }
  FEMTO_OMP_FOR
  for (std::size_t g = 0; g < dim; g += 2 * bit)
    runs::cmul2x2(a + g, a + g + bit, bit, m00, m01, m10, m11);
}

// --- two-qubit kernels ----------------------------------------------------
//
// The two-qubit loops all share one shape: iterate base indices with both
// involved bits clear via three nested strides (above the high bit, between
// the bits, below the low bit); the innermost run of length min(bit_a,
// bit_b) is contiguous.

inline void apply_cnot(Complex* a, std::size_t dim, std::size_t c,
                       std::size_t t) {
  const std::size_t cb = std::size_t{1} << c;
  const std::size_t tb = std::size_t{1} << t;
  const std::size_t hb = std::max(cb, tb), lb = std::min(cb, tb);
  [[maybe_unused]] const bool omp_on = dim >= kOmpMinDim;
  FEMTO_OMP_FOR
  for (std::size_t g = 0; g < dim; g += 2 * hb)
    for (std::size_t h = g; h < g + hb; h += 2 * lb)
      runs::swap(a + (h | cb), a + (h | cb | tb), lb);
}

inline void apply_cz(Complex* a, std::size_t dim, std::size_t qa,
                     std::size_t qb) {
  const std::size_t ab = std::size_t{1} << qa;
  const std::size_t bb = std::size_t{1} << qb;
  const std::size_t hb = std::max(ab, bb), lb = std::min(ab, bb);
  [[maybe_unused]] const bool omp_on = dim >= kOmpMinDim;
  FEMTO_OMP_FOR
  for (std::size_t g = 0; g < dim; g += 2 * hb)
    for (std::size_t h = g; h < g + hb; h += 2 * lb)
      runs::negate(reinterpret_cast<double*>(a + (h | ab | bb)), 2 * lb);
}

inline void apply_swap(Complex* a, std::size_t dim, std::size_t qa,
                       std::size_t qb) {
  const std::size_t ab = std::size_t{1} << qa;
  const std::size_t bb = std::size_t{1} << qb;
  const std::size_t hb = std::max(ab, bb), lb = std::min(ab, bb);
  [[maybe_unused]] const bool omp_on = dim >= kOmpMinDim;
  FEMTO_OMP_FOR
  for (std::size_t g = 0; g < dim; g += 2 * hb)
    for (std::size_t h = g; h < g + hb; h += 2 * lb)
      runs::swap(a + (h | ab), a + (h | bb), lb);
}

/// exp(-i angle/2 X@X): two independent rotations per base index, inside
/// the {00,11} and {01,10} planes.
inline void apply_xxrot(Complex* a, std::size_t dim, std::size_t qa,
                        std::size_t qb, double angle) {
  const std::size_t ab = std::size_t{1} << qa;
  const std::size_t bb = std::size_t{1} << qb;
  const std::size_t hb = std::max(ab, bb), lb = std::min(ab, bb);
  const double c = std::cos(angle / 2), s = std::sin(angle / 2);
  const Complex mis{0.0, -s};
  [[maybe_unused]] const bool omp_on = dim >= kOmpMinDim;
  FEMTO_OMP_FOR
  for (std::size_t g = 0; g < dim; g += 2 * hb)
    for (std::size_t h = g; h < g + hb; h += 2 * lb) {
      runs::rot2(a + h, a + (h | ab | bb), lb, c, mis, mis);
      runs::rot2(a + (h | ab), a + (h | bb), lb, c, mis, mis);
    }
}

/// exp(-i angle/2 (X@X + Y@Y)): rotation inside the {01,10} subspace.
inline void apply_xyrot(Complex* a, std::size_t dim, std::size_t qa,
                        std::size_t qb, double angle) {
  const std::size_t ab = std::size_t{1} << qa;
  const std::size_t bb = std::size_t{1} << qb;
  const std::size_t hb = std::max(ab, bb), lb = std::min(ab, bb);
  const double c = std::cos(angle), s = std::sin(angle);
  const Complex mis{0.0, -s};
  [[maybe_unused]] const bool omp_on = dim >= kOmpMinDim;
  FEMTO_OMP_FOR
  for (std::size_t g = 0; g < dim; g += 2 * hb)
    for (std::size_t h = g; h < g + hb; h += 2 * lb)
      runs::rot2(a + (h | ab), a + (h | bb), lb, c, mis, mis);
}

// --- Pauli-string kernels -------------------------------------------------

/// Word-packed masks of a Pauli string (valid for n <= 64 qubits).
/// Letter action on |i>: X -> 1, Y -> i(-1)^bit, Z -> (-1)^bit, so
/// phase(i) = i^{#Y} * (-1)^{popcount(i & z)} (letter sign excluded; callers
/// fold it in).
struct PauliMasks {
  std::uint64_t x = 0;  // bit-flip mask (X and Y sites)
  std::uint64_t z = 0;  // phase mask (Z and Y sites)
  Complex y_factor{1.0, 0.0};  // i^{#Y}

  [[nodiscard]] Complex phase(std::uint64_t i) const {
    const bool minus = std::popcount(i & z) & 1;
    return minus ? -y_factor : y_factor;
  }
};

namespace detail {

/// Longest aligned run over which phase(i) is constant: the phase parity of
/// (i & z) cannot change while i varies below the lowest set bit of z.
[[nodiscard]] inline std::size_t phase_run(std::uint64_t z, std::size_t dim) {
  return z == 0 ? dim : (std::size_t{1} << std::countr_zero(z));
}

}  // namespace detail

/// exp(-i half P) with cos/sin precomputed by the caller (c = cos(half),
/// s = sin(half)). Pairs (i, i^x) are enumerated once each by pivoting on
/// the highest set bit of the flip mask; a pure-Z string degenerates to a
/// fused diagonal pass. Both paths decompose into constant-phase sub-runs
/// so the inner loops are the straight-line `runs` primitives -- the
/// per-element arithmetic matches the historical per-index loop exactly
/// (phase() is evaluated once per run at the run's base index, where it is
/// provably constant over the run).
inline void apply_pauli_exp(Complex* a, std::size_t dim, const PauliMasks& m,
                            double c, double s) {
  [[maybe_unused]] const bool omp_on = dim >= kOmpMinDim;
  double* d = reinterpret_cast<double*>(a);
  if (m.x == 0) {
    // No Y sites either, so phase(i) = +-1 and the factor is e^{-+ i half}.
    const Complex even{c, -s}, odd{c, s};
    const std::uint64_t z = m.z;
    const std::size_t run = detail::phase_run(z, dim);
    FEMTO_OMP_FOR
    for (std::size_t g = 0; g < dim; g += run) {
      const Complex f = (std::popcount(g & z) & 1) ? odd : even;
      runs::scale(d + 2 * g, run, f.real(), f.imag());
    }
    return;
  }
  const std::size_t pb = std::size_t{1}
                         << (std::bit_width(m.x) - 1);  // pivot bit
  const std::size_t flip = static_cast<std::size_t>(m.x);
  const Complex mis{0.0, -s};
  // Sub-run length: phases constant (below ctz(z)) AND the partner indices
  // j = i ^ flip contiguous (below ctz(flip)), capped at the pivot block.
  std::size_t sub = std::size_t{1} << std::countr_zero(flip);
  sub = std::min(sub, detail::phase_run(m.z, pb));
  sub = std::min(sub, pb);
  FEMTO_OMP_FOR
  for (std::size_t g = 0; g < dim; g += 2 * pb) {
    for (std::size_t i = g; i < g + pb; i += sub) {
      const std::size_t j = i ^ flip;  // pivot set => j > i, visited once
      // L|i> = p_i |j>, L|j> = p_j |i>, with p_i p_j = 1.
      const Complex pi = m.phase(i);
      const Complex pj = m.phase(j);
      runs::rot2(a + i, a + j, sub, c, mis * pj, mis * pi);
    }
  }
}

/// out[j] += coeff * phase(j^x) * a[j^x]; iterated over the output index so
/// the scatter becomes a gather (and is safe to parallelize). Same sub-run
/// decomposition as apply_pauli_exp: over an aligned run below both ctz(x)
/// and ctz(z), the source indices are contiguous and the phase constant.
inline void accumulate_pauli(const Complex* a, std::size_t dim,
                             const PauliMasks& m, Complex coeff, Complex* out) {
  const std::size_t flip = static_cast<std::size_t>(m.x);
  std::size_t sub = detail::phase_run(m.z, dim);
  if (flip != 0)
    sub = std::min(sub, std::size_t{1} << std::countr_zero(flip));
  [[maybe_unused]] const bool omp_on = dim >= kOmpMinDim;
  FEMTO_OMP_FOR
  for (std::size_t j = 0; j < dim; j += sub) {
    const std::size_t i = j ^ flip;
    runs::axpy(out + j, a + i, sub, coeff * m.phase(i));
  }
}

}  // namespace femto::sim::kernels
