// Stride-based two-level statevector kernels.
//
// Every kernel enumerates exactly the index groups it touches -- 2^(n-1)
// amplitude pairs for a single-qubit gate, 2^(n-2) quadruples for a
// two-qubit gate -- instead of scanning all 2^n basis indices and branching
// per index. The innermost loop is always a contiguous run so the compiler
// can vectorize it, and gates with structure get cheaper paths:
//   - diagonal gates fuse into one streaming multiply pass,
//   - anti-diagonal gates (X, Y) become scaled block swaps,
//   - real matrices (H, Ry) run on the interleaved double lanes.
// Pauli-string exponentials take packed 64-bit masks (from the word-packed
// gf2::BitVec storage) so per-index phases are one AND + popcount.
//
// With FEMTO_OPENMP defined (CMake option FEMTO_OPENMP) the outer stride
// loops run under an OpenMP parallel-for once the state is large enough to
// amortize the fork. Known limitation: the pragma sits on the outer stride
// loop, so a gate whose (highest) qubit is near the top of the register has
// few outer iterations and degrades toward serial; low- and mid-qubit gates
// parallelize fully.
#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <complex>
#include <cstddef>
#include <cstdint>

#include "common/assert.hpp"

#if defined(FEMTO_OPENMP)
#define FEMTO_OMP_FOR _Pragma("omp parallel for schedule(static) if (omp_on)")
#else
#define FEMTO_OMP_FOR
#endif

namespace femto::sim::kernels {

using Complex = std::complex<double>;

/// States below this size are applied serially even when OpenMP is enabled.
inline constexpr std::size_t kOmpMinDim = std::size_t{1} << 17;

// --- single-qubit kernels -------------------------------------------------

namespace detail {

/// run[i] *= (sr + i*si) over `count` complex values, written out in double
/// lanes so no NaN-safe complex-multiply libcall (__muldc3) is emitted.
inline void scale_run(double* run, std::size_t count, double sr, double si) {
  if (si == 0.0) {
    for (std::size_t j = 0; j < 2 * count; ++j) run[j] *= sr;
    return;
  }
  for (std::size_t i = 0; i < count; ++i) {
    const double x = run[2 * i], y = run[2 * i + 1];
    run[2 * i] = x * sr - y * si;
    run[2 * i + 1] = x * si + y * sr;
  }
}

}  // namespace detail

/// Diagonal gate diag(d0, d1) on qubit q: one streaming multiply pass, no
/// pair loads (this is the "fused diagonal" path; Z/S/Sdg/Rz/CZ land here).
inline void apply_diag1(Complex* a, std::size_t dim, std::size_t q, Complex d0,
                        Complex d1) {
  const std::size_t bit = std::size_t{1} << q;
  const double r0 = d0.real(), i0 = d0.imag();
  const double r1 = d1.real(), i1 = d1.imag();
  const bool unit0 = r0 == 1.0 && i0 == 0.0;
  double* d = reinterpret_cast<double*>(a);
  [[maybe_unused]] const bool omp_on = dim >= kOmpMinDim;
  FEMTO_OMP_FOR
  for (std::size_t g = 0; g < dim; g += 2 * bit) {
    if (!unit0) detail::scale_run(d + 2 * g, bit, r0, i0);
    detail::scale_run(d + 2 * (g + bit), bit, r1, i1);
  }
}

/// Real 2x2 matrix on qubit q, applied on the interleaved double lanes
/// (re/im update identically under a real matrix, so the inner loop is a
/// plain vectorizable axpy over 2*2^q doubles).
inline void apply_real1(Complex* a, std::size_t dim, std::size_t q, double r00,
                        double r01, double r10, double r11) {
  const std::size_t bit = std::size_t{1} << q;
  double* d = reinterpret_cast<double*>(a);
  [[maybe_unused]] const bool omp_on = dim >= kOmpMinDim;
  FEMTO_OMP_FOR
  for (std::size_t g = 0; g < dim; g += 2 * bit) {
    double* p0 = d + 2 * g;
    double* p1 = p0 + 2 * bit;
    for (std::size_t j = 0; j < 2 * bit; ++j) {
      const double x0 = p0[j], x1 = p1[j];
      p0[j] = r00 * x0 + r01 * x1;
      p1[j] = r10 * x0 + r11 * x1;
    }
  }
}

/// General 2x2 complex matrix on qubit q. Dispatches to the structured
/// paths when the matrix is diagonal, anti-diagonal or real.
inline void apply_matrix1(Complex* a, std::size_t dim, std::size_t q,
                          Complex m00, Complex m01, Complex m10, Complex m11) {
  const Complex zero{0.0, 0.0};
  if (m01 == zero && m10 == zero) {
    apply_diag1(a, dim, q, m00, m11);
    return;
  }
  const std::size_t bit = std::size_t{1} << q;
  [[maybe_unused]] const bool omp_on = dim >= kOmpMinDim;
  if (m00 == zero && m11 == zero) {
    // Anti-diagonal (X, Y): a scaled swap of the two half-blocks.
    if (m01 == Complex{1.0, 0.0} && m10 == Complex{1.0, 0.0}) {
      FEMTO_OMP_FOR
      for (std::size_t g = 0; g < dim; g += 2 * bit)
        std::swap_ranges(a + g, a + g + bit, a + g + bit);
      return;
    }
    FEMTO_OMP_FOR
    for (std::size_t g = 0; g < dim; g += 2 * bit) {
      Complex* lo = a + g;
      Complex* hi = lo + bit;
      for (std::size_t i = 0; i < bit; ++i) {
        const Complex x0 = lo[i];
        lo[i] = m01 * hi[i];
        hi[i] = m10 * x0;
      }
    }
    return;
  }
  if (m00.imag() == 0.0 && m01.imag() == 0.0 && m10.imag() == 0.0 &&
      m11.imag() == 0.0) {
    apply_real1(a, dim, q, m00.real(), m01.real(), m10.real(), m11.real());
    return;
  }
  FEMTO_OMP_FOR
  for (std::size_t g = 0; g < dim; g += 2 * bit) {
    Complex* lo = a + g;
    Complex* hi = lo + bit;
    for (std::size_t i = 0; i < bit; ++i) {
      const Complex a0 = lo[i], a1 = hi[i];
      lo[i] = m00 * a0 + m01 * a1;
      hi[i] = m10 * a0 + m11 * a1;
    }
  }
}

// --- two-qubit kernels ----------------------------------------------------
//
// The two-qubit loops all share one shape: iterate base indices with both
// involved bits clear via three nested strides (above the high bit, between
// the bits, below the low bit); the innermost run of length min(bit_a,
// bit_b) is contiguous.

inline void apply_cnot(Complex* a, std::size_t dim, std::size_t c,
                       std::size_t t) {
  const std::size_t cb = std::size_t{1} << c;
  const std::size_t tb = std::size_t{1} << t;
  const std::size_t hb = std::max(cb, tb), lb = std::min(cb, tb);
  [[maybe_unused]] const bool omp_on = dim >= kOmpMinDim;
  FEMTO_OMP_FOR
  for (std::size_t g = 0; g < dim; g += 2 * hb)
    for (std::size_t h = g; h < g + hb; h += 2 * lb) {
      Complex* p = a + (h | cb);
      std::swap_ranges(p, p + lb, a + (h | cb | tb));
    }
}

inline void apply_cz(Complex* a, std::size_t dim, std::size_t qa,
                     std::size_t qb) {
  const std::size_t ab = std::size_t{1} << qa;
  const std::size_t bb = std::size_t{1} << qb;
  const std::size_t hb = std::max(ab, bb), lb = std::min(ab, bb);
  [[maybe_unused]] const bool omp_on = dim >= kOmpMinDim;
  FEMTO_OMP_FOR
  for (std::size_t g = 0; g < dim; g += 2 * hb)
    for (std::size_t h = g; h < g + hb; h += 2 * lb) {
      Complex* p = a + (h | ab | bb);
      for (std::size_t i = 0; i < lb; ++i) p[i] = -p[i];
    }
}

inline void apply_swap(Complex* a, std::size_t dim, std::size_t qa,
                       std::size_t qb) {
  const std::size_t ab = std::size_t{1} << qa;
  const std::size_t bb = std::size_t{1} << qb;
  const std::size_t hb = std::max(ab, bb), lb = std::min(ab, bb);
  [[maybe_unused]] const bool omp_on = dim >= kOmpMinDim;
  FEMTO_OMP_FOR
  for (std::size_t g = 0; g < dim; g += 2 * hb)
    for (std::size_t h = g; h < g + hb; h += 2 * lb) {
      Complex* p = a + (h | ab);
      std::swap_ranges(p, p + lb, a + (h | bb));
    }
}

/// exp(-i angle/2 X@X): two independent rotations per base index, inside
/// the {00,11} and {01,10} planes.
inline void apply_xxrot(Complex* a, std::size_t dim, std::size_t qa,
                        std::size_t qb, double angle) {
  const std::size_t ab = std::size_t{1} << qa;
  const std::size_t bb = std::size_t{1} << qb;
  const std::size_t hb = std::max(ab, bb), lb = std::min(ab, bb);
  const double c = std::cos(angle / 2), s = std::sin(angle / 2);
  const Complex mis{0.0, -s};
  [[maybe_unused]] const bool omp_on = dim >= kOmpMinDim;
  FEMTO_OMP_FOR
  for (std::size_t g = 0; g < dim; g += 2 * hb)
    for (std::size_t h = g; h < g + hb; h += 2 * lb) {
      Complex* p00 = a + h;
      Complex* p01 = a + (h | ab);
      Complex* p10 = a + (h | bb);
      Complex* p11 = a + (h | ab | bb);
      for (std::size_t i = 0; i < lb; ++i) {
        const Complex x00 = p00[i], x11 = p11[i];
        p00[i] = c * x00 + mis * x11;
        p11[i] = c * x11 + mis * x00;
        const Complex x01 = p01[i], x10 = p10[i];
        p01[i] = c * x01 + mis * x10;
        p10[i] = c * x10 + mis * x01;
      }
    }
}

/// exp(-i angle/2 (X@X + Y@Y)): rotation inside the {01,10} subspace.
inline void apply_xyrot(Complex* a, std::size_t dim, std::size_t qa,
                        std::size_t qb, double angle) {
  const std::size_t ab = std::size_t{1} << qa;
  const std::size_t bb = std::size_t{1} << qb;
  const std::size_t hb = std::max(ab, bb), lb = std::min(ab, bb);
  const double c = std::cos(angle), s = std::sin(angle);
  const Complex mis{0.0, -s};
  [[maybe_unused]] const bool omp_on = dim >= kOmpMinDim;
  FEMTO_OMP_FOR
  for (std::size_t g = 0; g < dim; g += 2 * hb)
    for (std::size_t h = g; h < g + hb; h += 2 * lb) {
      Complex* pa = a + (h | ab);  // qa=1, qb=0
      Complex* pb = a + (h | bb);  // qa=0, qb=1
      for (std::size_t i = 0; i < lb; ++i) {
        const Complex xi = pa[i], xj = pb[i];
        pa[i] = c * xi + mis * xj;
        pb[i] = c * xj + mis * xi;
      }
    }
}

// --- Pauli-string kernels -------------------------------------------------

/// Word-packed masks of a Pauli string (valid for n <= 64 qubits).
/// Letter action on |i>: X -> 1, Y -> i(-1)^bit, Z -> (-1)^bit, so
/// phase(i) = i^{#Y} * (-1)^{popcount(i & z)} (letter sign excluded; callers
/// fold it in).
struct PauliMasks {
  std::uint64_t x = 0;  // bit-flip mask (X and Y sites)
  std::uint64_t z = 0;  // phase mask (Z and Y sites)
  Complex y_factor{1.0, 0.0};  // i^{#Y}

  [[nodiscard]] Complex phase(std::uint64_t i) const {
    const bool minus = std::popcount(i & z) & 1;
    return minus ? -y_factor : y_factor;
  }
};

/// exp(-i half P) with cos/sin precomputed by the caller (c = cos(half),
/// s = sin(half)). Pairs (i, i^x) are enumerated once each by pivoting on
/// the highest set bit of the flip mask; a pure-Z string degenerates to a
/// fused diagonal pass.
inline void apply_pauli_exp(Complex* a, std::size_t dim, const PauliMasks& m,
                            double c, double s) {
  [[maybe_unused]] const bool omp_on = dim >= kOmpMinDim;
  if (m.x == 0) {
    // No Y sites either, so phase(i) = +-1 and the factor is e^{-+ i half}.
    const Complex even{c, -s}, odd{c, s};
    const std::uint64_t z = m.z;
    FEMTO_OMP_FOR
    for (std::size_t i = 0; i < dim; ++i)
      a[i] *= (std::popcount(i & z) & 1) ? odd : even;
    return;
  }
  const std::size_t pb = std::size_t{1}
                         << (std::bit_width(m.x) - 1);  // pivot bit
  const std::size_t flip = static_cast<std::size_t>(m.x);
  const Complex mis{0.0, -s};
  FEMTO_OMP_FOR
  for (std::size_t g = 0; g < dim; g += 2 * pb) {
    for (std::size_t i = g; i < g + pb; ++i) {
      const std::size_t j = i ^ flip;  // pivot set => j > i, visited once
      // L|i> = p_i |j>, L|j> = p_j |i>, with p_i p_j = 1.
      const Complex pi = m.phase(i);
      const Complex pj = m.phase(j);
      const Complex ai = a[i], aj = a[j];
      a[i] = c * ai + mis * pj * aj;
      a[j] = c * aj + mis * pi * ai;
    }
  }
}

/// out[j] += coeff * phase(j^x) * a[j^x]; iterated over the output index so
/// the scatter becomes a gather (and is safe to parallelize).
inline void accumulate_pauli(const Complex* a, std::size_t dim,
                             const PauliMasks& m, Complex coeff, Complex* out) {
  const std::size_t flip = static_cast<std::size_t>(m.x);
  [[maybe_unused]] const bool omp_on = dim >= kOmpMinDim;
  FEMTO_OMP_FOR
  for (std::size_t j = 0; j < dim; ++j) {
    const std::size_t i = j ^ flip;
    out[j] += coeff * m.phase(i) * a[i];
  }
}

}  // namespace femto::sim::kernels
