// Tiny 2x2 complex matrix utilities: just enough to Euler-decompose the
// inter-block basis-change differences that arise in interface merging.
#pragma once

#include <array>
#include <cmath>
#include <complex>

#include "common/assert.hpp"
#include "pauli/pauli_string.hpp"

namespace femto::synth {

using Complex = std::complex<double>;

/// Row-major 2x2 complex matrix.
struct Mat2 {
  std::array<Complex, 4> m{};

  [[nodiscard]] static Mat2 identity() { return {{1, 0, 0, 1}}; }
  [[nodiscard]] static Mat2 hadamard() {
    const double s = 1.0 / std::sqrt(2.0);
    return {{s, s, s, -s}};
  }
  [[nodiscard]] static Mat2 s_gate() { return {{1, 0, 0, Complex(0, 1)}}; }
  [[nodiscard]] static Mat2 sdg_gate() { return {{1, 0, 0, Complex(0, -1)}}; }

  [[nodiscard]] friend Mat2 operator*(const Mat2& a, const Mat2& b) {
    Mat2 out;
    out.m[0] = a.m[0] * b.m[0] + a.m[1] * b.m[2];
    out.m[1] = a.m[0] * b.m[1] + a.m[1] * b.m[3];
    out.m[2] = a.m[2] * b.m[0] + a.m[3] * b.m[2];
    out.m[3] = a.m[2] * b.m[1] + a.m[3] * b.m[3];
    return out;
  }

  [[nodiscard]] Mat2 adjoint() const {
    return {{std::conj(m[0]), std::conj(m[2]), std::conj(m[1]),
             std::conj(m[3])}};
  }

  [[nodiscard]] Complex det() const { return m[0] * m[3] - m[1] * m[2]; }
};

/// Basis-change matrix V with V sigma V^dag = Z for sigma in {X, Y, Z}:
/// V_X = H, V_Y = H * Sdg (apply Sdg first, then H), V_Z = 1.
[[nodiscard]] inline Mat2 basis_change(pauli::Letter sigma) {
  switch (sigma) {
    case pauli::Letter::X: return Mat2::hadamard();
    case pauli::Letter::Y: return Mat2::hadamard() * Mat2::sdg_gate();
    case pauli::Letter::Z: return Mat2::identity();
    default: FEMTO_EXPECTS(false && "basis_change of identity"); return {};
  }
}

/// ZXZ Euler angles of a 2x2 unitary: U = e^{i phase} Rz(alpha) Rx(beta)
/// Rz(gamma), with Rz(t) = diag(e^{-it/2}, e^{it/2}) and
/// Rx(t) = cos(t/2) I - i sin(t/2) X.
struct EulerZXZ {
  double alpha = 0.0;
  double beta = 0.0;
  double gamma = 0.0;
  double phase = 0.0;
};

[[nodiscard]] inline EulerZXZ euler_zxz(const Mat2& u) {
  EulerZXZ e;
  // Normalize to SU(2).
  const Complex d = u.det();
  e.phase = 0.5 * std::arg(d);
  const Complex scale = std::exp(Complex(0, -e.phase));
  const Complex a = scale * u.m[0];  // cos(b/2) e^{-i(alpha+gamma)/2}
  const Complex c = scale * u.m[2];  // -i sin(b/2) e^{ i(alpha-gamma)/2}
  const double cos_half = std::abs(a);
  const double sin_half = std::abs(c);
  e.beta = 2.0 * std::atan2(sin_half, cos_half);
  if (cos_half > 1e-12 && sin_half > 1e-12) {
    const double sum = -2.0 * std::arg(a);            // alpha + gamma
    const double diff = 2.0 * (std::arg(c) + M_PI / 2);  // alpha - gamma
    e.alpha = 0.5 * (sum + diff);
    e.gamma = 0.5 * (sum - diff);
  } else if (sin_half <= 1e-12) {
    e.alpha = 0.0;
    e.gamma = -2.0 * std::arg(a);
  } else {
    e.alpha = 0.0;
    e.gamma = 2.0 * (std::arg(c) + M_PI / 2);
  }
  return e;
}

}  // namespace femto::synth
