// Circuit synthesis for ordered sequences of Pauli-string exponentials.
//
// Each block exp(-i angle/2 P) uses the Fig. 3(b) template: per-site basis
// changes into Z, a star ladder of CNOTs into the chosen target, an Rz, and
// the reverse. Consecutive blocks sharing a target are *merged* at the
// interface:
//   - wires with equal letters: ladder CNOT pair and basis changes vanish
//     (the model's omega = 2),
//   - wires with differing letters: the CNOT pair plus the basis difference
//     B = Rz(a) Rx(b) Rz(g) collapses to Rz(g), exp(-i b/2 X@X), Rz(a) --
//     one Clifford-angle XX rotation, i.e. one CNOT-equivalent (omega = 1).
// The merge requires the target-wire basis difference to commute through the
// ladders (target collisions XX, YY, ZZ, XY, YX); otherwise blocks are
// closed and reopened without merging, which can exceed the model count --
// reported counts distinguish "model" from "emitted".
#pragma once

#include <vector>

#include "circuit/peephole.hpp"
#include "circuit/quantum_circuit.hpp"
#include "synth/cost_model.hpp"
#include "synth/su2.hpp"

namespace femto::synth {

enum class MergePolicy {
  kNone,   // close/reopen every block (cost = sum 2(w-1))
  kMerge,  // merge good-target interfaces (achieves the model cost there)
};

namespace detail {

using circuit::Gate;
using pauli::Letter;

/// Emits the basis-change V_sigma (time order) rotating sigma into Z.
inline void emit_basis_in(circuit::PeepholeBuilder& out, std::size_t q,
                          Letter sigma) {
  switch (sigma) {
    case Letter::X: out.push(Gate::h(q)); break;
    case Letter::Y:
      out.push(Gate::sdg(q));
      out.push(Gate::h(q));
      break;
    default: break;
  }
}

/// Emits V_sigma^dag.
inline void emit_basis_out(circuit::PeepholeBuilder& out, std::size_t q,
                           Letter sigma) {
  switch (sigma) {
    case Letter::X: out.push(Gate::h(q)); break;
    case Letter::Y:
      out.push(Gate::h(q));
      out.push(Gate::s(q));
      break;
    default: break;
  }
}

/// Opens a block: basis changes, then the CNOT star into the target.
inline void emit_open(circuit::PeepholeBuilder& out, const RotationBlock& b) {
  const auto& p = b.string;
  for (std::size_t q = 0; q < p.num_qubits(); ++q)
    if (p.letter(q) != Letter::I) emit_basis_in(out, q, p.letter(q));
  for (std::size_t q = 0; q < p.num_qubits(); ++q)
    if (q != b.target && p.letter(q) != Letter::I)
      out.push(Gate::cnot(q, b.target));
}

/// Closes a block: reverse ladder, then inverse basis changes.
inline void emit_close(circuit::PeepholeBuilder& out, const RotationBlock& b) {
  const auto& p = b.string;
  for (std::size_t q = p.num_qubits(); q-- > 0;)
    if (q != b.target && p.letter(q) != Letter::I)
      out.push(Gate::cnot(q, b.target));
  for (std::size_t q = 0; q < p.num_qubits(); ++q)
    if (p.letter(q) != Letter::I) emit_basis_out(out, q, p.letter(q));
}

/// Emits the merged interface between prev and cur (same target t, good
/// target collision).
inline void emit_merged_interface(circuit::PeepholeBuilder& out,
                                  const RotationBlock& prev,
                                  const RotationBlock& cur) {
  const std::size_t t = prev.target;
  const std::size_t n = prev.string.num_qubits();
  // 1. Close prev-only wires.
  for (std::size_t q = 0; q < n; ++q) {
    if (q == t) continue;
    const Letter a = prev.string.letter(q);
    const Letter b = cur.string.letter(q);
    if (a != Letter::I && b == Letter::I) {
      out.push(Gate::cnot(q, t));
      emit_basis_out(out, q, a);
    }
  }
  // 2. Target-wire basis difference (commutes through the ladders by the
  // good-collision precondition).
  {
    const Letter a = prev.string.letter(t);
    const Letter b = cur.string.letter(t);
    if (a != b) {
      emit_basis_out(out, t, a);
      emit_basis_in(out, t, b);
    }
  }
  // 3. Shared wires: equal letters need nothing; differing letters merge to
  // Rz, XXrot (Clifford angle), Rz.
  for (std::size_t q = 0; q < n; ++q) {
    if (q == t) continue;
    const Letter a = prev.string.letter(q);
    const Letter b = cur.string.letter(q);
    if (a == Letter::I || b == Letter::I || a == b) continue;
    const Mat2 diff = basis_change(b) * basis_change(a).adjoint();
    const EulerZXZ e = euler_zxz(diff);
    if (std::abs(e.gamma) > 1e-12) out.push(Gate::rz(q, e.gamma));
    if (std::abs(e.beta) > 1e-12) out.push(Gate::xxrot(q, t, e.beta));
    if (std::abs(e.alpha) > 1e-12) out.push(Gate::rz(q, e.alpha));
  }
  // 4. Open cur-only wires.
  for (std::size_t q = 0; q < n; ++q) {
    if (q == t) continue;
    const Letter a = prev.string.letter(q);
    const Letter b = cur.string.letter(q);
    if (a == Letter::I && b != Letter::I) {
      emit_basis_in(out, q, b);
      out.push(Gate::cnot(q, t));
    }
  }
}

}  // namespace detail

/// Synthesizes an ordered block sequence into a circuit.
[[nodiscard]] inline circuit::QuantumCircuit synthesize_sequence(
    std::size_t n, const std::vector<RotationBlock>& seq,
    MergePolicy policy = MergePolicy::kMerge) {
  circuit::PeepholeBuilder out(n);
  const RotationBlock* prev = nullptr;
  for (const RotationBlock& b : seq) {
    FEMTO_EXPECTS(b.string.num_qubits() == n);
    FEMTO_EXPECTS(b.string.letter(b.target) != pauli::Letter::I);
    FEMTO_EXPECTS(b.string.sign() == pauli::Complex(1.0, 0.0));
    const bool merge =
        policy == MergePolicy::kMerge && prev != nullptr &&
        prev->target == b.target &&
        target_collision_good(prev->string.letter(b.target),
                              b.string.letter(b.target));
    if (merge)
      detail::emit_merged_interface(out, *prev, b);
    else {
      if (prev != nullptr) detail::emit_close(out, *prev);
      detail::emit_open(out, b);
    }
    out.push(circuit::Gate::rz(b.target, b.angle_coeff, b.param));
    prev = &b;
  }
  if (prev != nullptr) detail::emit_close(out, *prev);
  return out.take();
}

}  // namespace femto::synth
