// Circuit synthesis for ordered sequences of Pauli-string exponentials.
//
// Each block exp(-i angle/2 P) uses the Fig. 3(b) template: per-site basis
// changes into Z, a star ladder of CNOTs into the chosen target, an Rz, and
// the reverse. Consecutive blocks sharing a target are *merged* at the
// interface:
//   - wires with equal letters: ladder CNOT pair and basis changes vanish
//     (the model's omega = 2),
//   - wires with differing letters: the CNOT pair plus the basis difference
//     B = Rz(a) Rx(b) Rz(g) collapses to Rz(g), exp(-i b/2 X@X), Rz(a) --
//     one Clifford-angle XX rotation, i.e. one CNOT-equivalent (omega = 1).
// The merge requires the target-wire basis difference to commute through the
// ladders (target collisions XX, YY, ZZ, XY, YX); otherwise blocks are
// closed and reopened without merging, which can exceed the model count --
// reported counts distinguish "model" from "emitted".
//
// Native-gate lowering (synth/target.hpp): with EntanglerKind::kXX the same
// template emits Moelmer-Sorensen pulses instead, in the cheaper of two
// exact forms (the comparison sequence_model_cost(seq, target) also makes,
// so model == emitted pulse count on good-interface chains):
//  * partner form: one support wire -- the partner, xx_partner(P, t) -- is
//    NOT folded into the target by the ladder; the central stage becomes
//    exp(-i angle/2 Z_partner Z_t), i.e. one native XX(angle) rotation
//    conjugated by Hadamards, and every remaining ladder CNOT is one
//    XX(pi/2) pulse plus single-qubit Cliffords. An isolated weight-w block
//    costs 2w-3 pulses (1 for w == 2) instead of 2(w-1) CNOTs, but merged
//    interfaces forgo the partner wires' savings;
//  * CNOT form: the historical template with each CNOT-equivalent lowered
//    to one pulse -- wins on deeply merged chains.
#pragma once

#include <vector>

#include "circuit/peephole.hpp"
#include "circuit/quantum_circuit.hpp"
#include "synth/cost_model.hpp"
#include "synth/su2.hpp"
#include "synth/target.hpp"

namespace femto::synth {

enum class MergePolicy {
  kNone,   // close/reopen every block (cost = sum 2(w-1))
  kMerge,  // merge good-target interfaces (achieves the model cost there)
};

namespace detail {

using circuit::Gate;
using pauli::Letter;

/// Emits the basis-change V_sigma (time order) rotating sigma into Z.
inline void emit_basis_in(circuit::PeepholeBuilder& out, std::size_t q,
                          Letter sigma) {
  switch (sigma) {
    case Letter::X: out.push(Gate::h(q)); break;
    case Letter::Y:
      out.push(Gate::sdg(q));
      out.push(Gate::h(q));
      break;
    default: break;
  }
}

/// Emits V_sigma^dag.
inline void emit_basis_out(circuit::PeepholeBuilder& out, std::size_t q,
                           Letter sigma) {
  switch (sigma) {
    case Letter::X: out.push(Gate::h(q)); break;
    case Letter::Y:
      out.push(Gate::h(q));
      out.push(Gate::s(q));
      break;
    default: break;
  }
}

/// One ladder step folding wire q's parity into the target: a CNOT, or its
/// Moelmer-Sorensen form on XX-native targets.
inline void emit_ladder(circuit::PeepholeBuilder& out, std::size_t q,
                        std::size_t t, EntanglerKind native) {
  if (native == EntanglerKind::kCnot)
    out.push(Gate::cnot(q, t));
  else
    push_xx_cnot(out, q, t);
}

/// Partner of the XX-native central rotation; target itself when the block
/// has no other support (w <= 1) or when the partner template is not in use
/// (CNOT targets, or an XX sequence where the CNOT form is cheaper).
[[nodiscard]] inline std::size_t block_partner(const RotationBlock& b,
                                               bool use_partner) {
  if (!use_partner) return b.target;
  return xx_partner(b.string, b.target);
}

/// Opens a block: basis changes, then the CNOT star into the target. On XX
/// targets the partner wire skips the ladder and the central-rotation
/// sandwich H_partner H_t is opened instead.
inline void emit_open(circuit::PeepholeBuilder& out, const RotationBlock& b,
                      EntanglerKind native, bool use_partner) {
  const auto& p = b.string;
  const std::size_t partner = block_partner(b, use_partner);
  for (std::size_t q = 0; q < p.num_qubits(); ++q)
    if (p.letter(q) != Letter::I) emit_basis_in(out, q, p.letter(q));
  for (std::size_t q = 0; q < p.num_qubits(); ++q)
    if (q != b.target && p.letter(q) != Letter::I &&
        !(use_partner && q == partner))
      emit_ladder(out, q, b.target, native);
  if (use_partner && partner != b.target) {
    out.push(Gate::h(partner));
    out.push(Gate::h(b.target));
  }
}

/// The central rotation: Rz on the target (all parities folded in), or the
/// native XX(angle) on (partner, target) inside the Hadamard sandwich.
inline void emit_rotation(circuit::PeepholeBuilder& out, const RotationBlock& b,
                          bool use_partner) {
  const std::size_t partner = block_partner(b, use_partner);
  if (use_partner && partner != b.target)
    out.push(Gate::xxrot(partner, b.target, b.angle_coeff, b.param));
  else
    out.push(Gate::rz(b.target, b.angle_coeff, b.param));
}

/// Closes a block: reverse ladder, then inverse basis changes.
inline void emit_close(circuit::PeepholeBuilder& out, const RotationBlock& b,
                       EntanglerKind native, bool use_partner) {
  const auto& p = b.string;
  const std::size_t partner = block_partner(b, use_partner);
  if (use_partner && partner != b.target) {
    out.push(Gate::h(b.target));
    out.push(Gate::h(partner));
  }
  for (std::size_t q = p.num_qubits(); q-- > 0;)
    if (q != b.target && p.letter(q) != Letter::I &&
        !(use_partner && q == partner))
      emit_ladder(out, q, b.target, native);
  for (std::size_t q = 0; q < p.num_qubits(); ++q)
    if (p.letter(q) != Letter::I) emit_basis_out(out, q, p.letter(q));
}

/// Emits the merged interface between prev and cur (same target t, good
/// target collision). Wires that are the XX-native partner of either block
/// carry no ladder pulses, so they close/open with basis changes only; the
/// central sandwiches are closed first and reopened last.
inline void emit_merged_interface(circuit::PeepholeBuilder& out,
                                  const RotationBlock& prev,
                                  const RotationBlock& cur,
                                  EntanglerKind native, bool use_partner) {
  const std::size_t t = prev.target;
  const std::size_t n = prev.string.num_qubits();
  const bool xx = use_partner;
  const std::size_t partner_prev = block_partner(prev, use_partner);
  const std::size_t partner_cur = block_partner(cur, use_partner);
  // 0. Close prev's central sandwich.
  if (xx && partner_prev != t) {
    out.push(Gate::h(t));
    out.push(Gate::h(partner_prev));
  }
  // 1. Close prev-only wires.
  for (std::size_t q = 0; q < n; ++q) {
    if (q == t) continue;
    const Letter a = prev.string.letter(q);
    const Letter b = cur.string.letter(q);
    if (a != Letter::I && b == Letter::I) {
      if (!(xx && q == partner_prev)) emit_ladder(out, q, t, native);
      emit_basis_out(out, q, a);
    }
  }
  // 2. Target-wire basis difference (commutes through the ladders by the
  // good-collision precondition).
  {
    const Letter a = prev.string.letter(t);
    const Letter b = cur.string.letter(t);
    if (a != b) {
      emit_basis_out(out, t, a);
      emit_basis_in(out, t, b);
    }
  }
  // 3. Shared wires. Ladder-to-ladder: equal letters need nothing; differing
  // letters merge to Rz, XXrot (Clifford angle), Rz. A wire that is either
  // block's partner has no ladder pulse to merge: close/open it explicitly.
  for (std::size_t q = 0; q < n; ++q) {
    if (q == t) continue;
    const Letter a = prev.string.letter(q);
    const Letter b = cur.string.letter(q);
    if (a == Letter::I || b == Letter::I) continue;
    if (xx && (q == partner_prev || q == partner_cur)) {
      // Close prev's use of the wire (ladder pulse unless it was prev's
      // partner), full basis change, reopen for cur (ladder pulse unless it
      // is cur's partner -- the sandwich reopens in step 5).
      if (q != partner_prev) emit_ladder(out, q, t, native);
      if (a != b) {
        emit_basis_out(out, q, a);
        emit_basis_in(out, q, b);
      }
      if (q != partner_cur) emit_ladder(out, q, t, native);
      continue;
    }
    if (a == b) continue;
    const Mat2 diff = basis_change(b) * basis_change(a).adjoint();
    const EulerZXZ e = euler_zxz(diff);
    if (std::abs(e.gamma) > 1e-12) out.push(Gate::rz(q, e.gamma));
    if (std::abs(e.beta) > 1e-12) out.push(Gate::xxrot(q, t, e.beta));
    if (std::abs(e.alpha) > 1e-12) out.push(Gate::rz(q, e.alpha));
  }
  // 4. Open cur-only wires.
  for (std::size_t q = 0; q < n; ++q) {
    if (q == t) continue;
    const Letter a = prev.string.letter(q);
    const Letter b = cur.string.letter(q);
    if (a == Letter::I && b != Letter::I) {
      emit_basis_in(out, q, b);
      if (!(xx && q == partner_cur)) emit_ladder(out, q, t, native);
    }
  }
  // 5. Open cur's central sandwich.
  if (xx && partner_cur != t) {
    out.push(Gate::h(partner_cur));
    out.push(Gate::h(t));
  }
}

}  // namespace detail

/// Synthesizes an ordered block sequence into a circuit in the native gate
/// set of the given entangler kind (kCnot reproduces the historical emission
/// gate for gate).
[[nodiscard]] inline circuit::QuantumCircuit synthesize_sequence(
    std::size_t n, const std::vector<RotationBlock>& seq,
    MergePolicy policy = MergePolicy::kMerge,
    EntanglerKind native = EntanglerKind::kCnot) {
  // XX-native sequences pick the cheaper of the two exact lowering forms --
  // the same comparison sequence_model_cost makes, so the model stays equal
  // to the emitted pulse count. (Connectivity does not enter the choice:
  // routing applies uniformly to either form.)
  bool use_partner = false;
  if (native == EntanglerKind::kXX) {
    HardwareTarget comparison;
    comparison.entangler = EntanglerKind::kXX;
    use_partner = xx_partner_form_wins(seq, comparison);
  }
  circuit::PeepholeBuilder out(n);
  const RotationBlock* prev = nullptr;
  for (const RotationBlock& b : seq) {
    FEMTO_EXPECTS(b.string.num_qubits() == n);
    FEMTO_EXPECTS(b.string.letter(b.target) != pauli::Letter::I);
    FEMTO_EXPECTS(b.string.sign() == pauli::Complex(1.0, 0.0));
    const bool merge =
        policy == MergePolicy::kMerge && prev != nullptr &&
        prev->target == b.target &&
        target_collision_good(prev->string.letter(b.target),
                              b.string.letter(b.target));
    if (merge)
      detail::emit_merged_interface(out, *prev, b, native, use_partner);
    else {
      if (prev != nullptr) detail::emit_close(out, *prev, native, use_partner);
      detail::emit_open(out, b, native, use_partner);
    }
    detail::emit_rotation(out, b, use_partner);
    prev = &b;
  }
  if (prev != nullptr) detail::emit_close(out, *prev, native, use_partner);
  return out.take();
}

}  // namespace femto::synth
