// Thread-safe memoization of per-segment circuit synthesis.
//
// Across the restarts of a multi-start compile (and across the scenarios of
// a batch compile) the same ordered rotation-block sequence recurs whenever
// the stochastic stages converge to the same segment plan -- compressed
// segments in particular are emitted in the fixed Jordan-Wigner frame, so
// their synthesized circuits repeat verbatim. synthesize_sequence is a pure
// function of (n, sequence), which makes exact memoization safe: a cache hit
// returns bit-identical output to a fresh synthesis, so pipeline results are
// unchanged by cache sharing, thread count, or insertion order.
//
// Keys are the full serialized sequence (symplectic words, phase, target,
// angle bits, parameter index per block), not just a hash -- a collision
// must compare unequal rather than silently return the wrong circuit.
#pragma once

#include <bit>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "synth/pauli_exponential.hpp"

namespace femto::synth {

class SynthesisCache {
 public:
  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
  };

  /// Memoized synthesize_sequence(n, seq, policy, native).
  [[nodiscard]] circuit::QuantumCircuit synthesize(
      std::size_t n, const std::vector<RotationBlock>& seq,
      MergePolicy policy = MergePolicy::kMerge,
      EntanglerKind native = EntanglerKind::kCnot) {
    const std::string key = serialize(n, seq, policy, native);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      const auto it = entries_.find(key);
      if (it != entries_.end()) {
        ++stats_.hits;
        return it->second;
      }
    }
    // Synthesize outside the lock; concurrent first-comers may duplicate the
    // work, but every computation of the same key yields the same circuit.
    circuit::QuantumCircuit circuit = synthesize_sequence(n, seq, policy, native);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.misses;
      entries_.emplace(key, circuit);
    }
    return circuit;
  }

  [[nodiscard]] Stats stats() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
  }

  void clear() {
    const std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    stats_ = {};
  }

 private:
  [[nodiscard]] static std::string serialize(
      std::size_t n, const std::vector<RotationBlock>& seq,
      MergePolicy policy, EntanglerKind native) {
    std::string key;
    key.reserve(24 + seq.size() * (2 * ((n + 63) / 64) + 4) * 8);
    append_u64(key, n);
    append_u64(key, static_cast<std::uint64_t>(policy));
    append_u64(key, static_cast<std::uint64_t>(native));
    for (const RotationBlock& b : seq) {
      for (std::uint64_t w : b.string.x().words()) append_u64(key, w);
      for (std::uint64_t w : b.string.z().words()) append_u64(key, w);
      append_u64(key, static_cast<std::uint64_t>(b.string.phase_exponent()));
      append_u64(key, b.target);
      append_u64(key, std::bit_cast<std::uint64_t>(b.angle_coeff));
      append_u64(key, static_cast<std::uint64_t>(
                          static_cast<std::int64_t>(b.param)));
    }
    return key;
  }

  static void append_u64(std::string& out, std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte)
      out.push_back(static_cast<char>((v >> (8 * byte)) & 0xff));
  }

  mutable std::mutex mutex_;
  std::unordered_map<std::string, circuit::QuantumCircuit> entries_;
  Stats stats_;
};

}  // namespace femto::synth
