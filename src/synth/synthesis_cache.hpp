// Thread-safe memoization of per-segment circuit synthesis.
//
// Across the restarts of a multi-start compile (and across the scenarios of
// a batch compile) the same ordered rotation-block sequence recurs whenever
// the stochastic stages converge to the same segment plan -- compressed
// segments in particular are emitted in the fixed Jordan-Wigner frame, so
// their synthesized circuits repeat verbatim. synthesize_sequence is a pure
// function of (n, sequence), which makes exact memoization safe: a cache hit
// returns bit-identical output to a fresh synthesis, so pipeline results are
// unchanged by cache sharing, thread count, or insertion order.
//
// Keys are the full serialized sequence (symplectic words, phase, target,
// angle bits, parameter index per block), not just a hash -- a collision
// must compare unequal rather than silently return the wrong circuit.
//
// Two optional layers sit around the in-memory map:
//  - an attached SynthesisStore (read-through L2 + write-behind recorder):
//    the persistent compilation database (db/database.hpp) serves previously
//    compiled segments across processes and restarts at memory speed, and a
//    db::DatabaseBuilder captures fresh syntheses for the femto-db tool.
//    Both sides memoize the same pure function, so results stay
//    bit-identical with the store attached, detached, cold, or warm.
//  - a Budget bounding the map (bytes and/or entries, 0 = unbounded) with
//    insertion-order eviction: long batch runs no longer grow without limit.
//    Eviction only ever discards memoized values of a pure function, so it
//    cannot change any result either -- only hit rates.
#pragma once

#include <bit>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/failpoint.hpp"
#include "obs/metrics.hpp"
#include "synth/pauli_exponential.hpp"

namespace femto::synth {

namespace detail {
/// Process-global mirrors of the per-instance Stats counters, under the
/// stable metric names the femtod `metrics` op exports (obs/metrics.hpp).
/// The per-instance struct stays authoritative for tests; these accumulate
/// across every cache in the process.
struct CacheMetrics {
  obs::Counter& l1_hits = obs::registry().counter("cache.l1_hits");
  obs::Counter& misses = obs::registry().counter("cache.misses");
  obs::Counter& l2_hits = obs::registry().counter("cache.l2_hits");
  obs::Counter& evictions = obs::registry().counter("cache.evictions");

  [[nodiscard]] static CacheMetrics& get() {
    static CacheMetrics m;
    return m;
  }
};
}  // namespace detail

/// Interface to a second-level synthesis store (persistent database,
/// recording builder). Implementations must be safe for concurrent load()
/// calls; store() calls may come from many threads and must synchronize
/// internally. Both operate on the same pure function as the cache itself:
/// load() may only return a circuit bit-identical to
/// synthesize_sequence(n, seq, policy, native).
class SynthesisStore {
 public:
  virtual ~SynthesisStore() = default;

  /// Returns the stored circuit for the sequence, or nullopt when absent.
  [[nodiscard]] virtual std::optional<circuit::QuantumCircuit> load(
      std::size_t n, const std::vector<RotationBlock>& seq, MergePolicy policy,
      EntanglerKind native) const = 0;

  /// Records a freshly synthesized circuit (no-op for read-only stores).
  virtual void store(std::size_t n, const std::vector<RotationBlock>& seq,
                     MergePolicy policy, EntanglerKind native,
                     const circuit::QuantumCircuit& circuit) = 0;
};

class SynthesisCache {
 public:
  struct Stats {
    /// Served from the in-memory map. Includes lost first-comer races: when
    /// a concurrent thread inserts the key while this one synthesizes, the
    /// entry is already present at insert time, so the call counts as a hit
    /// (the duplicated synthesis is the documented cost of computing outside
    /// the lock) -- and `misses` stays equal to the number of unique keys
    /// actually inserted by synthesis.
    std::size_t hits = 0;
    /// Synthesized fresh AND inserted first. Counted from emplace().second,
    /// so with no attached store and no evictions, misses == size() holds
    /// under any thread interleaving.
    std::size_t misses = 0;
    /// Served from the attached store (L2) and inserted into the map.
    std::size_t l2_hits = 0;
    /// Entries discarded to satisfy the budget.
    std::size_t evictions = 0;
    /// Approximate resident bytes of the map (keys + gate vectors +
    /// per-entry overhead), maintained incrementally.
    std::size_t approx_bytes = 0;
  };

  /// Memory bound; 0 disables the respective limit. The byte figure is the
  /// same approximation Stats.approx_bytes reports.
  struct Budget {
    std::size_t max_bytes = std::size_t{256} << 20;  // generous default
    std::size_t max_entries = 0;
  };

  SynthesisCache() = default;
  explicit SynthesisCache(Budget budget) : budget_(budget) {}

  /// Attaches (or detaches, with nullptr) the second-level store. Not
  /// thread-safe against concurrent synthesize() calls: attach before
  /// handing the cache to a pool.
  void set_store(SynthesisStore* store) { store_ = store; }

  /// Replaces the budget and immediately evicts down to it.
  void set_budget(Budget budget) {
    const std::lock_guard<std::mutex> lock(mutex_);
    budget_ = budget;
    evict_over_budget();
  }

  /// Memoized synthesize_sequence(n, seq, policy, native).
  [[nodiscard]] circuit::QuantumCircuit synthesize(
      std::size_t n, const std::vector<RotationBlock>& seq,
      MergePolicy policy = MergePolicy::kMerge,
      EntanglerKind native = EntanglerKind::kCnot) {
    std::string key = serialize(n, seq, policy, native);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      const auto it = entries_.find(key);
      if (it != entries_.end()) {
        ++stats_.hits;
        detail::CacheMetrics::get().l1_hits.inc();
        return it->second;
      }
    }
    // L2, then synthesis, both outside the lock; concurrent first-comers may
    // duplicate the work, but every computation of the same key yields the
    // same circuit (the store serves the same pure function).
    if (store_ != nullptr) {
      if (std::optional<circuit::QuantumCircuit> from_store =
              store_->load(n, seq, policy, native))
        return insert(std::move(key), std::move(*from_store), true);
    }
    circuit::QuantumCircuit circuit = synthesize_sequence(n, seq, policy, native);
    if (store_ != nullptr) store_->store(n, seq, policy, native, circuit);
    return insert(std::move(key), std::move(circuit), false);
  }

  [[nodiscard]] Stats stats() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }

  /// Approximate resident bytes (see Stats.approx_bytes).
  [[nodiscard]] std::size_t approx_bytes() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return stats_.approx_bytes;
  }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
  }

  void clear() {
    const std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    fifo_.clear();
    stats_ = {};
  }

 private:
  /// Inserts the computed circuit, counting the outcome from the emplace
  /// result: only the first-comer bumps misses / l2_hits; a lost race finds
  /// the key already present and counts as a hit. The returned circuit is
  /// copied out before eviction so a sub-entry-sized budget stays safe.
  [[nodiscard]] circuit::QuantumCircuit insert(std::string key,
                                               circuit::QuantumCircuit circuit,
                                               bool from_store) {
    // Injected fault (chaos runs): drop the memo insert, as if the entry
    // were evicted instantly. The caller still gets its circuit, and the
    // cache memoizes a pure function, so results stay bit-identical -- a
    // lossy cache only costs recomputation.
    if (FEMTO_FAILPOINT("cache.insert")) return circuit;
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto [it, inserted] =
        entries_.emplace(std::move(key), std::move(circuit));
    if (!inserted) {
      ++stats_.hits;
      detail::CacheMetrics::get().l1_hits.inc();
      return it->second;
    }
    ++(from_store ? stats_.l2_hits : stats_.misses);
    (from_store ? detail::CacheMetrics::get().l2_hits
                : detail::CacheMetrics::get().misses)
        .inc();
    stats_.approx_bytes += entry_bytes(it->first, it->second);
    fifo_.push_back(&it->first);  // node-stable key address
    circuit::QuantumCircuit out = it->second;
    evict_over_budget();
    return out;
  }

  /// Evicts in insertion order until the budget holds (mutex_ held).
  void evict_over_budget() {
    const auto over = [this] {
      return (budget_.max_bytes != 0 &&
              stats_.approx_bytes > budget_.max_bytes) ||
             (budget_.max_entries != 0 && entries_.size() > budget_.max_entries);
    };
    while (!fifo_.empty() && over()) {
      const std::string* key = fifo_.front();
      fifo_.pop_front();
      const auto it = entries_.find(*key);
      stats_.approx_bytes -= entry_bytes(it->first, it->second);
      entries_.erase(it);
      ++stats_.evictions;
      detail::CacheMetrics::get().evictions.inc();
    }
  }

  [[nodiscard]] static std::size_t entry_bytes(
      const std::string& key, const circuit::QuantumCircuit& circuit) {
    // Map node + string + vector headers, rounded up; exactness is not
    // required, only monotone accounting that matches on insert and evict.
    constexpr std::size_t kOverhead = 128;
    return kOverhead + key.size() +
           circuit.gates().size() * sizeof(circuit::Gate);
  }

  [[nodiscard]] static std::string serialize(
      std::size_t n, const std::vector<RotationBlock>& seq,
      MergePolicy policy, EntanglerKind native) {
    std::string key;
    key.reserve(24 + seq.size() * (2 * ((n + 63) / 64) + 4) * 8);
    append_u64(key, n);
    append_u64(key, static_cast<std::uint64_t>(policy));
    append_u64(key, static_cast<std::uint64_t>(native));
    for (const RotationBlock& b : seq) {
      for (std::uint64_t w : b.string.x().words()) append_u64(key, w);
      for (std::uint64_t w : b.string.z().words()) append_u64(key, w);
      append_u64(key, static_cast<std::uint64_t>(b.string.phase_exponent()));
      append_u64(key, b.target);
      append_u64(key, std::bit_cast<std::uint64_t>(b.angle_coeff));
      append_u64(key, static_cast<std::uint64_t>(
                          static_cast<std::int64_t>(b.param)));
    }
    return key;
  }

  static void append_u64(std::string& out, std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte)
      out.push_back(static_cast<char>((v >> (8 * byte)) & 0xff));
  }

  mutable std::mutex mutex_;
  std::unordered_map<std::string, circuit::QuantumCircuit> entries_;
  std::deque<const std::string*> fifo_;  // insertion order, for eviction
  Budget budget_;
  SynthesisStore* store_ = nullptr;
  Stats stats_;
};

}  // namespace femto::synth
