// The CNOT-counting cost model of Sec. III-B.
//
// A Pauli string of weight w, exponentiated with the Fig. 3(b) template,
// costs 2(w-1) CNOTs. When two blocks [P1,t1] and [P2,t2] are implemented
// back to back with t1 == t2 == t, CNOTs cancel at the interface:
//
//   saving = sum_i omega_i  over non-target qubits i, where
//   omega_i = 0  if either string is I at i,
//   omega_i = 2  if the target collision (P1_t, P2_t) is one of
//                {XX, YY, ZZ, XY, YX} *and* P1_i == P2_i,
//   omega_i = 1  otherwise.
//
// The omega=2 case is full cancellation of the CNOT pair on wire i (the
// inter-block basis changes commute through); omega=1 merges the pair into a
// single CNOT-equivalent entangler (an XX rotation at a Clifford angle).
// These weights are exactly the GTSP edge weights of the paper.
#pragma once

#include <vector>

#include "pauli/pauli_string.hpp"

namespace femto::synth {

/// CNOT cost of exponentiating one string in isolation: 2(w-1), 0 for w<=1.
[[nodiscard]] inline int string_cost(const pauli::PauliString& p) {
  const int w = static_cast<int>(p.weight());
  return w <= 1 ? 0 : 2 * (w - 1);
}

/// True when the inter-block gate on the target wire commutes through the
/// CNOT ladders: collisions XX, YY, ZZ (identity diff) and XY, YX (X-axis
/// rotation diff).
[[nodiscard]] inline bool target_collision_good(pauli::Letter a,
                                                pauli::Letter b) {
  using pauli::Letter;
  if (a == b) return true;
  return (a == Letter::X && b == Letter::Y) ||
         (a == Letter::Y && b == Letter::X);
}

/// Interface CNOT saving between consecutive blocks [p1,t1] then [p2,t2].
/// Zero unless the targets coincide. Requires both strings non-identity at
/// their own target (guaranteed for valid target choices).
[[nodiscard]] inline int interface_saving(const pauli::PauliString& p1,
                                          std::size_t t1,
                                          const pauli::PauliString& p2,
                                          std::size_t t2) {
  using pauli::Letter;
  if (t1 != t2) return 0;
  FEMTO_EXPECTS(p1.num_qubits() == p2.num_qubits());
  FEMTO_EXPECTS(p1.letter(t1) != Letter::I && p2.letter(t2) != Letter::I);
  const bool good_target = target_collision_good(p1.letter(t1), p2.letter(t1));
  int saving = 0;
  for (std::size_t q = 0; q < p1.num_qubits(); ++q) {
    if (q == t1) continue;
    const Letter a = p1.letter(q);
    const Letter b = p2.letter(q);
    if (a == Letter::I || b == Letter::I) continue;  // omega = 0
    if (good_target && a == b)
      saving += 2;  // omega = 2
    else
      saving += 1;  // omega = 1
  }
  return saving;
}

/// One rotation block of a synthesized sequence: exp(-i angle/2 * string),
/// where angle = angle_coeff (param < 0) or angle_coeff * theta[param].
/// `target` must index a non-identity site of `string`.
struct RotationBlock {
  pauli::PauliString string;  // canonical letter form (sign folded into angle)
  std::size_t target = 0;
  double angle_coeff = 0.0;
  int param = -1;
};

/// Model cost of an ordered sequence of blocks: sum of string costs minus
/// interface savings between consecutive blocks.
[[nodiscard]] inline int sequence_model_cost(
    const std::vector<RotationBlock>& seq) {
  int cost = 0;
  for (std::size_t k = 0; k < seq.size(); ++k) {
    cost += string_cost(seq[k].string);
    if (k > 0)
      cost -= interface_saving(seq[k - 1].string, seq[k - 1].target,
                               seq[k].string, seq[k].target);
  }
  return cost;
}

}  // namespace femto::synth
