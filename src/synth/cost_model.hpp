// The CNOT-counting cost model of Sec. III-B.
//
// A Pauli string of weight w, exponentiated with the Fig. 3(b) template,
// costs 2(w-1) CNOTs. When two blocks [P1,t1] and [P2,t2] are implemented
// back to back with t1 == t2 == t, CNOTs cancel at the interface:
//
//   saving = sum_i omega_i  over non-target qubits i, where
//   omega_i = 0  if either string is I at i,
//   omega_i = 2  if the target collision (P1_t, P2_t) is one of
//                {XX, YY, ZZ, XY, YX} *and* P1_i == P2_i,
//   omega_i = 1  otherwise.
//
// The omega=2 case is full cancellation of the CNOT pair on wire i (the
// inter-block basis changes commute through); omega=1 merges the pair into a
// single CNOT-equivalent entangler (an XX rotation at a Clifford angle).
// These weights are exactly the GTSP edge weights of the paper.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "gf2/wordops.hpp"
#include "pauli/pauli_string.hpp"
#include "synth/target.hpp"

namespace femto::synth {

/// CNOT cost of exponentiating one string in isolation: 2(w-1), 0 for w<=1.
[[nodiscard]] inline int string_cost(const pauli::PauliString& p) {
  const int w = static_cast<int>(p.weight());
  return w <= 1 ? 0 : 2 * (w - 1);
}

/// True when the inter-block gate on the target wire commutes through the
/// CNOT ladders: collisions XX, YY, ZZ (identity diff) and XY, YX (X-axis
/// rotation diff).
[[nodiscard]] inline bool target_collision_good(pauli::Letter a,
                                                pauli::Letter b) {
  using pauli::Letter;
  if (a == b) return true;
  return (a == Letter::X && b == Letter::Y) ||
         (a == Letter::Y && b == Letter::X);
}

namespace detail {

/// Popcounts of (a) the common support of two symplectic pairs and (b) the
/// equal-letter subset of that common support. These two counts determine
/// every interface saving of the default CNOT model: a common wire always
/// contributes omega >= 1, and equal letters upgrade to omega = 2 when the
/// target collision is good.
struct CommonSupport {
  int common = 0;
  int equal = 0;
};

[[nodiscard]] inline CommonSupport common_support_counts(
    const gf2::BitVec& x1, const gf2::BitVec& z1, const gf2::BitVec& x2,
    const gf2::BitVec& z2) {
  // Fused SIMD-dispatched reduction over the raw word spans (wordops.hpp);
  // the has_xy flag it also produces is free and ignored here.
  const gf2::wordops::SupportCounts c = gf2::wordops::support_counts(
      x1.word_data(), z1.word_data(), x2.word_data(), z2.word_data(),
      x1.word_count());
  return CommonSupport{c.common, c.equal};
}

}  // namespace detail

/// Interface CNOT saving between consecutive blocks [p1,t1] then [p2,t2].
/// Zero unless the targets coincide. Requires both strings non-identity at
/// their own target (guaranteed for valid target choices). Computed
/// word-parallel over the symplectic components: every common-support wire
/// other than the target contributes omega = 1, upgraded to omega = 2 on
/// equal-letter wires when the target collision is good -- identical per-site
/// semantics to the scalar loop of the paper's formula.
[[nodiscard]] inline int interface_saving(const pauli::PauliString& p1,
                                          std::size_t t1,
                                          const pauli::PauliString& p2,
                                          std::size_t t2) {
  using pauli::Letter;
  if (t1 != t2) return 0;
  FEMTO_EXPECTS(p1.num_qubits() == p2.num_qubits());
  FEMTO_EXPECTS(p1.letter(t1) != Letter::I && p2.letter(t2) != Letter::I);
  const bool good_target = target_collision_good(p1.letter(t1), p2.letter(t1));
  const detail::CommonSupport c =
      detail::common_support_counts(p1.x(), p1.z(), p2.x(), p2.z());
  // The target wire is always common; drop it (and its equal-letter credit).
  int saving = c.common - 1;
  if (good_target)
    saving += c.equal - (p1.letter(t1) == p2.letter(t1) ? 1 : 0);
  return saving;
}

/// Best interface saving between two strings over every shared target
/// choice, max_t interface_saving(p1, t, p2, t); -1 when the strings share
/// no support (no shared target exists). Closed form: with C common wires
/// and E equal-letter wires among them, a good target off the equal set
/// (an X/Y collision) realizes (C-1) + E, a good equal-letter target
/// realizes (C-1) + (E-1), and any other shared target realizes C-1.
[[nodiscard]] inline int best_shared_target_saving(const gf2::BitVec& x1,
                                                   const gf2::BitVec& z1,
                                                   const gf2::BitVec& x2,
                                                   const gf2::BitVec& z2) {
  // One fused SIMD-dispatched pass yields all three quantities: the common
  // support, its equal-letter subset, and the X/Y-collision flag (both x
  // bits set, z bits differing).
  const gf2::wordops::SupportCounts c = gf2::wordops::support_counts(
      x1.word_data(), z1.word_data(), x2.word_data(), z2.word_data(),
      x1.word_count());
  if (c.common == 0) return -1;
  if (c.has_xy) return c.common - 1 + c.equal;
  if (c.equal > 0) return c.common - 1 + c.equal - 1;
  return c.common - 1;
}

[[nodiscard]] inline int best_shared_target_saving(const pauli::PauliString& p1,
                                                   const pauli::PauliString& p2) {
  return best_shared_target_saving(p1.x(), p1.z(), p2.x(), p2.z());
}

/// One rotation block of a synthesized sequence: exp(-i angle/2 * string),
/// where angle = angle_coeff (param < 0) or angle_coeff * theta[param].
/// `target` must index a non-identity site of `string`.
struct RotationBlock {
  pauli::PauliString string;  // canonical letter form (sign folded into angle)
  std::size_t target = 0;
  double angle_coeff = 0.0;
  int param = -1;
};

/// Model cost of an ordered sequence of blocks: sum of string costs minus
/// interface savings between consecutive blocks.
[[nodiscard]] inline int sequence_model_cost(
    const std::vector<RotationBlock>& seq) {
  int cost = 0;
  for (std::size_t k = 0; k < seq.size(); ++k) {
    cost += string_cost(seq[k].string);
    if (k > 0)
      cost -= interface_saving(seq[k - 1].string, seq[k - 1].target,
                               seq[k].string, seq[k].target);
  }
  return cost;
}

// ---- target-parameterized cost model ------------------------------------
//
// The same formulas, re-costed in the target's native entanglers:
//  * all_to_all_cnot delegates to the functions above (bit-identical; the
//    regression anchor).
//  * trapped_ion_xx has TWO exact lowering forms and takes the cheaper per
//    sequence (emission makes the same choice, so model == emitted count on
//    good-interface chains):
//      - partner form: a weight-w block costs 2w-3 pulses -- the central
//        pair closes as ONE native XX(theta) rotation on (partner, target)
//        instead of a 2-CNOT ladder step -- but interface savings skip the
//        partner wires (they contribute no ladder pulses to save);
//      - CNOT form: the historical template with every CNOT-equivalent
//        lowered to one pulse, i.e. exactly the all-to-all CNOT count.
//    The partner form wins on sparse/lightly-merged sequences (weight-2
//    blocks cost 1 instead of 2); the CNOT form wins on deeply merged
//    chains. The min makes the XX target never worse than the CNOT count.
//  * Connectivity-constrained targets add a routing SURROGATE of
//    routing_weight per hop beyond adjacency on every ladder wire; the exact
//    device cost is counted from the routed circuit (see
//    core/compiler.hpp), never from this surrogate.

namespace detail {

/// Per-block cost of one lowering form (partner_form only meaningful for
/// EntanglerKind::kXX), including the routing surrogate when constrained.
[[nodiscard]] inline int string_cost_form(const pauli::PauliString& p,
                                          std::size_t target,
                                          const HardwareTarget& hw,
                                          bool partner_form) {
  const int w = static_cast<int>(p.weight());
  if (w <= 1) return 0;
  int cost = partner_form ? 2 * w - 3 : 2 * (w - 1);
  if (hw.coupling.constrained()) {
    const std::size_t partner = partner_form ? xx_partner(p, target) : target;
    for (std::size_t q = 0; q < p.num_qubits(); ++q) {
      if (q == target || p.letter(q) == pauli::Letter::I) continue;
      const std::size_t d = hw.coupling.distance(q, target);
      const int extra = static_cast<int>(d) - 1;
      if (extra <= 0) continue;
      // Partner wire: one pulse instead of a ladder pair; half the exposure.
      cost += (q == partner ? hw.routing_weight / 2 : hw.routing_weight) *
              extra;
    }
  }
  return cost;
}

/// Interface saving of one lowering form: the word-parallel common/equal
/// counts minus the contributions of the excluded wires (the target, and on
/// the XX partner form the two partner wires, which carry no ladder pulses).
[[nodiscard]] inline int interface_saving_form(const pauli::PauliString& p1,
                                               std::size_t t1,
                                               const pauli::PauliString& p2,
                                               std::size_t t2,
                                               bool partner_form) {
  using pauli::Letter;
  if (t1 != t2) return 0;
  FEMTO_EXPECTS(p1.num_qubits() == p2.num_qubits());
  FEMTO_EXPECTS(p1.letter(t1) != Letter::I && p2.letter(t2) != Letter::I);
  const bool good_target = target_collision_good(p1.letter(t1), p2.letter(t1));
  const CommonSupport c = common_support_counts(p1.x(), p1.z(), p2.x(), p2.z());
  int common = c.common;
  int equal = c.equal;
  std::size_t excluded[3] = {t1, t1, t1};
  std::size_t num_excluded = 1;
  if (partner_form) {
    const std::size_t partner1 = xx_partner(p1, t1);
    const std::size_t partner2 = xx_partner(p2, t2);
    if (partner1 != t1) excluded[num_excluded++] = partner1;
    if (partner2 != t2 && partner2 != partner1)
      excluded[num_excluded++] = partner2;
  }
  for (std::size_t k = 0; k < num_excluded; ++k) {
    const std::size_t q = excluded[k];
    const Letter a = p1.letter(q);
    const Letter b = p2.letter(q);
    if (a == Letter::I || b == Letter::I) continue;
    --common;
    if (a == b) --equal;
  }
  return common + (good_target ? equal : 0);
}

/// Total model cost of one lowering form over a sequence.
[[nodiscard]] inline int sequence_cost_form(
    const std::vector<RotationBlock>& seq, const HardwareTarget& hw,
    bool partner_form) {
  int cost = 0;
  for (std::size_t k = 0; k < seq.size(); ++k) {
    cost += string_cost_form(seq[k].string, seq[k].target, hw, partner_form);
    if (k > 0)
      cost -= interface_saving_form(seq[k - 1].string, seq[k - 1].target,
                                    seq[k].string, seq[k].target,
                                    partner_form);
  }
  return cost;
}

}  // namespace detail

/// True when the XX partner form is the cheaper exact lowering of `seq`
/// (ties go to the CNOT form). synthesize_sequence makes the same choice,
/// which is what keeps the model equal to the emitted pulse count.
[[nodiscard]] inline bool xx_partner_form_wins(
    const std::vector<RotationBlock>& seq, const HardwareTarget& hw) {
  return detail::sequence_cost_form(seq, hw, /*partner_form=*/true) <
         detail::sequence_cost_form(seq, hw, /*partner_form=*/false);
}

/// Native entangler cost of one block with the given target qubit (for the
/// XX target: its partner form, which is never worse per isolated block).
[[nodiscard]] inline int string_cost(const pauli::PauliString& p,
                                     std::size_t target,
                                     const HardwareTarget& hw) {
  if (hw.is_all_to_all_cnot()) return string_cost(p);
  return detail::string_cost_form(p, target, hw,
                                  hw.entangler == EntanglerKind::kXX);
}

/// Interface saving between consecutive blocks, in native entanglers (for
/// the XX target: the partner form, which is what the GTSP weights steer).
[[nodiscard]] inline int interface_saving(const pauli::PauliString& p1,
                                          std::size_t t1,
                                          const pauli::PauliString& p2,
                                          std::size_t t2,
                                          const HardwareTarget& hw) {
  if (hw.is_all_to_all_cnot()) return interface_saving(p1, t1, p2, t2);
  return detail::interface_saving_form(p1, t1, p2, t2,
                                       hw.entangler == EntanglerKind::kXX);
}

/// Model cost of an ordered block sequence in the target's native
/// entanglers. For all_to_all_cnot this equals sequence_model_cost(seq)
/// exactly; the XX target takes the cheaper of its two lowering forms; for
/// constrained targets the result includes the routing surrogate.
[[nodiscard]] inline int sequence_model_cost(
    const std::vector<RotationBlock>& seq, const HardwareTarget& hw) {
  if (hw.is_all_to_all_cnot()) return sequence_model_cost(seq);
  const int cnot_form = detail::sequence_cost_form(seq, hw, false);
  if (hw.entangler != EntanglerKind::kXX) return cnot_form;
  return std::min(cnot_form, detail::sequence_cost_form(seq, hw, true));
}

/// Per-thread memo of device string costs. string_cost(p, t, hw) depends
/// only on the SUPPORT of p (weights, xx_partner, and routing distances are
/// all letter-blind), so the memo key is (support word, target); the min
/// over all valid targets of a block is likewise support-only and cached
/// under a sentinel target slot. Exact memoization of a pure function --
/// results are bit-identical with or without the cache. Only engaged for
/// single-word supports (num_qubits <= 58, far above any molecular
/// instance); wider strings fall through to the direct computation.
///
/// One cache serves exactly one HardwareTarget; it is NOT thread-safe and is
/// meant to live on a single compile's stack (core/compiler.hpp creates one
/// per stage_transform call, shared between the Gamma objective and
/// fast_term_cost).
class StringCostCache {
 public:
  explicit StringCostCache(const HardwareTarget& hw) : hw_(&hw) {}

  [[nodiscard]] const HardwareTarget& target() const { return *hw_; }

  /// Memoized string_cost(p, target, hw).
  [[nodiscard]] int cost(const pauli::PauliString& p, std::size_t target) {
    if (p.num_qubits() > kMaxQubits) return string_cost(p, target, *hw_);
    const std::uint64_t key =
        (support_word(p) << 6) | static_cast<std::uint64_t>(target);
    const auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    const int c = string_cost(p, target, *hw_);
    memo_.emplace(key, c);
    return c;
  }

  /// Memoized min over all valid targets (the support sites) of cost(p, t).
  [[nodiscard]] int min_cost(const pauli::PauliString& p) {
    if (p.num_qubits() > kMaxQubits) return min_cost_direct(p);
    const std::uint64_t key = (support_word(p) << 6) | kMinSlot;
    const auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    const int c = min_cost_direct(p);
    memo_.emplace(key, c);
    return c;
  }

 private:
  // Targets index qubits < kMaxQubits < kMinSlot, so the sentinel never
  // collides with a real target.
  static constexpr std::size_t kMaxQubits = 58;
  static constexpr std::uint64_t kMinSlot = 63;

  [[nodiscard]] static std::uint64_t support_word(const pauli::PauliString& p) {
    return p.x().word_data()[0] | p.z().word_data()[0];
  }

  [[nodiscard]] int min_cost_direct(const pauli::PauliString& p) const {
    int cheapest = std::numeric_limits<int>::max();
    for (std::size_t q = 0; q < p.num_qubits(); ++q)
      if (p.letter(q) != pauli::Letter::I)
        cheapest = std::min(cheapest, string_cost(p, q, *hw_));
    return cheapest;
  }

  const HardwareTarget* hw_;
  std::unordered_map<std::uint64_t, int> memo_;
};

}  // namespace femto::synth
