// The CNOT-counting cost model of Sec. III-B.
//
// A Pauli string of weight w, exponentiated with the Fig. 3(b) template,
// costs 2(w-1) CNOTs. When two blocks [P1,t1] and [P2,t2] are implemented
// back to back with t1 == t2 == t, CNOTs cancel at the interface:
//
//   saving = sum_i omega_i  over non-target qubits i, where
//   omega_i = 0  if either string is I at i,
//   omega_i = 2  if the target collision (P1_t, P2_t) is one of
//                {XX, YY, ZZ, XY, YX} *and* P1_i == P2_i,
//   omega_i = 1  otherwise.
//
// The omega=2 case is full cancellation of the CNOT pair on wire i (the
// inter-block basis changes commute through); omega=1 merges the pair into a
// single CNOT-equivalent entangler (an XX rotation at a Clifford angle).
// These weights are exactly the GTSP edge weights of the paper.
#pragma once

#include <algorithm>
#include <vector>

#include "pauli/pauli_string.hpp"
#include "synth/target.hpp"

namespace femto::synth {

/// CNOT cost of exponentiating one string in isolation: 2(w-1), 0 for w<=1.
[[nodiscard]] inline int string_cost(const pauli::PauliString& p) {
  const int w = static_cast<int>(p.weight());
  return w <= 1 ? 0 : 2 * (w - 1);
}

/// True when the inter-block gate on the target wire commutes through the
/// CNOT ladders: collisions XX, YY, ZZ (identity diff) and XY, YX (X-axis
/// rotation diff).
[[nodiscard]] inline bool target_collision_good(pauli::Letter a,
                                                pauli::Letter b) {
  using pauli::Letter;
  if (a == b) return true;
  return (a == Letter::X && b == Letter::Y) ||
         (a == Letter::Y && b == Letter::X);
}

/// Interface CNOT saving between consecutive blocks [p1,t1] then [p2,t2].
/// Zero unless the targets coincide. Requires both strings non-identity at
/// their own target (guaranteed for valid target choices).
[[nodiscard]] inline int interface_saving(const pauli::PauliString& p1,
                                          std::size_t t1,
                                          const pauli::PauliString& p2,
                                          std::size_t t2) {
  using pauli::Letter;
  if (t1 != t2) return 0;
  FEMTO_EXPECTS(p1.num_qubits() == p2.num_qubits());
  FEMTO_EXPECTS(p1.letter(t1) != Letter::I && p2.letter(t2) != Letter::I);
  const bool good_target = target_collision_good(p1.letter(t1), p2.letter(t1));
  int saving = 0;
  for (std::size_t q = 0; q < p1.num_qubits(); ++q) {
    if (q == t1) continue;
    const Letter a = p1.letter(q);
    const Letter b = p2.letter(q);
    if (a == Letter::I || b == Letter::I) continue;  // omega = 0
    if (good_target && a == b)
      saving += 2;  // omega = 2
    else
      saving += 1;  // omega = 1
  }
  return saving;
}

/// One rotation block of a synthesized sequence: exp(-i angle/2 * string),
/// where angle = angle_coeff (param < 0) or angle_coeff * theta[param].
/// `target` must index a non-identity site of `string`.
struct RotationBlock {
  pauli::PauliString string;  // canonical letter form (sign folded into angle)
  std::size_t target = 0;
  double angle_coeff = 0.0;
  int param = -1;
};

/// Model cost of an ordered sequence of blocks: sum of string costs minus
/// interface savings between consecutive blocks.
[[nodiscard]] inline int sequence_model_cost(
    const std::vector<RotationBlock>& seq) {
  int cost = 0;
  for (std::size_t k = 0; k < seq.size(); ++k) {
    cost += string_cost(seq[k].string);
    if (k > 0)
      cost -= interface_saving(seq[k - 1].string, seq[k - 1].target,
                               seq[k].string, seq[k].target);
  }
  return cost;
}

// ---- target-parameterized cost model ------------------------------------
//
// The same formulas, re-costed in the target's native entanglers:
//  * all_to_all_cnot delegates to the functions above (bit-identical; the
//    regression anchor).
//  * trapped_ion_xx has TWO exact lowering forms and takes the cheaper per
//    sequence (emission makes the same choice, so model == emitted count on
//    good-interface chains):
//      - partner form: a weight-w block costs 2w-3 pulses -- the central
//        pair closes as ONE native XX(theta) rotation on (partner, target)
//        instead of a 2-CNOT ladder step -- but interface savings skip the
//        partner wires (they contribute no ladder pulses to save);
//      - CNOT form: the historical template with every CNOT-equivalent
//        lowered to one pulse, i.e. exactly the all-to-all CNOT count.
//    The partner form wins on sparse/lightly-merged sequences (weight-2
//    blocks cost 1 instead of 2); the CNOT form wins on deeply merged
//    chains. The min makes the XX target never worse than the CNOT count.
//  * Connectivity-constrained targets add a routing SURROGATE of
//    routing_weight per hop beyond adjacency on every ladder wire; the exact
//    device cost is counted from the routed circuit (see
//    core/compiler.hpp), never from this surrogate.

namespace detail {

/// Per-block cost of one lowering form (partner_form only meaningful for
/// EntanglerKind::kXX), including the routing surrogate when constrained.
[[nodiscard]] inline int string_cost_form(const pauli::PauliString& p,
                                          std::size_t target,
                                          const HardwareTarget& hw,
                                          bool partner_form) {
  const int w = static_cast<int>(p.weight());
  if (w <= 1) return 0;
  int cost = partner_form ? 2 * w - 3 : 2 * (w - 1);
  if (hw.coupling.constrained()) {
    const std::size_t partner = partner_form ? xx_partner(p, target) : target;
    for (std::size_t q = 0; q < p.num_qubits(); ++q) {
      if (q == target || p.letter(q) == pauli::Letter::I) continue;
      const std::size_t d = hw.coupling.distance(q, target);
      const int extra = static_cast<int>(d) - 1;
      if (extra <= 0) continue;
      // Partner wire: one pulse instead of a ladder pair; half the exposure.
      cost += (q == partner ? hw.routing_weight / 2 : hw.routing_weight) *
              extra;
    }
  }
  return cost;
}

/// Interface saving of one lowering form.
[[nodiscard]] inline int interface_saving_form(const pauli::PauliString& p1,
                                               std::size_t t1,
                                               const pauli::PauliString& p2,
                                               std::size_t t2,
                                               bool partner_form) {
  using pauli::Letter;
  if (t1 != t2) return 0;
  FEMTO_EXPECTS(p1.num_qubits() == p2.num_qubits());
  FEMTO_EXPECTS(p1.letter(t1) != Letter::I && p2.letter(t2) != Letter::I);
  const std::size_t partner1 = partner_form ? xx_partner(p1, t1) : t1;
  const std::size_t partner2 = partner_form ? xx_partner(p2, t2) : t2;
  const bool good_target = target_collision_good(p1.letter(t1), p2.letter(t1));
  int saving = 0;
  for (std::size_t q = 0; q < p1.num_qubits(); ++q) {
    if (q == t1) continue;
    if (partner_form && (q == partner1 || q == partner2))
      continue;  // no ladder pulses on partner wires
    const Letter a = p1.letter(q);
    const Letter b = p2.letter(q);
    if (a == Letter::I || b == Letter::I) continue;
    saving += (good_target && a == b) ? 2 : 1;
  }
  return saving;
}

/// Total model cost of one lowering form over a sequence.
[[nodiscard]] inline int sequence_cost_form(
    const std::vector<RotationBlock>& seq, const HardwareTarget& hw,
    bool partner_form) {
  int cost = 0;
  for (std::size_t k = 0; k < seq.size(); ++k) {
    cost += string_cost_form(seq[k].string, seq[k].target, hw, partner_form);
    if (k > 0)
      cost -= interface_saving_form(seq[k - 1].string, seq[k - 1].target,
                                    seq[k].string, seq[k].target,
                                    partner_form);
  }
  return cost;
}

}  // namespace detail

/// True when the XX partner form is the cheaper exact lowering of `seq`
/// (ties go to the CNOT form). synthesize_sequence makes the same choice,
/// which is what keeps the model equal to the emitted pulse count.
[[nodiscard]] inline bool xx_partner_form_wins(
    const std::vector<RotationBlock>& seq, const HardwareTarget& hw) {
  return detail::sequence_cost_form(seq, hw, /*partner_form=*/true) <
         detail::sequence_cost_form(seq, hw, /*partner_form=*/false);
}

/// Native entangler cost of one block with the given target qubit (for the
/// XX target: its partner form, which is never worse per isolated block).
[[nodiscard]] inline int string_cost(const pauli::PauliString& p,
                                     std::size_t target,
                                     const HardwareTarget& hw) {
  if (hw.is_all_to_all_cnot()) return string_cost(p);
  return detail::string_cost_form(p, target, hw,
                                  hw.entangler == EntanglerKind::kXX);
}

/// Interface saving between consecutive blocks, in native entanglers (for
/// the XX target: the partner form, which is what the GTSP weights steer).
[[nodiscard]] inline int interface_saving(const pauli::PauliString& p1,
                                          std::size_t t1,
                                          const pauli::PauliString& p2,
                                          std::size_t t2,
                                          const HardwareTarget& hw) {
  if (hw.is_all_to_all_cnot()) return interface_saving(p1, t1, p2, t2);
  return detail::interface_saving_form(p1, t1, p2, t2,
                                       hw.entangler == EntanglerKind::kXX);
}

/// Model cost of an ordered block sequence in the target's native
/// entanglers. For all_to_all_cnot this equals sequence_model_cost(seq)
/// exactly; the XX target takes the cheaper of its two lowering forms; for
/// constrained targets the result includes the routing surrogate.
[[nodiscard]] inline int sequence_model_cost(
    const std::vector<RotationBlock>& seq, const HardwareTarget& hw) {
  if (hw.is_all_to_all_cnot()) return sequence_model_cost(seq);
  const int cnot_form = detail::sequence_cost_form(seq, hw, false);
  if (hw.entangler != EntanglerKind::kXX) return cnot_form;
  return std::min(cnot_form, detail::sequence_cost_form(seq, hw, true));
}

}  // namespace femto::synth
