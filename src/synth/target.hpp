// Hardware-target abstraction: what the compile stack optimizes FOR.
//
// The paper's objective (Table I) is the CNOT count on an all-to-all device.
// A HardwareTarget generalizes that to a (native entangler, connectivity)
// pair so the same GTSP/annealing/PSO machinery can optimize for other
// devices; the per-target cost formulas live in synth/cost_model.hpp and the
// native-gate emission in synth/pauli_exponential.hpp. Built-ins:
//
//   all_to_all_cnot  CNOT entangler, no connectivity constraint. The
//                    regression anchor: every cost and every emitted gate is
//                    bit-identical to the historical pipeline.
//   trapped_ion_xx   Moelmer-Sorensen/XX native (Wang-Li-Monroe-Nam 2020
//                    lineage): any CNOT is one XX(pi/2) pulse plus
//                    single-qubit Cliffords, and a weight-w Pauli exponential
//                    needs only 2w-3 entanglers -- the central pair is done
//                    as ONE native XX(theta) rotation instead of a 2-CNOT
//                    ladder closure, so weight-2 strings cost 1 instead of 2.
//   linear_nn        CNOT entangler on a nearest-neighbor chain; two-qubit
//                    gates on distant pairs are SWAP-routed
//                    (circuit/routing.hpp) and the routed circuit is what
//                    the device cost counts.
#pragma once

#include <cmath>
#include <string>

#include "circuit/gate.hpp"
#include "circuit/peephole.hpp"
#include "circuit/routing.hpp"
#include "pauli/pauli_string.hpp"

namespace femto::synth {

/// The native two-qubit primitive the device implements directly.
enum class EntanglerKind {
  kCnot,  // CNOT/CZ class (superconducting-style)
  kXX,    // exp(-i a/2 X@X) at any angle (Moelmer-Sorensen, trapped ion)
};

[[nodiscard]] constexpr const char* to_string(EntanglerKind k) {
  switch (k) {
    case EntanglerKind::kCnot: return "cnot";
    case EntanglerKind::kXX: return "xx";
  }
  return "?";
}

struct HardwareTarget {
  std::string name = "all_to_all_cnot";
  EntanglerKind entangler = EntanglerKind::kCnot;
  /// Unconstrained by default; a constrained map triggers SWAP routing.
  circuit::CouplingMap coupling;
  /// Routing may be disabled to describe a device whose compiler stage is
  /// expected to produce connectivity-respecting circuits directly; pairing
  /// that with a constrained coupling map is rejected by validate().
  bool allow_routing = true;
  /// Surrogate native-entangler weight per hop of routing distance beyond
  /// adjacency, used by the optimization objectives (cost_model.hpp) for
  /// constrained targets. The exact device cost is always counted from the
  /// routed circuit, never from this surrogate: SWAP amortization across a
  /// merged chain makes the true marginal cost well below the naive
  /// 6-CNOTs-per-hop, so the default leans low to balance distance pressure
  /// against interface savings.
  int routing_weight = 3;

  [[nodiscard]] static HardwareTarget all_to_all_cnot() { return {}; }

  [[nodiscard]] static HardwareTarget trapped_ion_xx() {
    HardwareTarget t;
    t.name = "trapped_ion_xx";
    t.entangler = EntanglerKind::kXX;
    return t;
  }

  [[nodiscard]] static HardwareTarget linear_nn(std::size_t n) {
    HardwareTarget t;
    t.name = "linear_nn";
    t.entangler = EntanglerKind::kCnot;
    t.coupling = circuit::CouplingMap::line(n);
    return t;
  }

  /// The regression anchor: every code path that sees this target must be
  /// bit-identical to the historical (target-free) pipeline.
  [[nodiscard]] bool is_all_to_all_cnot() const {
    return entangler == EntanglerKind::kCnot && !coupling.constrained();
  }

  /// Diagnostic for inconsistent configurations; empty string = valid.
  [[nodiscard]] std::string validate(std::size_t num_qubits) const {
    if (coupling.constrained() && !allow_routing)
      return "target '" + name +
             "' declares connectivity constraints but routing is disabled "
             "(allow_routing = false): no pass can satisfy the coupling map";
    if (coupling.constrained()) {
      const std::string err = coupling.validate(num_qubits);
      if (!err.empty()) return "target '" + name + "': " + err;
    }
    if (routing_weight < 1)
      return "target '" + name + "': routing_weight must be >= 1 (got " +
             std::to_string(routing_weight) + ")";
    return "";
  }

  /// Native entangler cost of one gate on this target.
  [[nodiscard]] int gate_cost(const circuit::Gate& g) const {
    if (entangler == EntanglerKind::kCnot) return g.cnot_cost();
    // XX-native: ANY non-trivial XX rotation is exactly one pulse
    // (variational angles included); everything else costs its
    // CNOT-equivalents, each lowered to one pulse by lower_to_target.
    switch (g.kind) {
      case circuit::GateKind::kXXrot: {
        if (g.param >= 0) return 1;
        const double a = std::fmod(std::abs(g.angle), 2.0 * M_PI);
        const bool trivial = a < 1e-9 || std::abs(a - 2 * M_PI) < 1e-9 ||
                             std::abs(a - M_PI) < 1e-9;  // XX(pi) is local
        return trivial ? 0 : 1;
      }
      default: return g.cnot_cost();
    }
  }

  /// Total native entangler count of a circuit.
  [[nodiscard]] int circuit_cost(const circuit::QuantumCircuit& c) const {
    int cost = 0;
    for (const circuit::Gate& g : c.gates()) cost += gate_cost(g);
    return cost;
  }
};

/// Partner wire of the XX-native central rotation for a block: the highest
/// support index other than the target. Shared by the cost model and the
/// emitter so model counts and emitted circuits agree.
[[nodiscard]] inline std::size_t xx_partner(const pauli::PauliString& p,
                                            std::size_t target) {
  for (std::size_t q = p.num_qubits(); q-- > 0;)
    if (q != target && p.letter(q) != pauli::Letter::I) return q;
  return target;  // weight <= 1: no partner
}

namespace detail {

/// CNOT(c,t) as native XX: up to a global phase e^{i pi/4},
///   CNOT = Rz_c(pi/2) . Rx_t(pi/2) . H_c . XX(-pi/2) . H_c
/// (all factors commute; derived from CNOT = exp(i pi/4 (I - Z_c)(I - X_t))).
inline void push_xx_cnot(circuit::PeepholeBuilder& out, std::size_t c,
                         std::size_t t) {
  out.push(circuit::Gate::h(c));
  out.push(circuit::Gate::xxrot(c, t, -M_PI / 2));
  out.push(circuit::Gate::h(c));
  out.push(circuit::Gate::rz(c, M_PI / 2));
  out.push(circuit::Gate::rx(t, M_PI / 2));
}

}  // namespace detail

/// Rewrites a circuit into the target's native gate set: on constrained
/// targets, SWAP-routes first (circuit/routing.hpp); on XX-native targets,
/// lowers CNOT/CZ/SWAP to Moelmer-Sorensen pulses and the XY/Givens block to
/// its two XX halves. The result implements exactly the same unitary (up to
/// global phase), so it certifies against the original compilation spec.
[[nodiscard]] inline circuit::QuantumCircuit lower_to_target(
    const circuit::QuantumCircuit& in, const HardwareTarget& hw,
    int* swaps_inserted = nullptr) {
  circuit::QuantumCircuit work = in;
  int swaps = 0;
  if (hw.coupling.constrained()) {
    circuit::RoutingResult routed = circuit::route_circuit(work, hw.coupling);
    work = std::move(routed.circuit);
    swaps = routed.swaps_inserted;
  }
  if (swaps_inserted != nullptr) *swaps_inserted = swaps;
  if (hw.entangler != EntanglerKind::kXX) return work;
  circuit::PeepholeBuilder out(work.num_qubits());
  for (const circuit::Gate& g : work.gates()) {
    switch (g.kind) {
      case circuit::GateKind::kCnot:
        detail::push_xx_cnot(out, g.q0, g.q1);
        break;
      case circuit::GateKind::kCz:
        // CZ = (I @ H) CNOT (I @ H).
        out.push(circuit::Gate::h(g.q1));
        detail::push_xx_cnot(out, g.q0, g.q1);
        out.push(circuit::Gate::h(g.q1));
        break;
      case circuit::GateKind::kSwap:
        detail::push_xx_cnot(out, g.q0, g.q1);
        detail::push_xx_cnot(out, g.q1, g.q0);
        detail::push_xx_cnot(out, g.q0, g.q1);
        break;
      case circuit::GateKind::kXYrot:
        // exp(-i a/2 (XX + YY)): the XX half natively, the YY half as the
        // S-conjugated XX rotation (Y = S X Sdg on each wire).
        out.push(circuit::Gate::xxrot(g.q0, g.q1, g.angle, g.param));
        out.push(circuit::Gate::sdg(g.q0));
        out.push(circuit::Gate::sdg(g.q1));
        out.push(circuit::Gate::xxrot(g.q0, g.q1, g.angle, g.param));
        out.push(circuit::Gate::s(g.q0));
        out.push(circuit::Gate::s(g.q1));
        break;
      default: out.push(g); break;
    }
  }
  return out.take();
}

}  // namespace femto::synth
