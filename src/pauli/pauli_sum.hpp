// Linear combinations of Pauli strings (qubit operators).
//
// PauliSum is the qubit-side image of fermionic operators: Hamiltonians,
// excitation generators, and second-order correction operators all land here
// after a fermion-to-qubit transformation.
#pragma once

#include <complex>
#include <unordered_map>
#include <vector>

#include "pauli/pauli_string.hpp"

namespace femto::pauli {

/// One addend of a PauliSum: coefficient times a *letter-form* string.
/// The string's prefactor is always folded into the coefficient so that
/// equal letter patterns merge.
struct PauliTerm {
  Complex coefficient;
  PauliString string;  // canonical: sign() == +1
};

class PauliSum {
 public:
  PauliSum() = default;
  explicit PauliSum(std::size_t n) : n_(n) {}

  [[nodiscard]] static PauliSum zero(std::size_t n) { return PauliSum(n); }

  [[nodiscard]] static PauliSum from_term(Complex coeff, PauliString s) {
    PauliSum sum(s.num_qubits());
    sum.add(coeff, std::move(s));
    return sum;
  }

  [[nodiscard]] std::size_t num_qubits() const { return n_; }
  [[nodiscard]] const std::vector<PauliTerm>& terms() const { return terms_; }
  [[nodiscard]] std::size_t size() const { return terms_.size(); }
  [[nodiscard]] bool empty() const { return terms_.empty(); }

  /// Adds coeff * s, folding s's prefactor into the coefficient and merging
  /// with an existing equal-letter term if present.
  void add(Complex coeff, PauliString s) {
    FEMTO_EXPECTS(n_ == 0 || s.num_qubits() == n_);
    if (n_ == 0) n_ = s.num_qubits();
    coeff *= s.sign();
    canonicalize(s);
    const auto it = index_.find(s);
    if (it != index_.end()) {
      terms_[it->second].coefficient += coeff;
    } else {
      index_.emplace(s, terms_.size());
      terms_.push_back({coeff, std::move(s)});
    }
  }

  void add(const PauliSum& other) {
    for (const PauliTerm& t : other.terms_) add(t.coefficient, t.string);
  }

  [[nodiscard]] friend PauliSum operator+(PauliSum lhs, const PauliSum& rhs) {
    lhs.add(rhs);
    return lhs;
  }

  [[nodiscard]] friend PauliSum operator*(Complex scalar, PauliSum sum) {
    for (PauliTerm& t : sum.terms_) t.coefficient *= scalar;
    return sum;
  }

  /// Operator product (distributes over all term pairs).
  [[nodiscard]] friend PauliSum operator*(const PauliSum& lhs,
                                          const PauliSum& rhs) {
    PauliSum out(std::max(lhs.n_, rhs.n_));
    for (const PauliTerm& a : lhs.terms_)
      for (const PauliTerm& b : rhs.terms_)
        out.add(a.coefficient * b.coefficient, a.string * b.string);
    out.prune();
    return out;
  }

  [[nodiscard]] PauliSum adjoint() const {
    PauliSum out(n_);
    for (const PauliTerm& t : terms_)
      out.add(std::conj(t.coefficient), t.string.adjoint());
    return out;
  }

  /// Drops terms with |coefficient| <= eps and rebuilds the index.
  void prune(double eps = 1e-12) {
    std::vector<PauliTerm> kept;
    kept.reserve(terms_.size());
    for (PauliTerm& t : terms_)
      if (std::abs(t.coefficient) > eps) kept.push_back(std::move(t));
    terms_ = std::move(kept);
    index_.clear();
    for (std::size_t i = 0; i < terms_.size(); ++i)
      index_.emplace(terms_[i].string, i);
  }

  /// Coefficient of the identity string (0 if absent).
  [[nodiscard]] Complex identity_coefficient() const {
    for (const PauliTerm& t : terms_)
      if (t.string.is_identity_letters()) return t.coefficient;
    return {0.0, 0.0};
  }

  [[nodiscard]] std::string to_string() const {
    std::string out;
    for (const PauliTerm& t : terms_) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "(%+.6g%+.6gi) ", t.coefficient.real(),
                    t.coefficient.imag());
      out += buf;
      out += t.string.to_string().substr(1);  // strip the '+' sign
      out += '\n';
    }
    return out;
  }

 private:
  /// Forces sign() == +1 by zeroing the phase relative to the Y count.
  static void canonicalize(PauliString& s) {
    const int y_count = static_cast<int>((s.x() & s.z()).popcount());
    s.set_phase_exponent(y_count);
  }

  std::size_t n_ = 0;
  std::vector<PauliTerm> terms_;
  std::unordered_map<PauliString, std::size_t, PauliLettersHash, PauliLettersEq>
      index_;
};

}  // namespace femto::pauli
