// Pauli strings in symplectic (x, z, phase) representation.
//
// A string is stored as  P = i^k * prod_j X_j^{x_j} Z_j^{z_j}  with
// k in {0,1,2,3}. The letter form (tensor products of I,X,Y,Z with a +/-
// sign) is derived on demand: on a site with x=z=1 the stored word is
// XZ = -iY, so the letter-form sign is i^(k - #Y mod 4).
//
// Exact phase tracking matters: the advanced fermion-to-qubit transformation
// (paper Sec. III-C) conjugates strings by CNOT networks, which flips signs
// (e.g. CNOT (Y@Y) CNOT = -X@Z), and the VQE energies depend on them.
#pragma once

#include <complex>
#include <cstdint>
#include <string>

#include "gf2/bitvec.hpp"

namespace femto::pauli {

using Complex = std::complex<double>;

/// Single-qubit Pauli letter.
enum class Letter : std::uint8_t { I = 0, X = 1, Y = 2, Z = 3 };

[[nodiscard]] constexpr char letter_char(Letter l) {
  constexpr char table[] = {'I', 'X', 'Y', 'Z'};
  return table[static_cast<int>(l)];
}

/// n-qubit Pauli string with an i^k prefactor.
class PauliString {
 public:
  PauliString() = default;
  explicit PauliString(std::size_t n) : x_(n), z_(n) {}

  /// Identity string on n qubits.
  [[nodiscard]] static PauliString identity(std::size_t n) {
    return PauliString(n);
  }

  /// Single-letter string: `letter` at qubit `q`, identity elsewhere.
  [[nodiscard]] static PauliString single(std::size_t n, std::size_t q,
                                          Letter letter) {
    PauliString p(n);
    p.set_letter(q, letter);
    return p;
  }

  /// Parses e.g. "XXIZ" (qubit 0 first); optional leading '+'/'-'.
  [[nodiscard]] static PauliString from_string(const std::string& s) {
    std::size_t begin = 0;
    bool negative = false;
    if (!s.empty() && (s[0] == '+' || s[0] == '-')) {
      negative = s[0] == '-';
      begin = 1;
    }
    PauliString p(s.size() - begin);
    for (std::size_t i = begin; i < s.size(); ++i) {
      switch (s[i]) {
        case 'I': break;
        case 'X': p.set_letter(i - begin, Letter::X); break;
        case 'Y': p.set_letter(i - begin, Letter::Y); break;
        case 'Z': p.set_letter(i - begin, Letter::Z); break;
        default: FEMTO_EXPECTS(false && "bad Pauli character");
      }
    }
    if (negative) p.phase_ = (p.phase_ + 2) & 3;
    return p;
  }

  [[nodiscard]] std::size_t num_qubits() const { return x_.size(); }

  [[nodiscard]] Letter letter(std::size_t q) const {
    // code: 0 -> I, 1 (x only) -> X, 2 (z only) -> Z, 3 (both) -> Y.
    // Debug-checked accessors: letter() runs per site inside the cost-model
    // and sorting inner loops, where the release-mode bounds branch of
    // BitVec::get was measurable.
    const int code = (x_.get_u(q) ? 1 : 0) | (z_.get_u(q) ? 2 : 0);
    constexpr Letter table[] = {Letter::I, Letter::X, Letter::Z, Letter::Y};
    return table[code];
  }

  /// Sets the letter at qubit q, adjusting the i^k prefactor so that the
  /// letter form keeps its current sign on the other sites.
  void set_letter(std::size_t q, Letter letter) {
    // Remove the current letter's contribution.
    if (x_.get(q) && z_.get(q)) phase_ = (phase_ + 3) & 3;  // was Y: divide by i
    x_.set(q, false);
    z_.set(q, false);
    switch (letter) {
      case Letter::I: break;
      case Letter::X: x_.set(q, true); break;
      case Letter::Z: z_.set(q, true); break;
      case Letter::Y:
        x_.set(q, true);
        z_.set(q, true);
        phase_ = (phase_ + 1) & 3;  // Y = i * XZ
        break;
    }
  }

  [[nodiscard]] const gf2::BitVec& x() const { return x_; }
  [[nodiscard]] const gf2::BitVec& z() const { return z_; }
  [[nodiscard]] int phase_exponent() const { return phase_; }

  /// Replaces the symplectic parts wholesale (used by the fast Gamma-matrix
  /// conjugation path where signs are irrelevant).
  void set_symplectic(gf2::BitVec x, gf2::BitVec z) {
    FEMTO_EXPECTS(x.size() == z.size());
    x_ = std::move(x);
    z_ = std::move(z);
  }

  void set_phase_exponent(int k) { phase_ = k & 3; }

  /// Number of non-identity sites. Fused or+popcount over the word spans:
  /// no temporary BitVec, SIMD-dispatched (string_cost calls this per block
  /// inside the annealing loops).
  [[nodiscard]] std::size_t weight() const {
    return gf2::wordops::or_popcount(x_.word_data(), z_.word_data(),
                                     x_.word_count());
  }

  /// Bit mask of non-identity sites.
  [[nodiscard]] gf2::BitVec support() const { return x_ | z_; }

  [[nodiscard]] bool is_identity_letters() const {
    return !x_.any() && !z_.any();
  }

  /// True when this string equals +/- a tensor of Hermitian letters
  /// (equivalently the overall prefactor is real).
  [[nodiscard]] bool is_hermitian() const {
    const int y_count = static_cast<int>((x_ & z_).popcount());
    return ((phase_ - y_count) & 1) == 0;
  }

  /// Letter-form sign as a complex unit: i^(k - #Y).
  [[nodiscard]] Complex sign() const {
    const int y_count = static_cast<int>((x_ & z_).popcount());
    switch ((phase_ - y_count) & 3) {
      case 0: return {1.0, 0.0};
      case 1: return {0.0, 1.0};
      case 2: return {-1.0, 0.0};
      default: return {0.0, -1.0};
    }
  }

  /// Product of two strings with exact phase: per-site reordering
  /// Z^{z1} X^{x2} = (-1)^{z1 x2} X^{x2} Z^{z1}.
  [[nodiscard]] friend PauliString operator*(const PauliString& a,
                                             const PauliString& b) {
    FEMTO_EXPECTS(a.num_qubits() == b.num_qubits());
    PauliString out(a.num_qubits());
    out.x_ = a.x_ ^ b.x_;
    out.z_ = a.z_ ^ b.z_;
    int k = a.phase_ + b.phase_;
    if (a.z_.dot(b.x_)) k += 2;
    out.phase_ = k & 3;
    return out;
  }

  [[nodiscard]] PauliString adjoint() const {
    PauliString out = *this;
    // (i^k X^x Z^z)^dag = i^{-k} Z^z X^x = i^{-k} (-1)^{x.z} X^x Z^z
    int k = -phase_;
    if (x_.dot(z_)) k += 2;
    out.phase_ = k & 3;
    return out;
  }

  /// True when the two strings commute (symplectic form is even).
  [[nodiscard]] bool commutes_with(const PauliString& other) const {
    return x_.dot(other.z_) == z_.dot(other.x_);
  }

  /// Compares letters only (ignores the prefactor).
  [[nodiscard]] bool same_letters(const PauliString& other) const {
    return x_ == other.x_ && z_ == other.z_;
  }

  [[nodiscard]] bool operator==(const PauliString& other) const {
    return phase_ == other.phase_ && x_ == other.x_ && z_ == other.z_;
  }

  /// Letter form, e.g. "-XXIZ". Only defined up to the letter-form sign for
  /// Hermitian strings; general strings print the i^k form.
  [[nodiscard]] std::string to_string() const {
    std::string out;
    const Complex s = sign();
    if (s == Complex{1.0, 0.0})
      out += '+';
    else if (s == Complex{-1.0, 0.0})
      out += '-';
    else if (s == Complex{0.0, 1.0})
      out += "+i";
    else
      out += "-i";
    for (std::size_t q = 0; q < num_qubits(); ++q)
      out += letter_char(letter(q));
    return out;
  }

 private:
  gf2::BitVec x_;
  gf2::BitVec z_;
  int phase_ = 0;  // exponent k of the i^k prefactor
};

/// Hash over letters *and* phase.
struct PauliStringHash {
  [[nodiscard]] std::size_t operator()(const PauliString& p) const {
    std::size_t h = gf2::hash_value(p.x());
    h = h * 31 + gf2::hash_value(p.z());
    return h * 31 + static_cast<std::size_t>(p.phase_exponent());
  }
};

/// Hash/equality over letters only (prefactor ignored); used when grouping
/// strings into GTSP clusters.
struct PauliLettersHash {
  [[nodiscard]] std::size_t operator()(const PauliString& p) const {
    return gf2::hash_value(p.x()) * 31 + gf2::hash_value(p.z());
  }
};
struct PauliLettersEq {
  [[nodiscard]] bool operator()(const PauliString& a,
                                const PauliString& b) const {
    return a.same_letters(b);
  }
};

}  // namespace femto::pauli
