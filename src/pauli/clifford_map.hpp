// Conjugation of Pauli strings by Clifford circuits, represented by the
// images of the X_j and Z_j generators.
//
// This is the workhorse of the generalized fermion-to-qubit transformation
// (paper Sec. III-C): Gamma in GL(N,2) denotes a CNOT network U_Gamma, and
// every Jordan-Wigner string P is replaced by U_Gamma P U_Gamma^dag.
// Computing images via generator products keeps all signs exact without a
// hand-derived phase table per gate.
#pragma once

#include <vector>

#include "gf2/linear_synthesis.hpp"
#include "pauli/pauli_string.hpp"

namespace femto::pauli {

/// A Clifford unitary represented by its conjugation action on X_j and Z_j.
class CliffordMap {
 public:
  explicit CliffordMap(std::size_t n) {
    img_x_.reserve(n);
    img_z_.reserve(n);
    for (std::size_t q = 0; q < n; ++q) {
      img_x_.push_back(PauliString::single(n, q, Letter::X));
      img_z_.push_back(PauliString::single(n, q, Letter::Z));
    }
  }

  [[nodiscard]] std::size_t num_qubits() const { return img_x_.size(); }

  /// U P U^dag. The product of per-site images is well defined because the
  /// factors X_j^{x_j} Z_j^{z_j} of P mutually commute, hence so do their
  /// images.
  [[nodiscard]] PauliString apply(const PauliString& p) const {
    FEMTO_EXPECTS(p.num_qubits() == num_qubits());
    PauliString out = PauliString::identity(num_qubits());
    for (std::size_t q = 0; q < num_qubits(); ++q) {
      if (p.x().get(q)) out = out * img_x_[q];
      if (p.z().get(q)) out = out * img_z_[q];
    }
    out.set_phase_exponent(out.phase_exponent() + p.phase_exponent());
    return out;
  }

  /// Post-composes with one gate: this becomes (gate . this), i.e. images are
  /// conjugated by the new gate. Folding a circuit gate-by-gate in time order
  /// yields the map of the full circuit.
  void then_cnot(std::size_t control, std::size_t target) {
    for (auto* table : {&img_x_, &img_z_})
      for (PauliString& p : *table) p = conj_cnot(p, control, target);
  }
  void then_hadamard(std::size_t q) {
    for (auto* table : {&img_x_, &img_z_})
      for (PauliString& p : *table) p = conj_h(p, q);
  }
  void then_phase(std::size_t q) {  // S gate
    for (auto* table : {&img_x_, &img_z_})
      for (PauliString& p : *table) p = conj_s(p, q);
  }

  /// Clifford map of a CNOT network (applied in gate order).
  [[nodiscard]] static CliffordMap from_cnot_network(
      std::size_t n, const std::vector<gf2::CnotGate>& gates) {
    CliffordMap map(n);
    for (const gf2::CnotGate& g : gates) map.then_cnot(g.control, g.target);
    return map;
  }

  /// Single-gate conjugations used both internally and by tests.
  [[nodiscard]] static PauliString conj_cnot(const PauliString& p,
                                             std::size_t c, std::size_t t) {
    // X_c -> X_c X_t, Z_t -> Z_c Z_t, X_t and Z_c fixed. Implemented via the
    // product form to keep phases exact.
    const std::size_t n = p.num_qubits();
    PauliString out = PauliString::identity(n);
    for (std::size_t q = 0; q < n; ++q) {
      if (p.x().get(q)) {
        PauliString img = PauliString::single(n, q, Letter::X);
        if (q == c) img = img * PauliString::single(n, t, Letter::X);
        out = out * img;
      }
      if (p.z().get(q)) {
        PauliString img = PauliString::single(n, q, Letter::Z);
        if (q == t) img = img * PauliString::single(n, c, Letter::Z);
        out = out * img;
      }
    }
    out.set_phase_exponent(out.phase_exponent() + p.phase_exponent());
    return out;
  }

  [[nodiscard]] static PauliString conj_h(const PauliString& p, std::size_t h) {
    const std::size_t n = p.num_qubits();
    PauliString out = PauliString::identity(n);
    for (std::size_t q = 0; q < n; ++q) {
      if (p.x().get(q))
        out = out * PauliString::single(n, q, q == h ? Letter::Z : Letter::X);
      if (p.z().get(q))
        out = out * PauliString::single(n, q, q == h ? Letter::X : Letter::Z);
    }
    out.set_phase_exponent(out.phase_exponent() + p.phase_exponent());
    return out;
  }

  [[nodiscard]] static PauliString conj_s(const PauliString& p, std::size_t s) {
    const std::size_t n = p.num_qubits();
    PauliString out = PauliString::identity(n);
    for (std::size_t q = 0; q < n; ++q) {
      if (p.x().get(q))
        out = out * PauliString::single(n, q, q == s ? Letter::Y : Letter::X);
      if (p.z().get(q)) out = out * PauliString::single(n, q, Letter::Z);
    }
    out.set_phase_exponent(out.phase_exponent() + p.phase_exponent());
    return out;
  }

 private:
  std::vector<PauliString> img_x_;
  std::vector<PauliString> img_z_;
};

}  // namespace femto::pauli
