// Span-based tracing with a Chrome trace-event JSON exporter.
//
// The design goal is a tracer whose DISABLED cost is genuinely zero on the
// compile hot path: constructing a Span when no tracer is active is one
// relaxed atomic load -- no clock read, no allocation, no branch beyond the
// null check. Enabling tracing is a runtime switch (Tracer::set_active), so
// one binary serves both the instrumented daemon and the untraced benches,
// and CI pins the enabled overhead (bench_pipeline trace_overhead_ratio).
//
// Concurrency model: every thread appends completed spans to its OWN
// buffer, acquired once per (thread, tracer) pair and cached in a
// thread_local slot keyed by the tracer's globally unique id -- so the
// steady-state record path is entirely uncontended (the registration lock
// is taken once per thread per tracer). Export (to_json) must only run at a
// quiescent point: after the pool work whose spans it collects has joined
// (CompilePipeline::compile returning, or the service scheduler between
// works, both of which are synchronization points for their worker
// threads). That restriction is what lets the record path stay lock-free.
//
// Exported JSON is the Chrome trace-event format: an object with a
// "traceEvents" array of complete ("ph":"X") events, timestamps in
// microseconds relative to the tracer's epoch. Load the file directly in
// Perfetto (https://ui.perfetto.dev) or chrome://tracing.
//
// This header depends only on the standard library so every layer (core,
// synth, db, service) can include it without cycles.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace femto::obs {

/// One completed span or instant, ready for export. Only built when a
/// tracer is active; the disabled path never constructs one.
struct TraceEvent {
  std::string name;
  const char* cat = "";
  std::int64_t ts_us = 0;   // start, microseconds since tracer epoch
  std::int64_t dur_us = 0;  // duration in microseconds
  std::uint32_t tid = 0;    // per-tracer thread registration index
  /// String-valued and integer-valued span args, kept separate so export
  /// needs no variant machinery.
  std::vector<std::pair<std::string, std::string>> sargs;
  std::vector<std::pair<std::string, std::int64_t>> iargs;
};

class Tracer {
 public:
  using clock = std::chrono::steady_clock;

  /// Epoch defaults to construction time; pass an earlier point (e.g. a
  /// request's submit time) so pre-run phases keep non-negative timestamps.
  explicit Tracer(clock::time_point epoch = clock::now())
      : id_(next_id().fetch_add(1, std::memory_order_relaxed) + 1),
        epoch_(epoch) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The process-wide active tracer (nullptr = tracing disabled). The
  /// record path reads this with ONE relaxed load; see file comment.
  [[nodiscard]] static Tracer* active() {
    return active_ptr().load(std::memory_order_relaxed);
  }

  /// Installs (or, with nullptr, removes) the active tracer. Not a
  /// synchronization point: switch tracers only when no instrumented work
  /// is in flight (the service scheduler runs works serially, so between
  /// works is safe).
  static void set_active(Tracer* tracer) {
    active_ptr().store(tracer, std::memory_order_release);
  }

  [[nodiscard]] clock::time_point epoch() const { return epoch_; }

  [[nodiscard]] std::int64_t since_epoch_us(clock::time_point t) const {
    return std::chrono::duration_cast<std::chrono::microseconds>(t - epoch_)
        .count();
  }

  /// Appends a completed event with EXPLICIT timestamps to the calling
  /// thread's buffer -- how cross-thread phases (queue wait measured by the
  /// scheduler from the recorded submit time) enter the trace.
  void emit_complete(TraceEvent event, clock::time_point start,
                     clock::time_point end) {
    event.ts_us = since_epoch_us(start);
    event.dur_us = since_epoch_us(end) - event.ts_us;
    append(std::move(event));
  }

  /// Appends a pre-stamped event to the calling thread's buffer.
  void append(TraceEvent event) {
    Buffer* buf = buffer_for_this_thread();
    event.tid = buf->tid;
    buf->events.push_back(std::move(event));
  }

  /// Total events recorded so far (quiescent points only; see file
  /// comment).
  [[nodiscard]] std::size_t event_count() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::size_t n = 0;
    for (const std::unique_ptr<Buffer>& b : buffers_) n += b->events.size();
    return n;
  }

  /// Chrome trace-event JSON of everything recorded. Only call at a
  /// quiescent point (all span-emitting work joined).
  [[nodiscard]] std::string to_json() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::string out = "{\"traceEvents\":[";
    bool first = true;
    for (const std::unique_ptr<Buffer>& buf : buffers_) {
      for (const TraceEvent& e : buf->events) {
        if (!first) out += ',';
        first = false;
        out += "{\"name\":";
        append_json_string(out, e.name);
        out += ",\"cat\":";
        append_json_string(out, e.cat);
        out += ",\"ph\":\"X\",\"ts\":";
        out += std::to_string(e.ts_us);
        out += ",\"dur\":";
        out += std::to_string(e.dur_us);
        out += ",\"pid\":1,\"tid\":";
        out += std::to_string(e.tid);
        if (!e.sargs.empty() || !e.iargs.empty()) {
          out += ",\"args\":{";
          bool first_arg = true;
          for (const auto& [k, v] : e.sargs) {
            if (!first_arg) out += ',';
            first_arg = false;
            append_json_string(out, k);
            out += ':';
            append_json_string(out, v);
          }
          for (const auto& [k, v] : e.iargs) {
            if (!first_arg) out += ',';
            first_arg = false;
            append_json_string(out, k);
            out += ':';
            out += std::to_string(v);
          }
          out += '}';
        }
        out += '}';
      }
    }
    out += "]}";
    return out;
  }

 private:
  friend class Span;

  struct Buffer {
    std::uint32_t tid = 0;
    std::vector<TraceEvent> events;
  };

  /// The per-(thread, tracer) buffer, cached in a thread_local slot keyed
  /// by the tracer's unique id so a stale pointer from a destroyed tracer
  /// (even one reallocated at the same address) can never be dereferenced.
  [[nodiscard]] Buffer* buffer_for_this_thread() {
    struct TlsSlot {
      std::uint64_t tracer_id = 0;
      Buffer* buffer = nullptr;
    };
    thread_local TlsSlot slot;
    if (slot.tracer_id != id_) {
      const std::lock_guard<std::mutex> lock(mutex_);
      buffers_.push_back(std::make_unique<Buffer>());
      buffers_.back()->tid = static_cast<std::uint32_t>(buffers_.size() - 1);
      slot = {id_, buffers_.back().get()};
    }
    return slot.buffer;
  }

  static void append_json_string(std::string& out, std::string_view s) {
    out += '"';
    for (const char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char hex[8];
            std::snprintf(hex, sizeof hex, "\\u%04x",
                          static_cast<unsigned>(c) & 0xff);
            out += hex;
          } else {
            out += c;
          }
      }
    }
    out += '"';
  }

  [[nodiscard]] static std::atomic<Tracer*>& active_ptr() {
    static std::atomic<Tracer*> p{nullptr};
    return p;
  }
  [[nodiscard]] static std::atomic<std::uint64_t>& next_id() {
    static std::atomic<std::uint64_t> n{0};
    return n;
  }

  const std::uint64_t id_;
  const clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Buffer>> buffers_;  // pointer-stable
};

/// RAII span: records a complete trace event from construction to
/// destruction on the tracer active AT CONSTRUCTION. When tracing is
/// disabled the constructor is one relaxed load and every other member
/// function is a no-op -- no clock reads, no allocations (the zero-cost
/// contract tests/test_obs.cpp pins with an allocation-counting
/// operator new).
class Span {
 public:
  Span(const char* name, const char* cat)
      : tracer_(Tracer::active()), name_(name), cat_(cat) {
    if (tracer_ != nullptr) start_ = Tracer::clock::now();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() {
    if (tracer_ == nullptr) return;
    TraceEvent e;
    e.name = name_;
    e.cat = cat_;
    e.sargs = std::move(sargs_);
    e.iargs = std::move(iargs_);
    tracer_->emit_complete(std::move(e), start_, Tracer::clock::now());
  }

  /// True when this span is recording (a tracer was active at
  /// construction).
  [[nodiscard]] bool enabled() const { return tracer_ != nullptr; }

  void arg(const char* key, std::string_view value) {
    if (tracer_ != nullptr) sargs_.emplace_back(key, std::string(value));
  }
  void arg(const char* key, std::int64_t value) {
    if (tracer_ != nullptr) iargs_.emplace_back(key, value);
  }
  void arg(const char* key, std::size_t value) {
    arg(key, static_cast<std::int64_t>(value));
  }
  void arg(const char* key, int value) {
    arg(key, static_cast<std::int64_t>(value));
  }

 private:
  Tracer* const tracer_;
  const char* const name_;
  const char* const cat_;
  Tracer::clock::time_point start_{};
  std::vector<std::pair<std::string, std::string>> sargs_;
  std::vector<std::pair<std::string, std::int64_t>> iargs_;
};

}  // namespace femto::obs
