// Unified process-global metrics registry: counters, gauges, and
// fixed-bucket latency histograms with p50/p95/p99.
//
// This is the one place runtime counters live. The ad-hoc stat structs that
// predate it (service::ServiceStats, synth::SynthesisCache::Stats) survive
// as per-instance views for their existing tests, but every increment is
// mirrored here under a STABLE metric name, and the femtod `metrics` wire
// op exports this registry -- so dashboards and scripts can rely on the
// names below never changing meaning:
//
//   counters   cache.l1_hits / cache.misses / cache.l2_hits /
//              cache.evictions        SynthesisCache memo outcomes
//              db.lookups / db.hits / db.misses
//                                     persistent database lookups
//              pipeline.compiles      CompilePipeline::compile() calls
//              pipeline.restarts_completed / pipeline.restarts_skipped
//              pipeline.restart_retries
//                                     restart jobs recomputed after an
//                                     injected pipeline.restart fault
//                                     (bit-identical by purity)
//              solver.sa_solves / solver.sa_steps
//              solver.gtsp_solves / solver.gtsp_generations
//              service.submitted / service.coalesced / service.done /
//              service.cancelled / service.deadline_exceeded /
//              service.rejected / service.works_run / service.plans_served
//              service.retries        CompileClient::compile_retry attempts
//                                     beyond the first
//              service.reconnects     client connections re-established
//                                     after a transport fault
//              sim.batched_states_applied
//                                     states advanced by BatchedState ops
//                                     (batch size per gate/circuit/sweep)
//   gauges     service.queue_depth    live admission-queue length
//              service.in_flight      submitted tickets not yet terminal
//              service.degraded       1 once a pipeline entered degraded
//                                     (database-less) serving
//              sim.simd_level         active kernel dispatch level
//                                     (0 portable, 1 AVX2, 2 AVX-512)
//   histograms service.request_latency_s   submit -> terminal, seconds
//              service.queue_wait_s        submit -> scheduler pickup
//
// Concurrency: metric objects are atomics; record paths are lock-free and
// wait-free (relaxed increments -- these are statistics, not
// synchronization). The registry itself hands out pointer-stable
// references under a mutex; instrumentation sites cache the reference in a
// function-local static so steady state never touches the registry lock.
//
// Depends only on the standard library; exporters build their own JSON
// (service/server.hpp renders the canonical wire form via service/json.hpp).
#pragma once

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace femto::obs {

/// Monotonic counter.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous signed level.
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed exponential-bucket latency histogram: bucket i spans
/// [1us * 2^i, 1us * 2^(i+1)), 30 buckets (1us .. ~17min) plus an
/// underflow-into-first and overflow-into-last policy. Percentiles are
/// derived from bucket counts and reported as the bucket's UPPER bound --
/// an over-estimate by at most one bucket width (2x), which is the
/// standard fixed-bucket trade: no allocation, no locking, O(1) record.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 30;

  void record(double seconds) {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_us_.fetch_add(
        static_cast<std::uint64_t>(std::max(0.0, seconds) * 1e6),
        std::memory_order_relaxed);
    buckets_[bucket_for(seconds)].fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum_s() const {
    return static_cast<double>(sum_us_.load(std::memory_order_relaxed)) *
           1e-6;
  }

  /// Upper bound of the bucket containing the q-quantile (q in [0, 1]);
  /// 0 when empty.
  [[nodiscard]] double quantile_s(double q) const {
    std::uint64_t counts[kBuckets];
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      counts[i] = buckets_[i].load(std::memory_order_relaxed);
      total += counts[i];
    }
    if (total == 0) return 0.0;
    const double rank = q * static_cast<double>(total);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += counts[i];
      if (static_cast<double>(seen) >= rank) return upper_bound_s(i);
    }
    return upper_bound_s(kBuckets - 1);
  }

  [[nodiscard]] static double upper_bound_s(std::size_t bucket) {
    return 1e-6 * static_cast<double>(std::uint64_t{1} << (bucket + 1));
  }

 private:
  [[nodiscard]] static std::size_t bucket_for(double seconds) {
    const double us = seconds * 1e6;
    if (us < 2.0) return 0;
    const auto b = static_cast<std::size_t>(std::log2(us));
    return b >= kBuckets ? kBuckets - 1 : b;
  }

  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_us_{0};
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
};

/// Point-in-time view of one histogram, for exporters.
struct HistogramView {
  std::string name;
  std::uint64_t count = 0;
  double sum_s = 0.0;
  double p50_s = 0.0;
  double p95_s = 0.0;
  double p99_s = 0.0;
};

/// Point-in-time view of the whole registry, name-sorted (std::map order),
/// so exports are deterministic for a given set of recorded metrics.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<HistogramView> histograms;
};

class Registry {
 public:
  /// Find-or-create; the returned reference is valid for the registry's
  /// lifetime (metrics are never erased). Cache it in a function-local
  /// static at the instrumentation site.
  [[nodiscard]] Counter& counter(const std::string& name) {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = counters_[name];
    if (slot == nullptr) slot = std::make_unique<Counter>();
    return *slot;
  }
  [[nodiscard]] Gauge& gauge(const std::string& name) {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = gauges_[name];
    if (slot == nullptr) slot = std::make_unique<Gauge>();
    return *slot;
  }
  [[nodiscard]] Histogram& histogram(const std::string& name) {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = histograms_[name];
    if (slot == nullptr) slot = std::make_unique<Histogram>();
    return *slot;
  }

  [[nodiscard]] MetricsSnapshot snapshot() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    MetricsSnapshot out;
    out.counters.reserve(counters_.size());
    for (const auto& [name, c] : counters_)
      out.counters.emplace_back(name, c->value());
    out.gauges.reserve(gauges_.size());
    for (const auto& [name, g] : gauges_)
      out.gauges.emplace_back(name, g->value());
    out.histograms.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_) {
      HistogramView v;
      v.name = name;
      v.count = h->count();
      v.sum_s = h->sum_s();
      v.p50_s = h->quantile_s(0.50);
      v.p95_s = h->quantile_s(0.95);
      v.p99_s = h->quantile_s(0.99);
      out.histograms.push_back(std::move(v));
    }
    return out;
  }

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// THE process-global registry every layer records into and the femtod
/// `metrics` op exports.
[[nodiscard]] inline Registry& registry() {
  static Registry r;
  return r;
}

}  // namespace femto::obs
