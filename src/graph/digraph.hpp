// Directed and undirected graph utilities for the hybrid-encoding pipeline
// (Sec. III-A): sink/source peeling and randomized greedy vertex coloring.
#pragma once

#include <algorithm>
#include <vector>

#include "common/rng.hpp"

namespace femto::graph {

/// Simple directed graph over vertices 0..n-1 with adjacency matrices
/// (problem sizes here are tens of vertices).
class Digraph {
 public:
  explicit Digraph(std::size_t n) : n_(n), adj_(n, std::vector<bool>(n, false)) {}

  [[nodiscard]] std::size_t size() const { return n_; }

  void add_edge(std::size_t from, std::size_t to) {
    FEMTO_EXPECTS(from < n_ && to < n_ && from != to);
    adj_[from][to] = true;
  }

  [[nodiscard]] bool has_edge(std::size_t from, std::size_t to) const {
    return adj_[from][to];
  }

  [[nodiscard]] std::size_t out_degree(std::size_t v) const {
    std::size_t d = 0;
    for (std::size_t u = 0; u < n_; ++u)
      if (adj_[v][u]) ++d;
    return d;
  }

  [[nodiscard]] std::size_t in_degree(std::size_t v) const {
    std::size_t d = 0;
    for (std::size_t u = 0; u < n_; ++u)
      if (adj_[u][v]) ++d;
    return d;
  }

 private:
  std::size_t n_;
  std::vector<std::vector<bool>> adj_;
};

/// Result of iterative sink/source peeling (paper Sec. III-A "graph
/// reduction"). Sinks break no remaining symmetry and run first, in peel
/// order; sources are broken by nobody and run last, in *reverse* peel order;
/// the remainder goes to coloring.
struct PeelResult {
  std::vector<std::size_t> sinks;      // application order
  std::vector<std::size_t> sources;    // application order (already reversed)
  std::vector<std::size_t> remainder;  // vertices of the reduced graph
};

[[nodiscard]] inline PeelResult peel_sinks_sources(const Digraph& g) {
  const std::size_t n = g.size();
  std::vector<bool> removed(n, false);
  std::vector<std::size_t> out_deg(n, 0), in_deg(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    out_deg[v] = g.out_degree(v);
    in_deg[v] = g.in_degree(v);
  }
  PeelResult result;
  std::vector<std::size_t> source_rounds;  // collected in peel order
  bool changed = true;
  while (changed) {
    changed = false;
    // Identify this round's sinks and sources simultaneously (a vertex that
    // is both -- isolated -- counts as a sink).
    std::vector<std::size_t> round_sinks, round_sources;
    for (std::size_t v = 0; v < n; ++v) {
      if (removed[v]) continue;
      if (out_deg[v] == 0)
        round_sinks.push_back(v);
      else if (in_deg[v] == 0)
        round_sources.push_back(v);
    }
    for (std::size_t v : round_sinks) {
      removed[v] = true;
      result.sinks.push_back(v);
      changed = true;
    }
    for (std::size_t v : round_sources) {
      removed[v] = true;
      source_rounds.push_back(v);
      changed = true;
    }
    // Update degrees.
    if (changed) {
      for (std::size_t v = 0; v < n; ++v) {
        if (removed[v]) continue;
        std::size_t od = 0, id = 0;
        for (std::size_t u = 0; u < n; ++u) {
          if (removed[u]) continue;
          if (g.has_edge(v, u)) ++od;
          if (g.has_edge(u, v)) ++id;
        }
        out_deg[v] = od;
        in_deg[v] = id;
      }
    }
  }
  // Sources apply last; later-peeled sources must run before earlier ones.
  result.sources.assign(source_rounds.rbegin(), source_rounds.rend());
  for (std::size_t v = 0; v < n; ++v)
    if (!removed[v]) result.remainder.push_back(v);
  return result;
}

/// Distance value for vertices unreachable from the BFS source.
inline constexpr std::size_t kUnreachable = static_cast<std::size_t>(-1);

/// Single-source shortest paths by BFS (unit edge weights). `dist[v]` is the
/// hop count from `from` (kUnreachable if disconnected); `parent[v]` is the
/// predecessor of v on one shortest path (kUnreachable for the source and for
/// unreachable vertices). Used by the connectivity-aware router
/// (circuit/routing.hpp) to precompute next-hop tables.
struct BfsPaths {
  std::vector<std::size_t> dist;
  std::vector<std::size_t> parent;
};

[[nodiscard]] inline BfsPaths bfs_shortest_paths(const Digraph& g,
                                                 std::size_t from) {
  const std::size_t n = g.size();
  FEMTO_EXPECTS(from < n);
  BfsPaths out;
  out.dist.assign(n, kUnreachable);
  out.parent.assign(n, kUnreachable);
  out.dist[from] = 0;
  std::vector<std::size_t> frontier{from};
  while (!frontier.empty()) {
    std::vector<std::size_t> next;
    for (std::size_t v : frontier) {
      for (std::size_t u = 0; u < n; ++u) {
        if (!g.has_edge(v, u) || out.dist[u] != kUnreachable) continue;
        out.dist[u] = out.dist[v] + 1;
        out.parent[u] = v;
        next.push_back(u);
      }
    }
    frontier = std::move(next);
  }
  return out;
}

/// Undirected graph (for coloring), as a symmetric adjacency matrix.
class UndirectedGraph {
 public:
  explicit UndirectedGraph(std::size_t n)
      : n_(n), adj_(n, std::vector<bool>(n, false)) {}

  /// Drops edge directions of a digraph restricted to a vertex subset;
  /// vertices are re-indexed 0..subset.size()-1 in subset order.
  [[nodiscard]] static UndirectedGraph from_digraph_subset(
      const Digraph& g, const std::vector<std::size_t>& subset) {
    UndirectedGraph u(subset.size());
    for (std::size_t i = 0; i < subset.size(); ++i)
      for (std::size_t j = i + 1; j < subset.size(); ++j)
        if (g.has_edge(subset[i], subset[j]) || g.has_edge(subset[j], subset[i]))
          u.add_edge(i, j);
    return u;
  }

  [[nodiscard]] std::size_t size() const { return n_; }

  void add_edge(std::size_t a, std::size_t b) {
    FEMTO_EXPECTS(a < n_ && b < n_ && a != b);
    adj_[a][b] = adj_[b][a] = true;
  }

  [[nodiscard]] bool has_edge(std::size_t a, std::size_t b) const {
    return adj_[a][b];
  }

 private:
  std::size_t n_;
  std::vector<std::vector<bool>> adj_;
};

/// A proper coloring: color[v] in [0, num_colors).
struct Coloring {
  std::vector<int> color;
  int num_colors = 0;

  [[nodiscard]] std::vector<std::size_t> largest_class() const {
    std::vector<std::size_t> count(static_cast<std::size_t>(num_colors), 0);
    for (int c : color) ++count[static_cast<std::size_t>(c)];
    const int best = static_cast<int>(
        std::max_element(count.begin(), count.end()) - count.begin());
    std::vector<std::size_t> out;
    for (std::size_t v = 0; v < color.size(); ++v)
      if (color[v] == best) out.push_back(v);
    return out;
  }
};

[[nodiscard]] inline bool coloring_is_proper(const UndirectedGraph& g,
                                             const Coloring& c) {
  for (std::size_t a = 0; a < g.size(); ++a)
    for (std::size_t b = a + 1; b < g.size(); ++b)
      if (g.has_edge(a, b) && c.color[a] == c.color[b]) return false;
  return true;
}

/// Randomized greedy coloring (paper Sec. IV): vertices are visited in many
/// random orders; each vertex takes the smallest feasible existing color and
/// a new color only when forced. Best result = fewest colors, ties broken by
/// the larger maximum class.
[[nodiscard]] inline Coloring greedy_color_randomized(const UndirectedGraph& g,
                                                      Rng& rng,
                                                      int num_orders = 64) {
  const std::size_t n = g.size();
  Coloring best;
  best.num_colors = static_cast<int>(n) + 1;
  std::size_t best_class = 0;
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  for (int trial = 0; trial < std::max(1, num_orders); ++trial) {
    rng.shuffle(order);
    Coloring c;
    c.color.assign(n, -1);
    c.num_colors = 0;
    for (std::size_t v : order) {
      std::vector<bool> used(static_cast<std::size_t>(c.num_colors) + 1, false);
      for (std::size_t u = 0; u < n; ++u)
        if (g.has_edge(v, u) && c.color[u] >= 0)
          used[static_cast<std::size_t>(c.color[u])] = true;
      int chosen = -1;
      for (int col = 0; col < c.num_colors; ++col) {
        if (!used[static_cast<std::size_t>(col)]) {
          chosen = col;
          break;
        }
      }
      if (chosen < 0) chosen = c.num_colors++;
      c.color[v] = chosen;
    }
    const std::size_t cls = n == 0 ? 0 : c.largest_class().size();
    if (c.num_colors < best.num_colors ||
        (c.num_colors == best.num_colors && cls > best_class)) {
      best = c;
      best_class = cls;
    }
  }
  if (n == 0) best.num_colors = 0;
  return best;
}

/// Connected components of an index-pair graph (used to discover the
/// block-diagonal structure of Gamma, Sec. III-C). Returns, for each
/// component with >= 2 members, the sorted member list.
[[nodiscard]] inline std::vector<std::vector<std::size_t>> pair_components(
    std::size_t n, const std::vector<std::pair<std::size_t, std::size_t>>& pairs) {
  std::vector<std::size_t> parent(n);
  for (std::size_t i = 0; i < n; ++i) parent[i] = i;
  const auto find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const auto& [a, b] : pairs) {
    FEMTO_EXPECTS(a < n && b < n);
    parent[find(a)] = find(b);
  }
  std::vector<std::vector<std::size_t>> groups(n);
  for (std::size_t i = 0; i < n; ++i) groups[find(i)].push_back(i);
  std::vector<std::vector<std::size_t>> out;
  for (auto& g : groups)
    if (g.size() >= 2) out.push_back(std::move(g));
  return out;
}

}  // namespace femto::graph
