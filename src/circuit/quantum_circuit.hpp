// Quantum circuit container with gate statistics, inversion, and dumps.
#pragma once

#include <string>
#include <vector>

#include "circuit/gate.hpp"

namespace femto::circuit {

class QuantumCircuit {
 public:
  QuantumCircuit() = default;
  explicit QuantumCircuit(std::size_t n) : n_(n) {}

  [[nodiscard]] std::size_t num_qubits() const { return n_; }
  [[nodiscard]] const std::vector<Gate>& gates() const { return gates_; }
  /// Mutable access for rewrite passes (peephole); invariants (qubit bounds)
  /// are the caller's responsibility.
  [[nodiscard]] std::vector<Gate>& mutable_gates() { return gates_; }
  [[nodiscard]] std::size_t size() const { return gates_.size(); }
  [[nodiscard]] bool empty() const { return gates_.empty(); }

  void append(Gate g) {
    FEMTO_EXPECTS(g.q0 < n_ && (!g.two_qubit() || g.q1 < n_));
    gates_.push_back(g);
  }

  void append(const QuantumCircuit& other) {
    FEMTO_EXPECTS(other.n_ <= n_);
    for (const Gate& g : other.gates_) append(g);
  }

  /// Total entangling cost in CNOT-equivalents (the paper's figure of merit).
  [[nodiscard]] int cnot_count() const {
    int count = 0;
    for (const Gate& g : gates_) count += g.cnot_cost();
    return count;
  }

  [[nodiscard]] std::size_t single_qubit_count() const {
    std::size_t count = 0;
    for (const Gate& g : gates_)
      if (!g.two_qubit()) ++count;
    return count;
  }

  /// Number of distinct variational parameters referenced.
  [[nodiscard]] int num_params() const {
    int max_param = -1;
    for (const Gate& g : gates_) max_param = std::max(max_param, g.param);
    return max_param + 1;
  }

  /// Circuit depth (greedy ASAP layering).
  [[nodiscard]] std::size_t depth() const {
    std::vector<std::size_t> level(n_, 0);
    std::size_t depth = 0;
    for (const Gate& g : gates_) {
      std::size_t l = level[g.q0];
      if (g.two_qubit()) l = std::max(l, level[g.q1]);
      ++l;
      level[g.q0] = l;
      if (g.two_qubit()) level[g.q1] = l;
      depth = std::max(depth, l);
    }
    return depth;
  }

  /// Adjoint circuit: gates reversed, each inverted. The switch is
  /// exhaustive on purpose (no default): a new GateKind must state its
  /// inverse explicitly or fail to compile, rather than silently landing in
  /// a self-inverse bucket. Negating `angle` inverts both literal rotations
  /// and variational ones (the effective angle is angle * theta[param], so
  /// the sign flip holds for every parameter value).
  [[nodiscard]] QuantumCircuit inverse() const {
    QuantumCircuit inv(n_);
    for (auto it = gates_.rbegin(); it != gates_.rend(); ++it) {
      Gate g = *it;
      switch (g.kind) {
        case GateKind::kS: g.kind = GateKind::kSdg; break;
        case GateKind::kSdg: g.kind = GateKind::kS; break;
        case GateKind::kRz:
        case GateKind::kRx:
        case GateKind::kRy:
        case GateKind::kXXrot:
        case GateKind::kXYrot: g.angle = -g.angle; break;
        case GateKind::kX:
        case GateKind::kY:
        case GateKind::kZ:
        case GateKind::kH:
        case GateKind::kCnot:
        case GateKind::kCz:
        case GateKind::kSwap: break;  // self-inverse
      }
      inv.append(g);
    }
    return inv;
  }

  [[nodiscard]] std::string to_string() const {
    std::string out;
    for (const Gate& g : gates_) {
      out += g.to_string();
      out += '\n';
    }
    return out;
  }

  /// OpenQASM 2.0-style dump (for inspection; XX rotations emitted as rxx).
  [[nodiscard]] std::string to_qasm(const std::vector<double>& params = {}) const {
    std::string out = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[" +
                      std::to_string(n_) + "];\n";
    for (const Gate& g : gates_) {
      const double angle =
          g.param >= 0 && static_cast<std::size_t>(g.param) < params.size()
              ? g.angle * params[g.param]
              : g.angle;
      switch (g.kind) {
        case GateKind::kX: out += "x q[" + std::to_string(g.q0) + "];\n"; break;
        case GateKind::kY: out += "y q[" + std::to_string(g.q0) + "];\n"; break;
        case GateKind::kZ: out += "z q[" + std::to_string(g.q0) + "];\n"; break;
        case GateKind::kH: out += "h q[" + std::to_string(g.q0) + "];\n"; break;
        case GateKind::kS: out += "s q[" + std::to_string(g.q0) + "];\n"; break;
        case GateKind::kSdg:
          out += "sdg q[" + std::to_string(g.q0) + "];\n";
          break;
        case GateKind::kRz:
          out += "rz(" + std::to_string(angle) + ") q[" + std::to_string(g.q0) +
                 "];\n";
          break;
        case GateKind::kRx:
          out += "rx(" + std::to_string(angle) + ") q[" + std::to_string(g.q0) +
                 "];\n";
          break;
        case GateKind::kRy:
          out += "ry(" + std::to_string(angle) + ") q[" + std::to_string(g.q0) +
                 "];\n";
          break;
        case GateKind::kCnot:
          out += "cx q[" + std::to_string(g.q0) + "],q[" +
                 std::to_string(g.q1) + "];\n";
          break;
        case GateKind::kCz:
          out += "cz q[" + std::to_string(g.q0) + "],q[" +
                 std::to_string(g.q1) + "];\n";
          break;
        case GateKind::kSwap:
          out += "swap q[" + std::to_string(g.q0) + "],q[" +
                 std::to_string(g.q1) + "];\n";
          break;
        case GateKind::kXXrot:
          out += "rxx(" + std::to_string(angle) + ") q[" +
                 std::to_string(g.q0) + "],q[" + std::to_string(g.q1) + "];\n";
          break;
        case GateKind::kXYrot:
          out += "rxx(" + std::to_string(angle) + ") q[" +
                 std::to_string(g.q0) + "],q[" + std::to_string(g.q1) +
                 "];\nryy(" + std::to_string(angle) + ") q[" +
                 std::to_string(g.q0) + "],q[" + std::to_string(g.q1) + "];\n";
          break;
      }
    }
    return out;
  }

 private:
  std::size_t n_ = 0;
  std::vector<Gate> gates_;
};

}  // namespace femto::circuit
