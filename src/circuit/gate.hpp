// Gate-level IR.
//
// The gate set is CNOT + single-qubit gates (the de-facto set the paper
// optimizes for), plus two structured two-qubit primitives that are exactly
// one-CNOT-equivalent and arise from interface merging (Sec. III-B):
//   kCz     -- controlled-Z (locally equivalent to CNOT),
//   kXXrot  -- exp(-i angle/2 X@X), which at Clifford angles +-pi/2 is the
//              Moelmer-Sorensen gate, again locally equivalent to CNOT.
// Entangling cost: kCnot/kCz/kXXrot(+-pi/2) count as 1 CNOT; kXXrot at
// non-Clifford angles counts as 2 (its generic decomposition).
#pragma once

#include <cmath>
#include <string>

#include "common/assert.hpp"

namespace femto::circuit {

enum class GateKind {
  kX,
  kY,
  kZ,
  kH,
  kS,
  kSdg,
  kRz,
  kRx,
  kRy,
  kCnot,
  kCz,
  kSwap,
  kXXrot,
  // exp(-i angle/2 (X@X + Y@Y)): the Givens/matchgate class. Two CNOTs by
  // the Vatan-Williams bound; realizes the paper's 2-CNOT bosonic block.
  kXYrot,
};

// The classification switches below are exhaustive on purpose (no default;
// mirrors QuantumCircuit::inverse): a new GateKind added for native-gate
// lowering must state its classification explicitly or fail to compile under
// -Werror=switch, rather than silently landing in a catch-all bucket.

[[nodiscard]] constexpr bool is_two_qubit(GateKind k) {
  switch (k) {
    case GateKind::kX:
    case GateKind::kY:
    case GateKind::kZ:
    case GateKind::kH:
    case GateKind::kS:
    case GateKind::kSdg:
    case GateKind::kRz:
    case GateKind::kRx:
    case GateKind::kRy: return false;
    case GateKind::kCnot:
    case GateKind::kCz:
    case GateKind::kSwap:
    case GateKind::kXXrot:
    case GateKind::kXYrot: return true;
  }
  return false;  // unreachable: the switch covers every GateKind
}

[[nodiscard]] constexpr bool is_rotation(GateKind k) {
  switch (k) {
    case GateKind::kX:
    case GateKind::kY:
    case GateKind::kZ:
    case GateKind::kH:
    case GateKind::kS:
    case GateKind::kSdg:
    case GateKind::kCnot:
    case GateKind::kCz:
    case GateKind::kSwap: return false;
    case GateKind::kRz:
    case GateKind::kRx:
    case GateKind::kRy:
    case GateKind::kXXrot:
    case GateKind::kXYrot: return true;
  }
  return false;  // unreachable: the switch covers every GateKind
}

/// Diagonal in the computational basis (commutes with CNOT controls).
[[nodiscard]] constexpr bool is_diagonal(GateKind k) {
  switch (k) {
    case GateKind::kZ:
    case GateKind::kS:
    case GateKind::kSdg:
    case GateKind::kRz:
    case GateKind::kCz: return true;
    case GateKind::kX:
    case GateKind::kY:
    case GateKind::kH:
    case GateKind::kRx:
    case GateKind::kRy:
    case GateKind::kCnot:
    case GateKind::kSwap:
    case GateKind::kXXrot:
    case GateKind::kXYrot: return false;
  }
  return false;  // unreachable: the switch covers every GateKind
}

[[nodiscard]] inline const char* gate_name(GateKind k) {
  switch (k) {
    case GateKind::kX: return "X";
    case GateKind::kY: return "Y";
    case GateKind::kZ: return "Z";
    case GateKind::kH: return "H";
    case GateKind::kS: return "S";
    case GateKind::kSdg: return "Sdg";
    case GateKind::kRz: return "Rz";
    case GateKind::kRx: return "Rx";
    case GateKind::kRy: return "Ry";
    case GateKind::kCnot: return "CNOT";
    case GateKind::kCz: return "CZ";
    case GateKind::kSwap: return "SWAP";
    case GateKind::kXXrot: return "XX";
    case GateKind::kXYrot: return "XY";
  }
  return "?";
}

/// One gate. Rotation angles are either literal (param < 0, angle holds the
/// value) or variational (param >= 0, effective angle = angle * theta[param]);
/// the latter keeps ansatz circuits symbolic in the VQE parameters.
struct Gate {
  GateKind kind = GateKind::kX;
  std::size_t q0 = 0;           // target (1q), control (CNOT), first (CZ/SWAP/XX)
  std::size_t q1 = 0;           // CNOT target / second qubit
  double angle = 0.0;
  int param = -1;

  [[nodiscard]] static Gate x(std::size_t q) { return {GateKind::kX, q, 0, 0, -1}; }
  [[nodiscard]] static Gate y(std::size_t q) { return {GateKind::kY, q, 0, 0, -1}; }
  [[nodiscard]] static Gate z(std::size_t q) { return {GateKind::kZ, q, 0, 0, -1}; }
  [[nodiscard]] static Gate h(std::size_t q) { return {GateKind::kH, q, 0, 0, -1}; }
  [[nodiscard]] static Gate s(std::size_t q) { return {GateKind::kS, q, 0, 0, -1}; }
  [[nodiscard]] static Gate sdg(std::size_t q) { return {GateKind::kSdg, q, 0, 0, -1}; }
  [[nodiscard]] static Gate rz(std::size_t q, double a, int param = -1) {
    return {GateKind::kRz, q, 0, a, param};
  }
  [[nodiscard]] static Gate rx(std::size_t q, double a, int param = -1) {
    return {GateKind::kRx, q, 0, a, param};
  }
  [[nodiscard]] static Gate ry(std::size_t q, double a, int param = -1) {
    return {GateKind::kRy, q, 0, a, param};
  }
  [[nodiscard]] static Gate cnot(std::size_t c, std::size_t t) {
    FEMTO_EXPECTS(c != t);
    return {GateKind::kCnot, c, t, 0, -1};
  }
  [[nodiscard]] static Gate cz(std::size_t a, std::size_t b) {
    FEMTO_EXPECTS(a != b);
    return {GateKind::kCz, a, b, 0, -1};
  }
  [[nodiscard]] static Gate swap(std::size_t a, std::size_t b) {
    FEMTO_EXPECTS(a != b);
    return {GateKind::kSwap, a, b, 0, -1};
  }
  [[nodiscard]] static Gate xxrot(std::size_t a, std::size_t b, double angle,
                                  int param = -1) {
    FEMTO_EXPECTS(a != b);
    return {GateKind::kXXrot, a, b, angle, param};
  }
  [[nodiscard]] static Gate xyrot(std::size_t a, std::size_t b, double angle,
                                  int param = -1) {
    FEMTO_EXPECTS(a != b);
    return {GateKind::kXYrot, a, b, angle, param};
  }

  [[nodiscard]] bool two_qubit() const { return is_two_qubit(kind); }

  [[nodiscard]] bool acts_on(std::size_t q) const {
    return q0 == q || (two_qubit() && q1 == q);
  }

  [[nodiscard]] bool overlaps(const Gate& other) const {
    if (acts_on(other.q0)) return true;
    return other.two_qubit() && acts_on(other.q1);
  }

  /// Entangling cost in CNOT-equivalents.
  [[nodiscard]] int cnot_cost() const {
    switch (kind) {
      case GateKind::kCnot:
      case GateKind::kCz: return 1;
      case GateKind::kSwap: return 3;
      case GateKind::kXXrot: {
        if (param >= 0) return 2;  // variational angle: generic cost
        const double a = std::fmod(std::abs(angle), 2.0 * M_PI);
        const bool clifford = std::abs(a - M_PI / 2) < 1e-9 ||
                              std::abs(a - 3 * M_PI / 2) < 1e-9;
        const bool trivial = a < 1e-9 || std::abs(a - 2 * M_PI) < 1e-9;
        const bool local = std::abs(a - M_PI) < 1e-9;  // XX(pi) = -iX@X
        if (trivial || local) return 0;
        return clifford ? 1 : 2;
      }
      case GateKind::kXYrot:
        return (param < 0 && std::abs(angle) < 1e-12) ? 0 : 2;
      case GateKind::kX:
      case GateKind::kY:
      case GateKind::kZ:
      case GateKind::kH:
      case GateKind::kS:
      case GateKind::kSdg:
      case GateKind::kRz:
      case GateKind::kRx:
      case GateKind::kRy: return 0;
    }
    return 0;  // unreachable: the switch covers every GateKind
  }

  [[nodiscard]] std::string to_string() const {
    std::string out = gate_name(kind);
    out += " q" + std::to_string(q0);
    if (two_qubit()) out += ",q" + std::to_string(q1);
    if (is_rotation(kind)) {
      if (param >= 0)
        out += " (" + std::to_string(angle) + "*t" + std::to_string(param) + ")";
      else
        out += " (" + std::to_string(angle) + ")";
    }
    return out;
  }

  [[nodiscard]] bool operator==(const Gate&) const = default;
};

}  // namespace femto::circuit
