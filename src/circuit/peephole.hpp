// Peephole circuit optimizer.
//
// Implements the adjacent-gate cancellation and commutation rules of
// Nam et al. (paper reference [3]) that back the CNOT-cancellation counting
// in Secs. III-A/III-B: inverse-pair cancellation, rotation merging, and a
// backward commuting walk so cancellations happen "through" gates that
// commute with the incoming one.
//
// All rewrites preserve the unitary exactly, except dropping literal
// rotations with negligible angle (global phase only).
#pragma once

#include <cmath>

#include "circuit/quantum_circuit.hpp"

namespace femto::circuit {

namespace detail {

[[nodiscard]] inline bool same_pair_unordered(const Gate& a, const Gate& b) {
  return (a.q0 == b.q0 && a.q1 == b.q1) || (a.q0 == b.q1 && a.q1 == b.q0);
}

/// True when a and b are exact inverses of each other (self-inverse pairs or
/// S/Sdg).
[[nodiscard]] inline bool cancels(const Gate& a, const Gate& b) {
  if (a.kind == GateKind::kS && b.kind == GateKind::kSdg && a.q0 == b.q0)
    return true;
  if (a.kind == GateKind::kSdg && b.kind == GateKind::kS && a.q0 == b.q0)
    return true;
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case GateKind::kX:
    case GateKind::kY:
    case GateKind::kZ:
    case GateKind::kH: return a.q0 == b.q0;
    case GateKind::kCnot: return a.q0 == b.q0 && a.q1 == b.q1;
    case GateKind::kCz:
    case GateKind::kSwap: return same_pair_unordered(a, b);
    default: return false;
  }
}

/// True when a and b are same-axis rotations on the same wire(s) that can be
/// merged into one (literal+literal, or same variational parameter).
[[nodiscard]] inline bool mergeable(const Gate& a, const Gate& b) {
  if (a.kind != b.kind || !is_rotation(a.kind)) return false;
  if (a.two_qubit()) {
    // XX@XX and (XX+YY)@(XX+YY) are symmetric in the pair, but both wires
    // must match: XY(0,1) and XY(0,2) share only q0 and must NOT merge.
    if (!same_pair_unordered(a, b)) return false;
  } else if (a.q0 != b.q0) {
    return false;
  }
  return a.param == b.param;  // covers literal (-1) + same-parameter cases
}

/// Conservative commutation check: may g be moved left past h?
[[nodiscard]] inline bool commutes(const Gate& h, const Gate& g) {
  if (!h.overlaps(g)) return true;
  // Diagonal gates commute with each other and with CNOT controls.
  const bool h_diag = is_diagonal(h.kind);
  const bool g_diag = is_diagonal(g.kind);
  if (h_diag && g_diag) {
    // Shared wires are all Z-type on both sides.
    if (h.kind != GateKind::kCnot && g.kind != GateKind::kCnot) return true;
  }
  // Classify each shared wire: 'z' if the gate acts diagonally there,
  // 'x' if it acts as X-type (X, Rx, CNOT target, XXrot wire), else 'n'.
  auto wire_type = [](const Gate& gate, std::size_t q) -> char {
    switch (gate.kind) {
      case GateKind::kZ:
      case GateKind::kS:
      case GateKind::kSdg:
      case GateKind::kRz:
      case GateKind::kCz: return 'z';
      case GateKind::kX:
      case GateKind::kRx:
      case GateKind::kXXrot: return 'x';
      case GateKind::kCnot: return q == gate.q0 ? 'z' : 'x';
      default: return 'n';
    }
  };
  // g commutes past h if on every shared wire both act with the same Pauli
  // type (both Z-like or both X-like).
  const std::size_t shared[2] = {g.q0, g.two_qubit() ? g.q1 : g.q0};
  for (std::size_t q : {shared[0], shared[1]}) {
    if (!h.acts_on(q) || !g.acts_on(q)) continue;
    const char th = wire_type(h, q);
    const char tg = wire_type(g, q);
    if (th == 'n' || tg == 'n' || th != tg) return false;
  }
  return true;
}

}  // namespace detail

/// Appends gates with on-the-fly cancellation through commuting prefixes.
class PeepholeBuilder {
 public:
  explicit PeepholeBuilder(std::size_t n) : circ_(n) {}

  void push(Gate g) {
    // Drop no-op literal rotations (global phase at worst).
    if (is_rotation(g.kind) && g.param < 0 && std::abs(g.angle) < 1e-12) return;
    auto& gates = mutable_gates();
    for (std::size_t k = gates.size(); k-- > 0;) {
      Gate& h = gates[k];
      if (detail::cancels(h, g)) {
        gates.erase(gates.begin() + static_cast<std::ptrdiff_t>(k));
        return;
      }
      if (detail::mergeable(h, g)) {
        h.angle += g.angle;
        if (h.param < 0 && std::abs(h.angle) < 1e-12)
          gates.erase(gates.begin() + static_cast<std::ptrdiff_t>(k));
        return;
      }
      if (!detail::commutes(h, g)) break;
    }
    circ_.append(g);
  }

  void push(const QuantumCircuit& c) {
    for (const Gate& g : c.gates()) push(g);
  }

  [[nodiscard]] QuantumCircuit take() { return std::move(circ_); }
  [[nodiscard]] const QuantumCircuit& circuit() const { return circ_; }

 private:
  [[nodiscard]] std::vector<Gate>& mutable_gates() {
    return circ_.mutable_gates();
  }

  QuantumCircuit circ_;
};

/// Runs the builder over an existing circuit until a fixpoint (bounded).
[[nodiscard]] inline QuantumCircuit peephole_optimize(const QuantumCircuit& in,
                                                      int max_rounds = 8) {
  QuantumCircuit current = in;
  for (int round = 0; round < max_rounds; ++round) {
    PeepholeBuilder builder(current.num_qubits());
    builder.push(current);
    QuantumCircuit next = builder.take();
    const bool converged = next.size() == current.size();
    current = std::move(next);
    if (converged) break;
  }
  return current;
}

}  // namespace femto::circuit
