// Connectivity-aware SWAP routing.
//
// A CouplingMap is the undirected two-qubit connectivity graph of a device
// (empty = all-to-all). route_circuit transforms a circuit so that every
// two-qubit gate acts on an adjacent physical pair: it maintains a
// logical->physical placement, walks the distant operand along a BFS
// shortest path (precomputed next-hop tables over graph::Digraph) inserting
// SWAPs, and finally restores the identity permutation by token-sliding on a
// spanning tree. Because the placement starts AND ends at the identity, the
// routed circuit implements exactly the original unitary -- which is what
// lets verify::EquivalenceChecker certify routed circuits against the
// original compilation spec (SWAPs are Clifford and fold into the tableau).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "circuit/quantum_circuit.hpp"
#include "graph/digraph.hpp"

namespace femto::circuit {

class CouplingMap {
 public:
  /// Default: unconstrained (all-to-all); routing is a no-op.
  CouplingMap() = default;

  CouplingMap(std::size_t n,
              std::vector<std::pair<std::size_t, std::size_t>> edges)
      : n_(n), edges_(std::move(edges)) {
    FEMTO_EXPECTS(n_ > 0);
    rebuild_tables();
  }

  /// Nearest-neighbor chain 0 - 1 - ... - (n-1).
  [[nodiscard]] static CouplingMap line(std::size_t n) {
    std::vector<std::pair<std::size_t, std::size_t>> edges;
    for (std::size_t q = 0; q + 1 < n; ++q) edges.push_back({q, q + 1});
    return CouplingMap(n, std::move(edges));
  }

  /// Chain closed into a cycle.
  [[nodiscard]] static CouplingMap ring(std::size_t n) {
    FEMTO_EXPECTS(n >= 3);
    std::vector<std::pair<std::size_t, std::size_t>> edges;
    for (std::size_t q = 0; q + 1 < n; ++q) edges.push_back({q, q + 1});
    edges.push_back({n - 1, 0});
    return CouplingMap(n, std::move(edges));
  }

  [[nodiscard]] bool constrained() const { return n_ > 0; }
  [[nodiscard]] std::size_t num_qubits() const { return n_; }
  [[nodiscard]] const std::vector<std::pair<std::size_t, std::size_t>>& edges()
      const {
    return edges_;
  }

  [[nodiscard]] bool adjacent(std::size_t a, std::size_t b) const {
    return distance(a, b) == 1;
  }

  /// Hop distance; on an unconstrained map every distinct pair is adjacent
  /// (distance 1). graph::kUnreachable across disconnected components.
  [[nodiscard]] std::size_t distance(std::size_t a, std::size_t b) const {
    if (!constrained()) return a == b ? 0 : 1;
    FEMTO_EXPECTS(a < n_ && b < n_);
    return dist_[a][b];
  }

  /// First vertex on a shortest path from `a` toward `b` (a != b, reachable).
  [[nodiscard]] std::size_t next_hop(std::size_t a, std::size_t b) const {
    FEMTO_EXPECTS(constrained() && a < n_ && b < n_ && a != b);
    FEMTO_EXPECTS(dist_[a][b] != graph::kUnreachable);
    return next_[a][b];
  }

  /// Diagnostic for inconsistent configurations; empty string = valid.
  [[nodiscard]] std::string validate(std::size_t circuit_qubits) const {
    if (!constrained()) return "";
    if (n_ < circuit_qubits)
      return "coupling map has " + std::to_string(n_) +
             " qubits but the circuit needs " + std::to_string(circuit_qubits);
    for (const auto& [a, b] : edges_) {
      if (a >= n_ || b >= n_)
        return "coupling edge (" + std::to_string(a) + "," +
               std::to_string(b) + ") out of range for " + std::to_string(n_) +
               " qubits";
      if (a == b) return "coupling self-loop at qubit " + std::to_string(a);
    }
    for (std::size_t v = 1; v < n_; ++v)
      if (dist_[0][v] == graph::kUnreachable)
        return "coupling graph is disconnected (qubit " + std::to_string(v) +
               " unreachable from qubit 0)";
    return "";
  }

 private:
  void rebuild_tables() {
    graph::Digraph g(n_);
    for (const auto& [a, b] : edges_) {
      if (a >= n_ || b >= n_ || a == b) continue;  // reported by validate()
      g.add_edge(a, b);
      g.add_edge(b, a);
    }
    dist_.assign(n_, {});
    next_.assign(n_, {});
    for (std::size_t from = 0; from < n_; ++from) {
      const graph::BfsPaths paths = graph::bfs_shortest_paths(g, from);
      dist_[from] = paths.dist;
      // next_[from][to]: walk the parent chain from `to` back to `from`.
      next_[from].assign(n_, graph::kUnreachable);
      for (std::size_t to = 0; to < n_; ++to) {
        if (to == from || paths.dist[to] == graph::kUnreachable) continue;
        std::size_t hop = to;
        while (paths.parent[hop] != from) hop = paths.parent[hop];
        next_[from][to] = hop;
      }
    }
  }

  std::size_t n_ = 0;
  std::vector<std::pair<std::size_t, std::size_t>> edges_;
  std::vector<std::vector<std::size_t>> dist_;
  std::vector<std::vector<std::size_t>> next_;
};

struct RoutingResult {
  QuantumCircuit circuit;   // physical-wire circuit, permutation restored
  int swaps_inserted = 0;   // 3 CNOT-equivalents each
};

namespace detail {

/// BFS path between two vertices restricted to an allowed vertex set (used
/// by the final permutation restore so already-placed qubits stay put).
/// Returns the vertex list from `from` to `to` inclusive; empty if cut off.
[[nodiscard]] inline std::vector<std::size_t> restricted_path(
    const CouplingMap& cm, std::size_t from, std::size_t to,
    const std::vector<bool>& allowed) {
  const std::size_t n = cm.num_qubits();
  std::vector<std::size_t> parent(n, graph::kUnreachable);
  std::vector<bool> seen(n, false);
  std::vector<std::size_t> frontier{from};
  seen[from] = true;
  while (!frontier.empty() && !seen[to]) {
    std::vector<std::size_t> next;
    for (std::size_t v : frontier) {
      for (const auto& [a, b] : cm.edges()) {
        const std::size_t u = a == v ? b : (b == v ? a : graph::kUnreachable);
        if (u == graph::kUnreachable || seen[u] || !allowed[u]) continue;
        seen[u] = true;
        parent[u] = v;
        next.push_back(u);
      }
    }
    frontier = std::move(next);
  }
  if (!seen[to]) return {};
  std::vector<std::size_t> path{to};
  while (path.back() != from) path.push_back(parent[path.back()]);
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace detail

/// Inserts SWAPs so every two-qubit gate acts on coupled physical qubits and
/// the final placement is the identity (routed circuit == original unitary).
[[nodiscard]] inline RoutingResult route_circuit(const QuantumCircuit& in,
                                                 const CouplingMap& cm) {
  FEMTO_EXPECTS(cm.constrained());
  FEMTO_EXPECTS(cm.validate(in.num_qubits()).empty());
  RoutingResult out;
  out.circuit = QuantumCircuit(cm.num_qubits());
  // Placement over ALL device qubits (spare physical qubits beyond the
  // circuit's n carry their own index as a phantom logical).
  std::vector<std::size_t> log2phys(cm.num_qubits()), phys2log(cm.num_qubits());
  for (std::size_t q = 0; q < cm.num_qubits(); ++q) log2phys[q] = phys2log[q] = q;

  const auto do_swap = [&](std::size_t pa, std::size_t pb) {
    FEMTO_ASSERT(cm.adjacent(pa, pb));
    out.circuit.append(Gate::swap(pa, pb));
    ++out.swaps_inserted;
    std::swap(phys2log[pa], phys2log[pb]);
    log2phys[phys2log[pa]] = pa;
    log2phys[phys2log[pb]] = pb;
  };

  for (const Gate& g : in.gates()) {
    Gate placed = g;
    placed.q0 = log2phys[g.q0];
    if (g.two_qubit()) {
      std::size_t pa = log2phys[g.q0];
      const std::size_t pb = log2phys[g.q1];
      // Walk q0's operand toward q1 until coupled.
      while (cm.distance(pa, pb) > 1) {
        const std::size_t hop = cm.next_hop(pa, pb);
        do_swap(pa, hop);
        pa = hop;
      }
      placed.q0 = pa;
      placed.q1 = pb;
    }
    out.circuit.append(placed);
  }

  // Restore the identity permutation by token sliding: fix physical
  // positions in reverse-BFS order from vertex 0, routing each token through
  // the still-unfixed region only (which stays connected: we always remove
  // the farthest remaining vertex).
  {
    graph::Digraph g(cm.num_qubits());
    for (const auto& [a, b] : cm.edges()) {
      if (a == b) continue;
      g.add_edge(a, b);
      g.add_edge(b, a);
    }
    const graph::BfsPaths from0 = graph::bfs_shortest_paths(g, 0);
    std::vector<std::size_t> order(cm.num_qubits());
    for (std::size_t q = 0; q < cm.num_qubits(); ++q) order[q] = q;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (from0.dist[a] != from0.dist[b]) return from0.dist[a] > from0.dist[b];
      return a > b;
    });
    std::vector<bool> unfixed(cm.num_qubits(), true);
    for (std::size_t target : order) {
      const std::size_t at = log2phys[target];  // where logical `target` sits
      if (at != target) {
        const std::vector<std::size_t> path =
            detail::restricted_path(cm, at, target, unfixed);
        FEMTO_ASSERT(path.size() >= 2);
        for (std::size_t k = 0; k + 1 < path.size(); ++k)
          do_swap(path[k], path[k + 1]);
      }
      unfixed[target] = false;
    }
    for (std::size_t q = 0; q < cm.num_qubits(); ++q)
      FEMTO_ASSERT(phys2log[q] == q);
  }
  return out;
}

/// True when every two-qubit gate of `c` acts on a coupled pair (the router's
/// postcondition; exposed for tests and validation).
[[nodiscard]] inline bool respects_coupling(const QuantumCircuit& c,
                                            const CouplingMap& cm) {
  if (!cm.constrained()) return true;
  for (const Gate& g : c.gates())
    if (g.two_qubit() && !cm.adjacent(g.q0, g.q1)) return false;
  return true;
}

}  // namespace femto::circuit
