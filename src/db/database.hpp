// On-disk, memory-mapped, versioned database of compilation artifacts.
//
// Precompute once, serve at memory speed: circuits synthesized by the
// compile pipeline are stored keyed by their canonical block-sequence
// normal form (db/canonical.hpp) so repeat and restart traffic -- and every
// later process -- goes from O(compile) to O(hash). The file is opened
// read-only and shared across threads and processes via mmap; lookups are
// a binary search over a sorted (hash, key) index followed by a full key
// compare (a hash collision must compare unequal rather than silently serve
// the wrong circuit, mirroring synth/synthesis_cache.hpp).
//
// File layout (all integers little-endian):
//
//   [0,  8)  magic "FMDB01\0\0"
//   [8, 12)  format version   (kFormatVersion; bump on any layout change)
//   [12,16)  synthesis contract version (kSynthesisContract; bump whenever
//            synthesize_sequence's emission changes, so stale artifacts are
//            rejected instead of breaking the bit-identity guarantee)
//   [16,20)  endianness tag 0x01020304
//   [20,24)  section count
//   [24,32)  entry count
//   [32,40)  total file size (truncation check)
//   [40,44)  CRC-32 of the header bytes (this field zeroed)
//   [44,48)  reserved (0)
//   then `section count` descriptors of 24 bytes each:
//            {id u32, crc32 u32, offset u64, size u64}
//
// Sections (checksummed individually; verified eagerly on open):
//   kIndex   sorted entries of 32 bytes:
//            {key_hash u64, key_off u64, key_len u32, value_len u32,
//             value_off u64}, ordered by (key_hash, key bytes)
//   kKeys    canonical key blob (offsets relative to section start)
//   kValues  serialized circuits (u32 width, u32 gate count, then per gate
//            {kind u32, q0 u32, q1 u32, param u32, angle-bits u64})
//   kOrbits  per-entry orbit-signature hashes (u64 each, index order) --
//            relabeling-equivalence statistics for femto-db info and the
//            encoding-space miner
//
// Every open failure is a *specific* diagnostic (zero-length file, truncated
// header/file, bad magic, version mismatch, checksum mismatch, bounds
// violation) -- never a crash and never a silently empty database.
#pragma once

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define FEMTO_DB_HAVE_MMAP 1
#endif

#include "common/failpoint.hpp"
#include "db/canonical.hpp"
#include "obs/metrics.hpp"
#include "synth/synthesis_cache.hpp"

namespace femto::db {

inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr std::uint32_t kSynthesisContract = 1;
inline constexpr std::uint32_t kEndianTag = 0x01020304;
inline constexpr char kMagic[8] = {'F', 'M', 'D', 'B', '0', '1', '\0', '\0'};

enum class SectionId : std::uint32_t {
  kIndex = 1,
  kKeys = 2,
  kValues = 3,
  kOrbits = 4,
};

namespace detail {

/// CRC-32 (IEEE 802.3, poly 0xEDB88320), table-driven.
[[nodiscard]] inline std::uint32_t crc32(const unsigned char* data,
                                         std::size_t size,
                                         std::uint32_t seed = 0) {
  static const std::vector<std::uint32_t> table = [] {
    std::vector<std::uint32_t> t(256);
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < size; ++i)
    crc = table[(crc ^ data[i]) & 0xff] ^ (crc >> 8);
  return ~crc;
}

inline void append_u32(std::string& out, std::uint32_t v) {
  for (int byte = 0; byte < 4; ++byte)
    out.push_back(static_cast<char>((v >> (8 * byte)) & 0xff));
}

[[nodiscard]] inline std::uint32_t read_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int byte = 0; byte < 4; ++byte)
    v |= static_cast<std::uint32_t>(p[byte]) << (8 * byte);
  return v;
}

/// Serializes a circuit into the kValues entry format.
[[nodiscard]] inline std::string encode_circuit(
    const circuit::QuantumCircuit& c) {
  std::string out;
  out.reserve(8 + c.gates().size() * 24);
  append_u32(out, static_cast<std::uint32_t>(c.num_qubits()));
  append_u32(out, static_cast<std::uint32_t>(c.gates().size()));
  for (const circuit::Gate& g : c.gates()) {
    append_u32(out, static_cast<std::uint32_t>(g.kind));
    append_u32(out, static_cast<std::uint32_t>(g.q0));
    append_u32(out, static_cast<std::uint32_t>(g.q1));
    append_u32(out, static_cast<std::uint32_t>(g.param));
    db::detail::append_u64(out, std::bit_cast<std::uint64_t>(g.angle));
  }
  return out;
}

/// Inverts encode_circuit; nullopt on malformed bytes (defense in depth --
/// sections are checksummed, so this only fires on a format bug).
[[nodiscard]] inline std::optional<circuit::QuantumCircuit> decode_circuit(
    const unsigned char* p, std::size_t size) {
  if (size < 8) return std::nullopt;
  const std::uint32_t n = read_u32(p);
  const std::uint32_t count = read_u32(p + 4);
  if (size != 8 + std::size_t{count} * 24) return std::nullopt;
  circuit::QuantumCircuit c(n);
  for (std::uint32_t i = 0; i < count; ++i) {
    const unsigned char* g = p + 8 + std::size_t{i} * 24;
    const std::uint32_t kind = read_u32(g);
    if (kind > static_cast<std::uint32_t>(circuit::GateKind::kXYrot))
      return std::nullopt;
    circuit::Gate gate;
    gate.kind = static_cast<circuit::GateKind>(kind);
    gate.q0 = read_u32(g + 4);
    gate.q1 = read_u32(g + 8);
    gate.param = static_cast<int>(read_u32(g + 12));
    gate.angle = std::bit_cast<double>(db::detail::read_u64(g + 16));
    if (gate.q0 >= n || (gate.two_qubit() && gate.q1 >= n)) return std::nullopt;
    c.append(gate);
  }
  return c;
}

/// Read-only view of the file bytes: mmap'd when available (shared across
/// processes, pages faulted on demand), heap-buffered otherwise.
struct Mapping {
  const unsigned char* data = nullptr;
  std::size_t size = 0;
#if FEMTO_DB_HAVE_MMAP
  void* mapped = nullptr;
#endif
  std::vector<unsigned char> buffer;  // fallback ownership

  Mapping() = default;
  Mapping(const Mapping&) = delete;
  Mapping& operator=(const Mapping&) = delete;
  ~Mapping() {
#if FEMTO_DB_HAVE_MMAP
    if (mapped != nullptr) ::munmap(mapped, size);
#endif
  }
};

[[nodiscard]] inline std::shared_ptr<Mapping> map_file(
    const std::string& path, std::string* error) {
  auto m = std::make_shared<Mapping>();
#if FEMTO_DB_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    *error = "cannot open '" + path + "': " + std::strerror(errno);
    return nullptr;
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    *error = "cannot stat '" + path + "': " + std::strerror(errno);
    ::close(fd);
    return nullptr;
  }
  m->size = static_cast<std::size_t>(st.st_size);
  if (m->size == 0) {
    *error = "zero-length file (not a femto-db database): '" + path + "'";
    ::close(fd);
    return nullptr;
  }
  void* p = ::mmap(nullptr, m->size, PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps the pages alive
  if (p == MAP_FAILED) {
    *error = "mmap failed for '" + path + "': " + std::strerror(errno);
    return nullptr;
  }
  m->mapped = p;
  m->data = static_cast<const unsigned char*>(p);
#else
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    *error = "cannot open '" + path + "'";
    return nullptr;
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size <= 0) {
    std::fclose(f);
    if (size == 0) {
      *error = "zero-length file (not a femto-db database): '" + path + "'";
      return nullptr;
    }
    *error = "cannot read '" + path + "'";
    return nullptr;
  }
  m->buffer.resize(static_cast<std::size_t>(size));
  const std::size_t got = std::fread(m->buffer.data(), 1, m->buffer.size(), f);
  std::fclose(f);
  if (got != m->buffer.size()) {
    *error = "short read on '" + path + "'";
    return nullptr;
  }
  m->data = m->buffer.data();
  m->size = m->buffer.size();
#endif
  return m;
}

struct Section {
  std::uint32_t crc = 0;
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
};

inline constexpr std::size_t kFixedHeaderBytes = 48;
inline constexpr std::size_t kSectionDescBytes = 24;
inline constexpr std::size_t kIndexEntryBytes = 32;

}  // namespace detail

/// One parsed index entry (offsets validated against their sections).
struct IndexEntry {
  std::uint64_t key_hash = 0;
  std::uint64_t key_off = 0;
  std::uint32_t key_len = 0;
  std::uint32_t value_len = 0;
  std::uint64_t value_off = 0;
};

/// Read-only, mmap-shared compilation database. Thread-safe: all state is
/// immutable after open(), so any number of threads (and processes mapping
/// the same file) may look up concurrently. Implements SynthesisStore, so it
/// plugs straight into SynthesisCache as the L2 behind the in-memory memo.
class Database final : public synth::SynthesisStore {
 public:
  /// Opens and fully validates a database file. Returns nullopt and a
  /// specific diagnostic in *error on any defect; never aborts.
  [[nodiscard]] static std::optional<Database> open(const std::string& path,
                                                    std::string* error) {
    std::string local_error;
    std::string& err = error != nullptr ? *error : local_error;
    const std::shared_ptr<detail::Mapping> map = detail::map_file(path, &err);
    if (map == nullptr) return std::nullopt;
    Database out;
    out.map_ = map;
    out.path_ = path;
    if (!out.parse(&err)) return std::nullopt;
    return out;
  }

  // -- SynthesisStore -------------------------------------------------------

  [[nodiscard]] std::optional<circuit::QuantumCircuit> load(
      std::size_t n, const std::vector<synth::RotationBlock>& seq,
      synth::MergePolicy policy,
      synth::EntanglerKind native) const override {
    return lookup(canonical_key(n, seq, policy, native));
  }

  /// Read-only store: recording is femto-db's job (DatabaseBuilder).
  void store(std::size_t, const std::vector<synth::RotationBlock>&,
             synth::MergePolicy, synth::EntanglerKind,
             const circuit::QuantumCircuit&) override {}

  // -- lookups --------------------------------------------------------------

  /// Binary search by key hash, full-key compare, circuit decode.
  [[nodiscard]] std::optional<circuit::QuantumCircuit> lookup(
      std::string_view key) const {
    static obs::Counter& lookups = obs::registry().counter("db.lookups");
    static obs::Counter& db_hits = obs::registry().counter("db.hits");
    static obs::Counter& db_misses = obs::registry().counter("db.misses");
    lookups.inc();
    const std::uint64_t hash = fnv1a(key);
    std::size_t lo = 0, hi = entries_.size();
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (entries_[mid].key_hash < hash)
        lo = mid + 1;
      else
        hi = mid;
    }
    for (; lo < entries_.size() && entries_[lo].key_hash == hash; ++lo) {
      if (this->key(lo) != key) continue;
      db_hits.inc();
      return detail::decode_circuit(
          map_->data + values_.offset + entries_[lo].value_off,
          entries_[lo].value_len);
    }
    db_misses.inc();
    return std::nullopt;
  }

  [[nodiscard]] std::size_t entry_count() const { return entries_.size(); }

  [[nodiscard]] std::string_view key(std::size_t i) const {
    const IndexEntry& e = entries_[i];
    return {reinterpret_cast<const char*>(map_->data + keys_.offset +
                                          e.key_off),
            e.key_len};
  }

  [[nodiscard]] std::optional<circuit::QuantumCircuit> circuit_at(
      std::size_t i) const {
    const IndexEntry& e = entries_[i];
    return detail::decode_circuit(map_->data + values_.offset + e.value_off,
                                  e.value_len);
  }

  [[nodiscard]] std::uint64_t orbit_hash(std::size_t i) const {
    if (orbits_.size == 0) return 0;
    return db::detail::read_u64(map_->data + orbits_.offset + 8 * i);
  }

  [[nodiscard]] std::uint32_t format_version() const { return format_version_; }
  [[nodiscard]] std::uint32_t synthesis_contract() const {
    return synthesis_contract_;
  }
  [[nodiscard]] std::size_t file_bytes() const { return map_->size; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  Database() = default;

  [[nodiscard]] bool parse(std::string* error) {
    const unsigned char* p = map_->data;
    const std::size_t size = map_->size;
    if (size < detail::kFixedHeaderBytes) {
      *error = "truncated header: '" + path_ + "' has " +
               std::to_string(size) + " bytes, a database header needs " +
               std::to_string(detail::kFixedHeaderBytes);
      return false;
    }
    if (std::memcmp(p, kMagic, sizeof(kMagic)) != 0) {
      *error = "bad magic: '" + path_ + "' is not a femto-db database";
      return false;
    }
    format_version_ = detail::read_u32(p + 8);
    if (format_version_ != kFormatVersion) {
      *error = "format version mismatch: '" + path_ + "' is v" +
               std::to_string(format_version_) + ", this reader expects v" +
               std::to_string(kFormatVersion) + " (rebuild with femto-db)";
      return false;
    }
    synthesis_contract_ = detail::read_u32(p + 12);
    if (synthesis_contract_ != kSynthesisContract) {
      *error = "synthesis contract mismatch: '" + path_ +
               "' holds artifacts of synthesis v" +
               std::to_string(synthesis_contract_) + ", this build emits v" +
               std::to_string(kSynthesisContract) +
               " -- serving them would break bit-identity (rebuild with "
               "femto-db)";
      return false;
    }
    if (detail::read_u32(p + 16) != kEndianTag) {
      *error = "endianness tag mismatch in '" + path_ +
               "' (file written on an incompatible platform)";
      return false;
    }
    const std::uint32_t section_count = detail::read_u32(p + 20);
    const std::uint64_t entry_count = db::detail::read_u64(p + 24);
    const std::uint64_t recorded_size = db::detail::read_u64(p + 32);
    const std::uint32_t header_crc = detail::read_u32(p + 40);
    if (section_count > 64) {
      *error = "implausible section count " + std::to_string(section_count) +
               " in '" + path_ + "' (corrupted header)";
      return false;
    }
    const std::size_t header_end =
        detail::kFixedHeaderBytes + section_count * detail::kSectionDescBytes;
    if (size < header_end) {
      *error = "truncated section table: '" + path_ + "' has " +
               std::to_string(size) + " bytes, the header declares " +
               std::to_string(header_end);
      return false;
    }
    if (recorded_size != size) {
      *error = "truncated file: header of '" + path_ + "' records " +
               std::to_string(recorded_size) + " bytes but the file has " +
               std::to_string(size);
      return false;
    }
    {
      std::vector<unsigned char> header(p, p + header_end);
      header[40] = header[41] = header[42] = header[43] = 0;
      const std::uint32_t crc = detail::crc32(header.data(), header.size());
      if (crc != header_crc) {
        *error = "header checksum mismatch in '" + path_ +
                 "' (corrupted header)";
        return false;
      }
    }
    bool have_index = false, have_keys = false, have_values = false;
    for (std::uint32_t s = 0; s < section_count; ++s) {
      const unsigned char* d =
          p + detail::kFixedHeaderBytes + s * detail::kSectionDescBytes;
      const std::uint32_t id = detail::read_u32(d);
      detail::Section sec;
      sec.crc = detail::read_u32(d + 4);
      sec.offset = db::detail::read_u64(d + 8);
      sec.size = db::detail::read_u64(d + 16);
      if (sec.offset > size || sec.size > size - sec.offset) {
        *error = "section " + std::to_string(id) + " of '" + path_ +
                 "' extends past the end of the file (corrupted header)";
        return false;
      }
      const std::uint32_t crc = detail::crc32(p + sec.offset,
                                              static_cast<std::size_t>(sec.size));
      if (crc != sec.crc) {
        *error = "section " + std::to_string(id) + " checksum mismatch in '" +
                 path_ + "' (corrupted data)";
        return false;
      }
      switch (static_cast<SectionId>(id)) {
        case SectionId::kIndex: index_ = sec; have_index = true; break;
        case SectionId::kKeys: keys_ = sec; have_keys = true; break;
        case SectionId::kValues: values_ = sec; have_values = true; break;
        case SectionId::kOrbits: orbits_ = sec; break;
        default: break;  // unknown sections are ignored (forward compat)
      }
    }
    if (!have_index || !have_keys || !have_values) {
      *error = "missing required section(s) in '" + path_ +
               "' (index/keys/values)";
      return false;
    }
    if (index_.size != entry_count * detail::kIndexEntryBytes) {
      *error = "index size inconsistent with entry count in '" + path_ + "'";
      return false;
    }
    if (orbits_.size != 0 && orbits_.size != entry_count * 8) {
      *error = "orbit section size inconsistent with entry count in '" +
               path_ + "'";
      return false;
    }
    entries_.reserve(static_cast<std::size_t>(entry_count));
    std::uint64_t prev_hash = 0;
    for (std::uint64_t i = 0; i < entry_count; ++i) {
      const unsigned char* d =
          p + index_.offset + i * detail::kIndexEntryBytes;
      IndexEntry e;
      e.key_hash = db::detail::read_u64(d);
      e.key_off = db::detail::read_u64(d + 8);
      e.key_len = detail::read_u32(d + 16);
      e.value_len = detail::read_u32(d + 20);
      e.value_off = db::detail::read_u64(d + 24);
      if (e.key_off > keys_.size || e.key_len > keys_.size - e.key_off ||
          e.value_off > values_.size ||
          e.value_len > values_.size - e.value_off) {
        *error = "index entry " + std::to_string(i) + " of '" + path_ +
                 "' points outside its section (corrupted index)";
        return false;
      }
      if (i > 0 && e.key_hash < prev_hash) {
        *error = "index of '" + path_ + "' is not sorted (corrupted index)";
        return false;
      }
      prev_hash = e.key_hash;
      entries_.push_back(e);
    }
    return true;
  }

  std::shared_ptr<detail::Mapping> map_;
  std::string path_;
  std::uint32_t format_version_ = 0;
  std::uint32_t synthesis_contract_ = 0;
  detail::Section index_, keys_, values_, orbits_;
  std::vector<IndexEntry> entries_;
};

/// Accumulates (canonical key -> circuit) pairs -- as a recording
/// SynthesisStore attached to a SynthesisCache, from an existing database
/// (append workflow), or via insert_raw -- and writes the versioned,
/// checksummed file format. Thread-safe for concurrent store() calls.
class DatabaseBuilder final : public synth::SynthesisStore {
 public:
  /// Recording side of SynthesisStore: canonicalizes and keeps the first
  /// circuit per key (later duplicates are bit-identical by the purity
  /// contract, so first-wins loses nothing).
  void store(std::size_t n, const std::vector<synth::RotationBlock>& seq,
             synth::MergePolicy policy, synth::EntanglerKind native,
             const circuit::QuantumCircuit& circuit) override {
    std::string key = canonical_key(n, seq, policy, native);
    const std::uint64_t orbit = fnv1a(orbit_signature(n, seq, policy, native));
    const std::lock_guard<std::mutex> lock(mutex_);
    entries_.emplace(std::move(key),
                     Value{detail::encode_circuit(circuit), orbit});
  }

  /// The builder never serves lookups: the in-memory SynthesisCache in front
  /// of it already memoizes everything recorded this run.
  [[nodiscard]] std::optional<circuit::QuantumCircuit> load(
      std::size_t, const std::vector<synth::RotationBlock>&,
      synth::MergePolicy, synth::EntanglerKind) const override {
    return std::nullopt;
  }

  /// Pre-encoded entry (merge/append path). First insert per key wins.
  void insert_raw(std::string key, std::string value_bytes,
                  std::uint64_t orbit_hash) {
    const std::lock_guard<std::mutex> lock(mutex_);
    entries_.emplace(std::move(key),
                     Value{std::move(value_bytes), orbit_hash});
  }

  /// Copies every entry of an open database (append workflow: merge the old
  /// file, record new compiles, write). Existing keys keep their circuits.
  void merge_from(const Database& db) {
    for (std::size_t i = 0; i < db.entry_count(); ++i) {
      const std::optional<circuit::QuantumCircuit> c = db.circuit_at(i);
      FEMTO_EXPECTS(c.has_value());  // sections were checksum-verified
      insert_raw(std::string(db.key(i)), detail::encode_circuit(*c),
                 db.orbit_hash(i));
    }
  }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
  }

  /// Writes the database file; returns "" on success, else a diagnostic.
  [[nodiscard]] std::string write(const std::string& path) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    // Sorted (hash, key) index; std::map already orders keys, so a stable
    // sort by hash preserves key order inside equal-hash runs.
    std::vector<const std::pair<const std::string, Value>*> order;
    order.reserve(entries_.size());
    for (const auto& kv : entries_) order.push_back(&kv);
    std::stable_sort(order.begin(), order.end(),
                     [](const auto* a, const auto* b) {
                       return fnv1a(a->first) < fnv1a(b->first);
                     });

    std::string index, keys, values, orbits;
    for (const auto* kv : order) {
      const std::string& key = kv->first;
      const std::string& value = kv->second.bytes;
      db::detail::append_u64(index, fnv1a(key));
      db::detail::append_u64(index, keys.size());
      detail::append_u32(index, static_cast<std::uint32_t>(key.size()));
      detail::append_u32(index, static_cast<std::uint32_t>(value.size()));
      db::detail::append_u64(index, values.size());
      keys += key;
      values += value;
      db::detail::append_u64(orbits, kv->second.orbit_hash);
    }

    const std::pair<SectionId, const std::string*> sections[] = {
        {SectionId::kIndex, &index},
        {SectionId::kKeys, &keys},
        {SectionId::kValues, &values},
        {SectionId::kOrbits, &orbits},
    };
    const std::size_t header_end =
        detail::kFixedHeaderBytes +
        std::size(sections) * detail::kSectionDescBytes;

    std::string header;
    header.append(kMagic, sizeof(kMagic));
    detail::append_u32(header, kFormatVersion);
    detail::append_u32(header, kSynthesisContract);
    detail::append_u32(header, kEndianTag);
    detail::append_u32(header, static_cast<std::uint32_t>(std::size(sections)));
    db::detail::append_u64(header, entries_.size());
    std::uint64_t file_size = header_end;
    for (const auto& [id, body] : sections) file_size += body->size();
    db::detail::append_u64(header, file_size);
    detail::append_u32(header, 0);  // header crc, patched below
    detail::append_u32(header, 0);  // reserved
    std::uint64_t offset = header_end;
    for (const auto& [id, body] : sections) {
      detail::append_u32(header, static_cast<std::uint32_t>(id));
      detail::append_u32(
          header,
          detail::crc32(reinterpret_cast<const unsigned char*>(body->data()),
                        body->size()));
      db::detail::append_u64(header, offset);
      db::detail::append_u64(header, body->size());
      offset += body->size();
    }
    const std::uint32_t header_crc = detail::crc32(
        reinterpret_cast<const unsigned char*>(header.data()), header.size());
    for (int byte = 0; byte < 4; ++byte)
      header[40 + byte] = static_cast<char>((header_crc >> (8 * byte)) & 0xff);

    // Crash-safe replacement: build the file as <path>.tmp.<pid>, fsync it,
    // atomically rename over the final path, then fsync the directory. A
    // crash, power cut, or injected fault (db.write.short / db.write.kill /
    // db.fsync) at ANY point leaves the previous database byte-identical --
    // readers only ever see the old complete file or the new complete file.
#if defined(FEMTO_DB_HAVE_MMAP)
    const std::string tmp = path + ".tmp." + std::to_string(::getpid());
#else
    const std::string tmp = path + ".tmp";
#endif
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) return "cannot write '" + tmp + "'";
    // Chunked writes give the kill/short failpoints mid-file granularity
    // (a torn tmp really is torn, not empty).
    const auto put = [&f](const std::string& body) -> bool {
      constexpr std::size_t kChunk = std::size_t{64} * 1024;
      for (std::size_t pos = 0; pos < body.size(); pos += kChunk) {
        const std::size_t n = std::min(kChunk, body.size() - pos);
        if (FEMTO_FAILPOINT("db.write.kill")) {
          std::fflush(f);
          std::_Exit(137);  // simulated crash mid-write; tmp is torn
        }
        if (FEMTO_FAILPOINT("db.write.short")) {
          (void)!std::fwrite(body.data() + pos, 1, n / 2, f);
          return false;
        }
        if (std::fwrite(body.data() + pos, 1, n, f) != n) return false;
      }
      return true;
    };
    bool ok = put(header);
    for (const auto& [id, body] : sections) ok = ok && put(*body);
    ok = ok && std::fflush(f) == 0;
#if defined(FEMTO_DB_HAVE_MMAP)
    if (ok && (FEMTO_FAILPOINT("db.fsync") || ::fsync(::fileno(f)) != 0))
      ok = false;
#endif
    ok = std::fclose(f) == 0 && ok;
    if (!ok) {
      std::remove(tmp.c_str());
      return "short write on '" + tmp + "' (previous '" + path +
             "' left intact)";
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      std::remove(tmp.c_str());
      return "cannot rename '" + tmp + "' over '" + path + "'";
    }
#if defined(FEMTO_DB_HAVE_MMAP)
    // Durability of the rename itself: fsync the containing directory.
    const std::size_t slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash + 1);
    const int dfd = ::open(dir.c_str(), O_RDONLY);
    if (dfd >= 0) {
      (void)::fsync(dfd);
      ::close(dfd);
    }
#endif
    return "";
  }

 private:
  struct Value {
    std::string bytes;
    std::uint64_t orbit_hash = 0;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Value> entries_;
};

}  // namespace femto::db
