// Canonical GF(2) signatures for compilation artifacts.
//
// The persistent compilation database (db/database.hpp) keys circuits by a
// *canonical* serialization of the synthesis input, not by whatever bytes a
// particular caller happened to hold:
//
//  canonical_key   the block-sequence NORMAL FORM -- an invertible
//                  serialization of (n, policy, native, blocks) with every
//                  representational redundancy stripped:
//                   - the i^k prefactor is omitted (the synthesizer requires
//                     letter-form sign +1, so the phase exponent is derived:
//                     k == #Y mod 4) -- two PauliString representations of
//                     the same operator map to one key;
//                   - signed-zero angles are normalized (-0.0 -> +0.0; the
//                     emitted rotation gates compare equal under IEEE ==).
//                  Two inputs share a canonical key EXACTLY when
//                  synthesize_sequence produces gate-for-gate identical
//                  circuits for them, which is what makes the key safe as a
//                  serving key under the pipeline's bit-identity contract
//                  (tests/test_db.cpp proves the property on randomized and
//                  permuted/relabeled sequences).
//
//  orbit_signature the Gamma-ORBIT canonical representative under qubit
//                  relabeling: qubits are re-labeled by sorting their full
//                  per-block (letter, is-target) column signatures, which is
//                  invariant under any permutation of the qubit labels
//                  (permutations are exactly the monomial subgroup of the
//                  GL(n,2) Gamma group that preserves synthesized structure;
//                  general Gamma conjugation changes string weights and
//                  therefore circuits, so it cannot share artifacts). Ties
//                  between identical columns are genuine automorphisms --
//                  swapping such qubits maps every block to itself -- so the
//                  representative is well-defined. The signature groups
//                  relabeling-equivalent artifacts for dedup statistics and
//                  for the encoding-space miner; it is NOT a serving key
//                  (the synthesizer's emission order is label-dependent, so
//                  serving across a relabeling would break bit-identity).
//
// canonical_key is invertible: decode_key recovers (n, policy, native,
// blocks) with canonical phases, which lets femto-db verify re-synthesize
// every stored artifact and compare bit-for-bit.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "synth/pauli_exponential.hpp"

namespace femto::db {

/// FNV-1a 64-bit hash (index hashing; full keys are always compared).
[[nodiscard]] inline std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace detail {

inline void append_u64(std::string& out, std::uint64_t v) {
  for (int byte = 0; byte < 8; ++byte)
    out.push_back(static_cast<char>((v >> (8 * byte)) & 0xff));
}

[[nodiscard]] inline std::uint64_t read_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int byte = 0; byte < 8; ++byte)
    v |= static_cast<std::uint64_t>(p[byte]) << (8 * byte);
  return v;
}

/// +0.0 and -0.0 emit rotation gates that compare equal, so the key must
/// not distinguish them.
[[nodiscard]] inline double normalize_angle(double a) {
  return a == 0.0 ? 0.0 : a;
}

inline void append_block(std::string& out, const synth::RotationBlock& b) {
  // The synthesizer contract (synthesize_sequence asserts it) pins the
  // letter-form sign to +1, i.e. phase exponent == #Y mod 4 -- so the phase
  // is derived, not serialized. Enforce rather than silently canonicalize:
  // folding a sign flip into the key would alias two different operators.
  FEMTO_EXPECTS(b.string.sign() == pauli::Complex(1.0, 0.0));
  for (const std::uint64_t w : b.string.x().words()) append_u64(out, w);
  for (const std::uint64_t w : b.string.z().words()) append_u64(out, w);
  append_u64(out, b.target);
  append_u64(out, std::bit_cast<std::uint64_t>(normalize_angle(b.angle_coeff)));
  append_u64(out, static_cast<std::uint64_t>(static_cast<std::int64_t>(b.param)));
}

}  // namespace detail

/// Block-sequence normal form: the database serving key. Equal keys <=>
/// gate-for-gate identical synthesize_sequence output.
[[nodiscard]] inline std::string canonical_key(
    std::size_t n, const std::vector<synth::RotationBlock>& seq,
    synth::MergePolicy policy, synth::EntanglerKind native) {
  std::string key;
  key.reserve(32 + seq.size() * (2 * ((n + 63) / 64) + 3) * 8);
  detail::append_u64(key, n);
  detail::append_u64(key, static_cast<std::uint64_t>(policy));
  detail::append_u64(key, static_cast<std::uint64_t>(native));
  detail::append_u64(key, seq.size());
  for (const synth::RotationBlock& b : seq) {
    FEMTO_EXPECTS(b.string.num_qubits() == n);
    detail::append_block(key, b);
  }
  return key;
}

/// A canonical key decoded back into synthesis inputs.
struct DecodedKey {
  std::size_t n = 0;
  synth::MergePolicy policy = synth::MergePolicy::kMerge;
  synth::EntanglerKind native = synth::EntanglerKind::kCnot;
  std::vector<synth::RotationBlock> seq;
};

/// Inverts canonical_key; nullopt on malformed bytes (wrong length, enum out
/// of range). Phases are reconstructed canonically (#Y mod 4, sign +1).
[[nodiscard]] inline std::optional<DecodedKey> decode_key(
    std::string_view key) {
  const auto* p = reinterpret_cast<const unsigned char*>(key.data());
  if (key.size() < 32) return std::nullopt;
  DecodedKey out;
  out.n = static_cast<std::size_t>(detail::read_u64(p));
  const std::uint64_t policy = detail::read_u64(p + 8);
  const std::uint64_t native = detail::read_u64(p + 16);
  const std::uint64_t blocks = detail::read_u64(p + 24);
  if (policy > static_cast<std::uint64_t>(synth::MergePolicy::kMerge) ||
      native > static_cast<std::uint64_t>(synth::EntanglerKind::kXX) ||
      out.n == 0 || out.n > (std::size_t{1} << 20))
    return std::nullopt;
  out.policy = static_cast<synth::MergePolicy>(policy);
  out.native = static_cast<synth::EntanglerKind>(native);
  const std::size_t words = (out.n + 63) / 64;
  const std::size_t block_bytes = (2 * words + 3) * 8;
  if (key.size() != 32 + blocks * block_bytes) return std::nullopt;
  out.seq.reserve(blocks);
  std::size_t off = 32;
  for (std::uint64_t k = 0; k < blocks; ++k) {
    synth::RotationBlock b;
    gf2::BitVec x(out.n), z(out.n);
    for (std::size_t w = 0; w < words; ++w) {
      const std::uint64_t xw = detail::read_u64(p + off + 8 * w);
      const std::uint64_t zw = detail::read_u64(p + off + 8 * (words + w));
      for (std::size_t bit = 0; bit < 64 && w * 64 + bit < out.n; ++bit) {
        if ((xw >> bit) & 1) x.set(w * 64 + bit, true);
        if ((zw >> bit) & 1) z.set(w * 64 + bit, true);
      }
    }
    pauli::PauliString s(out.n);
    s.set_symplectic(std::move(x), std::move(z));
    s.set_phase_exponent(
        static_cast<int>((s.x() & s.z()).popcount()) & 3);  // sign +1
    b.string = std::move(s);
    off += 16 * words;
    b.target = static_cast<std::size_t>(detail::read_u64(p + off));
    b.angle_coeff = std::bit_cast<double>(detail::read_u64(p + off + 8));
    b.param = static_cast<int>(
        static_cast<std::int64_t>(detail::read_u64(p + off + 16)));
    off += 24;
    if (b.target >= out.n) return std::nullopt;
    out.seq.push_back(std::move(b));
  }
  return out;
}

/// Qubit relabeling that sorts the per-qubit (letter, is-target) column
/// signatures: perm[old label] = canonical label. Invariant construction --
/// the column of qubit q in a relabeled sequence equals the column of its
/// preimage, so every relabeling of a sequence yields the same sorted
/// columns and therefore the same canonical representative.
[[nodiscard]] inline std::vector<std::size_t> canonical_relabeling(
    std::size_t n, const std::vector<synth::RotationBlock>& seq) {
  std::vector<std::string> column(n);
  for (std::size_t q = 0; q < n; ++q) {
    column[q].reserve(seq.size());
    for (const synth::RotationBlock& b : seq)
      column[q].push_back(static_cast<char>(
          (static_cast<int>(b.string.letter(q)) << 1) |
          (b.target == q ? 1 : 0)));
  }
  std::vector<std::size_t> order(n);
  for (std::size_t q = 0; q < n; ++q) order[q] = q;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return column[a] < column[b];
  });
  std::vector<std::size_t> perm(n);
  for (std::size_t rank = 0; rank < n; ++rank) perm[order[rank]] = rank;
  return perm;
}

/// Applies a qubit relabeling to a block sequence (strings and targets).
[[nodiscard]] inline std::vector<synth::RotationBlock> relabel_sequence(
    const std::vector<synth::RotationBlock>& seq,
    const std::vector<std::size_t>& perm) {
  std::vector<synth::RotationBlock> out;
  out.reserve(seq.size());
  for (const synth::RotationBlock& b : seq) {
    synth::RotationBlock r;
    pauli::PauliString s(b.string.num_qubits());
    for (std::size_t q = 0; q < b.string.num_qubits(); ++q)
      s.set_letter(perm[q], b.string.letter(q));
    // set_letter tracks the prefactor so the letter-form sign is preserved
    // (+1 in, +1 out); #Y is permutation-invariant.
    r.string = std::move(s);
    r.target = perm[b.target];
    r.angle_coeff = b.angle_coeff;
    r.param = b.param;
    out.push_back(std::move(r));
  }
  return out;
}

/// Orbit canonical representative: the canonical_key of the sequence under
/// its canonical relabeling. Invariant under any qubit relabeling of the
/// input; used for grouping/statistics (femto-db info, the encoding miner),
/// never for serving circuits.
[[nodiscard]] inline std::string orbit_signature(
    std::size_t n, const std::vector<synth::RotationBlock>& seq,
    synth::MergePolicy policy, synth::EntanglerKind native) {
  return canonical_key(n, relabel_sequence(seq, canonical_relabeling(n, seq)),
                       policy, native);
}

}  // namespace femto::db
