// A small std::thread worker pool with a shared job queue.
//
// The compilation pipeline (core/pipeline.hpp) and the multi-restart solver
// drivers (opt/restart.hpp) schedule independent, slot-indexed jobs on this
// pool. Determinism is preserved by construction: every job writes only its
// own output slot and draws randomness only from an Rng stream derived from
// (master seed, slot index), so the result set is identical for any worker
// count and any execution interleaving.
//
// parallel_for() lets the *calling* thread participate in draining the index
// range, which keeps a 1-worker pool as fast as a plain loop and makes
// nested use from inside a worker deadlock-free (the caller always makes
// progress itself).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/assert.hpp"

namespace femto {

class ThreadPool {
 public:
  /// Spawns `workers` threads; 0 means std::thread::hardware_concurrency()
  /// (itself clamped to at least 1).
  explicit ThreadPool(std::size_t workers = 0) {
    if (workers == 0) {
      workers = std::thread::hardware_concurrency();
      if (workers == 0) workers = 1;
    }
    threads_.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w)
      threads_.emplace_back([this] { worker_loop(); });
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  [[nodiscard]] std::size_t worker_count() const { return threads_.size(); }

  /// Enqueues one fire-and-forget job.
  void submit(std::function<void()> job) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      queue_.push_back(std::move(job));
    }
    cv_.notify_one();
  }

  /// Runs fn(0) ... fn(n-1) across the pool plus the calling thread and
  /// blocks until all n calls finished. Indices are claimed atomically, so
  /// each runs exactly once; any exception is rethrown (first one wins).
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& fn) {
    if (n == 0) return;
    auto state = std::make_shared<ForState>();
    state->limit = n;
    // The job may outlive this frame (a queued helper can fire after all
    // indices were drained by others), so it must own fn via the state.
    state->fn = fn;
    // No point waking more helpers than remaining indices; the caller
    // always drains too, hence the -1.
    const std::size_t helpers = std::min(threads_.size(), n - 1);
    for (std::size_t h = 0; h < helpers; ++h)
      submit([state] { drain(*state); });
    drain(*state);
    {
      std::unique_lock<std::mutex> lock(state->mutex);
      state->cv.wait(lock, [&] { return state->done == state->limit; });
    }
    if (state->error) std::rethrow_exception(state->error);
  }

 private:
  struct ForState {
    std::function<void(std::size_t)> fn;
    std::atomic<std::size_t> next{0};
    std::size_t limit = 0;
    std::size_t done = 0;  // guarded by mutex
    std::exception_ptr error;
    std::mutex mutex;
    std::condition_variable cv;
  };

  static void drain(ForState& state) {
    while (true) {
      const std::size_t i = state.next.fetch_add(1);
      if (i >= state.limit) return;
      std::exception_ptr err;
      try {
        state.fn(i);
      } catch (...) {
        err = std::current_exception();
      }
      {
        const std::lock_guard<std::mutex> lock(state.mutex);
        if (err && !state.error) state.error = err;
        ++state.done;
      }
      state.cv.notify_all();
    }
  }

  void worker_loop() {
    while (true) {
      std::function<void()> job;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
        if (stop_ && queue_.empty()) return;
        job = std::move(queue_.front());
        queue_.pop_front();
      }
      job();
    }
  }

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace femto
