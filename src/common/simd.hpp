// Runtime SIMD dispatch for the hand-vectorized kernels in gf2/wordops.hpp
// and sim/kernels.hpp.
//
// Three levels, all compiled into every x86-64 binary via function target
// attributes (no special -march flags needed):
//
//   kPortable -- plain C++ loops, the reference semantics. Always available.
//   kAvx2     -- 256-bit integer/double lanes (requires AVX2).
//   kAvx512   -- 512-bit lanes (requires AVX-512 F+BW+DQ+VL; popcounts use
//                the in-register byte-LUT so VPOPCNTDQ is NOT required).
//
// The active level is resolved once: the FEMTO_SIMD environment variable
// ("portable" | "avx2" | "avx512" | "auto"), clamped to what the CPU
// actually supports, defaulting to the best supported level. Tests and
// benches switch levels in-process with set_level() (also clamped), which is
// how the SIMD-vs-portable bit-identity property tests iterate every level
// on one machine.
//
// Contract (mirrors the PR-5 hot-path rule): every kernel family produces
// BIT-IDENTICAL results at every level. Vector paths reorder work across
// elements only -- each element sees the same arithmetic ops in the same
// order as the portable loop (the femto build also sets -ffp-contract=off so
// no FMA contraction can change rounding between paths).
#pragma once

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.hpp"

// Hand-vectorized paths need x86-64 plus GCC/Clang function multiversioning
// via __attribute__((target(...))). Elsewhere (or under other compilers)
// only the portable level exists and dispatch collapses to it.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define FEMTO_SIMD_X86 1
#else
#define FEMTO_SIMD_X86 0
#endif

namespace femto::simd {

enum class Level : int { kPortable = 0, kAvx2 = 1, kAvx512 = 2 };

inline const char* to_string(Level l) {
  switch (l) {
    case Level::kAvx512:
      return "avx512";
    case Level::kAvx2:
      return "avx2";
    default:
      return "portable";
  }
}

/// Best level this CPU can execute (queried once, cached).
inline Level max_supported() {
#if FEMTO_SIMD_X86
  static const Level cached = [] {
    __builtin_cpu_init();
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512bw") &&
        __builtin_cpu_supports("avx512dq") &&
        __builtin_cpu_supports("avx512vl")) {
      return Level::kAvx512;
    }
    if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
    return Level::kPortable;
  }();
  return cached;
#else
  return Level::kPortable;
#endif
}

namespace detail {

/// Parse a FEMTO_SIMD value; unknown strings (and "auto") mean "best".
inline Level parse_level(const char* s, Level best) {
  if (s == nullptr) return best;
  if (std::strcmp(s, "portable") == 0 || std::strcmp(s, "scalar") == 0 ||
      std::strcmp(s, "0") == 0) {
    return Level::kPortable;
  }
  if (std::strcmp(s, "avx2") == 0 || std::strcmp(s, "1") == 0) {
    return Level::kAvx2;
  }
  if (std::strcmp(s, "avx512") == 0 || std::strcmp(s, "2") == 0) {
    return Level::kAvx512;
  }
  return best;
}

inline Level clamp(Level l) {
  return static_cast<int>(l) > static_cast<int>(max_supported())
             ? max_supported()
             : l;
}

// The gauge lets femtod `metrics` report which kernel path production
// traffic actually takes (0 = portable, 1 = avx2, 2 = avx512).
inline void publish_level(Level l) {
  obs::registry().gauge("sim.simd_level").set(static_cast<std::int64_t>(l));
}

inline std::atomic<int>& level_slot() {
  static std::atomic<int> slot = [] {
    Level l = clamp(parse_level(std::getenv("FEMTO_SIMD"), max_supported()));
    publish_level(l);
    return static_cast<int>(l);
  }();
  return slot;
}

}  // namespace detail

/// Active dispatch level. Resolved once from FEMTO_SIMD (clamped to CPU
/// support); cheap enough to call per kernel invocation.
inline Level level() {
  return static_cast<Level>(
      detail::level_slot().load(std::memory_order_relaxed));
}

/// Override the active level in-process (clamped to CPU support). Returns
/// the level actually installed. Used by the equivalence tests and the
/// simd-vs-portable bench ratios.
inline Level set_level(Level l) {
  Level installed = detail::clamp(l);
  detail::level_slot().store(static_cast<int>(installed),
                             std::memory_order_relaxed);
  detail::publish_level(installed);
  return installed;
}

}  // namespace femto::simd
