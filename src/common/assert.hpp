// Lightweight contract checking used across femto.
//
// FEMTO_EXPECTS / FEMTO_ENSURES mirror the GSL Expects/Ensures idiom from the
// C++ Core Guidelines (I.6, I.8): preconditions and postconditions abort with
// a readable message. They stay enabled in release builds because every
// caller of this library is an offline compiler/optimizer where a wrong
// answer is far worse than a crash.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace femto::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "femto: %s violated: (%s) at %s:%d\n", kind, expr, file,
               line);
  std::abort();
}

}  // namespace femto::detail

#define FEMTO_EXPECTS(cond)                                               \
  do {                                                                    \
    if (!(cond))                                                          \
      ::femto::detail::contract_failure("precondition", #cond, __FILE__, \
                                        __LINE__);                        \
  } while (false)

#define FEMTO_ENSURES(cond)                                                \
  do {                                                                     \
    if (!(cond))                                                           \
      ::femto::detail::contract_failure("postcondition", #cond, __FILE__, \
                                        __LINE__);                         \
  } while (false)

#define FEMTO_ASSERT(cond)                                              \
  do {                                                                  \
    if (!(cond))                                                        \
      ::femto::detail::contract_failure("invariant", #cond, __FILE__,  \
                                        __LINE__);                      \
  } while (false)

// Debug-only precondition: compiled out in release (NDEBUG) builds. For the
// per-bit accessors on compile/simulation hot paths, where the always-on
// FEMTO_EXPECTS costs a compare+branch per *bit* -- the unchecked accessor
// variants (BitVec::get_u & co.) use this so sanitizer/Debug CI still
// verifies every index while release inner loops pay nothing.
#if defined(NDEBUG)
#define FEMTO_DEBUG_EXPECTS(cond) \
  do {                            \
  } while (false)
#else
#define FEMTO_DEBUG_EXPECTS(cond) FEMTO_EXPECTS(cond)
#endif
