// Deterministic random number generation.
//
// All stochastic solvers in femto (simulated annealing, the GTSP genetic
// algorithm, particle swarm, randomized coloring) draw from an explicitly
// seeded Rng so that every experiment in bench/ is reproducible run-to-run.
//
// Multi-restart / multi-threaded work derives per-stream seeds from a single
// master seed with splitmix64 mixing: stream k's sequence depends only on
// (master, k), never on which thread runs it or in what order, which is what
// makes the compilation pipeline's results thread-count invariant.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>

#include "common/assert.hpp"

namespace femto {

/// One step of the splitmix64 mixer (Steele, Lea & Flood): a bijective
/// avalanche function on 64-bit words.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Seed of independent stream `stream` derived from `master`. Pure function
/// of its inputs; distinct streams decorrelate through double splitmix64
/// mixing. Stream 0 is *not* the master seed -- callers that need
/// "stream 0 == single shot" semantics (the compile pipeline) special-case
/// stream 0 themselves.
[[nodiscard]] constexpr std::uint64_t derive_stream_seed(std::uint64_t master,
                                                         std::uint64_t stream) {
  return splitmix64(splitmix64(master) ^ splitmix64(~stream));
}

/// Thin wrapper over std::mt19937_64 with convenience draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eedULL) : engine_(seed) {}

  /// Rng over derived stream `stream` of `master` (see derive_stream_seed).
  [[nodiscard]] static Rng stream(std::uint64_t master, std::uint64_t stream) {
    return Rng(derive_stream_seed(master, stream));
  }

  /// Uniform integer in [0, n), n > 0.
  [[nodiscard]] std::size_t index(std::size_t n) {
    FEMTO_EXPECTS(n > 0);
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] int range(int lo, int hi) {
    FEMTO_EXPECTS(lo <= hi);
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Uniform real in [0, 1).
  [[nodiscard]] double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform real in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Standard normal draw.
  [[nodiscard]] double normal() {
    return std::normal_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Bernoulli draw with success probability p.
  [[nodiscard]] bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Fisher-Yates shuffle.
  template <typename Container>
  void shuffle(Container& c) {
    std::shuffle(c.begin(), c.end(), engine_);
  }

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace femto
