// Deterministic random number generation.
//
// All stochastic solvers in femto (simulated annealing, the GTSP genetic
// algorithm, particle swarm, randomized coloring) draw from an explicitly
// seeded Rng so that every experiment in bench/ is reproducible run-to-run.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>

#include "common/assert.hpp"

namespace femto {

/// Thin wrapper over std::mt19937_64 with convenience draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eedULL) : engine_(seed) {}

  /// Uniform integer in [0, n), n > 0.
  [[nodiscard]] std::size_t index(std::size_t n) {
    FEMTO_EXPECTS(n > 0);
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] int range(int lo, int hi) {
    FEMTO_EXPECTS(lo <= hi);
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Uniform real in [0, 1).
  [[nodiscard]] double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform real in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Standard normal draw.
  [[nodiscard]] double normal() {
    return std::normal_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Bernoulli draw with success probability p.
  [[nodiscard]] bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Fisher-Yates shuffle.
  template <typename Container>
  void shuffle(Container& c) {
    std::shuffle(c.begin(), c.end(), engine_);
  }

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace femto
