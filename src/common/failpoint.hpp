// Deterministic fault injection: a process-global registry of named
// failpoints threaded through the serving stack's failure-prone seams
// (db writes, socket accept/recv, cache inserts, pipeline restarts).
//
// A failpoint is evaluated with FEMTO_FAILPOINT("name"): it returns true
// ("fire the fault") with the armed probability, drawn from a splitmix64
// stream seeded at arm time -- so a chaos run with a fixed spec replays the
// same fault sequence at every site, every time. Arm via either
//
//   * the environment: FEMTO_FAILPOINTS=db.write.short:0.5:42,service.recv:0.1:7
//     (parsed once, on first registry use; a malformed spec aborts loudly --
//     silently serving *without* the faults an operator asked for is the
//     one behavior a fault-injection framework must never have), or
//   * programmatically / over the wire: fail::registry().arm("name:p:seed")
//     (the femtod `failpoints` op forwards here), which returns a
//     diagnostic string instead of aborting.
//
// Cost contract (pinned by test_failpoint and bench_service's
// failpoint_disabled_zero_alloc, like obs::Tracer's disabled path): when NO
// failpoint is armed anywhere in the process, FEMTO_FAILPOINT is exactly one
// relaxed atomic load -- no allocation, no clock, no registry lookup, no
// static-local guard (the armed count is constinit). Armed evaluations take
// the registry mutex; faults are rare events, not hot paths.
//
// Stable failpoint names (the contract chaos tooling scripts against; see
// README "Resilience"):
//
//   db.write.short    DatabaseBuilder::write: a chunk write fails short;
//                     the write() call returns a diagnostic, the tmp file
//                     is removed, the previous database is untouched
//   db.write.kill     DatabaseBuilder::write: the process dies (_Exit 137)
//                     mid-write, leaving a torn tmp file behind -- the
//                     kill-mid-write recovery tests arm this in a fork
//   db.fsync          DatabaseBuilder::write: fsync of the tmp file fails
//   service.accept    SocketServer: an accepted connection is dropped
//                     before any byte is read (client sees EOF -> retries)
//   service.recv      SocketServer: the connection is torn down mid-read
//                     (client reconnects and resubmits)
//   cache.insert      SynthesisCache: the memo insert is dropped (as if
//                     evicted instantly); the caller still gets its circuit
//   pipeline.restart  CompilePipeline restart boundary: the finished job is
//                     thrown away and recomputed once (purity makes the
//                     retry bit-identical; counted in
//                     pipeline.restart_retries)
//
// Header-only, depends only on common/. No other header may be needed to
// *evaluate* a failpoint -- sites include this one file.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace femto::fail {

namespace detail {

/// Number of currently armed failpoints, process-wide. constinit + inline:
/// no static-local guard anywhere on the read path, so the disabled
/// FEMTO_FAILPOINT fast path compiles to one relaxed load and a branch.
inline constinit std::atomic<int> g_armed_count{0};

}  // namespace detail

/// One entry of a parsed FEMTO_FAILPOINTS spec.
struct FailpointSpec {
  std::string name;
  double prob = 1.0;
  std::uint64_t seed = 0;
};

/// Parses "name[:prob[:seed]],..." (prob defaults to 1, seed to 0).
/// Returns nullopt and sets *error on any malformed entry; never partially
/// applies (pure parse, no side effects).
[[nodiscard]] inline std::optional<std::vector<FailpointSpec>> parse_spec(
    const std::string& spec, std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = "bad failpoint spec '" + spec + "': " + why;
    return std::nullopt;
  };
  std::vector<FailpointSpec> out;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) {
      if (spec.empty()) break;
      return fail("empty entry");
    }
    FailpointSpec fp;
    const std::size_t c1 = entry.find(':');
    fp.name = entry.substr(0, c1);
    if (fp.name.empty()) return fail("empty failpoint name");
    if (c1 != std::string::npos) {
      const std::size_t c2 = entry.find(':', c1 + 1);
      const std::string prob_s = entry.substr(
          c1 + 1, c2 == std::string::npos ? std::string::npos : c2 - c1 - 1);
      try {
        std::size_t used = 0;
        fp.prob = std::stod(prob_s, &used);
        if (used != prob_s.size()) throw std::invalid_argument(prob_s);
      } catch (const std::exception&) {
        return fail("probability '" + prob_s + "' is not a number");
      }
      if (!(fp.prob >= 0.0) || !(fp.prob <= 1.0))
        return fail("probability " + prob_s + " outside [0, 1]");
      if (c2 != std::string::npos) {
        const std::string seed_s = entry.substr(c2 + 1);
        try {
          std::size_t used = 0;
          fp.seed = std::stoull(seed_s, &used);
          if (used != seed_s.size()) throw std::invalid_argument(seed_s);
        } catch (const std::exception&) {
          return fail("seed '" + seed_s + "' is not an unsigned integer");
        }
      }
    }
    out.push_back(std::move(fp));
    if (comma == spec.size()) break;
  }
  return out;
}

/// A single named failpoint. Pointer-stable once created (owned by the
/// Registry); all mutation happens under the registry mutex.
struct Failpoint {
  bool armed = false;
  double prob = 1.0;
  std::uint64_t seed = 0;
  std::uint64_t state = 0;  // splitmix64 walk, reset at arm time
  std::uint64_t evaluations = 0;  // armed evaluations only
  std::uint64_t fires = 0;
};

/// Snapshot row for exporters (the femtod `failpoints` op).
struct FailpointView {
  std::string name;
  bool armed = false;
  double prob = 1.0;
  std::uint64_t seed = 0;
  std::uint64_t evaluations = 0;
  std::uint64_t fires = 0;
};

class Registry {
 public:
  /// Arms every entry of `spec` ("name:prob:seed,..."). Returns "" on
  /// success or a diagnostic; a malformed spec arms NOTHING.
  [[nodiscard]] std::string arm(const std::string& spec) {
    std::string error;
    const std::optional<std::vector<FailpointSpec>> parsed =
        parse_spec(spec, &error);
    if (!parsed.has_value()) return error;
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const FailpointSpec& fp : *parsed) arm_locked(fp);
    return "";
  }

  void arm_one(const FailpointSpec& fp) {
    const std::lock_guard<std::mutex> lock(mutex_);
    arm_locked(fp);
  }

  /// Disarms one failpoint; returns false if no such (armed) name exists.
  bool disarm(const std::string& name) {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = points_.find(name);
    if (it == points_.end() || !it->second->armed) return false;
    it->second->armed = false;
    detail::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }

  void disarm_all() {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [name, p] : points_) {
      if (p->armed) {
        p->armed = false;
        detail::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
      }
    }
  }

  /// Armed-path evaluation (the macro already saw g_armed_count != 0).
  /// Deterministic: the fire sequence of a point is a pure function of
  /// (seed, evaluation index since arm).
  [[nodiscard]] bool should_fire(const char* name) {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = points_.find(name);
    if (it == points_.end() || !it->second->armed) return false;
    Failpoint& p = *it->second;
    ++p.evaluations;
    p.state = splitmix64(p.state);
    const double u =
        static_cast<double>(p.state >> 11) * 0x1.0p-53;  // [0, 1)
    if (u >= p.prob) return false;
    ++p.fires;
    return true;
  }

  [[nodiscard]] std::vector<FailpointView> snapshot() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<FailpointView> out;
    out.reserve(points_.size());
    for (const auto& [name, p] : points_)
      out.push_back({name, p->armed, p->prob, p->seed, p->evaluations,
                     p->fires});
    return out;
  }

 private:
  void arm_locked(const FailpointSpec& fp) {
    auto& slot = points_[fp.name];
    if (slot == nullptr) slot = std::make_unique<Failpoint>();
    if (!slot->armed)
      detail::g_armed_count.fetch_add(1, std::memory_order_relaxed);
    slot->armed = true;
    slot->prob = fp.prob;
    slot->seed = fp.seed;
    // Decorrelate the walk from the raw seed so seed 0 / seed 1 streams
    // differ from the first draw; re-arming resets the sequence.
    slot->state = derive_stream_seed(fp.seed, 0xfa11);
    slot->evaluations = 0;
    slot->fires = 0;
  }

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Failpoint>> points_;
};

/// THE process-global failpoint registry. First use parses FEMTO_FAILPOINTS
/// from the environment; a malformed value aborts (see header comment).
/// Intentionally leaked so failpoints stay evaluable during static
/// destruction of other objects.
[[nodiscard]] inline Registry& registry() {
  static Registry* r = [] {
    auto* reg = new Registry();
    if (const char* env = std::getenv("FEMTO_FAILPOINTS");
        env != nullptr && env[0] != '\0') {
      const std::string error = reg->arm(env);
      if (!error.empty()) {
        std::fprintf(stderr, "femto: FEMTO_FAILPOINTS rejected: %s\n",
                     error.c_str());
        std::abort();
      }
    }
    return reg;
  }();
  return *r;
}

namespace detail {

/// Armed-path half of FEMTO_FAILPOINT; out of the macro so the fast path
/// inlines to load+branch+call.
[[nodiscard]] inline bool evaluate(const char* name) {
  return registry().should_fire(name);
}

/// Forces registry construction (and with it FEMTO_FAILPOINTS parsing)
/// before main in every binary that can evaluate a failpoint -- otherwise
/// env-armed points would never raise g_armed_count and the macro's fast
/// path would skip them forever.
[[maybe_unused]] inline const bool g_env_parsed =
    (static_cast<void>(registry()), true);

}  // namespace detail

}  // namespace femto::fail

/// True iff the named failpoint is armed and fires on this evaluation.
/// Disabled cost (nothing armed process-wide): ONE relaxed atomic load.
#define FEMTO_FAILPOINT(name)                                            \
  (::femto::fail::detail::g_armed_count.load(std::memory_order_relaxed) != \
       0 &&                                                              \
   ::femto::fail::detail::evaluate(name))
