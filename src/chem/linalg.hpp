// Small dense real linear algebra for the SCF solver: symmetric Jacobi
// eigendecomposition, matrix products, and S^{-1/2} orthogonalization.
// Problem sizes are tiny (STO-3G molecules here have <= 8 AOs), so clarity
// beats asymptotics.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/assert.hpp"

namespace femto::chem {

/// Row-major dense real matrix.
class DMatrix {
 public:
  DMatrix() = default;
  DMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  [[nodiscard]] static DMatrix identity(std::size_t n) {
    DMatrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
  }

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] DMatrix transpose() const {
    DMatrix out(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
      for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
    return out;
  }

  [[nodiscard]] friend DMatrix operator*(const DMatrix& a, const DMatrix& b) {
    FEMTO_EXPECTS(a.cols_ == b.rows_);
    DMatrix out(a.rows_, b.cols_);
    for (std::size_t i = 0; i < a.rows_; ++i)
      for (std::size_t k = 0; k < a.cols_; ++k) {
        const double aik = a(i, k);
        if (aik == 0.0) continue;
        for (std::size_t j = 0; j < b.cols_; ++j) out(i, j) += aik * b(k, j);
      }
    return out;
  }

  [[nodiscard]] friend DMatrix operator+(DMatrix a, const DMatrix& b) {
    FEMTO_EXPECTS(a.rows_ == b.rows_ && a.cols_ == b.cols_);
    for (std::size_t i = 0; i < a.data_.size(); ++i) a.data_[i] += b.data_[i];
    return a;
  }

  [[nodiscard]] friend DMatrix operator-(DMatrix a, const DMatrix& b) {
    FEMTO_EXPECTS(a.rows_ == b.rows_ && a.cols_ == b.cols_);
    for (std::size_t i = 0; i < a.data_.size(); ++i) a.data_[i] -= b.data_[i];
    return a;
  }

  [[nodiscard]] friend DMatrix operator*(double s, DMatrix a) {
    for (double& v : a.data_) v *= s;
    return a;
  }

  [[nodiscard]] double max_abs() const {
    double m = 0;
    for (double v : data_) m = std::max(m, std::abs(v));
    return m;
  }

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

struct EigenResult {
  std::vector<double> values;  // ascending
  DMatrix vectors;             // column k = eigenvector of values[k]
};

/// Cyclic Jacobi eigensolver for symmetric matrices.
[[nodiscard]] inline EigenResult jacobi_eigensymmetric(DMatrix a,
                                                       int max_sweeps = 100) {
  FEMTO_EXPECTS(a.rows() == a.cols());
  const std::size_t n = a.rows();
  DMatrix v = DMatrix::identity(n);
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0;
    for (std::size_t p = 0; p < n; ++p)
      for (std::size_t q = p + 1; q < n; ++q) off += a(p, q) * a(p, q);
    if (off < 1e-22) break;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        if (std::abs(a(p, q)) < 1e-14) continue;
        const double theta = (a(q, q) - a(p, p)) / (2 * a(p, q));
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1));
        const double c = 1 / std::sqrt(t * t + 1);
        const double s = t * c;
        // Rotate rows/cols p,q of A and accumulate in V.
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a(k, p), akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a(p, k), aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p), vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }
  // Sort ascending by eigenvalue.
  EigenResult res;
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return a(x, x) < a(y, y); });
  res.values.resize(n);
  res.vectors = DMatrix(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    res.values[k] = a(order[k], order[k]);
    for (std::size_t r = 0; r < n; ++r) res.vectors(r, k) = v(r, order[k]);
  }
  return res;
}

/// S^{-1/2} via eigendecomposition (symmetric orthogonalization).
[[nodiscard]] inline DMatrix inverse_sqrt_symmetric(const DMatrix& s) {
  const EigenResult eig = jacobi_eigensymmetric(s);
  const std::size_t n = s.rows();
  DMatrix d(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    FEMTO_EXPECTS(eig.values[k] > 1e-10);  // basis must not be linearly dep.
    d(k, k) = 1.0 / std::sqrt(eig.values[k]);
  }
  return eig.vectors * d * eig.vectors.transpose();
}

}  // namespace femto::chem
