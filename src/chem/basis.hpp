// STO-3G basis set (Hehre, Stewart, Pople 1969).
//
// STO-3G expands each Slater orbital with zeta = 1 in three Gaussians with
// universal exponents/coefficients; element-specific orbitals are obtained
// by scaling exponents with zeta^2. The zeta table below reproduces the
// published EMSL STO-3G primitives to ~1e-5 (e.g. O 1s: 2.227660584 * 7.66^2
// = 130.709...).
#pragma once

#include <array>
#include <cmath>
#include <string>
#include <vector>

#include "common/assert.hpp"

namespace femto::chem {

/// Cartesian 3-vector (Bohr).
struct Vec3 {
  double x = 0, y = 0, z = 0;
  [[nodiscard]] friend Vec3 operator-(const Vec3& a, const Vec3& b) {
    return {a.x - b.x, a.y - b.y, a.z - b.z};
  }
  [[nodiscard]] double norm2() const { return x * x + y * y + z * z; }
};

/// One contracted Cartesian Gaussian basis function centered at `center`
/// with angular momentum (lx, ly, lz); primitives share exponents.
struct BasisFunction {
  Vec3 center;
  int lx = 0, ly = 0, lz = 0;
  std::vector<double> exponents;
  std::vector<double> coefficients;  // includes primitive normalization
};

struct Atom {
  int charge = 0;  // nuclear charge Z
  Vec3 position;   // Bohr
};

struct Molecule {
  std::string name;
  std::vector<Atom> atoms;
  int charge = 0;

  [[nodiscard]] int num_electrons() const {
    int n = -charge;
    for (const Atom& a : atoms) n += a.charge;
    return n;
  }

  [[nodiscard]] double nuclear_repulsion() const {
    double e = 0;
    for (std::size_t i = 0; i < atoms.size(); ++i)
      for (std::size_t j = i + 1; j < atoms.size(); ++j)
        e += atoms[i].charge * atoms[j].charge /
             std::sqrt((atoms[i].position - atoms[j].position).norm2());
    return e;
  }
};

namespace sto3g {

/// Universal 1s expansion (zeta = 1).
inline constexpr std::array<double, 3> k1sExp = {2.227660584, 0.405771156,
                                                 0.109818000};
inline constexpr std::array<double, 3> k1sCoef = {0.154328967, 0.535328142,
                                                  0.444634542};
/// Universal 2s/2p shared-exponent expansion (zeta = 1).
inline constexpr std::array<double, 3> k2spExp = {0.994203400, 0.231031350,
                                                  0.075138600};
inline constexpr std::array<double, 3> k2sCoef = {-0.099967229, 0.399512826,
                                                  0.700115469};
inline constexpr std::array<double, 3> k2pCoef = {0.155916275, 0.607683719,
                                                  0.391957393};

struct Zetas {
  double zeta1 = 0;  // 1s
  double zeta2 = 0;  // 2sp (0 when the element has no L shell here)
};

/// Standard STO-3G zeta values for the elements this reproduction needs.
[[nodiscard]] inline Zetas zetas_for(int z) {
  switch (z) {
    case 1: return {1.24, 0.0};   // H
    case 3: return {2.69, 0.80};  // Li
    case 4: return {3.68, 1.15};  // Be
    case 7: return {6.67, 1.95};  // N
    case 8: return {7.66, 2.25};  // O
    case 9: return {8.65, 2.55};  // F
    default:
      FEMTO_EXPECTS(false && "element not in the STO-3G table of this repo");
      return {};
  }
}

/// Primitive normalization for Cartesian Gaussian with exponent a and
/// angular momentum (i,j,k): (2a/pi)^{3/4} (4a)^{(i+j+k)/2} /
/// sqrt((2i-1)!!(2j-1)!!(2k-1)!!).
[[nodiscard]] inline double primitive_norm(double a, int i, int j, int k) {
  const auto dfact = [](int m) {  // (2m-1)!!
    double f = 1;
    for (int v = 2 * m - 1; v > 1; v -= 2) f *= v;
    return f;
  };
  const int l = i + j + k;
  return std::pow(2 * a / M_PI, 0.75) * std::pow(4 * a, l / 2.0) /
         std::sqrt(dfact(i) * dfact(j) * dfact(k));
}

}  // namespace sto3g

/// Builds the STO-3G basis for a molecule: one 1s function per H, and
/// {1s, 2s, 2px, 2py, 2pz} per first-row heavy atom.
[[nodiscard]] inline std::vector<BasisFunction> build_sto3g(
    const Molecule& mol) {
  using namespace sto3g;
  std::vector<BasisFunction> basis;
  const auto add_shell = [&](const Vec3& center, double zeta,
                             const std::array<double, 3>& exps,
                             const std::array<double, 3>& coefs, int lx,
                             int ly, int lz) {
    BasisFunction f;
    f.center = center;
    f.lx = lx;
    f.ly = ly;
    f.lz = lz;
    for (int k = 0; k < 3; ++k) {
      const double a = exps[static_cast<std::size_t>(k)] * zeta * zeta;
      f.exponents.push_back(a);
      f.coefficients.push_back(coefs[static_cast<std::size_t>(k)] *
                               primitive_norm(a, lx, ly, lz));
    }
    basis.push_back(std::move(f));
  };
  for (const Atom& atom : mol.atoms) {
    const Zetas z = zetas_for(atom.charge);
    add_shell(atom.position, z.zeta1, k1sExp, k1sCoef, 0, 0, 0);
    if (z.zeta2 > 0) {
      add_shell(atom.position, z.zeta2, k2spExp, k2sCoef, 0, 0, 0);
      add_shell(atom.position, z.zeta2, k2spExp, k2pCoef, 1, 0, 0);
      add_shell(atom.position, z.zeta2, k2spExp, k2pCoef, 0, 1, 0);
      add_shell(atom.position, z.zeta2, k2spExp, k2pCoef, 0, 0, 1);
    }
  }
  return basis;
}

}  // namespace femto::chem
