// Determinant-basis full CI.
//
// Exact ground-state energies in the Sz = 0, N = nelec sector via
// Slater-Condon matrix elements and a Lanczos iteration with full
// reorthogonalization. This is an independent code path from the qubit-space
// Lanczos in sim/ (different basis, different matrix elements) -- agreement
// between the two is a strong integration test, and FCI supplies the
// chemical-accuracy reference line of Fig. 5.
#pragma once

#include <cstdint>
#include <vector>

#include "chem/mo_integrals.hpp"
#include "common/rng.hpp"

namespace femto::chem {

namespace fci_detail {

/// Fermionic phase for moving an operator past the occupied orbitals below
/// `orbital` in `mask`.
[[nodiscard]] inline int parity_below(std::uint64_t mask, int orbital) {
  const std::uint64_t below = mask & ((std::uint64_t{1} << orbital) - 1);
  return (__builtin_popcountll(below) & 1) ? -1 : 1;
}

/// Phase of a+_a a_p |mask> (p occupied, a empty), annihilating p first.
[[nodiscard]] inline int excitation_phase(std::uint64_t mask, int p, int a) {
  int phase = parity_below(mask, p);
  const std::uint64_t after_p = mask ^ (std::uint64_t{1} << p);
  phase *= parity_below(after_p, a);
  return phase;
}

}  // namespace fci_detail

struct FciResult {
  double energy = 0.0;
  std::size_t dimension = 0;
  int iterations = 0;
  bool converged = false;
};

/// Exact ground energy by Lanczos over Sz = 0 determinants.
[[nodiscard]] inline FciResult run_fci(const SpinOrbitalIntegrals& so,
                                       int max_iter = 120, double tol = 1e-11) {
  using fci_detail::excitation_phase;
  const int n = static_cast<int>(so.n);
  const int nelec = static_cast<int>(so.nelec);
  FEMTO_EXPECTS(n <= 62);
  FEMTO_EXPECTS(nelec % 2 == 0);

  // Enumerate determinants: bitmask over spin orbitals with N electrons and
  // equal alpha (even bits) and beta (odd bits) counts.
  std::vector<std::uint64_t> dets;
  const std::uint64_t alpha_bits = [&] {
    std::uint64_t m = 0;
    for (int i = 0; i < n; i += 2) m |= std::uint64_t{1} << i;
    return m;
  }();
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << n); ++mask) {
    if (__builtin_popcountll(mask) != nelec) continue;
    if (__builtin_popcountll(mask & alpha_bits) != nelec / 2) continue;
    dets.push_back(mask);
  }
  const std::size_t dim = dets.size();
  std::vector<std::size_t> lookup;  // mask -> index (dense table, n <= ~20)
  lookup.assign(std::size_t{1} << n, dim);
  for (std::size_t i = 0; i < dim; ++i) lookup[dets[i]] = i;

  // Matvec via Slater-Condon rules.
  const auto matvec = [&](const std::vector<double>& x) {
    std::vector<double> y(dim, 0.0);
    std::vector<int> occ, vir;
    for (std::size_t di = 0; di < dim; ++di) {
      const std::uint64_t mask = dets[di];
      occ.clear();
      vir.clear();
      for (int p = 0; p < n; ++p) {
        if (mask & (std::uint64_t{1} << p))
          occ.push_back(p);
        else
          vir.push_back(p);
      }
      // Diagonal.
      double diag = so.nuclear_repulsion;
      for (int p : occ) diag += so.h_at(p, p);
      for (std::size_t a = 0; a < occ.size(); ++a)
        for (std::size_t b = a + 1; b < occ.size(); ++b)
          diag += so.anti_at(occ[a], occ[b], occ[a], occ[b]);
      y[di] += diag * x[di];
      // Singles p -> a (same spin by integral structure; h and <..||..>
      // vanish otherwise).
      for (int p : occ) {
        for (int a : vir) {
          if ((p % 2) != (a % 2)) continue;
          double val = so.h_at(a, p);
          for (int m : occ)
            if (m != p) val += so.anti_at(a, m, p, m);
          if (std::abs(val) < 1e-14) continue;
          const std::uint64_t newmask = (mask ^ (std::uint64_t{1} << p)) |
                                        (std::uint64_t{1} << a);
          const int phase = excitation_phase(mask, p, a);
          y[lookup[newmask]] += phase * val * x[di];
        }
      }
      // Doubles (p<q) -> (a<b):
      for (std::size_t i1 = 0; i1 < occ.size(); ++i1) {
        for (std::size_t i2 = i1 + 1; i2 < occ.size(); ++i2) {
          const int p = occ[i1], q = occ[i2];
          for (std::size_t a1 = 0; a1 < vir.size(); ++a1) {
            for (std::size_t a2 = a1 + 1; a2 < vir.size(); ++a2) {
              const int a = vir[a1], b = vir[a2];
              // Spin conservation.
              if ((p % 2) + (q % 2) != (a % 2) + (b % 2)) continue;
              const double val = so.anti_at(a, b, p, q);
              if (std::abs(val) < 1e-14) continue;
              // Apply a+_a a+_b a_q a_p with explicit phase tracking.
              std::uint64_t m2 = mask;
              int phase = fci_detail::parity_below(m2, p);
              m2 ^= std::uint64_t{1} << p;
              phase *= fci_detail::parity_below(m2, q);
              m2 ^= std::uint64_t{1} << q;
              phase *= fci_detail::parity_below(m2, b);
              m2 |= std::uint64_t{1} << b;
              phase *= fci_detail::parity_below(m2, a);
              m2 |= std::uint64_t{1} << a;
              y[lookup[m2]] += phase * val * x[di];
            }
          }
        }
      }
    }
    return y;
  };

  // Lanczos with full reorthogonalization.
  Rng rng(2024);
  std::vector<double> v(dim);
  for (double& val : v) val = rng.normal();
  double nv = 0;
  for (double val : v) nv += val * val;
  nv = std::sqrt(nv);
  for (double& val : v) val /= nv;

  std::vector<std::vector<double>> basis;
  std::vector<double> alpha, beta;
  FciResult res;
  res.dimension = dim;
  double prev = 1e300;
  for (int it = 0; it < max_iter; ++it) {
    basis.push_back(v);
    std::vector<double> w = matvec(v);
    double a = 0;
    for (std::size_t i = 0; i < dim; ++i) a += v[i] * w[i];
    alpha.push_back(a);
    // Full reorthogonalization, twice: one classical Gram-Schmidt pass
    // leaves O(eps * ||Hv||) residual overlaps that destroy the Rayleigh-
    // Ritz bound once the Krylov space nearly converges ("twice is
    // enough", Parlett).
    for (int pass = 0; pass < 2; ++pass) {
      for (const auto& u : basis) {
        double proj = 0;
        for (std::size_t i = 0; i < dim; ++i) proj += u[i] * w[i];
        for (std::size_t i = 0; i < dim; ++i) w[i] -= proj * u[i];
      }
    }
    double nb = 0;
    for (double val : w) nb += val * val;
    nb = std::sqrt(nb);
    // Smallest eigenvalue of the tridiagonal (reuse the bisection solver
    // pattern; local copy to avoid a sim/ dependency).
    const auto tridiag_min = [&]() {
      const std::size_t m = alpha.size();
      double lo = alpha[0], hi = alpha[0];
      for (std::size_t i = 0; i < m; ++i) {
        const double b1 = i > 0 ? std::abs(beta[i - 1]) : 0.0;
        const double b2 = i + 1 < m ? std::abs(beta[i]) : 0.0;
        lo = std::min(lo, alpha[i] - b1 - b2);
        hi = std::max(hi, alpha[i] + b1 + b2);
      }
      const auto count_below = [&](double xx) {
        int count = 0;
        double d = 1.0;
        for (std::size_t i = 0; i < m; ++i) {
          const double b2 = i > 0 ? beta[i - 1] * beta[i - 1] : 0.0;
          d = alpha[i] - xx - (d != 0.0 ? b2 / d : b2 / 1e-300);
          if (d < 0) ++count;
        }
        return count;
      };
      for (int k = 0; k < 200 && hi - lo > 1e-14 * std::max(1.0, std::abs(lo));
           ++k) {
        const double mid = 0.5 * (lo + hi);
        if (count_below(mid) >= 1)
          hi = mid;
        else
          lo = mid;
      }
      return 0.5 * (lo + hi);
    };
    const double energy = tridiag_min();
    res.energy = energy;
    res.iterations = it + 1;
    if (std::abs(energy - prev) < tol || nb < 1e-12) {
      res.converged = true;
      break;
    }
    prev = energy;
    beta.push_back(nb);
    for (std::size_t i = 0; i < dim; ++i) v[i] = w[i] / nb;
  }
  return res;
}

}  // namespace femto::chem
