// One- and two-electron Gaussian integrals via McMurchie-Davidson.
//
// Hermite expansion coefficients E_t^{ij} (per Cartesian dimension), Hermite
// Coulomb integrals R_{tuv} with the Boys function, and the standard
// assembly of overlap, kinetic, nuclear-attraction, and electron-repulsion
// integrals over contracted Cartesian Gaussians (s and p functions for
// STO-3G; the recurrences are general in angular momentum).
#pragma once

#include <cmath>
#include <vector>

#include "chem/basis.hpp"
#include "chem/linalg.hpp"

namespace femto::chem {

/// Boys function F_m(T) for m = 0..m_max, stable for all T >= 0.
[[nodiscard]] inline std::vector<double> boys(int m_max, double t) {
  std::vector<double> f(static_cast<std::size_t>(m_max) + 1, 0.0);
  if (t < 1e-14) {
    for (int m = 0; m <= m_max; ++m)
      f[static_cast<std::size_t>(m)] = 1.0 / (2 * m + 1);
    return f;
  }
  if (t > 35.0) {
    // F_0 = sqrt(pi/T)/2; upward recursion is stable at large T.
    f[0] = 0.5 * std::sqrt(M_PI / t);
    const double et = std::exp(-t);
    for (int m = 0; m < m_max; ++m)
      f[static_cast<std::size_t>(m) + 1] =
          ((2 * m + 1) * f[static_cast<std::size_t>(m)] - et) / (2 * t);
    return f;
  }
  // Series for the highest order, then downward recursion.
  double term = 1.0 / (2 * m_max + 1);
  double sum = term;
  for (int k = 1; k < 250; ++k) {
    term *= 2 * t / (2 * m_max + 2 * k + 1);
    sum += term;
    if (term < 1e-17 * sum) break;
  }
  const double et = std::exp(-t);
  f[static_cast<std::size_t>(m_max)] = et * sum;
  for (int m = m_max; m > 0; --m)
    f[static_cast<std::size_t>(m) - 1] =
        (2 * t * f[static_cast<std::size_t>(m)] + et) / (2 * m - 1);
  return f;
}

namespace mcmd {

/// 1D Hermite expansion table e(i, j, t) for exponents a, b and center
/// separation qx = Ax - Bx.
class HermiteE {
 public:
  HermiteE(int imax, int jmax, double qx, double a, double b)
      : imax_(imax), jmax_(jmax), data_(static_cast<std::size_t>(
            (imax + 1) * (jmax + 1) * (imax + jmax + 1))) {
    const double p = a + b;
    const double mu = a * b / p;
    at(0, 0, 0) = std::exp(-mu * qx * qx);
    for (int i = 0; i <= imax; ++i) {
      for (int j = 0; j <= jmax; ++j) {
        if (i == 0 && j == 0) continue;
        for (int t = 0; t <= i + j; ++t) {
          if (j == 0)
            at(i, j, t) = get(i - 1, j, t - 1) / (2 * p) -
                          (mu * qx / a) * get(i - 1, j, t) +
                          (t + 1) * get(i - 1, j, t + 1);
          else
            at(i, j, t) = get(i, j - 1, t - 1) / (2 * p) +
                          (mu * qx / b) * get(i, j - 1, t) +
                          (t + 1) * get(i, j - 1, t + 1);
        }
      }
    }
  }

  [[nodiscard]] double get(int i, int j, int t) const {
    if (i < 0 || j < 0 || t < 0 || t > i + j) return 0.0;
    return data_[index(i, j, t)];
  }

 private:
  [[nodiscard]] std::size_t index(int i, int j, int t) const {
    return (static_cast<std::size_t>(i) * (jmax_ + 1) +
            static_cast<std::size_t>(j)) *
               static_cast<std::size_t>(imax_ + jmax_ + 1) +
           static_cast<std::size_t>(t);
  }
  [[nodiscard]] double& at(int i, int j, int t) { return data_[index(i, j, t)]; }

  int imax_, jmax_;
  std::vector<double> data_;
};

/// Hermite Coulomb table R_{tuv} = R^0_{tuv}(p, pc) for t <= tmax etc.
class HermiteR {
 public:
  HermiteR(int tmax, int umax, int vmax, double p, const Vec3& pc)
      : tmax_(tmax), umax_(umax), vmax_(vmax) {
    const int n_max = tmax + umax + vmax;
    const std::vector<double> f = boys(n_max, p * pc.norm2());
    const std::size_t slab =
        static_cast<std::size_t>((tmax + 1) * (umax + 1) * (vmax + 1));
    std::vector<std::vector<double>> r(static_cast<std::size_t>(n_max) + 1,
                                       std::vector<double>(slab, 0.0));
    for (int n = 0; n <= n_max; ++n)
      r[static_cast<std::size_t>(n)][index(0, 0, 0)] =
          std::pow(-2.0 * p, n) * f[static_cast<std::size_t>(n)];
    const auto get = [&](int n, int t, int u, int v) -> double {
      if (t < 0 || u < 0 || v < 0) return 0.0;
      return r[static_cast<std::size_t>(n)][index(t, u, v)];
    };
    for (int total = 1; total <= n_max; ++total) {
      for (int t = 0; t <= std::min(total, tmax); ++t) {
        for (int u = 0; t + u <= total && u <= umax; ++u) {
          const int v = total - t - u;
          if (v < 0 || v > vmax) continue;
          for (int n = 0; n + total <= n_max; ++n) {
            double val;
            if (t > 0)
              val = (t - 1) * get(n + 1, t - 2, u, v) +
                    pc.x * get(n + 1, t - 1, u, v);
            else if (u > 0)
              val = (u - 1) * get(n + 1, t, u - 2, v) +
                    pc.y * get(n + 1, t, u - 1, v);
            else
              val = (v - 1) * get(n + 1, t, u, v - 2) +
                    pc.z * get(n + 1, t, u, v - 1);
            r[static_cast<std::size_t>(n)][index(t, u, v)] = val;
          }
        }
      }
    }
    data_ = std::move(r[0]);
  }

  [[nodiscard]] double get(int t, int u, int v) const {
    return data_[index(t, u, v)];
  }

 private:
  [[nodiscard]] std::size_t index(int t, int u, int v) const {
    return (static_cast<std::size_t>(t) * (umax_ + 1) +
            static_cast<std::size_t>(u)) *
               static_cast<std::size_t>(vmax_ + 1) +
           static_cast<std::size_t>(v);
  }

  int tmax_, umax_, vmax_;
  std::vector<double> data_;
};

/// Primitive overlap (a,lA,A | b,lB,B) with unit prefactors.
[[nodiscard]] inline double overlap_prim(double a, int la[3], const Vec3& ca,
                                         double b, int lb[3], const Vec3& cb) {
  const double p = a + b;
  const Vec3 q = ca - cb;
  const HermiteE ex(la[0], lb[0], q.x, a, b);
  const HermiteE ey(la[1], lb[1], q.y, a, b);
  const HermiteE ez(la[2], lb[2], q.z, a, b);
  return ex.get(la[0], lb[0], 0) * ey.get(la[1], lb[1], 0) *
         ez.get(la[2], lb[2], 0) * std::pow(M_PI / p, 1.5);
}

/// Primitive kinetic energy integral via the overlap-ladder formula.
[[nodiscard]] inline double kinetic_prim(double a, int la[3], const Vec3& ca,
                                         double b, int lb[3], const Vec3& cb) {
  const auto s_shift = [&](int dim, int delta) {
    int lb2[3] = {lb[0], lb[1], lb[2]};
    lb2[dim] += delta;
    if (lb2[dim] < 0) return 0.0;
    return overlap_prim(a, la, ca, b, lb2, cb);
  };
  double total = 0.0;
  for (int dim = 0; dim < 3; ++dim) {
    const int j = lb[dim];
    total += -0.5 * j * (j - 1) * s_shift(dim, -2) +
             b * (2 * j + 1) * s_shift(dim, 0) -
             2.0 * b * b * s_shift(dim, +2);
  }
  return total;
}

/// Primitive nuclear attraction -Z <a| 1/r_C |b> (the -Z factor is applied
/// by the caller; this returns <a| 1/r_C |b>).
[[nodiscard]] inline double nuclear_prim(double a, int la[3], const Vec3& ca,
                                         double b, int lb[3], const Vec3& cb,
                                         const Vec3& nucleus) {
  const double p = a + b;
  const Vec3 q = ca - cb;
  const Vec3 pcenter{(a * ca.x + b * cb.x) / p, (a * ca.y + b * cb.y) / p,
                     (a * ca.z + b * cb.z) / p};
  const Vec3 pc = pcenter - nucleus;
  const HermiteE ex(la[0], lb[0], q.x, a, b);
  const HermiteE ey(la[1], lb[1], q.y, a, b);
  const HermiteE ez(la[2], lb[2], q.z, a, b);
  const HermiteR r(la[0] + lb[0], la[1] + lb[1], la[2] + lb[2], p, pc);
  double sum = 0.0;
  for (int t = 0; t <= la[0] + lb[0]; ++t)
    for (int u = 0; u <= la[1] + lb[1]; ++u)
      for (int v = 0; v <= la[2] + lb[2]; ++v)
        sum += ex.get(la[0], lb[0], t) * ey.get(la[1], lb[1], u) *
               ez.get(la[2], lb[2], v) * r.get(t, u, v);
  return 2.0 * M_PI / p * sum;
}

/// Primitive ERI (ab|cd) in chemists' notation.
[[nodiscard]] inline double eri_prim(double a, int la[3], const Vec3& ca,
                                     double b, int lb[3], const Vec3& cb,
                                     double c, int lc[3], const Vec3& cc,
                                     double d, int ld[3], const Vec3& cd) {
  const double p = a + b;
  const double q = c + d;
  const double alpha = p * q / (p + q);
  const Vec3 pcenter{(a * ca.x + b * cb.x) / p, (a * ca.y + b * cb.y) / p,
                     (a * ca.z + b * cb.z) / p};
  const Vec3 qcenter{(c * cc.x + d * cd.x) / q, (c * cc.y + d * cd.y) / q,
                     (c * cc.z + d * cd.z) / q};
  const Vec3 qab = ca - cb;
  const Vec3 qcd = cc - cd;
  const HermiteE e1x(la[0], lb[0], qab.x, a, b);
  const HermiteE e1y(la[1], lb[1], qab.y, a, b);
  const HermiteE e1z(la[2], lb[2], qab.z, a, b);
  const HermiteE e2x(lc[0], ld[0], qcd.x, c, d);
  const HermiteE e2y(lc[1], ld[1], qcd.y, c, d);
  const HermiteE e2z(lc[2], ld[2], qcd.z, c, d);
  const HermiteR r(la[0] + lb[0] + lc[0] + ld[0], la[1] + lb[1] + lc[1] + ld[1],
                   la[2] + lb[2] + lc[2] + ld[2], alpha, pcenter - qcenter);
  double sum = 0.0;
  for (int t = 0; t <= la[0] + lb[0]; ++t) {
    for (int u = 0; u <= la[1] + lb[1]; ++u) {
      for (int v = 0; v <= la[2] + lb[2]; ++v) {
        const double e1 = e1x.get(la[0], lb[0], t) * e1y.get(la[1], lb[1], u) *
                          e1z.get(la[2], lb[2], v);
        if (e1 == 0.0) continue;
        for (int tt = 0; tt <= lc[0] + ld[0]; ++tt) {
          for (int uu = 0; uu <= lc[1] + ld[1]; ++uu) {
            for (int vv = 0; vv <= lc[2] + ld[2]; ++vv) {
              const double e2 = e2x.get(lc[0], ld[0], tt) *
                                e2y.get(lc[1], ld[1], uu) *
                                e2z.get(lc[2], ld[2], vv);
              if (e2 == 0.0) continue;
              const double sign = ((tt + uu + vv) % 2 == 0) ? 1.0 : -1.0;
              sum += e1 * e2 * sign * r.get(t + tt, u + uu, v + vv);
            }
          }
        }
      }
    }
  }
  return 2.0 * std::pow(M_PI, 2.5) / (p * q * std::sqrt(p + q)) * sum;
}

}  // namespace mcmd

/// Contracted-integral tables over an AO basis.
struct IntegralTables {
  DMatrix overlap;
  DMatrix kinetic;
  DMatrix nuclear;            // attraction (includes the -Z factors)
  std::vector<double> eri;    // chemists' (ij|kl), flat n^4
  std::size_t n = 0;

  [[nodiscard]] double eri_at(std::size_t i, std::size_t j, std::size_t k,
                              std::size_t l) const {
    return eri[((i * n + j) * n + k) * n + l];
  }
  [[nodiscard]] double& eri_at(std::size_t i, std::size_t j, std::size_t k,
                               std::size_t l) {
    return eri[((i * n + j) * n + k) * n + l];
  }
};

/// Computes all contracted integrals for a molecule/basis pair.
[[nodiscard]] inline IntegralTables compute_integrals(
    const Molecule& mol, const std::vector<BasisFunction>& basis) {
  const std::size_t n = basis.size();
  IntegralTables tables;
  tables.n = n;
  tables.overlap = DMatrix(n, n);
  tables.kinetic = DMatrix(n, n);
  tables.nuclear = DMatrix(n, n);
  tables.eri.assign(n * n * n * n, 0.0);

  const auto lmom = [](const BasisFunction& f, int out[3]) {
    out[0] = f.lx;
    out[1] = f.ly;
    out[2] = f.lz;
  };

  // One-electron integrals.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const BasisFunction& fi = basis[i];
      const BasisFunction& fj = basis[j];
      int li[3], lj[3];
      lmom(fi, li);
      lmom(fj, lj);
      double s = 0, t = 0, v = 0;
      for (std::size_t pi = 0; pi < fi.exponents.size(); ++pi) {
        for (std::size_t pj = 0; pj < fj.exponents.size(); ++pj) {
          const double cc = fi.coefficients[pi] * fj.coefficients[pj];
          const double a = fi.exponents[pi];
          const double b = fj.exponents[pj];
          s += cc * mcmd::overlap_prim(a, li, fi.center, b, lj, fj.center);
          t += cc * mcmd::kinetic_prim(a, li, fi.center, b, lj, fj.center);
          for (const Atom& atom : mol.atoms)
            v -= atom.charge * cc *
                 mcmd::nuclear_prim(a, li, fi.center, b, lj, fj.center,
                                    atom.position);
        }
      }
      tables.overlap(i, j) = tables.overlap(j, i) = s;
      tables.kinetic(i, j) = tables.kinetic(j, i) = t;
      tables.nuclear(i, j) = tables.nuclear(j, i) = v;
    }
  }

  // Two-electron integrals with 8-fold permutational symmetry.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      for (std::size_t k = 0; k <= i; ++k) {
        for (std::size_t l = 0; l <= (k == i ? j : k); ++l) {
          const BasisFunction& fi = basis[i];
          const BasisFunction& fj = basis[j];
          const BasisFunction& fk = basis[k];
          const BasisFunction& fl = basis[l];
          int li[3], lj[3], lk[3], ll[3];
          lmom(fi, li);
          lmom(fj, lj);
          lmom(fk, lk);
          lmom(fl, ll);
          double value = 0;
          for (std::size_t pi = 0; pi < fi.exponents.size(); ++pi)
            for (std::size_t pj = 0; pj < fj.exponents.size(); ++pj)
              for (std::size_t pk = 0; pk < fk.exponents.size(); ++pk)
                for (std::size_t pl = 0; pl < fl.exponents.size(); ++pl)
                  value += fi.coefficients[pi] * fj.coefficients[pj] *
                           fk.coefficients[pk] * fl.coefficients[pl] *
                           mcmd::eri_prim(fi.exponents[pi], li, fi.center,
                                          fj.exponents[pj], lj, fj.center,
                                          fk.exponents[pk], lk, fk.center,
                                          fl.exponents[pl], ll, fl.center);
          // Scatter to all 8 permutations.
          const std::size_t idx[8][4] = {
              {i, j, k, l}, {j, i, k, l}, {i, j, l, k}, {j, i, l, k},
              {k, l, i, j}, {l, k, i, j}, {k, l, j, i}, {l, k, j, i}};
          for (const auto& p : idx)
            tables.eri_at(p[0], p[1], p[2], p[3]) = value;
        }
      }
    }
  }
  return tables;
}

/// Renormalizes contracted functions so that <f|f> = 1 (EMSL coefficients
/// are close to normalized; this removes the residual).
inline void normalize_basis(std::vector<BasisFunction>& basis) {
  for (BasisFunction& f : basis) {
    int l[3] = {f.lx, f.ly, f.lz};
    double s = 0;
    for (std::size_t p = 0; p < f.exponents.size(); ++p)
      for (std::size_t q = 0; q < f.exponents.size(); ++q)
        s += f.coefficients[p] * f.coefficients[q] *
             mcmd::overlap_prim(f.exponents[p], l, f.center, f.exponents[q], l,
                                f.center);
    FEMTO_EXPECTS(s > 0);
    const double scale = 1.0 / std::sqrt(s);
    for (double& c : f.coefficients) c *= scale;
  }
}

}  // namespace femto::chem
