// AO -> MO integral transformation, spin-orbital integrals, MP2, and the
// second-quantized molecular Hamiltonian.
//
// Spin-orbital convention (shared with fermion/excitation.hpp): interleaved
// spins, spin orbital 2P = spatial P alpha, 2P+1 = spatial P beta.
#pragma once

#include <vector>

#include "chem/integrals.hpp"
#include "chem/scf.hpp"
#include "fermion/operators.hpp"

namespace femto::chem {

/// MO-basis integrals: h_pq (core) and chemists' (pq|rs), all spatial.
struct MoIntegrals {
  std::size_t n = 0;            // spatial orbitals
  std::size_t nocc = 0;         // doubly occupied
  DMatrix h;                    // n x n core Hamiltonian in MO basis
  std::vector<double> eri;      // (pq|rs) flat n^4
  std::vector<double> orbital_energies;
  double nuclear_repulsion = 0;

  [[nodiscard]] double eri_at(std::size_t p, std::size_t q, std::size_t r,
                              std::size_t s) const {
    return eri[((p * n + q) * n + r) * n + s];
  }
  [[nodiscard]] double& eri_at(std::size_t p, std::size_t q, std::size_t r,
                               std::size_t s) {
    return eri[((p * n + q) * n + r) * n + s];
  }
};

/// Staged O(n^5) AO->MO transformation.
[[nodiscard]] inline MoIntegrals transform_to_mo(const Molecule& mol,
                                                 const IntegralTables& ints,
                                                 const ScfResult& scf) {
  const std::size_t n = ints.n;
  MoIntegrals mo;
  mo.n = n;
  mo.nocc = scf.num_occupied;
  mo.orbital_energies = scf.orbital_energies;
  mo.nuclear_repulsion = mol.nuclear_repulsion();
  const DMatrix& c = scf.coefficients;

  const DMatrix hcore = ints.kinetic + ints.nuclear;
  mo.h = c.transpose() * hcore * c;

  // (pq|rs) = sum C_mu p C_nu q C_la r C_si s (mu nu | la si), one index at
  // a time.
  std::vector<double> t1(n * n * n * n, 0.0), t2(n * n * n * n, 0.0);
  const auto at = [n](std::vector<double>& v, std::size_t a, std::size_t b,
                      std::size_t cc, std::size_t d) -> double& {
    return v[((a * n + b) * n + cc) * n + d];
  };
  // index 1
  for (std::size_t p = 0; p < n; ++p)
    for (std::size_t nu = 0; nu < n; ++nu)
      for (std::size_t la = 0; la < n; ++la)
        for (std::size_t si = 0; si < n; ++si) {
          double acc = 0;
          for (std::size_t mu = 0; mu < n; ++mu)
            acc += c(mu, p) * ints.eri_at(mu, nu, la, si);
          at(t1, p, nu, la, si) = acc;
        }
  // index 2
  for (std::size_t p = 0; p < n; ++p)
    for (std::size_t q = 0; q < n; ++q)
      for (std::size_t la = 0; la < n; ++la)
        for (std::size_t si = 0; si < n; ++si) {
          double acc = 0;
          for (std::size_t nu = 0; nu < n; ++nu)
            acc += c(nu, q) * at(t1, p, nu, la, si);
          at(t2, p, q, la, si) = acc;
        }
  // index 3
  std::fill(t1.begin(), t1.end(), 0.0);
  for (std::size_t p = 0; p < n; ++p)
    for (std::size_t q = 0; q < n; ++q)
      for (std::size_t r = 0; r < n; ++r)
        for (std::size_t si = 0; si < n; ++si) {
          double acc = 0;
          for (std::size_t la = 0; la < n; ++la)
            acc += c(la, r) * at(t2, p, q, la, si);
          at(t1, p, q, r, si) = acc;
        }
  // index 4
  mo.eri.assign(n * n * n * n, 0.0);
  for (std::size_t p = 0; p < n; ++p)
    for (std::size_t q = 0; q < n; ++q)
      for (std::size_t r = 0; r < n; ++r)
        for (std::size_t s = 0; s < n; ++s) {
          double acc = 0;
          for (std::size_t si = 0; si < n; ++si)
            acc += c(si, s) * at(t1, p, q, r, si);
          mo.eri_at(p, q, r, s) = acc;
        }
  return mo;
}

/// MP2 correlation energy (closed shell, spatial-orbital formula).
[[nodiscard]] inline double mp2_energy(const MoIntegrals& mo) {
  double e = 0;
  for (std::size_t i = 0; i < mo.nocc; ++i)
    for (std::size_t j = 0; j < mo.nocc; ++j)
      for (std::size_t a = mo.nocc; a < mo.n; ++a)
        for (std::size_t b = mo.nocc; b < mo.n; ++b) {
          const double iajb = mo.eri_at(i, a, j, b);
          const double ibja = mo.eri_at(i, b, j, a);
          const double denom = mo.orbital_energies[i] + mo.orbital_energies[j] -
                               mo.orbital_energies[a] - mo.orbital_energies[b];
          e += iajb * (2.0 * iajb - ibja) / denom;
        }
  return e;
}

/// Spin-orbital view: h_pq and antisymmetrized <pq||rs> with interleaved
/// spins. Index s = 2*spatial + (0 alpha | 1 beta).
struct SpinOrbitalIntegrals {
  std::size_t n = 0;     // spin orbitals = 2 * spatial
  std::size_t nelec = 0;
  std::vector<double> h;      // n^2
  std::vector<double> anti;   // <pq||rs>, physicists', antisymmetrized, n^4
  double nuclear_repulsion = 0;
  std::vector<double> orbital_energies;  // per spin orbital

  [[nodiscard]] double h_at(std::size_t p, std::size_t q) const {
    return h[p * n + q];
  }
  [[nodiscard]] double anti_at(std::size_t p, std::size_t q, std::size_t r,
                               std::size_t s) const {
    return anti[((p * n + q) * n + r) * n + s];
  }
};

[[nodiscard]] inline SpinOrbitalIntegrals to_spin_orbitals(
    const MoIntegrals& mo) {
  SpinOrbitalIntegrals so;
  so.n = 2 * mo.n;
  so.nelec = 2 * mo.nocc;
  so.nuclear_repulsion = mo.nuclear_repulsion;
  so.h.assign(so.n * so.n, 0.0);
  so.anti.assign(so.n * so.n * so.n * so.n, 0.0);
  so.orbital_energies.resize(so.n);
  const auto spatial = [](std::size_t x) { return x / 2; };
  const auto spin = [](std::size_t x) { return x % 2; };
  for (std::size_t p = 0; p < so.n; ++p) {
    so.orbital_energies[p] = mo.orbital_energies[spatial(p)];
    for (std::size_t q = 0; q < so.n; ++q)
      if (spin(p) == spin(q))
        so.h[p * so.n + q] = mo.h(spatial(p), spatial(q));
  }
  // <pq|rs> = (pr|qs) delta(sp,sr) delta(sq,ss);  <pq||rs> = <pq|rs>-<pq|sr>
  for (std::size_t p = 0; p < so.n; ++p)
    for (std::size_t q = 0; q < so.n; ++q)
      for (std::size_t r = 0; r < so.n; ++r)
        for (std::size_t s = 0; s < so.n; ++s) {
          double direct = 0, exchange = 0;
          if (spin(p) == spin(r) && spin(q) == spin(s))
            direct = mo.eri_at(spatial(p), spatial(r), spatial(q), spatial(s));
          if (spin(p) == spin(s) && spin(q) == spin(r))
            exchange = mo.eri_at(spatial(p), spatial(s), spatial(q), spatial(r));
          so.anti[((p * so.n + q) * so.n + r) * so.n + s] = direct - exchange;
        }
  return so;
}

/// Second-quantized Hamiltonian:
/// H = E_nuc + sum h_pq a+_p a_q + 1/4 sum <pq||rs> a+_p a+_q a_s a_r.
[[nodiscard]] inline fermion::FermionOperator build_hamiltonian(
    const SpinOrbitalIntegrals& so, double coeff_cutoff = 1e-12) {
  fermion::FermionOperator h =
      fermion::FermionOperator::identity({so.nuclear_repulsion, 0.0});
  for (std::size_t p = 0; p < so.n; ++p)
    for (std::size_t q = 0; q < so.n; ++q) {
      const double v = so.h_at(p, q);
      if (std::abs(v) > coeff_cutoff)
        h.add_term({v, 0.0}, {{p, true}, {q, false}});
    }
  for (std::size_t p = 0; p < so.n; ++p)
    for (std::size_t q = 0; q < so.n; ++q)
      for (std::size_t r = 0; r < so.n; ++r)
        for (std::size_t s = 0; s < so.n; ++s) {
          const double v = 0.25 * so.anti_at(p, q, r, s);
          if (std::abs(v) > coeff_cutoff)
            h.add_term({v, 0.0},
                       {{p, true}, {q, true}, {s, false}, {r, false}});
        }
  return h;
}

}  // namespace femto::chem
