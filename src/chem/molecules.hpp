// Ground-state geometries for the molecules of Table I / Fig. 5.
//
// Standard experimental equilibrium structures (CCCBDB); coordinates in
// Bohr (1 Angstrom = 1.8897259886 Bohr). The paper's evaluation uses
// "STO-3G basis set and ground state geometry" per [9].
#pragma once

#include <cmath>

#include "chem/basis.hpp"

namespace femto::chem {

inline constexpr double kBohrPerAngstrom = 1.8897259886;

[[nodiscard]] inline Molecule make_h2(double bond_bohr = 1.4) {
  Molecule m;
  m.name = "H2";
  m.atoms = {{1, {0, 0, 0}}, {1, {0, 0, bond_bohr}}};
  return m;
}

[[nodiscard]] inline Molecule make_lih(double bond_angstrom = 1.5949) {
  Molecule m;
  m.name = "LiH";
  m.atoms = {{3, {0, 0, 0}}, {1, {0, 0, bond_angstrom * kBohrPerAngstrom}}};
  return m;
}

[[nodiscard]] inline Molecule make_hf(double bond_angstrom = 0.9168) {
  Molecule m;
  m.name = "HF";
  m.atoms = {{9, {0, 0, 0}}, {1, {0, 0, bond_angstrom * kBohrPerAngstrom}}};
  return m;
}

[[nodiscard]] inline Molecule make_beh2(double bond_angstrom = 1.3264) {
  Molecule m;
  m.name = "BeH2";
  const double r = bond_angstrom * kBohrPerAngstrom;
  m.atoms = {{4, {0, 0, 0}}, {1, {0, 0, r}}, {1, {0, 0, -r}}};
  return m;
}

[[nodiscard]] inline Molecule make_h2o(double bond_angstrom = 0.9584,
                                       double angle_deg = 104.45) {
  Molecule m;
  m.name = "H2O";
  const double r = bond_angstrom * kBohrPerAngstrom;
  const double half = angle_deg * M_PI / 180.0 / 2.0;
  m.atoms = {{8, {0, 0, 0}},
             {1, {r * std::sin(half), 0, r * std::cos(half)}},
             {1, {-r * std::sin(half), 0, r * std::cos(half)}}};
  return m;
}

[[nodiscard]] inline Molecule make_nh3(double bond_angstrom = 1.0116,
                                       double hnh_deg = 106.7) {
  Molecule m;
  m.name = "NH3";
  const double r = bond_angstrom * kBohrPerAngstrom;
  // C3v pyramid: place H atoms on a circle; derive the polar angle theta
  // from the H-N-H angle: cos(HNH) = cos^2(theta)... solved via the planar
  // projection: with N at origin and the three H at polar angle theta,
  // cos(HNH) = 1 - 1.5 sin^2(theta).
  const double cos_hnh = std::cos(hnh_deg * M_PI / 180.0);
  const double sin2 = (1.0 - cos_hnh) / 1.5;
  const double theta = std::asin(std::sqrt(sin2));
  const double rho = r * std::sin(theta);
  const double z = r * std::cos(theta);
  m.atoms = {{7, {0, 0, 0}},
             {1, {rho, 0, z}},
             {1, {-rho / 2, rho * std::sqrt(3.0) / 2, z}},
             {1, {-rho / 2, -rho * std::sqrt(3.0) / 2, z}}};
  return m;
}

}  // namespace femto::chem
