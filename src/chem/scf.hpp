// Restricted Hartree-Fock with DIIS acceleration.
//
// Standard Roothaan SCF: symmetric orthogonalization X = S^{-1/2}, core
// guess, closed-shell Fock builds from the full in-memory ERI tensor, and
// Pulay DIIS on the FDS-SDF error. Molecule sizes here (<= 8 AOs) keep
// everything dense and simple.
#pragma once

#include <deque>

#include "chem/integrals.hpp"
#include "chem/linalg.hpp"

namespace femto::chem {

struct ScfResult {
  bool converged = false;
  int iterations = 0;
  double electronic_energy = 0.0;
  double total_energy = 0.0;       // electronic + nuclear repulsion
  std::vector<double> orbital_energies;
  DMatrix coefficients;            // AO x MO
  DMatrix density;                 // D = C_occ C_occ^T (no factor 2)
  std::size_t num_orbitals = 0;
  std::size_t num_occupied = 0;    // doubly occupied spatial orbitals
};

struct ScfOptions {
  int max_iterations = 200;
  double energy_tolerance = 1e-10;
  double density_tolerance = 1e-8;
  int diis_depth = 8;
};

[[nodiscard]] inline ScfResult run_rhf(const Molecule& mol,
                                       const IntegralTables& ints,
                                       const ScfOptions& options = {}) {
  const std::size_t n = ints.n;
  FEMTO_EXPECTS(mol.num_electrons() % 2 == 0 && "RHF needs a closed shell");
  const std::size_t nocc = static_cast<std::size_t>(mol.num_electrons()) / 2;
  FEMTO_EXPECTS(nocc <= n);

  const DMatrix hcore = ints.kinetic + ints.nuclear;
  const DMatrix x = inverse_sqrt_symmetric(ints.overlap);

  const auto build_fock = [&](const DMatrix& d) {
    DMatrix f = hcore;
    for (std::size_t mu = 0; mu < n; ++mu)
      for (std::size_t nu = 0; nu < n; ++nu) {
        double g = 0;
        for (std::size_t la = 0; la < n; ++la)
          for (std::size_t si = 0; si < n; ++si)
            g += d(la, si) * (2.0 * ints.eri_at(mu, nu, si, la) -
                              ints.eri_at(mu, la, si, nu));
        f(mu, nu) += g;
      }
    return f;
  };

  const auto density_from_fock = [&](const DMatrix& f, DMatrix& c_out,
                                     std::vector<double>& eps_out) {
    const DMatrix fprime = x.transpose() * f * x;
    const EigenResult eig = jacobi_eigensymmetric(fprime);
    c_out = x * eig.vectors;
    eps_out = eig.values;
    DMatrix d(n, n);
    for (std::size_t mu = 0; mu < n; ++mu)
      for (std::size_t nu = 0; nu < n; ++nu) {
        double v = 0;
        for (std::size_t o = 0; o < nocc; ++o) v += c_out(mu, o) * c_out(nu, o);
        d(mu, nu) = v;
      }
    return d;
  };

  ScfResult result;
  result.num_orbitals = n;
  result.num_occupied = nocc;
  DMatrix c;
  std::vector<double> eps;
  DMatrix d = density_from_fock(hcore, c, eps);

  std::deque<DMatrix> diis_focks, diis_errors;
  double prev_energy = 0;
  for (int it = 0; it < options.max_iterations; ++it) {
    DMatrix f = build_fock(d);
    // DIIS: error = FDS - SDF in the orthonormal basis.
    const DMatrix fds = f * d * ints.overlap;
    const DMatrix err = x.transpose() * (fds - fds.transpose()) * x;
    diis_focks.push_back(f);
    diis_errors.push_back(err);
    if (diis_focks.size() > static_cast<std::size_t>(options.diis_depth)) {
      diis_focks.pop_front();
      diis_errors.pop_front();
    }
    if (diis_errors.size() >= 2) {
      // Solve the DIIS linear system by explicit Gaussian elimination.
      const std::size_t m = diis_errors.size();
      DMatrix b(m + 1, m + 1);
      std::vector<double> rhs(m + 1, 0.0);
      for (std::size_t a = 0; a < m; ++a) {
        for (std::size_t bb = 0; bb < m; ++bb) {
          double dot = 0;
          for (std::size_t r = 0; r < n; ++r)
            for (std::size_t cc = 0; cc < n; ++cc)
              dot += diis_errors[a](r, cc) * diis_errors[bb](r, cc);
          b(a, bb) = dot;
        }
        b(a, m) = b(m, a) = -1.0;
      }
      rhs[m] = -1.0;
      // Gaussian elimination with partial pivoting.
      std::vector<std::vector<double>> aug(
          m + 1, std::vector<double>(m + 2, 0.0));
      for (std::size_t r = 0; r <= m; ++r) {
        for (std::size_t cc = 0; cc <= m; ++cc) aug[r][cc] = b(r, cc);
        aug[r][m + 1] = rhs[r];
      }
      bool singular = false;
      for (std::size_t col = 0; col <= m; ++col) {
        std::size_t piv = col;
        for (std::size_t r = col + 1; r <= m; ++r)
          if (std::abs(aug[r][col]) > std::abs(aug[piv][col])) piv = r;
        if (std::abs(aug[piv][col]) < 1e-14) {
          singular = true;
          break;
        }
        std::swap(aug[col], aug[piv]);
        for (std::size_t r = 0; r <= m; ++r) {
          if (r == col) continue;
          const double factor = aug[r][col] / aug[col][col];
          for (std::size_t cc = col; cc <= m + 1; ++cc)
            aug[r][cc] -= factor * aug[col][cc];
        }
      }
      if (!singular) {
        DMatrix fmix(n, n);
        for (std::size_t a = 0; a < m; ++a) {
          const double w = aug[a][m + 1] / aug[a][a];
          fmix = fmix + w * diis_focks[a];
        }
        f = fmix;
      }
    }

    const DMatrix d_new = density_from_fock(f, c, eps);
    // E_elec = sum_{mu nu} D (Hcore + F) with this D convention.
    double energy = 0;
    const DMatrix hf = hcore + build_fock(d_new);
    for (std::size_t mu = 0; mu < n; ++mu)
      for (std::size_t nu = 0; nu < n; ++nu)
        energy += d_new(mu, nu) * hf(mu, nu);

    const double d_change = (d_new - d).max_abs();
    d = d_new;
    result.iterations = it + 1;
    if (std::abs(energy - prev_energy) < options.energy_tolerance &&
        d_change < options.density_tolerance) {
      result.converged = true;
      result.electronic_energy = energy;
      break;
    }
    prev_energy = energy;
    result.electronic_energy = energy;
  }
  result.total_energy = result.electronic_energy + mol.nuclear_repulsion();
  result.coefficients = c;
  result.density = d;
  result.orbital_energies = eps;
  return result;
}

}  // namespace femto::chem
