// Square matrices over GF(2) and the operations the paper's transforms need:
// rank / invertibility, inverse, transpose, products, row operations, random
// invertible sampling, and block-diagonal assembly (Sec. III-C of the paper).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "gf2/bitvec.hpp"

namespace femto::gf2 {

/// Dense square matrix over GF(2), stored row-major as BitVec rows.
class Matrix {
 public:
  Matrix() = default;
  explicit Matrix(std::size_t n) : n_(n), rows_(n, BitVec(n)) {}

  [[nodiscard]] static Matrix identity(std::size_t n) {
    Matrix m(n);
    for (std::size_t i = 0; i < n; ++i) m.rows_[i].set(i, true);
    return m;
  }

  /// Builds from rows given as '0'/'1' strings.
  [[nodiscard]] static Matrix from_rows(const std::vector<std::string>& rows) {
    Matrix m(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      FEMTO_EXPECTS(rows[i].size() == rows.size());
      m.rows_[i] = BitVec::from_string(rows[i]);
    }
    return m;
  }

  [[nodiscard]] std::size_t size() const { return n_; }

  [[nodiscard]] bool get(std::size_t r, std::size_t c) const {
    return rows_[r].get(c);
  }
  void set(std::size_t r, std::size_t c, bool v) { rows_[r].set(c, v); }

  [[nodiscard]] const BitVec& row(std::size_t r) const { return rows_[r]; }

  /// Row operation row[dst] ^= row[src] (an elementary GL(n,2) generator).
  /// Word-parallel via BitVec::operator^= (SIMD-dispatched, wordops.hpp) --
  /// this is the Gamma-move primitive the SA loop issues per candidate.
  void add_row(std::size_t src, std::size_t dst) {
    FEMTO_EXPECTS(src != dst);
    rows_[dst] ^= rows_[src];
  }

  void swap_rows(std::size_t a, std::size_t b) { std::swap(rows_[a], rows_[b]); }

  [[nodiscard]] bool operator==(const Matrix& other) const {
    return n_ == other.n_ && rows_ == other.rows_;
  }

  /// Matrix-vector product over GF(2).
  [[nodiscard]] BitVec apply(const BitVec& x) const {
    FEMTO_EXPECTS(x.size() == n_);
    BitVec y(n_);
    for (std::size_t r = 0; r < n_; ++r)
      if (rows_[r].dot(x)) y.set(r, true);
    return y;
  }

  /// Matrix product over GF(2).
  [[nodiscard]] Matrix multiply(const Matrix& rhs) const {
    FEMTO_EXPECTS(n_ == rhs.n_);
    const Matrix rt = rhs.transpose();
    Matrix out(n_);
    for (std::size_t r = 0; r < n_; ++r)
      for (std::size_t c = 0; c < n_; ++c)
        if (rows_[r].dot(rt.rows_[c])) out.set(r, c, true);
    return out;
  }

  [[nodiscard]] Matrix transpose() const {
    Matrix out(n_);
    for (std::size_t r = 0; r < n_; ++r)
      for (std::size_t c = 0; c < n_; ++c)
        if (rows_[r].get_u(c)) out.rows_[c].set_u(r, true);
    return out;
  }

  [[nodiscard]] std::size_t rank() const {
    Matrix work = *this;
    std::size_t rank = 0;
    for (std::size_t col = 0; col < n_ && rank < n_; ++col) {
      std::size_t pivot = rank;
      while (pivot < n_ && !work.get(pivot, col)) ++pivot;
      if (pivot == n_) continue;
      work.swap_rows(rank, pivot);
      for (std::size_t r = 0; r < n_; ++r)
        if (r != rank && work.get(r, col)) work.add_row(rank, r);
      ++rank;
    }
    return rank;
  }

  [[nodiscard]] bool invertible() const { return rank() == n_; }

  /// Gauss-Jordan inverse; nullopt when singular.
  [[nodiscard]] std::optional<Matrix> inverse() const {
    Matrix work = *this;
    Matrix inv = identity(n_);
    for (std::size_t col = 0; col < n_; ++col) {
      std::size_t pivot = col;
      while (pivot < n_ && !work.get(pivot, col)) ++pivot;
      if (pivot == n_) return std::nullopt;
      work.swap_rows(col, pivot);
      inv.swap_rows(col, pivot);
      for (std::size_t r = 0; r < n_; ++r) {
        if (r != col && work.get(r, col)) {
          work.add_row(col, r);
          inv.add_row(col, r);
        }
      }
    }
    return inv;
  }

  /// Uniform-ish random invertible matrix: random bits, retry until full rank.
  [[nodiscard]] static Matrix random_invertible(std::size_t n, Rng& rng) {
    FEMTO_EXPECTS(n > 0);
    // The fraction of invertible matrices over GF(2) tends to ~0.2888, so a
    // retry loop terminates quickly with overwhelming probability.
    for (;;) {
      Matrix m(n);
      for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c) m.set(r, c, rng.bernoulli(0.5));
      if (m.invertible()) return m;
    }
  }

  /// Random invertible upper-triangular matrix (unit diagonal), the baseline
  /// search space of [9].
  [[nodiscard]] static Matrix random_upper_triangular(std::size_t n, Rng& rng) {
    Matrix m = identity(n);
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = r + 1; c < n; ++c) m.set(r, c, rng.bernoulli(0.5));
    return m;
  }

  /// Permutation matrix P with P e_i = e_{perm[i]} (column i -> row perm[i]).
  [[nodiscard]] static Matrix permutation(const std::vector<std::size_t>& perm) {
    Matrix m(perm.size());
    for (std::size_t c = 0; c < perm.size(); ++c) {
      FEMTO_EXPECTS(perm[c] < perm.size());
      m.set(perm[c], c, true);
    }
    FEMTO_ENSURES(m.invertible());
    return m;
  }

  /// Assembles a block-diagonal matrix; `blocks[i]` occupies the index set
  /// `supports[i]` (strictly increasing indices). Unlisted indices get 1 on
  /// the diagonal. This realizes the reduced Gamma search space of Sec. III-C.
  [[nodiscard]] static Matrix block_diagonal(
      std::size_t n, const std::vector<std::vector<std::size_t>>& supports,
      const std::vector<Matrix>& blocks) {
    FEMTO_EXPECTS(supports.size() == blocks.size());
    Matrix m = identity(n);
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      const auto& sup = supports[b];
      FEMTO_EXPECTS(sup.size() == blocks[b].size());
      for (std::size_t i : sup) {
        FEMTO_EXPECTS(i < n);
        m.set(i, i, false);  // clear the identity diagonal inside the block
      }
      for (std::size_t r = 0; r < sup.size(); ++r)
        for (std::size_t c = 0; c < sup.size(); ++c)
          m.set(sup[r], sup[c], blocks[b].get(r, c));
    }
    return m;
  }

  [[nodiscard]] std::string to_string() const {
    std::string out;
    for (std::size_t r = 0; r < n_; ++r) {
      out += rows_[r].to_string();
      out += '\n';
    }
    return out;
  }

 private:
  std::size_t n_ = 0;
  std::vector<BitVec> rows_;
};

}  // namespace femto::gf2
