// Dynamic bit vector over GF(2).
//
// Used as the row type of GF2Matrix and as the symplectic x/z components of
// Pauli strings. Sized at runtime (molecular problems range from 4 to ~20
// qubits but the container supports arbitrary n).
//
// TAIL INVARIANT: bits at positions >= size() in the final storage word are
// ALWAYS zero. Construction zero-fills; the per-bit mutators only touch
// checked indices < size(); the word-parallel mutators (^=, |=, &=) combine
// two vectors of equal size, and 0 op 0 == 0 for all three operators, so the
// padding stays zero through every mutating op. The reduction kernels
// (popcount, parity, dot, the SIMD word ops in wordops.hpp, and hash_value)
// rely on this to read whole words with no tail masking. Property-tested in
// tests/test_gf2.cpp (TailPaddingInvariant).
//
// Hot-path accessors: get/set/flip validate their index with FEMTO_EXPECTS
// on every call, which is the right default for a library API but costs a
// compare+branch per *bit* inside compile inner loops (gamma_search move
// apply/undo, PauliString::letter). The *_u variants check only in Debug
// builds (FEMTO_DEBUG_EXPECTS) -- sanitizer CI still validates every index.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "gf2/wordops.hpp"

namespace femto::gf2 {

/// Fixed-length vector over GF(2), packed into 64-bit words.
class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(std::size_t n) : n_(n), words_((n + 63) / 64, 0) {}

  /// Builds from a string of '0'/'1' characters, index 0 first.
  [[nodiscard]] static BitVec from_string(const std::string& bits) {
    BitVec v(bits.size());
    for (std::size_t i = 0; i < bits.size(); ++i) {
      FEMTO_EXPECTS(bits[i] == '0' || bits[i] == '1');
      if (bits[i] == '1') v.set(i, true);
    }
    return v;
  }

  [[nodiscard]] std::size_t size() const { return n_; }

  [[nodiscard]] bool get(std::size_t i) const {
    FEMTO_EXPECTS(i < n_);
    return (words_[i / 64] >> (i % 64)) & 1ULL;
  }

  void set(std::size_t i, bool value) {
    FEMTO_EXPECTS(i < n_);
    const std::uint64_t mask = 1ULL << (i % 64);
    if (value)
      words_[i / 64] |= mask;
    else
      words_[i / 64] &= ~mask;
  }

  void flip(std::size_t i) {
    FEMTO_EXPECTS(i < n_);
    words_[i / 64] ^= 1ULL << (i % 64);
  }

  /// Unchecked accessors (Debug-only index validation): for inner loops
  /// whose indices are already bounded by construction. Same semantics as
  /// get/set/flip.
  [[nodiscard]] bool get_u(std::size_t i) const {
    FEMTO_DEBUG_EXPECTS(i < n_);
    return (words_[i / 64] >> (i % 64)) & 1ULL;
  }

  void set_u(std::size_t i, bool value) {
    FEMTO_DEBUG_EXPECTS(i < n_);
    const std::uint64_t mask = 1ULL << (i % 64);
    if (value)
      words_[i / 64] |= mask;
    else
      words_[i / 64] &= ~mask;
  }

  void flip_u(std::size_t i) {
    FEMTO_DEBUG_EXPECTS(i < n_);
    words_[i / 64] ^= 1ULL << (i % 64);
  }

  /// In-place XOR (vector addition over GF(2)).
  BitVec& operator^=(const BitVec& other) {
    FEMTO_EXPECTS(n_ == other.n_);
    wordops::xor_inplace(words_.data(), other.words_.data(), words_.size());
    return *this;
  }

  [[nodiscard]] friend BitVec operator^(BitVec lhs, const BitVec& rhs) {
    lhs ^= rhs;
    return lhs;
  }

  /// In-place OR.
  BitVec& operator|=(const BitVec& other) {
    FEMTO_EXPECTS(n_ == other.n_);
    wordops::or_inplace(words_.data(), other.words_.data(), words_.size());
    return *this;
  }

  [[nodiscard]] friend BitVec operator|(BitVec lhs, const BitVec& rhs) {
    lhs |= rhs;
    return lhs;
  }

  /// In-place AND.
  BitVec& operator&=(const BitVec& other) {
    FEMTO_EXPECTS(n_ == other.n_);
    wordops::and_inplace(words_.data(), other.words_.data(), words_.size());
    return *this;
  }

  [[nodiscard]] friend BitVec operator&(BitVec lhs, const BitVec& rhs) {
    lhs &= rhs;
    return lhs;
  }

  [[nodiscard]] bool operator==(const BitVec& other) const {
    return n_ == other.n_ && words_ == other.words_;
  }

  /// Number of set bits.
  [[nodiscard]] std::size_t popcount() const {
    return wordops::popcount(words_.data(), words_.size());
  }

  /// XOR of all bits (== popcount() & 1).
  [[nodiscard]] bool parity() const {
    return wordops::parity(words_.data(), words_.size());
  }

  [[nodiscard]] bool any() const {
    for (std::uint64_t w : words_)
      if (w != 0) return true;
    return false;
  }

  /// Parity of the inner product <this, other> over GF(2).
  [[nodiscard]] bool dot(const BitVec& other) const {
    FEMTO_EXPECTS(n_ == other.n_);
    return wordops::and_parity(words_.data(), other.words_.data(),
                               words_.size());
  }

  /// Index of the lowest set bit; n (size) when empty.
  [[nodiscard]] std::size_t lowest_set() const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      if (words_[w] != 0)
        return w * 64 + static_cast<std::size_t>(__builtin_ctzll(words_[w]));
    }
    return n_;
  }

  [[nodiscard]] std::string to_string() const {
    std::string out(n_, '0');
    for (std::size_t i = 0; i < n_; ++i)
      if (get(i)) out[i] = '1';
    return out;
  }

  /// Word storage, exposed for hashing.
  [[nodiscard]] const std::vector<std::uint64_t>& words() const { return words_; }

  /// Raw word span (tail invariant applies: bits >= size() are zero). The
  /// unchecked entry point for wordops.hpp kernels.
  [[nodiscard]] const std::uint64_t* word_data() const { return words_.data(); }
  [[nodiscard]] std::uint64_t* word_data() { return words_.data(); }
  [[nodiscard]] std::size_t word_count() const { return words_.size(); }

  /// The whole vector as one packed word. Only valid for size() <= 64; used
  /// by the statevector kernels to turn Pauli x/z components into O(1)
  /// per-index bit masks.
  [[nodiscard]] std::uint64_t mask64() const {
    FEMTO_EXPECTS(n_ <= 64);
    return words_.empty() ? 0 : words_[0];
  }

 private:
  std::size_t n_ = 0;
  std::vector<std::uint64_t> words_;
};

/// FNV-1a style hash over the packed words; used in hash maps of Pauli strings.
[[nodiscard]] inline std::size_t hash_value(const BitVec& v) {
  std::size_t h = 1469598103934665603ULL;
  for (std::uint64_t w : v.words()) {
    h ^= static_cast<std::size_t>(w);
    h *= 1099511628211ULL;
  }
  return h ^ v.size();
}

}  // namespace femto::gf2
