// Synthesis of linear-reversible circuits (CNOT networks) from GF(2)
// matrices, following Patel, Markov, Hayes, "Optimal synthesis of linear
// reversible circuits", QIC 8(3), 2008 -- reference [26] of the paper.
//
// A CNOT with control c and target t maps a basis state x to x' with
// x'_t = x_t xor x_c, i.e. the elementary matrix I + e_t e_c^T. synthesize()
// returns a gate list whose in-order application realizes |x> -> |Mx>.
#pragma once

#include <cstddef>
#include <vector>

#include "gf2/matrix.hpp"

namespace femto::gf2 {

/// One CNOT of a linear-reversible network.
struct CnotGate {
  std::size_t control = 0;
  std::size_t target = 0;
  [[nodiscard]] bool operator==(const CnotGate&) const = default;
};

namespace detail {

/// Eliminates everything below the diagonal, section by section (PMH pass).
/// Collected ops are matrix row-additions (row `src` added into row `dst`),
/// in the order they were applied to `work`.
inline std::vector<CnotGate> lower_synth(Matrix& work, std::size_t section) {
  const std::size_t n = work.size();
  std::vector<CnotGate> ops;
  for (std::size_t s0 = 0; s0 < n; s0 += section) {
    const std::size_t s1 = std::min(s0 + section, n);
    // Remove duplicate sub-rows inside the section (the PMH trick that gives
    // the O(n^2 / log n) bound).
    for (std::size_t r = s0; r < n; ++r) {
      std::uint64_t pattern = 0;
      for (std::size_t c = s0; c < s1; ++c)
        pattern |= static_cast<std::uint64_t>(work.get(r, c)) << (c - s0);
      if (pattern == 0) continue;
      for (std::size_t r0 = s0; r0 < r; ++r0) {
        std::uint64_t p0 = 0;
        for (std::size_t c = s0; c < s1; ++c)
          p0 |= static_cast<std::uint64_t>(work.get(r0, c)) << (c - s0);
        if (p0 == pattern) {
          work.add_row(r0, r);
          ops.push_back({r0, r});
          break;
        }
      }
    }
    // Standard Gaussian elimination below the diagonal of this section.
    for (std::size_t c = s0; c < s1; ++c) {
      if (!work.get(c, c)) {
        std::size_t pivot = c + 1;
        while (pivot < n && !work.get(pivot, c)) ++pivot;
        FEMTO_ASSERT(pivot < n);  // caller guarantees invertibility
        work.add_row(pivot, c);
        ops.push_back({pivot, c});
      }
      for (std::size_t r = c + 1; r < n; ++r) {
        if (work.get(r, c)) {
          work.add_row(c, r);
          ops.push_back({c, r});
        }
      }
    }
  }
  return ops;
}

}  // namespace detail

/// Default PMH section size ~ log2(n)/2, at least 1.
[[nodiscard]] inline std::size_t pmh_section_size(std::size_t n) {
  std::size_t bits = 0;
  while ((1ULL << (bits + 1)) <= n) ++bits;
  return std::max<std::size_t>(1, bits / 2 + (bits == 0 ? 1 : 0));
}

/// Patel-Markov-Hayes synthesis. Precondition: m invertible.
[[nodiscard]] inline std::vector<CnotGate> synthesize_pmh(const Matrix& m,
                                                          std::size_t section) {
  FEMTO_EXPECTS(m.invertible());
  // Pass 1: (E_k ... E_1) M = U (upper triangular)  =>  M = E_1 ... E_k U.
  Matrix work = m;
  const std::vector<CnotGate> pass1 = detail::lower_synth(work, section);
  // Pass 2 on U^T: (F_j ... F_1) U^T = I  =>  U = F_j^T ... F_1^T.
  Matrix ut = work.transpose();
  const std::vector<CnotGate> pass2 = detail::lower_synth(ut, section);
  // Gate time-order g_1..g_N has overall map g_N ... g_1. We need
  // g_N ... g_1 = M = E_1 ... E_k F_j^T ... F_1^T, so emit transposed pass-2
  // ops in collection order, then pass-1 ops reversed. Transposing a row-add
  // swaps CNOT control and target.
  std::vector<CnotGate> gates;
  gates.reserve(pass1.size() + pass2.size());
  for (const CnotGate& f : pass2) gates.push_back({f.target, f.control});
  for (auto it = pass1.rbegin(); it != pass1.rend(); ++it)
    gates.push_back({it->control, it->target});
  return gates;
}

[[nodiscard]] inline std::vector<CnotGate> synthesize_pmh(const Matrix& m) {
  return synthesize_pmh(m, pmh_section_size(m.size()));
}

/// Plain Gaussian-elimination synthesis (section size 1); kept as a baseline
/// for bench E6.
[[nodiscard]] inline std::vector<CnotGate> synthesize_gauss(const Matrix& m) {
  return synthesize_pmh(m, 1);
}

/// Applies a CNOT network to a vector, for verification.
[[nodiscard]] inline BitVec apply_network(const std::vector<CnotGate>& gates,
                                          BitVec x) {
  for (const CnotGate& g : gates)
    if (x.get(g.control)) x.flip(g.target);
  return x;
}

/// Recomposes the linear map realized by a CNOT network.
[[nodiscard]] inline Matrix network_matrix(std::size_t n,
                                           const std::vector<CnotGate>& gates) {
  Matrix m = Matrix::identity(n);
  for (std::size_t c = 0; c < n; ++c) {
    BitVec e(n);
    e.set(c, true);
    const BitVec y = apply_network(gates, e);
    for (std::size_t r = 0; r < n; ++r) m.set(r, c, y.get(r));
  }
  return m;
}

}  // namespace femto::gf2
