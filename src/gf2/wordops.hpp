// SIMD word kernels for the GF(2) layer: XOR/OR/AND row ops, popcount,
// parity, and the fused common-support reduction of the CNOT cost model.
//
// Everything here operates on raw 64-bit word spans (BitVec exposes its
// storage via word_data()/word_count()). All callers rely on the BitVec
// tail invariant -- bits >= size() in the final word are always zero -- so
// reductions read whole words with no tail masking.
//
// Three dispatch levels (common/simd.hpp): portable scalar loops are the
// reference; the AVX2/AVX-512 paths compute the identical per-word
// arithmetic across wider lanes. Every result is an integer reduction or a
// pure bitwise map, so all levels are bit-identical by construction; the
// property tests in tests/test_simd.cpp pin this across awkward widths.
//
// Popcounts use the in-register nibble-LUT (Mula's pshufb method) at both
// vector widths, so AVX-512 needs only F+BW+DQ+VL -- not VPOPCNTDQ -- which
// keeps the avx512 level usable on every AVX-512 generation we target.
#pragma once

#include <cstdint>

#include "common/simd.hpp"

#if FEMTO_SIMD_X86
#include <immintrin.h>
#endif

namespace femto::gf2::wordops {

/// The fused reduction behind interface_saving / best_shared_target_saving:
/// per wire (bit), "common" counts support overlap of two symplectic pairs,
/// "equal" the equal-letter subset, and has_xy flags any X/Y collision.
struct SupportCounts {
  int common = 0;
  int equal = 0;
  bool has_xy = false;
};

namespace detail {

// ---- portable reference ---------------------------------------------------

inline void xor_inplace_portable(std::uint64_t* dst, const std::uint64_t* src,
                                 std::size_t nw) {
  for (std::size_t w = 0; w < nw; ++w) dst[w] ^= src[w];
}

inline void or_inplace_portable(std::uint64_t* dst, const std::uint64_t* src,
                                std::size_t nw) {
  for (std::size_t w = 0; w < nw; ++w) dst[w] |= src[w];
}

inline void and_inplace_portable(std::uint64_t* dst, const std::uint64_t* src,
                                 std::size_t nw) {
  for (std::size_t w = 0; w < nw; ++w) dst[w] &= src[w];
}

inline std::size_t popcount_portable(const std::uint64_t* w, std::size_t nw) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < nw; ++i)
    count += static_cast<std::size_t>(__builtin_popcountll(w[i]));
  return count;
}

inline bool parity_portable(const std::uint64_t* w, std::size_t nw) {
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < nw; ++i) acc ^= w[i];
  return (__builtin_popcountll(acc) & 1) != 0;
}

inline std::size_t and_popcount_portable(const std::uint64_t* a,
                                         const std::uint64_t* b,
                                         std::size_t nw) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < nw; ++i)
    count += static_cast<std::size_t>(__builtin_popcountll(a[i] & b[i]));
  return count;
}

inline std::size_t or_popcount_portable(const std::uint64_t* a,
                                        const std::uint64_t* b,
                                        std::size_t nw) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < nw; ++i)
    count += static_cast<std::size_t>(__builtin_popcountll(a[i] | b[i]));
  return count;
}

inline bool and_parity_portable(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t nw) {
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < nw; ++i) acc ^= a[i] & b[i];
  return (__builtin_popcountll(acc) & 1) != 0;
}

inline SupportCounts support_counts_portable(const std::uint64_t* x1,
                                             const std::uint64_t* z1,
                                             const std::uint64_t* x2,
                                             const std::uint64_t* z2,
                                             std::size_t nw) {
  SupportCounts out;
  std::uint64_t xy = 0;
  for (std::size_t w = 0; w < nw; ++w) {
    const std::uint64_t common = (x1[w] | z1[w]) & (x2[w] | z2[w]);
    out.common += __builtin_popcountll(common);
    out.equal +=
        __builtin_popcountll(common & ~(x1[w] ^ x2[w]) & ~(z1[w] ^ z2[w]));
    xy |= x1[w] & x2[w] & (z1[w] ^ z2[w]);
  }
  out.has_xy = xy != 0;
  return out;
}

#if FEMTO_SIMD_X86

// ---- AVX2 (256-bit, 4 words per vector) -----------------------------------

__attribute__((target("avx2"))) inline __m256i popcount_bytes_avx2(__m256i v) {
  const __m256i lookup =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low);
  const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                                      _mm256_shuffle_epi8(lookup, hi));
  // Four per-64-bit-lane byte sums.
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

__attribute__((target("avx2"))) inline std::uint64_t hsum_epi64_avx2(
    __m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  const __m128i s = _mm_add_epi64(lo, hi);
  return static_cast<std::uint64_t>(_mm_cvtsi128_si64(s)) +
         static_cast<std::uint64_t>(
             _mm_cvtsi128_si64(_mm_unpackhi_epi64(s, s)));
}

__attribute__((target("avx2"))) inline void xor_inplace_avx2(
    std::uint64_t* dst, const std::uint64_t* src, std::size_t nw) {
  std::size_t w = 0;
  for (; w + 4 <= nw; w += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + w));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + w));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w),
                        _mm256_xor_si256(a, b));
  }
  for (; w < nw; ++w) dst[w] ^= src[w];
}

__attribute__((target("avx2"))) inline void or_inplace_avx2(
    std::uint64_t* dst, const std::uint64_t* src, std::size_t nw) {
  std::size_t w = 0;
  for (; w + 4 <= nw; w += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + w));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + w));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w),
                        _mm256_or_si256(a, b));
  }
  for (; w < nw; ++w) dst[w] |= src[w];
}

__attribute__((target("avx2"))) inline void and_inplace_avx2(
    std::uint64_t* dst, const std::uint64_t* src, std::size_t nw) {
  std::size_t w = 0;
  for (; w + 4 <= nw; w += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + w));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + w));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w),
                        _mm256_and_si256(a, b));
  }
  for (; w < nw; ++w) dst[w] &= src[w];
}

__attribute__((target("avx2"))) inline std::size_t popcount_avx2(
    const std::uint64_t* w, std::size_t nw) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= nw; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    acc = _mm256_add_epi64(acc, popcount_bytes_avx2(v));
  }
  std::size_t count = static_cast<std::size_t>(hsum_epi64_avx2(acc));
  for (; i < nw; ++i)
    count += static_cast<std::size_t>(__builtin_popcountll(w[i]));
  return count;
}

__attribute__((target("avx2"))) inline bool parity_avx2(const std::uint64_t* w,
                                                        std::size_t nw) {
  __m256i vacc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= nw; i += 4) {
    vacc = _mm256_xor_si256(
        vacc, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i)));
  }
  const __m128i h = _mm_xor_si128(_mm256_castsi256_si128(vacc),
                                  _mm256_extracti128_si256(vacc, 1));
  std::uint64_t acc =
      static_cast<std::uint64_t>(_mm_cvtsi128_si64(h)) ^
      static_cast<std::uint64_t>(_mm_cvtsi128_si64(_mm_unpackhi_epi64(h, h)));
  for (; i < nw; ++i) acc ^= w[i];
  return (__builtin_popcountll(acc) & 1) != 0;
}

__attribute__((target("avx2"))) inline std::size_t and_popcount_avx2(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t nw) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= nw; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    acc = _mm256_add_epi64(acc, popcount_bytes_avx2(_mm256_and_si256(va, vb)));
  }
  std::size_t count = static_cast<std::size_t>(hsum_epi64_avx2(acc));
  for (; i < nw; ++i)
    count += static_cast<std::size_t>(__builtin_popcountll(a[i] & b[i]));
  return count;
}

__attribute__((target("avx2"))) inline std::size_t or_popcount_avx2(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t nw) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= nw; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    acc = _mm256_add_epi64(acc, popcount_bytes_avx2(_mm256_or_si256(va, vb)));
  }
  std::size_t count = static_cast<std::size_t>(hsum_epi64_avx2(acc));
  for (; i < nw; ++i)
    count += static_cast<std::size_t>(__builtin_popcountll(a[i] | b[i]));
  return count;
}

__attribute__((target("avx2"))) inline bool and_parity_avx2(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t nw) {
  __m256i vacc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= nw; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    vacc = _mm256_xor_si256(vacc, _mm256_and_si256(va, vb));
  }
  const __m128i h = _mm_xor_si128(_mm256_castsi256_si128(vacc),
                                  _mm256_extracti128_si256(vacc, 1));
  std::uint64_t acc =
      static_cast<std::uint64_t>(_mm_cvtsi128_si64(h)) ^
      static_cast<std::uint64_t>(_mm_cvtsi128_si64(_mm_unpackhi_epi64(h, h)));
  for (; i < nw; ++i) acc ^= a[i] & b[i];
  return (__builtin_popcountll(acc) & 1) != 0;
}

__attribute__((target("avx2"))) inline SupportCounts support_counts_avx2(
    const std::uint64_t* x1, const std::uint64_t* z1, const std::uint64_t* x2,
    const std::uint64_t* z2, std::size_t nw) {
  __m256i common_acc = _mm256_setzero_si256();
  __m256i equal_acc = _mm256_setzero_si256();
  __m256i xy_acc = _mm256_setzero_si256();
  std::size_t w = 0;
  for (; w + 4 <= nw; w += 4) {
    const __m256i vx1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x1 + w));
    const __m256i vz1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(z1 + w));
    const __m256i vx2 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x2 + w));
    const __m256i vz2 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(z2 + w));
    const __m256i common = _mm256_and_si256(_mm256_or_si256(vx1, vz1),
                                            _mm256_or_si256(vx2, vz2));
    const __m256i xdiff = _mm256_xor_si256(vx1, vx2);
    const __m256i zdiff = _mm256_xor_si256(vz1, vz2);
    const __m256i equal = _mm256_andnot_si256(
        zdiff, _mm256_andnot_si256(xdiff, common));
    common_acc = _mm256_add_epi64(common_acc, popcount_bytes_avx2(common));
    equal_acc = _mm256_add_epi64(equal_acc, popcount_bytes_avx2(equal));
    xy_acc = _mm256_or_si256(
        xy_acc, _mm256_and_si256(_mm256_and_si256(vx1, vx2), zdiff));
  }
  SupportCounts out;
  out.common = static_cast<int>(hsum_epi64_avx2(common_acc));
  out.equal = static_cast<int>(hsum_epi64_avx2(equal_acc));
  const __m128i xh = _mm_or_si128(_mm256_castsi256_si128(xy_acc),
                                  _mm256_extracti128_si256(xy_acc, 1));
  std::uint64_t xy =
      static_cast<std::uint64_t>(_mm_cvtsi128_si64(xh)) |
      static_cast<std::uint64_t>(_mm_cvtsi128_si64(_mm_unpackhi_epi64(xh, xh)));
  for (; w < nw; ++w) {
    const std::uint64_t common = (x1[w] | z1[w]) & (x2[w] | z2[w]);
    out.common += __builtin_popcountll(common);
    out.equal +=
        __builtin_popcountll(common & ~(x1[w] ^ x2[w]) & ~(z1[w] ^ z2[w]));
    xy |= x1[w] & x2[w] & (z1[w] ^ z2[w]);
  }
  out.has_xy = xy != 0;
  return out;
}

// ---- AVX-512 (512-bit, 8 words per vector) --------------------------------

// GCC 12's avx512fintrin.h trips -Wmaybe-uninitialized on internal __Y
// temporaries of some intrinsics (GCC PR 105593); the warning points into
// the system header but fires while compiling these callers, so suppress it
// for this block only.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#define FEMTO_TARGET_AVX512 \
  __attribute__((target("avx512f,avx512bw,avx512dq,avx512vl")))

FEMTO_TARGET_AVX512 inline __m512i popcount_bytes_avx512(__m512i v) {
  const __m512i lookup = _mm512_broadcast_i32x4(
      _mm_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4));
  const __m512i low = _mm512_set1_epi8(0x0f);
  const __m512i lo = _mm512_and_si512(v, low);
  const __m512i hi = _mm512_and_si512(_mm512_srli_epi32(v, 4), low);
  const __m512i cnt = _mm512_add_epi8(_mm512_shuffle_epi8(lookup, lo),
                                      _mm512_shuffle_epi8(lookup, hi));
  return _mm512_sad_epu8(cnt, _mm512_setzero_si512());
}

FEMTO_TARGET_AVX512 inline void xor_inplace_avx512(std::uint64_t* dst,
                                                   const std::uint64_t* src,
                                                   std::size_t nw) {
  std::size_t w = 0;
  for (; w + 8 <= nw; w += 8) {
    const __m512i a = _mm512_loadu_si512(dst + w);
    const __m512i b = _mm512_loadu_si512(src + w);
    _mm512_storeu_si512(dst + w, _mm512_xor_si512(a, b));
  }
  for (; w < nw; ++w) dst[w] ^= src[w];
}

FEMTO_TARGET_AVX512 inline void or_inplace_avx512(std::uint64_t* dst,
                                                  const std::uint64_t* src,
                                                  std::size_t nw) {
  std::size_t w = 0;
  for (; w + 8 <= nw; w += 8) {
    const __m512i a = _mm512_loadu_si512(dst + w);
    const __m512i b = _mm512_loadu_si512(src + w);
    _mm512_storeu_si512(dst + w, _mm512_or_si512(a, b));
  }
  for (; w < nw; ++w) dst[w] |= src[w];
}

FEMTO_TARGET_AVX512 inline void and_inplace_avx512(std::uint64_t* dst,
                                                   const std::uint64_t* src,
                                                   std::size_t nw) {
  std::size_t w = 0;
  for (; w + 8 <= nw; w += 8) {
    const __m512i a = _mm512_loadu_si512(dst + w);
    const __m512i b = _mm512_loadu_si512(src + w);
    _mm512_storeu_si512(dst + w, _mm512_and_si512(a, b));
  }
  for (; w < nw; ++w) dst[w] &= src[w];
}

FEMTO_TARGET_AVX512 inline std::size_t popcount_avx512(const std::uint64_t* w,
                                                       std::size_t nw) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= nw; i += 8) {
    acc = _mm512_add_epi64(acc,
                           popcount_bytes_avx512(_mm512_loadu_si512(w + i)));
  }
  std::size_t count =
      static_cast<std::size_t>(_mm512_reduce_add_epi64(acc));
  for (; i < nw; ++i)
    count += static_cast<std::size_t>(__builtin_popcountll(w[i]));
  return count;
}

FEMTO_TARGET_AVX512 inline bool parity_avx512(const std::uint64_t* w,
                                              std::size_t nw) {
  __m512i vacc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= nw; i += 8)
    vacc = _mm512_xor_si512(vacc, _mm512_loadu_si512(w + i));
  // XOR-reduce the 8 lanes; lane order is irrelevant to XOR.
  alignas(64) std::uint64_t lanes[8];
  _mm512_store_si512(lanes, vacc);
  std::uint64_t acc = 0;
  for (std::uint64_t lane : lanes) acc ^= lane;
  for (; i < nw; ++i) acc ^= w[i];
  return (__builtin_popcountll(acc) & 1) != 0;
}

FEMTO_TARGET_AVX512 inline std::size_t and_popcount_avx512(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t nw) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= nw; i += 8) {
    const __m512i v =
        _mm512_and_si512(_mm512_loadu_si512(a + i), _mm512_loadu_si512(b + i));
    acc = _mm512_add_epi64(acc, popcount_bytes_avx512(v));
  }
  std::size_t count =
      static_cast<std::size_t>(_mm512_reduce_add_epi64(acc));
  for (; i < nw; ++i)
    count += static_cast<std::size_t>(__builtin_popcountll(a[i] & b[i]));
  return count;
}

FEMTO_TARGET_AVX512 inline std::size_t or_popcount_avx512(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t nw) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= nw; i += 8) {
    const __m512i v =
        _mm512_or_si512(_mm512_loadu_si512(a + i), _mm512_loadu_si512(b + i));
    acc = _mm512_add_epi64(acc, popcount_bytes_avx512(v));
  }
  std::size_t count =
      static_cast<std::size_t>(_mm512_reduce_add_epi64(acc));
  for (; i < nw; ++i)
    count += static_cast<std::size_t>(__builtin_popcountll(a[i] | b[i]));
  return count;
}

FEMTO_TARGET_AVX512 inline bool and_parity_avx512(const std::uint64_t* a,
                                                  const std::uint64_t* b,
                                                  std::size_t nw) {
  __m512i vacc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= nw; i += 8) {
    vacc = _mm512_xor_si512(vacc, _mm512_and_si512(_mm512_loadu_si512(a + i),
                                                   _mm512_loadu_si512(b + i)));
  }
  alignas(64) std::uint64_t lanes[8];
  _mm512_store_si512(lanes, vacc);
  std::uint64_t acc = 0;
  for (std::uint64_t lane : lanes) acc ^= lane;
  for (; i < nw; ++i) acc ^= a[i] & b[i];
  return (__builtin_popcountll(acc) & 1) != 0;
}

FEMTO_TARGET_AVX512 inline SupportCounts support_counts_avx512(
    const std::uint64_t* x1, const std::uint64_t* z1, const std::uint64_t* x2,
    const std::uint64_t* z2, std::size_t nw) {
  __m512i common_acc = _mm512_setzero_si512();
  __m512i equal_acc = _mm512_setzero_si512();
  __m512i xy_acc = _mm512_setzero_si512();
  std::size_t w = 0;
  for (; w + 8 <= nw; w += 8) {
    const __m512i vx1 = _mm512_loadu_si512(x1 + w);
    const __m512i vz1 = _mm512_loadu_si512(z1 + w);
    const __m512i vx2 = _mm512_loadu_si512(x2 + w);
    const __m512i vz2 = _mm512_loadu_si512(z2 + w);
    const __m512i common = _mm512_and_si512(_mm512_or_si512(vx1, vz1),
                                            _mm512_or_si512(vx2, vz2));
    const __m512i xdiff = _mm512_xor_si512(vx1, vx2);
    const __m512i zdiff = _mm512_xor_si512(vz1, vz2);
    const __m512i equal = _mm512_andnot_si512(
        zdiff, _mm512_andnot_si512(xdiff, common));
    common_acc = _mm512_add_epi64(common_acc, popcount_bytes_avx512(common));
    equal_acc = _mm512_add_epi64(equal_acc, popcount_bytes_avx512(equal));
    xy_acc = _mm512_or_si512(
        xy_acc, _mm512_and_si512(_mm512_and_si512(vx1, vx2), zdiff));
  }
  SupportCounts out;
  out.common = static_cast<int>(_mm512_reduce_add_epi64(common_acc));
  out.equal = static_cast<int>(_mm512_reduce_add_epi64(equal_acc));
  std::uint64_t xy =
      _mm512_test_epi64_mask(xy_acc, xy_acc) != 0 ? 1 : 0;
  for (; w < nw; ++w) {
    const std::uint64_t common = (x1[w] | z1[w]) & (x2[w] | z2[w]);
    out.common += __builtin_popcountll(common);
    out.equal +=
        __builtin_popcountll(common & ~(x1[w] ^ x2[w]) & ~(z1[w] ^ z2[w]));
    xy |= x1[w] & x2[w] & (z1[w] ^ z2[w]);
  }
  out.has_xy = xy != 0;
  return out;
}

#undef FEMTO_TARGET_AVX512

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

#endif  // FEMTO_SIMD_X86

}  // namespace detail

// ---- dispatch entry points ------------------------------------------------
//
// Dispatch reads the cached simd::level() (clamped to CPU support at init,
// so a vector path is never entered on a CPU that cannot run it). Word spans
// shorter than one vector run the scalar tails inside the vector impls, so
// tiny (single-word, i.e. <= 64 qubit) operands cost one extra predictable
// branch over the old code.

inline void xor_inplace(std::uint64_t* dst, const std::uint64_t* src,
                        std::size_t nw) {
#if FEMTO_SIMD_X86
  switch (simd::level()) {
    case simd::Level::kAvx512:
      detail::xor_inplace_avx512(dst, src, nw);
      return;
    case simd::Level::kAvx2:
      detail::xor_inplace_avx2(dst, src, nw);
      return;
    default:
      break;
  }
#endif
  detail::xor_inplace_portable(dst, src, nw);
}

inline void or_inplace(std::uint64_t* dst, const std::uint64_t* src,
                       std::size_t nw) {
#if FEMTO_SIMD_X86
  switch (simd::level()) {
    case simd::Level::kAvx512:
      detail::or_inplace_avx512(dst, src, nw);
      return;
    case simd::Level::kAvx2:
      detail::or_inplace_avx2(dst, src, nw);
      return;
    default:
      break;
  }
#endif
  detail::or_inplace_portable(dst, src, nw);
}

inline void and_inplace(std::uint64_t* dst, const std::uint64_t* src,
                        std::size_t nw) {
#if FEMTO_SIMD_X86
  switch (simd::level()) {
    case simd::Level::kAvx512:
      detail::and_inplace_avx512(dst, src, nw);
      return;
    case simd::Level::kAvx2:
      detail::and_inplace_avx2(dst, src, nw);
      return;
    default:
      break;
  }
#endif
  detail::and_inplace_portable(dst, src, nw);
}

[[nodiscard]] inline std::size_t popcount(const std::uint64_t* w,
                                          std::size_t nw) {
#if FEMTO_SIMD_X86
  switch (simd::level()) {
    case simd::Level::kAvx512:
      return detail::popcount_avx512(w, nw);
    case simd::Level::kAvx2:
      return detail::popcount_avx2(w, nw);
    default:
      break;
  }
#endif
  return detail::popcount_portable(w, nw);
}

/// XOR-parity of all bits in the span (== popcount(w, nw) & 1).
[[nodiscard]] inline bool parity(const std::uint64_t* w, std::size_t nw) {
#if FEMTO_SIMD_X86
  switch (simd::level()) {
    case simd::Level::kAvx512:
      return detail::parity_avx512(w, nw);
    case simd::Level::kAvx2:
      return detail::parity_avx2(w, nw);
    default:
      break;
  }
#endif
  return detail::parity_portable(w, nw);
}

[[nodiscard]] inline std::size_t and_popcount(const std::uint64_t* a,
                                              const std::uint64_t* b,
                                              std::size_t nw) {
#if FEMTO_SIMD_X86
  switch (simd::level()) {
    case simd::Level::kAvx512:
      return detail::and_popcount_avx512(a, b, nw);
    case simd::Level::kAvx2:
      return detail::and_popcount_avx2(a, b, nw);
    default:
      break;
  }
#endif
  return detail::and_popcount_portable(a, b, nw);
}

/// popcount(a | b): support weight of a symplectic (x, z) pair.
[[nodiscard]] inline std::size_t or_popcount(const std::uint64_t* a,
                                             const std::uint64_t* b,
                                             std::size_t nw) {
#if FEMTO_SIMD_X86
  switch (simd::level()) {
    case simd::Level::kAvx512:
      return detail::or_popcount_avx512(a, b, nw);
    case simd::Level::kAvx2:
      return detail::or_popcount_avx2(a, b, nw);
    default:
      break;
  }
#endif
  return detail::or_popcount_portable(a, b, nw);
}

/// Parity of the GF(2) inner product <a, b>.
[[nodiscard]] inline bool and_parity(const std::uint64_t* a,
                                     const std::uint64_t* b, std::size_t nw) {
#if FEMTO_SIMD_X86
  switch (simd::level()) {
    case simd::Level::kAvx512:
      return detail::and_parity_avx512(a, b, nw);
    case simd::Level::kAvx2:
      return detail::and_parity_avx2(a, b, nw);
    default:
      break;
  }
#endif
  return detail::and_parity_portable(a, b, nw);
}

[[nodiscard]] inline SupportCounts support_counts(const std::uint64_t* x1,
                                                  const std::uint64_t* z1,
                                                  const std::uint64_t* x2,
                                                  const std::uint64_t* z2,
                                                  std::size_t nw) {
#if FEMTO_SIMD_X86
  switch (simd::level()) {
    case simd::Level::kAvx512:
      return detail::support_counts_avx512(x1, z1, x2, z2, nw);
    case simd::Level::kAvx2:
      return detail::support_counts_avx2(x1, z1, x2, z2, nw);
    default:
      break;
  }
#endif
  return detail::support_counts_portable(x1, z1, x2, z2, nw);
}

}  // namespace femto::gf2::wordops
