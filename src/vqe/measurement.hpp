// Measurement-side machinery for VQE energy estimation.
//
// A real device estimates <H> = sum_k c_k <P_k> from shots. Strings that
// commute qubit-wise (letter-compatible on every site) are measurable in a
// single shared basis setting, so grouping them cuts the number of circuit
// configurations. Grouping is graph coloring on the *incompatibility* graph
// -- solved with the same randomized greedy GVCP engine as the hybrid
// encoding (paper Sec. IV).
//
// The shot-based estimator below samples each group's shared eigenbasis and
// converges to the exact expectation as shots -> infinity, connecting the
// simulator's exact energies to the paper's measurement picture.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "graph/digraph.hpp"
#include "pauli/pauli_sum.hpp"
#include "sim/statevector.hpp"

namespace femto::vqe {

/// True when a and b can be measured in one setting: on every qubit the
/// letters agree or at least one is identity.
[[nodiscard]] inline bool qubit_wise_commute(const pauli::PauliString& a,
                                             const pauli::PauliString& b) {
  for (std::size_t q = 0; q < a.num_qubits(); ++q) {
    const pauli::Letter la = a.letter(q);
    const pauli::Letter lb = b.letter(q);
    if (la != pauli::Letter::I && lb != pauli::Letter::I && la != lb)
      return false;
  }
  return true;
}

struct MeasurementGroups {
  /// Term indices (into the PauliSum) per group.
  std::vector<std::vector<std::size_t>> groups;
  /// Shared measurement basis per group: the per-qubit letter each member
  /// is diagonal in (I where no member acts).
  std::vector<pauli::PauliString> bases;
};

/// Greedy-colored qubit-wise-commuting grouping of a Hamiltonian.
[[nodiscard]] inline MeasurementGroups group_commuting_terms(
    const pauli::PauliSum& h, Rng& rng, int coloring_orders = 32) {
  const std::size_t m = h.size();
  graph::UndirectedGraph incompat(m);
  for (std::size_t a = 0; a < m; ++a)
    for (std::size_t b = a + 1; b < m; ++b)
      if (!qubit_wise_commute(h.terms()[a].string, h.terms()[b].string))
        incompat.add_edge(a, b);
  const graph::Coloring coloring =
      graph::greedy_color_randomized(incompat, rng, coloring_orders);
  MeasurementGroups out;
  out.groups.assign(static_cast<std::size_t>(coloring.num_colors), {});
  for (std::size_t t = 0; t < m; ++t)
    out.groups[static_cast<std::size_t>(coloring.color[t])].push_back(t);
  // Drop empty groups (possible when m == 0), build shared bases.
  std::vector<std::vector<std::size_t>> kept;
  for (auto& g : out.groups)
    if (!g.empty()) kept.push_back(std::move(g));
  out.groups = std::move(kept);
  for (const auto& g : out.groups) {
    pauli::PauliString basis(h.num_qubits());
    for (std::size_t t : g) {
      const pauli::PauliString& s = h.terms()[t].string;
      for (std::size_t q = 0; q < s.num_qubits(); ++q)
        if (s.letter(q) != pauli::Letter::I) basis.set_letter(q, s.letter(q));
    }
    out.bases.push_back(std::move(basis));
  }
  return out;
}

/// Shot-based estimate of <psi| H |psi>: for each group, rotates a copy of
/// the state into the shared eigenbasis, samples `shots_per_group` bitstring
/// outcomes, and averages the +-1 eigenvalues of every member string.
[[nodiscard]] inline double sampled_expectation(const sim::StateVector& psi,
                                                const pauli::PauliSum& h,
                                                const MeasurementGroups& mg,
                                                int shots_per_group, Rng& rng) {
  double energy = 0.0;
  for (std::size_t g = 0; g < mg.groups.size(); ++g) {
    // Rotate into the measurement basis: X -> H, Y -> Sdg then H.
    sim::StateVector rotated = psi;
    const pauli::PauliString& basis = mg.bases[g];
    for (std::size_t q = 0; q < basis.num_qubits(); ++q) {
      switch (basis.letter(q)) {
        case pauli::Letter::X:
          rotated.apply_gate(circuit::Gate::h(q));
          break;
        case pauli::Letter::Y:
          rotated.apply_gate(circuit::Gate::sdg(q));
          rotated.apply_gate(circuit::Gate::h(q));
          break;
        default: break;
      }
    }
    // Cumulative distribution for sampling.
    std::vector<double> acc(rotated.dim());
    double running = 0;
    for (std::size_t i = 0; i < rotated.dim(); ++i) {
      running += std::norm(rotated.amplitude(i));
      acc[i] = running;
    }
    std::vector<double> sums(mg.groups[g].size(), 0.0);
    for (int shot = 0; shot < shots_per_group; ++shot) {
      const double u = rng.uniform() * running;
      const std::size_t outcome = static_cast<std::size_t>(
          std::lower_bound(acc.begin(), acc.end(), u) - acc.begin());
      for (std::size_t k = 0; k < mg.groups[g].size(); ++k) {
        const pauli::PauliString& s = h.terms()[mg.groups[g][k]].string;
        // Eigenvalue = product over the support of (-1)^bit in the rotated
        // (diagonal) frame.
        int parity = 0;
        for (std::size_t q = 0; q < s.num_qubits(); ++q)
          if (s.letter(q) != pauli::Letter::I && ((outcome >> q) & 1))
            parity ^= 1;
        sums[k] += parity ? -1.0 : 1.0;
      }
    }
    for (std::size_t k = 0; k < mg.groups[g].size(); ++k) {
      const pauli::PauliTerm& term = h.terms()[mg.groups[g][k]];
      energy += term.coefficient.real() *
                (term.string.is_identity_letters()
                     ? 1.0
                     : sums[k] / shots_per_group);
    }
  }
  return energy;
}

}  // namespace femto::vqe
