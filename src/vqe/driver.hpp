// VQE driver: exact statevector energies, adjoint-state gradients, L-BFGS
// minimization, and the Fig. 1 ansatz-growth loop.
//
// The ansatz is |psi(theta)> = prod_k exp(theta_k G_k) |HF>, applied in the
// given order (first generator acts first). Generators are anti-Hermitian
// PauliSums whose strings mutually commute within one generator (true for
// UCCSD singles/doubles and for the compressed hybrid/bosonic forms), so
// each factor is applied exactly as a product of Pauli exponentials.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "pauli/pauli_sum.hpp"
#include "sim/batched.hpp"
#include "sim/statevector.hpp"

namespace femto::vqe {

struct VqeProblem {
  std::size_t num_qubits = 0;
  pauli::PauliSum hamiltonian;
  std::vector<pauli::PauliSum> generators;  // anti-Hermitian
  std::size_t reference_index = 0;          // computational-basis HF state
};

namespace detail {

/// Applies exp(theta * G) to the state (G anti-Hermitian with commuting
/// strings: each term i*a*L contributes exp(-i(-2a theta)/2 L)).
inline void apply_generator_exp(sim::StateVector& sv,
                                const pauli::PauliSum& g, double theta) {
  for (const pauli::PauliTerm& t : g.terms()) {
    FEMTO_EXPECTS(std::abs(t.coefficient.real()) < 1e-10);
    sv.apply_pauli_exp(t.string, -2.0 * t.coefficient.imag() * theta);
  }
}

/// out = G |in> (left-multiplication by the operator).
[[nodiscard]] inline std::vector<sim::Complex> apply_generator(
    const sim::StateVector& sv, const pauli::PauliSum& g) {
  return sv.apply_sum(g);
}

}  // namespace detail

/// |psi(theta)> for the given parameters.
[[nodiscard]] inline sim::StateVector prepare_state(
    const VqeProblem& prob, const std::vector<double>& theta) {
  FEMTO_EXPECTS(theta.size() == prob.generators.size());
  sim::StateVector sv =
      sim::StateVector::basis_state(prob.num_qubits, prob.reference_index);
  for (std::size_t k = 0; k < prob.generators.size(); ++k)
    detail::apply_generator_exp(sv, prob.generators[k], theta[k]);
  return sv;
}

[[nodiscard]] inline double energy(const VqeProblem& prob,
                                   const std::vector<double>& theta) {
  return prepare_state(prob, theta).expectation(prob.hamiltonian).real();
}

/// B energies for B parameter vectors in one batched sweep: all states
/// advance together through sim::BatchedState with per-lane rotation
/// angles, then the expectations come out per lane. Bit-identical to
/// calling energy() per theta (the per-lane kernels reproduce the
/// per-state arithmetic exactly); the win is one pass over one contiguous
/// buffer per generator term instead of B passes over B buffers.
[[nodiscard]] inline std::vector<double> energies(
    const VqeProblem& prob, std::span<const std::vector<double>> thetas) {
  FEMTO_EXPECTS(!thetas.empty());
  const std::size_t batch = thetas.size();
  for (const std::vector<double>& t : thetas)
    FEMTO_EXPECTS(t.size() == prob.generators.size());
  sim::BatchedState bs = sim::BatchedState::basis_state(
      prob.num_qubits, batch, prob.reference_index);
  std::vector<double> angles(batch);
  for (std::size_t k = 0; k < prob.generators.size(); ++k) {
    for (const pauli::PauliTerm& t : prob.generators[k].terms()) {
      FEMTO_EXPECTS(std::abs(t.coefficient.real()) < 1e-10);
      for (std::size_t b = 0; b < batch; ++b)
        angles[b] = -2.0 * t.coefficient.imag() * thetas[b][k];
      bs.apply_pauli_exp(t.string, angles);
    }
  }
  const std::vector<sim::Complex> exps = bs.expectations(prob.hamiltonian);
  std::vector<double> out(batch);
  for (std::size_t b = 0; b < batch; ++b) out[b] = exps[b].real();
  return out;
}

/// Energy and exact gradient via one adjoint sweep:
/// dE/dtheta_k = 2 Re <lambda_k| G_k |phi_k>.
[[nodiscard]] inline double energy_and_gradient(const VqeProblem& prob,
                                                const std::vector<double>& theta,
                                                std::vector<double>& grad) {
  const std::size_t m = prob.generators.size();
  grad.assign(m, 0.0);
  sim::StateVector phi = prepare_state(prob, theta);
  sim::StateVector lambda(prob.num_qubits);
  lambda.amplitudes() = phi.apply_sum(prob.hamiltonian);
  const double e = [&] {
    sim::Complex acc{0, 0};
    for (std::size_t i = 0; i < phi.dim(); ++i)
      acc += std::conj(phi.amplitude(i)) * lambda.amplitude(i);
    return acc.real();
  }();
  for (std::size_t k = m; k-- > 0;) {
    // grad_k = 2 Re <lambda| G_k |phi>   (phi currently = U_k ... U_0 |HF>).
    const auto gphi = detail::apply_generator(phi, prob.generators[k]);
    sim::Complex acc{0, 0};
    for (std::size_t i = 0; i < phi.dim(); ++i)
      acc += std::conj(lambda.amplitude(i)) * gphi[i];
    grad[k] = 2.0 * acc.real();
    // Retract both states by U_k^dag.
    detail::apply_generator_exp(phi, prob.generators[k], -theta[k]);
    detail::apply_generator_exp(lambda, prob.generators[k], -theta[k]);
  }
  return e;
}

struct OptimizerOptions {
  int max_iterations = 300;
  double gradient_tolerance = 1e-7;
  int history = 8;            // L-BFGS memory
  double armijo_c1 = 1e-4;
  int max_line_search = 30;
};

struct OptimizeResult {
  double energy = 0.0;
  std::vector<double> theta;
  int iterations = 0;
  bool converged = false;
};

/// L-BFGS with two-loop recursion and Armijo backtracking.
[[nodiscard]] inline OptimizeResult minimize_energy(
    const VqeProblem& prob, std::vector<double> theta,
    const OptimizerOptions& options = {}) {
  const std::size_t m = theta.size();
  OptimizeResult result;
  std::vector<double> grad;
  double e = energy_and_gradient(prob, theta, grad);
  std::vector<std::vector<double>> s_hist, y_hist;
  std::vector<double> rho_hist;

  for (int it = 0; it < options.max_iterations; ++it) {
    result.iterations = it + 1;
    double gnorm = 0;
    for (double g : grad) gnorm = std::max(gnorm, std::abs(g));
    if (gnorm < options.gradient_tolerance) {
      result.converged = true;
      break;
    }
    // Two-loop recursion for the search direction d = -H grad.
    std::vector<double> q = grad;
    std::vector<double> alpha_hist(s_hist.size());
    for (std::size_t h = s_hist.size(); h-- > 0;) {
      double sq = 0;
      for (std::size_t i = 0; i < m; ++i) sq += s_hist[h][i] * q[i];
      alpha_hist[h] = rho_hist[h] * sq;
      for (std::size_t i = 0; i < m; ++i) q[i] -= alpha_hist[h] * y_hist[h][i];
    }
    double scale = 1.0;
    if (!s_hist.empty()) {
      double sy = 0, yy = 0;
      const auto& s = s_hist.back();
      const auto& y = y_hist.back();
      for (std::size_t i = 0; i < m; ++i) {
        sy += s[i] * y[i];
        yy += y[i] * y[i];
      }
      if (yy > 1e-300) scale = sy / yy;
    }
    for (double& v : q) v *= scale;
    for (std::size_t h = 0; h < s_hist.size(); ++h) {
      double yq = 0;
      for (std::size_t i = 0; i < m; ++i) yq += y_hist[h][i] * q[i];
      const double b = rho_hist[h] * yq;
      for (std::size_t i = 0; i < m; ++i)
        q[i] += (alpha_hist[h] - b) * s_hist[h][i];
    }
    std::vector<double> dir(m);
    double dg = 0;
    for (std::size_t i = 0; i < m; ++i) {
      dir[i] = -q[i];
      dg += dir[i] * grad[i];
    }
    if (dg > 0) {  // not a descent direction: reset to steepest descent
      for (std::size_t i = 0; i < m; ++i) dir[i] = -grad[i];
      dg = 0;
      for (std::size_t i = 0; i < m; ++i) dg += dir[i] * grad[i];
      s_hist.clear();
      y_hist.clear();
      rho_hist.clear();
    }
    // Armijo backtracking.
    double step = 1.0;
    std::vector<double> theta_new(m);
    double e_new = e;
    bool accepted = false;
    for (int ls = 0; ls < options.max_line_search; ++ls, step *= 0.5) {
      for (std::size_t i = 0; i < m; ++i)
        theta_new[i] = theta[i] + step * dir[i];
      e_new = energy(prob, theta_new);
      if (e_new <= e + options.armijo_c1 * step * dg) {
        accepted = true;
        break;
      }
    }
    if (!accepted) break;  // line search failed: stationary enough
    std::vector<double> grad_new;
    const double e_check = energy_and_gradient(prob, theta_new, grad_new);
    (void)e_check;
    // Update history.
    std::vector<double> s(m), y(m);
    double sy = 0;
    for (std::size_t i = 0; i < m; ++i) {
      s[i] = theta_new[i] - theta[i];
      y[i] = grad_new[i] - grad[i];
      sy += s[i] * y[i];
    }
    if (sy > 1e-12) {
      s_hist.push_back(std::move(s));
      y_hist.push_back(std::move(y));
      rho_hist.push_back(1.0 / sy);
      if (s_hist.size() > static_cast<std::size_t>(options.history)) {
        s_hist.erase(s_hist.begin());
        y_hist.erase(y_hist.begin());
        rho_hist.erase(rho_hist.begin());
      }
    }
    theta = std::move(theta_new);
    grad = std::move(grad_new);
    e = e_new;
  }
  result.energy = e;
  result.theta = std::move(theta);
  return result;
}

/// Fig. 1 growth loop: optimize with 1, 2, ..., M terms (warm-started),
/// recording the converged energy at each size.
struct GrowthPoint {
  std::size_t num_terms = 0;
  double energy = 0.0;
};

/// HMP2-style adaptive term selection (paper Box 2 / [9]): at each cycle,
/// the next term is the candidate with the largest energy-gradient magnitude
/// |<psi| [H, G] |psi>| at the current optimized state -- the leading
/// second-order-perturbation-theory importance measure. Returns the chosen
/// candidate indices in selection order.
[[nodiscard]] inline std::vector<std::size_t> hmp2_adaptive_selection(
    std::size_t num_qubits, const pauli::PauliSum& hamiltonian,
    const std::vector<pauli::PauliSum>& candidates,
    std::size_t reference_index, std::size_t max_terms,
    const OptimizerOptions& options = {}) {
  std::vector<std::size_t> chosen;
  std::vector<bool> used(candidates.size(), false);
  std::vector<double> theta;
  VqeProblem prob;
  prob.num_qubits = num_qubits;
  prob.hamiltonian = hamiltonian;
  prob.reference_index = reference_index;
  for (std::size_t m = 0; m < max_terms && m < candidates.size(); ++m) {
    const sim::StateVector psi = prepare_state(prob, theta);
    const std::vector<sim::Complex> hpsi = psi.apply_sum(hamiltonian);
    double best = -1.0;
    std::size_t best_k = candidates.size();
    for (std::size_t k = 0; k < candidates.size(); ++k) {
      if (used[k]) continue;
      // d/dtheta <psi| e^{-tG} H e^{tG} |psi> at t=0: 2 Re <H psi | G psi>.
      const std::vector<sim::Complex> gpsi = psi.apply_sum(candidates[k]);
      sim::Complex acc{0, 0};
      for (std::size_t i = 0; i < gpsi.size(); ++i)
        acc += std::conj(hpsi[i]) * gpsi[i];
      const double grad = std::abs(2.0 * acc.real());
      if (grad > best) {
        best = grad;
        best_k = k;
      }
    }
    if (best_k == candidates.size() || best < 1e-10) break;
    used[best_k] = true;
    chosen.push_back(best_k);
    prob.generators.push_back(candidates[best_k]);
    theta.push_back(0.0);
    const OptimizeResult res = minimize_energy(prob, theta, options);
    theta = res.theta;
  }
  return chosen;
}

[[nodiscard]] inline std::vector<GrowthPoint> growth_curve(
    std::size_t num_qubits, const pauli::PauliSum& hamiltonian,
    const std::vector<pauli::PauliSum>& ordered_generators,
    std::size_t reference_index, std::size_t max_terms,
    const OptimizerOptions& options = {}) {
  std::vector<GrowthPoint> curve;
  std::vector<double> theta;
  for (std::size_t mm = 1; mm <= max_terms && mm <= ordered_generators.size();
       ++mm) {
    VqeProblem prob;
    prob.num_qubits = num_qubits;
    prob.hamiltonian = hamiltonian;
    prob.generators.assign(ordered_generators.begin(),
                           ordered_generators.begin() +
                               static_cast<std::ptrdiff_t>(mm));
    prob.reference_index = reference_index;
    theta.push_back(0.0);  // warm start: previous solution + zero
    const OptimizeResult res = minimize_energy(prob, theta, options);
    theta = res.theta;
    curve.push_back({mm, res.energy});
  }
  return curve;
}

}  // namespace femto::vqe
