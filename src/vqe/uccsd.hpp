// UCCSD excitation-term generation with HMP2-style ordering.
//
// The paper (Sec. IV) selects ansatz terms "according to the HMP2 ordering"
// of [9]: excitation terms ranked by their second-order perturbation-theory
// importance. We rank doubles by the MP2 amplitude magnitude
// |<ab||ij> / (e_i + e_j - e_a - e_b)| with deterministic tie-breaking;
// singles have zero first-order amplitude at a Hartree-Fock reference
// (Brillouin's theorem) and rank after all contributing doubles.
// (DESIGN.md documents this as a substitution: [9] re-ranks against the
// current ansatz state each cycle; the static ranking agrees on the leading
// terms for the molecules evaluated here.)
#pragma once

#include <algorithm>
#include <vector>

#include "chem/mo_integrals.hpp"
#include "fermion/excitation.hpp"

namespace femto::vqe {

/// All Sz-conserving UCCSD excitation terms, ranked by HMP2 importance
/// (doubles by |MP2 amplitude| descending, then singles).
[[nodiscard]] inline std::vector<fermion::ExcitationTerm> uccsd_hmp2_terms(
    const chem::SpinOrbitalIntegrals& so) {
  using fermion::ExcitationTerm;
  const std::size_t nocc = so.nelec;
  const std::size_t n = so.n;
  std::vector<ExcitationTerm> doubles;
  for (std::size_t i = 0; i < nocc; ++i) {
    for (std::size_t j = i + 1; j < nocc; ++j) {
      for (std::size_t a = nocc; a < n; ++a) {
        for (std::size_t b = a + 1; b < n; ++b) {
          if ((i % 2) + (j % 2) != (a % 2) + (b % 2)) continue;  // Sz
          const double num = so.anti_at(a, b, i, j);
          if (std::abs(num) < 1e-12) continue;
          const double denom = so.orbital_energies[i] +
                               so.orbital_energies[j] -
                               so.orbital_energies[a] -
                               so.orbital_energies[b];
          ExcitationTerm t = ExcitationTerm::make_double(a, b, i, j);
          t.mp2_estimate = std::abs(num / denom);
          doubles.push_back(t);
        }
      }
    }
  }
  std::sort(doubles.begin(), doubles.end(),
            [](const ExcitationTerm& x, const ExcitationTerm& y) {
              if (x.mp2_estimate != y.mp2_estimate)
                return x.mp2_estimate > y.mp2_estimate;
              // Deterministic tie-break on indices.
              return std::tie(x.p, x.q, x.r, x.s) <
                     std::tie(y.p, y.q, y.r, y.s);
            });
  // Singles trail the doubles (zero Brillouin amplitude), ordered by the
  // orbital-energy gap (most accessible first).
  std::vector<ExcitationTerm> singles;
  for (std::size_t i = 0; i < nocc; ++i) {
    for (std::size_t a = nocc; a < n; ++a) {
      if (i % 2 != a % 2) continue;
      ExcitationTerm t = ExcitationTerm::single(a, i);
      t.mp2_estimate = 0.0;
      singles.push_back(t);
    }
  }
  std::sort(singles.begin(), singles.end(),
            [&](const ExcitationTerm& x, const ExcitationTerm& y) {
              const double gx =
                  so.orbital_energies[x.p] - so.orbital_energies[x.r];
              const double gy =
                  so.orbital_energies[y.p] - so.orbital_energies[y.r];
              if (gx != gy) return gx < gy;
              return std::tie(x.p, x.r) < std::tie(y.p, y.r);
            });
  doubles.insert(doubles.end(), singles.begin(), singles.end());
  return doubles;
}

}  // namespace femto::vqe
