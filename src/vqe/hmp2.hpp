// End-to-end HMP2 term selection: candidate UCCSD pool statically ranked by
// MP2 estimates, then adaptively re-selected by the second-order energy
// gradient at the optimized state of each cycle ([9]'s HMP2; paper Fig. 1
// Box 2).
#pragma once

#include <vector>

#include "chem/mo_integrals.hpp"
#include "transform/linear_encoding.hpp"
#include "vqe/driver.hpp"
#include "vqe/uccsd.hpp"

namespace femto::vqe {

/// The first `max_terms` excitation terms chosen by the adaptive HMP2 loop,
/// in selection order. `pool_cap` bounds the candidate pool (top of the
/// static MP2 ranking) to keep each cycle cheap.
[[nodiscard]] inline std::vector<fermion::ExcitationTerm> hmp2_adaptive_terms(
    const chem::SpinOrbitalIntegrals& so, std::size_t max_terms,
    std::size_t pool_cap = 64, const OptimizerOptions& options = {}) {
  std::vector<fermion::ExcitationTerm> pool = uccsd_hmp2_terms(so);
  if (pool.size() > pool_cap) pool.resize(pool_cap);
  const auto enc = transform::LinearEncoding::jordan_wigner(so.n);
  std::vector<pauli::PauliSum> candidates;
  candidates.reserve(pool.size());
  for (const auto& t : pool) candidates.push_back(enc.map(t.generator()));
  const pauli::PauliSum hq = enc.map(chem::build_hamiltonian(so));
  const std::size_t hf_index = (std::size_t{1} << so.nelec) - 1;
  const std::vector<std::size_t> chosen = hmp2_adaptive_selection(
      so.n, hq, candidates, hf_index, max_terms, options);
  std::vector<fermion::ExcitationTerm> out;
  out.reserve(chosen.size());
  for (std::size_t k : chosen) out.push_back(pool[k]);
  return out;
}

}  // namespace femto::vqe
