// Qubit coupled-cluster (QCC) ansatz support.
//
// The paper's Discussion (Sec. V) notes the advanced sorting applies
// immediately to the QCC method, whose ansatz is a product of directly
// parameterized Pauli-string exponentials (entanglers) rather than
// fermionic excitations. This module selects entanglers greedily by energy
// gradient at the current state (the standard QCC screening protocol) from
// a candidate pool, and hands them to the same GTSP sorting/synthesis
// machinery as the UCCSD pipeline.
#pragma once

#include <vector>

#include "pauli/pauli_sum.hpp"
#include "sim/statevector.hpp"
#include "vqe/driver.hpp"

namespace femto::vqe {

/// Greedy QCC entangler selection: repeatedly picks the candidate string
/// with the largest |dE/dtheta| at the optimized state, re-optimizing after
/// each addition. Candidates are Hermitian letter-form strings; each chosen
/// entangler contributes exp(-i theta/2 P).
struct QccResult {
  std::vector<pauli::PauliString> entanglers;  // in selection order
  std::vector<double> theta;
  double energy = 0.0;
};

[[nodiscard]] inline QccResult select_qcc_entanglers(
    std::size_t num_qubits, const pauli::PauliSum& hamiltonian,
    const std::vector<pauli::PauliString>& candidates,
    std::size_t reference_index, std::size_t max_entanglers,
    const OptimizerOptions& options = {}) {
  QccResult result;
  std::vector<bool> used(candidates.size(), false);
  VqeProblem prob;
  prob.num_qubits = num_qubits;
  prob.hamiltonian = hamiltonian;
  prob.reference_index = reference_index;
  for (std::size_t round = 0;
       round < max_entanglers && round < candidates.size(); ++round) {
    const sim::StateVector psi = prepare_state(prob, result.theta);
    const auto hpsi = psi.apply_sum(hamiltonian);
    double best = 1e-9;
    std::size_t best_k = candidates.size();
    for (std::size_t k = 0; k < candidates.size(); ++k) {
      if (used[k]) continue;
      FEMTO_EXPECTS(candidates[k].is_hermitian());
      // Generator G = -i/2 P: dE/dtheta at 0 = Im <H psi | P psi>.
      std::vector<sim::Complex> ppsi(psi.dim(), {0, 0});
      psi.accumulate_pauli(candidates[k], {1.0, 0.0}, ppsi);
      sim::Complex acc{0, 0};
      for (std::size_t i = 0; i < ppsi.size(); ++i)
        acc += std::conj(hpsi[i]) * ppsi[i];
      const double grad = std::abs(acc.imag());
      if (grad > best) {
        best = grad;
        best_k = k;
      }
    }
    if (best_k == candidates.size()) break;
    used[best_k] = true;
    result.entanglers.push_back(candidates[best_k]);
    // G = -i/2 P as an anti-Hermitian PauliSum generator.
    pauli::PauliSum g(num_qubits);
    g.add({0.0, -0.5}, candidates[best_k]);
    prob.generators.push_back(std::move(g));
    result.theta.push_back(0.0);
    const OptimizeResult res = minimize_energy(prob, result.theta, options);
    result.theta = res.theta;
    result.energy = res.energy;
  }
  return result;
}

/// Standard QCC candidate pool: all weight-<=4 strings supported on the
/// given qubit subsets (here: strings of the UCCSD generators themselves,
/// deduplicated) -- a pragmatic pool that keeps screening cheap.
[[nodiscard]] inline std::vector<pauli::PauliString> qcc_pool_from_generators(
    const std::vector<pauli::PauliSum>& generators) {
  std::vector<pauli::PauliString> pool;
  for (const auto& g : generators) {
    for (const auto& t : g.terms()) {
      pauli::PauliString s = t.string;
      bool seen = false;
      for (const auto& p : pool) seen = seen || p.same_letters(s);
      if (!seen) pool.push_back(std::move(s));
    }
  }
  return pool;
}

}  // namespace femto::vqe
