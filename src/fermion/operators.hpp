// Second-quantized fermionic operators.
//
// FermionOperator is a complex linear combination of ladder-operator
// products. Normal ordering implements the canonical anticommutation
// relations {a_i, a_j^dag} = delta_ij, {a_i, a_j} = 0; it is used to verify
// operator identities in tests and to build Hamiltonians.
#pragma once

#include <complex>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/assert.hpp"

namespace femto::fermion {

using Complex = std::complex<double>;

/// One ladder operator: a_mode or a_mode^dagger.
struct LadderOp {
  std::size_t mode = 0;
  bool dagger = false;
  [[nodiscard]] bool operator==(const LadderOp&) const = default;
  [[nodiscard]] auto operator<=>(const LadderOp&) const = default;
};

/// Product of ladder operators with a complex coefficient.
struct FermionTerm {
  Complex coefficient{1.0, 0.0};
  std::vector<LadderOp> ops;

  [[nodiscard]] std::string to_string() const {
    std::string out;
    char buf[64];
    std::snprintf(buf, sizeof buf, "(%+.6g%+.6gi)", coefficient.real(),
                  coefficient.imag());
    out += buf;
    for (const LadderOp& op : ops) {
      out += " a";
      if (op.dagger) out += '+';
      out += "_" + std::to_string(op.mode);
    }
    return out;
  }
};

/// Sum of FermionTerms.
class FermionOperator {
 public:
  FermionOperator() = default;

  [[nodiscard]] static FermionOperator zero() { return {}; }

  [[nodiscard]] static FermionOperator identity(Complex coeff = {1.0, 0.0}) {
    FermionOperator op;
    op.terms_.push_back({coeff, {}});
    return op;
  }

  /// Single ladder operator a_mode (dagger=false) or a_mode^dag.
  [[nodiscard]] static FermionOperator ladder(std::size_t mode, bool dagger) {
    FermionOperator op;
    op.terms_.push_back({{1.0, 0.0}, {LadderOp{mode, dagger}}});
    return op;
  }

  /// Product term coeff * a^(dag?)_{ops[0]} ... in the given order.
  [[nodiscard]] static FermionOperator term(Complex coeff,
                                            std::vector<LadderOp> ops) {
    FermionOperator op;
    op.terms_.push_back({coeff, std::move(ops)});
    return op;
  }

  [[nodiscard]] const std::vector<FermionTerm>& terms() const { return terms_; }
  [[nodiscard]] bool empty() const { return terms_.empty(); }

  void add_term(Complex coeff, std::vector<LadderOp> ops) {
    terms_.push_back({coeff, std::move(ops)});
  }

  [[nodiscard]] friend FermionOperator operator+(FermionOperator lhs,
                                                 const FermionOperator& rhs) {
    lhs.terms_.insert(lhs.terms_.end(), rhs.terms_.begin(), rhs.terms_.end());
    return lhs;
  }

  [[nodiscard]] friend FermionOperator operator-(FermionOperator lhs,
                                                 const FermionOperator& rhs) {
    for (const FermionTerm& t : rhs.terms_)
      lhs.terms_.push_back({-t.coefficient, t.ops});
    return lhs;
  }

  [[nodiscard]] friend FermionOperator operator*(Complex scalar,
                                                 FermionOperator op) {
    for (FermionTerm& t : op.terms_) t.coefficient *= scalar;
    return op;
  }

  [[nodiscard]] friend FermionOperator operator*(const FermionOperator& lhs,
                                                 const FermionOperator& rhs) {
    FermionOperator out;
    for (const FermionTerm& a : lhs.terms_) {
      for (const FermionTerm& b : rhs.terms_) {
        FermionTerm t;
        t.coefficient = a.coefficient * b.coefficient;
        t.ops = a.ops;
        t.ops.insert(t.ops.end(), b.ops.begin(), b.ops.end());
        out.terms_.push_back(std::move(t));
      }
    }
    return out;
  }

  /// Hermitian conjugate: reverse each product, conjugate coefficients,
  /// flip daggers.
  [[nodiscard]] FermionOperator adjoint() const {
    FermionOperator out;
    for (const FermionTerm& t : terms_) {
      FermionTerm r;
      r.coefficient = std::conj(t.coefficient);
      r.ops.reserve(t.ops.size());
      for (auto it = t.ops.rbegin(); it != t.ops.rend(); ++it)
        r.ops.push_back({it->mode, !it->dagger});
      out.terms_.push_back(std::move(r));
    }
    return out;
  }

  /// Normal-ordered form: daggers before non-daggers, modes descending within
  /// daggers and ascending within annihilators; equal-mode contractions
  /// produce the delta terms. Terms with repeated identical ladder ops vanish.
  [[nodiscard]] FermionOperator normal_ordered() const {
    FermionOperator out;
    for (const FermionTerm& t : terms_) normal_order_term(t, out);
    out.combine();
    return out;
  }

  /// Merges identical op sequences; drops negligible coefficients.
  void combine(double eps = 1e-12) {
    std::map<std::vector<LadderOp>, Complex> acc;
    for (const FermionTerm& t : terms_) acc[t.ops] += t.coefficient;
    terms_.clear();
    for (auto& [ops, coeff] : acc)
      if (std::abs(coeff) > eps) terms_.push_back({coeff, ops});
  }

  [[nodiscard]] std::string to_string() const {
    std::string out;
    for (const FermionTerm& t : terms_) {
      out += t.to_string();
      out += '\n';
    }
    return out;
  }

 private:
  // Bubble-sorts one term into normal order, emitting contraction terms
  // recursively. Exponential only in the number of *contractions*, which is
  // tiny for physical 2- and 4-operator terms.
  static void normal_order_term(const FermionTerm& term, FermionOperator& out) {
    std::vector<FermionTerm> stack{term};
    while (!stack.empty()) {
      FermionTerm t = std::move(stack.back());
      stack.pop_back();
      bool swapped = false;
      for (std::size_t i = 0; i + 1 < t.ops.size(); ++i) {
        LadderOp& a = t.ops[i];
        LadderOp& b = t.ops[i + 1];
        const bool out_of_order =
            (!a.dagger && b.dagger) ||
            (a.dagger && b.dagger && a.mode < b.mode) ||
            (!a.dagger && !b.dagger && a.mode > b.mode);
        if (!out_of_order) continue;
        if (a.mode == b.mode && !a.dagger && b.dagger) {
          // a_i a_i^dag = 1 - a_i^dag a_i : emit the contracted term too.
          FermionTerm contracted;
          contracted.coefficient = t.coefficient;
          contracted.ops.assign(t.ops.begin(), t.ops.begin() + i);
          contracted.ops.insert(contracted.ops.end(), t.ops.begin() + i + 2,
                                t.ops.end());
          stack.push_back(std::move(contracted));
        }
        std::swap(a, b);
        t.coefficient = -t.coefficient;
        swapped = true;
        break;
      }
      if (swapped) {
        stack.push_back(std::move(t));
        continue;
      }
      // Now normal ordered; a repeated ladder op squares to zero.
      bool vanishes = false;
      for (std::size_t i = 0; i + 1 < t.ops.size(); ++i)
        if (t.ops[i] == t.ops[i + 1]) vanishes = true;
      if (!vanishes) out.terms_.push_back(std::move(t));
    }
  }

  std::vector<FermionTerm> terms_;
};

}  // namespace femto::fermion
