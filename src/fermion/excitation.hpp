// UCCSD excitation terms and the parity-symmetry classification of
// Sec. III-A of the paper.
//
// Spin-orbital convention: interleaved spins, 0-indexed. Spatial orbital k
// owns spin orbitals 2k (alpha) and 2k+1 (beta); a "spin pair" is the index
// pair (2k, 2k+1). The paper's pair compression ("bosonic"/"hybrid"
// encodings) applies exactly to these pairs.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "fermion/operators.hpp"

namespace femto::fermion {

/// True when {a, b} = {2k, 2k+1} for some spatial orbital k.
[[nodiscard]] constexpr bool is_spin_pair(std::size_t a, std::size_t b) {
  const std::size_t lo = a < b ? a : b;
  const std::size_t hi = a < b ? b : a;
  return lo % 2 == 0 && hi == lo + 1;
}

/// Parity-symmetry class of an excitation term (paper Sec. III-A).
enum class ExcitationClass {
  kBosonic,    // both creation and annihilation sides are spin pairs
  kHybrid,     // exactly one side is a spin pair
  kFermionic,  // neither side (also all single excitations)
};

[[nodiscard]] inline const char* to_string(ExcitationClass c) {
  switch (c) {
    case ExcitationClass::kBosonic: return "bosonic";
    case ExcitationClass::kHybrid: return "hybrid";
    default: return "fermionic";
  }
}

/// A single or double excitation of the UCCSD ansatz. For a double, the
/// generator is T = a+_p a+_q a_r a_s (creation on p<q, annihilation on r<s);
/// for a single, T = a+_p a_r. The anti-Hermitian generator is T - T^dag.
struct ExcitationTerm {
  enum class Kind { kSingle, kDouble };

  Kind kind = Kind::kDouble;
  std::size_t p = 0;  // creation (virtual)
  std::size_t q = 0;  // creation (doubles only), p < q
  std::size_t r = 0;  // annihilation (occupied)
  std::size_t s = 0;  // annihilation (doubles only), r < s
  double mp2_estimate = 0.0;  // |second-order amplitude|, for HMP2 ordering

  [[nodiscard]] static ExcitationTerm single(std::size_t p, std::size_t r) {
    ExcitationTerm t;
    t.kind = Kind::kSingle;
    t.p = p;
    t.r = r;
    return t;
  }

  [[nodiscard]] static ExcitationTerm make_double(std::size_t p, std::size_t q,
                                                  std::size_t r, std::size_t s) {
    FEMTO_EXPECTS(p != q && r != s);
    ExcitationTerm t;
    t.kind = Kind::kDouble;
    t.p = p < q ? p : q;
    t.q = p < q ? q : p;
    t.r = r < s ? r : s;
    t.s = r < s ? s : r;
    return t;
  }

  [[nodiscard]] bool is_double() const { return kind == Kind::kDouble; }

  /// T (the excitation part, without the -h.c.).
  [[nodiscard]] FermionOperator excitation_part() const {
    if (kind == Kind::kSingle)
      return FermionOperator::term({1.0, 0.0},
                                   {{p, true}, {r, false}});
    return FermionOperator::term(
        {1.0, 0.0}, {{p, true}, {q, true}, {r, false}, {s, false}});
  }

  /// The anti-Hermitian generator T - T^dag; exp(theta * generator) is the
  /// circuit block for this term.
  [[nodiscard]] FermionOperator generator() const {
    const FermionOperator t = excitation_part();
    return t - t.adjoint();
  }

  [[nodiscard]] bool creation_is_spin_pair() const {
    return is_double() && is_spin_pair(p, q);
  }
  [[nodiscard]] bool annihilation_is_spin_pair() const {
    return is_double() && is_spin_pair(r, s);
  }

  [[nodiscard]] ExcitationClass classification() const {
    if (!is_double()) return ExcitationClass::kFermionic;
    const bool c = creation_is_spin_pair();
    const bool a = annihilation_is_spin_pair();
    if (c && a) return ExcitationClass::kBosonic;
    if (c || a) return ExcitationClass::kHybrid;
    return ExcitationClass::kFermionic;
  }

  /// Indices this term acts on *individually* (not as a whole spin pair).
  /// Acting individually on index i breaks the parity symmetry of the spin
  /// pair containing i; acting on a whole pair preserves every pair parity.
  [[nodiscard]] std::vector<std::size_t> individual_indices() const {
    if (!is_double()) return {p, r};
    std::vector<std::size_t> out;
    if (!creation_is_spin_pair()) {
      out.push_back(p);
      out.push_back(q);
    }
    if (!annihilation_is_spin_pair()) {
      out.push_back(r);
      out.push_back(s);
    }
    return out;
  }

  /// All distinct spin orbitals referenced.
  [[nodiscard]] std::vector<std::size_t> support() const {
    if (!is_double()) return {p, r};
    return {p, q, r, s};
  }

  /// Paper predicate B(this, other): does applying *this* break the parity
  /// symmetry that *other*'s compression requires? True iff one of this
  /// term's individual indices hits other's compressible spin pair.
  [[nodiscard]] bool breaks_symmetry_of(const ExcitationTerm& other) const {
    if (other.classification() != ExcitationClass::kHybrid &&
        other.classification() != ExcitationClass::kBosonic)
      return false;
    auto hits_pair = [this](std::size_t lo) {
      for (std::size_t i : individual_indices())
        if (i == lo || i == lo + 1) return true;
      return false;
    };
    if (other.creation_is_spin_pair() && hits_pair(other.p)) return true;
    if (other.annihilation_is_spin_pair() && hits_pair(other.r)) return true;
    return false;
  }

  [[nodiscard]] std::string to_string() const {
    if (kind == Kind::kSingle)
      return "a+_" + std::to_string(p) + " a_" + std::to_string(r);
    return "a+_" + std::to_string(p) + " a+_" + std::to_string(q) + " a_" +
           std::to_string(r) + " a_" + std::to_string(s);
  }

  [[nodiscard]] bool operator==(const ExcitationTerm&) const = default;
};

}  // namespace femto::fermion
