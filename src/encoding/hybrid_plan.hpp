// Hybrid-encoding planner (paper Sec. III-A).
//
// Classifies excitation terms into bosonic / hybrid / fermionic, builds the
// directed symmetry-breaking graph over hybrid terms (edge h_i -> h_j iff
// applying h_i breaks the spin-pair parity h_j's compression needs), peels
// sinks and sources iteratively, colors the reduced graph with the
// randomized greedy GVCP heuristic, and returns the ordered application
// plan:
//     bosonic | sinks (peel order) | largest color class | sources
//     (reverse peel order) | fermionic (uncompressed, incl. folded hybrids)
// Every segment before "fermionic" is implemented with pair compression.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "fermion/excitation.hpp"
#include "graph/digraph.hpp"

namespace femto::encoding {

struct HybridPlan {
  // Ordered index lists into the input term vector.
  std::vector<std::size_t> bosonic;
  std::vector<std::size_t> sinks;
  std::vector<std::size_t> colored;
  std::vector<std::size_t> sources;
  std::vector<std::size_t> fermionic;

  // Diagnostics for benches/docs.
  int chromatic_number = 0;
  std::size_t hybrid_total = 0;
  std::size_t hybrid_folded = 0;

  /// Compressed segments concatenated in application order.
  [[nodiscard]] std::vector<std::size_t> compressed_order() const {
    std::vector<std::size_t> out;
    out.reserve(bosonic.size() + sinks.size() + colored.size() +
                sources.size());
    out.insert(out.end(), bosonic.begin(), bosonic.end());
    out.insert(out.end(), sinks.begin(), sinks.end());
    out.insert(out.end(), colored.begin(), colored.end());
    out.insert(out.end(), sources.begin(), sources.end());
    return out;
  }

  /// Full term order (compressed segments, then fermionic).
  [[nodiscard]] std::vector<std::size_t> full_order() const {
    std::vector<std::size_t> out = compressed_order();
    out.insert(out.end(), fermionic.begin(), fermionic.end());
    return out;
  }
};

/// Builds the plan. `coloring_orders` controls the number of random greedy
/// coloring passes (paper Sec. IV).
[[nodiscard]] inline HybridPlan plan_hybrid_encoding(
    const std::vector<fermion::ExcitationTerm>& terms, Rng& rng,
    int coloring_orders = 64) {
  using fermion::ExcitationClass;
  HybridPlan plan;
  std::vector<std::size_t> hybrid_ids;
  for (std::size_t i = 0; i < terms.size(); ++i) {
    switch (terms[i].classification()) {
      case ExcitationClass::kBosonic: plan.bosonic.push_back(i); break;
      case ExcitationClass::kHybrid: hybrid_ids.push_back(i); break;
      case ExcitationClass::kFermionic: plan.fermionic.push_back(i); break;
    }
  }
  plan.hybrid_total = hybrid_ids.size();
  if (hybrid_ids.empty()) return plan;

  // Directed graph: edge i -> j iff hybrid i breaks hybrid j's symmetry.
  graph::Digraph g(hybrid_ids.size());
  for (std::size_t i = 0; i < hybrid_ids.size(); ++i)
    for (std::size_t j = 0; j < hybrid_ids.size(); ++j)
      if (i != j &&
          terms[hybrid_ids[i]].breaks_symmetry_of(terms[hybrid_ids[j]]))
        g.add_edge(i, j);

  const graph::PeelResult peel = graph::peel_sinks_sources(g);
  for (std::size_t v : peel.sinks) plan.sinks.push_back(hybrid_ids[v]);
  for (std::size_t v : peel.sources) plan.sources.push_back(hybrid_ids[v]);

  if (!peel.remainder.empty()) {
    const graph::UndirectedGraph u =
        graph::UndirectedGraph::from_digraph_subset(g, peel.remainder);
    const graph::Coloring coloring =
        graph::greedy_color_randomized(u, rng, coloring_orders);
    plan.chromatic_number = coloring.num_colors;
    std::vector<bool> in_class(peel.remainder.size(), false);
    for (std::size_t v : coloring.largest_class()) {
      in_class[v] = true;
      plan.colored.push_back(hybrid_ids[peel.remainder[v]]);
    }
    // Hybrids outside the winning class fold into the fermionic segment.
    for (std::size_t v = 0; v < peel.remainder.size(); ++v) {
      if (!in_class[v]) {
        plan.fermionic.push_back(hybrid_ids[peel.remainder[v]]);
        ++plan.hybrid_folded;
      }
    }
  }
  return plan;
}

/// Spin pairs (lowest index of each) used *compressed* by the plan.
[[nodiscard]] inline std::vector<std::size_t> compressed_pairs(
    const std::vector<fermion::ExcitationTerm>& terms, const HybridPlan& plan) {
  std::vector<bool> seen;
  std::vector<std::size_t> out;
  const auto note = [&](std::size_t lo) {
    if (lo >= seen.size()) seen.resize(lo + 1, false);
    if (!seen[lo]) {
      seen[lo] = true;
      out.push_back(lo);
    }
  };
  for (std::size_t i : plan.compressed_order()) {
    const auto& t = terms[i];
    if (t.creation_is_spin_pair()) note(t.p);
    if (t.annihilation_is_spin_pair()) note(t.r);
  }
  return out;
}

/// Of the compressed pairs, those later touched *individually* by any
/// fermionic-segment term; each costs one decompression CNOT (the
/// compression itself is free from a basis state, and untouched pairs stay
/// compressed through measurement).
[[nodiscard]] inline std::vector<std::size_t> pairs_needing_decompression(
    const std::vector<fermion::ExcitationTerm>& terms, const HybridPlan& plan) {
  const std::vector<std::size_t> pairs = compressed_pairs(terms, plan);
  std::vector<std::size_t> out;
  for (std::size_t lo : pairs) {
    bool touched = false;
    for (std::size_t i : plan.fermionic) {
      for (std::size_t idx : terms[i].support())
        if (idx == lo || idx == lo + 1) touched = true;
    }
    if (touched) out.push_back(lo);
  }
  return out;
}

}  // namespace femto::encoding
