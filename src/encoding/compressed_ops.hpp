// Compressed qubit operators for pair-symmetric excitation terms
// (paper Sec. III-A).
//
// Convention: a compressed spin pair (p, p+1) stores its amplitude on qubit
// p with qubit p+1 parked in |0> (compression map CNOT(p -> p+1); from the
// Hartree-Fock basis state the compressed form is prepared directly, at no
// CNOT cost).
//
// Construction rule: hard-core boson substitution d^dag_{p,p+1} -> sigma^+_p
// on the pair qubit, while the Jordan-Wigner image of the *individual* side
// keeps its strings except that Z_k Z_{k+1} factors crossing any compressed
// pair reduce to identity (a parity-definite pair is a ZZ eigenstate, and JW
// strings always cross adjacent pairs wholly or not at all). The resulting
// generator is exact on the symmetric subspace up to a term-wide +-1 that the
// variational parameter absorbs; tests pin the unitary equivalence.
#pragma once

#include <vector>

#include "fermion/excitation.hpp"
#include "pauli/pauli_sum.hpp"
#include "transform/linear_encoding.hpp"

namespace femto::encoding {

/// sigma^+ = |1><0| = (X - iY)/2 on qubit q (or sigma^- when raise=false).
[[nodiscard]] inline pauli::PauliSum sigma_pm(std::size_t n, std::size_t q,
                                              bool raise) {
  pauli::PauliSum s(n);
  s.add({0.5, 0.0}, pauli::PauliString::single(n, q, pauli::Letter::X));
  s.add({0.0, raise ? -0.5 : 0.5},
        pauli::PauliString::single(n, q, pauli::Letter::Y));
  return s;
}

/// Deletes Z@Z factors on each compressed pair from every string of `sum`.
/// Precondition: no string acts on exactly one member of a compressed pair
/// with unequal letters (that would be an individual action, contradicting
/// compression bookkeeping).
[[nodiscard]] inline pauli::PauliSum reduce_over_pairs(
    const pauli::PauliSum& sum, const std::vector<std::size_t>& pair_lows) {
  pauli::PauliSum out(sum.num_qubits());
  for (const pauli::PauliTerm& t : sum.terms()) {
    pauli::PauliString s = t.string;
    for (std::size_t lo : pair_lows) {
      const pauli::Letter a = s.letter(lo);
      const pauli::Letter b = s.letter(lo + 1);
      if (!((a == pauli::Letter::I || a == pauli::Letter::Z) && a == b)) {
        std::fprintf(stderr,
                     "femto: reduce_over_pairs: string %s acts individually "
                     "on compressed pair (%zu,%zu)\n",
                     s.to_string().c_str(), lo, lo + 1);
      }
      FEMTO_EXPECTS((a == pauli::Letter::I || a == pauli::Letter::Z) &&
                    a == b);
      if (a == pauli::Letter::Z) {
        s.set_letter(lo, pauli::Letter::I);
        s.set_letter(lo + 1, pauli::Letter::I);
      }
    }
    out.add(t.coefficient, s);
  }
  out.prune();
  return out;
}

/// Compressed anti-Hermitian generator T - T^dag of a bosonic or hybrid
/// double excitation. `compressed_lows` lists every pair currently
/// compressed (including this term's own pair(s)).
[[nodiscard]] inline pauli::PauliSum compressed_generator(
    std::size_t n, const fermion::ExcitationTerm& term,
    const std::vector<std::size_t>& compressed_lows) {
  using fermion::FermionOperator;
  FEMTO_EXPECTS(term.is_double());
  FEMTO_EXPECTS(term.creation_is_spin_pair() ||
                term.annihilation_is_spin_pair());
  // Build T = (pair side as sigma^+/-) * (individual side JW-reduced).
  pauli::PauliSum t = pauli::PauliSum::from_term(
      {1.0, 0.0}, pauli::PauliString::identity(n));
  if (term.creation_is_spin_pair()) {
    t = t * sigma_pm(n, term.p, /*raise=*/true);
  } else {
    const FermionOperator part =
        FermionOperator::ladder(term.p, true) *
        FermionOperator::ladder(term.q, true);
    t = t * reduce_over_pairs(transform::jw_map(n, part), compressed_lows);
  }
  if (term.annihilation_is_spin_pair()) {
    t = t * sigma_pm(n, term.r, /*raise=*/false);
  } else {
    const FermionOperator part =
        FermionOperator::ladder(term.r, false) *
        FermionOperator::ladder(term.s, false);
    t = t * reduce_over_pairs(transform::jw_map(n, part), compressed_lows);
  }
  pauli::PauliSum g = t + pauli::Complex(-1.0, 0.0) * t.adjoint();
  g.prune();
  return g;
}

}  // namespace femto::encoding
