// Minimal deterministic JSON for the femtod wire protocol.
//
// Why not a third-party library: the protocol needs (a) zero new
// dependencies, (b) CANONICAL encoding -- the coalescing key and the
// served-equals-in-process CI pins compare encoded bytes, so the same value
// must always encode to the same string -- and (c) a parser that survives
// arbitrary hostile input, because a daemon must reject malformed requests
// loudly instead of aborting.
//
// Canonical-encoding rules:
//  * no whitespace; object members keep INSERTION order (every encoder in
//    protocol.hpp builds objects in one fixed field order);
//  * numbers round-trip losslessly: a parsed number keeps its raw token,
//    and programmatic numbers are rendered with std::to_chars (shortest
//    form for doubles, plain decimal for integers) -- so uint64 seeds
//    survive bit-for-bit and re-encoding a parsed value is the identity;
//  * strings escape the two mandatory characters and control bytes only.
#pragma once

#include <charconv>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace femto::service::json {

class Value;
using Member = std::pair<std::string, Value>;

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;  // null

  [[nodiscard]] static Value boolean(bool b) {
    Value v;
    v.kind_ = Kind::kBool;
    v.bool_ = b;
    return v;
  }
  [[nodiscard]] static Value number(double d) {
    char buf[32];
    const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, d);
    Value v;
    v.kind_ = Kind::kNumber;
    v.scalar_ = (ec == std::errc()) ? std::string(buf, end) : "0";
    return v;
  }
  [[nodiscard]] static Value number(std::uint64_t u) {
    Value v;
    v.kind_ = Kind::kNumber;
    v.scalar_ = std::to_string(u);
    return v;
  }
  [[nodiscard]] static Value number(int i) {
    Value v;
    v.kind_ = Kind::kNumber;
    v.scalar_ = std::to_string(i);
    return v;
  }
  [[nodiscard]] static Value string(std::string s) {
    Value v;
    v.kind_ = Kind::kString;
    v.scalar_ = std::move(s);
    return v;
  }
  [[nodiscard]] static Value array() {
    Value v;
    v.kind_ = Kind::kArray;
    return v;
  }
  [[nodiscard]] static Value object() {
    Value v;
    v.kind_ = Kind::kObject;
    return v;
  }

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  [[nodiscard]] bool as_bool() const { return is_bool() && bool_; }
  [[nodiscard]] const std::string& as_string() const { return scalar_; }
  [[nodiscard]] double as_double() const {
    return is_number() ? std::strtod(scalar_.c_str(), nullptr) : 0.0;
  }
  /// Lossless unsigned read; nullopt when the token is not a plain
  /// non-negative integer that fits (so 2^64-1 seeds survive, and "1.5"
  /// or "-3" in an integer field is a decode error, not a truncation).
  [[nodiscard]] std::optional<std::uint64_t> as_u64() const {
    if (!is_number() || scalar_.empty()) return std::nullopt;
    std::uint64_t out = 0;
    const char* b = scalar_.data();
    const char* e = b + scalar_.size();
    const auto [p, ec] = std::from_chars(b, e, out);
    if (ec != std::errc() || p != e) return std::nullopt;
    return out;
  }
  [[nodiscard]] std::optional<int> as_int() const {
    if (!is_number() || scalar_.empty()) return std::nullopt;
    int out = 0;
    const char* b = scalar_.data();
    const char* e = b + scalar_.size();
    const auto [p, ec] = std::from_chars(b, e, out);
    if (ec != std::errc() || p != e) return std::nullopt;
    return out;
  }

  // --- array ---------------------------------------------------------------
  [[nodiscard]] const std::vector<Value>& items() const { return items_; }
  Value& push(Value v) {
    items_.push_back(std::move(v));
    return items_.back();
  }

  // --- object (insertion-ordered) ------------------------------------------
  [[nodiscard]] const std::vector<Member>& members() const { return members_; }
  /// nullptr when absent.
  [[nodiscard]] const Value* find(std::string_view key) const {
    for (const Member& m : members_)
      if (m.first == key) return &m.second;
    return nullptr;
  }
  Value& set(std::string key, Value v) {
    members_.emplace_back(std::move(key), std::move(v));
    return members_.back().second;
  }

  // --- canonical encoding --------------------------------------------------
  [[nodiscard]] std::string encode() const {
    std::string out;
    encode_to(out);
    return out;
  }

  void encode_to(std::string& out) const {
    switch (kind_) {
      case Kind::kNull: out += "null"; return;
      case Kind::kBool: out += bool_ ? "true" : "false"; return;
      case Kind::kNumber: out += scalar_; return;
      case Kind::kString: encode_string(scalar_, out); return;
      case Kind::kArray: {
        out += '[';
        for (std::size_t i = 0; i < items_.size(); ++i) {
          if (i) out += ',';
          items_[i].encode_to(out);
        }
        out += ']';
        return;
      }
      case Kind::kObject: {
        out += '{';
        for (std::size_t i = 0; i < members_.size(); ++i) {
          if (i) out += ',';
          encode_string(members_[i].first, out);
          out += ':';
          members_[i].second.encode_to(out);
        }
        out += '}';
        return;
      }
    }
  }

  static void encode_string(std::string_view s, std::string& out) {
    out += '"';
    for (const char c : s) {
      const auto u = static_cast<unsigned char>(c);
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
          if (u < 0x20) {
            constexpr char kHex[] = "0123456789abcdef";
            out += "\\u00";
            out += kHex[u >> 4];
            out += kHex[u & 0xf];
          } else {
            out += c;
          }
      }
    }
    out += '"';
  }

 private:
  friend class Parser;
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::string scalar_;  // number token or string payload
  std::vector<Value> items_;
  std::vector<Member> members_;
};

/// Strict recursive-descent parser: full-input consumption, bounded depth,
/// never throws, never aborts -- malformed bytes come back as an error
/// string so the daemon can reject the line and keep serving.
class Parser {
 public:
  static constexpr int kMaxDepth = 64;

  [[nodiscard]] static std::optional<Value> parse(std::string_view text,
                                                  std::string* error) {
    Parser p(text);
    Value v;
    if (!p.parse_value(v, 0)) {
      if (error) *error = p.error_;
      return std::nullopt;
    }
    p.skip_ws();
    if (p.pos_ != p.text_.size()) {
      if (error)
        *error = "trailing bytes after JSON value at offset " +
                 std::to_string(p.pos_);
      return std::nullopt;
    }
    return v;
  }

 private:
  explicit Parser(std::string_view text) : text_(text) {}

  [[nodiscard]] bool fail(std::string msg) {
    error_ = std::move(msg) + " at offset " + std::to_string(pos_);
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word)
      return fail("invalid literal");
    pos_ += word.size();
    return true;
  }

  [[nodiscard]] bool parse_value(Value& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case 'n': out = Value(); return literal("null");
      case 't': out = Value::boolean(true); return literal("true");
      case 'f': out = Value::boolean(false); return literal("false");
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out = Value::string(std::move(s));
        return true;
      }
      case '[': {
        ++pos_;
        out = Value::array();
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        for (;;) {
          Value item;
          if (!parse_value(item, depth + 1)) return false;
          out.push(std::move(item));
          skip_ws();
          if (pos_ >= text_.size()) return fail("unterminated array");
          if (text_[pos_] == ',') {
            ++pos_;
            continue;
          }
          if (text_[pos_] == ']') {
            ++pos_;
            return true;
          }
          return fail("expected ',' or ']'");
        }
      }
      case '{': {
        ++pos_;
        out = Value::object();
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        for (;;) {
          skip_ws();
          if (pos_ >= text_.size() || text_[pos_] != '"')
            return fail("expected object key");
          std::string key;
          if (!parse_string(key)) return false;
          skip_ws();
          if (pos_ >= text_.size() || text_[pos_] != ':')
            return fail("expected ':'");
          ++pos_;
          Value member;
          if (!parse_value(member, depth + 1)) return false;
          out.set(std::move(key), std::move(member));
          skip_ws();
          if (pos_ >= text_.size()) return fail("unterminated object");
          if (text_[pos_] == ',') {
            ++pos_;
            continue;
          }
          if (text_[pos_] == '}') {
            ++pos_;
            return true;
          }
          return fail("expected ',' or '}'");
        }
      }
      default: return parse_number(out);
    }
  }

  [[nodiscard]] bool parse_number(Value& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() ||
        !(text_[pos_] >= '0' && text_[pos_] <= '9'))
      return fail("invalid number");
    // JSON grammar: no leading zeros ("01" is two tokens, i.e. malformed);
    // canonical tokens must have exactly one spelling per value.
    if (text_[pos_] == '0' && pos_ + 1 < text_.size() &&
        text_[pos_ + 1] >= '0' && text_[pos_ + 1] <= '9')
      return fail("leading zero in number");
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
      ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !(text_[pos_] >= '0' && text_[pos_] <= '9'))
        return fail("invalid number");
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
        ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (pos_ >= text_.size() ||
          !(text_[pos_] >= '0' && text_[pos_] <= '9'))
        return fail("invalid number");
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
        ++pos_;
    }
    Value v;
    v.kind_ = Value::Kind::kNumber;
    v.scalar_ = std::string(text_.substr(start, pos_ - start));
    out = std::move(v);
    return true;
  }

  [[nodiscard]] bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("raw control byte in string");
      if (c != '\\') {
        out += c;
        ++pos_;
        continue;
      }
      if (pos_ + 1 >= text_.size()) return fail("dangling escape");
      const char esc = text_[pos_ + 1];
      pos_ += 2;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          for (int k = 0; k < 4; ++k) {
            const char h = text_[pos_ + static_cast<std::size_t>(k)];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              return fail("invalid \\u escape");
          }
          pos_ += 4;
          // UTF-8 encode the BMP code point (surrogate pairs are not needed
          // by this protocol; lone surrogates pass through as-is bytes).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default: return fail("invalid escape");
      }
    }
    return fail("unterminated string");
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

[[nodiscard]] inline std::optional<Value> parse(std::string_view text,
                                                std::string* error = nullptr) {
  return Parser::parse(text, error);
}

}  // namespace femto::service::json
