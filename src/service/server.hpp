// The compilation service: a bounded admission queue + single scheduler
// thread in front of one shared CompilePipeline, plus an AF_UNIX JSON-line
// socket front end (SocketServer) -- the in-process core of the femtod
// daemon.
//
// Design rules (the lifecycle discipline the tests enforce):
//
//  * Every client-visible request is a Ticket whose state only moves along
//    the whitelisted edges of service/lifecycle.hpp. A forbidden edge is an
//    assertion, not a recoverable condition.
//  * Admission control happens BEFORE queueing: invalid requests, a full
//    queue, and a draining server all reject loudly at QUEUED -> REJECTED
//    with a diagnostic. Once admitted, a request can only finish or be
//    stopped (cancel / deadline) -- REJECTED is unreachable past QUEUED.
//  * One scheduler thread executes requests strictly serially on the
//    pipeline; intra-request parallelism comes from the pipeline's own
//    worker pool. Serial execution is what makes service results
//    bit-identical to in-process compiles (the pipeline itself guarantees
//    worker-count invariance) and makes drain quiescence deterministic.
//  * Identical in-flight requests COALESCE: keyed by the canonical
//    protocol encoding (deadline excluded), N tickets attach to one Work
//    and receive the same shared response -- N clients asking for the same
//    Hamiltonian pay for one compile. A coalesced request runs under the
//    LEADER's deadline.
//  * Cancellation is cooperative: cancelling a ticket detaches it
//    immediately (synthesized CANCELLED response); when the LAST waiter of
//    a running Work cancels, the Work's cancel flag trips and the pipeline
//    observes it at the next restart boundary. A queued Work whose waiters
//    all cancelled is dropped without running.
//  * drain(): stop admission (new submits -> REJECTED), optionally cancel
//    everything still queued, then block until the scheduler is idle. After
//    drain the service is quiescent -- the destructor drains too, so tests
//    can just scope a Service.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/failpoint.hpp"
#include "core/pipeline.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/lifecycle.hpp"
#include "service/net.hpp"
#include "service/protocol.hpp"

namespace femto::service {

struct ServiceOptions {
  core::PipelineOptions pipeline;
  /// Admission bound: submits beyond this many queued works are REJECTED
  /// loudly (the client can back off and retry; silent unbounded queues
  /// turn overload into latency collapse).
  std::size_t max_queue = 64;
  /// Deadline applied to requests that carry none (0 = unlimited).
  double default_deadline_s = 0.0;
  /// Log admission rejections and lifecycle summaries to stderr.
  bool log = false;
  /// Capture a per-request span tree (queue wait -> run -> per-restart ->
  /// per-stage) for every work. The last trace is served by the `trace`
  /// wire op; with trace_dir set, each trace is also written to
  /// <trace_dir>/request-<id>.json (Chrome trace-event format, loadable in
  /// Perfetto). Tracing is enabled iff trace || !trace_dir.empty().
  bool trace = false;
  std::string trace_dir;
};

struct ServiceStats {
  std::uint64_t submitted = 0;  // every submit() call, coalesced included
  std::uint64_t coalesced = 0;  // submits attached to an in-flight work
  std::uint64_t done = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t rejected = 0;
  std::uint64_t works_run = 0;     // pipeline executions (post-coalescing)
  std::uint64_t plans_served = 0;  // scenario outcomes delivered on DONE

  /// Every submitted ticket ends in exactly one terminal state.
  [[nodiscard]] std::uint64_t terminals() const {
    return done + cancelled + deadline_exceeded + rejected;
  }
};

class Ticket;

/// One coalesced unit of execution: the leader's request plus every ticket
/// waiting on it. Guarded by the Service mutex except `cancel`, which the
/// pipeline polls lock-free at restart boundaries.
struct Work {
  core::CompileRequest request;
  std::string key;
  std::atomic<bool> cancel{false};
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  std::vector<std::shared_ptr<Ticket>> waiters;
  std::size_t active = 0;  // waiters not yet individually cancelled
  bool queued = false;
  bool running = false;
  /// Leader ticket id; names the per-request trace file.
  std::uint64_t work_id = 0;
  std::chrono::steady_clock::time_point submitted_at{};
  /// Per-request tracer (null when tracing is off), epoch'd at submit so
  /// the queue-wait phase has non-negative timestamps.
  std::shared_ptr<obs::Tracer> tracer;
};

/// A client's handle on one submitted request: its lifecycle state and,
/// once terminal, the (possibly shared) response. Thread-safe; wait() is
/// how synchronous clients block. Tickets must not outlive the Service.
class Ticket {
 public:
  [[nodiscard]] std::uint64_t id() const { return id_; }
  /// True when this submit attached to an already-in-flight identical
  /// request instead of queueing its own work.
  [[nodiscard]] bool coalesced() const { return coalesced_; }

  [[nodiscard]] RequestState state() const {
    std::lock_guard<std::mutex> g(mu_);
    return lifecycle_.state();
  }
  [[nodiscard]] bool terminal() const {
    std::lock_guard<std::mutex> g(mu_);
    return lifecycle_.terminal();
  }
  /// Blocks until terminal; the response stays valid while the Ticket
  /// lives (shared with coalesced siblings).
  const core::CompileResponse& wait() {
    std::unique_lock<std::mutex> g(mu_);
    cv_.wait(g, [&] { return lifecycle_.terminal(); });
    return *response_;
  }
  [[nodiscard]] std::shared_ptr<const core::CompileResponse> response()
      const {
    std::lock_guard<std::mutex> g(mu_);
    return response_;
  }

 private:
  friend class Service;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  RequestLifecycle lifecycle_;
  std::shared_ptr<const core::CompileResponse> response_;
  std::shared_ptr<Work> work_;  // cleared at terminal (breaks the cycle)
  std::function<void(Ticket&)> on_terminal_;
  std::uint64_t id_ = 0;
  bool coalesced_ = false;
  std::chrono::steady_clock::time_point submitted_at_{};
};

class Service {
 public:
  explicit Service(ServiceOptions options)
      : options_(std::move(options)), pipeline_(options_.pipeline) {
    scheduler_ = std::thread([this] { scheduler_loop(); });
  }

  ~Service() {
    drain(/*cancel_queued=*/true);
    {
      std::lock_guard<std::mutex> g(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    scheduler_.join();
  }

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Submits a request; returns its Ticket immediately. `on_terminal` (may
  /// be empty) fires exactly once, off the service lock, when the ticket
  /// reaches a terminal state -- including synchronously inside submit()
  /// for rejections. The request's control-plane fields are overwritten by
  /// the service (cancel flag, absolute deadline).
  std::shared_ptr<Ticket> submit(
      core::CompileRequest request,
      std::function<void(Ticket&)> on_terminal = {}) {
    auto ticket = std::make_shared<Ticket>();
    ticket->on_terminal_ = std::move(on_terminal);
    ticket->submitted_at_ = std::chrono::steady_clock::now();
    std::vector<std::shared_ptr<Ticket>> fire;
    {
      std::lock_guard<std::mutex> g(mu_);
      ticket->id_ = ++next_ticket_id_;
      ++stats_.submitted;
      metrics_.submitted.inc();
      ++inflight_tickets_;
      metrics_.in_flight.add(1);
      if (draining_) {
        reject(ticket, "service is draining: admission stopped", fire);
      } else if (std::string err = core::validate_request(request);
                 !err.empty()) {
        reject(ticket, "invalid request: " + err, fire);
      } else if (std::shared_ptr<Work> existing =
                     find_inflight(protocol::coalesce_key(request));
                 existing != nullptr) {
        attach(ticket, existing);
      } else if (queue_.size() >= options_.max_queue) {
        reject(ticket,
               "queue full: " + std::to_string(queue_.size()) + " of " +
                   std::to_string(options_.max_queue) +
                   " slots in use; back off and retry",
               fire);
      } else {
        enqueue(ticket, std::move(request));
      }
    }
    cv_.notify_one();
    fire_callbacks(fire);
    return ticket;
  }

  /// Convenience for synchronous callers: submit + wait.
  core::CompileResponse compile_sync(core::CompileRequest request) {
    return submit(std::move(request))->wait();
  }

  /// Cancels one ticket: it detaches immediately with a synthesized
  /// CANCELLED response. When it was the last active waiter, the queued
  /// work is dropped (deterministically, before it runs) or the running
  /// work's cooperative cancel flag trips.
  void cancel(const std::shared_ptr<Ticket>& ticket) {
    std::vector<std::shared_ptr<Ticket>> fire;
    {
      std::lock_guard<std::mutex> g(mu_);
      std::shared_ptr<Work> work = ticket->work_;
      auto response = std::make_shared<const core::CompileResponse>(
          core::CompileResponse{core::RequestStatus::kCancelled,
                                "cancelled by client",
                                {}});
      if (!terminalize(ticket, RequestState::kCancelled, response, fire))
        return;  // already terminal
      if (work == nullptr) return;
      FEMTO_EXPECTS(work->active > 0);
      --work->active;
      if (work->active > 0) return;  // coalesced siblings still waiting
      if (work->running) {
        work->cancel.store(true, std::memory_order_relaxed);
      } else if (work->queued) {
        drop_queued(work);
      }
    }
    fire_callbacks(fire);
  }

  /// Stops admission (submits reject from now on), optionally cancels all
  /// still-queued works, then blocks until the scheduler is idle. After
  /// drain() returns the service is quiescent and every ticket terminal.
  void drain(bool cancel_queued) {
    std::vector<std::shared_ptr<Ticket>> fire;
    std::unique_lock<std::mutex> lock(mu_);
    draining_ = true;
    if (cancel_queued) {
      auto response = std::make_shared<const core::CompileResponse>(
          core::CompileResponse{core::RequestStatus::kCancelled,
                                "cancelled: service drain",
                                {}});
      while (!queue_.empty()) {
        std::shared_ptr<Work> work = queue_.front();
        queue_.pop_front();
        work->queued = false;
        for (const std::shared_ptr<Ticket>& t : work->waiters)
          (void)terminalize(t, RequestState::kCancelled, response, fire);
        work->waiters.clear();
        work->active = 0;
        erase_inflight(work);
      }
      metrics_.queue_depth.set(0);
    }
    lock.unlock();
    fire_callbacks(fire);
    lock.lock();
    idle_cv_.wait(lock, [&] { return queue_.empty() && !busy_; });
  }

  [[nodiscard]] bool draining() const {
    std::lock_guard<std::mutex> g(mu_);
    return draining_;
  }
  [[nodiscard]] std::size_t queue_depth() const {
    std::lock_guard<std::mutex> g(mu_);
    return queue_.size();
  }
  /// Submitted tickets not yet in a terminal state (queued + running +
  /// coalesced waiters) -- the live-load figure the `stats` op reports so a
  /// wedged queue is visible, unlike the monotonic counters.
  [[nodiscard]] std::size_t in_flight() const {
    std::lock_guard<std::mutex> g(mu_);
    return inflight_tickets_;
  }
  [[nodiscard]] ServiceStats stats() const {
    std::lock_guard<std::mutex> g(mu_);
    return stats_;
  }
  [[nodiscard]] bool tracing_enabled() const {
    return options_.trace || !options_.trace_dir.empty();
  }
  /// Chrome trace-event JSON of the most recently completed work (empty
  /// until the first traced work finishes). Served by the `trace` wire op.
  [[nodiscard]] std::string last_trace() const {
    std::lock_guard<std::mutex> g(trace_mu_);
    return last_trace_;
  }
  /// The shared pipeline (one SynthesisCache + optional database L2 across
  /// ALL requests -- the warm-cache serving advantage). Do not compile on
  /// it concurrently with a live service; use submit().
  [[nodiscard]] core::CompilePipeline& pipeline() { return pipeline_; }
  [[nodiscard]] const ServiceOptions& options() const { return options_; }

 private:
  // --- submit-side helpers (service lock held) -----------------------------

  void reject(const std::shared_ptr<Ticket>& ticket, std::string why,
              std::vector<std::shared_ptr<Ticket>>& fire) {
    if (options_.log)
      std::fprintf(stderr, "femtod: REJECTED ticket %llu: %s\n",
                   static_cast<unsigned long long>(ticket->id_),
                   why.c_str());
    auto response = std::make_shared<const core::CompileResponse>(
        core::CompileResponse{core::RequestStatus::kRejected,
                              std::move(why),
                              {}});
    (void)terminalize(ticket, RequestState::kRejected, response, fire);
  }

  [[nodiscard]] std::shared_ptr<Work> find_inflight(const std::string& key) {
    const auto it = inflight_.find(key);
    if (it == inflight_.end()) return nullptr;
    // A running work whose waiters all cancelled may already have its
    // cooperative cancel flag tripped; attaching would hand the new client
    // a cancellation it never asked for. Let it queue its own work.
    if (it->second->cancel.load(std::memory_order_relaxed)) return nullptr;
    return it->second;
  }

  void attach(const std::shared_ptr<Ticket>& ticket,
              const std::shared_ptr<Work>& work) {
    ticket->coalesced_ = true;
    ticket->work_ = work;
    work->waiters.push_back(ticket);
    ++work->active;
    ++stats_.coalesced;
    metrics_.coalesced.inc();
    if (work->running) {
      // Catch the lifecycle up to the work it joined.
      std::lock_guard<std::mutex> g(ticket->mu_);
      ticket->lifecycle_.advance(RequestState::kAdmitted);
      ticket->lifecycle_.advance(RequestState::kRunning);
    }
  }

  void enqueue(const std::shared_ptr<Ticket>& ticket,
               core::CompileRequest request) {
    auto work = std::make_shared<Work>();
    const double budget = request.deadline_s > 0.0
                              ? request.deadline_s
                              : options_.default_deadline_s;
    if (budget > 0.0)
      work->deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(budget));
    work->key = protocol::coalesce_key(request);
    work->request = std::move(request);
    // Absolute deadline: queue wait counts against the budget. The cancel
    // flag lives in the Work, which outlives the pipeline run.
    work->request.deadline_at = work->deadline;
    work->request.cancel = &work->cancel;
    work->waiters.push_back(ticket);
    work->active = 1;
    work->queued = true;
    work->work_id = ticket->id_;
    work->submitted_at = ticket->submitted_at_;
    if (tracing_enabled())
      work->tracer = std::make_shared<obs::Tracer>(work->submitted_at);
    ticket->work_ = work;
    inflight_[work->key] = work;
    queue_.push_back(std::move(work));
    metrics_.queue_depth.set(static_cast<std::int64_t>(queue_.size()));
  }

  void drop_queued(const std::shared_ptr<Work>& work) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (*it == work) {
        queue_.erase(it);
        break;
      }
    }
    metrics_.queue_depth.set(static_cast<std::int64_t>(queue_.size()));
    work->queued = false;
    work->waiters.clear();
    erase_inflight(work);
  }

  void erase_inflight(const std::shared_ptr<Work>& work) {
    const auto it = inflight_.find(work->key);
    if (it != inflight_.end() && it->second == work) inflight_.erase(it);
  }

  // --- lifecycle plumbing ---------------------------------------------------

  /// Moves a ticket to a terminal state with its response; returns false if
  /// it already was terminal. Caller holds the service lock; ticket locks
  /// nest inside it. The callback is deferred into `fire` so it runs off
  /// both locks.
  bool terminalize(const std::shared_ptr<Ticket>& ticket, RequestState to,
                   std::shared_ptr<const core::CompileResponse> response,
                   std::vector<std::shared_ptr<Ticket>>& fire) {
    {
      std::lock_guard<std::mutex> g(ticket->mu_);
      if (ticket->lifecycle_.terminal()) return false;
      ticket->lifecycle_.advance(to);
      ticket->response_ = std::move(response);
      ticket->work_.reset();
      ticket->cv_.notify_all();
    }
    switch (to) {
      case RequestState::kDone:
        ++stats_.done;
        metrics_.done.inc();
        stats_.plans_served += ticket->response()->outcomes.size();
        metrics_.plans_served.inc(ticket->response()->outcomes.size());
        break;
      case RequestState::kCancelled:
        ++stats_.cancelled;
        metrics_.cancelled.inc();
        break;
      case RequestState::kDeadlineExceeded:
        ++stats_.deadline_exceeded;
        metrics_.deadline_exceeded.inc();
        break;
      case RequestState::kRejected:
        ++stats_.rejected;
        metrics_.rejected.inc();
        break;
      default: FEMTO_EXPECTS(false && "terminalize on non-terminal state");
    }
    FEMTO_EXPECTS(inflight_tickets_ > 0);
    --inflight_tickets_;
    metrics_.in_flight.add(-1);
    metrics_.request_latency.record(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      ticket->submitted_at_)
            .count());
    if (ticket->on_terminal_) fire.push_back(ticket);
    return true;
  }

  void advance_live_waiters(Work& work, RequestState to) {
    for (const std::shared_ptr<Ticket>& t : work.waiters) {
      std::lock_guard<std::mutex> g(t->mu_);
      if (t->lifecycle_.terminal()) continue;  // individually cancelled
      t->lifecycle_.advance(to);
    }
  }

  /// Exports a completed work's trace: retained as the last trace (served
  /// by the `trace` op) and, with trace_dir set, written to
  /// <trace_dir>/request-<work_id>.json. Called from the scheduler thread
  /// off the service lock, after the pipeline run joined its workers (the
  /// tracer's quiescence requirement).
  void publish_trace(const Work& work) {
    std::string json = work.tracer->to_json();
    if (!options_.trace_dir.empty()) {
      const std::string path = options_.trace_dir + "/request-" +
                               std::to_string(work.work_id) + ".json";
      if (std::FILE* f = std::fopen(path.c_str(), "w"); f != nullptr) {
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
      } else if (options_.log) {
        std::fprintf(stderr, "femtod: cannot write trace %s\n", path.c_str());
      }
    }
    std::lock_guard<std::mutex> g(trace_mu_);
    last_trace_ = std::move(json);
  }

  static void fire_callbacks(
      const std::vector<std::shared_ptr<Ticket>>& fire) {
    for (const std::shared_ptr<Ticket>& t : fire) {
      auto callback = std::move(t->on_terminal_);
      t->on_terminal_ = nullptr;
      callback(*t);
    }
  }

  // --- the scheduler --------------------------------------------------------

  void scheduler_loop() {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      std::shared_ptr<Work> work = queue_.front();
      queue_.pop_front();
      metrics_.queue_depth.set(static_cast<std::int64_t>(queue_.size()));
      work->queued = false;
      busy_ = true;
      std::vector<std::shared_ptr<Ticket>> fire;
      if (work->active == 0) {
        // Every waiter cancelled while queued; nothing to run.
        work->waiters.clear();
        erase_inflight(work);
      } else {
        advance_live_waiters(*work, RequestState::kAdmitted);
        const auto picked = std::chrono::steady_clock::now();
        metrics_.queue_wait.record(
            std::chrono::duration<double>(picked - work->submitted_at)
                .count());
        if (picked > work->deadline) {
          auto response = std::make_shared<const core::CompileResponse>(
              core::CompileResponse{
                  core::RequestStatus::kDeadlineExceeded,
                  "deadline expired while queued (before any restart ran)",
                  {}});
          finish(work, RequestState::kDeadlineExceeded, response, fire);
        } else {
          advance_live_waiters(*work, RequestState::kRunning);
          work->running = true;
          lock.unlock();
          // Per-request trace: activate this work's tracer for the span of
          // the pipeline run (the scheduler serializes works, so exactly
          // one tracer is ever active). The queue-wait phase is emitted
          // with explicit timestamps from the recorded submit time.
          obs::Tracer* tracer = work->tracer.get();
          if (tracer != nullptr) {
            obs::Tracer::set_active(tracer);
            obs::TraceEvent qe;
            qe.name = "queue_wait";
            qe.cat = "service";
            qe.iargs.emplace_back("work_id",
                                  static_cast<std::int64_t>(work->work_id));
            tracer->emit_complete(std::move(qe), work->submitted_at, picked);
          }
          const auto run_start = std::chrono::steady_clock::now();
          core::CompileResponse result = pipeline_.compile(work->request);
          const auto run_end = std::chrono::steady_clock::now();
          if (tracer != nullptr) {
            obs::TraceEvent re;
            re.name = "run";
            re.cat = "service";
            re.sargs.emplace_back("status", to_string(result.status));
            tracer->emit_complete(std::move(re), run_start, run_end);
            obs::TraceEvent rq;
            rq.name = "request";
            rq.cat = "service";
            rq.iargs.emplace_back("work_id",
                                  static_cast<std::int64_t>(work->work_id));
            rq.iargs.emplace_back(
                "waiters", static_cast<std::int64_t>(work->waiters.size()));
            rq.sargs.emplace_back("status", to_string(result.status));
            tracer->emit_complete(std::move(rq), work->submitted_at, run_end);
            obs::Tracer::set_active(nullptr);
            publish_trace(*work);
          }
          lock.lock();
          work->running = false;
          // Service admission validated the request, so the pipeline can
          // never reject it here; anything else is a serving-logic bug.
          FEMTO_EXPECTS(result.status != core::RequestStatus::kRejected &&
                        "validated request rejected by pipeline");
          ++stats_.works_run;
          metrics_.works_run.inc();
          const RequestState terminal = to_state(result.status);
          auto response = std::make_shared<const core::CompileResponse>(
              std::move(result));
          finish(work, terminal, response, fire);
        }
      }
      // Fire callbacks off the lock, but stay "busy" until they are done
      // so drain() cannot return with a result write still in flight.
      lock.unlock();
      fire_callbacks(fire);
      lock.lock();
      busy_ = false;
      idle_cv_.notify_all();
    }
  }

  /// Completes a work: every still-live waiter gets the shared response in
  /// the work's terminal state. (Service lock held.)
  void finish(const std::shared_ptr<Work>& work, RequestState terminal,
              const std::shared_ptr<const core::CompileResponse>& response,
              std::vector<std::shared_ptr<Ticket>>& fire) {
    erase_inflight(work);
    for (const std::shared_ptr<Ticket>& t : work->waiters)
      (void)terminalize(t, terminal, response, fire);
    work->waiters.clear();
    work->active = 0;
    if (options_.log)
      std::fprintf(stderr, "femtod: work %s -> %s\n",
                   work->request.scenarios.empty()
                       ? "?"
                       : work->request.scenarios.front().name.c_str(),
                   to_string(terminal));
  }

  /// References into the process-global registry (obs/metrics.hpp) under
  /// the stable service.* names; resolved once so the record paths never
  /// touch the registry lock. ServiceStats stays the per-instance view.
  struct Metrics {
    obs::Counter& submitted = obs::registry().counter("service.submitted");
    obs::Counter& coalesced = obs::registry().counter("service.coalesced");
    obs::Counter& done = obs::registry().counter("service.done");
    obs::Counter& cancelled = obs::registry().counter("service.cancelled");
    obs::Counter& deadline_exceeded =
        obs::registry().counter("service.deadline_exceeded");
    obs::Counter& rejected = obs::registry().counter("service.rejected");
    obs::Counter& works_run = obs::registry().counter("service.works_run");
    obs::Counter& plans_served =
        obs::registry().counter("service.plans_served");
    obs::Gauge& queue_depth = obs::registry().gauge("service.queue_depth");
    obs::Gauge& in_flight = obs::registry().gauge("service.in_flight");
    obs::Histogram& request_latency =
        obs::registry().histogram("service.request_latency_s");
    obs::Histogram& queue_wait =
        obs::registry().histogram("service.queue_wait_s");
  };

  ServiceOptions options_;
  core::CompilePipeline pipeline_;
  Metrics metrics_;
  mutable std::mutex mu_;
  std::condition_variable cv_;       // wakes the scheduler
  std::condition_variable idle_cv_;  // wakes drain()
  std::deque<std::shared_ptr<Work>> queue_;
  std::unordered_map<std::string, std::shared_ptr<Work>> inflight_;
  ServiceStats stats_;
  std::uint64_t next_ticket_id_ = 0;
  std::size_t inflight_tickets_ = 0;
  bool draining_ = false;
  bool busy_ = false;
  bool stop_ = false;
  mutable std::mutex trace_mu_;
  std::string last_trace_;
  std::thread scheduler_;
};

// ---------------------------------------------------------------------------
// AF_UNIX JSON-line socket front end.
//
// One line in, one or more lines out. Ops:
//   {"op":"ping"}                          -> {"ok":true,"op":"ping",...}
//   {"op":"stats"}                         -> {"ok":true,"op":"stats",...}
//           (monotonic counters + live queue_depth / in_flight gauges)
//   {"op":"metrics"}                       -> {"ok":true,"op":"metrics",
//                                              "counters":{...},
//                                              "gauges":{...},
//                                              "histograms":{...}}
//           (the full process-global registry, canonical JSON; histograms
//            report count/sum_s/p50_s/p95_s/p99_s)
//   {"op":"trace"}                         -> {"ok":true,"op":"trace",
//                                              "trace":{...chrome trace...}}
//           (span tree of the most recent completed request; error when
//            tracing is disabled or nothing has completed yet)
//   {"op":"compile","id":"r1",
//    "include_circuit":false,
//    "request":{...protocol request...}}   -> ack {"ok":true,"op":"compile",
//                                              "id":"r1","state":...}
//                                          ...later one result line:
//                                          {"op":"result","id":"r1",
//                                           "state":"DONE","coalesced":b,
//                                           "response":{...canonical...}}
//   {"op":"cancel","id":"r1"}              -> {"ok":true,"op":"cancel",...}
//   {"op":"shutdown","mode":"graceful"}    -> ack, then drain + exit run()
//           ("cancel" drops queued work instead of finishing it)
//
// The "response" object is the CANONICAL protocol encoding -- byte-equal to
// encoding the same compile done in-process -- while envelope metadata
// (state, coalesced) stays outside it so bit-identity comparisons work.
// Malformed lines get {"ok":false,"error":...} and the connection lives on.
// A client disconnect cancels its outstanding tickets.
// ---------------------------------------------------------------------------

struct SocketServerOptions {
  std::string socket_path;
  ServiceOptions service;
  bool log = false;
  /// Longest protocol line the daemon will buffer for one connection. A
  /// peer that exceeds it without sending '\n' gets a loud protocol error
  /// and the connection is closed -- a misbehaving client must not be able
  /// to grow an unbounded buffer in the daemon.
  std::size_t max_line_bytes = std::size_t{4} << 20;
};

class SocketServer {
 public:
  explicit SocketServer(SocketServerOptions options)
      : options_(std::move(options)), service_(options_.service) {}

  ~SocketServer() { finish(/*cancel_queued=*/true); }

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds + listens + starts the accept thread. Empty string on success,
  /// diagnostic otherwise.
  [[nodiscard]] std::string start() {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.socket_path.empty() ||
        options_.socket_path.size() >= sizeof(addr.sun_path))
      return "socket path must be 1.." +
             std::to_string(sizeof(addr.sun_path) - 1) + " bytes, got '" +
             options_.socket_path + "'";
    std::memcpy(addr.sun_path, options_.socket_path.c_str(),
                options_.socket_path.size() + 1);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return std::string("socket(): ") + std::strerror(errno);
    ::unlink(options_.socket_path.c_str());
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      const std::string err = std::strerror(errno);
      ::close(listen_fd_);
      listen_fd_ = -1;
      return "bind(" + options_.socket_path + "): " + err;
    }
    if (::listen(listen_fd_, 64) != 0) {
      const std::string err = std::strerror(errno);
      ::close(listen_fd_);
      listen_fd_ = -1;
      return std::string("listen(): ") + err;
    }
    accept_thread_ = std::thread([this] { accept_loop(); });
    return "";
  }

  /// Blocks until a shutdown op arrives (or external_stop() turns true,
  /// polled ~10x/s -- the signal-handler hook), then drains the service and
  /// tears the socket down. Graceful by default: in-flight and queued work
  /// finishes; the "cancel" mode drops queued work.
  void run(const std::function<bool()>& external_stop = {}) {
    {
      std::unique_lock<std::mutex> lock(run_mu_);
      while (!shutdown_requested_) {
        run_cv_.wait_for(lock, std::chrono::milliseconds(100));
        if (external_stop && external_stop()) shutdown_requested_ = true;
      }
    }
    finish(cancel_queued_.load());
  }

  void request_shutdown(bool cancel_queued) {
    cancel_queued_.store(cancel_queued);
    {
      std::lock_guard<std::mutex> g(run_mu_);
      shutdown_requested_ = true;
    }
    run_cv_.notify_all();
  }

  [[nodiscard]] Service& service() { return service_; }
  [[nodiscard]] const std::string& socket_path() const {
    return options_.socket_path;
  }

 private:
  struct Conn {
    int fd = -1;
    std::mutex write_mu;
    std::mutex tickets_mu;
    std::unordered_map<std::string, std::shared_ptr<Ticket>> tickets;
  };

  void finish(bool cancel_queued) {
    {
      std::lock_guard<std::mutex> g(finish_mu_);
      if (finished_) return;
      finished_ = true;
    }
    // Drain FIRST so in-flight results still reach their connections.
    service_.drain(cancel_queued);
    accept_stop_.store(true);
    if (accept_thread_.joinable()) accept_thread_.join();
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      ::unlink(options_.socket_path.c_str());
    }
    std::vector<std::shared_ptr<Conn>> conns;
    std::vector<std::thread> threads;
    {
      std::lock_guard<std::mutex> g(conns_mu_);
      conns.swap(conns_);
      threads.swap(conn_threads_);
    }
    for (const std::shared_ptr<Conn>& c : conns)
      ::shutdown(c->fd, SHUT_RDWR);  // wakes blocked recv()s
    for (std::thread& t : threads) t.join();
  }

  void accept_loop() {
    while (!accept_stop_.load()) {
      pollfd p{listen_fd_, POLLIN, 0};
      const int r = net::poll_retry(&p, 200);
      if (r <= 0) continue;
      const int fd = net::accept_retry(listen_fd_, nullptr, nullptr);
      if (fd < 0) continue;
      if (FEMTO_FAILPOINT("service.accept")) {
        // Injected fault: drop the connection before reading a byte. The
        // client sees EOF / a refused handshake and its retry policy
        // reconnects.
        ::close(fd);
        continue;
      }
      auto conn = std::make_shared<Conn>();
      conn->fd = fd;
      std::lock_guard<std::mutex> g(conns_mu_);
      conns_.push_back(conn);
      conn_threads_.emplace_back([this, conn] { serve(conn); });
    }
  }

  void serve(const std::shared_ptr<Conn>& conn) {
    std::string buffer;
    char chunk[4096];
    for (;;) {
      if (FEMTO_FAILPOINT("service.recv")) {
        // Injected fault: tear the connection down mid-read. Outstanding
        // tickets are cancelled by the disconnect path below; the client
        // reconnects and resubmits.
        ::shutdown(conn->fd, SHUT_RDWR);
        break;
      }
      const ssize_t n = net::recv_retry(conn->fd, chunk, sizeof chunk);
      if (n <= 0) break;
      buffer.append(chunk, static_cast<std::size_t>(n));
      std::size_t start = 0;
      for (;;) {
        const std::size_t nl = buffer.find('\n', start);
        if (nl == std::string::npos) break;
        std::string line = buffer.substr(start, nl - start);
        start = nl + 1;
        if (!line.empty()) handle_line(conn, line);
      }
      buffer.erase(0, start);
      if (buffer.size() > options_.max_line_bytes) {
        // Unbounded-buffer guard: reject loudly, then hang up.
        write_error(conn, "", "",
                    "protocol error: line exceeds " +
                        std::to_string(options_.max_line_bytes) +
                        " bytes without a newline; closing connection");
        if (options_.log)
          std::fprintf(stderr,
                       "femtod: closing connection: %zu buffered bytes "
                       "without a newline (max_line_bytes %zu)\n",
                       buffer.size(), options_.max_line_bytes);
        break;
      }
    }
    // Disconnect = the client walked away: cancel what it was waiting on.
    std::vector<std::shared_ptr<Ticket>> orphans;
    {
      std::lock_guard<std::mutex> g(conn->tickets_mu);
      for (auto& [id, t] : conn->tickets) orphans.push_back(t);
      conn->tickets.clear();
    }
    for (const std::shared_ptr<Ticket>& t : orphans)
      if (!t->terminal()) service_.cancel(t);
    ::close(conn->fd);
  }

  void write_line(const std::shared_ptr<Conn>& conn, std::string line) {
    line += '\n';
    std::lock_guard<std::mutex> g(conn->write_mu);
    std::size_t off = 0;
    while (off < line.size()) {
      const ssize_t n = net::send_retry(conn->fd, line.data() + off,
                                        line.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return;  // peer gone; the disconnect path cleans up
      off += static_cast<std::size_t>(n);
    }
  }

  void write_error(const std::shared_ptr<Conn>& conn, const std::string& op,
                   const std::string& id, const std::string& why) {
    json::Value v = json::Value::object();
    v.set("ok", json::Value::boolean(false));
    if (!op.empty()) v.set("op", json::Value::string(op));
    if (!id.empty()) v.set("id", json::Value::string(id));
    v.set("error", json::Value::string(why));
    write_line(conn, v.encode());
  }

  void handle_line(const std::shared_ptr<Conn>& conn,
                   const std::string& line) {
    std::string err;
    const std::optional<json::Value> parsed = json::parse(line, &err);
    if (!parsed.has_value() || !parsed->is_object()) {
      write_error(conn, "", "",
                  parsed.has_value() ? "request must be a JSON object"
                                     : "parse error: " + err);
      return;
    }
    const json::Value& msg = *parsed;
    const json::Value* op_field = msg.find("op");
    if (op_field == nullptr || !op_field->is_string()) {
      write_error(conn, "", "", "missing string field 'op'");
      return;
    }
    const std::string& op = op_field->as_string();
    if (op == "ping") {
      json::Value v = json::Value::object();
      v.set("ok", json::Value::boolean(true));
      v.set("op", json::Value::string("ping"));
      v.set("server", json::Value::string("femtod"));
      write_line(conn, v.encode());
    } else if (op == "stats") {
      const ServiceStats s = service_.stats();
      json::Value v = json::Value::object();
      v.set("ok", json::Value::boolean(true));
      v.set("op", json::Value::string("stats"));
      v.set("submitted", json::Value::number(s.submitted));
      v.set("coalesced", json::Value::number(s.coalesced));
      v.set("done", json::Value::number(s.done));
      v.set("cancelled", json::Value::number(s.cancelled));
      v.set("deadline_exceeded", json::Value::number(s.deadline_exceeded));
      v.set("rejected", json::Value::number(s.rejected));
      v.set("works_run", json::Value::number(s.works_run));
      v.set("plans_served", json::Value::number(s.plans_served));
      v.set("queue_depth", json::Value::number(
                               static_cast<std::uint64_t>(
                                   service_.queue_depth())));
      v.set("in_flight", json::Value::number(static_cast<std::uint64_t>(
                             service_.in_flight())));
      v.set("workers",
            json::Value::number(service_.pipeline().worker_count()));
      v.set("degraded",
            json::Value::boolean(service_.pipeline().db_degraded()));
      write_line(conn, v.encode());
    } else if (op == "failpoints") {
      // Chaos-run control plane: {"op":"failpoints"} lists the registry;
      // "arm" takes the FEMTO_FAILPOINTS grammar ("name:prob:seed,...");
      // "disarm" takes a single name or "all". Malformed specs are a loud
      // error and arm nothing.
      if (const json::Value* arm = msg.find("arm"); arm != nullptr) {
        if (!arm->is_string()) {
          write_error(conn, "failpoints", "", "'arm' must be a string spec");
          return;
        }
        if (const std::string aerr = fail::registry().arm(arm->as_string());
            !aerr.empty()) {
          write_error(conn, "failpoints", "", aerr);
          return;
        }
      }
      if (const json::Value* disarm = msg.find("disarm");
          disarm != nullptr) {
        if (!disarm->is_string()) {
          write_error(conn, "failpoints", "",
                      "'disarm' must be a failpoint name or \"all\"");
          return;
        }
        if (disarm->as_string() == "all") {
          fail::registry().disarm_all();
        } else if (!fail::registry().disarm(disarm->as_string())) {
          write_error(conn, "failpoints", "",
                      "no armed failpoint named '" + disarm->as_string() +
                          "'");
          return;
        }
      }
      json::Value v = json::Value::object();
      v.set("ok", json::Value::boolean(true));
      v.set("op", json::Value::string("failpoints"));
      json::Value points = json::Value::object();
      for (const fail::FailpointView& fp : fail::registry().snapshot()) {
        json::Value e = json::Value::object();
        e.set("armed", json::Value::boolean(fp.armed));
        e.set("prob", json::Value::number(fp.prob));
        e.set("seed", json::Value::number(fp.seed));
        e.set("evaluations", json::Value::number(fp.evaluations));
        e.set("fires", json::Value::number(fp.fires));
        points.set(fp.name, std::move(e));
      }
      v.set("failpoints", std::move(points));
      write_line(conn, v.encode());
    } else if (op == "metrics") {
      const obs::MetricsSnapshot snap = obs::registry().snapshot();
      json::Value v = json::Value::object();
      v.set("ok", json::Value::boolean(true));
      v.set("op", json::Value::string("metrics"));
      json::Value counters = json::Value::object();
      for (const auto& [name, value] : snap.counters)
        counters.set(name, json::Value::number(value));
      v.set("counters", std::move(counters));
      json::Value gauges = json::Value::object();
      for (const auto& [name, value] : snap.gauges)
        gauges.set(name, json::Value::number(static_cast<double>(value)));
      v.set("gauges", std::move(gauges));
      json::Value histograms = json::Value::object();
      for (const obs::HistogramView& h : snap.histograms) {
        json::Value hv = json::Value::object();
        hv.set("count", json::Value::number(h.count));
        hv.set("sum_s", json::Value::number(h.sum_s));
        hv.set("p50_s", json::Value::number(h.p50_s));
        hv.set("p95_s", json::Value::number(h.p95_s));
        hv.set("p99_s", json::Value::number(h.p99_s));
        histograms.set(h.name, std::move(hv));
      }
      v.set("histograms", std::move(histograms));
      write_line(conn, v.encode());
    } else if (op == "trace") {
      if (!service_.tracing_enabled()) {
        write_error(conn, "trace", "",
                    "tracing disabled: start femtod with --trace-dir (or "
                    "ServiceOptions.trace)");
        return;
      }
      const std::string trace = service_.last_trace();
      if (trace.empty()) {
        write_error(conn, "trace", "",
                    "no trace captured yet: complete a compile first");
        return;
      }
      std::optional<json::Value> parsed = json::parse(trace, &err);
      if (!parsed.has_value()) {
        // The tracer emits valid JSON by construction; surface loudly if
        // that ever breaks instead of relaying garbage.
        write_error(conn, "trace", "", "internal: trace not valid JSON: " + err);
        return;
      }
      json::Value v = json::Value::object();
      v.set("ok", json::Value::boolean(true));
      v.set("op", json::Value::string("trace"));
      v.set("trace", std::move(*parsed));
      write_line(conn, v.encode());
    } else if (op == "compile") {
      const json::Value* id_field = msg.find("id");
      if (id_field == nullptr || !id_field->is_string()) {
        write_error(conn, "compile", "", "missing string field 'id'");
        return;
      }
      const std::string id = id_field->as_string();
      bool include_circuit = false;
      const json::Value* inc = msg.find("include_circuit");
      if (inc != nullptr && inc->is_bool()) include_circuit = inc->as_bool();
      const json::Value* req_field = msg.find("request");
      core::CompileRequest request;
      if (req_field == nullptr ||
          !protocol::decode_request(*req_field, request, err)) {
        write_error(conn, "compile", id,
                    req_field == nullptr ? "missing field 'request'" : err);
        return;
      }
      std::shared_ptr<Ticket> ticket = service_.submit(
          std::move(request),
          [this, conn, id, include_circuit](Ticket& t) {
            json::Value v = json::Value::object();
            v.set("op", json::Value::string("result"));
            v.set("id", json::Value::string(id));
            v.set("state", json::Value::string(to_string(t.state())));
            v.set("coalesced", json::Value::boolean(t.coalesced()));
            v.set("response",
                  protocol::encode_response(protocol::summarize(
                      *t.response(), include_circuit)));
            write_line(conn, v.encode());
          });
      {
        std::lock_guard<std::mutex> g(conn->tickets_mu);
        conn->tickets[id] = ticket;
      }
      json::Value ack = json::Value::object();
      ack.set("ok", json::Value::boolean(true));
      ack.set("op", json::Value::string("compile"));
      ack.set("id", json::Value::string(id));
      ack.set("state", json::Value::string(to_string(ticket->state())));
      ack.set("coalesced", json::Value::boolean(ticket->coalesced()));
      write_line(conn, ack.encode());
    } else if (op == "cancel") {
      const json::Value* id_field = msg.find("id");
      if (id_field == nullptr || !id_field->is_string()) {
        write_error(conn, "cancel", "", "missing string field 'id'");
        return;
      }
      const std::string id = id_field->as_string();
      std::shared_ptr<Ticket> ticket;
      {
        std::lock_guard<std::mutex> g(conn->tickets_mu);
        const auto it = conn->tickets.find(id);
        if (it != conn->tickets.end()) ticket = it->second;
      }
      if (ticket == nullptr) {
        write_error(conn, "cancel", id, "unknown request id");
        return;
      }
      service_.cancel(ticket);
      json::Value v = json::Value::object();
      v.set("ok", json::Value::boolean(true));
      v.set("op", json::Value::string("cancel"));
      v.set("id", json::Value::string(id));
      v.set("state", json::Value::string(to_string(ticket->state())));
      write_line(conn, v.encode());
    } else if (op == "shutdown") {
      std::string mode = "graceful";
      const json::Value* mode_field = msg.find("mode");
      if (mode_field != nullptr && mode_field->is_string())
        mode = mode_field->as_string();
      if (mode != "graceful" && mode != "cancel") {
        write_error(conn, "shutdown", "",
                    "mode must be 'graceful' or 'cancel'");
        return;
      }
      json::Value v = json::Value::object();
      v.set("ok", json::Value::boolean(true));
      v.set("op", json::Value::string("shutdown"));
      v.set("mode", json::Value::string(mode));
      write_line(conn, v.encode());
      request_shutdown(mode == "cancel");
    } else {
      write_error(conn, op, "", "unknown op");
    }
  }

  SocketServerOptions options_;
  Service service_;
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::atomic<bool> accept_stop_{false};
  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Conn>> conns_;
  std::vector<std::thread> conn_threads_;
  std::mutex run_mu_;
  std::condition_variable run_cv_;
  bool shutdown_requested_ = false;
  std::atomic<bool> cancel_queued_{false};
  std::mutex finish_mu_;
  bool finished_ = false;
};

}  // namespace femto::service
