// Client-side plumbing for the femtod socket protocol: a buffered
// line-oriented AF_UNIX connection, a blocking CompileClient that speaks
// the compile/result envelope, and the process helpers the smoke test and
// service bench use to boot a daemon and wait for its socket.
//
// The client deliberately re-encodes the daemon's "response" object with
// the same canonical json::Value encoder the server used, so
// Served::canonical_response is byte-comparable against
// protocol::encode_response(...).encode() of an in-process compile -- that
// byte equality is the serving determinism contract CI pins.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "service/lifecycle.hpp"
#include "service/net.hpp"
#include "service/protocol.hpp"

namespace femto::service {

/// A line-buffered client connection to a femtod socket.
class ClientConnection {
 public:
  ClientConnection() = default;
  ~ClientConnection() { close(); }
  ClientConnection(const ClientConnection&) = delete;
  ClientConnection& operator=(const ClientConnection&) = delete;
  ClientConnection(ClientConnection&& other) noexcept
      : fd_(std::exchange(other.fd_, -1)),
        buffer_(std::move(other.buffer_)),
        max_line_bytes_(other.max_line_bytes_) {}
  ClientConnection& operator=(ClientConnection&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = std::exchange(other.fd_, -1);
      buffer_ = std::move(other.buffer_);
      max_line_bytes_ = other.max_line_bytes_;
    }
    return *this;
  }

  /// Longest reply line the client will buffer before treating the peer as
  /// misbehaving (recv_line fails and the connection closes). Mirrors the
  /// daemon-side SocketServerOptions.max_line_bytes guard.
  void set_max_line_bytes(std::size_t n) { max_line_bytes_ = n; }

  /// Empty string on success, diagnostic otherwise.
  [[nodiscard]] std::string connect(const std::string& socket_path) {
    close();
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path))
      return "socket path too long: " + socket_path;
    std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) return std::string("socket(): ") + std::strerror(errno);
    if (net::connect_retry(fd_, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof(addr)) != 0) {
      const std::string err = std::strerror(errno);
      close();
      return "connect(" + socket_path + "): " + err;
    }
    return "";
  }

  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  void close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
    buffer_.clear();
  }

  [[nodiscard]] bool send_line(const std::string& line) {
    std::string out = line;
    out += '\n';
    std::size_t off = 0;
    while (off < out.size()) {
      const ssize_t n =
          net::send_retry(fd_, out.data() + off, out.size() - off,
                          MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Next newline-terminated line (without the newline); nullopt on EOF,
  /// error, or timeout. timeout_ms < 0 blocks indefinitely.
  [[nodiscard]] std::optional<std::string> recv_line(int timeout_ms = -1) {
    const auto started = std::chrono::steady_clock::now();
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      int wait_ms = -1;
      if (timeout_ms >= 0) {
        const auto elapsed =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - started)
                .count();
        wait_ms = timeout_ms - static_cast<int>(elapsed);
        if (wait_ms < 0) return std::nullopt;
      }
      pollfd p{fd_, POLLIN, 0};
      const int r = net::poll_retry(&p, wait_ms);
      if (r <= 0) return std::nullopt;
      char chunk[4096];
      const ssize_t n = net::recv_retry(fd_, chunk, sizeof chunk);
      if (n <= 0) return std::nullopt;
      buffer_.append(chunk, static_cast<std::size_t>(n));
      if (buffer_.size() > max_line_bytes_ &&
          buffer_.find('\n') == std::string::npos) {
        // Unbounded-buffer guard (client side of the daemon's
        // max_line_bytes): a peer streaming bytes with no newline is
        // misbehaving -- fail loudly and hang up.
        close();
        return std::nullopt;
      }
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
  std::size_t max_line_bytes_ = std::size_t{256} << 20;
};

/// Polls until the daemon's socket accepts a connection (the portable
/// "server is up" signal). Returns the connected client or nullopt.
[[nodiscard]] inline std::optional<ClientConnection> wait_for_server(
    const std::string& socket_path, int timeout_ms = 10000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    ClientConnection conn;
    if (conn.connect(socket_path).empty()) return conn;
    if (std::chrono::steady_clock::now() > deadline) return std::nullopt;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

/// fork+exec a child process (argv[0] is the binary path). Returns the pid
/// or -1.
[[nodiscard]] inline pid_t spawn_process(
    const std::vector<std::string>& argv) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  std::vector<char*> raw;
  raw.reserve(argv.size() + 1);
  for (const std::string& a : argv) raw.push_back(const_cast<char*>(a.c_str()));
  raw.push_back(nullptr);
  ::execv(raw[0], raw.data());
  std::perror("execv");
  ::_exit(127);
}

/// waitpid wrapper: the child's exit code, or -1 on abnormal termination.
[[nodiscard]] inline int wait_process(pid_t pid) {
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) return -1;
  if (!WIFEXITED(status)) return -1;
  return WEXITSTATUS(status);
}

/// What one compile op came back as: the lifecycle terminal state, whether
/// the daemon coalesced it, the decoded response, and the byte-exact
/// canonical encoding of the response object (for bit-identity checks).
struct Served {
  RequestState state = RequestState::kRejected;
  bool coalesced = false;
  protocol::WireResponse response;
  std::string canonical_response;
};

/// Seeded, deterministic exponential-backoff-with-jitter retry schedule.
/// The whole schedule is a pure function of (policy, attempt index), so a
/// chaos run replays the same client timing every time -- and tests can
/// assert the exact delays.
struct RetryPolicy {
  /// Total tries, the first one included. 1 = no retries.
  std::size_t max_attempts = 8;
  double base_delay_s = 0.01;
  double max_delay_s = 1.0;
  /// Fraction of each delay randomized away (0 = fixed schedule). Jitter
  /// shrinks the delay, never grows it, so max_delay_s stays a hard bound.
  double jitter = 0.5;
  /// Seed of the jitter stream; distinct clients should use distinct seeds
  /// so a failed fleet does not retry in lockstep.
  std::uint64_t seed = 0;
};

/// Delay before retry number `retry` (1-based: the delay between attempt
/// `retry` and attempt `retry + 1`).
[[nodiscard]] inline double retry_delay_s(const RetryPolicy& policy,
                                          std::size_t retry) {
  if (retry == 0) return 0.0;
  const std::size_t shift = std::min<std::size_t>(retry - 1, 30);
  const double exp = std::min(
      policy.max_delay_s,
      policy.base_delay_s * static_cast<double>(std::uint64_t{1} << shift));
  const std::uint64_t mixed =
      splitmix64(policy.seed ^ (0x9e3779b97f4a7c15ULL * retry));
  const double u = static_cast<double>(mixed >> 11) * 0x1.0p-53;  // [0, 1)
  return exp * (1.0 - policy.jitter * u);
}

/// A blocking, single-request-at-a-time protocol client.
class CompileClient {
 public:
  explicit CompileClient(ClientConnection conn) : conn_(std::move(conn)) {}

  /// A client that can (re)connect on its own: compile_retry uses
  /// `socket_path` to re-establish the connection after connect failures
  /// and mid-request disconnects, pacing attempts by `policy`.
  CompileClient(std::string socket_path, RetryPolicy policy)
      : socket_path_(std::move(socket_path)), policy_(policy) {}

  [[nodiscard]] ClientConnection& connection() { return conn_; }
  [[nodiscard]] const RetryPolicy& retry_policy() const { return policy_; }

  /// Explicit (re)connect for clients built from a socket path; "" on
  /// success. compile_retry also connects lazily -- this is for ops that
  /// need a live connection up front (ping, stats, failpoints).
  [[nodiscard]] std::string connect() {
    if (conn_.connected()) return "";
    if (socket_path_.empty()) return "no socket path to connect to";
    const std::string err = conn_.connect(socket_path_);
    if (err.empty()) ever_connected_ = true;
    return err;
  }

  [[nodiscard]] bool ping(int timeout_ms = 5000) {
    if (!conn_.send_line(R"({"op":"ping"})")) return false;
    const std::optional<std::string> line = conn_.recv_line(timeout_ms);
    if (!line.has_value()) return false;
    const std::optional<json::Value> msg = json::parse(*line);
    if (!msg.has_value() || !msg->is_object()) return false;
    const json::Value* ok = msg->find("ok");
    return ok != nullptr && ok->is_bool() && ok->as_bool();
  }

  /// Raw stats object, or nullopt on transport/parse failure.
  [[nodiscard]] std::optional<json::Value> stats(int timeout_ms = 5000) {
    return simple_op("stats", timeout_ms);
  }

  /// Full metrics-registry export ({"counters":…,"gauges":…,
  /// "histograms":…} envelope), or nullopt on transport/parse failure or a
  /// server-side error.
  [[nodiscard]] std::optional<json::Value> metrics(int timeout_ms = 5000) {
    std::optional<json::Value> msg = simple_op("metrics", timeout_ms);
    if (!msg.has_value()) return std::nullopt;
    const json::Value* ok = msg->find("ok");
    if (ok == nullptr || !ok->is_bool() || !ok->as_bool())
      return std::nullopt;
    return msg;
  }

  /// The last completed request's Chrome trace-event object (the "trace"
  /// field of the reply), or nullopt when tracing is disabled, nothing has
  /// completed yet, or transport failed. `error` gets the server
  /// diagnostic when one arrived.
  [[nodiscard]] std::optional<json::Value> trace(std::string& error,
                                                int timeout_ms = 5000) {
    std::optional<json::Value> msg = simple_op("trace", timeout_ms);
    if (!msg.has_value()) {
      error = "transport or parse failure";
      return std::nullopt;
    }
    const json::Value* ok = msg->find("ok");
    if (ok == nullptr || !ok->is_bool() || !ok->as_bool()) {
      const json::Value* why = msg->find("error");
      error = why != nullptr && why->is_string() ? why->as_string()
                                                 : "trace op failed";
      return std::nullopt;
    }
    const json::Value* trace = msg->find("trace");
    if (trace == nullptr) {
      error = "trace reply without 'trace' field";
      return std::nullopt;
    }
    return *trace;
  }

  /// Submits one compile and blocks for its result line. The ack and the
  /// result are matched by id, in either order (an immediately-terminal
  /// submission may put the result on the wire first). Error string in
  /// `error` on failure.
  [[nodiscard]] std::optional<Served> compile(
      const core::CompileRequest& request, const std::string& id,
      std::string& error, bool include_circuit = false,
      int timeout_ms = 120000) {
    json::Value msg = json::Value::object();
    msg.set("op", json::Value::string("compile"));
    msg.set("id", json::Value::string(id));
    msg.set("include_circuit", json::Value::boolean(include_circuit));
    msg.set("request", protocol::encode_request(request));
    if (!conn_.send_line(msg.encode())) {
      error = "send failed";
      return std::nullopt;
    }
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    // The ack and the result are written by different server threads, so
    // they arrive in either order; both must be consumed before returning
    // or the leftover line would corrupt the next op on this connection.
    bool ack_seen = false;
    std::optional<Served> result;
    for (;;) {
      if (ack_seen && result.has_value()) return result;
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      if (left.count() <= 0) {
        error = "timed out waiting for result of '" + id + "'";
        return std::nullopt;
      }
      const std::optional<std::string> line =
          conn_.recv_line(static_cast<int>(left.count()));
      if (!line.has_value()) {
        error = "connection closed waiting for result of '" + id + "'";
        return std::nullopt;
      }
      const std::optional<json::Value> reply = json::parse(*line, &error);
      if (!reply.has_value() || !reply->is_object()) {
        error = "unparseable reply: " + *line;
        return std::nullopt;
      }
      const json::Value* op = reply->find("op");
      const json::Value* rid = reply->find("id");
      const bool ours = rid != nullptr && rid->is_string() &&
                        rid->as_string() == id;
      if (op != nullptr && op->is_string() && op->as_string() == "compile") {
        // The ack; a failed ack is the final word on this id.
        const json::Value* ok = reply->find("ok");
        if (ours && ok != nullptr && ok->is_bool() && !ok->as_bool()) {
          const json::Value* why = reply->find("error");
          error = why != nullptr && why->is_string() ? why->as_string()
                                                     : "compile rejected";
          return std::nullopt;
        }
        if (ours) ack_seen = true;
        continue;
      }
      if (op == nullptr || !op->is_string() || op->as_string() != "result" ||
          !ours)
        continue;  // a reply for some other id on a shared connection
      Served served;
      const json::Value* state = reply->find("state");
      if (state != nullptr && state->is_string()) {
        const std::optional<RequestState> parsed_state =
            parse_request_state(state->as_string());
        if (parsed_state.has_value()) served.state = *parsed_state;
      }
      const json::Value* coal = reply->find("coalesced");
      if (coal != nullptr && coal->is_bool())
        served.coalesced = coal->as_bool();
      const json::Value* resp = reply->find("response");
      if (resp == nullptr) {
        error = "result without 'response' field";
        return std::nullopt;
      }
      served.canonical_response = resp->encode();
      if (!protocol::decode_response(*resp, served.response, error))
        return std::nullopt;
      result = std::move(served);
    }
  }

  /// compile() under the client's RetryPolicy. Retried failure classes:
  /// connect failures (daemon down or restarting), queue-full and draining
  /// rejections (the server explicitly asked for back-off), and
  /// mid-request transport faults (disconnect, timeout, torn reply). After
  /// any transport fault the connection is closed and re-established so a
  /// stale line from the dead attempt can never corrupt the next one (the
  /// daemon cancels a disconnected client's tickets). Permanent rejections
  /// (e.g. "invalid request") are returned immediately. Counted in the obs
  /// registry as service.retries / service.reconnects.
  [[nodiscard]] std::optional<Served> compile_retry(
      const core::CompileRequest& request, const std::string& id,
      std::string& error, bool include_circuit = false,
      int timeout_ms = 120000) {
    static obs::Counter& retries =
        obs::registry().counter("service.retries");
    static obs::Counter& reconnects =
        obs::registry().counter("service.reconnects");
    error.clear();
    for (std::size_t attempt = 1; attempt <= policy_.max_attempts;
         ++attempt) {
      if (attempt > 1) {
        retries.inc();
        std::this_thread::sleep_for(std::chrono::duration<double>(
            retry_delay_s(policy_, attempt - 1)));
      }
      if (!conn_.connected()) {
        if (socket_path_.empty()) {
          error = "not connected and no socket path to reconnect to";
          return std::nullopt;
        }
        if (const std::string cerr = conn_.connect(socket_path_);
            !cerr.empty()) {
          error = cerr;
          continue;
        }
        if (ever_connected_) reconnects.inc();
        ever_connected_ = true;
      }
      std::string aerr;
      std::optional<Served> served =
          compile(request, id, aerr, include_circuit, timeout_ms);
      if (!served.has_value()) {
        // Transport fault or a failed ack: either way this connection's
        // state is unknown -- drop it and retry on a fresh one.
        error = aerr;
        conn_.close();
        continue;
      }
      if (served->state == RequestState::kRejected &&
          retryable_rejection(served->response.detail)) {
        // The server asked for back-off; the connection itself is healthy.
        error = served->response.detail;
        continue;
      }
      return served;
    }
    error = "gave up after " + std::to_string(policy_.max_attempts) +
            " attempts: " + error;
    return std::nullopt;
  }

  /// The `failpoints` chaos control op: lists the daemon's failpoint
  /// registry; non-empty `arm` ("name:prob:seed,...") arms first,
  /// non-empty `disarm` (a name or "all") disarms. nullopt + `error` on
  /// transport failure or a rejected spec.
  [[nodiscard]] std::optional<json::Value> failpoints(
      const std::string& arm, const std::string& disarm, std::string& error,
      int timeout_ms = 5000) {
    json::Value msg = json::Value::object();
    msg.set("op", json::Value::string("failpoints"));
    if (!arm.empty()) msg.set("arm", json::Value::string(arm));
    if (!disarm.empty()) msg.set("disarm", json::Value::string(disarm));
    if (!conn_.send_line(msg.encode())) {
      error = "send failed";
      return std::nullopt;
    }
    const std::optional<std::string> line = conn_.recv_line(timeout_ms);
    if (!line.has_value()) {
      error = "connection closed waiting for failpoints reply";
      return std::nullopt;
    }
    std::optional<json::Value> reply = json::parse(*line, &error);
    if (!reply.has_value() || !reply->is_object()) {
      error = "unparseable reply: " + *line;
      return std::nullopt;
    }
    const json::Value* ok = reply->find("ok");
    if (ok == nullptr || !ok->is_bool() || !ok->as_bool()) {
      const json::Value* why = reply->find("error");
      error = why != nullptr && why->is_string() ? why->as_string()
                                                 : "failpoints op failed";
      return std::nullopt;
    }
    return reply;
  }

  /// Graceful (or cancelling) shutdown handshake.
  [[nodiscard]] bool shutdown(bool cancel_queued = false,
                              int timeout_ms = 5000) {
    json::Value msg = json::Value::object();
    msg.set("op", json::Value::string("shutdown"));
    msg.set("mode",
            json::Value::string(cancel_queued ? "cancel" : "graceful"));
    if (!conn_.send_line(msg.encode())) return false;
    const std::optional<std::string> line = conn_.recv_line(timeout_ms);
    if (!line.has_value()) return false;
    const std::optional<json::Value> reply = json::parse(*line);
    if (!reply.has_value() || !reply->is_object()) return false;
    const json::Value* ok = reply->find("ok");
    return ok != nullptr && ok->is_bool() && ok->as_bool();
  }

 private:
  /// One-line request / one-line object reply ops (stats, metrics, trace).
  [[nodiscard]] std::optional<json::Value> simple_op(const std::string& op,
                                                     int timeout_ms) {
    if (!conn_.send_line("{\"op\":\"" + op + "\"}")) return std::nullopt;
    const std::optional<std::string> line = conn_.recv_line(timeout_ms);
    if (!line.has_value()) return std::nullopt;
    std::optional<json::Value> msg = json::parse(*line);
    if (!msg.has_value() || !msg->is_object()) return std::nullopt;
    return msg;
  }

  /// Rejections whose detail explicitly invites a retry. Anything else
  /// (e.g. "invalid request: ...") is the caller's bug, not the weather.
  [[nodiscard]] static bool retryable_rejection(const std::string& detail) {
    return detail.rfind("queue full:", 0) == 0 ||
           detail.rfind("service is draining", 0) == 0;
  }

  ClientConnection conn_;
  std::string socket_path_;
  RetryPolicy policy_;
  bool ever_connected_ = false;
};

}  // namespace femto::service
