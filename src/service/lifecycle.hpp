// Explicit request lifecycle for the compilation service.
//
//            +-----------------------------------------+
//            |                                         v
//   QUEUED --+--> ADMITTED --> RUNNING --> DONE     REJECTED
//      |             |            |
//      |             |            +------> CANCELLED
//      |             +------------+------> DEADLINE_EXCEEDED
//      +----------------------------------^   (either)
//
// The machine is a whitelist: transition_allowed() enumerates every legal
// edge and EVERYTHING else is forbidden -- including self-transitions and
// any move out of a terminal state. RequestLifecycle::advance() asserts on
// a forbidden edge (a forbidden transition is a serving-logic bug, never a
// client-input condition), while try_advance() reports it, which is what
// the exhaustive 7x7 forbidden-transition test drives.
//
// Semantics of the edges:
//  * QUEUED -> ADMITTED        scheduler picked the request up
//  * QUEUED -> REJECTED        admission control refused it (invalid
//                              request, full queue, draining server);
//                              REJECTED is reachable from QUEUED ONLY --
//                              once admitted, a request can no longer be
//                              refused, it can only finish or be stopped
//  * QUEUED/ADMITTED -> CANCELLED / DEADLINE_EXCEEDED
//                              stopped before any work ran
//  * ADMITTED -> RUNNING       handed to the pipeline
//  * RUNNING -> DONE           every restart job completed
//  * RUNNING -> CANCELLED      cooperative cancel observed at a restart
//                              boundary (or the client detached mid-run)
//  * RUNNING -> DEADLINE_EXCEEDED
//                              wall-clock budget expired mid-request
#pragma once

#include <optional>
#include <string_view>

#include "common/assert.hpp"
#include "core/pipeline.hpp"

namespace femto::service {

enum class RequestState {
  kQueued = 0,
  kAdmitted,
  kRunning,
  kDone,
  kCancelled,
  kDeadlineExceeded,
  kRejected,
};

inline constexpr int kRequestStateCount = 7;

[[nodiscard]] constexpr const char* to_string(RequestState s) {
  switch (s) {
    case RequestState::kQueued: return "QUEUED";
    case RequestState::kAdmitted: return "ADMITTED";
    case RequestState::kRunning: return "RUNNING";
    case RequestState::kDone: return "DONE";
    case RequestState::kCancelled: return "CANCELLED";
    case RequestState::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case RequestState::kRejected: return "REJECTED";
  }
  return "?";
}

[[nodiscard]] inline std::optional<RequestState> parse_request_state(
    std::string_view s) {
  for (int i = 0; i < kRequestStateCount; ++i) {
    const auto state = static_cast<RequestState>(i);
    if (s == to_string(state)) return state;
  }
  return std::nullopt;
}

[[nodiscard]] constexpr bool is_terminal(RequestState s) {
  return s == RequestState::kDone || s == RequestState::kCancelled ||
         s == RequestState::kDeadlineExceeded || s == RequestState::kRejected;
}

/// The whole machine: every edge NOT listed here is forbidden.
[[nodiscard]] constexpr bool transition_allowed(RequestState from,
                                                RequestState to) {
  switch (from) {
    case RequestState::kQueued:
      return to == RequestState::kAdmitted || to == RequestState::kRejected ||
             to == RequestState::kCancelled ||
             to == RequestState::kDeadlineExceeded;
    case RequestState::kAdmitted:
      return to == RequestState::kRunning ||
             to == RequestState::kCancelled ||
             to == RequestState::kDeadlineExceeded;
    case RequestState::kRunning:
      return to == RequestState::kDone || to == RequestState::kCancelled ||
             to == RequestState::kDeadlineExceeded;
    case RequestState::kDone:
    case RequestState::kCancelled:
    case RequestState::kDeadlineExceeded:
    case RequestState::kRejected:
      return false;  // terminal states absorb
  }
  return false;
}

/// The terminal state a pipeline disposition maps onto. kRejected from the
/// pipeline is only reachable for requests that SKIPPED service admission
/// (the service validates before queueing), so the scheduler asserts it
/// never sees one.
[[nodiscard]] constexpr RequestState to_state(core::RequestStatus s) {
  switch (s) {
    case core::RequestStatus::kDone: return RequestState::kDone;
    case core::RequestStatus::kCancelled: return RequestState::kCancelled;
    case core::RequestStatus::kDeadlineExceeded:
      return RequestState::kDeadlineExceeded;
    case core::RequestStatus::kRejected: return RequestState::kRejected;
  }
  return RequestState::kRejected;
}

/// One request's state, advancing only along whitelisted edges.
class RequestLifecycle {
 public:
  [[nodiscard]] RequestState state() const { return state_; }
  [[nodiscard]] bool terminal() const { return is_terminal(state_); }

  /// False (and no change) on a forbidden edge.
  [[nodiscard]] bool try_advance(RequestState to) {
    if (!transition_allowed(state_, to)) return false;
    state_ = to;
    return true;
  }

  /// Asserting form for serving code: a forbidden edge is a logic bug.
  void advance(RequestState to) {
    FEMTO_EXPECTS(transition_allowed(state_, to) &&
                  "forbidden request-lifecycle transition");
    state_ = to;
  }

 private:
  RequestState state_ = RequestState::kQueued;
};

}  // namespace femto::service
