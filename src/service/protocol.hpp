// THE canonical scenario/request/result serialization for the compilation
// service -- shared by femtod, femto_client, femto-db, and the benches, so
// there is exactly one wire shape for a compile in the whole tree.
//
// Canonical means: encode builds every object in one fixed field order with
// json.hpp's deterministic scalar rendering, so value equality == byte
// equality of the encodings. Three things lean on that:
//  * the coalescing key (coalesce_key) -- identical in-flight requests are
//    detected by comparing encoded bytes;
//  * the bit-identity CI pins -- a daemon-served response must encode to
//    exactly the same bytes as the in-process compile of the same request;
//  * round-trip tests -- decode(encode(x)) re-encodes to encode(x).
//
// Every decode_* is total: any malformed input (wrong type, unknown enum,
// out-of-range number, garbage bytes) comes back as `false` + diagnostic,
// never an abort -- protocol input is untrusted by definition.
//
// Wire shapes (all one JSON line each):
//   term       ["s",p,r,mp2] | ["d",p,q,r,s,mp2]
//   coupling   null | {"n":5,"edges":[[0,1],[1,2]]}
//   target     {"name":..,"entangler":"cnot"|"xx","allow_routing":..,
//               "routing_weight":..,"coupling":..}
//   options    {"transform":"jw"|"bk"|"gt"|"advanced","sorting":..,
//               "compression":..,"coloring_orders":..,"sa":{..},"pso":{..},
//               "gtsp":{..},"seed":..,"emit_circuit":..,"target":..}
//   scenario   {"name":..,"num_qubits":..,"terms":[..],"options":..}
//   request    {"scenarios":[..],"targets":[..],"restarts":..,
//               "seed":null|u64,"deadline_s":..,"verify":..}
//   response   {"status":"DONE"|..,"detail":..,"outcomes":[outcome..]}
//   outcome    {"scenario":..,"target":..,"model_cnots":..,
//               "emitted_cnots":..,"model_cost":..,"device_cost":..,
//               "routed_swaps":..,"best_restart":..,"restarts_completed":..,
//               "verified":null|bool,"restarts":[restart..],
//               "circuit":null|hex}
//   restart    {"seed":..,"model_cnots":..,"model_cost":..,
//               "device_cost":..,"completed":..}
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/pipeline.hpp"
#include "db/database.hpp"
#include "service/json.hpp"

namespace femto::service::protocol {

// --- enum <-> string maps ---------------------------------------------------

[[nodiscard]] inline const char* to_string(core::TransformKind k) {
  switch (k) {
    case core::TransformKind::kJordanWigner: return "jw";
    case core::TransformKind::kBravyiKitaev: return "bk";
    case core::TransformKind::kBaselineGT: return "gt";
    case core::TransformKind::kAdvanced: return "advanced";
  }
  return "?";
}

[[nodiscard]] inline std::optional<core::TransformKind> parse_transform(
    std::string_view s) {
  if (s == "jw") return core::TransformKind::kJordanWigner;
  if (s == "bk") return core::TransformKind::kBravyiKitaev;
  if (s == "gt") return core::TransformKind::kBaselineGT;
  if (s == "advanced") return core::TransformKind::kAdvanced;
  return std::nullopt;
}

[[nodiscard]] inline const char* to_string(core::SortingMode m) {
  switch (m) {
    case core::SortingMode::kNone: return "none";
    case core::SortingMode::kBaseline: return "baseline";
    case core::SortingMode::kAdvanced: return "advanced";
  }
  return "?";
}

[[nodiscard]] inline std::optional<core::SortingMode> parse_sorting(
    std::string_view s) {
  if (s == "none") return core::SortingMode::kNone;
  if (s == "baseline") return core::SortingMode::kBaseline;
  if (s == "advanced") return core::SortingMode::kAdvanced;
  return std::nullopt;
}

[[nodiscard]] inline const char* to_string(core::CompressionMode m) {
  switch (m) {
    case core::CompressionMode::kNone: return "none";
    case core::CompressionMode::kBosonicOnly: return "bosonic";
    case core::CompressionMode::kHybrid: return "hybrid";
  }
  return "?";
}

[[nodiscard]] inline std::optional<core::CompressionMode> parse_compression(
    std::string_view s) {
  if (s == "none") return core::CompressionMode::kNone;
  if (s == "bosonic") return core::CompressionMode::kBosonicOnly;
  if (s == "hybrid") return core::CompressionMode::kHybrid;
  return std::nullopt;
}

// (to_string(synth::EntanglerKind) already emits the wire spelling
// "cnot"/"xx" -- see synth/target.hpp; found here via ADL.)

[[nodiscard]] inline std::optional<synth::EntanglerKind> parse_entangler(
    std::string_view s) {
  if (s == "cnot") return synth::EntanglerKind::kCnot;
  if (s == "xx") return synth::EntanglerKind::kXX;
  return std::nullopt;
}

// --- hex (circuit payloads on the wire) -------------------------------------

[[nodiscard]] inline std::string encode_hex(std::string_view bytes) {
  constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const char c : bytes) {
    const auto u = static_cast<unsigned char>(c);
    out += kHex[u >> 4];
    out += kHex[u & 0xf];
  }
  return out;
}

[[nodiscard]] inline std::optional<std::string> decode_hex(
    std::string_view hex) {
  if (hex.size() % 2 != 0) return std::nullopt;
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  std::string out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out += static_cast<char>((hi << 4) | lo);
  }
  return out;
}

// --- decode plumbing ---------------------------------------------------------

namespace detail {

[[nodiscard]] inline bool fail(std::string& err, std::string msg) {
  err = std::move(msg);
  return false;
}

[[nodiscard]] inline bool get_object(const json::Value& v,
                                     std::string_view what, std::string& err) {
  if (v.is_object()) return true;
  return fail(err, std::string(what) + " must be a JSON object");
}

[[nodiscard]] inline bool read_bool(const json::Value& obj,
                                    std::string_view key, bool& out,
                                    std::string& err) {
  const json::Value* v = obj.find(key);
  if (v == nullptr) return true;  // keep default
  if (!v->is_bool())
    return fail(err, "field '" + std::string(key) + "' must be a boolean");
  out = v->as_bool();
  return true;
}

[[nodiscard]] inline bool read_int(const json::Value& obj,
                                   std::string_view key, int& out,
                                   std::string& err) {
  const json::Value* v = obj.find(key);
  if (v == nullptr) return true;
  const std::optional<int> n = v->as_int();
  if (!n.has_value())
    return fail(err, "field '" + std::string(key) + "' must be an integer");
  out = *n;
  return true;
}

[[nodiscard]] inline bool read_u64(const json::Value& obj,
                                   std::string_view key, std::uint64_t& out,
                                   std::string& err) {
  const json::Value* v = obj.find(key);
  if (v == nullptr) return true;
  const std::optional<std::uint64_t> n = v->as_u64();
  if (!n.has_value())
    return fail(err, "field '" + std::string(key) +
                         "' must be a non-negative integer");
  out = *n;
  return true;
}

[[nodiscard]] inline bool read_size(const json::Value& obj,
                                    std::string_view key, std::size_t& out,
                                    std::string& err) {
  std::uint64_t u = out;
  if (!read_u64(obj, key, u, err)) return false;
  out = static_cast<std::size_t>(u);
  return true;
}

[[nodiscard]] inline bool read_double(const json::Value& obj,
                                      std::string_view key, double& out,
                                      std::string& err) {
  const json::Value* v = obj.find(key);
  if (v == nullptr) return true;
  if (!v->is_number())
    return fail(err, "field '" + std::string(key) + "' must be a number");
  out = v->as_double();
  return true;
}

[[nodiscard]] inline bool read_string(const json::Value& obj,
                                      std::string_view key, std::string& out,
                                      std::string& err) {
  const json::Value* v = obj.find(key);
  if (v == nullptr) return true;
  if (!v->is_string())
    return fail(err, "field '" + std::string(key) + "' must be a string");
  out = v->as_string();
  return true;
}

}  // namespace detail

// --- terms -------------------------------------------------------------------

[[nodiscard]] inline json::Value encode_term(const fermion::ExcitationTerm& t) {
  json::Value v = json::Value::array();
  if (t.kind == fermion::ExcitationTerm::Kind::kSingle) {
    v.push(json::Value::string("s"));
    v.push(json::Value::number(t.p));
    v.push(json::Value::number(t.r));
  } else {
    v.push(json::Value::string("d"));
    v.push(json::Value::number(t.p));
    v.push(json::Value::number(t.q));
    v.push(json::Value::number(t.r));
    v.push(json::Value::number(t.s));
  }
  v.push(json::Value::number(t.mp2_estimate));
  return v;
}

[[nodiscard]] inline bool decode_term(const json::Value& v,
                                      fermion::ExcitationTerm& out,
                                      std::string& err) {
  if (!v.is_array() || v.items().empty() || !v.items()[0].is_string())
    return detail::fail(err, "term must be [\"s\"|\"d\", indices..., mp2]");
  const std::string& kind = v.items()[0].as_string();
  auto index = [&](std::size_t i, std::size_t& slot) {
    const std::optional<std::uint64_t> n = v.items()[i].as_u64();
    if (!n.has_value()) return false;
    slot = static_cast<std::size_t>(*n);
    return true;
  };
  out = fermion::ExcitationTerm{};
  if (kind == "s") {
    if (v.items().size() != 4 || !v.items()[3].is_number())
      return detail::fail(err, "single term must be [\"s\",p,r,mp2]");
    out.kind = fermion::ExcitationTerm::Kind::kSingle;
    if (!index(1, out.p) || !index(2, out.r))
      return detail::fail(err, "single term indices must be integers");
    out.mp2_estimate = v.items()[3].as_double();
    return true;
  }
  if (kind == "d") {
    if (v.items().size() != 6 || !v.items()[5].is_number())
      return detail::fail(err, "double term must be [\"d\",p,q,r,s,mp2]");
    out.kind = fermion::ExcitationTerm::Kind::kDouble;
    if (!index(1, out.p) || !index(2, out.q) || !index(3, out.r) ||
        !index(4, out.s))
      return detail::fail(err, "double term indices must be integers");
    out.mp2_estimate = v.items()[5].as_double();
    return true;
  }
  return detail::fail(err, "unknown term kind '" + kind + "'");
}

// --- hardware target ---------------------------------------------------------

[[nodiscard]] inline json::Value encode_target(
    const synth::HardwareTarget& t) {
  json::Value v = json::Value::object();
  v.set("name", json::Value::string(t.name));
  v.set("entangler", json::Value::string(to_string(t.entangler)));
  v.set("allow_routing", json::Value::boolean(t.allow_routing));
  v.set("routing_weight", json::Value::number(t.routing_weight));
  if (t.coupling.constrained()) {
    json::Value c = json::Value::object();
    c.set("n", json::Value::number(t.coupling.num_qubits()));
    json::Value edges = json::Value::array();
    for (const auto& [a, b] : t.coupling.edges()) {
      json::Value e = json::Value::array();
      e.push(json::Value::number(a));
      e.push(json::Value::number(b));
      edges.push(std::move(e));
    }
    c.set("edges", std::move(edges));
    v.set("coupling", std::move(c));
  } else {
    v.set("coupling", json::Value());
  }
  return v;
}

[[nodiscard]] inline bool decode_target(const json::Value& v,
                                        synth::HardwareTarget& out,
                                        std::string& err) {
  if (!detail::get_object(v, "target", err)) return false;
  out = synth::HardwareTarget{};
  if (!detail::read_string(v, "name", out.name, err)) return false;
  std::string entangler = to_string(out.entangler);
  if (!detail::read_string(v, "entangler", entangler, err)) return false;
  const std::optional<synth::EntanglerKind> ek = parse_entangler(entangler);
  if (!ek.has_value())
    return detail::fail(err, "unknown entangler '" + entangler + "'");
  out.entangler = *ek;
  if (!detail::read_bool(v, "allow_routing", out.allow_routing, err))
    return false;
  if (!detail::read_int(v, "routing_weight", out.routing_weight, err))
    return false;
  const json::Value* coupling = v.find("coupling");
  if (coupling != nullptr && !coupling->is_null()) {
    if (!detail::get_object(*coupling, "coupling", err)) return false;
    std::size_t n = 0;
    if (!detail::read_size(*coupling, "n", n, err)) return false;
    if (n == 0)
      return detail::fail(err, "coupling.n must be a positive integer");
    const json::Value* edges = coupling->find("edges");
    if (edges == nullptr || !edges->is_array())
      return detail::fail(err, "coupling.edges must be an array");
    std::vector<std::pair<std::size_t, std::size_t>> pairs;
    pairs.reserve(edges->items().size());
    for (const json::Value& e : edges->items()) {
      if (!e.is_array() || e.items().size() != 2)
        return detail::fail(err, "coupling edge must be [a,b]");
      const std::optional<std::uint64_t> a = e.items()[0].as_u64();
      const std::optional<std::uint64_t> b = e.items()[1].as_u64();
      if (!a.has_value() || !b.has_value() || *a >= n || *b >= n || *a == *b)
        return detail::fail(err, "coupling edge endpoints must be distinct "
                                 "qubit indices below n");
      pairs.emplace_back(static_cast<std::size_t>(*a),
                         static_cast<std::size_t>(*b));
    }
    out.coupling = circuit::CouplingMap(n, std::move(pairs));
  }
  return true;
}

// --- compile options ---------------------------------------------------------

[[nodiscard]] inline json::Value encode_options(
    const core::CompileOptions& o) {
  json::Value v = json::Value::object();
  v.set("transform", json::Value::string(to_string(o.transform)));
  v.set("sorting", json::Value::string(to_string(o.sorting)));
  v.set("compression", json::Value::string(to_string(o.compression)));
  v.set("coloring_orders", json::Value::number(o.coloring_orders));
  json::Value sa = json::Value::object();
  sa.set("t_initial", json::Value::number(o.sa_options.t_initial));
  sa.set("t_final", json::Value::number(o.sa_options.t_final));
  sa.set("steps", json::Value::number(o.sa_options.steps));
  sa.set("reheat_interval", json::Value::number(o.sa_options.reheat_interval));
  v.set("sa", std::move(sa));
  json::Value pso = json::Value::object();
  pso.set("particles", json::Value::number(o.pso_options.particles));
  pso.set("iterations", json::Value::number(o.pso_options.iterations));
  pso.set("inertia", json::Value::number(o.pso_options.inertia));
  pso.set("cognitive", json::Value::number(o.pso_options.cognitive));
  pso.set("social", json::Value::number(o.pso_options.social));
  pso.set("v_clamp", json::Value::number(o.pso_options.v_clamp));
  v.set("pso", std::move(pso));
  json::Value gtsp = json::Value::object();
  gtsp.set("population", json::Value::number(o.gtsp_options.population));
  gtsp.set("generations", json::Value::number(o.gtsp_options.generations));
  gtsp.set("tournament", json::Value::number(o.gtsp_options.tournament));
  gtsp.set("mutation_rate",
           json::Value::number(o.gtsp_options.mutation_rate));
  gtsp.set("stagnation_limit",
           json::Value::number(o.gtsp_options.stagnation_limit));
  v.set("gtsp", std::move(gtsp));
  v.set("seed", json::Value::number(o.seed));
  v.set("emit_circuit", json::Value::boolean(o.emit_circuit));
  v.set("target", encode_target(o.target));
  return v;
}

[[nodiscard]] inline bool decode_options(const json::Value& v,
                                         core::CompileOptions& out,
                                         std::string& err) {
  if (!detail::get_object(v, "options", err)) return false;
  out = core::CompileOptions{};
  std::string transform = to_string(out.transform);
  std::string sorting = to_string(out.sorting);
  std::string compression = to_string(out.compression);
  if (!detail::read_string(v, "transform", transform, err)) return false;
  if (!detail::read_string(v, "sorting", sorting, err)) return false;
  if (!detail::read_string(v, "compression", compression, err)) return false;
  const std::optional<core::TransformKind> tk = parse_transform(transform);
  if (!tk.has_value())
    return detail::fail(err, "unknown transform '" + transform + "'");
  out.transform = *tk;
  const std::optional<core::SortingMode> sm = parse_sorting(sorting);
  if (!sm.has_value())
    return detail::fail(err, "unknown sorting '" + sorting + "'");
  out.sorting = *sm;
  const std::optional<core::CompressionMode> cm =
      parse_compression(compression);
  if (!cm.has_value())
    return detail::fail(err, "unknown compression '" + compression + "'");
  out.compression = *cm;
  if (!detail::read_int(v, "coloring_orders", out.coloring_orders, err))
    return false;
  if (const json::Value* sa = v.find("sa"); sa != nullptr) {
    if (!detail::get_object(*sa, "sa", err)) return false;
    if (!detail::read_double(*sa, "t_initial", out.sa_options.t_initial,
                             err) ||
        !detail::read_double(*sa, "t_final", out.sa_options.t_final, err) ||
        !detail::read_int(*sa, "steps", out.sa_options.steps, err) ||
        !detail::read_int(*sa, "reheat_interval",
                          out.sa_options.reheat_interval, err))
      return false;
  }
  if (const json::Value* pso = v.find("pso"); pso != nullptr) {
    if (!detail::get_object(*pso, "pso", err)) return false;
    if (!detail::read_int(*pso, "particles", out.pso_options.particles,
                          err) ||
        !detail::read_int(*pso, "iterations", out.pso_options.iterations,
                          err) ||
        !detail::read_double(*pso, "inertia", out.pso_options.inertia, err) ||
        !detail::read_double(*pso, "cognitive", out.pso_options.cognitive,
                             err) ||
        !detail::read_double(*pso, "social", out.pso_options.social, err) ||
        !detail::read_double(*pso, "v_clamp", out.pso_options.v_clamp, err))
      return false;
  }
  if (const json::Value* gtsp = v.find("gtsp"); gtsp != nullptr) {
    if (!detail::get_object(*gtsp, "gtsp", err)) return false;
    if (!detail::read_int(*gtsp, "population", out.gtsp_options.population,
                          err) ||
        !detail::read_int(*gtsp, "generations",
                          out.gtsp_options.generations, err) ||
        !detail::read_int(*gtsp, "tournament", out.gtsp_options.tournament,
                          err) ||
        !detail::read_double(*gtsp, "mutation_rate",
                             out.gtsp_options.mutation_rate, err) ||
        !detail::read_int(*gtsp, "stagnation_limit",
                          out.gtsp_options.stagnation_limit, err))
      return false;
  }
  if (!detail::read_u64(v, "seed", out.seed, err)) return false;
  if (!detail::read_bool(v, "emit_circuit", out.emit_circuit, err))
    return false;
  if (const json::Value* target = v.find("target"); target != nullptr) {
    if (!decode_target(*target, out.target, err)) return false;
  }
  return true;
}

// --- scenario ----------------------------------------------------------------

[[nodiscard]] inline json::Value encode_scenario(
    const core::CompileScenario& s) {
  json::Value v = json::Value::object();
  v.set("name", json::Value::string(s.name));
  v.set("num_qubits", json::Value::number(s.num_qubits));
  json::Value terms = json::Value::array();
  for (const fermion::ExcitationTerm& t : s.terms)
    terms.push(encode_term(t));
  v.set("terms", std::move(terms));
  v.set("options", encode_options(s.options));
  return v;
}

[[nodiscard]] inline bool decode_scenario(const json::Value& v,
                                          core::CompileScenario& out,
                                          std::string& err) {
  if (!detail::get_object(v, "scenario", err)) return false;
  out = core::CompileScenario{};
  if (!detail::read_string(v, "name", out.name, err)) return false;
  if (!detail::read_size(v, "num_qubits", out.num_qubits, err)) return false;
  const json::Value* terms = v.find("terms");
  if (terms == nullptr || !terms->is_array())
    return detail::fail(err, "scenario.terms must be an array");
  out.terms.reserve(terms->items().size());
  for (const json::Value& t : terms->items()) {
    fermion::ExcitationTerm term;
    if (!decode_term(t, term, err)) return false;
    out.terms.push_back(term);
  }
  if (const json::Value* options = v.find("options"); options != nullptr) {
    if (!decode_options(*options, out.options, err)) return false;
  }
  return true;
}

// --- request -----------------------------------------------------------------

[[nodiscard]] inline json::Value encode_request(
    const core::CompileRequest& r) {
  json::Value v = json::Value::object();
  json::Value scenarios = json::Value::array();
  for (const core::CompileScenario& s : r.scenarios)
    scenarios.push(encode_scenario(s));
  v.set("scenarios", std::move(scenarios));
  json::Value targets = json::Value::array();
  for (const synth::HardwareTarget& t : r.targets)
    targets.push(encode_target(t));
  v.set("targets", std::move(targets));
  v.set("restarts", json::Value::number(r.restarts));
  v.set("seed", r.seed.has_value() ? json::Value::number(*r.seed)
                                   : json::Value());
  v.set("deadline_s", json::Value::number(r.deadline_s));
  v.set("verify", json::Value::boolean(r.verify));
  return v;
}

[[nodiscard]] inline bool decode_request(const json::Value& v,
                                         core::CompileRequest& out,
                                         std::string& err) {
  if (!detail::get_object(v, "request", err)) return false;
  out = core::CompileRequest{};
  const json::Value* scenarios = v.find("scenarios");
  if (scenarios == nullptr || !scenarios->is_array())
    return detail::fail(err, "request.scenarios must be an array");
  out.scenarios.reserve(scenarios->items().size());
  for (const json::Value& s : scenarios->items()) {
    core::CompileScenario scenario;
    if (!decode_scenario(s, scenario, err)) return false;
    out.scenarios.push_back(std::move(scenario));
  }
  if (const json::Value* targets = v.find("targets"); targets != nullptr) {
    if (!targets->is_array())
      return detail::fail(err, "request.targets must be an array");
    out.targets.reserve(targets->items().size());
    for (const json::Value& t : targets->items()) {
      synth::HardwareTarget target;
      if (!decode_target(t, target, err)) return false;
      out.targets.push_back(std::move(target));
    }
  }
  if (!detail::read_size(v, "restarts", out.restarts, err)) return false;
  if (const json::Value* seed = v.find("seed");
      seed != nullptr && !seed->is_null()) {
    const std::optional<std::uint64_t> s = seed->as_u64();
    if (!s.has_value())
      return detail::fail(err,
                          "request.seed must be null or a non-negative "
                          "integer");
    out.seed = *s;
  }
  if (!detail::read_double(v, "deadline_s", out.deadline_s, err))
    return false;
  if (!detail::read_bool(v, "verify", out.verify, err)) return false;
  return true;
}

/// The canonical in-flight identity of a request: its encoding with the
/// budget fields zeroed, so N clients asking for the same compile under
/// different deadlines coalesce onto one execution (which runs under the
/// LEADER's deadline -- documented service semantics).
[[nodiscard]] inline std::string coalesce_key(const core::CompileRequest& r) {
  core::CompileRequest keyed = r;
  keyed.deadline_s = 0.0;
  keyed.cancel = nullptr;
  keyed.deadline_at.reset();
  return encode_request(keyed).encode();
}

// --- response ----------------------------------------------------------------

struct WireRestart {
  std::uint64_t seed = 0;
  int model_cnots = 0;
  int model_cost = 0;
  int device_cost = 0;
  bool completed = true;
};

struct WireOutcome {
  std::string scenario;
  std::string target;
  int model_cnots = 0;
  int emitted_cnots = 0;
  int model_cost = 0;
  int device_cost = 0;
  int routed_swaps = 0;
  std::size_t best_restart = 0;
  std::size_t restarts_completed = 0;
  /// nullopt = verification was not requested.
  std::optional<bool> verified;
  std::vector<WireRestart> restarts;
  /// Hex of db::detail::encode_circuit(final circuit); empty = not shipped.
  std::string circuit_hex;
};

struct WireResponse {
  core::RequestStatus status = core::RequestStatus::kDone;
  std::string detail;
  std::vector<WireOutcome> outcomes;
};

[[nodiscard]] inline std::optional<core::RequestStatus> parse_status(
    std::string_view s) {
  for (const core::RequestStatus v :
       {core::RequestStatus::kDone, core::RequestStatus::kCancelled,
        core::RequestStatus::kDeadlineExceeded,
        core::RequestStatus::kRejected})
    if (s == core::to_string(v)) return v;
  return std::nullopt;
}

/// Flattens a pipeline response into its wire form. include_circuits ships
/// each outcome's final (lowered/routed) circuit as hex; the costs and
/// certificates always travel.
[[nodiscard]] inline WireResponse summarize(const core::CompileResponse& r,
                                            bool include_circuits) {
  WireResponse out;
  out.status = r.status;
  out.detail = r.detail;
  out.outcomes.reserve(r.outcomes.size());
  for (const core::ScenarioOutcome& oc : r.outcomes) {
    WireOutcome w;
    w.scenario = oc.scenario;
    w.target = oc.target.name;
    const core::CompileResult& best = oc.result.best;
    w.model_cnots = best.model_cnots;
    w.emitted_cnots = best.emitted_cnots;
    w.model_cost = best.model_cost;
    w.device_cost = best.device_cost;
    w.routed_swaps = best.routed_swaps;
    w.best_restart = oc.result.best_restart;
    w.restarts_completed = oc.restarts_completed;
    if (!oc.result.verification.empty())
      w.verified = oc.result.all_verified();
    w.restarts.reserve(oc.result.restarts.size());
    for (const core::RestartReport& rep : oc.result.restarts)
      w.restarts.push_back({rep.seed, rep.model_cnots, rep.model_cost,
                            rep.device_cost, rep.completed});
    if (include_circuits && oc.restarts_completed > 0) {
      const circuit::QuantumCircuit& final_circuit = best.final_circuit();
      if (final_circuit.num_qubits() > 0)
        w.circuit_hex =
            encode_hex(db::detail::encode_circuit(final_circuit));
    }
    out.outcomes.push_back(std::move(w));
  }
  return out;
}

[[nodiscard]] inline json::Value encode_response(const WireResponse& r) {
  json::Value v = json::Value::object();
  v.set("status", json::Value::string(core::to_string(r.status)));
  v.set("detail", json::Value::string(r.detail));
  json::Value outcomes = json::Value::array();
  for (const WireOutcome& oc : r.outcomes) {
    json::Value o = json::Value::object();
    o.set("scenario", json::Value::string(oc.scenario));
    o.set("target", json::Value::string(oc.target));
    o.set("model_cnots", json::Value::number(oc.model_cnots));
    o.set("emitted_cnots", json::Value::number(oc.emitted_cnots));
    o.set("model_cost", json::Value::number(oc.model_cost));
    o.set("device_cost", json::Value::number(oc.device_cost));
    o.set("routed_swaps", json::Value::number(oc.routed_swaps));
    o.set("best_restart", json::Value::number(oc.best_restart));
    o.set("restarts_completed", json::Value::number(oc.restarts_completed));
    o.set("verified", oc.verified.has_value()
                          ? json::Value::boolean(*oc.verified)
                          : json::Value());
    json::Value restarts = json::Value::array();
    for (const WireRestart& rep : oc.restarts) {
      json::Value rj = json::Value::object();
      rj.set("seed", json::Value::number(rep.seed));
      rj.set("model_cnots", json::Value::number(rep.model_cnots));
      rj.set("model_cost", json::Value::number(rep.model_cost));
      rj.set("device_cost", json::Value::number(rep.device_cost));
      rj.set("completed", json::Value::boolean(rep.completed));
      restarts.push(std::move(rj));
    }
    o.set("restarts", std::move(restarts));
    o.set("circuit", oc.circuit_hex.empty()
                         ? json::Value()
                         : json::Value::string(oc.circuit_hex));
    outcomes.push(std::move(o));
  }
  v.set("outcomes", std::move(outcomes));
  return v;
}

[[nodiscard]] inline bool decode_response(const json::Value& v,
                                          WireResponse& out,
                                          std::string& err) {
  if (!detail::get_object(v, "response", err)) return false;
  out = WireResponse{};
  std::string status = core::to_string(out.status);
  if (!detail::read_string(v, "status", status, err)) return false;
  const std::optional<core::RequestStatus> st = parse_status(status);
  if (!st.has_value())
    return detail::fail(err, "unknown status '" + status + "'");
  out.status = *st;
  if (!detail::read_string(v, "detail", out.detail, err)) return false;
  const json::Value* outcomes = v.find("outcomes");
  if (outcomes == nullptr || !outcomes->is_array())
    return detail::fail(err, "response.outcomes must be an array");
  out.outcomes.reserve(outcomes->items().size());
  for (const json::Value& o : outcomes->items()) {
    if (!detail::get_object(o, "outcome", err)) return false;
    WireOutcome oc;
    if (!detail::read_string(o, "scenario", oc.scenario, err) ||
        !detail::read_string(o, "target", oc.target, err) ||
        !detail::read_int(o, "model_cnots", oc.model_cnots, err) ||
        !detail::read_int(o, "emitted_cnots", oc.emitted_cnots, err) ||
        !detail::read_int(o, "model_cost", oc.model_cost, err) ||
        !detail::read_int(o, "device_cost", oc.device_cost, err) ||
        !detail::read_int(o, "routed_swaps", oc.routed_swaps, err) ||
        !detail::read_size(o, "best_restart", oc.best_restart, err) ||
        !detail::read_size(o, "restarts_completed", oc.restarts_completed,
                           err))
      return false;
    if (const json::Value* verified = o.find("verified");
        verified != nullptr && !verified->is_null()) {
      if (!verified->is_bool())
        return detail::fail(err, "outcome.verified must be null or boolean");
      oc.verified = verified->as_bool();
    }
    if (const json::Value* restarts = o.find("restarts");
        restarts != nullptr) {
      if (!restarts->is_array())
        return detail::fail(err, "outcome.restarts must be an array");
      for (const json::Value& rj : restarts->items()) {
        if (!detail::get_object(rj, "restart", err)) return false;
        WireRestart rep;
        if (!detail::read_u64(rj, "seed", rep.seed, err) ||
            !detail::read_int(rj, "model_cnots", rep.model_cnots, err) ||
            !detail::read_int(rj, "model_cost", rep.model_cost, err) ||
            !detail::read_int(rj, "device_cost", rep.device_cost, err) ||
            !detail::read_bool(rj, "completed", rep.completed, err))
          return false;
        oc.restarts.push_back(rep);
      }
    }
    if (const json::Value* circ = o.find("circuit");
        circ != nullptr && !circ->is_null()) {
      if (!circ->is_string())
        return detail::fail(err, "outcome.circuit must be null or hex");
      oc.circuit_hex = circ->as_string();
    }
    out.outcomes.push_back(std::move(oc));
  }
  return true;
}

/// Decodes a wire circuit payload back into a QuantumCircuit (for client
/// display / re-verification). nullopt on malformed hex or bytes.
[[nodiscard]] inline std::optional<circuit::QuantumCircuit>
decode_wire_circuit(std::string_view hex) {
  const std::optional<std::string> bytes = decode_hex(hex);
  if (!bytes.has_value()) return std::nullopt;
  return db::detail::decode_circuit(
      reinterpret_cast<const unsigned char*>(bytes->data()), bytes->size());
}

}  // namespace femto::service::protocol
