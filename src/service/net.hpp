// EINTR-hardened POSIX socket helpers shared by the femtod server and the
// CompileClient. Every raw ::recv/::send/::accept/::connect/::poll in
// service/ goes through these wrappers: a signal delivered mid-syscall
// (SIGCHLD from a forked daemon, a profiler's SIGPROF, ...) must never be
// mistaken for a peer failure -- before this layer existed, one EINTR could
// drop a connection or tear a half-read protocol line.
//
// All wrappers keep the underlying call's return-value contract (so call
// sites read like the syscall they replace); only the EINTR handling is
// added. poll_retry additionally re-computes the remaining timeout across
// interruptions so a signal storm cannot extend a deadline.
#pragma once

#include <cerrno>
#include <chrono>
#include <cstddef>

#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>

namespace femto::service::net {

[[nodiscard]] inline ssize_t recv_retry(int fd, void* buf, std::size_t len,
                                        int flags = 0) {
  for (;;) {
    const ssize_t n = ::recv(fd, buf, len, flags);
    if (n >= 0 || errno != EINTR) return n;
  }
}

[[nodiscard]] inline ssize_t send_retry(int fd, const void* buf,
                                        std::size_t len, int flags = 0) {
  for (;;) {
    const ssize_t n = ::send(fd, buf, len, flags);
    if (n >= 0 || errno != EINTR) return n;
  }
}

[[nodiscard]] inline int accept_retry(int fd, sockaddr* addr,
                                      socklen_t* addrlen) {
  for (;;) {
    const int client = ::accept(fd, addr, addrlen);
    if (client >= 0 || errno != EINTR) return client;
  }
}

/// connect(2) with EINTR completion: when a blocking connect is
/// interrupted, the attempt continues asynchronously (POSIX), so retrying
/// the call would race it -- instead poll for writability and read the
/// final status from SO_ERROR. Returns 0 on success, -1 with errno set.
[[nodiscard]] inline int connect_retry(int fd, const sockaddr* addr,
                                       socklen_t addrlen) {
  if (::connect(fd, addr, addrlen) == 0) return 0;
  if (errno == EISCONN) return 0;
  if (errno != EINTR) return -1;
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLOUT;
  for (;;) {
    const int r = ::poll(&pfd, 1, -1);
    if (r > 0) break;
    if (r < 0 && errno == EINTR) continue;
    return -1;
  }
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) return -1;
  if (err != 0) {
    errno = err;
    return -1;
  }
  return 0;
}

/// poll(2) on one fd that survives EINTR without stretching the deadline:
/// the remaining timeout is recomputed from a steady clock after every
/// interruption. timeout_ms < 0 blocks indefinitely.
[[nodiscard]] inline int poll_retry(pollfd* pfd, int timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  int remaining = timeout_ms;
  for (;;) {
    const int r = ::poll(pfd, 1, remaining);
    if (r >= 0 || errno != EINTR) return r;
    if (timeout_ms < 0) continue;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    remaining = static_cast<int>(left.count());
    if (remaining <= 0) return 0;  // deadline passed while interrupted
  }
}

}  // namespace femto::service::net
