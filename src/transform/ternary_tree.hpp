// Ternary-tree fermion-to-qubit transformation (Jiang, Kalev, Mruczkiewicz,
// Neven, Quantum 4, 276 (2020)) -- the paper's reference [17], cited as the
// asymptotically optimal mapping and a Discussion (Sec. V) direction.
//
// Construction: qubits form a balanced ternary tree; each root-to-leaf path
// defines a Pauli string (X on the child-0 edge, Y on child-1, Z on
// child-2, identity elsewhere). A tree with n internal nodes (qubits) has
// 2n+1 leaves, yielding 2n+1 mutually anticommuting strings; the first 2n
// serve as Majorana operators gamma_0..gamma_{2n-1}:
//   c_j = (gamma_{2j} + i gamma_{2j+1}) / 2.
// Average string weight is O(log3 n), beating Jordan-Wigner's O(n) and
// Bravyi-Kitaev's O(log2 n).
//
// Unlike the linear encodings, the ternary-tree vacuum is not a
// computational basis state, so this transform serves operator-weight
// analysis and dynamics rather than the HF-referenced VQE pipeline (which
// the paper also notes stays within GL(N,2) conjugations of JW).
#pragma once

#include <vector>

#include "fermion/operators.hpp"
#include "pauli/pauli_sum.hpp"

namespace femto::transform {

class TernaryTree {
 public:
  /// Builds the balanced ternary tree over n qubits (n >= 1).
  explicit TernaryTree(std::size_t n) : n_(n) {
    FEMTO_EXPECTS(n >= 1);
    // Node q's children are 3q+1, 3q+2, 3q+3 when < n; otherwise leaves.
    // Enumerate root-to-leaf paths in leaf order.
    std::vector<std::vector<std::pair<std::size_t, int>>> paths;
    build_paths(0, {}, paths);
    FEMTO_ASSERT(paths.size() == 2 * n + 1);
    majoranas_.reserve(2 * n);
    for (std::size_t m = 0; m < 2 * n; ++m) {
      pauli::PauliString s(n);
      for (const auto& [node, branch] : paths[m]) {
        const pauli::Letter letter = branch == 0   ? pauli::Letter::X
                                     : branch == 1 ? pauli::Letter::Y
                                                   : pauli::Letter::Z;
        s.set_letter(node, letter);
      }
      majoranas_.push_back(std::move(s));
    }
  }

  [[nodiscard]] std::size_t num_qubits() const { return n_; }

  /// Majorana operator gamma_m as a Pauli string (Hermitian, sign +1).
  [[nodiscard]] const pauli::PauliString& majorana(std::size_t m) const {
    FEMTO_EXPECTS(m < majoranas_.size());
    return majoranas_[m];
  }

  /// Ladder operator a_j = (gamma_{2j} + i gamma_{2j+1})/2 (or a_j^dag with
  /// the sign flipped).
  [[nodiscard]] pauli::PauliSum ladder(std::size_t mode, bool dagger) const {
    FEMTO_EXPECTS(2 * mode + 1 < majoranas_.size());
    pauli::PauliSum sum(n_);
    sum.add({0.5, 0.0}, majoranas_[2 * mode]);
    sum.add({0.0, dagger ? -0.5 : 0.5}, majoranas_[2 * mode + 1]);
    return sum;
  }

  /// Full operator transformation.
  [[nodiscard]] pauli::PauliSum map(const fermion::FermionOperator& op) const {
    pauli::PauliSum total(n_);
    for (const fermion::FermionTerm& term : op.terms()) {
      pauli::PauliSum prod = pauli::PauliSum::from_term(
          term.coefficient, pauli::PauliString::identity(n_));
      for (const fermion::LadderOp& l : term.ops)
        prod = prod * ladder(l.mode, l.dagger);
      total.add(prod);
    }
    total.prune();
    return total;
  }

 private:
  void build_paths(std::size_t node,
                   std::vector<std::pair<std::size_t, int>> prefix,
                   std::vector<std::vector<std::pair<std::size_t, int>>>& out)
      const {
    for (int branch = 0; branch < 3; ++branch) {
      auto path = prefix;
      path.push_back({node, branch});
      const std::size_t child = 3 * node + static_cast<std::size_t>(branch) + 1;
      if (child < n_)
        build_paths(child, std::move(path), out);
      else
        out.push_back(std::move(path));
    }
  }

  std::size_t n_;
  std::vector<pauli::PauliString> majoranas_;
};

}  // namespace femto::transform
