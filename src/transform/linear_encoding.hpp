// Fermion-to-qubit transformations as linear encodings.
//
// A linear encoding is defined by an invertible matrix A over GF(2): the
// fermionic occupation vector n is stored on qubits as the basis state |An>.
// Operators are the Jordan-Wigner images conjugated by the CNOT network
// U_A realizing |x> -> |Ax>:
//   A = I        -> Jordan-Wigner,
//   A = Fenwick  -> Bravyi-Kitaev,
//   A = prefix   -> parity encoding,
//   A arbitrary  -> the paper's generalized transformation Gamma (Sec. III-C).
// This uniform view is exactly the GL(N,2) search space the paper explores.
#pragma once

#include <vector>

#include "fermion/operators.hpp"
#include "gf2/linear_synthesis.hpp"
#include "gf2/matrix.hpp"
#include "pauli/clifford_map.hpp"
#include "pauli/pauli_sum.hpp"

namespace femto::transform {

/// Jordan-Wigner image of one ladder operator:
///   a_j     = Z_0..Z_{j-1} (X_j + iY_j)/2
///   a_j^dag = Z_0..Z_{j-1} (X_j - iY_j)/2
[[nodiscard]] inline pauli::PauliSum jw_ladder(std::size_t n, std::size_t mode,
                                               bool dagger) {
  FEMTO_EXPECTS(mode < n);
  pauli::PauliString xs(n);
  pauli::PauliString ys(n);
  for (std::size_t k = 0; k < mode; ++k) {
    xs.set_letter(k, pauli::Letter::Z);
    ys.set_letter(k, pauli::Letter::Z);
  }
  xs.set_letter(mode, pauli::Letter::X);
  ys.set_letter(mode, pauli::Letter::Y);
  pauli::PauliSum sum(n);
  sum.add({0.5, 0.0}, xs);
  sum.add({0.0, dagger ? -0.5 : 0.5}, ys);
  return sum;
}

/// Jordan-Wigner image of a general fermionic operator.
[[nodiscard]] inline pauli::PauliSum jw_map(std::size_t n,
                                            const fermion::FermionOperator& op) {
  pauli::PauliSum total(n);
  for (const fermion::FermionTerm& term : op.terms()) {
    pauli::PauliSum prod =
        pauli::PauliSum::from_term(term.coefficient,
                                   pauli::PauliString::identity(n));
    for (const fermion::LadderOp& l : term.ops)
      prod = prod * jw_ladder(n, l.mode, l.dagger);
    total.add(prod);
  }
  total.prune();
  return total;
}

/// Linear encoding |n> -> |An> with cached inverse, CNOT network and
/// Clifford conjugation map.
class LinearEncoding {
 public:
  explicit LinearEncoding(gf2::Matrix a)
      : a_(std::move(a)),
        a_inv_t_([&] {
          auto inv = a_.inverse();
          FEMTO_EXPECTS(inv.has_value());
          return inv->transpose();
        }()),
        network_(gf2::synthesize_pmh(a_)),
        clifford_(pauli::CliffordMap::from_cnot_network(a_.size(), network_)) {}

  [[nodiscard]] static LinearEncoding jordan_wigner(std::size_t n) {
    return LinearEncoding(gf2::Matrix::identity(n));
  }

  /// Bravyi-Kitaev: qubit i (1-based Fenwick index) stores the parity of
  /// occupations over the Fenwick range (i - lowbit(i), i].
  [[nodiscard]] static LinearEncoding bravyi_kitaev(std::size_t n) {
    gf2::Matrix a(n);
    for (std::size_t i1 = 1; i1 <= n; ++i1) {
      const std::size_t low = i1 & (~i1 + 1);  // lowbit
      for (std::size_t k1 = i1 - low + 1; k1 <= i1; ++k1)
        a.set(i1 - 1, k1 - 1, true);
    }
    return LinearEncoding(std::move(a));
  }

  /// Parity encoding: qubit i stores the prefix parity n_0 + ... + n_i.
  [[nodiscard]] static LinearEncoding parity(std::size_t n) {
    gf2::Matrix a(n);
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c <= r; ++c) a.set(r, c, true);
    return LinearEncoding(std::move(a));
  }

  [[nodiscard]] std::size_t num_qubits() const { return a_.size(); }
  [[nodiscard]] const gf2::Matrix& matrix() const { return a_; }
  [[nodiscard]] const std::vector<gf2::CnotGate>& network() const {
    return network_;
  }

  /// Encoded qubit basis state for a fermionic occupation vector.
  [[nodiscard]] gf2::BitVec encode_occupation(const gf2::BitVec& occ) const {
    return a_.apply(occ);
  }

  /// Full operator transformation: JW, then conjugation by U_A (exact
  /// phases via the Clifford map).
  [[nodiscard]] pauli::PauliSum map(const fermion::FermionOperator& op) const {
    const pauli::PauliSum jw = jw_map(a_.size(), op);
    pauli::PauliSum out(a_.size());
    for (const pauli::PauliTerm& t : jw.terms())
      out.add(t.coefficient, clifford_.apply(t.string));
    out.prune();
    return out;
  }

  /// Transforms a single JW string (exact phase).
  [[nodiscard]] pauli::PauliString map_string(const pauli::PauliString& p) const {
    return clifford_.apply(p);
  }

  /// Fast support-only transformation x' = A x, z' = A^-T z. The phase is
  /// *not* tracked -- only valid for cost evaluation (CNOT counting) inside
  /// annealing loops.
  [[nodiscard]] pauli::PauliString map_string_support(
      const pauli::PauliString& p) const {
    pauli::PauliString out(a_.size());
    out.set_symplectic(a_.apply(p.x()), a_inv_t_.apply(p.z()));
    return out;
  }

 private:
  gf2::Matrix a_;
  gf2::Matrix a_inv_t_;
  std::vector<gf2::CnotGate> network_;
  pauli::CliffordMap clifford_;
};

}  // namespace femto::transform
