// Binary particle swarm optimization (Kennedy & Eberhart discrete variant).
//
// This is the *baseline* solver of reference [9], which searched
// upper-triangular fermion-to-qubit matrices with PSO; the paper replaces it
// with simulated annealing (Sec. III-C) precisely because PSO "tends to get
// stuck in local minima". We re-implement it for the GT column of Table I
// and for the Gamma-search ablation (bench E4).
#pragma once

#include <cmath>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "opt/restart.hpp"

namespace femto::opt {

struct PsoOptions {
  int particles = 24;
  int iterations = 120;
  double inertia = 0.72;
  double cognitive = 1.5;
  double social = 1.5;
  double v_clamp = 4.0;
};

struct PsoResult {
  std::vector<bool> best;
  double best_energy = 0.0;
  int evaluated = 0;
};

/// Minimizes `energy` over {0,1}^dim.
[[nodiscard]] inline PsoResult binary_pso(
    std::size_t dim, const std::function<double(const std::vector<bool>&)>& energy,
    Rng& rng, const PsoOptions& options = {}) {
  const int np = std::max(2, options.particles);
  std::vector<std::vector<bool>> x(static_cast<std::size_t>(np),
                                   std::vector<bool>(dim, false));
  std::vector<std::vector<double>> v(
      static_cast<std::size_t>(np), std::vector<double>(dim, 0.0));
  std::vector<std::vector<bool>> pbest = x;
  std::vector<double> pbest_e(static_cast<std::size_t>(np), 0.0);

  PsoResult result;
  result.best_energy = 1e300;
  for (int p = 0; p < np; ++p) {
    for (std::size_t d = 0; d < dim; ++d) {
      x[p][d] = rng.bernoulli(p == 0 ? 0.0 : 0.5);  // particle 0 = identity
      v[p][d] = rng.uniform(-1, 1);
    }
    pbest[p] = x[p];
    pbest_e[p] = energy(x[p]);
    ++result.evaluated;
    if (pbest_e[p] < result.best_energy) {
      result.best_energy = pbest_e[p];
      result.best = x[p];
    }
  }

  const auto sigmoid = [](double t) { return 1.0 / (1.0 + std::exp(-t)); };
  for (int it = 0; it < options.iterations; ++it) {
    for (int p = 0; p < np; ++p) {
      for (std::size_t d = 0; d < dim; ++d) {
        const double r1 = rng.uniform();
        const double r2 = rng.uniform();
        const double pb = pbest[p][d] ? 1.0 : 0.0;
        const double gb = result.best[d] ? 1.0 : 0.0;
        const double xd = x[p][d] ? 1.0 : 0.0;
        double vel = options.inertia * v[p][d] +
                     options.cognitive * r1 * (pb - xd) +
                     options.social * r2 * (gb - xd);
        vel = std::clamp(vel, -options.v_clamp, options.v_clamp);
        v[p][d] = vel;
        x[p][d] = rng.uniform() < sigmoid(vel);
      }
      const double e = energy(x[p]);
      ++result.evaluated;
      if (e < pbest_e[p]) {
        pbest_e[p] = e;
        pbest[p] = x[p];
      }
      if (e < result.best_energy) {
        result.best_energy = e;
        result.best = x[p];
      }
    }
  }
  return result;
}

/// Multi-restart binary PSO on derived seed streams; restart 0 reproduces
/// the single-shot call with Rng(master_seed) exactly. `energy` must be safe
/// to call concurrently when a pool is supplied.
[[nodiscard]] inline PsoResult binary_pso_restarts(
    std::size_t restarts, std::uint64_t master_seed, std::size_t dim,
    const std::function<double(const std::vector<bool>&)>& energy,
    const PsoOptions& options = {}, ThreadPool* pool = nullptr) {
  auto outcome = best_of_restarts(
      restarts, master_seed,
      [&](Rng& rng, std::size_t) {
        return binary_pso(dim, energy, rng, options);
      },
      [](const PsoResult& r) { return r.best_energy; }, pool);
  return std::move(outcome.result);
}

}  // namespace femto::opt
