// Generic simulated annealing (paper Sec. III-C).
//
// Metropolis-Hastings sampling of pi(x) ~ exp(-f(x)/T) with geometric
// cooling; the best state ever visited is returned (not merely the final
// one). The paper uses SA to search block-diagonal Gamma matrices; the same
// engine drives ablation baselines.
#pragma once

#include <cmath>
#include <functional>
#include <utility>

#include "common/rng.hpp"
#include "opt/restart.hpp"

namespace femto::opt {

struct SaOptions {
  double t_initial = 2.0;
  double t_final = 0.01;
  int steps = 2000;
  /// Restarts from the best-so-far when a proposal chain drifts; 0 disables.
  int reheat_interval = 0;
};

template <typename State>
struct SaResult {
  State best;
  double best_energy = 0.0;
  int accepted = 0;
  int evaluated = 0;
};

/// Minimizes `energy` over states reachable from `init` via `propose`.
/// `propose(state, rng)` returns a candidate neighbor (it must not mutate its
/// input).
template <typename State>
[[nodiscard]] SaResult<State> simulated_annealing(
    State init, const std::function<double(const State&)>& energy,
    const std::function<State(const State&, Rng&)>& propose, Rng& rng,
    const SaOptions& options = {}) {
  FEMTO_EXPECTS(options.steps > 0);
  FEMTO_EXPECTS(options.t_initial > 0 && options.t_final > 0);
  State current = std::move(init);
  double current_energy = energy(current);
  SaResult<State> result{current, current_energy, 0, 1};
  const double cool =
      std::pow(options.t_final / options.t_initial,
               1.0 / static_cast<double>(options.steps));
  double t = options.t_initial;
  for (int step = 0; step < options.steps; ++step, t *= cool) {
    State candidate = propose(current, rng);
    const double e = energy(candidate);
    ++result.evaluated;
    const double delta = e - current_energy;
    if (delta <= 0 || rng.uniform() < std::exp(-delta / t)) {
      current = std::move(candidate);
      current_energy = e;
      ++result.accepted;
      if (e < result.best_energy) {
        result.best = current;
        result.best_energy = e;
      }
    }
    if (options.reheat_interval > 0 && step > 0 &&
        step % options.reheat_interval == 0) {
      current = result.best;
      current_energy = result.best_energy;
    }
  }
  return result;
}

/// Multi-restart simulated annealing on derived seed streams (see
/// opt/restart.hpp); restart 0 reproduces the single-shot call with
/// Rng(master_seed) exactly. `init` is copied into every restart.
template <typename State>
[[nodiscard]] SaResult<State> simulated_annealing_restarts(
    std::size_t restarts, std::uint64_t master_seed, const State& init,
    const std::function<double(const State&)>& energy,
    const std::function<State(const State&, Rng&)>& propose,
    const SaOptions& options = {}, ThreadPool* pool = nullptr) {
  auto outcome = best_of_restarts(
      restarts, master_seed,
      [&](Rng& rng, std::size_t) {
        return simulated_annealing<State>(init, energy, propose, rng, options);
      },
      [](const SaResult<State>& r) { return r.best_energy; }, pool);
  return std::move(outcome.result);
}

}  // namespace femto::opt
