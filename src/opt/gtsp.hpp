// Generalized traveling salesman solver (paper Sec. III-B).
//
// Clusters partition the vertex set; a solution visits exactly one vertex
// per cluster. We *maximize* the summed weight of consecutive vertex pairs
// along a path (the CNOT savings), which matches the paper's construction
// after its weight * -1 trick.
//
// The solver is a genetic algorithm in the spirit of Silberholz & Bader
// (reference [21]): chromosomes are cluster orders bred with order crossover
// and segment-reversal mutation. For any fixed cluster order the optimal
// vertex choice per cluster is computed *exactly* by layered dynamic
// programming ("cluster optimization"), so the GA searches only the order
// space. A greedy nearest-neighbor seed accelerates convergence.
#pragma once

#include <algorithm>
#include <functional>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "opt/restart.hpp"

namespace femto::opt {

struct GtspInstance {
  /// clusters[k] lists the global vertex ids of cluster k.
  std::vector<std::vector<int>> clusters;
  /// Pairwise weight (saving) between consecutive vertices; symmetric in our
  /// use but not required.
  std::function<double(int, int)> weight;
};

struct GtspSolution {
  std::vector<std::size_t> cluster_order;  // permutation of cluster indices
  std::vector<int> vertex_choice;          // chosen vertex per *ordered* slot
  double value = 0.0;                      // total path weight (maximized)
};

struct GtspOptions {
  int population = 32;
  int generations = 200;
  int tournament = 3;
  double mutation_rate = 0.35;
  int stagnation_limit = 60;  // stop early after this many flat generations
};

namespace detail {

/// Exact best vertex assignment for a fixed cluster order (layered DP).
[[nodiscard]] inline GtspSolution cluster_dp(
    const GtspInstance& inst, const std::vector<std::size_t>& order) {
  GtspSolution sol;
  sol.cluster_order = order;
  const std::size_t m = order.size();
  if (m == 0) return sol;
  const auto& first = inst.clusters[order[0]];
  std::vector<double> dp(first.size(), 0.0);
  std::vector<std::vector<int>> back(m);
  for (std::size_t k = 1; k < m; ++k) {
    const auto& prev = inst.clusters[order[k - 1]];
    const auto& cur = inst.clusters[order[k]];
    std::vector<double> next(cur.size(),
                             -std::numeric_limits<double>::infinity());
    back[k].assign(cur.size(), 0);
    for (std::size_t j = 0; j < cur.size(); ++j) {
      for (std::size_t i = 0; i < prev.size(); ++i) {
        const double v = dp[i] + inst.weight(prev[i], cur[j]);
        if (v > next[j]) {
          next[j] = v;
          back[k][j] = static_cast<int>(i);
        }
      }
    }
    dp = std::move(next);
  }
  std::size_t best = 0;
  for (std::size_t j = 1; j < dp.size(); ++j)
    if (dp[j] > dp[best]) best = j;
  sol.value = dp[best];
  sol.vertex_choice.assign(m, 0);
  std::size_t cursor = best;
  for (std::size_t k = m; k-- > 0;) {
    sol.vertex_choice[k] = inst.clusters[order[k]][cursor];
    if (k > 0) cursor = static_cast<std::size_t>(back[k][cursor]);
  }
  return sol;
}

/// Order crossover (OX) for permutations.
[[nodiscard]] inline std::vector<std::size_t> order_crossover(
    const std::vector<std::size_t>& a, const std::vector<std::size_t>& b,
    Rng& rng) {
  const std::size_t m = a.size();
  if (m < 2) return a;
  std::size_t lo = rng.index(m), hi = rng.index(m);
  if (lo > hi) std::swap(lo, hi);
  std::vector<std::size_t> child(m, m);
  std::vector<bool> taken(m, false);
  for (std::size_t k = lo; k <= hi; ++k) {
    child[k] = a[k];
    taken[a[k]] = true;
  }
  std::size_t cursor = 0;
  for (std::size_t k = 0; k < m; ++k) {
    if (child[k] != m) continue;
    while (taken[b[cursor]]) ++cursor;
    child[k] = b[cursor];
    taken[b[cursor]] = true;
  }
  return child;
}

inline void mutate(std::vector<std::size_t>& order, Rng& rng) {
  const std::size_t m = order.size();
  if (m < 2) return;
  if (rng.bernoulli(0.5)) {
    // Segment reversal (2-opt style).
    std::size_t lo = rng.index(m), hi = rng.index(m);
    if (lo > hi) std::swap(lo, hi);
    std::reverse(order.begin() + static_cast<std::ptrdiff_t>(lo),
                 order.begin() + static_cast<std::ptrdiff_t>(hi) + 1);
  } else {
    // Random relocation of one cluster.
    const std::size_t from = rng.index(m);
    const std::size_t to = rng.index(m);
    const std::size_t v = order[from];
    order.erase(order.begin() + static_cast<std::ptrdiff_t>(from));
    order.insert(order.begin() + static_cast<std::ptrdiff_t>(to), v);
  }
}

/// Greedy nearest-neighbor seed: repeatedly appends the cluster whose best
/// vertex pairing with the current tail is maximal.
[[nodiscard]] inline std::vector<std::size_t> greedy_seed(
    const GtspInstance& inst, std::size_t start, Rng&) {
  const std::size_t m = inst.clusters.size();
  std::vector<bool> used(m, false);
  std::vector<std::size_t> order{start};
  used[start] = true;
  int tail = inst.clusters[start].front();
  for (std::size_t step = 1; step < m; ++step) {
    double best = -std::numeric_limits<double>::infinity();
    std::size_t best_cluster = m;
    int best_vertex = -1;
    for (std::size_t c = 0; c < m; ++c) {
      if (used[c]) continue;
      for (int v : inst.clusters[c]) {
        const double w = inst.weight(tail, v);
        if (w > best) {
          best = w;
          best_cluster = c;
          best_vertex = v;
        }
      }
    }
    order.push_back(best_cluster);
    used[best_cluster] = true;
    tail = best_vertex;
  }
  return order;
}

}  // namespace detail

/// Maximizes total consecutive-pair weight over cluster orders and vertex
/// choices (path version of GTSP).
[[nodiscard]] inline GtspSolution solve_gtsp_ga(const GtspInstance& inst,
                                                Rng& rng,
                                                const GtspOptions& options = {}) {
  const std::size_t m = inst.clusters.size();
  GtspSolution best;
  if (m == 0) return best;
  for (const auto& c : inst.clusters) FEMTO_EXPECTS(!c.empty());
  if (m == 1) return detail::cluster_dp(inst, {0});

  // Seed population: greedy tours from a few anchors + random permutations.
  std::vector<std::vector<std::size_t>> pop;
  const int pop_size = std::max(4, options.population);
  for (std::size_t s = 0; s < std::min<std::size_t>(4, m); ++s)
    pop.push_back(detail::greedy_seed(inst, s * (m / std::max<std::size_t>(1, 4)) % m, rng));
  std::vector<std::size_t> base(m);
  for (std::size_t i = 0; i < m; ++i) base[i] = i;
  while (pop.size() < static_cast<std::size_t>(pop_size)) {
    rng.shuffle(base);
    pop.push_back(base);
  }

  std::vector<double> fitness(pop.size());
  const auto evaluate = [&](const std::vector<std::size_t>& order) {
    return detail::cluster_dp(inst, order).value;
  };
  for (std::size_t i = 0; i < pop.size(); ++i) fitness[i] = evaluate(pop[i]);

  const auto tournament_pick = [&]() -> std::size_t {
    std::size_t winner = rng.index(pop.size());
    for (int t = 1; t < options.tournament; ++t) {
      const std::size_t rival = rng.index(pop.size());
      if (fitness[rival] > fitness[winner]) winner = rival;
    }
    return winner;
  };

  double best_fit = -std::numeric_limits<double>::infinity();
  std::vector<std::size_t> best_order;
  int stagnant = 0;
  for (int gen = 0; gen < options.generations && stagnant < options.stagnation_limit;
       ++gen) {
    // Track the elite.
    for (std::size_t i = 0; i < pop.size(); ++i) {
      if (fitness[i] > best_fit) {
        best_fit = fitness[i];
        best_order = pop[i];
        stagnant = -1;
      }
    }
    ++stagnant;
    // Next generation: elitism + offspring.
    std::vector<std::vector<std::size_t>> next;
    std::vector<double> next_fit;
    next.push_back(best_order);
    next_fit.push_back(best_fit);
    while (next.size() < pop.size()) {
      const auto& pa = pop[tournament_pick()];
      const auto& pb = pop[tournament_pick()];
      auto child = detail::order_crossover(pa, pb, rng);
      if (rng.uniform() < options.mutation_rate) detail::mutate(child, rng);
      next_fit.push_back(evaluate(child));
      next.push_back(std::move(child));
    }
    pop = std::move(next);
    fitness = std::move(next_fit);
  }
  for (std::size_t i = 0; i < pop.size(); ++i)
    if (fitness[i] > best_fit) {
      best_fit = fitness[i];
      best_order = pop[i];
    }
  return detail::cluster_dp(inst, best_order);
}

/// Multi-restart GA on derived seed streams; restart 0 reproduces the
/// single-shot call with Rng(master_seed) exactly. GTSP maximizes, so the
/// restart driver minimizes -value. `inst.weight` must be safe to call
/// concurrently when a pool is supplied (a pure function; NOT the memoizing
/// closure sort_advanced builds, which is why the compiler parallelizes at
/// the restart level only).
[[nodiscard]] inline GtspSolution solve_gtsp_ga_restarts(
    std::size_t restarts, std::uint64_t master_seed, const GtspInstance& inst,
    const GtspOptions& options = {}, ThreadPool* pool = nullptr) {
  auto outcome = best_of_restarts(
      restarts, master_seed,
      [&](Rng& rng, std::size_t) { return solve_gtsp_ga(inst, rng, options); },
      [](const GtspSolution& s) { return -s.value; }, pool);
  return std::move(outcome.result);
}

/// Pure greedy baseline (used by ablation bench E3).
[[nodiscard]] inline GtspSolution solve_gtsp_greedy(const GtspInstance& inst,
                                                    Rng& rng) {
  if (inst.clusters.empty()) return {};
  return detail::cluster_dp(inst, detail::greedy_seed(inst, 0, rng));
}

/// Random-order baseline (ablation lower bar).
[[nodiscard]] inline GtspSolution solve_gtsp_random(const GtspInstance& inst,
                                                    Rng& rng, int tries = 50) {
  const std::size_t m = inst.clusters.size();
  GtspSolution best;
  best.value = -std::numeric_limits<double>::infinity();
  std::vector<std::size_t> order(m);
  for (std::size_t i = 0; i < m; ++i) order[i] = i;
  for (int t = 0; t < tries; ++t) {
    rng.shuffle(order);
    GtspSolution sol = detail::cluster_dp(inst, order);
    if (sol.value > best.value) best = std::move(sol);
  }
  return best;
}

}  // namespace femto::opt
