// Generalized traveling salesman solver (paper Sec. III-B).
//
// Clusters partition the vertex set; a solution visits exactly one vertex
// per cluster. We *maximize* the summed weight of consecutive vertex pairs
// along a path (the CNOT savings), which matches the paper's construction
// after its weight * -1 trick.
//
// The solver is a genetic algorithm in the spirit of Silberholz & Bader
// (reference [21]): chromosomes are cluster orders bred with order crossover
// and segment-reversal mutation. For any fixed cluster order the optimal
// vertex choice per cluster is computed *exactly* by layered dynamic
// programming ("cluster optimization"), so the GA searches only the order
// space. A greedy nearest-neighbor seed accelerates convergence.
//
// Hot-path layout: the solver core runs on a GtspDense -- the pairwise
// weight materialized ONCE into a flat row-major matrix -- with every GA
// inner loop (cluster DP, order crossover, mutation, seeding) working over
// preallocated flat arrays in a reusable GtspWorkspace; after the first
// generation no inner iteration allocates or calls through a std::function.
// The GtspInstance (std::function weight) entry points are kept as
// compatibility adapters that materialize and delegate; they return
// bit-identical results (same RNG stream, same tie-breaks, same floating
// point sums) to the historical lazy solver, which survives as
// detail::solve_gtsp_ga_reference for the equivalence tests and the
// old-vs-new speedup bench.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "opt/restart.hpp"

namespace femto::opt {

struct GtspInstance {
  /// clusters[k] lists the global vertex ids of cluster k.
  std::vector<std::vector<int>> clusters;
  /// Pairwise weight (saving) between consecutive vertices; symmetric in our
  /// use but not required.
  std::function<double(int, int)> weight;
};

struct GtspSolution {
  std::vector<std::size_t> cluster_order;  // permutation of cluster indices
  std::vector<int> vertex_choice;          // chosen vertex per *ordered* slot
  double value = 0.0;                      // total path weight (maximized)
};

struct GtspOptions {
  int population = 32;
  int generations = 200;
  int tournament = 3;
  double mutation_rate = 0.35;
  int stagnation_limit = 60;  // stop early after this many flat generations
};

/// A GTSP instance with the pairwise weight materialized into a flat
/// row-major matrix. Build once (the only place the weight function -- or
/// any equivalent formula -- runs), then share READ-ONLY across restarts and
/// threads: the solver core never writes it. Intra-cluster pairs are never
/// consulted by any solver path and stay 0.
struct GtspDense {
  std::vector<std::vector<int>> clusters;
  std::size_t num_vertices = 0;
  std::vector<double> weights;  // row-major num_vertices x num_vertices

  GtspDense() = default;

  /// Materializes `inst.weight` over every cross-cluster vertex pair.
  explicit GtspDense(const GtspInstance& inst) : clusters(inst.clusters) {
    allocate();
    for (std::size_t ci = 0; ci < clusters.size(); ++ci)
      for (std::size_t cj = 0; cj < clusters.size(); ++cj) {
        if (ci == cj) continue;
        for (int a : clusters[ci])
          for (int b : clusters[cj]) set_weight(a, b, inst.weight(a, b));
      }
  }

  /// Sizes `weights` from the cluster table (direct-build path: callers fill
  /// the cross-cluster entries themselves, e.g. core/sorting.hpp).
  void allocate() {
    num_vertices = 0;
    for (const auto& c : clusters)
      for (int v : c)
        num_vertices = std::max(num_vertices, static_cast<std::size_t>(v) + 1);
    weights.assign(num_vertices * num_vertices, 0.0);
  }

  void set_weight(int a, int b, double w) {
    weights[static_cast<std::size_t>(a) * num_vertices +
            static_cast<std::size_t>(b)] = w;
  }

  [[nodiscard]] double weight(int a, int b) const {
    return weights[static_cast<std::size_t>(a) * num_vertices +
                   static_cast<std::size_t>(b)];
  }
};

/// Reusable scratch for the dense GA. One workspace serves one solver call
/// chain at a time (NOT thread-safe); keep one per worker thread and every
/// solve after the first warms no allocator. A default-constructed
/// workspace is created on the stack when the caller passes none.
struct GtspWorkspace {
  std::vector<double> dp, dp_next;       // layered cluster DP values
  std::vector<int> back;                 // flat back-pointers, m x max cluster
  std::vector<std::size_t> pop, next_pop;  // flat populations, P x m
  std::vector<double> fitness, next_fitness;
  std::vector<std::size_t> base, best_order;
  std::vector<std::uint8_t> taken, used;
};

namespace detail {

/// Exact best vertex assignment for a fixed cluster order (layered DP).
/// Lazy std::function reference path; the dense overloads below are the hot
/// path.
[[nodiscard]] inline GtspSolution cluster_dp(
    const GtspInstance& inst, const std::vector<std::size_t>& order) {
  GtspSolution sol;
  sol.cluster_order = order;
  const std::size_t m = order.size();
  if (m == 0) return sol;
  const auto& first = inst.clusters[order[0]];
  std::vector<double> dp(first.size(), 0.0);
  std::vector<std::vector<int>> back(m);
  for (std::size_t k = 1; k < m; ++k) {
    const auto& prev = inst.clusters[order[k - 1]];
    const auto& cur = inst.clusters[order[k]];
    std::vector<double> next(cur.size(),
                             -std::numeric_limits<double>::infinity());
    back[k].assign(cur.size(), 0);
    for (std::size_t j = 0; j < cur.size(); ++j) {
      for (std::size_t i = 0; i < prev.size(); ++i) {
        const double v = dp[i] + inst.weight(prev[i], cur[j]);
        if (v > next[j]) {
          next[j] = v;
          back[k][j] = static_cast<int>(i);
        }
      }
    }
    dp = std::move(next);
  }
  std::size_t best = 0;
  for (std::size_t j = 1; j < dp.size(); ++j)
    if (dp[j] > dp[best]) best = j;
  sol.value = dp[best];
  sol.vertex_choice.assign(m, 0);
  std::size_t cursor = best;
  for (std::size_t k = m; k-- > 0;) {
    sol.vertex_choice[k] = inst.clusters[order[k]][cursor];
    if (k > 0) cursor = static_cast<std::size_t>(back[k][cursor]);
  }
  return sol;
}

/// Value of the exact cluster DP for a fixed order, without back-pointer
/// bookkeeping: what the GA evaluates every offspring with. Identical
/// floating-point sums and comparisons to the full DP, so the value is
/// bit-equal to cluster_dp(...).value.
[[nodiscard]] inline double cluster_dp_value(const GtspDense& inst,
                                             const std::size_t* order,
                                             std::size_t m,
                                             GtspWorkspace& ws) {
  if (m == 0) return 0.0;
  std::size_t cur_size = inst.clusters[order[0]].size();
  ws.dp.resize(std::max(ws.dp.size(), cur_size));
  std::fill(ws.dp.begin(), ws.dp.begin() + static_cast<std::ptrdiff_t>(cur_size),
            0.0);
  for (std::size_t k = 1; k < m; ++k) {
    const auto& prev = inst.clusters[order[k - 1]];
    const auto& cur = inst.clusters[order[k]];
    ws.dp_next.resize(std::max(ws.dp_next.size(), cur.size()));
    const double* row_base = inst.weights.data();
    for (std::size_t j = 0; j < cur.size(); ++j) {
      double best = -std::numeric_limits<double>::infinity();
      const std::size_t col = static_cast<std::size_t>(cur[j]);
      for (std::size_t i = 0; i < prev.size(); ++i) {
        const double v =
            ws.dp[i] +
            row_base[static_cast<std::size_t>(prev[i]) * inst.num_vertices +
                     col];
        if (v > best) best = v;
      }
      ws.dp_next[j] = best;
    }
    cur_size = cur.size();
    std::swap(ws.dp, ws.dp_next);
  }
  std::size_t best = 0;
  for (std::size_t j = 1; j < cur_size; ++j)
    if (ws.dp[j] > ws.dp[best]) best = j;
  return ws.dp[best];
}

/// Full dense cluster DP with backtracking (run once per returned solution).
[[nodiscard]] inline GtspSolution cluster_dp(const GtspDense& inst,
                                             const std::size_t* order,
                                             std::size_t m,
                                             GtspWorkspace& ws) {
  GtspSolution sol;
  sol.cluster_order.assign(order, order + m);
  if (m == 0) return sol;
  std::size_t max_cluster = 0;
  for (std::size_t k = 0; k < m; ++k)
    max_cluster = std::max(max_cluster, inst.clusters[order[k]].size());
  ws.dp.resize(std::max(ws.dp.size(), max_cluster));
  ws.dp_next.resize(std::max(ws.dp_next.size(), max_cluster));
  ws.back.assign(m * max_cluster, 0);
  std::size_t cur_size = inst.clusters[order[0]].size();
  std::fill(ws.dp.begin(), ws.dp.begin() + static_cast<std::ptrdiff_t>(cur_size),
            0.0);
  for (std::size_t k = 1; k < m; ++k) {
    const auto& prev = inst.clusters[order[k - 1]];
    const auto& cur = inst.clusters[order[k]];
    int* back_row = ws.back.data() + k * max_cluster;
    for (std::size_t j = 0; j < cur.size(); ++j) {
      double best = -std::numeric_limits<double>::infinity();
      int best_i = 0;
      const std::size_t col = static_cast<std::size_t>(cur[j]);
      for (std::size_t i = 0; i < prev.size(); ++i) {
        const double v =
            ws.dp[i] +
            inst.weights[static_cast<std::size_t>(prev[i]) *
                             inst.num_vertices +
                         col];
        if (v > best) {
          best = v;
          best_i = static_cast<int>(i);
        }
      }
      ws.dp_next[j] = best;
      back_row[j] = best_i;
    }
    cur_size = cur.size();
    std::swap(ws.dp, ws.dp_next);
  }
  std::size_t best = 0;
  for (std::size_t j = 1; j < cur_size; ++j)
    if (ws.dp[j] > ws.dp[best]) best = j;
  sol.value = ws.dp[best];
  sol.vertex_choice.assign(m, 0);
  std::size_t cursor = best;
  for (std::size_t k = m; k-- > 0;) {
    sol.vertex_choice[k] = inst.clusters[order[k]][cursor];
    if (k > 0) cursor = static_cast<std::size_t>(ws.back[k * max_cluster + cursor]);
  }
  return sol;
}

/// Order crossover (OX) for permutations (reference path).
[[nodiscard]] inline std::vector<std::size_t> order_crossover(
    const std::vector<std::size_t>& a, const std::vector<std::size_t>& b,
    Rng& rng) {
  const std::size_t m = a.size();
  if (m < 2) return a;
  std::size_t lo = rng.index(m), hi = rng.index(m);
  if (lo > hi) std::swap(lo, hi);
  std::vector<std::size_t> child(m, m);
  std::vector<bool> taken(m, false);
  for (std::size_t k = lo; k <= hi; ++k) {
    child[k] = a[k];
    taken[a[k]] = true;
  }
  std::size_t cursor = 0;
  for (std::size_t k = 0; k < m; ++k) {
    if (child[k] != m) continue;
    while (taken[b[cursor]]) ++cursor;
    child[k] = b[cursor];
    taken[b[cursor]] = true;
  }
  return child;
}

/// Order crossover writing into a preallocated child row (same draws and
/// same result as the reference order_crossover).
inline void order_crossover_into(const std::size_t* a, const std::size_t* b,
                                 std::size_t m, std::size_t* child,
                                 std::uint8_t* taken, Rng& rng) {
  if (m < 2) {
    std::copy(a, a + m, child);
    return;
  }
  std::size_t lo = rng.index(m), hi = rng.index(m);
  if (lo > hi) std::swap(lo, hi);
  std::fill(child, child + m, m);
  std::fill(taken, taken + m, std::uint8_t{0});
  for (std::size_t k = lo; k <= hi; ++k) {
    child[k] = a[k];
    taken[a[k]] = 1;
  }
  std::size_t cursor = 0;
  for (std::size_t k = 0; k < m; ++k) {
    if (child[k] != m) continue;
    while (taken[b[cursor]]) ++cursor;
    child[k] = b[cursor];
    taken[b[cursor]] = 1;
  }
}

inline void mutate(std::vector<std::size_t>& order, Rng& rng) {
  const std::size_t m = order.size();
  if (m < 2) return;
  if (rng.bernoulli(0.5)) {
    // Segment reversal (2-opt style).
    std::size_t lo = rng.index(m), hi = rng.index(m);
    if (lo > hi) std::swap(lo, hi);
    std::reverse(order.begin() + static_cast<std::ptrdiff_t>(lo),
                 order.begin() + static_cast<std::ptrdiff_t>(hi) + 1);
  } else {
    // Random relocation of one cluster.
    const std::size_t from = rng.index(m);
    const std::size_t to = rng.index(m);
    const std::size_t v = order[from];
    order.erase(order.begin() + static_cast<std::ptrdiff_t>(from));
    order.insert(order.begin() + static_cast<std::ptrdiff_t>(to), v);
  }
}

/// In-place mutation on a flat row; the relocation branch reproduces the
/// reference's erase + insert pair with two shifts.
inline void mutate_span(std::size_t* order, std::size_t m, Rng& rng) {
  if (m < 2) return;
  if (rng.bernoulli(0.5)) {
    std::size_t lo = rng.index(m), hi = rng.index(m);
    if (lo > hi) std::swap(lo, hi);
    std::reverse(order + lo, order + hi + 1);
  } else {
    const std::size_t from = rng.index(m);
    const std::size_t to = rng.index(m);
    const std::size_t v = order[from];
    if (from < to)
      std::move(order + from + 1, order + to + 1, order + from);
    else
      std::move_backward(order + to, order + from, order + from + 1);
    order[to] = v;
  }
}

/// Greedy nearest-neighbor seed: repeatedly appends the cluster whose best
/// vertex pairing with the current tail is maximal (reference path).
[[nodiscard]] inline std::vector<std::size_t> greedy_seed(
    const GtspInstance& inst, std::size_t start, Rng&) {
  const std::size_t m = inst.clusters.size();
  std::vector<bool> used(m, false);
  std::vector<std::size_t> order{start};
  used[start] = true;
  int tail = inst.clusters[start].front();
  for (std::size_t step = 1; step < m; ++step) {
    double best = -std::numeric_limits<double>::infinity();
    std::size_t best_cluster = m;
    int best_vertex = -1;
    for (std::size_t c = 0; c < m; ++c) {
      if (used[c]) continue;
      for (int v : inst.clusters[c]) {
        const double w = inst.weight(tail, v);
        if (w > best) {
          best = w;
          best_cluster = c;
          best_vertex = v;
        }
      }
    }
    order.push_back(best_cluster);
    used[best_cluster] = true;
    tail = best_vertex;
  }
  return order;
}

/// Dense greedy seed writing into a preallocated order row.
inline void greedy_seed_into(const GtspDense& inst, std::size_t start,
                             std::size_t* order, std::uint8_t* used) {
  const std::size_t m = inst.clusters.size();
  std::fill(used, used + m, std::uint8_t{0});
  order[0] = start;
  used[start] = 1;
  int tail = inst.clusters[start].front();
  for (std::size_t step = 1; step < m; ++step) {
    double best = -std::numeric_limits<double>::infinity();
    std::size_t best_cluster = m;
    int best_vertex = -1;
    for (std::size_t c = 0; c < m; ++c) {
      if (used[c]) continue;
      for (int v : inst.clusters[c]) {
        const double w = inst.weight(tail, v);
        if (w > best) {
          best = w;
          best_cluster = c;
          best_vertex = v;
        }
      }
    }
    order[step] = best_cluster;
    used[best_cluster] = 1;
    tail = best_vertex;
  }
}

/// The historical lazy (std::function-per-edge) GA, preserved verbatim as
/// the equivalence oracle for the dense solver: tests assert bit-identical
/// GtspSolutions and bench_compile_hot reports the old-vs-new speedup.
[[nodiscard]] inline GtspSolution solve_gtsp_ga_reference(
    const GtspInstance& inst, Rng& rng, const GtspOptions& options = {}) {
  const std::size_t m = inst.clusters.size();
  GtspSolution best;
  if (m == 0) return best;
  for (const auto& c : inst.clusters) FEMTO_EXPECTS(!c.empty());
  if (m == 1) return cluster_dp(inst, {0});

  std::vector<std::vector<std::size_t>> pop;
  const int pop_size = std::max(4, options.population);
  for (std::size_t s = 0; s < std::min<std::size_t>(4, m); ++s)
    pop.push_back(greedy_seed(inst, s * (m / std::max<std::size_t>(1, 4)) % m,
                              rng));
  std::vector<std::size_t> base(m);
  for (std::size_t i = 0; i < m; ++i) base[i] = i;
  while (pop.size() < static_cast<std::size_t>(pop_size)) {
    rng.shuffle(base);
    pop.push_back(base);
  }

  std::vector<double> fitness(pop.size());
  const auto evaluate = [&](const std::vector<std::size_t>& order) {
    return cluster_dp(inst, order).value;
  };
  for (std::size_t i = 0; i < pop.size(); ++i) fitness[i] = evaluate(pop[i]);

  const auto tournament_pick = [&]() -> std::size_t {
    std::size_t winner = rng.index(pop.size());
    for (int t = 1; t < options.tournament; ++t) {
      const std::size_t rival = rng.index(pop.size());
      if (fitness[rival] > fitness[winner]) winner = rival;
    }
    return winner;
  };

  double best_fit = -std::numeric_limits<double>::infinity();
  std::vector<std::size_t> best_order;
  int stagnant = 0;
  for (int gen = 0;
       gen < options.generations && stagnant < options.stagnation_limit;
       ++gen) {
    for (std::size_t i = 0; i < pop.size(); ++i) {
      if (fitness[i] > best_fit) {
        best_fit = fitness[i];
        best_order = pop[i];
        stagnant = -1;
      }
    }
    ++stagnant;
    std::vector<std::vector<std::size_t>> next;
    std::vector<double> next_fit;
    next.push_back(best_order);
    next_fit.push_back(best_fit);
    while (next.size() < pop.size()) {
      const auto& pa = pop[tournament_pick()];
      const auto& pb = pop[tournament_pick()];
      auto child = order_crossover(pa, pb, rng);
      if (rng.uniform() < options.mutation_rate) mutate(child, rng);
      next_fit.push_back(evaluate(child));
      next.push_back(std::move(child));
    }
    pop = std::move(next);
    fitness = std::move(next_fit);
  }
  for (std::size_t i = 0; i < pop.size(); ++i)
    if (fitness[i] > best_fit) {
      best_fit = fitness[i];
      best_order = pop[i];
    }
  return cluster_dp(inst, best_order);
}

}  // namespace detail

/// Maximizes total consecutive-pair weight over cluster orders and vertex
/// choices (path version of GTSP): the dense, allocation-free GA core.
/// Draws the exact RNG stream of the historical lazy solver and applies
/// identical tie-breaks, so results are bit-identical to
/// detail::solve_gtsp_ga_reference on the materialized instance.
[[nodiscard]] inline GtspSolution solve_gtsp_ga(
    const GtspDense& inst, Rng& rng, const GtspOptions& options = {},
    GtspWorkspace* workspace = nullptr) {
  const std::size_t m = inst.clusters.size();
  GtspSolution best;
  if (m == 0) return best;
  // Coarse solver observability: ONE span per GA solve (never per
  // generation), so tracing stays cheap even when sorting calls this per
  // segment.
  obs::Span span("gtsp_ga", "solver");
  span.arg("clusters", m);
  span.arg("generations", options.generations);
  span.arg("population", options.population);
  static obs::Counter& solves =
      obs::registry().counter("solver.gtsp_solves");
  static obs::Counter& generations =
      obs::registry().counter("solver.gtsp_generations");
  solves.inc();
  generations.inc(static_cast<std::uint64_t>(
      options.generations > 0 ? options.generations : 0));
  for (const auto& c : inst.clusters) FEMTO_EXPECTS(!c.empty());
  GtspWorkspace local;
  GtspWorkspace& ws = workspace != nullptr ? *workspace : local;
  if (m == 1) {
    const std::size_t order0 = 0;
    return detail::cluster_dp(inst, &order0, 1, ws);
  }

  const std::size_t pop_size =
      static_cast<std::size_t>(std::max(4, options.population));
  ws.pop.resize(pop_size * m);
  ws.next_pop.resize(pop_size * m);
  ws.fitness.resize(pop_size);
  ws.next_fitness.resize(pop_size);
  ws.used.resize(m);
  ws.taken.resize(m);
  ws.base.resize(m);
  ws.best_order.assign(m, 0);

  // Seed population: greedy tours from a few anchors + random permutations.
  std::size_t filled = 0;
  for (std::size_t s = 0; s < std::min<std::size_t>(4, m); ++s)
    detail::greedy_seed_into(inst,
                             s * (m / std::max<std::size_t>(1, 4)) % m,
                             ws.pop.data() + (filled++) * m, ws.used.data());
  std::iota(ws.base.begin(), ws.base.end(), std::size_t{0});
  while (filled < pop_size) {
    std::shuffle(ws.base.begin(), ws.base.end(), rng.engine());
    std::copy(ws.base.begin(), ws.base.end(), ws.pop.data() + (filled++) * m);
  }

  for (std::size_t i = 0; i < pop_size; ++i)
    ws.fitness[i] = detail::cluster_dp_value(inst, ws.pop.data() + i * m, m, ws);

  const auto tournament_pick = [&]() -> std::size_t {
    std::size_t winner = rng.index(pop_size);
    for (int t = 1; t < options.tournament; ++t) {
      const std::size_t rival = rng.index(pop_size);
      if (ws.fitness[rival] > ws.fitness[winner]) winner = rival;
    }
    return winner;
  };

  double best_fit = -std::numeric_limits<double>::infinity();
  int stagnant = 0;
  for (int gen = 0;
       gen < options.generations && stagnant < options.stagnation_limit;
       ++gen) {
    // Track the elite.
    for (std::size_t i = 0; i < pop_size; ++i) {
      if (ws.fitness[i] > best_fit) {
        best_fit = ws.fitness[i];
        std::copy(ws.pop.data() + i * m, ws.pop.data() + (i + 1) * m,
                  ws.best_order.begin());
        stagnant = -1;
      }
    }
    ++stagnant;
    // Next generation: elitism + offspring, written straight into the
    // ping-pong buffer (no per-generation allocation).
    std::copy(ws.best_order.begin(), ws.best_order.end(), ws.next_pop.data());
    ws.next_fitness[0] = best_fit;
    for (std::size_t slot = 1; slot < pop_size; ++slot) {
      const std::size_t* pa = ws.pop.data() + tournament_pick() * m;
      const std::size_t* pb = ws.pop.data() + tournament_pick() * m;
      std::size_t* child = ws.next_pop.data() + slot * m;
      detail::order_crossover_into(pa, pb, m, child, ws.taken.data(), rng);
      if (rng.uniform() < options.mutation_rate)
        detail::mutate_span(child, m, rng);
      ws.next_fitness[slot] = detail::cluster_dp_value(inst, child, m, ws);
    }
    std::swap(ws.pop, ws.next_pop);
    std::swap(ws.fitness, ws.next_fitness);
  }
  for (std::size_t i = 0; i < pop_size; ++i)
    if (ws.fitness[i] > best_fit) {
      best_fit = ws.fitness[i];
      std::copy(ws.pop.data() + i * m, ws.pop.data() + (i + 1) * m,
                ws.best_order.begin());
    }
  return detail::cluster_dp(inst, ws.best_order.data(), m, ws);
}

/// Compatibility adapter: materializes the weight function once, then runs
/// the dense core. Bit-identical to the historical lazy solver.
[[nodiscard]] inline GtspSolution solve_gtsp_ga(const GtspInstance& inst,
                                                Rng& rng,
                                                const GtspOptions& options = {}) {
  if (inst.clusters.empty()) return {};
  const GtspDense dense(inst);
  return solve_gtsp_ga(dense, rng, options);
}

/// Multi-restart GA on derived seed streams; restart 0 reproduces the
/// single-shot call with Rng(master_seed) exactly. GTSP maximizes, so the
/// restart driver minimizes -value. The dense weight matrix is built ONCE on
/// the calling thread and shared read-only across the pool workers, so the
/// weight function runs exactly once per vertex pair no matter how many
/// restarts fan out (and memoizing closures are safe to pass).
[[nodiscard]] inline GtspSolution solve_gtsp_ga_restarts(
    std::size_t restarts, std::uint64_t master_seed, const GtspDense& dense,
    const GtspOptions& options = {}, ThreadPool* pool = nullptr) {
  auto outcome = best_of_restarts(
      restarts, master_seed,
      [&](Rng& rng, std::size_t) { return solve_gtsp_ga(dense, rng, options); },
      [](const GtspSolution& s) { return -s.value; }, pool);
  return std::move(outcome.result);
}

[[nodiscard]] inline GtspSolution solve_gtsp_ga_restarts(
    std::size_t restarts, std::uint64_t master_seed, const GtspInstance& inst,
    const GtspOptions& options = {}, ThreadPool* pool = nullptr) {
  if (inst.clusters.empty()) {
    auto outcome = best_of_restarts(
        restarts, master_seed,
        [&](Rng& rng, std::size_t) { return solve_gtsp_ga(inst, rng, options); },
        [](const GtspSolution& s) { return -s.value; }, pool);
    return std::move(outcome.result);
  }
  const GtspDense dense(inst);
  return solve_gtsp_ga_restarts(restarts, master_seed, dense, options, pool);
}

/// Pure greedy baseline (used by ablation bench E3).
[[nodiscard]] inline GtspSolution solve_gtsp_greedy(const GtspInstance& inst,
                                                    Rng& rng) {
  if (inst.clusters.empty()) return {};
  return detail::cluster_dp(inst, detail::greedy_seed(inst, 0, rng));
}

/// Random-order baseline (ablation lower bar): dense evaluation, one matrix
/// build for all tries.
[[nodiscard]] inline GtspSolution solve_gtsp_random(const GtspInstance& inst,
                                                    Rng& rng, int tries = 50) {
  const std::size_t m = inst.clusters.size();
  GtspSolution best;
  best.value = -std::numeric_limits<double>::infinity();
  if (m == 0) {
    // Preserve the historical shape: tries shuffles of an empty order.
    for (int t = 0; t < tries; ++t) {
      GtspSolution sol;
      if (sol.value > best.value) best = std::move(sol);
    }
    return best;
  }
  const GtspDense dense(inst);
  GtspWorkspace ws;
  std::vector<std::size_t> order(m);
  for (std::size_t i = 0; i < m; ++i) order[i] = i;
  for (int t = 0; t < tries; ++t) {
    rng.shuffle(order);
    GtspSolution sol = detail::cluster_dp(dense, order.data(), m, ws);
    if (sol.value > best.value) best = std::move(sol);
  }
  return best;
}

}  // namespace femto::opt
