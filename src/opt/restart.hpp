// Common multi-restart driver for the stochastic solvers.
//
// All three optimizers (simulated annealing, binary PSO, the GTSP GA) are
// pure functions of an injected Rng, so N independent restarts are N calls
// on N derived seed streams: restart 0 runs on the master seed itself
// (making a 1-restart run bit-identical to the historical single-shot call)
// and restart k > 0 on derive_stream_seed(master, k). The winner is chosen
// by (cost, restart index), which is independent of execution order -- the
// restarts may therefore run on a ThreadPool with any worker count and the
// returned result is still bit-identical.
//
// Shared inputs: `run` closures should capture their instance data as
// READ-ONLY precomputed state built before the fan-out -- e.g. the GTSP
// restart API (opt/gtsp.hpp) materializes its dense weight matrix once on
// the calling thread and every worker solves against the same const matrix,
// so per-edge weight work is never repeated per restart (and impure or
// memoizing weight closures are safe: they run only during the single
// materialization, never concurrently).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"

namespace femto::opt {

/// Seed of restart `r` under master seed `master`: the master itself for
/// r == 0, an independent derived stream otherwise.
[[nodiscard]] constexpr std::uint64_t restart_seed(std::uint64_t master,
                                                   std::size_t r) {
  return r == 0 ? master : derive_stream_seed(master, r);
}

template <typename Result>
struct RestartOutcome {
  Result result{};
  double cost = 0.0;
  std::size_t restart = 0;        // index of the winning restart
  std::vector<double> costs;      // per-restart cost, indexed by restart
};

/// Runs `run(rng, restart_index)` for each of `restarts` derived streams and
/// returns the lowest-cost result (ties broken toward the lowest restart
/// index). `cost(result)` maps a result to the minimized scalar. When `pool`
/// is non-null the restarts execute concurrently on it.
template <typename RunFn, typename CostFn>
[[nodiscard]] auto best_of_restarts(std::size_t restarts,
                                    std::uint64_t master_seed, RunFn&& run,
                                    CostFn&& cost, ThreadPool* pool = nullptr) {
  FEMTO_EXPECTS(restarts >= 1);
  using Result = decltype(run(std::declval<Rng&>(), std::size_t{0}));
  std::vector<std::optional<Result>> slots(restarts);
  const auto one = [&](std::size_t r) {
    Rng rng(restart_seed(master_seed, r));
    slots[r] = run(rng, r);
  };
  if (pool != nullptr && restarts > 1) {
    pool->parallel_for(restarts, one);
  } else {
    for (std::size_t r = 0; r < restarts; ++r) one(r);
  }
  RestartOutcome<Result> out;
  out.costs.reserve(restarts);
  for (std::size_t r = 0; r < restarts; ++r) {
    const double c = cost(*slots[r]);
    out.costs.push_back(c);
    if (r == 0 || c < out.cost) {
      out.cost = c;
      out.restart = r;
      out.result = std::move(*slots[r]);
    }
  }
  return out;
}

}  // namespace femto::opt
