// The VQE circuit compiler (paper Fig. 2), in both flavors:
//
//  Advanced (this paper): hybrid-encoding plan (GVCP), block-diagonal Gamma
//  via simulated annealing, joint GTSP sorting with per-string targets.
//
//  Baseline ([9], the JW / BK / GT columns of Table I): bosonic-only
//  compression, fixed or PSO-searched upper-triangular Gamma plus greedy
//  level labeling, per-term shared targets with exact intra-term ordering
//  and doubly-greedy inter-term ordering.
//
// Structure: compilation runs as a three-stage pipeline over one shared
// deterministic Rng --
//   stage_plan      classification, hybrid plan, compression bookkeeping,
//   stage_transform Gamma search (SA / PSO / fixed),
//   stage_emit      ordered generators, segment sorting and synthesis --
// so a compile is a pure function of (n, terms, options). Multi-restart and
// batch entry points that schedule many such compiles on a thread pool live
// in core/pipeline.hpp.
//
// Accounting (see EXPERIMENTS.md): "model" CNOTs follow the paper's cost
// model -- 2 per bosonic term, sum of string costs minus interface savings
// per segment, plus one CNOT per pair decompression; "emitted" CNOTs count
// the verified gate-level circuit (equal on good-target chains, never
// smaller than naive emission allows). With a non-default HardwareTarget
// (CompileOptions.target), `model_cost` re-runs the same accounting in the
// target's native entanglers, emission lowers to the native gate set /
// SWAP-routes, and `device_cost` counts the final artifact -- while
// `model_cnots` keeps the paper's all-to-all CNOT meaning for comparability.
//
// Consistency rule for compression + transforms: Gamma acts as identity on
// every compressed-pair member, so conjugating the whole ansatz by U_Gamma
// preserves the compressed segments' structure; the BK column therefore uses
// the Fenwick matrix embedded over uncompressed modes only.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "circuit/peephole.hpp"
#include "circuit/routing.hpp"
#include "core/gamma_search.hpp"
#include "core/rotation_blocks.hpp"
#include "core/sorting.hpp"
#include "encoding/compressed_ops.hpp"
#include "encoding/hybrid_plan.hpp"
#include "obs/trace.hpp"
#include "synth/pauli_exponential.hpp"
#include "synth/synthesis_cache.hpp"
#include "synth/target.hpp"
#include "transform/linear_encoding.hpp"
#include "verify/spec.hpp"

namespace femto::core {

enum class TransformKind {
  kJordanWigner,
  kBravyiKitaev,
  kBaselineGT,  // upper-triangular PSO + greedy level labeling ([9])
  kAdvanced,    // block-diagonal GL(N,2) via simulated annealing (this work)
};

enum class SortingMode {
  kNone,      // natural order, first-support targets
  kBaseline,  // per-term shared target + Held-Karp intra + doubly greedy
  kAdvanced,  // joint GTSP over (string, target) with the GA
};

enum class CompressionMode {
  kNone,
  kBosonicOnly,  // [8]/[9]: compress only fully-paired double excitations
  kHybrid,       // this work: bosonic + GVCP-planned hybrid compression
};

struct CompileOptions {
  TransformKind transform = TransformKind::kAdvanced;
  SortingMode sorting = SortingMode::kAdvanced;
  CompressionMode compression = CompressionMode::kHybrid;
  int coloring_orders = 64;
  opt::SaOptions sa_options{2.0, 0.05, 1500, 0};
  opt::PsoOptions pso_options{};
  opt::GtspOptions gtsp_options{};
  std::uint64_t seed = 20230306;
  bool emit_circuit = true;
  /// The device the compile optimizes FOR (synth/target.hpp): native gate
  /// set, entangler cost weights, connectivity. The default all-to-all CNOT
  /// target reproduces the historical pipeline bit-identically; other
  /// targets re-weight the GTSP/annealing/PSO objectives, lower emission to
  /// native gates, and (when connectivity-constrained) SWAP-route.
  synth::HardwareTarget target = synth::HardwareTarget::all_to_all_cnot();
  /// Optional shared memo for per-segment synthesis (core/pipeline.hpp
  /// injects one per multi-restart / batch run). Exact memoization of a pure
  /// function: results are bit-identical with or without it.
  synth::SynthesisCache* synthesis_cache = nullptr;
};

/// Diagnostic for inconsistent option combinations; empty string = valid.
/// compile_vqe aborts (with the diagnostic on stderr) on invalid options so
/// a misconfigured batch cannot silently produce wrong per-device costs.
[[nodiscard]] inline std::string validate_options(
    std::size_t n, const CompileOptions& options) {
  const std::string target_err = options.target.validate(n);
  if (!target_err.empty()) return target_err;
  if (options.target.coupling.constrained() && !options.emit_circuit)
    return "target '" + options.target.name +
           "' constrains connectivity, but emit_circuit = false: the exact "
           "device cost is counted from the routed circuit, so nothing could "
           "be routed (enable emit_circuit or use an unconstrained target)";
  if (options.target.coupling.constrained() &&
      options.target.coupling.num_qubits() != n)
    return "target '" + options.target.name + "' couples " +
           std::to_string(options.target.coupling.num_qubits()) +
           " qubits but the compile needs exactly " + std::to_string(n) +
           " (spec verification requires matching widths; slice the device "
           "coupling map to the circuit)";
  if (options.coloring_orders < 1)
    return "coloring_orders must be >= 1 (got " +
           std::to_string(options.coloring_orders) + ")";
  if (options.gtsp_options.mutation_rate < 0.0 ||
      options.gtsp_options.mutation_rate > 1.0)
    return "gtsp_options.mutation_rate must be in [0, 1] (got " +
           std::to_string(options.gtsp_options.mutation_rate) + ")";
  return "";
}

struct SegmentReport {
  std::string name;
  std::size_t num_terms = 0;
  int model_cnots = 0;
};

struct CompileResult {
  std::size_t num_qubits = 0;
  encoding::HybridPlan plan;
  gf2::Matrix gamma;
  int model_cnots = 0;
  int emitted_cnots = 0;
  int decompression_cnots = 0;
  /// Model cost in the TARGET's native entanglers (synth/cost_model.hpp):
  /// equals model_cnots for all_to_all_cnot; for connectivity-constrained
  /// targets this closed form is a routing surrogate and device_cost below
  /// is the exact count.
  int model_cost = 0;
  /// Native entangler count of the final lowered/routed artifact: equals
  /// emitted_cnots on the default target, otherwise target.circuit_cost of
  /// `lowered`. Only meaningful when a circuit was emitted.
  int device_cost = 0;
  /// SWAPs the router inserted (0 for unconstrained targets).
  int routed_swaps = 0;
  std::vector<SegmentReport> segments;
  circuit::QuantumCircuit circuit;
  /// Target-native circuit (routed + lowered); empty on the default target,
  /// where `circuit` already IS native. Certified against `spec` exactly
  /// like `circuit` -- routing restores the identity permutation and
  /// lowering preserves the unitary up to global phase.
  circuit::QuantumCircuit lowered;
  /// Term application order (indices into the input term vector).
  std::vector<std::size_t> term_order;
  /// Full (uncompressed, Jordan-Wigner) generators in application order,
  /// with the VQE parameter index = position; used for energy evaluation
  /// (energies are encoding-invariant).
  std::vector<pauli::PauliSum> ordered_generators;
  /// Low indices of the spin pairs the plan uses compressed.
  std::vector<std::size_t> compressed_pair_lows;
  /// The ordered operation stream `circuit` is supposed to implement
  /// (recorded whenever a circuit is emitted): every sorted rotation block
  /// handed to the synthesizer plus the interleaved bookkeeping gates.
  /// verify::EquivalenceChecker::check_spec certifies `circuit` against it
  /// symbolically at any qubit count (see verify/equivalence.hpp).
  verify::CompilationSpec spec;

  /// The artifact that would run on the device -- the lowered/routed
  /// circuit when the target required one, the emitted circuit otherwise.
  /// This is what verification certifies against `spec`.
  [[nodiscard]] const circuit::QuantumCircuit& final_circuit() const {
    return lowered.empty() ? circuit : lowered;
  }

  /// Reference-state preparation (X gates) for `nelec` electrons in the
  /// compressed representation the circuit starts from: occupied pair ->
  /// pair qubit |1> with the partner parked in |0>. Prepend to `circuit`.
  [[nodiscard]] circuit::QuantumCircuit preparation(std::size_t nelec) const {
    circuit::QuantumCircuit prep(num_qubits);
    std::vector<bool> is_parked(num_qubits, false);
    for (std::size_t lo : compressed_pair_lows)
      if (lo + 1 < num_qubits) is_parked[lo + 1] = true;
    for (std::size_t q = 0; q < std::min(nelec, num_qubits); ++q)
      if (!is_parked[q]) prep.append(circuit::Gate::x(q));
    return prep;
  }
};

namespace detail {

/// One decompression event: pair `low` must open before position `pos` of
/// the full term order.
struct DecompressionEvent {
  std::size_t position = 0;
  std::size_t low = 0;
};

/// Walks the plan order, tracking which compressed pairs are alive, and
/// returns decompression events (a pair is opened the first time any term
/// acts on one of its members individually). A term in the *fermionic*
/// segment is implemented uncompressed, so it acts individually on its whole
/// support regardless of its intrinsic classification.
[[nodiscard]] inline std::vector<DecompressionEvent> decompression_schedule(
    const std::vector<fermion::ExcitationTerm>& terms,
    const encoding::HybridPlan& plan) {
  std::vector<std::size_t> active = encoding::compressed_pairs(terms, plan);
  std::vector<DecompressionEvent> events;
  const std::vector<std::size_t> order = plan.full_order();
  const std::size_t compressed_count = plan.compressed_order().size();
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    const auto& t = terms[order[pos]];
    const std::vector<std::size_t> touched = pos < compressed_count
                                                 ? t.individual_indices()
                                                 : t.support();
    for (std::size_t idx : touched) {
      for (std::size_t k = 0; k < active.size(); ++k) {
        if (idx == active[k] || idx == active[k] + 1) {
          events.push_back({pos, active[k]});
          active.erase(active.begin() + static_cast<std::ptrdiff_t>(k));
          break;
        }
      }
    }
  }
  return events;
}

/// Per-term rotation blocks of the *compressed* generator under the global
/// encoding. Pair-member qubits must be untouched by Gamma (asserted by the
/// compiler), so the sigma+- structure survives conjugation.
[[nodiscard]] inline std::vector<synth::RotationBlock> compressed_term_blocks(
    std::size_t n, const fermion::ExcitationTerm& term,
    const std::vector<std::size_t>& active_pairs,
    const transform::LinearEncoding& enc, int param) {
  const pauli::PauliSum g = encoding::compressed_generator(n, term, active_pairs);
  pauli::PauliSum mapped(n);
  for (const pauli::PauliTerm& t : g.terms())
    mapped.add(t.coefficient, enc.map_string(t.string));
  mapped.prune();
  return blocks_from_generator(mapped, param);
}

/// Per-term rotation blocks of the full fermionic generator under the
/// encoding, with Z@Z factors over still-compressed pairs reduced away
/// (valid while those pairs stay parity-definite).
[[nodiscard]] inline std::vector<synth::RotationBlock> fermionic_term_blocks(
    std::size_t n, const fermion::ExcitationTerm& term,
    const std::vector<std::size_t>& active_pairs,
    const transform::LinearEncoding& enc, int param) {
  pauli::PauliSum g = transform::jw_map(n, term.generator());
  g = encoding::reduce_over_pairs(g, active_pairs);
  pauli::PauliSum mapped(n);
  for (const pauli::PauliTerm& t : g.terms())
    mapped.add(t.coefficient, enc.map_string(t.string));
  mapped.prune();
  return blocks_from_generator(mapped, param);
}

/// The (p, r, a) of a bosonic generator exp(i a theta (X_p Y_r - Y_p X_r)).
struct BosonicPair {
  std::size_t p = 0;
  std::size_t r = 0;
  double a = 0;
};

[[nodiscard]] inline BosonicPair locate_bosonic_pair(const pauli::PauliSum& g) {
  FEMTO_EXPECTS(g.size() == 2);
  // Locate the X.Y term; its partner must be Y.X with negated coefficient.
  for (const pauli::PauliTerm& t : g.terms()) {
    std::vector<std::size_t> support;
    for (std::size_t q = 0; q < t.string.num_qubits(); ++q)
      if (t.string.letter(q) != pauli::Letter::I) support.push_back(q);
    FEMTO_EXPECTS(support.size() == 2);
    if (t.string.letter(support[0]) == pauli::Letter::X &&
        t.string.letter(support[1]) == pauli::Letter::Y)
      return {support[0], support[1], t.coefficient.imag()};
    if (t.string.letter(support[0]) == pauli::Letter::Y &&
        t.string.letter(support[1]) == pauli::Letter::X)
      return {support[1], support[0], -t.coefficient.imag()};
  }
  FEMTO_EXPECTS(false && "no X.Y term in bosonic generator");
  return {};
}

/// Emits one bosonic block: exp(i a theta (X_p Y_r - Y_p X_r)) =
/// [Sdg_r][XYrot(p, r, -2a theta)][S_r]; exactly 2 CNOT-equivalents. The
/// same three gates are recorded into the verification spec.
inline void emit_bosonic(circuit::PeepholeBuilder& out,
                         verify::CompilationSpec& spec,
                         const BosonicPair& pair, int param) {
  for (const circuit::Gate& g2 :
       {circuit::Gate::sdg(pair.r),
        circuit::Gate::xyrot(pair.p, pair.r, -2.0 * pair.a, param),
        circuit::Gate::s(pair.r)}) {
    out.push(g2);
    spec.push_back(verify::SpecOp::from_gate(g2));
  }
}

/// Intermediate state handed between the compile stages. Owned by one
/// compile call; never shared across threads.
struct StageContext {
  std::size_t n = 0;
  const std::vector<fermion::ExcitationTerm>* terms = nullptr;
  const CompileOptions* options = nullptr;
  std::vector<DecompressionEvent> events;
  std::vector<std::size_t> pairs;
  std::vector<std::size_t> still_compressed;
  std::vector<std::size_t> pair_members;  // Gamma-banned qubits
  std::vector<fermion::ExcitationTerm> fermionic_terms;
  std::vector<std::size_t> allowed;  // indices Gamma may act on
  std::vector<std::vector<synth::RotationBlock>> fermionic_jw_blocks;
};

/// Stage 1: classification / hybrid plan, compression bookkeeping, and the
/// fermionic-segment block table the transform search costs against.
inline void stage_plan(StageContext& ctx, CompileResult& result, Rng& rng) {
  const std::vector<fermion::ExcitationTerm>& terms = *ctx.terms;
  const CompileOptions& options = *ctx.options;
  const std::size_t n = ctx.n;

  switch (options.compression) {
    case CompressionMode::kHybrid:
      result.plan = encoding::plan_hybrid_encoding(terms, rng,
                                                   options.coloring_orders);
      break;
    case CompressionMode::kBosonicOnly: {
      for (std::size_t i = 0; i < terms.size(); ++i) {
        if (terms[i].classification() == fermion::ExcitationClass::kBosonic)
          result.plan.bosonic.push_back(i);
        else
          result.plan.fermionic.push_back(i);
      }
      break;
    }
    case CompressionMode::kNone:
      for (std::size_t i = 0; i < terms.size(); ++i)
        result.plan.fermionic.push_back(i);
      break;
  }
  result.term_order = result.plan.full_order();

  // Compression bookkeeping. Gamma conjugation applies only to the
  // fermionic segment (the compressed segments stay in the original frame),
  // so Gamma must stay identity exactly on pairs that remain compressed
  // through measurement; pairs decompressed before the fermionic segment are
  // ordinary qubits there.
  ctx.pairs = encoding::compressed_pairs(terms, result.plan);
  result.compressed_pair_lows = ctx.pairs;
  ctx.events = decompression_schedule(terms, result.plan);
  result.decompression_cnots = static_cast<int>(ctx.events.size());
  ctx.still_compressed = ctx.pairs;
  for (const auto& ev : ctx.events) {
    for (std::size_t k = 0; k < ctx.still_compressed.size(); ++k)
      if (ctx.still_compressed[k] == ev.low) {
        ctx.still_compressed.erase(ctx.still_compressed.begin() +
                                   static_cast<std::ptrdiff_t>(k));
        break;
      }
  }
  for (std::size_t lo : ctx.still_compressed) {
    ctx.pair_members.push_back(lo);
    ctx.pair_members.push_back(lo + 1);
  }

  for (std::size_t i : result.plan.fermionic)
    ctx.fermionic_terms.push_back(terms[i]);
  {
    std::vector<bool> banned(n, false);
    for (std::size_t b : ctx.pair_members) banned[b] = true;
    for (std::size_t i = 0; i < n; ++i)
      if (!banned[i]) ctx.allowed.push_back(i);
  }
  {
    const transform::LinearEncoding jw =
        transform::LinearEncoding::jordan_wigner(n);
    int param = 0;
    for (std::size_t i : result.plan.fermionic)
      ctx.fermionic_jw_blocks.push_back(fermionic_term_blocks(
          n, terms[i], ctx.still_compressed, jw, param++));
  }
}

/// Stage 2: fermion-to-qubit transform search over the fermionic segment.
inline void stage_transform(StageContext& ctx, CompileResult& result,
                            Rng& rng) {
  const CompileOptions& options = *ctx.options;
  const std::size_t n = ctx.n;
  // Device target threaded into the sorting/chain surrogates below. Only
  // connectivity-constrained targets re-weight them: for unconstrained XX
  // targets the exact model is the min of two lowering forms whose order
  // structure matches the CNOT model, so the legacy weights are the sharper
  // surrogate (and the nullptr path is bit-identical for the default
  // target). The Gamma objective itself (real_fermionic_cost) always scores
  // candidates by the true per-target sequence_model_cost.
  const synth::HardwareTarget* hw =
      options.target.coupling.constrained() ? &options.target : nullptr;

  // Per-compile memo for device string costs (support-keyed, exact); shared
  // between the Gamma objectives and fast_term_cost below. Only device
  // paths consult it -- the default CNOT model's costs are closed-form.
  synth::StringCostCache string_cost_cache(options.target);
  synth::StringCostCache* cache_ptr = hw != nullptr ? &string_cost_cache : nullptr;

  // Fast cost of the fermionic segment under a candidate Gamma
  // (full-recompute path, used by the PSO / level-labeling baselines; the
  // advanced SA below evaluates the same objective incrementally).
  const auto gamma_cost = [&](const gf2::Matrix& gamma) -> double {
    return fermionic_fast_cost(gamma, ctx.fermionic_jw_blocks, hw, cache_ptr);
  };

  // Real (final-pipeline) cost of the fermionic segment for a candidate
  // Gamma: conjugate the blocks exactly, run the configured sorter once.
  // Memoized per candidate matrix: the cost is a pure function of Gamma
  // (the sorter runs on a private seed-derived Rng, drawing nothing from the
  // compile stream), and the PSO / level-labeling searches revisit the same
  // candidates heavily as they converge, so the exact memo changes no
  // result while collapsing the dominant Held-Karp/GTSP re-evaluations.
  std::unordered_map<std::string, int> real_cost_memo;
  const auto gamma_key = [](const gf2::Matrix& g) {
    std::string key;
    key.reserve(g.size() * sizeof(std::uint64_t));
    for (std::size_t r = 0; r < g.size(); ++r)
      for (const std::uint64_t w : g.row(r).words())
        key.append(reinterpret_cast<const char*>(&w), sizeof(w));
    return key;
  };
  const auto real_fermionic_cost_uncached =
      [&](const gf2::Matrix& gamma) -> int {
    if (ctx.fermionic_jw_blocks.empty()) return 0;
    const transform::LinearEncoding cand{gamma};
    std::vector<synth::RotationBlock> flat;
    std::vector<std::vector<synth::RotationBlock>> per_term;
    for (const auto& term_blocks : ctx.fermionic_jw_blocks) {
      std::vector<synth::RotationBlock> mapped = term_blocks;
      for (auto& b : mapped) {
        b.string = cand.map_string(b.string);
        // Canonicalize sign into the angle for the synthesizer contract.
        const pauli::Complex s = b.string.sign();
        b.angle_coeff *= s.real();
        const int y = static_cast<int>((b.string.x() & b.string.z()).popcount());
        b.string.set_phase_exponent(y);
        b.target = b.string.support().lowest_set();
      }
      per_term.push_back(mapped);
      for (auto& b : per_term.back()) flat.push_back(b);
    }
    Rng sort_rng(options.seed ^ 0x9e3779b97f4a7c15ULL);
    std::vector<synth::RotationBlock> ordered;
    switch (options.sorting) {
      case SortingMode::kAdvanced:
        ordered = sort_advanced(flat, sort_rng, options.gtsp_options, hw);
        break;
      case SortingMode::kBaseline:
        ordered = sort_baseline(per_term, hw);
        break;
      case SortingMode::kNone: ordered = flat; break;
    }
    return synth::sequence_model_cost(ordered, options.target);
  };
  const auto real_fermionic_cost = [&](const gf2::Matrix& gamma) -> int {
    const std::string key = gamma_key(gamma);
    const auto it = real_cost_memo.find(key);
    if (it != real_cost_memo.end()) return it->second;
    const int c = real_fermionic_cost_uncached(gamma);
    real_cost_memo.emplace(key, c);
    return c;
  };

  gf2::Matrix gamma = gf2::Matrix::identity(n);
  switch (options.transform) {
    case TransformKind::kJordanWigner: break;
    case TransformKind::kBravyiKitaev:
      gamma = embedded_bravyi_kitaev(n, ctx.allowed);
      break;
    case TransformKind::kBaselineGT: {
      // For small instances the search can afford the exact pipeline cost as
      // its objective; the fast proxy is kept for large ones (NH3).
      const bool exact = ctx.fermionic_jw_blocks.size() <= 20 &&
                         options.sorting != SortingMode::kAdvanced;
      const std::function<double(const gf2::Matrix&)> search_cost =
          exact ? std::function<double(const gf2::Matrix&)>(
                      [&](const gf2::Matrix& g) {
                        return static_cast<double>(real_fermionic_cost(g));
                      })
                : gamma_cost;
      const gf2::Matrix label =
          greedy_level_labeling(n, ctx.allowed, search_cost);
      const auto labeled_cost = [&](const gf2::Matrix& ut) {
        return search_cost(ut.multiply(label));
      };
      const gf2::Matrix ut = pso_upper_triangular(n, ctx.allowed, labeled_cost,
                                                  rng, options.pso_options);
      // Keep the best of {identity, labeling, PSO * labeling} by the real
      // pipeline cost -- GT never loses to plain JW.
      gamma = ut.multiply(label);
      int best_cost = real_fermionic_cost(gamma);
      for (const gf2::Matrix& cand :
           {gf2::Matrix::identity(n), label}) {
        const int c = real_fermionic_cost(cand);
        if (c < best_cost) {
          best_cost = c;
          gamma = cand;
        }
      }
      break;
    }
    case TransformKind::kAdvanced: {
      const auto blocks = discover_blocks(n, ctx.fermionic_terms,
                                          ctx.pair_members);
      // Incremental SA: bit-identical to
      // anneal_gamma(n, blocks, gamma_cost, rng, ...) with O(move-delta)
      // candidate evaluation (see GammaObjective in core/gamma_search.hpp).
      GammaState best = anneal_gamma_fast(n, blocks, ctx.fermionic_jw_blocks,
                                          hw, cache_ptr, rng,
                                          options.sa_options);
      // Small instances: first-improvement hill climb on the *real* cost to
      // close the proxy gap (in-block moves keep GL membership).
      if (ctx.fermionic_jw_blocks.size() <= 12 && !blocks.empty()) {
        int cur = real_fermionic_cost(best.gamma);
        for (int move = 0; move < 40; ++move) {
          const GammaState cand = propose_gamma_move(best, rng);
          const int c = real_fermionic_cost(cand.gamma);
          if (c < cur) {
            best = cand;
            cur = c;
          }
        }
      }
      gamma = best.gamma;
      if (real_fermionic_cost(gf2::Matrix::identity(n)) <
          real_fermionic_cost(gamma))
        gamma = gf2::Matrix::identity(n);
      break;
    }
  }
  result.gamma = gamma;
  // Gamma must leave still-compressed pair members untouched (the
  // measurement reduces over those pairs in the original frame).
  for (std::size_t b : ctx.pair_members) {
    for (std::size_t c = 0; c < n; ++c) {
      FEMTO_ASSERT(gamma.get(b, c) == (b == c));
      FEMTO_ASSERT(gamma.get(c, b) == (b == c));
    }
  }
}

/// Stage 3: ordered full generators plus segment sorting, synthesis, and
/// circuit emission.
inline void stage_emit(StageContext& ctx, CompileResult& result, Rng& rng) {
  const std::vector<fermion::ExcitationTerm>& terms = *ctx.terms;
  const CompileOptions& options = *ctx.options;
  const std::size_t n = ctx.n;
  const transform::LinearEncoding enc{result.gamma};
  const transform::LinearEncoding jw_enc{gf2::Matrix::identity(n)};
  const synth::HardwareTarget& hw = options.target;
  // Sorting surrogate: device-reweighted only under connectivity constraints
  // (see the stage_transform rationale); model accounting below always uses
  // the true per-target costs.
  const synth::HardwareTarget* hw_ptr =
      hw.coupling.constrained() ? &hw : nullptr;
  // Cost of a routed two-qubit bookkeeping gate in the closed-form model
  // (exact only on unconstrained targets; the surrogate elsewhere).
  const auto pair_model_cost = [&](int base, std::size_t a, std::size_t b) {
    if (!hw.coupling.constrained()) return base;
    const int extra = static_cast<int>(hw.coupling.distance(a, b)) - 1;
    return base + (extra > 0 ? hw.routing_weight * extra : 0);
  };

  // Ordered full generators for VQE (encoding-invariant energies).
  for (std::size_t i : result.term_order)
    result.ordered_generators.push_back(
        transform::jw_map(n, terms[i].generator()));

  // Segment compilation.
  circuit::PeepholeBuilder builder(n);
  const std::vector<std::size_t> order = result.term_order;
  // Param index = position in the order.
  std::vector<int> param_of(terms.size(), -1);
  for (std::size_t pos = 0; pos < order.size(); ++pos)
    param_of[order[pos]] = static_cast<int>(pos);

  std::vector<std::size_t> active = ctx.pairs;
  std::size_t next_event = 0;

  const auto segment_spans =
      [&]() -> std::vector<std::pair<std::string, std::vector<std::size_t>>> {
    std::vector<std::pair<std::string, std::vector<std::size_t>>> spans;
    spans.push_back({"bosonic", result.plan.bosonic});
    spans.push_back({"hybrid-sink", result.plan.sinks});
    spans.push_back({"hybrid-color", result.plan.colored});
    spans.push_back({"hybrid-source", result.plan.sources});
    spans.push_back({"fermionic", result.plan.fermionic});
    return spans;
  }();

  std::size_t pos = 0;  // running position in the full order
  for (const auto& [seg_name, seg_terms] : segment_spans) {
    if (seg_terms.empty()) continue;
    SegmentReport report;
    report.name = seg_name;
    report.num_terms = seg_terms.size();

    // Chunk the segment at decompression events.
    std::vector<synth::RotationBlock> chunk;
    std::vector<std::vector<synth::RotationBlock>> chunk_terms;
    const auto flush_chunk = [&]() {
      if (chunk.empty()) return;
      std::vector<synth::RotationBlock> ordered;
      switch (options.sorting) {
        case SortingMode::kAdvanced:
          ordered = sort_advanced(chunk, rng, options.gtsp_options, hw_ptr);
          break;
        case SortingMode::kBaseline:
          ordered = sort_baseline(chunk_terms, hw_ptr);
          break;
        case SortingMode::kNone: ordered = chunk; break;
      }
      const int legacy_cost = synth::sequence_model_cost(ordered);
      report.model_cnots += legacy_cost;
      result.model_cost += hw.is_all_to_all_cnot()
                               ? legacy_cost
                               : synth::sequence_model_cost(ordered, hw);
      if (options.emit_circuit) {
        const circuit::QuantumCircuit c =
            options.synthesis_cache != nullptr
                ? options.synthesis_cache->synthesize(
                      n, ordered, synth::MergePolicy::kMerge, hw.entangler)
                : synth::synthesize_sequence(
                      n, ordered, synth::MergePolicy::kMerge, hw.entangler);
        builder.push(c);
        for (const synth::RotationBlock& b : ordered)
          result.spec.push_back(verify::SpecOp::from_block(b));
      }
      chunk.clear();
      chunk_terms.clear();
    };

    for (std::size_t i : seg_terms) {
      // Fire due decompressions.
      while (next_event < ctx.events.size() &&
             ctx.events[next_event].position <= pos) {
        flush_chunk();
        const std::size_t lo = ctx.events[next_event].low;
        result.model_cost += pair_model_cost(1, lo, lo + 1);
        if (options.emit_circuit) {
          builder.push(circuit::Gate::cnot(lo, lo + 1));
          result.spec.push_back(
              verify::SpecOp::from_gate(circuit::Gate::cnot(lo, lo + 1)));
        }
        for (std::size_t k = 0; k < active.size(); ++k)
          if (active[k] == lo) {
            active.erase(active.begin() + static_cast<std::ptrdiff_t>(k));
            break;
          }
        ++next_event;
      }
      const fermion::ExcitationTerm& term = terms[i];
      const int param = param_of[i];
      if (seg_name == "bosonic") {
        const pauli::PauliSum g =
            encoding::compressed_generator(n, term, active);
        const BosonicPair pair = locate_bosonic_pair(g);
        report.model_cnots += 2;
        result.model_cost += pair_model_cost(2, pair.p, pair.r);
        if (options.emit_circuit)
          emit_bosonic(builder, result.spec, pair, param);
      } else if (seg_name.rfind("hybrid", 0) == 0) {
        // Compressed segments are emitted in the original (JW) frame; only
        // the fermionic segment is Gamma-conjugated.
        auto blocks =
            compressed_term_blocks(n, term, active, jw_enc, param);
        chunk_terms.push_back(blocks);
        for (auto& b : blocks) chunk.push_back(std::move(b));
      } else {
        auto blocks = fermionic_term_blocks(n, term, active, enc, param);
        chunk_terms.push_back(blocks);
        for (auto& b : blocks) chunk.push_back(std::move(b));
      }
      ++pos;
    }
    flush_chunk();
    result.model_cnots += report.model_cnots;
    result.segments.push_back(std::move(report));
  }
  result.model_cnots += result.decompression_cnots;

  if (options.emit_circuit) {
    // Decompression CNOTs were pushed into the builder, so the circuit count
    // already includes them.
    result.circuit = builder.take();
    result.emitted_cnots = result.circuit.cnot_count();
    if (hw.is_all_to_all_cnot()) {
      result.device_cost = result.emitted_cnots;
    } else {
      // Route (constrained coupling) and lower to the native gate set; the
      // exact per-device figure of merit is the native entangler count of
      // this artifact.
      result.lowered =
          synth::lower_to_target(result.circuit, hw, &result.routed_swaps);
      result.device_cost = hw.circuit_cost(result.lowered);
    }
  }
}

}  // namespace detail

/// Full single-shot compilation entry point: the staged pipeline above over
/// one Rng seeded with options.seed. See core/pipeline.hpp for multi-restart
/// and batch compilation.
[[nodiscard]] inline CompileResult compile_vqe(
    std::size_t n, const std::vector<fermion::ExcitationTerm>& terms,
    const CompileOptions& options = {}) {
  if (const std::string err = validate_options(n, options); !err.empty()) {
    std::fprintf(stderr, "femto: invalid CompileOptions: %s\n", err.c_str());
    FEMTO_EXPECTS(false && "invalid CompileOptions (diagnostic above)");
  }
  Rng rng(options.seed);
  CompileResult result;
  result.num_qubits = n;
  detail::StageContext ctx;
  ctx.n = n;
  ctx.terms = &terms;
  ctx.options = &options;
  {
    obs::Span span("stage_plan", "compile");
    detail::stage_plan(ctx, result, rng);
  }
  {
    obs::Span span("stage_transform", "compile");
    detail::stage_transform(ctx, result, rng);
  }
  {
    obs::Span span("stage_emit", "compile");
    span.arg("terms", terms.size());
    detail::stage_emit(ctx, result, rng);
  }
  return result;
}

}  // namespace femto::core
