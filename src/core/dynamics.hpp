// Trotterized real-time evolution compiler (paper Sec. V extension).
//
// Compiles one first-order Trotter step exp(-i dt H) ~ prod_k exp(-i dt c_k
// P_k) with the advanced sorting engine. The same GTSP machinery that
// optimizes VQE ansatz circuits applies unchanged -- precisely the paper's
// point about extending the framework to dynamics.
#pragma once

#include <vector>

#include "core/compiler.hpp"
#include "core/rotation_blocks.hpp"
#include "core/sorting.hpp"
#include "sim/batched.hpp"
#include "synth/pauli_exponential.hpp"

namespace femto::core {

struct TrotterOptions {
  SortingMode sorting = SortingMode::kAdvanced;
  opt::GtspOptions gtsp_options{};
  std::uint64_t seed = 7;
};

struct TrotterResult {
  circuit::QuantumCircuit step;   // one Trotter step
  int model_cnots = 0;            // cost-model count of the sorted order
  int naive_cnots = 0;            // unsorted, unmerged emission
  std::vector<synth::RotationBlock> ordered_blocks;
};

/// Second-order (symmetric Suzuki) Trotter step: half step forward, half
/// step in reversed order. Error O(dt^3) per step versus O(dt^2) for first
/// order; the reversed half reuses the same sorted sequence, so the CNOT
/// cost is at most twice the first-order step minus the shared interface.
[[nodiscard]] inline circuit::QuantumCircuit second_order_step(
    std::size_t n, const std::vector<synth::RotationBlock>& ordered) {
  std::vector<synth::RotationBlock> sym;
  sym.reserve(2 * ordered.size());
  for (const auto& b : ordered) {
    sym.push_back(b);
    sym.back().angle_coeff *= 0.5;
  }
  for (auto it = ordered.rbegin(); it != ordered.rend(); ++it) {
    sym.push_back(*it);
    sym.back().angle_coeff *= 0.5;
  }
  return synth::synthesize_sequence(n, sym);
}

/// Advances a batch of initial states through `num_steps` repetitions of a
/// compiled Trotter step -- the one-circuit -> B-states case batched
/// simulation exists for (e.g. evolving an ensemble of product states or
/// perturbed references under the same dynamics). Amplitudes are
/// bit-identical to evolving each state through sim::StateVector.
[[nodiscard]] inline sim::BatchedState evolve_states(
    const circuit::QuantumCircuit& step, std::size_t num_steps,
    sim::BatchedState state) {
  for (std::size_t s = 0; s < num_steps; ++s) state.apply_circuit(step);
  return state;
}

/// Compiles one Trotter step for a Hermitian PauliSum Hamiltonian.
[[nodiscard]] inline TrotterResult compile_trotter_step(
    std::size_t n, const pauli::PauliSum& hamiltonian, double dt,
    const TrotterOptions& options = {}) {
  std::vector<synth::RotationBlock> blocks;
  for (const pauli::PauliTerm& term : hamiltonian.terms()) {
    if (term.string.is_identity_letters()) continue;  // global phase
    FEMTO_EXPECTS(std::abs(term.coefficient.imag()) < 1e-10);
    synth::RotationBlock b;
    b.string = term.string;
    b.angle_coeff = 2.0 * term.coefficient.real() * dt;
    b.param = -1;
    b.target = b.string.support().lowest_set();
    blocks.push_back(std::move(b));
  }
  TrotterResult result;
  result.naive_cnots =
      synth::synthesize_sequence(n, blocks, synth::MergePolicy::kNone)
          .cnot_count();
  Rng rng(options.seed);
  switch (options.sorting) {
    case SortingMode::kAdvanced:
      result.ordered_blocks = sort_advanced(blocks, rng, options.gtsp_options);
      break;
    case SortingMode::kBaseline:
    case SortingMode::kNone:
      result.ordered_blocks = blocks;
      break;
  }
  result.model_cnots = synth::sequence_model_cost(result.ordered_blocks);
  result.step = synth::synthesize_sequence(n, result.ordered_blocks);
  return result;
}

}  // namespace femto::core
