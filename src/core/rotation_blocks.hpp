// Conversion of anti-Hermitian generators into rotation-block lists for the
// synthesizer, plus target-qubit enumeration.
#pragma once

#include <vector>

#include "pauli/pauli_sum.hpp"
#include "synth/cost_model.hpp"

namespace femto::core {

/// Expands exp(theta * G), G = sum_k i a_k L_k (anti-Hermitian, commuting
/// strings), into rotation blocks exp(-i (-2 a_k theta)/2 L_k). Targets are
/// left at the first support qubit; sorting assigns real targets later.
[[nodiscard]] inline std::vector<synth::RotationBlock> blocks_from_generator(
    const pauli::PauliSum& g, int param) {
  std::vector<synth::RotationBlock> blocks;
  blocks.reserve(g.size());
  for (const pauli::PauliTerm& t : g.terms()) {
    FEMTO_EXPECTS(std::abs(t.coefficient.real()) < 1e-10);
    if (std::abs(t.coefficient.imag()) < 1e-14) continue;
    synth::RotationBlock b;
    b.string = t.string;
    b.angle_coeff = -2.0 * t.coefficient.imag();
    b.param = param;
    b.target = b.string.support().lowest_set();
    FEMTO_EXPECTS(b.target < b.string.num_qubits());
    blocks.push_back(std::move(b));
  }
  return blocks;
}

/// All valid target qubits (non-identity sites) of a block's string.
[[nodiscard]] inline std::vector<std::size_t> valid_targets(
    const synth::RotationBlock& b) {
  std::vector<std::size_t> targets;
  for (std::size_t q = 0; q < b.string.num_qubits(); ++q)
    if (b.string.letter(q) != pauli::Letter::I) targets.push_back(q);
  return targets;
}

}  // namespace femto::core
