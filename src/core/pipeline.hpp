// Parallel multi-restart / batch compilation pipeline behind ONE unified
// entry point: CompilePipeline::compile(CompileRequest) -> CompileResponse.
//
// A CompileRequest is the cross product (scenarios x targets x restarts)
// plus the request-scoped controls a serving tier needs: an explicit master
// seed, a wall-clock deadline, in-flight verification, and a cooperative
// cancellation flag. The same struct is what the femtod daemon accepts over
// its JSON-line protocol (service/protocol.hpp), so "compile in-process"
// and "compile via the service" are literally the same request shape -- and
// a seeded request returns a bit-identical plan either way.
//
// The historical entry points survive as thin documented adapters over
// compile():
//
//  - compile_best             one scenario, PipelineOptions.restarts fan-out
//  - compile_batch            many scenarios, one restart each
//  - compile_batch_best       many scenarios, restarts fan-out each
//  - compile_best_for_targets one scenario fanned out per hardware target
//
// Determinism contract: every job is a pure function of (scenario, derived
// seed) and writes only its own output slot; winner selection is a pure
// reduction over the complete slot vector. The same master seeds therefore
// yield bit-identical results for ANY worker count -- this is what makes
// the CI bench-regression gates trustworthy. A shared SynthesisCache
// deduplicates repeated per-segment synthesis across jobs; it memoizes a
// pure function, so it never changes results either (see
// synth/synthesis_cache.hpp).
//
// Cancellation and deadlines are cooperative and checked at RESTART
// boundaries: a restart job either runs to completion or is skipped before
// it starts, never torn mid-flight. A request that completes every job
// reports kDone and is bit-identical to an undeadlined run; a tripped
// request reports kCancelled / kDeadlineExceeded with the per-restart
// `completed` flags showing exactly what was reduced.
//
// The compile hot paths a job runs on are themselves exact rewrites under
// the same contract (see core/gamma_search.hpp, opt/gtsp.hpp). All per-job
// caches and per-thread scratch buffers are confined to one job's stack or
// thread, so the fan-out shares nothing mutable. A CompilePipeline serves
// one compile() call at a time (the service layer serializes requests); the
// shared cache underneath is fully thread-safe.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/failpoint.hpp"
#include "common/parallel.hpp"
#include "core/compiler.hpp"
#include "db/database.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "opt/restart.hpp"
#include "verify/equivalence.hpp"

namespace femto::core {

/// One unit of batch-compilation work.
struct CompileScenario {
  std::string name;  // label for benches/reports; not used by the compiler
  std::size_t num_qubits = 0;
  std::vector<fermion::ExcitationTerm> terms;
  CompileOptions options;
};

/// Cost and seed of one restart, reported for benches and tests.
struct RestartReport {
  std::uint64_t seed = 0;
  int model_cnots = 0;
  /// Target-native model / device costs (== model_cnots / emitted count on
  /// the default target).
  int model_cost = 0;
  int device_cost = 0;
  /// False when the restart job was skipped by cooperative cancellation or
  /// a deadline; its cost fields are then meaningless and the restart took
  /// no part in winner selection.
  bool completed = true;
};

struct MultiStartResult {
  CompileResult best;
  std::size_t best_restart = 0;
  std::vector<RestartReport> restarts;  // indexed by restart
  /// Per-restart verification verdicts (empty unless the request verified).
  std::vector<verify::EquivalenceReport> verification;

  /// True when verification ran and certified every restart's circuit.
  [[nodiscard]] bool all_verified() const {
    if (verification.empty()) return false;
    for (const verify::EquivalenceReport& r : verification)
      if (!r.equivalent()) return false;
    return true;
  }
};

struct TargetCompileResult {
  synth::HardwareTarget target;
  MultiStartResult result;
};

/// Terminal disposition of a CompileRequest. The service lifecycle
/// (service/lifecycle.hpp) maps these onto its terminal request states.
enum class RequestStatus {
  kDone,              // every restart job ran; results are complete
  kCancelled,         // cooperative cancel observed at a restart boundary
  kDeadlineExceeded,  // wall-clock budget expired at a restart boundary
  kRejected,          // request invalid (or refused by admission control)
};

[[nodiscard]] inline const char* to_string(RequestStatus s) {
  switch (s) {
    case RequestStatus::kDone: return "DONE";
    case RequestStatus::kCancelled: return "CANCELLED";
    case RequestStatus::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case RequestStatus::kRejected: return "REJECTED";
  }
  return "?";
}

/// THE unified compile request: what every entry point, tool, bench, and
/// the femtod wire protocol share. Wire fields are serialized by
/// service/protocol.hpp; the control-plane fields at the bottom are set by
/// the serving layer only and never cross a process boundary.
struct CompileRequest {
  std::vector<CompileScenario> scenarios;
  /// Optional hardware fan-out: when non-empty, every scenario is compiled
  /// once per target (the target overrides the scenario's options.target).
  /// Empty = each scenario compiles for its own options.target.
  std::vector<synth::HardwareTarget> targets;
  /// Independent restarts per (scenario, target); restart 0 runs the master
  /// seed itself, so the multi-restart best can never be worse.
  std::size_t restarts = 1;
  /// When set, overrides every scenario's master seed: an explicit seed is
  /// the request-level reproducibility handle (same seed = bit-identical
  /// plan, in-process or daemon-served, cold or cache-warm).
  std::optional<std::uint64_t> seed;
  /// Wall-clock budget in seconds (0 = none), measured from the start of
  /// compile() unless deadline_at overrides it. Checked cooperatively at
  /// restart boundaries.
  double deadline_s = 0.0;
  /// Certify every restart's emitted circuit against its compilation spec
  /// in-flight (verify/equivalence.hpp). Read-only on the results, so all
  /// determinism guarantees are unchanged.
  bool verify = false;

  // --- control plane (set by the serving layer; never serialized) --------
  /// Cooperative cancellation flag, polled at restart boundaries.
  const std::atomic<bool>* cancel = nullptr;
  /// Absolute deadline override; when set it wins over deadline_s so queue
  /// wait counts against the budget.
  std::optional<std::chrono::steady_clock::time_point> deadline_at;
};

/// Result of one (scenario, target) cell of a request.
struct ScenarioOutcome {
  std::string scenario;  // CompileScenario.name
  synth::HardwareTarget target;
  MultiStartResult result;
  /// Restart jobs that actually ran (== request.restarts iff nothing was
  /// skipped). 0 means `result` is empty.
  std::size_t restarts_completed = 0;
};

struct CompileResponse {
  RequestStatus status = RequestStatus::kDone;
  std::string detail;  // diagnostic for non-kDone statuses
  /// Scenario-major, then target: scenario i x target t at index i*T + t.
  std::vector<ScenarioOutcome> outcomes;

  [[nodiscard]] bool done() const { return status == RequestStatus::kDone; }
};

/// Diagnostic for an invalid request; empty string = valid. The service
/// layer validates BEFORE queueing (a daemon must reject loudly, never
/// abort), and compile() validates again on entry.
[[nodiscard]] inline std::string validate_request(const CompileRequest& r) {
  if (r.restarts < 1)
    return "CompileRequest.restarts must be >= 1 (got " +
           std::to_string(r.restarts) +
           "); a compile needs at least the master-seed restart";
  if (r.scenarios.empty())
    return "CompileRequest.scenarios is empty: nothing to compile";
  if (!(r.deadline_s >= 0.0))
    return "CompileRequest.deadline_s must be >= 0 and finite";
  const std::size_t T = r.targets.empty() ? 1 : r.targets.size();
  for (const CompileScenario& s : r.scenarios) {
    for (std::size_t t = 0; t < T; ++t) {
      CompileOptions o = s.options;
      if (!r.targets.empty()) o.target = r.targets[t];
      if (const std::string err = validate_options(s.num_qubits, o);
          !err.empty())
        return "scenario '" + s.name + "': " + err;
    }
  }
  return "";
}

struct PipelineOptions {
  // NOTE: there is deliberately NO positional constructor. The historical
  // (workers, restarts, bool, bool) form put share_synthesis_cache and
  // verify side by side -- a silent-transposition bug waiting to happen.
  // Use designated initializers or field assignment.

  /// Worker threads; 0 = hardware concurrency.
  std::size_t workers = 0;
  /// Restarts per compile in compile_best / compile_batch_best.
  std::size_t restarts = 1;
  /// Share one synthesis memo across all jobs of a call.
  bool share_synthesis_cache = true;
  /// Default for the adapter entry points (compile_best & co.); a
  /// CompileRequest carries its own verify flag. Non-default targets
  /// certify the LOWERED/routed circuit, so the routing and native-gate
  /// passes are inside the verified boundary.
  bool verify = false;
  /// Checker knobs used when verification runs.
  verify::EquivalenceOptions verify_options;
  /// Path to a persistent compilation database (db/database.hpp), attached
  /// as a read-through L2 behind the shared in-memory memo. Empty = no
  /// database. The file is opened read-only (mmap, shared across threads
  /// and processes); a path that fails to open is a loud constructor error,
  /// never a silently empty database. The database serves the same pure
  /// function the cache memoizes, so results are bit-identical with the
  /// database enabled, disabled, cold, or warm -- and verify-on-compile
  /// certifies served artifacts like any other.
  std::string database_path;
  /// Degrade instead of aborting when database_path fails to open: the
  /// pipeline logs loudly, raises the service.degraded gauge, and serves
  /// from pure in-process synthesis. Because the database only memoizes a
  /// pure function, degraded results are bit-identical to a pipeline with
  /// no database at all. Default off: an unopenable database stays a hard
  /// constructor error unless the operator opted into degradation
  /// (femtod --degrade-on-db-error).
  bool degrade_on_db_error = false;
  /// Memory bound for the shared synthesis cache (0 fields = unbounded).
  synth::SynthesisCache::Budget cache_budget;

  /// Diagnostic for inconsistent configurations; empty string = valid.
  [[nodiscard]] std::string validate() const {
    if (restarts < 1)
      return "PipelineOptions.restarts must be >= 1 (got " +
             std::to_string(restarts) + "); a compile needs at least the "
             "master-seed restart";
    if (verify && verify_options.allow_dense_fallback &&
        verify_options.dense_trials < 1)
      return "PipelineOptions.verify is on but verify_options.dense_trials "
             "is " +
             std::to_string(verify_options.dense_trials) +
             "; the dense arbiter needs at least one trial (or disable "
             "allow_dense_fallback)";
    return "";
  }
};

class CompilePipeline {
 public:
  explicit CompilePipeline(PipelineOptions options = {})
      : options_(std::move(options)),
        pool_(options_.workers),
        cache_(options_.cache_budget) {
    if (const std::string err = options_.validate(); !err.empty()) {
      std::fprintf(stderr, "femto: invalid PipelineOptions: %s\n",
                   err.c_str());
      FEMTO_EXPECTS(false && "invalid PipelineOptions (diagnostic above)");
    }
    if (!options_.database_path.empty()) {
      std::string err;
      database_ = db::Database::open(options_.database_path, &err);
      if (!database_.has_value()) {
        if (options_.degrade_on_db_error) {
          db_degraded_ = true;
          obs::registry().gauge("service.degraded").set(1);
          std::fprintf(
              stderr,
              "femto: DEGRADED: cannot open compilation database: %s; "
              "serving from in-process synthesis only (results remain "
              "bit-identical to a database-free pipeline)\n",
              err.c_str());
        } else {
          std::fprintf(stderr,
                       "femto: cannot open compilation database: %s\n",
                       err.c_str());
          FEMTO_EXPECTS(false &&
                        "cannot open compilation database (diagnostic above)");
        }
      } else {
        cache_.set_store(&*database_);
      }
    }
  }

  [[nodiscard]] std::size_t worker_count() const {
    return pool_.worker_count();
  }
  [[nodiscard]] const PipelineOptions& options() const { return options_; }
  [[nodiscard]] const synth::SynthesisCache& cache() const { return cache_; }
  /// Mutable cache access (budget changes, attaching a recording store).
  [[nodiscard]] synth::SynthesisCache& mutable_cache() { return cache_; }
  /// The database opened from PipelineOptions.database_path, or nullptr.
  [[nodiscard]] const db::Database* database() const {
    return database_.has_value() ? &*database_ : nullptr;
  }
  /// True iff database_path was set but failed to open and
  /// degrade_on_db_error accepted serving without it.
  [[nodiscard]] bool db_degraded() const { return db_degraded_; }
  /// Attaches a second-level store (e.g. a db::DatabaseBuilder recording a
  /// cold run for femto-db). Replaces the database from database_path; call
  /// before compiling, not concurrently with it.
  void set_store(synth::SynthesisStore* store) { cache_.set_store(store); }
  [[nodiscard]] ThreadPool& pool() { return pool_; }

  /// Verification verdicts of the most recent compile, in job order
  /// (scenario i x target t, restart r at index (i*T + t)*R + r). Empty
  /// unless the request verified.
  [[nodiscard]] const std::vector<verify::EquivalenceReport>&
  last_verification() const {
    return last_verification_;
  }

  /// THE unified entry point: every (scenario, target) cell multi-restarted
  /// on one job queue, reduced deterministically, optionally verified, with
  /// cooperative cancel/deadline checks at restart boundaries. Invalid
  /// requests return kRejected with a diagnostic -- compile() never aborts
  /// on request content, so a serving daemon survives any wire input.
  [[nodiscard]] CompileResponse compile(const CompileRequest& request) {
    obs::Span span("compile_request", "pipeline");
    static obs::Counter& compiles =
        obs::registry().counter("pipeline.compiles");
    compiles.inc();
    CompileResponse out;
    if (std::string err = validate_request(request); !err.empty()) {
      out.status = RequestStatus::kRejected;
      out.detail = std::move(err);
      last_verification_.clear();
      return out;
    }
    const std::size_t S = request.scenarios.size();
    const std::size_t T = request.targets.empty() ? 1 : request.targets.size();
    const std::size_t R = request.restarts;
    span.arg("scenarios", S);
    span.arg("targets", T);
    span.arg("restarts", R);

    // Expand the (scenario x target) grid into per-cell base options, then
    // fan each cell out into restart jobs on derived seed streams.
    std::vector<CompileOptions> expanded(S * T);
    std::vector<Job> jobs;
    jobs.reserve(S * T * R);
    for (std::size_t i = 0; i < S; ++i) {
      const CompileScenario& s = request.scenarios[i];
      for (std::size_t t = 0; t < T; ++t) {
        CompileOptions base = s.options;
        if (!request.targets.empty()) base.target = request.targets[t];
        if (request.seed.has_value()) base.seed = *request.seed;
        expanded[i * T + t] = base;
        for (std::size_t r = 0; r < R; ++r) {
          Job job{s.num_qubits, &s.terms, base, &s.name, r};
          job.options.seed = opt::restart_seed(base.seed, r);
          jobs.push_back(std::move(job));
        }
      }
    }

    using clock = std::chrono::steady_clock;
    clock::time_point deadline = clock::time_point::max();
    if (request.deadline_at.has_value()) {
      deadline = *request.deadline_at;
    } else if (request.deadline_s > 0.0) {
      deadline = clock::now() +
                 std::chrono::duration_cast<clock::duration>(
                     std::chrono::duration<double>(request.deadline_s));
    }

    std::vector<std::uint8_t> completed;
    std::vector<CompileResult> results = run_jobs(
        std::move(jobs), request.verify, request.cancel, deadline, completed);

    out.outcomes.reserve(S * T);
    std::size_t done_jobs = 0;
    for (std::size_t cell = 0; cell < S * T; ++cell) {
      ScenarioOutcome oc;
      oc.scenario = request.scenarios[cell / T].name;
      oc.target = expanded[cell].target;
      std::vector<CompileResult> slice(
          std::make_move_iterator(results.begin() +
                                  static_cast<std::ptrdiff_t>(cell * R)),
          std::make_move_iterator(results.begin() +
                                  static_cast<std::ptrdiff_t>((cell + 1) * R)));
      oc.result = reduce_restarts(expanded[cell].seed, expanded[cell],
                                  std::move(slice), &completed[cell * R]);
      for (std::size_t r = 0; r < R; ++r)
        if (completed[cell * R + r]) ++oc.restarts_completed;
      done_jobs += oc.restarts_completed;
      if (!last_verification_.empty())
        oc.result.verification.assign(
            last_verification_.begin() +
                static_cast<std::ptrdiff_t>(cell * R),
            last_verification_.begin() +
                static_cast<std::ptrdiff_t>((cell + 1) * R));
      out.outcomes.push_back(std::move(oc));
    }

    const std::size_t total_jobs = S * T * R;
    if (done_jobs == total_jobs) {
      out.status = RequestStatus::kDone;
    } else if (request.cancel != nullptr &&
               request.cancel->load(std::memory_order_relaxed)) {
      out.status = RequestStatus::kCancelled;
      out.detail = "cancelled after " + std::to_string(done_jobs) + " of " +
                   std::to_string(total_jobs) + " restart jobs";
    } else {
      out.status = RequestStatus::kDeadlineExceeded;
      out.detail = "deadline exceeded after " + std::to_string(done_jobs) +
                   " of " + std::to_string(total_jobs) + " restart jobs";
    }
    return out;
  }

  // --- historical entry points: thin adapters over compile() -------------

  /// N = PipelineOptions.restarts independent restarts of one compile;
  /// keeps the best-cost plan. Restart r runs options.seed for r == 0 and a
  /// derived stream otherwise, so the result can never cost more than
  /// single-shot compile_vqe(options) and is bit-identical for any worker
  /// count. Adapter for compile() with one scenario.
  [[nodiscard]] MultiStartResult compile_best(
      std::size_t n, const std::vector<fermion::ExcitationTerm>& terms,
      const CompileOptions& options) {
    CompileRequest req;
    req.scenarios.push_back({"", n, terms, options});
    req.restarts = options_.restarts;
    req.verify = options_.verify;
    CompileResponse resp = compile(req);
    expect_done(resp, "compile_best");
    return std::move(resp.outcomes.front().result);
  }

  /// Batch-compiles scenarios once each (no restart fan-out); results[i]
  /// belongs to scenarios[i]. Adapter for compile() with restarts = 1.
  [[nodiscard]] std::vector<CompileResult> compile_batch(
      const std::vector<CompileScenario>& scenarios) {
    CompileRequest req;
    req.scenarios = scenarios;
    req.restarts = 1;
    req.verify = options_.verify;
    CompileResponse resp = compile(req);
    expect_done(resp, "compile_batch");
    std::vector<CompileResult> results;
    results.reserve(resp.outcomes.size());
    for (ScenarioOutcome& oc : resp.outcomes)
      results.push_back(std::move(oc.result.best));
    return results;
  }

  /// One multi-restart compile per hardware target (all restarts of all
  /// targets share one job queue on the pool). Results come back in target
  /// order. Adapter for compile() with a target fan-out.
  [[nodiscard]] std::vector<TargetCompileResult> compile_best_for_targets(
      std::size_t n, const std::vector<fermion::ExcitationTerm>& terms,
      const CompileOptions& base,
      const std::vector<synth::HardwareTarget>& targets) {
    CompileRequest req;
    req.scenarios.push_back({"", n, terms, base});
    req.targets = targets;
    req.restarts = options_.restarts;
    req.verify = options_.verify;
    CompileResponse resp = compile(req);
    expect_done(resp, "compile_best_for_targets");
    std::vector<TargetCompileResult> out;
    out.reserve(targets.size());
    for (std::size_t t = 0; t < targets.size(); ++t)
      out.push_back({targets[t], std::move(resp.outcomes[t].result)});
    return out;
  }

  /// Multi-restarts every scenario; results[i] belongs to scenarios[i]. All
  /// scenarios' restarts share one job queue, so wide batches keep every
  /// worker busy even when individual scenarios are small. Adapter for
  /// compile().
  [[nodiscard]] std::vector<MultiStartResult> compile_batch_best(
      const std::vector<CompileScenario>& scenarios) {
    CompileRequest req;
    req.scenarios = scenarios;
    req.restarts = options_.restarts;
    req.verify = options_.verify;
    CompileResponse resp = compile(req);
    expect_done(resp, "compile_batch_best");
    std::vector<MultiStartResult> out;
    out.reserve(resp.outcomes.size());
    for (ScenarioOutcome& oc : resp.outcomes)
      out.push_back(std::move(oc.result));
    return out;
  }

 private:
  struct Job {
    std::size_t num_qubits = 0;
    const std::vector<fermion::ExcitationTerm>* terms = nullptr;
    CompileOptions options;
    /// Trace-span labels only; never read by the compiler itself.
    const std::string* scenario_name = nullptr;
    std::size_t restart = 0;
  };

  /// The adapters promise complete results; anything else is a programming
  /// error at the call site (the service layer, which handles partial
  /// statuses, calls compile() directly).
  static void expect_done(const CompileResponse& resp, const char* entry) {
    if (resp.done()) return;
    std::fprintf(stderr, "femto: %s failed: %s: %s\n", entry,
                 to_string(resp.status), resp.detail.c_str());
    FEMTO_EXPECTS(false && "compile request failed (diagnostic above)");
  }

  /// Runs all jobs on the pool (slot-indexed, so output order == input
  /// order). Each job checks the cancel flag and deadline BEFORE running --
  /// the cooperative restart-boundary check -- and either runs to
  /// completion (completed[i] = 1) or is skipped whole (completed[i] = 0).
  /// With verify, each completed job also certifies its emitted circuit
  /// against the recorded spec before returning its slot.
  [[nodiscard]] std::vector<CompileResult> run_jobs(
      std::vector<Job> jobs, bool verify, const std::atomic<bool>* cancel,
      std::chrono::steady_clock::time_point deadline,
      std::vector<std::uint8_t>& completed) {
    std::vector<CompileResult> results(jobs.size());
    completed.assign(jobs.size(), 1);
    last_verification_.clear();
    if (verify) last_verification_.resize(jobs.size());
    const verify::EquivalenceChecker checker(options_.verify_options);
    static obs::Counter& restarts_completed =
        obs::registry().counter("pipeline.restarts_completed");
    static obs::Counter& restarts_skipped =
        obs::registry().counter("pipeline.restarts_skipped");
    pool_.parallel_for(jobs.size(), [&](std::size_t i) {
      if ((cancel != nullptr && cancel->load(std::memory_order_relaxed)) ||
          std::chrono::steady_clock::now() > deadline) {
        completed[i] = 0;
        restarts_skipped.inc();
        if (verify)
          last_verification_[i].detail =
              "not verified: restart job skipped (cancelled or deadline "
              "exceeded)";
        return;
      }
      obs::Span span("restart", "pipeline");
      span.arg("restart", jobs[i].restart);
      if (jobs[i].scenario_name != nullptr)
        span.arg("scenario", *jobs[i].scenario_name);
      span.arg("target", jobs[i].options.target.name);
      CompileOptions options = jobs[i].options;
      if (options_.share_synthesis_cache && options.emit_circuit)
        options.synthesis_cache = &cache_;
      results[i] = compile_vqe(jobs[i].num_qubits, *jobs[i].terms, options);
      if (FEMTO_FAILPOINT("pipeline.restart")) {
        // Injected transient fault at the restart boundary: throw the
        // finished job away and recompute it. compile_vqe is a pure
        // function of (scenario, derived seed), so the retry is
        // bit-identical -- chaos runs pin exactly that.
        static obs::Counter& restart_retries =
            obs::registry().counter("pipeline.restart_retries");
        restart_retries.inc();
        results[i] = compile_vqe(jobs[i].num_qubits, *jobs[i].terms, options);
      }
      restarts_completed.inc();
      if (verify) {
        obs::Span vspan("verify", "pipeline");
        vspan.arg("restart", jobs[i].restart);
        if (options.emit_circuit) {
          // Certify the final artifact: on non-default targets that is the
          // lowered/routed circuit, so the routing pass and native-gate
          // lowering sit INSIDE the verified boundary.
          last_verification_[i] =
              checker.check_spec(results[i].final_circuit(), results[i].spec);
        } else {
          // Nothing to certify: say so instead of leaving a blank report
          // that reads like a silent failure.
          last_verification_[i].detail =
              "not verified: no circuit emitted (emit_circuit = false)";
        }
      }
    });
    return results;
  }

  /// The figure of merit a restart is ranked by: the historical model-CNOT
  /// count on the default target (bit-identical winner selection), the
  /// exact device cost of the lowered/routed artifact on other targets
  /// (falling back to the closed-form model when nothing was emitted) --
  /// the pipeline keeps the plan that is best for the DEVICE it compiled
  /// for, matching the objectives the stochastic stages optimized.
  [[nodiscard]] static int ranking_cost(const CompileResult& r,
                                        const CompileOptions& options) {
    if (options.target.is_all_to_all_cnot()) return r.model_cnots;
    return options.emit_circuit ? r.device_cost : r.model_cost;
  }

  /// Deterministic winner selection over the COMPLETED restarts:
  /// (ranking_cost, restart index). Skipped restarts keep their report slot
  /// (completed = false) but never compete.
  [[nodiscard]] static MultiStartResult reduce_restarts(
      std::uint64_t master_seed, const CompileOptions& options,
      std::vector<CompileResult> results, const std::uint8_t* completed) {
    MultiStartResult out;
    out.restarts.reserve(results.size());
    int best_cost = 0;
    bool have_best = false;
    for (std::size_t r = 0; r < results.size(); ++r) {
      const bool ok = completed == nullptr || completed[r] != 0;
      out.restarts.push_back({opt::restart_seed(master_seed, r),
                              results[r].model_cnots, results[r].model_cost,
                              results[r].device_cost, ok});
      if (!ok) continue;
      const int cost = ranking_cost(results[r], options);
      if (!have_best || cost < best_cost) {
        have_best = true;
        best_cost = cost;
        out.best = std::move(results[r]);
        out.best_restart = r;
      }
    }
    return out;
  }

  PipelineOptions options_;
  ThreadPool pool_;
  synth::SynthesisCache cache_;
  std::optional<db::Database> database_;
  bool db_degraded_ = false;
  std::vector<verify::EquivalenceReport> last_verification_;
};

}  // namespace femto::core
