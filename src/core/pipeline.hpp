// Parallel multi-restart / batch compilation pipeline.
//
// Wraps the staged single-shot compiler (core/compiler.hpp) in a job queue
// on a std::thread worker pool (common/parallel.hpp):
//
//  - compile_best   N independent restarts of one compile, each on its own
//                   Rng stream derived from the master seed (restart 0 runs
//                   the master seed itself, so it reproduces the historical
//                   single-shot call bit-for-bit and the multi-restart best
//                   can never be worse). The winner is the lowest-cost plan
//                   in the TARGET's figure of merit (model CNOTs on the
//                   default target, device cost otherwise), ties broken
//                   toward the lowest restart index.
//  - compile_batch  many scenarios (molecule x transform x sorting mode) in
//                   one call; results come back in input order.
//  - compile_batch_best  the cross product: every scenario multi-restarted.
//
// Determinism contract: every job is a pure function of (scenario, derived
// seed) and writes only its own output slot; winner selection is a pure
// reduction over the complete slot vector. The same master seeds therefore
// yield bit-identical results for ANY worker count -- this is what makes
// the CI bench-regression gates trustworthy. A shared SynthesisCache
// deduplicates repeated per-segment synthesis across jobs; it memoizes a
// pure function, so it never changes results either (see
// synth/synthesis_cache.hpp).
//
// The compile hot paths a job runs on are themselves exact rewrites under
// the same contract: the incremental Gamma objective replays the SA RNG
// stream of the full-recompute search (core/gamma_search.hpp), the dense
// GTSP core replays the lazy solver's stream (opt/gtsp.hpp), and the
// per-compile StringCostCache / per-Gamma cost memos cache pure functions.
// All per-job caches and per-thread scratch buffers are confined to one
// job's stack or thread, so the fan-out shares nothing mutable; restart
// fan-outs inside one job (e.g. GTSP restarts) share only const
// precomputed state built before the fan-out (opt/restart.hpp).
#pragma once

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/parallel.hpp"
#include "core/compiler.hpp"
#include "db/database.hpp"
#include "opt/restart.hpp"
#include "verify/equivalence.hpp"

namespace femto::core {

/// One unit of batch-compilation work.
struct CompileScenario {
  std::string name;  // label for benches/reports; not used by the compiler
  std::size_t num_qubits = 0;
  std::vector<fermion::ExcitationTerm> terms;
  CompileOptions options;
};

/// Cost and seed of one restart, reported for benches and tests.
struct RestartReport {
  std::uint64_t seed = 0;
  int model_cnots = 0;
  /// Target-native model / device costs (== model_cnots / emitted count on
  /// the default target).
  int model_cost = 0;
  int device_cost = 0;
};

struct MultiStartResult {
  CompileResult best;
  std::size_t best_restart = 0;
  std::vector<RestartReport> restarts;  // indexed by restart
  /// Per-restart verification verdicts (empty unless PipelineOptions.verify).
  std::vector<verify::EquivalenceReport> verification;

  /// True when verification ran and certified every restart's circuit.
  [[nodiscard]] bool all_verified() const {
    if (verification.empty()) return false;
    for (const verify::EquivalenceReport& r : verification)
      if (!r.equivalent()) return false;
    return true;
  }
};

struct TargetCompileResult {
  synth::HardwareTarget target;
  MultiStartResult result;
};

struct PipelineOptions {
  PipelineOptions() = default;
  PipelineOptions(std::size_t workers_, std::size_t restarts_,
                  bool share_synthesis_cache_ = true, bool verify_ = false)
      : workers(workers_),
        restarts(restarts_),
        share_synthesis_cache(share_synthesis_cache_),
        verify(verify_) {}

  /// Worker threads; 0 = hardware concurrency.
  std::size_t workers = 0;
  /// Restarts per compile in compile_best / compile_batch_best.
  std::size_t restarts = 1;
  /// Share one synthesis memo across all jobs of a call.
  bool share_synthesis_cache = true;
  /// Certify every emitted circuit against its compilation spec in-flight
  /// (verify/equivalence.hpp), parallelized on the same worker pool. Purely
  /// read-only on the results, so all determinism guarantees are unchanged.
  /// Non-default targets certify the LOWERED/routed circuit, so the routing
  /// and native-gate passes are inside the verified boundary.
  bool verify = false;
  /// Checker knobs used when `verify` is on.
  verify::EquivalenceOptions verify_options;
  /// Path to a persistent compilation database (db/database.hpp), attached
  /// as a read-through L2 behind the shared in-memory memo. Empty = no
  /// database. The file is opened read-only (mmap, shared across threads
  /// and processes); a path that fails to open is a loud constructor error,
  /// never a silently empty database. The database serves the same pure
  /// function the cache memoizes, so results are bit-identical with the
  /// database enabled, disabled, cold, or warm -- and verify-on-compile
  /// certifies served artifacts like any other.
  std::string database_path;
  /// Memory bound for the shared synthesis cache (0 fields = unbounded).
  synth::SynthesisCache::Budget cache_budget;

  /// Diagnostic for inconsistent configurations; empty string = valid.
  [[nodiscard]] std::string validate() const {
    if (restarts < 1)
      return "PipelineOptions.restarts must be >= 1 (got " +
             std::to_string(restarts) + "); a compile needs at least the "
             "master-seed restart";
    if (verify && verify_options.allow_dense_fallback &&
        verify_options.dense_trials < 1)
      return "PipelineOptions.verify is on but verify_options.dense_trials "
             "is " +
             std::to_string(verify_options.dense_trials) +
             "; the dense arbiter needs at least one trial (or disable "
             "allow_dense_fallback)";
    return "";
  }
};

class CompilePipeline {
 public:
  explicit CompilePipeline(PipelineOptions options = {})
      : options_(std::move(options)),
        pool_(options_.workers),
        cache_(options_.cache_budget) {
    if (const std::string err = options_.validate(); !err.empty()) {
      std::fprintf(stderr, "femto: invalid PipelineOptions: %s\n",
                   err.c_str());
      FEMTO_EXPECTS(false && "invalid PipelineOptions (diagnostic above)");
    }
    if (!options_.database_path.empty()) {
      std::string err;
      database_ = db::Database::open(options_.database_path, &err);
      if (!database_.has_value()) {
        std::fprintf(stderr, "femto: cannot open compilation database: %s\n",
                     err.c_str());
        FEMTO_EXPECTS(false &&
                      "cannot open compilation database (diagnostic above)");
      }
      cache_.set_store(&*database_);
    }
  }

  [[nodiscard]] std::size_t worker_count() const {
    return pool_.worker_count();
  }
  [[nodiscard]] const synth::SynthesisCache& cache() const { return cache_; }
  /// Mutable cache access (budget changes, attaching a recording store).
  [[nodiscard]] synth::SynthesisCache& mutable_cache() { return cache_; }
  /// The database opened from PipelineOptions.database_path, or nullptr.
  [[nodiscard]] const db::Database* database() const {
    return database_.has_value() ? &*database_ : nullptr;
  }
  /// Attaches a second-level store (e.g. a db::DatabaseBuilder recording a
  /// cold run for femto-db). Replaces the database from database_path; call
  /// before compiling, not concurrently with it.
  void set_store(synth::SynthesisStore* store) { cache_.set_store(store); }
  [[nodiscard]] ThreadPool& pool() { return pool_; }

  /// Verification verdicts of the most recent compile_* call, in job order
  /// (compile_batch: one per scenario; compile_best / compile_batch_best:
  /// restarts-major, i.e. scenario i restart r at index i * restarts + r).
  /// Empty unless PipelineOptions.verify is set.
  [[nodiscard]] const std::vector<verify::EquivalenceReport>&
  last_verification() const {
    return last_verification_;
  }

  /// N independent restarts of one compile; keeps the best-cost plan.
  /// Restart r runs options.seed for r == 0 and a derived stream otherwise,
  /// so the result can never cost more than single-shot compile_vqe(options)
  /// and is bit-identical for any worker count.
  [[nodiscard]] MultiStartResult compile_best(
      std::size_t n, const std::vector<fermion::ExcitationTerm>& terms,
      const CompileOptions& options) {
    MultiStartResult out;
    run_jobs(make_restart_jobs(n, terms, options), [&](std::vector<CompileResult> results) {
      out = reduce_restarts(options.seed, options, std::move(results));
    });
    out.verification = last_verification_;
    return out;
  }

  /// Batch-compiles scenarios; results[i] belongs to scenarios[i].
  [[nodiscard]] std::vector<CompileResult> compile_batch(
      const std::vector<CompileScenario>& scenarios) {
    std::vector<Job> jobs;
    jobs.reserve(scenarios.size());
    for (const CompileScenario& s : scenarios)
      jobs.push_back({s.num_qubits, &s.terms, s.options});
    std::vector<CompileResult> results;
    run_jobs(std::move(jobs),
             [&](std::vector<CompileResult> r) { results = std::move(r); });
    return results;
  }

  /// One multi-restart compile per hardware target (all restarts of all
  /// targets share one job queue on the pool). Results come back in target
  /// order; with PipelineOptions.verify on, every restart's lowered/routed
  /// circuit is certified against its compilation spec, so per-device
  /// Table-1 comparisons carry equivalence certificates.
  [[nodiscard]] std::vector<TargetCompileResult> compile_best_for_targets(
      std::size_t n, const std::vector<fermion::ExcitationTerm>& terms,
      const CompileOptions& base,
      const std::vector<synth::HardwareTarget>& targets) {
    std::vector<CompileScenario> scenarios;
    scenarios.reserve(targets.size());
    for (const synth::HardwareTarget& t : targets) {
      CompileScenario s;
      s.name = t.name;
      s.num_qubits = n;
      s.terms = terms;
      s.options = base;
      s.options.target = t;
      scenarios.push_back(std::move(s));
    }
    std::vector<MultiStartResult> multi = compile_batch_best(scenarios);
    std::vector<TargetCompileResult> out;
    out.reserve(targets.size());
    for (std::size_t i = 0; i < targets.size(); ++i)
      out.push_back({targets[i], std::move(multi[i])});
    return out;
  }

  /// Multi-restarts every scenario; results[i] belongs to scenarios[i]. All
  /// scenarios' restarts share one job queue, so wide batches keep every
  /// worker busy even when individual scenarios are small.
  [[nodiscard]] std::vector<MultiStartResult> compile_batch_best(
      const std::vector<CompileScenario>& scenarios) {
    std::vector<Job> jobs;
    jobs.reserve(scenarios.size() * options_.restarts);
    for (const CompileScenario& s : scenarios) {
      std::vector<Job> one = make_restart_jobs(s.num_qubits, s.terms, s.options);
      for (Job& j : one) jobs.push_back(std::move(j));
    }
    std::vector<MultiStartResult> out(scenarios.size());
    run_jobs(std::move(jobs), [&](std::vector<CompileResult> results) {
      for (std::size_t i = 0; i < scenarios.size(); ++i) {
        std::vector<CompileResult> slice(
            std::make_move_iterator(results.begin() +
                                    static_cast<std::ptrdiff_t>(i * options_.restarts)),
            std::make_move_iterator(results.begin() +
                                    static_cast<std::ptrdiff_t>((i + 1) * options_.restarts)));
        out[i] = reduce_restarts(scenarios[i].options.seed,
                                 scenarios[i].options, std::move(slice));
        if (!last_verification_.empty())
          out[i].verification.assign(
              last_verification_.begin() +
                  static_cast<std::ptrdiff_t>(i * options_.restarts),
              last_verification_.begin() +
                  static_cast<std::ptrdiff_t>((i + 1) * options_.restarts));
      }
    });
    return out;
  }

 private:
  struct Job {
    std::size_t num_qubits = 0;
    const std::vector<fermion::ExcitationTerm>* terms = nullptr;
    CompileOptions options;
  };

  [[nodiscard]] std::vector<Job> make_restart_jobs(
      std::size_t n, const std::vector<fermion::ExcitationTerm>& terms,
      const CompileOptions& base) {
    std::vector<Job> jobs;
    jobs.reserve(options_.restarts);
    for (std::size_t r = 0; r < options_.restarts; ++r) {
      Job job{n, &terms, base};
      job.options.seed = opt::restart_seed(base.seed, r);
      jobs.push_back(std::move(job));
    }
    return jobs;
  }

  /// Runs all jobs on the pool (slot-indexed, so output order == input
  /// order) and hands the complete result vector to `consume`. With
  /// PipelineOptions.verify each job also certifies its emitted circuit
  /// against the recorded spec before returning its slot.
  template <typename Consume>
  void run_jobs(std::vector<Job> jobs, Consume&& consume) {
    std::vector<CompileResult> results(jobs.size());
    last_verification_.clear();
    if (options_.verify)
      last_verification_.resize(jobs.size());
    const verify::EquivalenceChecker checker(options_.verify_options);
    pool_.parallel_for(jobs.size(), [&](std::size_t i) {
      CompileOptions options = jobs[i].options;
      if (options_.share_synthesis_cache && options.emit_circuit)
        options.synthesis_cache = &cache_;
      results[i] = compile_vqe(jobs[i].num_qubits, *jobs[i].terms, options);
      if (options_.verify) {
        if (options.emit_circuit) {
          // Certify the final artifact: on non-default targets that is the
          // lowered/routed circuit, so the routing pass and native-gate
          // lowering sit INSIDE the verified boundary.
          last_verification_[i] =
              checker.check_spec(results[i].final_circuit(), results[i].spec);
        } else {
          // Nothing to certify: say so instead of leaving a blank report
          // that reads like a silent failure.
          last_verification_[i].detail =
              "not verified: no circuit emitted (emit_circuit = false)";
        }
      }
    });
    consume(std::move(results));
  }

  /// The figure of merit a restart is ranked by: the historical model-CNOT
  /// count on the default target (bit-identical winner selection), the
  /// exact device cost of the lowered/routed artifact on other targets
  /// (falling back to the closed-form model when nothing was emitted) --
  /// the pipeline keeps the plan that is best for the DEVICE it compiled
  /// for, matching the objectives the stochastic stages optimized.
  [[nodiscard]] static int ranking_cost(const CompileResult& r,
                                        const CompileOptions& options) {
    if (options.target.is_all_to_all_cnot()) return r.model_cnots;
    return options.emit_circuit ? r.device_cost : r.model_cost;
  }

  /// Deterministic winner selection: (ranking_cost, restart index).
  [[nodiscard]] MultiStartResult reduce_restarts(
      std::uint64_t master_seed, const CompileOptions& options,
      std::vector<CompileResult> results) {
    MultiStartResult out;
    out.restarts.reserve(results.size());
    int best_cost = 0;
    for (std::size_t r = 0; r < results.size(); ++r) {
      out.restarts.push_back({opt::restart_seed(master_seed, r),
                              results[r].model_cnots, results[r].model_cost,
                              results[r].device_cost});
      const int cost = ranking_cost(results[r], options);
      if (r == 0 || cost < best_cost) {
        best_cost = cost;
        out.best = std::move(results[r]);
        out.best_restart = r;
      }
    }
    return out;
  }

  PipelineOptions options_;
  ThreadPool pool_;
  synth::SynthesisCache cache_;
  std::optional<db::Database> database_;
  std::vector<verify::EquivalenceReport> last_verification_;
};

}  // namespace femto::core
