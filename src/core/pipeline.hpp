// Parallel multi-restart / batch compilation pipeline.
//
// Wraps the staged single-shot compiler (core/compiler.hpp) in a job queue
// on a std::thread worker pool (common/parallel.hpp):
//
//  - compile_best   N independent restarts of one compile, each on its own
//                   Rng stream derived from the master seed (restart 0 runs
//                   the master seed itself, so it reproduces the historical
//                   single-shot call bit-for-bit and the multi-restart best
//                   can never be worse). The winner is the lowest model-CNOT
//                   plan, ties broken toward the lowest restart index.
//  - compile_batch  many scenarios (molecule x transform x sorting mode) in
//                   one call; results come back in input order.
//  - compile_batch_best  the cross product: every scenario multi-restarted.
//
// Determinism contract: every job is a pure function of (scenario, derived
// seed) and writes only its own output slot; winner selection is a pure
// reduction over the complete slot vector. The same master seeds therefore
// yield bit-identical results for ANY worker count -- this is what makes
// the CI bench-regression gates trustworthy. A shared SynthesisCache
// deduplicates repeated per-segment synthesis across jobs; it memoizes a
// pure function, so it never changes results either (see
// synth/synthesis_cache.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/parallel.hpp"
#include "core/compiler.hpp"
#include "opt/restart.hpp"
#include "verify/equivalence.hpp"

namespace femto::core {

/// One unit of batch-compilation work.
struct CompileScenario {
  std::string name;  // label for benches/reports; not used by the compiler
  std::size_t num_qubits = 0;
  std::vector<fermion::ExcitationTerm> terms;
  CompileOptions options;
};

/// Cost and seed of one restart, reported for benches and tests.
struct RestartReport {
  std::uint64_t seed = 0;
  int model_cnots = 0;
};

struct MultiStartResult {
  CompileResult best;
  std::size_t best_restart = 0;
  std::vector<RestartReport> restarts;  // indexed by restart
  /// Per-restart verification verdicts (empty unless PipelineOptions.verify).
  std::vector<verify::EquivalenceReport> verification;

  /// True when verification ran and certified every restart's circuit.
  [[nodiscard]] bool all_verified() const {
    if (verification.empty()) return false;
    for (const verify::EquivalenceReport& r : verification)
      if (!r.equivalent()) return false;
    return true;
  }
};

struct PipelineOptions {
  PipelineOptions() = default;
  PipelineOptions(std::size_t workers_, std::size_t restarts_,
                  bool share_synthesis_cache_ = true, bool verify_ = false)
      : workers(workers_),
        restarts(restarts_),
        share_synthesis_cache(share_synthesis_cache_),
        verify(verify_) {}

  /// Worker threads; 0 = hardware concurrency.
  std::size_t workers = 0;
  /// Restarts per compile in compile_best / compile_batch_best.
  std::size_t restarts = 1;
  /// Share one synthesis memo across all jobs of a call.
  bool share_synthesis_cache = true;
  /// Certify every emitted circuit against its compilation spec in-flight
  /// (verify/equivalence.hpp), parallelized on the same worker pool. Purely
  /// read-only on the results, so all determinism guarantees are unchanged.
  bool verify = false;
  /// Checker knobs used when `verify` is on.
  verify::EquivalenceOptions verify_options;
};

class CompilePipeline {
 public:
  explicit CompilePipeline(PipelineOptions options = {})
      : options_(options), pool_(options.workers) {
    FEMTO_EXPECTS(options_.restarts >= 1);
  }

  [[nodiscard]] std::size_t worker_count() const {
    return pool_.worker_count();
  }
  [[nodiscard]] const synth::SynthesisCache& cache() const { return cache_; }
  [[nodiscard]] ThreadPool& pool() { return pool_; }

  /// Verification verdicts of the most recent compile_* call, in job order
  /// (compile_batch: one per scenario; compile_best / compile_batch_best:
  /// restarts-major, i.e. scenario i restart r at index i * restarts + r).
  /// Empty unless PipelineOptions.verify is set.
  [[nodiscard]] const std::vector<verify::EquivalenceReport>&
  last_verification() const {
    return last_verification_;
  }

  /// N independent restarts of one compile; keeps the best-cost plan.
  /// Restart r runs options.seed for r == 0 and a derived stream otherwise,
  /// so the result can never cost more than single-shot compile_vqe(options)
  /// and is bit-identical for any worker count.
  [[nodiscard]] MultiStartResult compile_best(
      std::size_t n, const std::vector<fermion::ExcitationTerm>& terms,
      const CompileOptions& options) {
    MultiStartResult out;
    run_jobs(make_restart_jobs(n, terms, options), [&](std::vector<CompileResult> results) {
      out = reduce_restarts(options.seed, std::move(results));
    });
    out.verification = last_verification_;
    return out;
  }

  /// Batch-compiles scenarios; results[i] belongs to scenarios[i].
  [[nodiscard]] std::vector<CompileResult> compile_batch(
      const std::vector<CompileScenario>& scenarios) {
    std::vector<Job> jobs;
    jobs.reserve(scenarios.size());
    for (const CompileScenario& s : scenarios)
      jobs.push_back({s.num_qubits, &s.terms, s.options});
    std::vector<CompileResult> results;
    run_jobs(std::move(jobs),
             [&](std::vector<CompileResult> r) { results = std::move(r); });
    return results;
  }

  /// Multi-restarts every scenario; results[i] belongs to scenarios[i]. All
  /// scenarios' restarts share one job queue, so wide batches keep every
  /// worker busy even when individual scenarios are small.
  [[nodiscard]] std::vector<MultiStartResult> compile_batch_best(
      const std::vector<CompileScenario>& scenarios) {
    std::vector<Job> jobs;
    jobs.reserve(scenarios.size() * options_.restarts);
    for (const CompileScenario& s : scenarios) {
      std::vector<Job> one = make_restart_jobs(s.num_qubits, s.terms, s.options);
      for (Job& j : one) jobs.push_back(std::move(j));
    }
    std::vector<MultiStartResult> out(scenarios.size());
    run_jobs(std::move(jobs), [&](std::vector<CompileResult> results) {
      for (std::size_t i = 0; i < scenarios.size(); ++i) {
        std::vector<CompileResult> slice(
            std::make_move_iterator(results.begin() +
                                    static_cast<std::ptrdiff_t>(i * options_.restarts)),
            std::make_move_iterator(results.begin() +
                                    static_cast<std::ptrdiff_t>((i + 1) * options_.restarts)));
        out[i] = reduce_restarts(scenarios[i].options.seed, std::move(slice));
        if (!last_verification_.empty())
          out[i].verification.assign(
              last_verification_.begin() +
                  static_cast<std::ptrdiff_t>(i * options_.restarts),
              last_verification_.begin() +
                  static_cast<std::ptrdiff_t>((i + 1) * options_.restarts));
      }
    });
    return out;
  }

 private:
  struct Job {
    std::size_t num_qubits = 0;
    const std::vector<fermion::ExcitationTerm>* terms = nullptr;
    CompileOptions options;
  };

  [[nodiscard]] std::vector<Job> make_restart_jobs(
      std::size_t n, const std::vector<fermion::ExcitationTerm>& terms,
      const CompileOptions& base) {
    std::vector<Job> jobs;
    jobs.reserve(options_.restarts);
    for (std::size_t r = 0; r < options_.restarts; ++r) {
      Job job{n, &terms, base};
      job.options.seed = opt::restart_seed(base.seed, r);
      jobs.push_back(std::move(job));
    }
    return jobs;
  }

  /// Runs all jobs on the pool (slot-indexed, so output order == input
  /// order) and hands the complete result vector to `consume`. With
  /// PipelineOptions.verify each job also certifies its emitted circuit
  /// against the recorded spec before returning its slot.
  template <typename Consume>
  void run_jobs(std::vector<Job> jobs, Consume&& consume) {
    std::vector<CompileResult> results(jobs.size());
    last_verification_.clear();
    if (options_.verify)
      last_verification_.resize(jobs.size());
    const verify::EquivalenceChecker checker(options_.verify_options);
    pool_.parallel_for(jobs.size(), [&](std::size_t i) {
      CompileOptions options = jobs[i].options;
      if (options_.share_synthesis_cache && options.emit_circuit)
        options.synthesis_cache = &cache_;
      results[i] = compile_vqe(jobs[i].num_qubits, *jobs[i].terms, options);
      if (options_.verify) {
        if (options.emit_circuit) {
          last_verification_[i] =
              checker.check_spec(results[i].circuit, results[i].spec);
        } else {
          // Nothing to certify: say so instead of leaving a blank report
          // that reads like a silent failure.
          last_verification_[i].detail =
              "not verified: no circuit emitted (emit_circuit = false)";
        }
      }
    });
    consume(std::move(results));
  }

  /// Deterministic winner selection: (model_cnots, restart index).
  [[nodiscard]] MultiStartResult reduce_restarts(
      std::uint64_t master_seed, std::vector<CompileResult> results) {
    MultiStartResult out;
    out.restarts.reserve(results.size());
    for (std::size_t r = 0; r < results.size(); ++r) {
      out.restarts.push_back(
          {opt::restart_seed(master_seed, r), results[r].model_cnots});
      if (r == 0 || results[r].model_cnots < out.best.model_cnots) {
        out.best = std::move(results[r]);
        out.best_restart = r;
      }
    }
    return out;
  }

  PipelineOptions options_;
  ThreadPool pool_;
  synth::SynthesisCache cache_;
  std::vector<verify::EquivalenceReport> last_verification_;
};

}  // namespace femto::core
