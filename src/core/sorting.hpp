// String-ordering engines.
//
// Advanced sorting (paper Sec. III-B): all strings of a segment are sorted
// jointly over both order and per-string target choice by mapping to GTSP
// (cluster = string, vertices = (string, target)) and solving with the
// genetic algorithm.
//
// Baseline sorting ([9], used for the JW / BK / GT columns of Table I):
// every string of one excitation term shares a single target; the
// intra-term order is solved exactly per target (Held-Karp over <= 8
// strings, the "exhaustive search" of the baseline); inter-term ordering is
// doubly greedy -- group terms by best target, order within groups by
// nearest-neighbor savings.
//
// Hot-path layout (all bit-identical to the historical scalar code):
//  * sort_advanced materializes the GTSP weights straight into a dense
//    matrix (opt::GtspDense) -- no std::function, no hash-map memo -- and
//    runs the allocation-free GA core.
//  * held_karp_order runs on flat per-thread scratch with set-bit iteration
//    over the subset masks.
//  * fast_term_cost builds an m x m best-shared-target savings table once
//    (word-parallel closed form on the default model) and runs the greedy
//    chain as table lookups; the historical scalar loop survives as
//    detail::fast_term_cost_reference (test oracle + speedup bench).
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/rotation_blocks.hpp"
#include "opt/gtsp.hpp"
#include "synth/cost_model.hpp"

namespace femto::core {

/// GTSP-based joint sort (order + targets). Returns the blocks in
/// implementation order with targets assigned. With a non-default
/// HardwareTarget the GTSP edge weights become the *device* savings
/// (synth/cost_model.hpp); on connectivity-constrained targets each edge
/// additionally carries the successor vertex's target-choice bonus (its
/// cluster-minimal routing-aware string cost minus the vertex's own), so the
/// solver is steered toward cheap target placements as well as savings. Both
/// extras are exactly zero for all_to_all_cnot / hw == nullptr, keeping the
/// historical behavior bit-identical.
[[nodiscard]] inline std::vector<synth::RotationBlock> sort_advanced(
    const std::vector<synth::RotationBlock>& blocks, Rng& rng,
    const opt::GtspOptions& options = {},
    const synth::HardwareTarget* hw = nullptr) {
  if (blocks.size() <= 1) return blocks;
  // Vertex table: (block index, target).
  struct Vertex {
    std::size_t block;
    std::size_t target;
    double bonus;  // cluster-min string cost - this vertex's string cost
  };
  std::vector<Vertex> vertices;
  const bool device = hw != nullptr && !hw->is_all_to_all_cnot();
  const bool constrained = device && hw->coupling.constrained();
  opt::GtspDense inst;
  for (std::size_t k = 0; k < blocks.size(); ++k) {
    std::vector<int> cluster;
    const std::size_t first = vertices.size();
    for (std::size_t t : valid_targets(blocks[k])) {
      cluster.push_back(static_cast<int>(vertices.size()));
      vertices.push_back({k, t, 0.0});
    }
    FEMTO_EXPECTS(!cluster.empty());
    if (constrained) {
      int min_cost = std::numeric_limits<int>::max();
      for (std::size_t v = first; v < vertices.size(); ++v)
        min_cost = std::min(
            min_cost, synth::string_cost(blocks[k].string,
                                         vertices[v].target, *hw));
      for (std::size_t v = first; v < vertices.size(); ++v)
        vertices[v].bonus = static_cast<double>(
            min_cost - synth::string_cost(blocks[k].string,
                                          vertices[v].target, *hw));
    }
    inst.clusters.push_back(std::move(cluster));
  }
  // Dense interface-saving table. Identical letter strings get weight 0 (the
  // paper inserts no edge between equal strings; adjacency is allowed but
  // yields no credit). Intra-cluster pairs are never consulted and stay 0.
  inst.allocate();
  for (std::size_t a = 0; a < vertices.size(); ++a) {
    const Vertex& va = vertices[a];
    for (std::size_t b = 0; b < vertices.size(); ++b) {
      const Vertex& vb = vertices[b];
      if (va.block == vb.block) continue;
      double w = 0.0;
      if (!blocks[va.block].string.same_letters(blocks[vb.block].string))
        w = device ? synth::interface_saving(blocks[va.block].string,
                                             va.target,
                                             blocks[vb.block].string,
                                             vb.target, *hw)
                   : synth::interface_saving(blocks[va.block].string,
                                             va.target,
                                             blocks[vb.block].string,
                                             vb.target);
      w += vb.bonus;
      inst.set_weight(static_cast<int>(a), static_cast<int>(b), w);
    }
  }
  const opt::GtspSolution sol = opt::solve_gtsp_ga(inst, rng, options);
  std::vector<synth::RotationBlock> out;
  out.reserve(blocks.size());
  for (std::size_t slot = 0; slot < sol.cluster_order.size(); ++slot) {
    const Vertex& v = vertices[static_cast<std::size_t>(sol.vertex_choice[slot])];
    synth::RotationBlock b = blocks[v.block];
    b.target = v.target;
    out.push_back(std::move(b));
  }
  return out;
}

namespace detail {

/// Exact best order of one term's blocks for a fixed shared target
/// (Held-Karp over <= ~12 blocks). Returns ordered indices and the total
/// savings along the path.
struct IntraResult {
  std::vector<std::size_t> order;
  int savings = 0;
};

[[nodiscard]] inline IntraResult held_karp_order(
    const std::vector<synth::RotationBlock>& blocks, std::size_t target,
    const synth::HardwareTarget* hw = nullptr) {
  const std::size_t m = blocks.size();
  FEMTO_EXPECTS(m >= 1 && m <= 16);
  // Flat per-thread scratch: this is the inner loop of the baseline-search
  // objective (one call per term per candidate target per candidate Gamma),
  // so the 2^m x m tables must not touch the allocator on the steady state.
  static thread_local std::vector<int> wt, dp, parent;
  // Column-major savings (wt[j*m + i] = saving of j following i) so the
  // pull loop below reads both dp and weights sequentially.
  wt.assign(m * m, 0);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < m; ++j)
      if (i != j &&
          !blocks[i].string.same_letters(blocks[j].string))
        wt[j * m + i] = hw != nullptr
                      ? synth::interface_saving(blocks[i].string, target,
                                                blocks[j].string, target, *hw)
                      : synth::interface_saving(blocks[i].string, target,
                                                blocks[j].string, target);
  const std::size_t full = std::size_t{1} << m;
  dp.resize(full * m);
  parent.resize(full * m);
  // Pull form of the subset DP: every relaxation into state (mask, last)
  // comes from the unique source mask \ {last}, so computing each state
  // once as a max over that row is exactly the push relaxation -- same
  // values (savings are non-negative) and the same first-maximizer
  // tie-break (predecessors scanned in ascending index). Entries for
  // last not in mask are never read, so no -1 initialization pass is
  // needed.
  for (std::size_t k = 0; k < m; ++k) {
    dp[(std::size_t{1} << k) * m + k] = 0;
    parent[(std::size_t{1} << k) * m + k] = -1;
  }
  for (std::size_t mask = 1; mask < full; ++mask) {
    if ((mask & (mask - 1)) == 0) continue;  // singletons are base cases
    for (std::size_t rest = mask; rest != 0; rest &= rest - 1) {
      const std::size_t last =
          static_cast<std::size_t>(__builtin_ctzll(rest));
      const std::size_t pm = mask ^ (std::size_t{1} << last);
      const int* dp_row = dp.data() + pm * m;
      const int* w_col = wt.data() + last * m;
      int best = -1;
      int best_prev = -1;
      for (std::size_t prev_bits = pm; prev_bits != 0;
           prev_bits &= prev_bits - 1) {
        const std::size_t k =
            static_cast<std::size_t>(__builtin_ctzll(prev_bits));
        const int cand = dp_row[k] + w_col[k];
        if (cand > best) {
          best = cand;
          best_prev = static_cast<int>(k);
        }
      }
      dp[mask * m + last] = best;
      parent[mask * m + last] = best_prev;
    }
  }
  IntraResult res;
  std::size_t best_last = 0;
  int best = -1;
  for (std::size_t last = 0; last < m; ++last)
    if (dp[(full - 1) * m + last] > best) {
      best = dp[(full - 1) * m + last];
      best_last = last;
    }
  res.savings = best;
  res.order.resize(m);
  std::size_t mask = full - 1;
  std::size_t cur = best_last;
  for (std::size_t pos = m; pos-- > 0;) {
    res.order[pos] = cur;
    const int par = parent[mask * m + cur];
    mask ^= std::size_t{1} << cur;
    if (par < 0) break;
    cur = static_cast<std::size_t>(par);
  }
  return res;
}

/// Targets common to every block of a term (shared-target candidates).
[[nodiscard]] inline std::vector<std::size_t> common_targets(
    const std::vector<synth::RotationBlock>& blocks) {
  std::vector<std::size_t> out;
  if (blocks.empty()) return out;
  for (std::size_t t : valid_targets(blocks[0])) {
    bool ok = true;
    for (const auto& b : blocks)
      if (b.string.letter(t) == pauli::Letter::I) ok = false;
    if (ok) out.push_back(t);
  }
  return out;
}

}  // namespace detail

/// Baseline sort: per-term shared target + exact intra-term order, then
/// doubly-greedy inter-term ordering (group by target, nearest-neighbor
/// within and across groups). With a non-default HardwareTarget, savings are
/// the device savings and the shared-target choice additionally weighs the
/// routing-aware string costs (zero delta on unconstrained targets).
[[nodiscard]] inline std::vector<synth::RotationBlock> sort_baseline(
    const std::vector<std::vector<synth::RotationBlock>>& per_term,
    const synth::HardwareTarget* hw = nullptr) {
  struct TermPlan {
    std::vector<synth::RotationBlock> ordered;  // with targets assigned
    std::size_t target = 0;
  };
  const synth::HardwareTarget* device =
      hw != nullptr && !hw->is_all_to_all_cnot() ? hw : nullptr;
  std::vector<TermPlan> plans;
  for (const auto& term_blocks : per_term) {
    if (term_blocks.empty()) continue;
    TermPlan best;
    int best_savings = std::numeric_limits<int>::min();
    std::vector<std::size_t> candidates = detail::common_targets(term_blocks);
    if (candidates.empty()) candidates = valid_targets(term_blocks[0]);
    for (std::size_t t : candidates) {
      // Blocks lacking support on t keep their own first support qubit.
      std::vector<synth::RotationBlock> with_target = term_blocks;
      for (auto& b : with_target)
        if (b.string.letter(t) != pauli::Letter::I) b.target = t;
      const detail::IntraResult res =
          detail::held_karp_order(with_target, t, device);
      int savings = res.savings;
      if (device != nullptr && device->coupling.constrained())
        for (const auto& b : with_target)
          savings -= synth::string_cost(b.string, b.target, *device);
      if (savings > best_savings) {
        best_savings = savings;
        best.target = t;
        best.ordered.clear();
        for (std::size_t idx : res.order)
          best.ordered.push_back(with_target[idx]);
      }
    }
    plans.push_back(std::move(best));
  }
  // Group by shared target (descending group size), nearest-neighbor order
  // within each group using the real boundary savings.
  std::vector<std::vector<TermPlan>> groups;
  for (auto& plan : plans) {
    bool placed = false;
    for (auto& g : groups)
      if (g.front().target == plan.target) {
        g.push_back(std::move(plan));
        placed = true;
        break;
      }
    if (!placed) groups.push_back({std::move(plan)});
  }
  std::sort(groups.begin(), groups.end(),
            [](const auto& a, const auto& b) { return a.size() > b.size(); });
  const auto boundary_saving = [device](const TermPlan& a, const TermPlan& b) {
    const synth::RotationBlock& last = a.ordered.back();
    const synth::RotationBlock& first = b.ordered.front();
    if (last.string.same_letters(first.string)) return 0;
    return device != nullptr
               ? synth::interface_saving(last.string, last.target,
                                         first.string, first.target, *device)
               : synth::interface_saving(last.string, last.target,
                                         first.string, first.target);
  };
  std::vector<synth::RotationBlock> out;
  for (auto& group : groups) {
    // Greedy chain within the group.
    std::vector<bool> used(group.size(), false);
    std::size_t cur = 0;
    used[0] = true;
    std::vector<std::size_t> order{0};
    for (std::size_t step = 1; step < group.size(); ++step) {
      int best = -1;
      std::size_t best_next = 0;
      for (std::size_t cand = 0; cand < group.size(); ++cand) {
        if (used[cand]) continue;
        const int s = boundary_saving(group[cur], group[cand]);
        if (s > best) {
          best = s;
          best_next = cand;
        }
      }
      used[best_next] = true;
      order.push_back(best_next);
      cur = best_next;
    }
    for (std::size_t idx : order)
      for (const auto& b : group[idx].ordered) out.push_back(b);
  }
  return out;
}

namespace detail {

/// Best shared-target interface saving between two blocks under a device
/// model: max over the shared support of the per-target device saving
/// (scalar loop; the default CNOT model uses the closed-form word-parallel
/// kernel in synth/cost_model.hpp instead). Returns -1 when no shared
/// target exists.
[[nodiscard]] inline int best_shared_device_saving(
    const pauli::PauliString& p1, const pauli::PauliString& p2,
    const synth::HardwareTarget& hw) {
  int best = -1;
  for (std::size_t t = 0; t < p1.num_qubits(); ++t) {
    if (p1.letter(t) == pauli::Letter::I ||
        p2.letter(t) == pauli::Letter::I)
      continue;
    best = std::max(best, synth::interface_saving(p1, t, p2, t, hw));
  }
  return best;
}

/// Greedy nearest-neighbor chain over a precomputed pair-savings table.
/// table[i*m + j] is the best shared-target saving of j following i, with
/// -1 marking pairs that cannot chain (identical letters or no shared
/// target). Returns the total savings collected along the chain; `used` is
/// caller scratch of at least m bytes. Selection order and tie-breaks match
/// the historical nested-loop greedy exactly: candidates are scanned in
/// ascending index with strict improvement, so the first candidate
/// achieving the maximal saving wins, and when every candidate is
/// unreachable the lowest-index unused block is taken with zero credit.
[[nodiscard]] inline int greedy_chain_savings(const int* table, std::size_t m,
                                              std::uint8_t* used) {
  std::fill(used, used + m, std::uint8_t{0});
  used[0] = 1;
  std::size_t cur = 0;
  int collected = 0;
  for (std::size_t step = 1; step < m; ++step) {
    int best = -1;
    std::size_t best_next = 0;
    const int* row = table + cur * m;
    for (std::size_t cand = 0; cand < m; ++cand) {
      if (used[cand]) continue;
      if (row[cand] > best) {
        best = row[cand];
        best_next = cand;
      }
    }
    if (best < 0) {
      for (std::size_t cand = 0; cand < m; ++cand)
        if (!used[cand]) {
          best_next = cand;
          best = 0;
          break;
        }
    }
    collected += std::max(best, 0);
    used[best_next] = 1;
    cur = best_next;
  }
  return collected;
}

/// The historical scalar fast_term_cost, preserved as the equivalence
/// oracle for the table-driven rewrite (tests) and the old-vs-new speedup
/// bench.
[[nodiscard]] inline int fast_term_cost_reference(
    const std::vector<synth::RotationBlock>& blocks,
    const synth::HardwareTarget* hw = nullptr) {
  if (blocks.empty()) return 0;
  const synth::HardwareTarget* device =
      hw != nullptr && !hw->is_all_to_all_cnot() ? hw : nullptr;
  int total = 0;
  for (const auto& b : blocks) {
    if (device == nullptr) {
      total += synth::string_cost(b.string);
    } else if (!device->coupling.constrained()) {
      total += synth::string_cost(b.string, b.target, *device);
    } else {
      int cheapest = std::numeric_limits<int>::max();
      for (std::size_t t : valid_targets(b))
        cheapest = std::min(cheapest,
                            synth::string_cost(b.string, t, *device));
      total += cheapest;
    }
  }
  // Greedy chain: start at block 0 with its first target.
  std::vector<bool> used(blocks.size(), false);
  used[0] = true;
  std::size_t cur = 0;
  for (std::size_t step = 1; step < blocks.size(); ++step) {
    int best = -1;
    std::size_t best_next = 0;
    for (std::size_t cand = 0; cand < blocks.size(); ++cand) {
      if (used[cand] || blocks[cand].string.same_letters(blocks[cur].string))
        continue;
      for (std::size_t t1 : valid_targets(blocks[cur])) {
        if (blocks[cand].string.letter(t1) == pauli::Letter::I) continue;
        const int s =
            device != nullptr
                ? synth::interface_saving(blocks[cur].string, t1,
                                          blocks[cand].string, t1, *device)
                : synth::interface_saving(blocks[cur].string, t1,
                                          blocks[cand].string, t1);
        if (s > best) {
          best = s;
          best_next = cand;
        }
      }
    }
    if (best < 0) {
      // No shareable target; take any unused block with zero saving.
      for (std::size_t cand = 0; cand < blocks.size(); ++cand)
        if (!used[cand]) {
          best_next = cand;
          best = 0;
          break;
        }
    }
    total -= std::max(best, 0);
    used[best_next] = true;
    cur = best_next;
  }
  return total;
}

}  // namespace detail

/// Fast per-term cost used inside annealing loops: nearest-neighbor chain
/// with per-block target freedom, no inter-term credit. With a non-default
/// HardwareTarget this is the device-cost analogue (for constrained targets,
/// string costs use the cheapest routing-aware target per block, memoized in
/// `cost_cache` when one is supplied).
///
/// Hot-path shape: the m x m best-shared-target savings table is built first
/// (the SIMD-dispatched fused support-count kernel of gf2/wordops.hpp on the
/// default model -- see synth::best_shared_target_saving -- scalar
/// per-target device savings otherwise) and the greedy chain then runs on
/// table lookups alone; scratch lives in per-thread buffers, so steady-state
/// calls allocate nothing. Bit-identical to detail::fast_term_cost_reference.
[[nodiscard]] inline int fast_term_cost(
    const std::vector<synth::RotationBlock>& blocks,
    const synth::HardwareTarget* hw = nullptr,
    synth::StringCostCache* cost_cache = nullptr) {
  if (blocks.empty()) return 0;
  const synth::HardwareTarget* device =
      hw != nullptr && !hw->is_all_to_all_cnot() ? hw : nullptr;
  const std::size_t m = blocks.size();
  int total = 0;
  for (const auto& b : blocks) {
    if (device == nullptr) {
      total += synth::string_cost(b.string);
    } else if (!device->coupling.constrained()) {
      total += cost_cache != nullptr
                   ? cost_cache->cost(b.string, b.target)
                   : synth::string_cost(b.string, b.target, *device);
    } else if (cost_cache != nullptr) {
      total += cost_cache->min_cost(b.string);
    } else {
      int cheapest = std::numeric_limits<int>::max();
      for (std::size_t t : valid_targets(b))
        cheapest = std::min(cheapest,
                            synth::string_cost(b.string, t, *device));
      total += cheapest;
    }
  }
  if (m == 1) return total;
  static thread_local std::vector<int> table;
  static thread_local std::vector<std::uint8_t> used;
  table.resize(m * m);
  used.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      if (i == j ||
          blocks[i].string.same_letters(blocks[j].string)) {
        table[i * m + j] = -1;
        continue;
      }
      table[i * m + j] =
          device != nullptr
              ? detail::best_shared_device_saving(blocks[i].string,
                                                  blocks[j].string, *device)
              : synth::best_shared_target_saving(blocks[i].string,
                                                 blocks[j].string);
    }
  }
  return total - detail::greedy_chain_savings(table.data(), m, used.data());
}

}  // namespace femto::core
